(* discoctl — drive a Disco mediator from the command line.

   The tool builds a demo federation (the paper's person world, a
   configurable number of sources) or loads ODL from a file, then runs
   queries, explains plans, simulates outages, and prints the catalog.
   `serve` turns the same federation into a long-running server speaking
   a line protocol; `load` drives it with an open-loop workload.

   Shared feature flags can live in a key=value file passed with
   --config; the individual flags remain as overriding aliases.

   Examples:

     discoctl query "select x.name from x in person where x.salary > 10"
     discoctl query --sources 8 --down r1,r3 --timeout 50 "..."
     discoctl query --config fed.conf "..."
     discoctl explain "select x.name from x in person"
     discoctl repl --sources 4
     discoctl schema --odl my_schema.odl
     discoctl cache-stats --repeat 5 "select x.name from x in person"
     discoctl resubmit --down r0 --recover-at 500 "..."
     discoctl serve --port 7411 --inflight 4 --queue-bound 64
     discoctl load --port 7411 --rate 50 --duration 2 --health *)

module V = Disco_value.Value
module Shard = Disco_shard.Shard
module Source = Disco_source.Source
module Schedule = Disco_source.Schedule
module Scheduler = Disco_source.Scheduler
module Datagen = Disco_source.Datagen
module Database = Disco_relation.Database
module Mediator = Disco_core.Mediator
module Registry = Disco_odl.Registry
module Answer_cache = Disco_cache.Answer_cache
module Resubmission = Disco_cache.Resubmission
module Check = Disco_check.Check
module Expr = Disco_algebra.Expr
module Rules = Disco_algebra.Rules
module Compile = Disco_algebra.Compile
module Wrapper = Disco_wrapper.Wrapper
module Odl_parser = Disco_odl.Odl_parser
module Typecheck = Disco_oql.Typecheck
module Oql_parser = Disco_oql.Parser
module Expand = Disco_core.Expand
module Runtime = Disco_runtime.Runtime
module Metrics = Disco_obs.Metrics
module Server = Disco_serve.Server
module Loadgen = Disco_serve.Loadgen
module Analysis = Disco_analysis.Analysis

open Cmdliner

let setup_logs verbosity =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level
    (match verbosity with
    | 0 -> Some Logs.Warning
    | 1 -> Some Logs.Info
    | _ -> Some Logs.Debug)

let verbosity_arg =
  let doc = "Log verbosity: repeat for more (-v info, -vv debug)." in
  Arg.(value & flag_all & info [ "v"; "verbose" ] ~doc)

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

(* -- federation setup -- *)

let qopts ?(timeout_ms = 1000.0) ?(semantics = Mediator.Partial_answers) () =
  { Mediator.Query_opts.default with timeout_ms; semantics }

(* -- --config FILE: the feature flags as one key=value file -- *)

(* Precedence is defaults < config file < explicit command-line flag, so
   the old per-feature flags keep working as thin aliases over the
   file. *)
module Conf = struct
  type t = {
    sources : int;
    rows : int;
    wrapper : string;
    shards : int;
    shard_scheme : [ `Range | `Hash ];
    down : string list;
    odl_file : string option;
    timeout : float;
    semantics : Mediator.semantics;
    use_cache : bool;
    retry : Runtime.Retry.t option;
    indexes : (string * string * [ `Hash | `Sorted ]) list;
        (** (table, column, kind) to declare on every repository hosting
            the table *)
  }
end

exception Conf_error of string

let conf_fail fmt = Format.kasprintf (fun s -> raise (Conf_error s)) fmt

let conf_keys =
  [
    "sources"; "rows"; "wrapper"; "shards"; "shard-scheme"; "down"; "odl";
    "timeout"; "semantics"; "max-stale"; "cache"; "retry"; "retry-initial";
    "retry-multiplier"; "retry-attempts"; "hedge"; "breaker";
    "breaker-cooldown"; "index";
  ]

let parse_kv_file path =
  read_file path |> String.split_on_char '\n'
  |> List.concat_map (fun raw ->
         let line = String.trim raw in
         if line = "" || line.[0] = '#' then []
         else
           match String.index_opt line '=' with
           | None -> conf_fail "%s: expected key=value, got %S" path line
           | Some i ->
               let key = String.trim (String.sub line 0 i) in
               let v =
                 String.trim
                   (String.sub line (i + 1) (String.length line - i - 1))
               in
               if not (List.mem key conf_keys) then
                 conf_fail "%s: unknown key %S (known: %s)" path key
                   (String.concat ", " conf_keys);
               [ (key, v) ])

let kv_int key v =
  match int_of_string_opt v with
  | Some n -> n
  | None -> conf_fail "config: %s: expected an integer, got %S" key v

let kv_float key v =
  match float_of_string_opt v with
  | Some x -> x
  | None -> conf_fail "config: %s: expected a number, got %S" key v

let kv_bool key v =
  match String.lowercase_ascii v with
  | "true" | "yes" | "on" | "1" -> true
  | "false" | "no" | "off" | "0" -> false
  | _ -> conf_fail "config: %s: expected a boolean, got %S" key v

let kv_scheme key v =
  match v with
  | "range" -> `Range
  | "hash" -> `Hash
  | _ -> conf_fail "config: %s: expected range or hash, got %S" key v

let parse_index_spec spec =
  match String.split_on_char ':' spec with
  | [ table; column; kind ] when table <> "" && column <> "" -> (
      match Disco_relation.Index.kind_of_string kind with
      | Some Disco_relation.Index.Hash -> (table, column, `Hash)
      | Some Disco_relation.Index.Sorted -> (table, column, `Sorted)
      | None ->
          conf_fail "index: unknown kind %S (hash or sorted), in %S" kind spec)
  | _ -> conf_fail "index: expected table:column:kind, got %S" spec

let sem_of_name key max_stale = function
  | "partial" -> Mediator.Partial_answers
  | "wait-all" -> Mediator.Wait_all
  | "null" -> Mediator.Null_sources
  | "skip" -> Mediator.Skip_sources
  | "cached" -> Mediator.Cached_fallback { max_stale_ms = max_stale }
  | v -> conf_fail "config: %s: unknown semantics %S" key v

let is_cached_semantics = function
  | Mediator.Cached_fallback _ -> true
  | Mediator.Partial_answers | Mediator.Wait_all | Mediator.Null_sources
  | Mediator.Skip_sources ->
      false

(* -- common options (all optional: unset falls back to --config, then
   to the built-in default) -- *)

let config_arg =
  let doc =
    "Read shared options from $(docv), a key=value file (one pair per \
     line, '#' comments). Keys: sources, rows, wrapper, shards, \
     shard-scheme, down, odl, timeout, semantics, max-stale, cache, \
     retry, retry-initial, retry-multiplier, retry-attempts, hedge, \
     breaker, breaker-cooldown. Explicit command-line flags override \
     the file."
  in
  Arg.(value & opt (some file) None & info [ "config" ] ~docv:"FILE" ~doc)

let sources_arg =
  let doc =
    "Number of generated person sources in the demo federation (default 2)."
  in
  Arg.(value & opt (some int) None & info [ "sources"; "n" ] ~docv:"N" ~doc)

let rows_arg =
  let doc = "Rows per generated source (default 10)." in
  Arg.(value & opt (some int) None & info [ "rows" ] ~docv:"ROWS" ~doc)

let wrapper_arg =
  let doc =
    "Wrapper constructor for the demo sources (WrapperPostgres, \
     WrapperSelect, WrapperProject, WrapperScan; default WrapperPostgres)."
  in
  Arg.(value & opt (some string) None & info [ "wrapper" ] ~docv:"W" ~doc)

let shards_arg =
  let doc =
    "Shard the demo person extent across N repositories (child extents \
     person__s0..person__s(N-1), one source each) instead of declaring N \
     independent extents. 0 disables sharding. Rows per shard follow \
     --rows; placement follows the declared scheme, so predicates on \
     x.id prune."
  in
  Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N" ~doc)

let shard_scheme_arg =
  let doc =
    "Partitioning scheme for --shards: range (id boundaries at multiples \
     of --rows) or hash (consistent-hash ring, deduplicating gather)."
  in
  Arg.(
    value
    & opt (some (Arg.enum [ ("range", `Range); ("hash", `Hash) ])) None
    & info [ "shard-scheme" ] ~docv:"SCHEME" ~doc)

let down_arg =
  let doc = "Comma-separated repository names to take offline (e.g. r0,r2)." in
  let repos = Arg.(list ~sep:',' string) in
  Arg.(value & opt (some repos) None & info [ "down" ] ~docv:"REPOS" ~doc)

let timeout_arg =
  let doc =
    "Designated deadline in virtual milliseconds (Section 4; default 1000)."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"MS" ~doc)

let odl_arg =
  let doc = "Load this ODL file instead of building the demo federation." in
  Arg.(value & opt (some file) None & info [ "odl" ] ~docv:"FILE" ~doc)

let semantics_arg =
  let doc =
    "Unavailable-data semantics: partial (default), wait-all, null, skip, or \
     cached (serve outages from the answer cache, see --max-stale; implies \
     --cache)."
  in
  let names = [ "partial"; "wait-all"; "null"; "skip"; "cached" ] in
  Arg.(
    value
    & opt (some (Arg.enum (List.map (fun n -> (n, n)) names))) None
    & info [ "semantics" ] ~doc)

let max_stale_arg =
  let doc =
    "Staleness budget (virtual ms) for --semantics cached: outage fallbacks \
     are only served from cache entries at most this old (default 60000)."
  in
  Arg.(value & opt (some float) None & info [ "max-stale" ] ~docv:"MS" ~doc)

let cache_arg =
  let doc = "Attach a semantic answer cache to the mediator." in
  Arg.(value & flag & info [ "cache" ] ~doc)

(* -- retry/hedge/breaker options (DESIGN.md §4g) -- *)

let retry_flag_arg =
  let doc =
    "Enable the deadline-aware retry scheduler: blocked execs are \
     re-polled on exponential backoff within the query deadline instead \
     of finalizing at issue time."
  in
  Arg.(value & flag & info [ "retry" ] ~doc)

let retry_initial_arg =
  let doc = "Delay (virtual ms) before the first re-poll (default 50)." in
  Arg.(value & opt (some float) None & info [ "retry-initial" ] ~docv:"MS" ~doc)

let retry_multiplier_arg =
  let doc = "Backoff multiplier between re-polls (default 2)." in
  Arg.(
    value & opt (some float) None & info [ "retry-multiplier" ] ~docv:"X" ~doc)

let retry_attempts_arg =
  let doc = "Maximum re-polls per blocked exec (default 4)." in
  Arg.(value & opt (some int) None & info [ "retry-attempts" ] ~docv:"N" ~doc)

let hedge_arg =
  let doc =
    "Hedge delay (virtual ms): when the primary's answer would land later \
     than this, also dial the first live replica and keep the earlier \
     completion. Implies --retry."
  in
  Arg.(value & opt (some float) None & info [ "hedge" ] ~docv:"MS" ~doc)

let breaker_arg =
  let doc =
    "Circuit-breaker threshold: skip re-polls/hedges to a source after \
     this many consecutive failures. Implies --retry."
  in
  Arg.(value & opt (some int) None & info [ "breaker" ] ~docv:"N" ~doc)

let breaker_cooldown_arg =
  let doc =
    "How long (virtual ms) an open breaker rejects calls before a \
     half-open probe (default 400)."
  in
  Arg.(
    value & opt (some float) None & info [ "breaker-cooldown" ] ~docv:"MS" ~doc)

let index_arg =
  let doc =
    "Declare a source-side secondary index as table:column:kind (kind: \
     hash for equality, sorted for ranges on numeric columns) on every \
     repository hosting the table; repeatable. The columnar engine \
     serves matching filters from it, and the optimizer treats such \
     pushdowns as informed. In --config, the $(b,index) key takes a \
     comma-separated list of specs."
  in
  Arg.(value & opt_all string [] & info [ "index" ] ~docv:"SPEC" ~doc)

let conf_term =
  let mk config sources rows wrapper shards shard_scheme down odl timeout
      semantics max_stale cache retry_flag retry_initial retry_multiplier
      retry_attempts hedge breaker breaker_cooldown index_specs =
    try
      let kv = match config with None -> [] | Some path -> parse_kv_file path in
      let str key = List.assoc_opt key kv in
      let pick flag key parse default =
        match flag with
        | Some v -> v
        | None -> (
            match str key with Some s -> parse key s | None -> default)
      in
      let max_stale = pick max_stale "max-stale" kv_float 60_000.0 in
      let semantics =
        let name =
          match semantics with Some s -> Some s | None -> str "semantics"
        in
        match name with
        | None -> Mediator.Partial_answers
        | Some n -> sem_of_name "semantics" max_stale n
      in
      let use_cache =
        cache
        || (match str "cache" with
           | Some s -> kv_bool "cache" s
           | None -> false)
        || is_cached_semantics semantics
      in
      let retry_enabled =
        retry_flag
        || match str "retry" with Some s -> kv_bool "retry" s | None -> false
      in
      let hedge_ms =
        match hedge with
        | Some _ as v -> v
        | None -> Option.map (kv_float "hedge") (str "hedge")
      in
      let breaker_threshold =
        match breaker with
        | Some _ as v -> v
        | None -> Option.map (kv_int "breaker") (str "breaker")
      in
      let retry =
        if retry_enabled || hedge_ms <> None || breaker_threshold <> None then
          Some
            (Runtime.Retry.make
               ~initial_ms:(pick retry_initial "retry-initial" kv_float 50.0)
               ~multiplier:
                 (pick retry_multiplier "retry-multiplier" kv_float 2.0)
               ~max_attempts:(pick retry_attempts "retry-attempts" kv_int 4)
               ?hedge_ms ?breaker_threshold
               ~breaker_cooldown_ms:
                 (pick breaker_cooldown "breaker-cooldown" kv_float 400.0)
               ())
        else None
      in
      Ok
        {
          Conf.sources = pick sources "sources" kv_int 2;
          rows = pick rows "rows" kv_int 10;
          wrapper = pick wrapper "wrapper" (fun _ s -> s) "WrapperPostgres";
          shards = pick shards "shards" kv_int 0;
          shard_scheme = pick shard_scheme "shard-scheme" kv_scheme `Range;
          down =
            pick down "down"
              (fun _ s ->
                String.split_on_char ',' s |> List.map String.trim
                |> List.filter (fun r -> r <> ""))
              [];
          odl_file = (match odl with Some _ as p -> p | None -> str "odl");
          timeout = pick timeout "timeout" kv_float 1000.0;
          semantics;
          use_cache;
          retry;
          indexes =
            (let specs =
               match index_specs with
               | _ :: _ -> index_specs
               | [] -> (
                   match str "index" with
                   | Some s ->
                       String.split_on_char ',' s |> List.map String.trim
                       |> List.filter (fun x -> x <> "")
                   | None -> [])
             in
             List.map parse_index_spec specs);
        }
    with
    | Conf_error msg -> Error msg
    | Sys_error msg -> Error msg
  in
  Term.term_result'
    Term.(
      const mk $ config_arg $ sources_arg $ rows_arg $ wrapper_arg $ shards_arg
      $ shard_scheme_arg $ down_arg $ odl_arg $ timeout_arg $ semantics_arg
      $ max_stale_arg $ cache_arg $ retry_flag_arg $ retry_initial_arg
      $ retry_multiplier_arg $ retry_attempts_arg $ hedge_arg $ breaker_arg
      $ breaker_cooldown_arg $ index_arg)

let conf_qopts (conf : Conf.t) =
  qopts ~timeout_ms:conf.Conf.timeout ~semantics:conf.Conf.semantics ()

(* The sharded demo federation: one logical [person] extent declared
   [sharded by id] across N repositories. Rows are sliced with
   {!Shard.shard_of_value} so placement agrees with what the optimizer
   prunes; each source serves its slice under the child-extent table
   name [person__s<k>]. *)
let load_sharded_demo m ~shards ~shard_scheme ~rows ~wrapper =
  let scheme =
    match shard_scheme with
    | `Hash -> Shard.Hash { vnodes = Shard.default_vnodes }
    | `Range ->
        Shard.Range (List.init (shards - 1) (fun k -> V.Int ((k + 1) * rows)))
  in
  let partition =
    {
      Shard.p_key = "id";
      p_scheme = scheme;
      p_shards =
        List.init shards (fun k ->
            { Shard.s_repository = Fmt.str "r%d" k; s_wrapper = None });
    }
  in
  let all_rows = Datagen.person_rows ~seed:42 ~n:(rows * shards) in
  Mediator.load_odl m
    (Fmt.str
       {|w0 := %s();
         interface Person (extent person) {
           attribute Short id;
           attribute String name;
           attribute Short salary; }|}
       wrapper);
  for k = 0 to shards - 1 do
    let slice =
      List.filter
        (fun row -> Shard.shard_of_value partition row.(0) = k)
        all_rows
    in
    let db = Database.create ~name:"db" in
    ignore
      (Datagen.table_of db ~name:(Shard.child_name "person" k)
         Datagen.person_schema slice);
    Mediator.register_source m ~name:(Fmt.str "r%d" k)
      (Source.create ~id:(Shard.child_name "person" k)
         ~address:
           (Source.address ~host:(Fmt.str "site%d" k) ~db_name:"db"
              ~ip:(Fmt.str "10.0.0.%d" k) ())
         (Source.Relational db));
    Mediator.load_odl m
      (Fmt.str
         {|r%d := Repository(host="site%d", name="db", address="10.0.0.%d");|}
         k k k)
  done;
  Mediator.load_odl m
    (Fmt.str "extent person of Person wrapper w0 %a;" Shard.pp partition)

let build_mediator ?cache ?trace_sink ?metrics ?recover_at ?sched
    (conf : Conf.t) =
  let config =
    {
      Mediator.Config.default with
      cache;
      trace_sink;
      metrics =
        Option.value metrics
          ~default:Mediator.Config.default.Mediator.Config.metrics;
      retry = conf.Conf.retry;
      sched;
    }
  in
  let m = Mediator.create ~config ~name:"discoctl" () in
  (match conf.Conf.odl_file with
  | Some path -> Mediator.load_odl m (read_file path)
  | None when conf.Conf.shards > 0 ->
      load_sharded_demo m ~shards:conf.Conf.shards
        ~shard_scheme:conf.Conf.shard_scheme ~rows:conf.Conf.rows
        ~wrapper:conf.Conf.wrapper
  | None ->
      Mediator.load_odl m
        (Fmt.str
           {|w0 := %s();
             interface Person (extent person) {
               attribute Short id;
               attribute String name;
               attribute Short salary; }|}
           conf.Conf.wrapper);
      for i = 0 to conf.Conf.sources - 1 do
        let name = Fmt.str "person%d" i in
        let db = Database.create ~name:"db" in
        ignore
          (Datagen.table_of db ~name Datagen.person_schema
             (Datagen.person_rows ~seed:(42 + i) ~n:conf.Conf.rows));
        Mediator.register_source m ~name:(Fmt.str "r%d" i)
          (Source.create ~id:name
             ~address:
               (Source.address ~host:(Fmt.str "site%d" i) ~db_name:"db"
                  ~ip:(Fmt.str "10.0.0.%d" i) ())
             (Source.Relational db));
        Mediator.load_odl m
          (Fmt.str
             {|r%d := Repository(host="site%d", name="db", address="10.0.0.%d");
               extent person%d of Person wrapper w0 repository r%d;|}
             i i i i i)
      done);
  let outage =
    (* --recover-at makes outages end, so resubmission can converge *)
    match recover_at with
    | Some t -> Schedule.down_during [ (0.0, t) ]
    | None -> Schedule.always_down
  in
  List.iter
    (fun repo ->
      match Mediator.find_source m repo with
      | Some src -> Source.set_schedule src outage
      | None -> Fmt.epr "warning: no source attached to %s@." repo)
    conf.Conf.down;
  List.iter
    (fun (table, column, kind) ->
      let hosts =
        List.filter
          (fun (repo, _) ->
            match Mediator.find_source m repo with
            | Some src -> (
                match Source.kind src with
                | Source.Relational db ->
                    Database.find_table db table <> None
                | Source.Key_value _ | Source.Flat_file _ | Source.Text _ ->
                    false)
            | None -> false)
          (Mediator.source_stats m)
      in
      if hosts = [] then
        Fmt.epr "warning: --index %s:%s: no repository hosts that table@."
          table column
      else
        List.iter
          (fun (repo, _) -> Mediator.declare_index m ~repo ~table ~column ~kind)
          hosts)
    conf.Conf.indexes;
  m

let print_outcome m outcome =
  (match outcome.Mediator.answer with
  | Mediator.Complete v -> Fmt.pr "answer: %a@." V.pp v
  | Mediator.Partial { unavailable; _ } as answer ->
      Fmt.pr "partial answer (unavailable: %s):@.  %s@."
        (String.concat ", " unavailable)
        (Mediator.answer_oql answer);
      let stale = Mediator.stale_hint m answer in
      if stale <> [] then
        Fmt.pr "note: data changed at %s since it answered@."
          (String.concat ", " stale)
  | Mediator.Unavailable repos ->
      Fmt.pr "no answer: %s unavailable@." (String.concat ", " repos));
  let s = outcome.Mediator.stats in
  Fmt.pr
    "stats: %d execs (%d answered, %d blocked), %d tuples shipped, %.1f \
     virtual ms%s%s@."
    s.Disco_runtime.Runtime.execs_issued s.Disco_runtime.Runtime.execs_answered
    s.Disco_runtime.Runtime.execs_blocked
    s.Disco_runtime.Runtime.tuples_shipped s.Disco_runtime.Runtime.elapsed_ms
    (if outcome.Mediator.from_cache then ", cached plan" else "")
    (if outcome.Mediator.fallback then ", capability fallback" else "");
  let c = outcome.Mediator.answer_cache in
  if c.Mediator.answer_hits > 0 || c.Mediator.stale_hits > 0 then
    Fmt.pr "answer cache: %d fresh hit(s), %d stale serve(s)%s@."
      c.Mediator.answer_hits c.Mediator.stale_hits
      (if c.Mediator.stale_hits > 0 then
         Fmt.str " (max staleness %.1f ms)" c.Mediator.stale_ms
       else "")

let print_breaker_state m =
  match Mediator.retry_policy m with
  | None -> ()
  | Some _ -> (
      match Mediator.breaker_snapshot m with
      | [] -> ()
      | rows ->
          List.iter
            (fun (id, fails, opened_at) ->
              match opened_at with
              | Some t ->
                  Fmt.pr
                    "breaker: %s OPEN since t=%.1f (%d consecutive failures)@."
                    id t fails
              | None ->
                  Fmt.pr "breaker: %s closed (%d consecutive failure(s))@." id
                    fails)
            rows)

let with_conf ?trace_sink ?metrics ?recover_at ?(force_cache = false) f
    (conf : Conf.t) verbosity =
  setup_logs (List.length verbosity);
  let cache =
    if force_cache || conf.Conf.use_cache then Some (Answer_cache.create ())
    else None
  in
  match f (build_mediator ?cache ?trace_sink ?metrics ?recover_at conf) with
  | () -> `Ok ()
  | exception Mediator.Mediator_error m -> `Error (false, m)
  | exception Disco_runtime.Runtime.Runtime_error m -> `Error (false, m)

(* -- commands -- *)

let query_cmd =
  let q_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OQL")
  in
  let recover_arg =
    let doc =
      "Virtual time (ms) at which the --down repositories come back up — \
       with --retry, the scheduler's re-polls pick them up mid-query."
    in
    Arg.(value & opt (some float) None & info [ "recover-at" ] ~docv:"MS" ~doc)
  in
  let run conf verbosity recover_at q =
    with_conf ?recover_at
      (fun m ->
        print_outcome m (Mediator.query ~opts:(conf_qopts conf) m q);
        print_breaker_state m)
      conf verbosity
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run an OQL query against the federation.")
    Term.(ret (const run $ conf_term $ verbosity_arg $ recover_arg $ q_arg))

let explain_cmd =
  let q_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OQL")
  in
  let run conf verbosity q =
    with_conf (fun m -> Fmt.pr "%s@." (Mediator.explain m q)) conf verbosity
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show the optimizer's plan for a query without executing it.")
    Term.(ret (const run $ conf_term $ verbosity_arg $ q_arg))

let schema_cmd =
  let run conf verbosity =
    with_conf
      (fun m ->
        let reg = Mediator.registry m in
        Fmt.pr "interfaces:@.";
        List.iter
          (fun name ->
            let attrs = Registry.attributes_of reg name in
            Fmt.pr "  %s { %s }@." name
              (String.concat "; "
                 (List.map
                    (fun (a, ty) ->
                      Fmt.str "%s: %s" a (Disco_odl.Otype.to_string ty))
                    attrs)))
          (Registry.interface_names reg);
        Fmt.pr "extents:@.";
        List.iter
          (fun e ->
            Fmt.pr "  %s of %s via %s at %s@." e.Registry.me_name
              e.Registry.me_interface e.Registry.me_wrapper
              e.Registry.me_repository)
          (Registry.all_extents reg);
        Fmt.pr "views: %s@."
          (String.concat ", " (Registry.view_names reg)))
      conf verbosity
  in
  Cmd.v
    (Cmd.info "schema" ~doc:"Print the mediator's internal schema database.")
    Term.(ret (const run $ conf_term $ verbosity_arg))

let repl_cmd =
  let run conf verbosity =
    with_conf
      (fun m ->
        Fmt.pr
          "disco repl — OQL queries, ':odl <stmt>' to define, ':quit' to \
           leave@.";
        let rec loop () =
          Fmt.pr "disco> %!";
          match In_channel.input_line stdin with
          | None -> ()
          | Some "" -> loop ()
          | Some ":quit" | Some ":q" -> ()
          | Some line
            when String.length line > 5 && String.sub line 0 5 = ":odl " ->
              (try
                 Mediator.load_odl m
                   (String.sub line 5 (String.length line - 5))
               with Mediator.Mediator_error e -> Fmt.pr "error: %s@." e);
              loop ()
          | Some q ->
              (try print_outcome m (Mediator.query ~opts:(conf_qopts conf) m q)
               with
              | Mediator.Mediator_error e -> Fmt.pr "error: %s@." e
              | Disco_runtime.Runtime.Runtime_error e ->
                  Fmt.pr "error: %s@." e);
              loop ()
        in
        loop ())
      conf verbosity
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive OQL shell over the federation.")
    Term.(ret (const run $ conf_term $ verbosity_arg))

let catalog_cmd =
  let run conf verbosity =
    with_conf
      (fun m ->
        let module Catalog = Disco_catalog.Catalog in
        let c = Catalog.create ~name:"discoctl" in
        Mediator.register_in_catalog m c;
        Fmt.pr "%a@." Catalog.pp c;
        List.iter
          (fun e ->
            Fmt.pr "  %-10s %-12s owner=%s %s@."
              (Catalog.kind_name e.Catalog.e_kind)
              e.Catalog.e_name e.Catalog.e_owner
              (String.concat ", "
                 (List.map (fun (k, v) -> k ^ "=" ^ v) e.Catalog.e_info)))
          (Catalog.entries c))
      conf verbosity
  in
  Cmd.v
    (Cmd.info "catalog"
       ~doc:"Register the federation in a catalog and print the overview.")
    Term.(ret (const run $ conf_term $ verbosity_arg))

let shards_cmd =
  let bounds_str p k =
    match p.Shard.p_scheme with
    | Shard.Hash _ -> ""
    | Shard.Range bs ->
        let n = List.length bs in
        let endpoint = Fmt.to_to_string V.pp in
        let lo = if k = 0 then "-inf" else endpoint (List.nth bs (k - 1)) in
        let hi = if k >= n then "+inf" else endpoint (List.nth bs k) in
        Fmt.str "  key in [%s, %s)" lo hi
  in
  let run conf verbosity =
    with_conf
      (fun m ->
        let reg = Mediator.registry m in
        let parents =
          List.filter
            (fun e -> e.Registry.me_partition <> None)
            (Registry.all_extents reg)
        in
        if parents = [] then
          Fmt.pr
            "no sharded extents (try --shards 4, or --odl with a 'sharded \
             by' extent)@."
        else
          List.iter
            (fun e ->
              match e.Registry.me_partition with
              | None -> ()
              | Some p ->
                  Fmt.pr "%s of %s: %a@." e.Registry.me_name
                    e.Registry.me_interface Shard.pp p;
                  List.iteri
                    (fun k child ->
                      Fmt.pr "  shard %d: %s at %s via %s%s@." k
                        child.Registry.me_name child.Registry.me_repository
                        child.Registry.me_wrapper (bounds_str p k))
                    (Registry.shard_children reg e.Registry.me_name))
            parents)
      conf verbosity
  in
  Cmd.v
    (Cmd.info "shards"
       ~doc:
         "Print the shard map of every partitioned extent: shard key, \
          scheme, and the per-shard child extents with their repositories \
          (range shards also show their key interval).")
    Term.(ret (const run $ conf_term $ verbosity_arg))

let indexes_cmd =
  let run conf verbosity =
    with_conf
      (fun m ->
        let module Table = Disco_relation.Table in
        let module Index = Disco_relation.Index in
        let rows = ref [] in
        List.iter
          (fun (repo, _) ->
            match Mediator.find_source m repo with
            | Some src -> (
                match Source.kind src with
                | Source.Relational db ->
                    List.iter
                      (fun tname ->
                        let t = Database.get_table db tname in
                        List.iter
                          (fun (column, kind) ->
                            rows :=
                              (repo, tname, column, Index.kind_name kind)
                              :: !rows)
                          (Table.indexes t))
                      (Database.table_names db)
                | Source.Key_value _ | Source.Flat_file _ | Source.Text _ ->
                    ())
            | None -> ())
          (Mediator.source_stats m);
        (match List.rev !rows with
        | [] -> Fmt.pr "no declared indexes (try --index table:column:kind)@."
        | rows ->
            List.iter
              (fun (repo, table, column, kind) ->
                Fmt.pr "%s: %s.%s %s@." repo table column kind)
              rows);
        let cost = Mediator.cost_model m in
        List.iter
          (fun (repo, _) ->
            match Disco_cost.Cost_model.indexed_attrs cost ~repo with
            | [] -> ()
            | attrs ->
                Fmt.pr "cost model: %s serves %s@." repo
                  (String.concat ", "
                     (List.map
                        (fun (a, k) ->
                          Fmt.str "%s (%s)" a
                            (match k with
                            | `Hash -> "hash"
                            | `Sorted -> "sorted"))
                        attrs)))
          (Mediator.source_stats m))
      conf verbosity
  in
  Cmd.v
    (Cmd.info "indexes"
       ~doc:
         "List the declared secondary indexes of every repository (and \
          which attributes the cost model prices as index-served). \
          Declare them with --index table:column:kind.")
    Term.(ret (const run $ conf_term $ verbosity_arg))

let print_cache_stats m =
  (match Mediator.answer_cache_stats m with
  | Some s -> Fmt.pr "answer cache: %a@." Answer_cache.pp_stats s
  | None -> Fmt.pr "answer cache: none attached@.");
  let p = Mediator.plan_cache_stats m in
  Fmt.pr "plan cache: %d/%d entries, %d hits, %d misses, %d evictions@."
    p.Mediator.p_size p.Mediator.p_capacity p.Mediator.p_hits
    p.Mediator.p_misses p.Mediator.p_evictions

let cache_stats_cmd =
  let q_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OQL")
  in
  let repeat_arg =
    let doc = "Number of times to run the query (warm-up effects show)." in
    Arg.(value & opt int 3 & info [ "repeat" ] ~docv:"K" ~doc)
  in
  let run conf verbosity repeat q =
    with_conf ~force_cache:true
      (fun m ->
        for k = 1 to repeat do
          let o = Mediator.query ~opts:(conf_qopts conf) m q in
          let s = o.Mediator.stats in
          Fmt.pr
            "run %d: %d execs, %d answered from source, %d from cache, %d \
             tuples shipped, %.1f virtual ms@."
            k s.Disco_runtime.Runtime.execs_issued
            (s.Disco_runtime.Runtime.execs_answered
            - s.Disco_runtime.Runtime.cache_hits
            - s.Disco_runtime.Runtime.cache_stale_hits)
            s.Disco_runtime.Runtime.cache_hits
            s.Disco_runtime.Runtime.tuples_shipped
            s.Disco_runtime.Runtime.elapsed_ms
        done;
        print_cache_stats m)
      conf verbosity
  in
  Cmd.v
    (Cmd.info "cache-stats"
       ~doc:
         "Run a query repeatedly with the semantic answer cache attached and \
          print hit/miss/eviction counters.")
    Term.(ret (const run $ conf_term $ verbosity_arg $ repeat_arg $ q_arg))

let trace_cmd =
  let q_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OQL")
  in
  let json_arg =
    let doc = "Emit the trace as JSON instead of the pretty span tree." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let recover_arg =
    let doc =
      "Virtual time (ms) at which the --down repositories come back up."
    in
    Arg.(value & opt (some float) None & info [ "recover-at" ] ~docv:"MS" ~doc)
  in
  let run conf verbosity recover_at json q =
    let traces = ref [] in
    let sink trace = traces := trace :: !traces in
    with_conf ?recover_at ~trace_sink:sink
      (fun m ->
        let o = Mediator.query ~opts:(conf_qopts conf) m q in
        List.iter
          (fun trace ->
            if json then Fmt.pr "%s@." (Disco_obs.Trace.to_json trace)
            else Fmt.pr "%a" Disco_obs.Trace.pp trace)
          (List.rev !traces);
        if not json then print_outcome m o)
      conf verbosity
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a query with tracing enabled and print its span tree: \
          per-phase virtual timings plus one line per exec with \
          repository, origin (source/cache/stale/failover), elapsed ms \
          and tuples shipped. With --retry, re-polls show as child spans \
          of their exec.")
    Term.(
      ret
        (const run $ conf_term $ verbosity_arg $ recover_arg $ json_arg $ q_arg))

let metrics_cmd =
  let q_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OQL")
  in
  let repeat_arg =
    let doc =
      "Number of times to run the query before dumping the registry."
    in
    Arg.(value & opt int 3 & info [ "repeat" ] ~docv:"K" ~doc)
  in
  let json_arg =
    let doc = "Emit the metrics registry as JSON." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run conf verbosity repeat json q =
    (* an isolated registry: only this invocation's counters show *)
    let metrics = Metrics.create () in
    with_conf ~metrics
      (fun m ->
        for _ = 1 to repeat do
          ignore (Mediator.query ~opts:(conf_qopts conf) m q)
        done;
        if json then Fmt.pr "%s@." (Metrics.to_json metrics)
        else Fmt.pr "%a" Metrics.pp metrics;
        print_breaker_state m)
      conf verbosity
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a query repeatedly and dump the mediator's metrics registry \
          (execs by origin, plan-cache hits, optimizer rules fired, \
          runtime.retry.* / runtime.hedge.* under --retry, ...).")
    Term.(
      ret
        (const run $ conf_term $ verbosity_arg $ repeat_arg $ json_arg $ q_arg))

let resubmit_cmd =
  let q_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OQL")
  in
  let recover_arg =
    let doc =
      "Virtual time (ms) at which the --down repositories come back up."
    in
    Arg.(value & opt float 500.0 & info [ "recover-at" ] ~docv:"MS" ~doc)
  in
  let run conf verbosity recover_at q =
    with_conf ~force_cache:true ~recover_at
      (fun m ->
        let o = Mediator.query ~opts:(conf_qopts conf) m q in
        Fmt.pr "initial answer:@.";
        print_outcome m o;
        let queue = Resubmission.create ~clock:(Mediator.clock m) () in
        match Mediator.record_partial queue o with
        | None -> Fmt.pr "@.nothing to resubmit: the answer is complete.@."
        | Some id ->
            Fmt.pr "@.recorded partial #%d; draining as sources recover...@."
              id;
            let converged =
              Resubmission.drain queue
                ~source_of:(Mediator.find_source m)
                ~run:(Mediator.resubmission_runner ~opts:(conf_qopts conf) m)
            in
            List.iter
              (fun e ->
                match e.Resubmission.state with
                | Resubmission.Converged rounds ->
                    Fmt.pr
                      "partial #%d converged after %d round(s) at t=%.1f@."
                      e.Resubmission.id rounds
                      (Disco_source.Clock.now (Mediator.clock m))
                | Resubmission.Pending ->
                    Fmt.pr "partial #%d still pending (no recovery in sight)@."
                      e.Resubmission.id)
              (Resubmission.entries queue);
            if converged > 0 then (
              Fmt.pr "@.re-running the original query (cache is now warm):@.";
              print_outcome m (Mediator.query ~opts:(conf_qopts conf) m q));
            print_cache_stats m)
      conf verbosity
  in
  Cmd.v
    (Cmd.info "resubmit"
       ~doc:
         "Run a query against a federation with recovering outages, record \
          the partial answer, and drive it to completion through the \
          resubmission manager.")
    Term.(ret (const run $ conf_term $ verbosity_arg $ recover_arg $ q_arg))

(* -- serve: a long-running mediator behind the line protocol -- *)

let body_of_outcome o =
  match o.Mediator.answer with
  | Mediator.Complete v -> Fmt.str "%a" V.pp v
  | Mediator.Partial { unavailable; _ } as a ->
      Fmt.str "partial(%s) %s"
        (String.concat "," unavailable)
        (Mediator.answer_oql a)
  | Mediator.Unavailable repos ->
      Fmt.str "unavailable(%s)" (String.concat "," repos)

let serve_cmd =
  let port_arg =
    let doc = "TCP port to listen on (loopback only)." in
    Arg.(value & opt int 7411 & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let inflight_arg =
    let doc =
      "Admission limit: the number of worker threads, i.e. queries \
       executing concurrently. Each worker owns a private mediator \
       replica of the federation; they share one wall-clock scheduler \
       and one metrics registry."
    in
    Arg.(value & opt int 4 & info [ "inflight" ] ~docv:"N" ~doc)
  in
  let queue_bound_arg =
    let doc =
      "Backlog bound: once this many accepted queries are waiting for a \
       worker, further submissions are shed (the client gets back the \
       query text as the residual, in the spirit of partial answers)."
    in
    Arg.(value & opt int 64 & info [ "queue-bound" ] ~docv:"N" ~doc)
  in
  let domains_arg =
    let doc =
      "Domains in the wall-clock scheduler's pool (default: cores - 1)."
    in
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)
  in
  let run conf verbosity port inflight queue_bound domains =
    setup_logs (List.length verbosity);
    match
      let sched = Scheduler.wall ?domains () in
      let metrics = Metrics.create () in
      let opts = conf_qopts conf in
      let meds =
        Array.init inflight (fun _ ->
            let cache =
              if conf.Conf.use_cache then Some (Answer_cache.create ())
              else None
            in
            build_mediator ?cache ~metrics ~sched conf)
      in
      let worker i ~tenant:_ oql =
        match Mediator.query ~opts meds.(i) oql with
        | o ->
            Server.Answered
              {
                body = body_of_outcome o;
                elapsed_ms = o.Mediator.stats.Disco_runtime.Runtime.elapsed_ms;
              }
        | exception Mediator.Mediator_error e -> Server.Failed e
        | exception Disco_runtime.Runtime.Runtime_error e -> Server.Failed e
      in
      let srv = Server.create ~inflight ~queue_bound ~metrics ~worker () in
      Server.serve_tcp srv ~port ();
      Scheduler.shutdown sched
    with
    | () -> `Ok ()
    | exception Invalid_argument msg -> `Error (false, msg)
    | exception Mediator.Mediator_error msg -> `Error (false, msg)
    | exception Unix.Unix_error (e, _, _) ->
        `Error (false, "serve: " ^ Unix.error_message e)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve the federation over a line protocol: 'query <tenant> \
          <oql>' answers 'ok <elapsed-ms> <answer>' or 'shed <residual>', \
          'health' and 'metrics' report server state, 'shutdown' stops \
          the listener. Admission control holds concurrent queries at \
          --inflight and sheds beyond --queue-bound; tenants are drained \
          round-robin so none starves.")
    Term.(
      ret
        (const run $ conf_term $ verbosity_arg $ port_arg $ inflight_arg
       $ queue_bound_arg $ domains_arg))

(* -- load: open-loop Zipfian workload against a serve instance -- *)

let default_query_pool =
  [|
    "select x.name from x in person where x.salary > 10";
    "select x.name from x in person";
    "select x from x in person where x.id < 5";
    "select x.salary from x in person where x.salary < 40";
  |]

(* One short-lived protocol exchange per command line. *)
let tcp_lines ~host ~port cmds =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      List.map
        (fun cmd ->
          output_string oc (cmd ^ "\n");
          flush oc;
          match input_line ic with exception End_of_file -> "" | l -> l)
        cmds)

let load_cmd =
  let host_arg =
    let doc = "Server host." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)
  in
  let port_arg =
    let doc = "Server port." in
    Arg.(value & opt int 7411 & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let rate_arg =
    let doc = "Arrival rate in queries per second (open loop)." in
    Arg.(value & opt float 50.0 & info [ "rate" ] ~docv:"QPS" ~doc)
  in
  let duration_arg =
    let doc = "Run length in seconds." in
    Arg.(value & opt float 2.0 & info [ "duration" ] ~docv:"S" ~doc)
  in
  let zipf_arg =
    let doc = "Zipf skew of query-pool popularity." in
    Arg.(value & opt float 1.1 & info [ "zipf" ] ~docv:"S" ~doc)
  in
  let seed_arg =
    let doc = "Seed for the deterministic request sequence." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let tenants_arg =
    let doc = "Number of synthetic tenants (t0..tN-1, round-robin)." in
    Arg.(value & opt int 2 & info [ "tenants" ] ~docv:"N" ~doc)
  in
  let query_arg =
    let doc =
      "Add an OQL query to the pool (repeatable; default: a built-in \
       person-query mix)."
    in
    Arg.(value & opt_all string [] & info [ "query" ] ~docv:"OQL" ~doc)
  in
  let health_flag =
    let doc = "After the run, scrape and print health and metrics." in
    Arg.(value & flag & info [ "health" ] ~doc)
  in
  let shutdown_flag =
    let doc = "Ask the server to shut down once the run (and scrape) end." in
    Arg.(value & flag & info [ "shutdown" ] ~doc)
  in
  let json_arg =
    let doc = "Emit the result as a JSON object." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run verbosity host port rate duration zipf seed tenants queries health
      shutdown json =
    setup_logs (List.length verbosity);
    let queries =
      match queries with [] -> default_query_pool | qs -> Array.of_list qs
    in
    let tenants = List.init (max 1 tenants) (Fmt.str "t%d") in
    match
      Loadgen.run ~zipf_s:zipf ~seed ~tenants ~queries ~rate
        ~duration_s:duration
        (Loadgen.Tcp { host; port })
    with
    | exception Invalid_argument msg -> `Error (false, msg)
    | res ->
        if json then
          Fmt.pr
            {|{"sent": %d, "completed": %d, "shed": %d, "errors": %d, "duration_s": %.3f, "qps": %.1f, "p50_ms": %.3f, "p99_ms": %.3f, "p999_ms": %.3f}@.|}
            res.Loadgen.r_sent res.Loadgen.r_completed res.Loadgen.r_shed
            res.Loadgen.r_errors res.Loadgen.r_duration_s res.Loadgen.r_qps
            res.Loadgen.r_p50_ms res.Loadgen.r_p99_ms res.Loadgen.r_p999_ms
        else Fmt.pr "%a@." Loadgen.pp_result res;
        (if health || shutdown then
           let cmds =
             (if health then [ "health"; "metrics" ] else [])
             @ if shutdown then [ "shutdown" ] else []
           in
           try
             List.iter2
               (fun cmd line -> Fmt.pr "%s: %s@." cmd line)
               cmds
               (tcp_lines ~host ~port cmds)
           with Unix.Unix_error (e, _, _) ->
             Fmt.epr "warning: scrape failed: %s@." (Unix.error_message e));
        if res.Loadgen.r_completed = 0 && res.Loadgen.r_errors > 0 then
          `Error (false, "load: no request completed (is the server up?)")
        else `Ok ()
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Drive a running 'discoctl serve' with an open-loop Zipfian \
          workload (one connection per request) and report qps plus \
          p50/p99/p999 latency. Arrivals fire on schedule regardless of \
          completions, so shedding shows up instead of being hidden by \
          coordinated omission.")
    Term.(
      ret
        (const run $ verbosity_arg $ host_arg $ port_arg $ rate_arg
       $ duration_arg $ zipf_arg $ seed_arg $ tenants_arg $ query_arg
       $ health_flag $ shutdown_flag $ json_arg))

(* -- lint: static verification of schema and query files -- *)

(* Recursively collect .odl / .oql files under each path, sorted so runs
   are deterministic. *)
let rec lint_collect path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.concat_map (fun f -> lint_collect (Filename.concat path f))
  else if
    Filename.check_suffix path ".odl" || Filename.check_suffix path ".oql"
  then [ path ]
  else []

let lint_diag ~code ~severity ~path fmt =
  Format.kasprintf
    (fun d_message ->
      { Check.d_code = code; d_severity = severity; d_path = path; d_message })
    fmt

(* One query per line; blank lines and [--] comments are skipped. A
   [--@full-pushdown] directive line applies to the next query: its
   capability-maximal normalization must be fully accepted by the
   wrappers (DISCO-E005 otherwise). *)
let lint_queries reg checker ~can_push ~wrapper_of ~repo_of file =
  let diags = ref [] in
  let add line ds =
    diags :=
      !diags @ List.map (fun d -> (Fmt.str "%s:%d" file line, d)) ds
  in
  let full_pushdown = ref false in
  let check_full_pushdown lineno located =
    let pushed = Rules.normalize ~can_push:Rules.push_all located in
    List.iter
      (fun (repo, sub) ->
        let ws = List.filter_map wrapper_of (Expr.gets sub) in
        match ws with
        | w :: _ when not (Wrapper.accepts w sub) ->
            add lineno
              [
                lint_diag ~code:"DISCO-E005" ~severity:Check.Error
                  ~path:(Fmt.str "submit(%s)" repo)
                  "full-pushdown directive: wrapper %s refuses %s"
                  (Wrapper.name w) (Expr.to_string sub);
              ]
        | _ -> ())
      (Expr.submits pushed)
  in
  let lint_query lineno q =
    match Oql_parser.parse q with
    | exception Disco_lex.Lexer.Error (msg, pos) ->
        add lineno
          [
            lint_diag ~code:"DISCO-E012" ~severity:Check.Error ~path:"query"
              "parse error at offset %d: %s" pos msg;
          ]
    | ast -> (
        match Expand.expand reg ast with
        | exception Expand.Expand_error msg ->
            add lineno
              [
                lint_diag ~code:"DISCO-E013" ~severity:Check.Error ~path:"query"
                  "expansion failed: %s" msg;
              ]
        | expanded -> (
            match Typecheck.check (Typecheck.env_of_registry reg) expanded with
            | Error msg ->
                add lineno
                  [
                    lint_diag ~code:"DISCO-E013" ~severity:Check.Error
                      ~path:"query" "type error: %s" msg;
                  ]
            | Ok _ -> (
                match Compile.compile expanded with
                | Error _ ->
                    (* outside the algebraic subset: the mediator evaluates
                       such queries hybrid, nothing to verify statically *)
                    ()
                | Ok compiled ->
                    let located = Compile.locate ~repo_of compiled in
                    add lineno
                      (Check.check_expr checker
                         (Rules.normalize ~can_push located));
                    if !full_pushdown then check_full_pushdown lineno located)))
  in
  List.iteri
    (fun i raw ->
      let line = String.trim raw in
      let directive = "--@full-pushdown" in
      if line = "" then ()
      else if line = directive then full_pushdown := true
      else if String.length line >= 2 && String.sub line 0 2 = "--" then ()
      else (
        lint_query (i + 1) line;
        full_pushdown := false))
    (String.split_on_char '\n' (read_file file));
  !diags

(* Declared indexes of the repository serving an extent: a Repository
   object may carry an [indexes="id,person0.salary"] argument listing
   the attributes (optionally [extent.]-qualified) its source serves
   from an index. The audit checks indexed wrappers' advertisements
   against this list. *)
let lint_indexed reg me f =
  match Registry.find_object reg me.Registry.me_repository with
  | Some o -> (
      match List.assoc_opt "indexes" o.Registry.obj_args with
      | Some (V.String s) ->
          let ixs = List.map String.trim (String.split_on_char ',' s) in
          List.mem f ixs || List.mem (me.Registry.me_name ^ "." ^ f) ixs
      | _ -> false)
  | None -> false

(* Conformance audit of every wrapper object in the registry: the
   constructor must resolve (with its arguments — an indexed wrapper's
   advertised attributes live there), and the grammar must not
   over-claim on the extents the wrapper serves. *)
let lint_audit reg =
  List.concat_map
    (fun name ->
      match Registry.find_object reg name with
      | Some o
        when String.length o.Registry.obj_constructor >= 7
             && String.sub o.Registry.obj_constructor 0 7 = "Wrapper" -> (
          match
            Wrapper.of_constructor_args o.Registry.obj_constructor
              o.Registry.obj_args
          with
          | None ->
              [
                ( "(registry)",
                  lint_diag ~code:"DISCO-E010" ~severity:Check.Error ~path:name
                    "wrapper constructor %s is unknown"
                    o.Registry.obj_constructor );
              ]
          | Some w ->
              Registry.all_extents reg
              |> List.filter (fun me -> me.Registry.me_wrapper = name)
              |> List.concat_map (fun me ->
                     Check.audit_wrapper ~indexed:(lint_indexed reg me)
                       ~extent:me.Registry.me_name
                       ~attrs:
                         (Registry.attributes_of reg me.Registry.me_interface)
                       w
                     |> List.map (fun d -> ("(registry)", d))))
      | _ -> [])
    (List.sort String.compare (Registry.object_names reg))

let lint_cmd =
  let paths_arg =
    let doc =
      "Files or directories to lint; directories are searched recursively \
       for .odl schema files and .oql query files (one query per line, \
       [--] comments)."
    in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"PATH" ~doc)
  in
  let json_arg =
    let doc = "Emit diagnostics as a JSON array (stable ordering)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run verbosity json paths =
    setup_logs (List.length verbosity);
    let files = List.sort String.compare (List.concat_map lint_collect paths) in
    let odl_files =
      List.filter (fun f -> Filename.check_suffix f ".odl") files
    in
    let oql_files =
      List.filter (fun f -> Filename.check_suffix f ".oql") files
    in
    let reg = Registry.create () in
    let schema_diags =
      List.concat_map
        (fun f ->
          match Odl_parser.load reg (read_file f) with
          | () -> []
          | exception Registry.Odl_error msg ->
              [
                ( f,
                  lint_diag ~code:"DISCO-E011" ~severity:Check.Error
                    ~path:"schema" "%s" msg );
              ]
          | exception Disco_lex.Lexer.Error (msg, pos) ->
              [
                ( f,
                  lint_diag ~code:"DISCO-E011" ~severity:Check.Error
                    ~path:"schema" "lex error at offset %d: %s" pos msg );
              ])
        odl_files
    in
    let wrapper_of ext =
      Option.bind (Registry.find_extent reg ext) (fun me ->
          Option.bind (Registry.find_object reg me.Registry.me_wrapper)
            (fun o -> Wrapper.of_constructor o.Registry.obj_constructor))
    in
    let repo_of ext =
      Option.map
        (fun me -> me.Registry.me_repository)
        (Registry.find_extent reg ext)
    in
    let can_push ~repo:_ expr =
      let extents = Expr.gets expr in
      let ws = List.filter_map wrapper_of extents in
      List.length ws = List.length extents
      && (match ws with
         | [] -> false
         | first :: rest ->
             List.for_all (fun w -> Wrapper.name w = Wrapper.name first) rest)
      && List.for_all (fun w -> Wrapper.accepts w expr) ws
    in
    let checker = Check.of_registry reg in
    let query_diags =
      List.concat_map
        (lint_queries reg checker ~can_push ~wrapper_of ~repo_of)
        oql_files
    in
    let audit_diags =
      lint_audit reg
      @ List.map (fun d -> ("(registry)", d)) (Check.audit_shards checker)
    in
    let diags = schema_diags @ query_diags @ audit_diags in
    let errors =
      List.length
        (List.filter (fun (_, d) -> d.Check.d_severity = Check.Error) diags)
    in
    let warnings = List.length diags - errors in
    if json then Fmt.pr "%s@." (Check.json_of_diags diags)
    else (
      List.iter (fun (f, d) -> Fmt.pr "%s: %a@." f Check.pp_diag d) diags;
      Fmt.pr "%d file(s) checked, %d error(s), %d warning(s)@."
        (List.length files) errors warnings);
    Format.print_flush ();
    if errors > 0 then Stdlib.exit 1;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically verify ODL schemas and OQL query files: schema-aware \
          typing, wrapper capability conformance, decompilability, a \
          wrapper over-claim audit, and a shard-map audit (unknown shard \
          repositories, bad shard keys, unsorted range boundaries, \
          heterogeneous shard grammars). Exits non-zero on any DISCO-E \
          diagnostic.")
    Term.(ret (const run $ verbosity_arg $ json_arg $ paths_arg))

(* -- analyze: federation-wide static analysis -- *)

let analyze_cmd =
  let paths_arg =
    let doc =
      "Files or directories to analyze; directories are searched \
       recursively for .odl schema files and .oql workload files (one \
       query per line, [--] comments)."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"PATH" ~doc)
  in
  let workload_arg =
    let doc =
      "Additional OQL workload corpus file(s); repeatable. Added to the \
       .oql files found under PATH."
    in
    Arg.(value & opt_all string [] & info [ "workload" ] ~docv:"FILE" ~doc)
  in
  let json_arg =
    let doc =
      "Emit the report as a JSON object; its diagnostics array uses the \
       same schema and ordering as lint --json."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let doc_arg =
    let doc =
      "Print the generated diagnostic-code reference (doc/diagnostics.md) \
       and exit."
    in
    Arg.(value & flag & info [ "doc" ] ~doc)
  in
  let run verbosity json doc_flag workload paths =
    setup_logs (List.length verbosity);
    if doc_flag then begin
      print_string (Analysis.diagnostics_doc ());
      `Ok ()
    end
    else if paths = [] && workload = [] then
      `Error (true, "a PATH (or --workload) is required unless --doc is given")
    else begin
      let files =
        List.sort String.compare (List.concat_map lint_collect paths)
      in
      let odl_files =
        List.filter (fun f -> Filename.check_suffix f ".odl") files
      in
      let oql_files =
        List.sort_uniq String.compare
          (List.filter (fun f -> Filename.check_suffix f ".oql") files
          @ workload)
      in
      let reg = Registry.create () in
      let schema_diags =
        List.concat_map
          (fun f ->
            match Odl_parser.load reg (read_file f) with
            | () -> []
            | exception Registry.Odl_error msg ->
                [
                  ( f,
                    lint_diag ~code:"DISCO-E011" ~severity:Check.Error
                      ~path:"schema" "%s" msg );
                ]
            | exception Disco_lex.Lexer.Error (msg, pos) ->
                [
                  ( f,
                    lint_diag ~code:"DISCO-E011" ~severity:Check.Error
                      ~path:"schema" "lex error at offset %d: %s" pos msg );
                ])
          odl_files
      in
      let corpus = List.map (fun f -> (f, read_file f)) oql_files in
      let report = Analysis.analyze ~workload:corpus reg in
      let report =
        {
          report with
          Analysis.r_diags =
            List.sort
              (fun (f1, d1) (f2, d2) ->
                compare
                  (f1, d1.Check.d_code, d1.Check.d_path, d1.Check.d_message)
                  (f2, d2.Check.d_code, d2.Check.d_path, d2.Check.d_message))
              (schema_diags @ report.Analysis.r_diags);
        }
      in
      if json then Fmt.pr "%s@." (Analysis.json_of_report report)
      else begin
        Fmt.pr "%a" Analysis.pp_report report;
        let errors, warnings =
          List.partition
            (fun (_, d) -> d.Check.d_severity = Check.Error)
            report.Analysis.r_diags
        in
        Fmt.pr "%d error(s), %d warning(s)@." (List.length errors)
          (List.length warnings)
      end;
      Format.print_flush ();
      if
        List.exists
          (fun (_, d) -> d.Check.d_severity = Check.Error)
          report.Analysis.r_diags
      then Stdlib.exit 1;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Whole-federation static analysis of an ODL schema plus an OQL \
          workload, without contacting any source: per-query minimal \
          source sets and the exact residual surviving each \
          single-repository outage (single-point-of-failure detection \
          across replicas and shards), per-wrapper pushdown profiles with \
          dead grammar productions, and cross-subsystem consistency \
          checks (unconstrained shard keys, unused index advertisements, \
          inconsistent type maps and views, answer-cache key collisions). \
          Exits non-zero on any error-severity diagnostic.")
    Term.(
      ret
        (const run $ verbosity_arg $ json_arg $ doc_arg $ workload_arg
       $ paths_arg))

let main =
  Cmd.group
    (Cmd.info "discoctl" ~version:"1.0.0"
       ~doc:"Drive a Disco heterogeneous-database mediator.")
    [
      query_cmd; explain_cmd; schema_cmd; repl_cmd; catalog_cmd; shards_cmd;
      indexes_cmd; cache_stats_cmd; resubmit_cmd; trace_cmd; metrics_cmd;
      serve_cmd; load_cmd; lint_cmd; analyze_cmd;
    ]

let () = exit (Cmd.eval main)
