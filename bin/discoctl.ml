(* discoctl — drive a Disco mediator from the command line.

   The tool builds a demo federation (the paper's person world, a
   configurable number of sources) or loads ODL from a file, then runs
   queries, explains plans, simulates outages, and prints the catalog.

   Examples:

     discoctl query "select x.name from x in person where x.salary > 10"
     discoctl query --sources 8 --down r1,r3 --timeout 50 "..."
     discoctl explain "select x.name from x in person"
     discoctl repl --sources 4
     discoctl schema --odl my_schema.odl *)

module V = Disco_value.Value
module Source = Disco_source.Source
module Schedule = Disco_source.Schedule
module Datagen = Disco_source.Datagen
module Database = Disco_relation.Database
module Mediator = Disco_core.Mediator
module Registry = Disco_odl.Registry

open Cmdliner

let setup_logs verbosity =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level
    (match verbosity with
    | 0 -> Some Logs.Warning
    | 1 -> Some Logs.Info
    | _ -> Some Logs.Debug)

let verbosity_arg =
  let doc = "Log verbosity: repeat for more (-v info, -vv debug)." in
  Arg.(value & flag_all & info [ "v"; "verbose" ] ~doc)

(* -- federation setup -- *)

let build_mediator ~sources ~rows ~wrapper ~down ~odl_file =
  let m = Mediator.create ~name:"discoctl" () in
  (match odl_file with
  | Some path ->
      let ic = open_in path in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      Mediator.load_odl m text
  | None ->
      Mediator.load_odl m
        (Fmt.str
           {|w0 := %s();
             interface Person (extent person) {
               attribute Short id;
               attribute String name;
               attribute Short salary; }|}
           wrapper);
      for i = 0 to sources - 1 do
        let name = Fmt.str "person%d" i in
        let db = Database.create ~name:"db" in
        ignore
          (Datagen.table_of db ~name Datagen.person_schema
             (Datagen.person_rows ~seed:(42 + i) ~n:rows));
        Mediator.register_source m ~name:(Fmt.str "r%d" i)
          (Source.create ~id:name
             ~address:
               (Source.address ~host:(Fmt.str "site%d" i) ~db_name:"db"
                  ~ip:(Fmt.str "10.0.0.%d" i) ())
             (Source.Relational db));
        Mediator.load_odl m
          (Fmt.str
             {|r%d := Repository(host="site%d", name="db", address="10.0.0.%d");
               extent person%d of Person wrapper w0 repository r%d;|}
             i i i i i)
      done);
  List.iter
    (fun repo ->
      match Mediator.find_source m repo with
      | Some src -> Source.set_schedule src Schedule.always_down
      | None -> Fmt.epr "warning: no source attached to %s@." repo)
    down;
  m

let print_outcome outcome =
  (match outcome.Mediator.answer with
  | Mediator.Complete v -> Fmt.pr "answer: %a@." V.pp v
  | Mediator.Partial { oql; unavailable; stale_hint } ->
      Fmt.pr "partial answer (unavailable: %s):@.  %s@."
        (String.concat ", " unavailable)
        oql;
      if stale_hint <> [] then
        Fmt.pr "note: data changed at %s since it answered@."
          (String.concat ", " stale_hint)
  | Mediator.Unavailable repos ->
      Fmt.pr "no answer: %s unavailable@." (String.concat ", " repos));
  let s = outcome.Mediator.stats in
  Fmt.pr
    "stats: %d execs (%d answered, %d blocked), %d tuples shipped, %.1f \
     virtual ms%s%s@."
    s.Disco_runtime.Runtime.execs_issued s.Disco_runtime.Runtime.execs_answered
    s.Disco_runtime.Runtime.execs_blocked
    s.Disco_runtime.Runtime.tuples_shipped s.Disco_runtime.Runtime.elapsed_ms
    (if outcome.Mediator.from_cache then ", cached plan" else "")
    (if outcome.Mediator.fallback then ", capability fallback" else "")

(* -- common options -- *)

let sources_arg =
  let doc = "Number of generated person sources in the demo federation." in
  Arg.(value & opt int 2 & info [ "sources"; "n" ] ~docv:"N" ~doc)

let rows_arg =
  let doc = "Rows per generated source." in
  Arg.(value & opt int 10 & info [ "rows" ] ~docv:"ROWS" ~doc)

let wrapper_arg =
  let doc =
    "Wrapper constructor for the demo sources (WrapperPostgres, \
     WrapperSelect, WrapperProject, WrapperScan)."
  in
  Arg.(value & opt string "WrapperPostgres" & info [ "wrapper" ] ~docv:"W" ~doc)

let down_arg =
  let doc = "Comma-separated repository names to take offline (e.g. r0,r2)." in
  let repos = Arg.(list ~sep:',' string) in
  Arg.(value & opt repos [] & info [ "down" ] ~docv:"REPOS" ~doc)

let timeout_arg =
  let doc = "Designated deadline in virtual milliseconds (Section 4)." in
  Arg.(value & opt float 1000.0 & info [ "timeout" ] ~docv:"MS" ~doc)

let odl_arg =
  let doc = "Load this ODL file instead of building the demo federation." in
  Arg.(value & opt (some file) None & info [ "odl" ] ~docv:"FILE" ~doc)

let semantics_arg =
  let doc =
    "Unavailable-data semantics: partial (default), wait-all, null, skip."
  in
  let choices =
    Arg.enum
      [
        ("partial", Mediator.Partial_answers);
        ("wait-all", Mediator.Wait_all);
        ("null", Mediator.Null_sources);
        ("skip", Mediator.Skip_sources);
      ]
  in
  Arg.(value & opt choices Mediator.Partial_answers & info [ "semantics" ] ~doc)

let with_mediator f sources rows wrapper down odl_file verbosity =
  setup_logs (List.length verbosity);
  match f (build_mediator ~sources ~rows ~wrapper ~down ~odl_file) with
  | () -> `Ok ()
  | exception Mediator.Mediator_error m -> `Error (false, m)
  | exception Disco_runtime.Runtime.Runtime_error m -> `Error (false, m)

(* -- commands -- *)

let query_cmd =
  let q_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OQL")
  in
  let run sources rows wrapper down odl_file timeout semantics verbosity q =
    with_mediator
      (fun m -> print_outcome (Mediator.query ~timeout_ms:timeout ~semantics m q))
      sources rows wrapper down odl_file verbosity
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run an OQL query against the federation.")
    Term.(
      ret
        (const run $ sources_arg $ rows_arg $ wrapper_arg $ down_arg $ odl_arg
       $ timeout_arg $ semantics_arg $ verbosity_arg $ q_arg))

let explain_cmd =
  let q_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OQL")
  in
  let run sources rows wrapper down odl_file verbosity q =
    with_mediator (fun m -> Fmt.pr "%s@." (Mediator.explain m q))
      sources rows wrapper down odl_file verbosity
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show the optimizer's plan for a query without executing it.")
    Term.(
      ret
        (const run $ sources_arg $ rows_arg $ wrapper_arg $ down_arg $ odl_arg
       $ verbosity_arg $ q_arg))

let schema_cmd =
  let run sources rows wrapper down odl_file verbosity =
    with_mediator
      (fun m ->
        let reg = Mediator.registry m in
        Fmt.pr "interfaces:@.";
        List.iter
          (fun name ->
            let attrs = Registry.attributes_of reg name in
            Fmt.pr "  %s { %s }@." name
              (String.concat "; "
                 (List.map
                    (fun (a, ty) -> Fmt.str "%s: %s" a (Disco_odl.Otype.to_string ty))
                    attrs)))
          (Registry.interface_names reg);
        Fmt.pr "extents:@.";
        List.iter
          (fun e ->
            Fmt.pr "  %s of %s via %s at %s@." e.Registry.me_name
              e.Registry.me_interface e.Registry.me_wrapper
              e.Registry.me_repository)
          (Registry.all_extents reg);
        Fmt.pr "views: %s@."
          (String.concat ", " (Registry.view_names reg)))
      sources rows wrapper down odl_file verbosity
  in
  Cmd.v
    (Cmd.info "schema" ~doc:"Print the mediator's internal schema database.")
    Term.(
      ret
        (const run $ sources_arg $ rows_arg $ wrapper_arg $ down_arg $ odl_arg
       $ verbosity_arg))

let repl_cmd =
  let run sources rows wrapper down odl_file timeout semantics verbosity =
    with_mediator
      (fun m ->
        Fmt.pr
          "disco repl — OQL queries, ':odl <stmt>' to define, ':quit' to \
           leave@.";
        let rec loop () =
          Fmt.pr "disco> %!";
          match In_channel.input_line stdin with
          | None -> ()
          | Some "" -> loop ()
          | Some ":quit" | Some ":q" -> ()
          | Some line when String.length line > 5 && String.sub line 0 5 = ":odl " ->
              (try Mediator.load_odl m (String.sub line 5 (String.length line - 5))
               with Mediator.Mediator_error e -> Fmt.pr "error: %s@." e);
              loop ()
          | Some q ->
              (try
                 print_outcome (Mediator.query ~timeout_ms:timeout ~semantics m q)
               with
              | Mediator.Mediator_error e -> Fmt.pr "error: %s@." e
              | Disco_runtime.Runtime.Runtime_error e -> Fmt.pr "error: %s@." e);
              loop ()
        in
        loop ())
      sources rows wrapper down odl_file verbosity
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive OQL shell over the federation.")
    Term.(
      ret
        (const run $ sources_arg $ rows_arg $ wrapper_arg $ down_arg $ odl_arg
       $ timeout_arg $ semantics_arg $ verbosity_arg))

let catalog_cmd =
  let run sources rows wrapper down odl_file verbosity =
    with_mediator
      (fun m ->
        let module Catalog = Disco_catalog.Catalog in
        let c = Catalog.create ~name:"discoctl" in
        Mediator.register_in_catalog m c;
        Fmt.pr "%a@." Catalog.pp c;
        List.iter
          (fun e ->
            Fmt.pr "  %-10s %-12s owner=%s %s@."
              (Catalog.kind_name e.Catalog.e_kind)
              e.Catalog.e_name e.Catalog.e_owner
              (String.concat ", "
                 (List.map (fun (k, v) -> k ^ "=" ^ v) e.Catalog.e_info)))
          (Catalog.entries c))
      sources rows wrapper down odl_file verbosity
  in
  Cmd.v
    (Cmd.info "catalog"
       ~doc:"Register the federation in a catalog and print the overview.")
    Term.(
      ret
        (const run $ sources_arg $ rows_arg $ wrapper_arg $ down_arg $ odl_arg
       $ verbosity_arg))

let main =
  Cmd.group
    (Cmd.info "discoctl" ~version:"1.0.0"
       ~doc:"Drive a Disco heterogeneous-database mediator.")
    [ query_cmd; explain_cmd; schema_cmd; repl_cmd; catalog_cmd ]

let () = exit (Cmd.eval main)
