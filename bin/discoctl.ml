(* discoctl — drive a Disco mediator from the command line.

   The tool builds a demo federation (the paper's person world, a
   configurable number of sources) or loads ODL from a file, then runs
   queries, explains plans, simulates outages, and prints the catalog.

   Examples:

     discoctl query "select x.name from x in person where x.salary > 10"
     discoctl query --sources 8 --down r1,r3 --timeout 50 "..."
     discoctl explain "select x.name from x in person"
     discoctl repl --sources 4
     discoctl schema --odl my_schema.odl
     discoctl cache-stats --repeat 5 "select x.name from x in person"
     discoctl resubmit --down r0 --recover-at 500 "..." *)

module V = Disco_value.Value
module Shard = Disco_shard.Shard
module Source = Disco_source.Source
module Schedule = Disco_source.Schedule
module Datagen = Disco_source.Datagen
module Database = Disco_relation.Database
module Mediator = Disco_core.Mediator
module Registry = Disco_odl.Registry
module Answer_cache = Disco_cache.Answer_cache
module Resubmission = Disco_cache.Resubmission
module Check = Disco_check.Check
module Expr = Disco_algebra.Expr
module Rules = Disco_algebra.Rules
module Compile = Disco_algebra.Compile
module Wrapper = Disco_wrapper.Wrapper
module Odl_parser = Disco_odl.Odl_parser
module Typecheck = Disco_oql.Typecheck
module Oql_parser = Disco_oql.Parser
module Expand = Disco_core.Expand
module Runtime = Disco_runtime.Runtime

open Cmdliner

let setup_logs verbosity =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level
    (match verbosity with
    | 0 -> Some Logs.Warning
    | 1 -> Some Logs.Info
    | _ -> Some Logs.Debug)

let verbosity_arg =
  let doc = "Log verbosity: repeat for more (-v info, -vv debug)." in
  Arg.(value & flag_all & info [ "v"; "verbose" ] ~doc)

(* -- federation setup -- *)

let qopts ?(timeout_ms = 1000.0) ?(semantics = Mediator.Partial_answers) () =
  { Mediator.Query_opts.default with timeout_ms; semantics }

(* The sharded demo federation: one logical [person] extent declared
   [sharded by id] across N repositories. Rows are sliced with
   {!Shard.shard_of_value} so placement agrees with what the optimizer
   prunes; each source serves its slice under the child-extent table
   name [person__s<k>]. *)
let load_sharded_demo m ~shards ~shard_scheme ~rows ~wrapper =
  let scheme =
    match shard_scheme with
    | `Hash -> Shard.Hash { vnodes = Shard.default_vnodes }
    | `Range ->
        Shard.Range (List.init (shards - 1) (fun k -> V.Int ((k + 1) * rows)))
  in
  let partition =
    {
      Shard.p_key = "id";
      p_scheme = scheme;
      p_shards =
        List.init shards (fun k ->
            { Shard.s_repository = Fmt.str "r%d" k; s_wrapper = None });
    }
  in
  let all_rows = Datagen.person_rows ~seed:42 ~n:(rows * shards) in
  Mediator.load_odl m
    (Fmt.str
       {|w0 := %s();
         interface Person (extent person) {
           attribute Short id;
           attribute String name;
           attribute Short salary; }|}
       wrapper);
  for k = 0 to shards - 1 do
    let slice =
      List.filter
        (fun row -> Shard.shard_of_value partition row.(0) = k)
        all_rows
    in
    let db = Database.create ~name:"db" in
    ignore
      (Datagen.table_of db ~name:(Shard.child_name "person" k)
         Datagen.person_schema slice);
    Mediator.register_source m ~name:(Fmt.str "r%d" k)
      (Source.create ~id:(Shard.child_name "person" k)
         ~address:
           (Source.address ~host:(Fmt.str "site%d" k) ~db_name:"db"
              ~ip:(Fmt.str "10.0.0.%d" k) ())
         (Source.Relational db));
    Mediator.load_odl m
      (Fmt.str
         {|r%d := Repository(host="site%d", name="db", address="10.0.0.%d");|}
         k k k)
  done;
  Mediator.load_odl m
    (Fmt.str "extent person of Person wrapper w0 %a;" Shard.pp partition)

let build_mediator ?cache ?trace_sink ?metrics ?recover_at ?retry
    ?(shards = 0) ?(shard_scheme = `Range) ~sources ~rows ~wrapper ~down
    ~odl_file () =
  let config =
    {
      Mediator.Config.default with
      cache;
      trace_sink;
      metrics =
        Option.value metrics ~default:Mediator.Config.default.Mediator.Config.metrics;
      retry;
    }
  in
  let m = Mediator.create ~config ~name:"discoctl" () in
  (match odl_file with
  | Some path ->
      let ic = open_in path in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      Mediator.load_odl m text
  | None when shards > 0 ->
      load_sharded_demo m ~shards ~shard_scheme ~rows ~wrapper
  | None ->
      Mediator.load_odl m
        (Fmt.str
           {|w0 := %s();
             interface Person (extent person) {
               attribute Short id;
               attribute String name;
               attribute Short salary; }|}
           wrapper);
      for i = 0 to sources - 1 do
        let name = Fmt.str "person%d" i in
        let db = Database.create ~name:"db" in
        ignore
          (Datagen.table_of db ~name Datagen.person_schema
             (Datagen.person_rows ~seed:(42 + i) ~n:rows));
        Mediator.register_source m ~name:(Fmt.str "r%d" i)
          (Source.create ~id:name
             ~address:
               (Source.address ~host:(Fmt.str "site%d" i) ~db_name:"db"
                  ~ip:(Fmt.str "10.0.0.%d" i) ())
             (Source.Relational db));
        Mediator.load_odl m
          (Fmt.str
             {|r%d := Repository(host="site%d", name="db", address="10.0.0.%d");
               extent person%d of Person wrapper w0 repository r%d;|}
             i i i i i)
      done);
  let outage =
    (* --recover-at makes outages end, so resubmission can converge *)
    match recover_at with
    | Some t -> Schedule.down_during [ (0.0, t) ]
    | None -> Schedule.always_down
  in
  List.iter
    (fun repo ->
      match Mediator.find_source m repo with
      | Some src -> Source.set_schedule src outage
      | None -> Fmt.epr "warning: no source attached to %s@." repo)
    down;
  m

let print_outcome m outcome =
  (match outcome.Mediator.answer with
  | Mediator.Complete v -> Fmt.pr "answer: %a@." V.pp v
  | Mediator.Partial { unavailable; _ } as answer ->
      Fmt.pr "partial answer (unavailable: %s):@.  %s@."
        (String.concat ", " unavailable)
        (Mediator.answer_oql answer);
      let stale = Mediator.stale_hint m answer in
      if stale <> [] then
        Fmt.pr "note: data changed at %s since it answered@."
          (String.concat ", " stale)
  | Mediator.Unavailable repos ->
      Fmt.pr "no answer: %s unavailable@." (String.concat ", " repos));
  let s = outcome.Mediator.stats in
  Fmt.pr
    "stats: %d execs (%d answered, %d blocked), %d tuples shipped, %.1f \
     virtual ms%s%s@."
    s.Disco_runtime.Runtime.execs_issued s.Disco_runtime.Runtime.execs_answered
    s.Disco_runtime.Runtime.execs_blocked
    s.Disco_runtime.Runtime.tuples_shipped s.Disco_runtime.Runtime.elapsed_ms
    (if outcome.Mediator.from_cache then ", cached plan" else "")
    (if outcome.Mediator.fallback then ", capability fallback" else "");
  let c = outcome.Mediator.answer_cache in
  if c.Mediator.answer_hits > 0 || c.Mediator.stale_hits > 0 then
    Fmt.pr "answer cache: %d fresh hit(s), %d stale serve(s)%s@."
      c.Mediator.answer_hits c.Mediator.stale_hits
      (if c.Mediator.stale_hits > 0 then
         Fmt.str " (max staleness %.1f ms)" c.Mediator.stale_ms
       else "")

(* -- common options -- *)

let sources_arg =
  let doc = "Number of generated person sources in the demo federation." in
  Arg.(value & opt int 2 & info [ "sources"; "n" ] ~docv:"N" ~doc)

let rows_arg =
  let doc = "Rows per generated source." in
  Arg.(value & opt int 10 & info [ "rows" ] ~docv:"ROWS" ~doc)

let wrapper_arg =
  let doc =
    "Wrapper constructor for the demo sources (WrapperPostgres, \
     WrapperSelect, WrapperProject, WrapperScan)."
  in
  Arg.(value & opt string "WrapperPostgres" & info [ "wrapper" ] ~docv:"W" ~doc)

let shards_arg =
  let doc =
    "Shard the demo person extent across N repositories (child extents \
     person__s0..person__s(N-1), one source each) instead of declaring N \
     independent extents. 0 disables sharding. Rows per shard follow \
     --rows; placement follows the declared scheme, so predicates on \
     x.id prune."
  in
  Arg.(value & opt int 0 & info [ "shards" ] ~docv:"N" ~doc)

let shard_scheme_arg =
  let doc =
    "Partitioning scheme for --shards: range (id boundaries at multiples \
     of --rows) or hash (consistent-hash ring, deduplicating gather)."
  in
  Arg.(
    value
    & opt (Arg.enum [ ("range", `Range); ("hash", `Hash) ]) `Range
    & info [ "shard-scheme" ] ~docv:"SCHEME" ~doc)

let down_arg =
  let doc = "Comma-separated repository names to take offline (e.g. r0,r2)." in
  let repos = Arg.(list ~sep:',' string) in
  Arg.(value & opt repos [] & info [ "down" ] ~docv:"REPOS" ~doc)

let timeout_arg =
  let doc = "Designated deadline in virtual milliseconds (Section 4)." in
  Arg.(value & opt float 1000.0 & info [ "timeout" ] ~docv:"MS" ~doc)

let odl_arg =
  let doc = "Load this ODL file instead of building the demo federation." in
  Arg.(value & opt (some file) None & info [ "odl" ] ~docv:"FILE" ~doc)

let semantics_arg =
  let doc =
    "Unavailable-data semantics: partial (default), wait-all, null, skip, or \
     cached (serve outages from the answer cache, see --max-stale; implies \
     --cache)."
  in
  (* 'cached' needs the --max-stale budget, so the enum carries
     constructors applied once both options are parsed *)
  let choices =
    Arg.enum
      [
        ("partial", fun _ -> Mediator.Partial_answers);
        ("wait-all", fun _ -> Mediator.Wait_all);
        ("null", fun _ -> Mediator.Null_sources);
        ("skip", fun _ -> Mediator.Skip_sources);
        ("cached", fun ms -> Mediator.Cached_fallback { max_stale_ms = ms });
      ]
  in
  Arg.(
    value
    & opt choices (fun _ -> Mediator.Partial_answers)
    & info [ "semantics" ] ~doc)

let max_stale_arg =
  let doc =
    "Staleness budget (virtual ms) for --semantics cached: outage fallbacks \
     are only served from cache entries at most this old."
  in
  Arg.(value & opt float 60_000.0 & info [ "max-stale" ] ~docv:"MS" ~doc)

let cache_arg =
  let doc = "Attach a semantic answer cache to the mediator." in
  Arg.(value & flag & info [ "cache" ] ~doc)

(* -- retry/hedge/breaker options (DESIGN.md §4g) -- *)

let retry_term =
  let retry_flag =
    let doc =
      "Enable the deadline-aware retry scheduler: blocked execs are \
       re-polled on exponential backoff within the query deadline instead \
       of finalizing at issue time."
    in
    Arg.(value & flag & info [ "retry" ] ~doc)
  in
  let initial =
    let doc = "Delay (virtual ms) before the first re-poll." in
    Arg.(value & opt float 50.0 & info [ "retry-initial" ] ~docv:"MS" ~doc)
  in
  let multiplier =
    let doc = "Backoff multiplier between re-polls." in
    Arg.(value & opt float 2.0 & info [ "retry-multiplier" ] ~docv:"X" ~doc)
  in
  let attempts =
    let doc = "Maximum re-polls per blocked exec." in
    Arg.(value & opt int 4 & info [ "retry-attempts" ] ~docv:"N" ~doc)
  in
  let hedge =
    let doc =
      "Hedge delay (virtual ms): when the primary's answer would land later \
       than this, also dial the first live replica and keep the earlier \
       completion. Implies --retry."
    in
    Arg.(value & opt (some float) None & info [ "hedge" ] ~docv:"MS" ~doc)
  in
  let breaker =
    let doc =
      "Circuit-breaker threshold: skip re-polls/hedges to a source after \
       this many consecutive failures. Implies --retry."
    in
    Arg.(value & opt (some int) None & info [ "breaker" ] ~docv:"N" ~doc)
  in
  let cooldown =
    let doc =
      "How long (virtual ms) an open breaker rejects calls before a \
       half-open probe."
    in
    Arg.(
      value & opt float 400.0 & info [ "breaker-cooldown" ] ~docv:"MS" ~doc)
  in
  let mk enabled initial_ms multiplier max_attempts hedge_ms breaker_threshold
      breaker_cooldown_ms =
    if enabled || hedge_ms <> None || breaker_threshold <> None then
      Some
        (Runtime.Retry.make ~initial_ms ~multiplier ~max_attempts ?hedge_ms
           ?breaker_threshold ~breaker_cooldown_ms ())
    else None
  in
  Term.(
    const mk $ retry_flag $ initial $ multiplier $ attempts $ hedge $ breaker
    $ cooldown)

let print_breaker_state m =
  match Mediator.retry_policy m with
  | None -> ()
  | Some _ -> (
      match Mediator.breaker_snapshot m with
      | [] -> ()
      | rows ->
          List.iter
            (fun (id, fails, opened_at) ->
              match opened_at with
              | Some t ->
                  Fmt.pr
                    "breaker: %s OPEN since t=%.1f (%d consecutive failures)@."
                    id t fails
              | None ->
                  Fmt.pr "breaker: %s closed (%d consecutive failure(s))@." id
                    fails)
            rows)

let is_cached_semantics = function
  | Mediator.Cached_fallback _ -> true
  | Mediator.Partial_answers | Mediator.Wait_all | Mediator.Null_sources
  | Mediator.Skip_sources ->
      false

let with_mediator ?cache ?trace_sink ?metrics ?recover_at ?retry ?shards
    ?shard_scheme f sources rows wrapper down odl_file verbosity =
  setup_logs (List.length verbosity);
  match
    f
      (build_mediator ?cache ?trace_sink ?metrics ?recover_at ?retry ?shards
         ?shard_scheme ~sources ~rows ~wrapper ~down ~odl_file ())
  with
  | () -> `Ok ()
  | exception Mediator.Mediator_error m -> `Error (false, m)
  | exception Disco_runtime.Runtime.Runtime_error m -> `Error (false, m)

(* -- commands -- *)

let query_cmd =
  let q_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OQL")
  in
  let recover_arg =
    let doc =
      "Virtual time (ms) at which the --down repositories come back up — \
       with --retry, the scheduler's re-polls pick them up mid-query."
    in
    Arg.(value & opt (some float) None & info [ "recover-at" ] ~docv:"MS" ~doc)
  in
  let run sources rows wrapper down odl_file timeout sem_of max_stale use_cache
      verbosity retry recover_at shards shard_scheme q =
    let semantics = sem_of max_stale in
    let cache =
      if use_cache || is_cached_semantics semantics then
        Some (Answer_cache.create ())
      else None
    in
    with_mediator ?cache ?recover_at ?retry ~shards ~shard_scheme
      (fun m ->
        print_outcome m
          (Mediator.query ~opts:(qopts ~timeout_ms:timeout ~semantics ()) m q);
        print_breaker_state m)
      sources rows wrapper down odl_file verbosity
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run an OQL query against the federation.")
    Term.(
      ret
        (const run $ sources_arg $ rows_arg $ wrapper_arg $ down_arg $ odl_arg
       $ timeout_arg $ semantics_arg $ max_stale_arg $ cache_arg
       $ verbosity_arg $ retry_term $ recover_arg $ shards_arg
       $ shard_scheme_arg $ q_arg))

let explain_cmd =
  let q_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OQL")
  in
  let run sources rows wrapper down odl_file shards shard_scheme verbosity q =
    with_mediator ~shards ~shard_scheme
      (fun m -> Fmt.pr "%s@." (Mediator.explain m q))
      sources rows wrapper down odl_file verbosity
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show the optimizer's plan for a query without executing it.")
    Term.(
      ret
        (const run $ sources_arg $ rows_arg $ wrapper_arg $ down_arg $ odl_arg
       $ shards_arg $ shard_scheme_arg $ verbosity_arg $ q_arg))

let schema_cmd =
  let run sources rows wrapper down odl_file verbosity =
    with_mediator
      (fun m ->
        let reg = Mediator.registry m in
        Fmt.pr "interfaces:@.";
        List.iter
          (fun name ->
            let attrs = Registry.attributes_of reg name in
            Fmt.pr "  %s { %s }@." name
              (String.concat "; "
                 (List.map
                    (fun (a, ty) -> Fmt.str "%s: %s" a (Disco_odl.Otype.to_string ty))
                    attrs)))
          (Registry.interface_names reg);
        Fmt.pr "extents:@.";
        List.iter
          (fun e ->
            Fmt.pr "  %s of %s via %s at %s@." e.Registry.me_name
              e.Registry.me_interface e.Registry.me_wrapper
              e.Registry.me_repository)
          (Registry.all_extents reg);
        Fmt.pr "views: %s@."
          (String.concat ", " (Registry.view_names reg)))
      sources rows wrapper down odl_file verbosity
  in
  Cmd.v
    (Cmd.info "schema" ~doc:"Print the mediator's internal schema database.")
    Term.(
      ret
        (const run $ sources_arg $ rows_arg $ wrapper_arg $ down_arg $ odl_arg
       $ verbosity_arg))

let repl_cmd =
  let run sources rows wrapper down odl_file timeout sem_of max_stale use_cache
      verbosity =
    let semantics = sem_of max_stale in
    let cache =
      if use_cache || is_cached_semantics semantics then
        Some (Answer_cache.create ())
      else None
    in
    with_mediator ?cache
      (fun m ->
        Fmt.pr
          "disco repl — OQL queries, ':odl <stmt>' to define, ':quit' to \
           leave@.";
        let rec loop () =
          Fmt.pr "disco> %!";
          match In_channel.input_line stdin with
          | None -> ()
          | Some "" -> loop ()
          | Some ":quit" | Some ":q" -> ()
          | Some line when String.length line > 5 && String.sub line 0 5 = ":odl " ->
              (try Mediator.load_odl m (String.sub line 5 (String.length line - 5))
               with Mediator.Mediator_error e -> Fmt.pr "error: %s@." e);
              loop ()
          | Some q ->
              (try
                 print_outcome m
                   (Mediator.query
                      ~opts:(qopts ~timeout_ms:timeout ~semantics ())
                      m q)
               with
              | Mediator.Mediator_error e -> Fmt.pr "error: %s@." e
              | Disco_runtime.Runtime.Runtime_error e -> Fmt.pr "error: %s@." e);
              loop ()
        in
        loop ())
      sources rows wrapper down odl_file verbosity
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive OQL shell over the federation.")
    Term.(
      ret
        (const run $ sources_arg $ rows_arg $ wrapper_arg $ down_arg $ odl_arg
       $ timeout_arg $ semantics_arg $ max_stale_arg $ cache_arg
       $ verbosity_arg))

let catalog_cmd =
  let run sources rows wrapper down odl_file verbosity =
    with_mediator
      (fun m ->
        let module Catalog = Disco_catalog.Catalog in
        let c = Catalog.create ~name:"discoctl" in
        Mediator.register_in_catalog m c;
        Fmt.pr "%a@." Catalog.pp c;
        List.iter
          (fun e ->
            Fmt.pr "  %-10s %-12s owner=%s %s@."
              (Catalog.kind_name e.Catalog.e_kind)
              e.Catalog.e_name e.Catalog.e_owner
              (String.concat ", "
                 (List.map (fun (k, v) -> k ^ "=" ^ v) e.Catalog.e_info)))
          (Catalog.entries c))
      sources rows wrapper down odl_file verbosity
  in
  Cmd.v
    (Cmd.info "catalog"
       ~doc:"Register the federation in a catalog and print the overview.")
    Term.(
      ret
        (const run $ sources_arg $ rows_arg $ wrapper_arg $ down_arg $ odl_arg
       $ verbosity_arg))

let shards_cmd =
  let bounds_str p k =
    match p.Shard.p_scheme with
    | Shard.Hash _ -> ""
    | Shard.Range bs ->
        let n = List.length bs in
        let endpoint = Fmt.to_to_string V.pp in
        let lo = if k = 0 then "-inf" else endpoint (List.nth bs (k - 1)) in
        let hi = if k >= n then "+inf" else endpoint (List.nth bs k) in
        Fmt.str "  key in [%s, %s)" lo hi
  in
  let run sources rows wrapper down odl_file shards shard_scheme verbosity =
    with_mediator ~shards ~shard_scheme
      (fun m ->
        let reg = Mediator.registry m in
        let parents =
          List.filter
            (fun e -> e.Registry.me_partition <> None)
            (Registry.all_extents reg)
        in
        if parents = [] then
          Fmt.pr
            "no sharded extents (try --shards 4, or --odl with a 'sharded \
             by' extent)@."
        else
          List.iter
            (fun e ->
              match e.Registry.me_partition with
              | None -> ()
              | Some p ->
                  Fmt.pr "%s of %s: %a@." e.Registry.me_name
                    e.Registry.me_interface Shard.pp p;
                  List.iteri
                    (fun k child ->
                      Fmt.pr "  shard %d: %s at %s via %s%s@." k
                        child.Registry.me_name child.Registry.me_repository
                        child.Registry.me_wrapper (bounds_str p k))
                    (Registry.shard_children reg e.Registry.me_name))
            parents)
      sources rows wrapper down odl_file verbosity
  in
  Cmd.v
    (Cmd.info "shards"
       ~doc:
         "Print the shard map of every partitioned extent: shard key, \
          scheme, and the per-shard child extents with their repositories \
          (range shards also show their key interval).")
    Term.(
      ret
        (const run $ sources_arg $ rows_arg $ wrapper_arg $ down_arg $ odl_arg
       $ shards_arg $ shard_scheme_arg $ verbosity_arg))

let print_cache_stats m =
  (match Mediator.answer_cache_stats m with
  | Some s -> Fmt.pr "answer cache: %a@." Answer_cache.pp_stats s
  | None -> Fmt.pr "answer cache: none attached@.");
  let p = Mediator.plan_cache_stats m in
  Fmt.pr "plan cache: %d/%d entries, %d hits, %d misses, %d evictions@."
    p.Mediator.p_size p.Mediator.p_capacity p.Mediator.p_hits
    p.Mediator.p_misses p.Mediator.p_evictions

let cache_stats_cmd =
  let q_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OQL")
  in
  let repeat_arg =
    let doc = "Number of times to run the query (warm-up effects show)." in
    Arg.(value & opt int 3 & info [ "repeat" ] ~docv:"K" ~doc)
  in
  let run sources rows wrapper down odl_file timeout verbosity repeat q =
    with_mediator ~cache:(Answer_cache.create ())
      (fun m ->
        for k = 1 to repeat do
          let o = Mediator.query ~opts:(qopts ~timeout_ms:timeout ()) m q in
          let s = o.Mediator.stats in
          Fmt.pr
            "run %d: %d execs, %d answered from source, %d from cache, %d \
             tuples shipped, %.1f virtual ms@."
            k s.Disco_runtime.Runtime.execs_issued
            (s.Disco_runtime.Runtime.execs_answered
            - s.Disco_runtime.Runtime.cache_hits
            - s.Disco_runtime.Runtime.cache_stale_hits)
            s.Disco_runtime.Runtime.cache_hits
            s.Disco_runtime.Runtime.tuples_shipped
            s.Disco_runtime.Runtime.elapsed_ms
        done;
        print_cache_stats m)
      sources rows wrapper down odl_file verbosity
  in
  Cmd.v
    (Cmd.info "cache-stats"
       ~doc:
         "Run a query repeatedly with the semantic answer cache attached and \
          print hit/miss/eviction counters.")
    Term.(
      ret
        (const run $ sources_arg $ rows_arg $ wrapper_arg $ down_arg $ odl_arg
       $ timeout_arg $ verbosity_arg $ repeat_arg $ q_arg))

let trace_cmd =
  let q_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OQL")
  in
  let json_arg =
    let doc = "Emit the trace as JSON instead of the pretty span tree." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let recover_arg =
    let doc =
      "Virtual time (ms) at which the --down repositories come back up."
    in
    Arg.(value & opt (some float) None & info [ "recover-at" ] ~docv:"MS" ~doc)
  in
  let run sources rows wrapper down odl_file timeout sem_of max_stale use_cache
      verbosity retry recover_at shards shard_scheme json q =
    let semantics = sem_of max_stale in
    let cache =
      if use_cache || is_cached_semantics semantics then
        Some (Answer_cache.create ())
      else None
    in
    let traces = ref [] in
    let sink trace = traces := trace :: !traces in
    with_mediator ?cache ?recover_at ?retry ~shards ~shard_scheme
      ~trace_sink:sink
      (fun m ->
        let o =
          Mediator.query ~opts:(qopts ~timeout_ms:timeout ~semantics ()) m q
        in
        List.iter
          (fun trace ->
            if json then Fmt.pr "%s@." (Disco_obs.Trace.to_json trace)
            else Fmt.pr "%a" Disco_obs.Trace.pp trace)
          (List.rev !traces);
        if not json then print_outcome m o)
      sources rows wrapper down odl_file verbosity
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a query with tracing enabled and print its span tree: \
          per-phase virtual timings plus one line per exec with \
          repository, origin (source/cache/stale/failover), elapsed ms \
          and tuples shipped. With --retry, re-polls show as child spans \
          of their exec.")
    Term.(
      ret
        (const run $ sources_arg $ rows_arg $ wrapper_arg $ down_arg $ odl_arg
       $ timeout_arg $ semantics_arg $ max_stale_arg $ cache_arg
       $ verbosity_arg $ retry_term $ recover_arg $ shards_arg
       $ shard_scheme_arg $ json_arg $ q_arg))

let metrics_cmd =
  let q_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OQL")
  in
  let repeat_arg =
    let doc = "Number of times to run the query before dumping the registry." in
    Arg.(value & opt int 3 & info [ "repeat" ] ~docv:"K" ~doc)
  in
  let json_arg =
    let doc = "Emit the metrics registry as JSON." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run sources rows wrapper down odl_file timeout sem_of max_stale use_cache
      verbosity retry repeat shards shard_scheme json q =
    let semantics = sem_of max_stale in
    let cache =
      if use_cache || is_cached_semantics semantics then
        Some (Answer_cache.create ())
      else None
    in
    (* an isolated registry: only this invocation's counters show *)
    let metrics = Disco_obs.Metrics.create () in
    with_mediator ?cache ?retry ~shards ~shard_scheme ~metrics
      (fun m ->
        for _ = 1 to repeat do
          ignore
            (Mediator.query ~opts:(qopts ~timeout_ms:timeout ~semantics ()) m q)
        done;
        if json then Fmt.pr "%s@." (Disco_obs.Metrics.to_json metrics)
        else Fmt.pr "%a" Disco_obs.Metrics.pp metrics;
        print_breaker_state m)
      sources rows wrapper down odl_file verbosity
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a query repeatedly and dump the mediator's metrics registry \
          (execs by origin, plan-cache hits, optimizer rules fired, \
          runtime.retry.* / runtime.hedge.* under --retry, ...).")
    Term.(
      ret
        (const run $ sources_arg $ rows_arg $ wrapper_arg $ down_arg $ odl_arg
       $ timeout_arg $ semantics_arg $ max_stale_arg $ cache_arg
       $ verbosity_arg $ retry_term $ repeat_arg $ shards_arg
       $ shard_scheme_arg $ json_arg $ q_arg))

let resubmit_cmd =
  let q_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OQL")
  in
  let recover_arg =
    let doc =
      "Virtual time (ms) at which the --down repositories come back up."
    in
    Arg.(value & opt float 500.0 & info [ "recover-at" ] ~docv:"MS" ~doc)
  in
  let run sources rows wrapper down odl_file timeout verbosity recover_at q =
    with_mediator ~cache:(Answer_cache.create ()) ~recover_at
      (fun m ->
        let o = Mediator.query ~opts:(qopts ~timeout_ms:timeout ()) m q in
        Fmt.pr "initial answer:@.";
        print_outcome m o;
        let queue = Resubmission.create ~clock:(Mediator.clock m) () in
        match Mediator.record_partial queue o with
        | None -> Fmt.pr "@.nothing to resubmit: the answer is complete.@."
        | Some id ->
            Fmt.pr "@.recorded partial #%d; draining as sources recover...@." id;
            let converged =
              Resubmission.drain queue
                ~source_of:(Mediator.find_source m)
                ~run:
                  (Mediator.resubmission_runner
                     ~opts:(qopts ~timeout_ms:timeout ())
                     m)
            in
            List.iter
              (fun e ->
                match e.Resubmission.state with
                | Resubmission.Converged rounds ->
                    Fmt.pr "partial #%d converged after %d round(s) at t=%.1f@."
                      e.Resubmission.id rounds
                      (Disco_source.Clock.now (Mediator.clock m))
                | Resubmission.Pending ->
                    Fmt.pr "partial #%d still pending (no recovery in sight)@."
                      e.Resubmission.id)
              (Resubmission.entries queue);
            if converged > 0 then (
              Fmt.pr "@.re-running the original query (cache is now warm):@.";
              print_outcome m
                (Mediator.query ~opts:(qopts ~timeout_ms:timeout ()) m q));
            print_cache_stats m)
      sources rows wrapper down odl_file verbosity
  in
  Cmd.v
    (Cmd.info "resubmit"
       ~doc:
         "Run a query against a federation with recovering outages, record \
          the partial answer, and drive it to completion through the \
          resubmission manager.")
    Term.(
      ret
        (const run $ sources_arg $ rows_arg $ wrapper_arg $ down_arg $ odl_arg
       $ timeout_arg $ verbosity_arg $ recover_arg $ q_arg))

(* -- lint: static verification of schema and query files -- *)

(* Recursively collect .odl / .oql files under each path, sorted so runs
   are deterministic. *)
let rec lint_collect path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.concat_map (fun f -> lint_collect (Filename.concat path f))
  else if
    Filename.check_suffix path ".odl" || Filename.check_suffix path ".oql"
  then [ path ]
  else []

let lint_diag ~code ~severity ~path fmt =
  Format.kasprintf
    (fun d_message ->
      { Check.d_code = code; d_severity = severity; d_path = path; d_message })
    fmt

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

(* One query per line; blank lines and [--] comments are skipped. A
   [--@full-pushdown] directive line applies to the next query: its
   capability-maximal normalization must be fully accepted by the
   wrappers (DISCO-E005 otherwise). *)
let lint_queries reg checker ~can_push ~wrapper_of ~repo_of file =
  let diags = ref [] in
  let add line ds =
    diags :=
      !diags @ List.map (fun d -> (Fmt.str "%s:%d" file line, d)) ds
  in
  let full_pushdown = ref false in
  let check_full_pushdown lineno located =
    let pushed = Rules.normalize ~can_push:Rules.push_all located in
    List.iter
      (fun (repo, sub) ->
        let ws = List.filter_map wrapper_of (Expr.gets sub) in
        match ws with
        | w :: _ when not (Wrapper.accepts w sub) ->
            add lineno
              [
                lint_diag ~code:"DISCO-E005" ~severity:Check.Error
                  ~path:(Fmt.str "submit(%s)" repo)
                  "full-pushdown directive: wrapper %s refuses %s" (Wrapper.name w)
                  (Expr.to_string sub);
              ]
        | _ -> ())
      (Expr.submits pushed)
  in
  let lint_query lineno q =
    match Oql_parser.parse q with
    | exception Disco_lex.Lexer.Error (msg, pos) ->
        add lineno
          [
            lint_diag ~code:"DISCO-E012" ~severity:Check.Error ~path:"query"
              "parse error at offset %d: %s" pos msg;
          ]
    | ast -> (
        match Expand.expand reg ast with
        | exception Expand.Expand_error msg ->
            add lineno
              [
                lint_diag ~code:"DISCO-E013" ~severity:Check.Error ~path:"query"
                  "expansion failed: %s" msg;
              ]
        | expanded -> (
            match Typecheck.check (Typecheck.env_of_registry reg) expanded with
            | Error msg ->
                add lineno
                  [
                    lint_diag ~code:"DISCO-E013" ~severity:Check.Error
                      ~path:"query" "type error: %s" msg;
                  ]
            | Ok _ -> (
                match Compile.compile expanded with
                | Error _ ->
                    (* outside the algebraic subset: the mediator evaluates
                       such queries hybrid, nothing to verify statically *)
                    ()
                | Ok compiled ->
                    let located = Compile.locate ~repo_of compiled in
                    add lineno
                      (Check.check_expr checker
                         (Rules.normalize ~can_push located));
                    if !full_pushdown then check_full_pushdown lineno located)))
  in
  List.iteri
    (fun i raw ->
      let line = String.trim raw in
      let directive = "--@full-pushdown" in
      if line = "" then ()
      else if line = directive then full_pushdown := true
      else if String.length line >= 2 && String.sub line 0 2 = "--" then ()
      else (
        lint_query (i + 1) line;
        full_pushdown := false))
    (String.split_on_char '\n' (read_file file));
  !diags

(* Conformance audit of every wrapper object in the registry: the
   constructor must resolve, and the grammar must not over-claim on the
   extents the wrapper serves. *)
let lint_audit reg =
  List.concat_map
    (fun name ->
      match Registry.find_object reg name with
      | Some o
        when String.length o.Registry.obj_constructor >= 7
             && String.sub o.Registry.obj_constructor 0 7 = "Wrapper" -> (
          match Wrapper.of_constructor o.Registry.obj_constructor with
          | None ->
              [
                ( "(registry)",
                  lint_diag ~code:"DISCO-E010" ~severity:Check.Error ~path:name
                    "wrapper constructor %s is unknown"
                    o.Registry.obj_constructor );
              ]
          | Some w ->
              Registry.all_extents reg
              |> List.filter (fun me -> me.Registry.me_wrapper = name)
              |> List.concat_map (fun me ->
                     Check.audit_wrapper ~extent:me.Registry.me_name
                       ~attrs:
                         (Registry.attributes_of reg me.Registry.me_interface)
                       w
                     |> List.map (fun d -> ("(registry)", d))))
      | _ -> [])
    (List.sort String.compare (Registry.object_names reg))

let lint_cmd =
  let paths_arg =
    let doc =
      "Files or directories to lint; directories are searched recursively \
       for .odl schema files and .oql query files (one query per line, \
       [--] comments)."
    in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"PATH" ~doc)
  in
  let json_arg =
    let doc = "Emit diagnostics as a JSON array (stable ordering)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run verbosity json paths =
    setup_logs (List.length verbosity);
    let files = List.sort String.compare (List.concat_map lint_collect paths) in
    let odl_files = List.filter (fun f -> Filename.check_suffix f ".odl") files in
    let oql_files = List.filter (fun f -> Filename.check_suffix f ".oql") files in
    let reg = Registry.create () in
    let schema_diags =
      List.concat_map
        (fun f ->
          match Odl_parser.load reg (read_file f) with
          | () -> []
          | exception Registry.Odl_error msg ->
              [
                ( f,
                  lint_diag ~code:"DISCO-E011" ~severity:Check.Error
                    ~path:"schema" "%s" msg );
              ]
          | exception Disco_lex.Lexer.Error (msg, pos) ->
              [
                ( f,
                  lint_diag ~code:"DISCO-E011" ~severity:Check.Error
                    ~path:"schema" "lex error at offset %d: %s" pos msg );
              ])
        odl_files
    in
    let wrapper_of ext =
      Option.bind (Registry.find_extent reg ext) (fun me ->
          Option.bind (Registry.find_object reg me.Registry.me_wrapper)
            (fun o -> Wrapper.of_constructor o.Registry.obj_constructor))
    in
    let repo_of ext =
      Option.map
        (fun me -> me.Registry.me_repository)
        (Registry.find_extent reg ext)
    in
    let can_push ~repo:_ expr =
      let extents = Expr.gets expr in
      let ws = List.filter_map wrapper_of extents in
      List.length ws = List.length extents
      && (match ws with
         | [] -> false
         | first :: rest ->
             List.for_all (fun w -> Wrapper.name w = Wrapper.name first) rest)
      && List.for_all (fun w -> Wrapper.accepts w expr) ws
    in
    let checker = Check.of_registry reg in
    let query_diags =
      List.concat_map
        (lint_queries reg checker ~can_push ~wrapper_of ~repo_of)
        oql_files
    in
    let audit_diags =
      lint_audit reg
      @ List.map (fun d -> ("(registry)", d)) (Check.audit_shards checker)
    in
    let diags = schema_diags @ query_diags @ audit_diags in
    let errors =
      List.length (List.filter (fun (_, d) -> d.Check.d_severity = Check.Error) diags)
    in
    let warnings = List.length diags - errors in
    if json then Fmt.pr "%s@." (Check.json_of_diags diags)
    else (
      List.iter (fun (f, d) -> Fmt.pr "%s: %a@." f Check.pp_diag d) diags;
      Fmt.pr "%d file(s) checked, %d error(s), %d warning(s)@."
        (List.length files) errors warnings);
    Format.print_flush ();
    if errors > 0 then Stdlib.exit 1;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically verify ODL schemas and OQL query files: schema-aware \
          typing, wrapper capability conformance, decompilability, a \
          wrapper over-claim audit, and a shard-map audit (unknown shard \
          repositories, bad shard keys, unsorted range boundaries, \
          heterogeneous shard grammars). Exits non-zero on any DISCO-E \
          diagnostic.")
    Term.(ret (const run $ verbosity_arg $ json_arg $ paths_arg))

let main =
  Cmd.group
    (Cmd.info "discoctl" ~version:"1.0.0"
       ~doc:"Drive a Disco heterogeneous-database mediator.")
    [
      query_cmd; explain_cmd; schema_cmd; repl_cmd; catalog_cmd; shards_cmd;
      cache_stats_cmd; resubmit_cmd; trace_cmd; metrics_cmd; lint_cmd;
    ]

let () = exit (Cmd.eval main)
