(* Oracle-based property tests for the trickiest machinery:

   - the Earley recognizer against a brute-force derivation enumerator;
   - the like-matcher against a naive backtracking oracle;
   - the three join algorithms against each other on random data;
   - cost-model smoothing bounds;
   - type-map composition. *)

module V = Disco_value.Value
module Expr = Disco_algebra.Expr
module Grammar = Disco_wrapper.Grammar
module Typemap = Disco_odl.Typemap
module Cost_model = Disco_cost.Cost_model
module Plan = Disco_physical.Plan

(* -- Earley vs brute force -- *)

(* Enumerate every token string the grammar derives up to a length bound,
   by breadth-first expansion of sentential forms. Exponential, fine for
   tiny grammars. *)
let brute_force_language (g : Grammar.t) ~max_len =
  let expand_first form =
    (* find the first nonterminal and expand it each possible way *)
    let rec go prefix = function
      | [] -> None
      | Grammar.N nt :: rest ->
          Some
            (List.filter_map
               (fun (p : Grammar.production) ->
                 if p.Grammar.lhs = nt then
                   Some (List.rev_append prefix (p.Grammar.rhs @ rest))
                 else None)
               g.Grammar.productions)
      | (Grammar.T _ as t) :: rest -> go (t :: prefix) rest
    in
    go [] form
  in
  let terminal_only form =
    if List.for_all (function Grammar.T _ -> true | Grammar.N _ -> false) form
    then Some (List.map (function Grammar.T t -> t | _ -> assert false) form)
    else None
  in
  let results = Hashtbl.create 64 in
  let rec walk form =
    if List.length form <= max_len + 4 then
      match terminal_only form with
      | Some tokens ->
          if List.length tokens <= max_len then
            Hashtbl.replace results tokens ()
      | None -> (
          match expand_first form with
          | Some expansions -> List.iter walk expansions
          | None -> ())
  in
  walk [ Grammar.N g.Grammar.start ];
  Hashtbl.fold (fun k () acc -> k :: acc) results []

let tiny_grammar =
  Grammar.parse
    {|
    a :- b
    a :- select OPEN p COMMA b CLOSE
    b :- get OPEN SOURCE CLOSE
    p :- ATTRIBUTE = CONST
    p :- p and p
  |}

let tiny_tokens =
  [ "a"; "b"; "select"; "get"; "OPEN"; "CLOSE"; "COMMA"; "SOURCE"; "ATTRIBUTE"; "CONST"; "="; "and" ]

let test_earley_vs_brute_force () =
  let max_len = 15 in
  let language = brute_force_language tiny_grammar ~max_len in
  Alcotest.(check bool) "language non-trivial" true (List.length language >= 2);
  (* everything derivable is accepted *)
  List.iter
    (fun tokens ->
      Alcotest.(check bool)
        (Fmt.str "derives [%s]" (String.concat " " tokens))
        true
        (Grammar.derives tiny_grammar tokens))
    language;
  (* and nothing else of the same lengths is: sample random strings *)
  let in_language tokens = List.mem tokens language in
  let rand_string seed len =
    List.init len (fun i ->
        List.nth tiny_tokens (Hashtbl.hash (seed, i) mod List.length tiny_tokens))
  in
  for seed = 0 to 499 do
    let len = 1 + (Hashtbl.hash (seed, "len") mod max_len) in
    let tokens = rand_string seed len in
    Alcotest.(check bool)
      (Fmt.str "agrees on [%s]" (String.concat " " tokens))
      (in_language tokens)
      (Grammar.derives tiny_grammar tokens)
  done

(* -- like vs naive oracle -- *)

let oracle_like ~pattern s =
  (* dynamic programming over (pattern index, string index) *)
  let np = String.length pattern and ns = String.length s in
  let dp = Array.make_matrix (np + 1) (ns + 1) false in
  dp.(0).(0) <- true;
  for i = 1 to np do
    if pattern.[i - 1] = '%' then dp.(i).(0) <- dp.(i - 1).(0)
  done;
  for i = 1 to np do
    for j = 1 to ns do
      dp.(i).(j) <-
        (match pattern.[i - 1] with
        | '%' -> dp.(i - 1).(j) || dp.(i).(j - 1)
        | '_' -> dp.(i - 1).(j - 1)
        | c -> c = s.[j - 1] && dp.(i - 1).(j - 1))
    done
  done;
  dp.(np).(ns)

let prop_like_matches_oracle =
  let gen =
    QCheck.Gen.(
      pair
        (string_size ~gen:(oneofl [ 'a'; 'b'; '%'; '_' ]) (int_range 0 8))
        (string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (int_range 0 10)))
  in
  QCheck.Test.make ~name:"like matches the DP oracle" ~count:2000
    (QCheck.make ~print:(fun (p, s) -> Fmt.str "pattern %S string %S" p s) gen)
    (fun (pattern, s) -> V.like_match ~pattern s = oracle_like ~pattern s)

(* -- join algorithms agree on random inputs -- *)

let join_input_gen side =
  QCheck.Gen.(
    map
      (fun rows ->
        V.bag
          (List.map
             (fun (k, v) ->
               V.strct
                 [ (side, V.strct [ ("k", V.Int k); ("v", V.Int v) ]) ])
             rows))
      (list_size (int_range 0 15) (pair (int_range 0 4) (int_range 0 100))))

let prop_join_algorithms_agree =
  let gen = QCheck.Gen.pair (join_input_gen "x") (join_input_gen "y") in
  QCheck.Test.make ~name:"hash = merge = nested-loop on random bags"
    ~count:300
    (QCheck.make ~print:(fun (l, r) -> Fmt.str "%s | %s" (V.to_string l) (V.to_string r)) gen)
    (fun (l, r) ->
      let pairs = [ ([ "x"; "k" ], [ "y"; "k" ]) ] in
      let nl = Plan.run_local (Plan.Nested_loop_join (Plan.Mk_data l, Plan.Mk_data r, pairs)) in
      let hj = Plan.run_local (Plan.Hash_join (Plan.Mk_data l, Plan.Mk_data r, pairs)) in
      let mj = Plan.run_local (Plan.Merge_join (Plan.Mk_data l, Plan.Mk_data r, pairs)) in
      V.equal nl hj && V.equal hj mj)

(* -- cost smoothing stays within observed bounds -- *)

let prop_smoothing_bounded =
  let gen = QCheck.Gen.(list_size (int_range 1 12) (int_range 1 1000)) in
  QCheck.Test.make ~name:"smoothed estimate within min/max of history"
    ~count:500
    (QCheck.make ~print:(fun l -> String.concat "," (List.map string_of_int l)) gen)
    (fun times ->
      let m = Cost_model.create ~history:16 () in
      let e = Expr.Get "t" in
      List.iter
        (fun t ->
          Cost_model.record m ~repo:"r" ~expr:e ~time_ms:(float_of_int t)
            ~rows:t)
        times;
      let est = Cost_model.estimate m ~repo:"r" e in
      let lo = float_of_int (List.fold_left min max_int times) in
      let hi = float_of_int (List.fold_left max 0 times) in
      est.Cost_model.est_time_ms >= lo -. 1e-9
      && est.Cost_model.est_time_ms <= hi +. 1e-9)

(* -- recency: the smoothed estimate tracks a level shift -- *)

let test_smoothing_tracks_shift () =
  let m = Cost_model.create ~history:8 ~smoothing:0.5 () in
  let e = Expr.Get "t" in
  for _ = 1 to 8 do
    Cost_model.record m ~repo:"r" ~expr:e ~time_ms:100.0 ~rows:10
  done;
  for _ = 1 to 4 do
    Cost_model.record m ~repo:"r" ~expr:e ~time_ms:500.0 ~rows:10
  done;
  let est = Cost_model.estimate m ~repo:"r" e in
  Alcotest.(check bool)
    (Fmt.str "estimate %.0f leans to the new level" est.Cost_model.est_time_ms)
    true
    (est.Cost_model.est_time_ms > 400.0)

(* -- typemap composition -- *)

let test_typemap_compose () =
  let inner = Typemap.make ~collection:("mid", "top") [ ("m1", "t1") ] in
  let outer = Typemap.make ~collection:("src", "mid") [ ("s1", "m1") ] in
  let composed = Typemap.compose_flat outer inner in
  Alcotest.(check string) "field chains through" "s1"
    (Typemap.source_field composed "t1");
  Alcotest.(check string) "reverse direction" "t1"
    (Typemap.mediator_field composed "s1");
  Alcotest.(check string) "collection" "src"
    (Typemap.source_collection composed "top")

let prop_typemap_roundtrip =
  let gen =
    QCheck.Gen.(
      list_size (int_range 0 5)
        (pair
           (string_size ~gen:(char_range 'a' 'e') (return 2))
           (string_size ~gen:(char_range 'f' 'j') (return 2))))
  in
  QCheck.Test.make ~name:"typemap source/mediator roundtrip" ~count:300
    (QCheck.make
       ~print:(fun l -> String.concat ";" (List.map (fun (a, b) -> a ^ "=" ^ b) l))
       gen)
    (fun pairs ->
      (* deduplicate both sides to satisfy the map invariant *)
      let dedup =
        List.fold_left
          (fun acc (s, m) ->
            if List.exists (fun (s', m') -> s = s' || m = m') acc then acc
            else (s, m) :: acc)
          [] pairs
      in
      let map = Typemap.make dedup in
      List.for_all
        (fun (s, m) ->
          Typemap.source_field map m = s && Typemap.mediator_field map s = m)
        dedup)

(* -- answer cache vs no cache: semantically invisible when sources are up -- *)

module Source = Disco_source.Source
module Schedule = Disco_source.Schedule
module Datagen = Disco_source.Datagen
module Database = Disco_relation.Database
module Mediator = Disco_core.Mediator
module Runtime = Disco_runtime.Runtime
module Answer_cache = Disco_cache.Answer_cache

let federation ?cache ?(batch = true) ?retry () =
  let m =
    Mediator.create
      ~config:{ Mediator.Config.default with cache; batch; retry }
      ~name:"prop" ()
  in
  Mediator.load_odl m
    {|w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute Short id;
        attribute String name;
        attribute Short salary; }|};
  for i = 0 to 2 do
    let db = Database.create ~name:"db" in
    ignore
      (Datagen.table_of db
         ~name:(Fmt.str "person%d" i)
         Datagen.person_schema
         (Datagen.person_rows ~seed:(1000 + i) ~n:8));
    Mediator.register_source m
      ~name:(Fmt.str "r%d" i)
      (Source.create ~id:(Fmt.str "p%d" i)
         ~address:
           (Source.address ~host:(Fmt.str "h%d" i) ~db_name:"db" ~ip:"0" ())
         (Source.Relational db));
    Mediator.load_odl m
      (Fmt.str
         {|r%d := Repository(host="h%d", name="db", address="0");
           extent person%d of Person wrapper w0 repository r%d;|}
         i i i i)
  done;
  m

(* Random single-extent selections: attribute, comparator, threshold,
   projection. Small space, but it exercises normalization (flipped
   comparators share slots) and repeated thresholds (warm hits). *)
let query_gen =
  QCheck.Gen.(
    map3
      (fun attrib op threshold ->
        Fmt.str "select x.name from x in person where x.%s %s %d" attrib op
          threshold)
      (oneofl [ "salary"; "id" ])
      (oneofl [ ">"; "<"; ">="; "<="; "="; "!=" ])
      (int_range 0 30))

let prop_cache_transparent =
  QCheck.Test.make ~name:"answer cache is semantically invisible" ~count:60
    (QCheck.make
       ~print:(fun qs -> String.concat " ; " qs)
       QCheck.Gen.(list_size (int_range 1 6) query_gen))
    (fun queries ->
      let plain = federation () in
      let cached = federation ~cache:(Answer_cache.create ()) () in
      List.for_all
        (fun q ->
          let a = (Mediator.query plain q).Mediator.answer
          and b = (Mediator.query cached q).Mediator.answer in
          match (a, b) with
          | Mediator.Complete va, Mediator.Complete vb -> V.equal va vb
          | _ -> false)
        queries)

(* -- batched transport vs one-call-per-exec: same answers everywhere -- *)

(* A federation of [repos] sources each holding [extents_per] Person
   extents; repositories listed in [down] never answer.  Both transports
   get an answer cache, so repeated queries also exercise the cache-hit
   path under batching. *)
let batch_federation ~batch ~repos ~extents_per ~down () =
  let m =
    Mediator.create
      ~config:
        {
          Mediator.Config.default with
          batch;
          cache = Some (Answer_cache.create ());
        }
      ~name:"prop_batch" ()
  in
  Mediator.load_odl m
    {|w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute Short id;
        attribute String name;
        attribute Short salary; }|};
  for r = 0 to repos - 1 do
    let db = Database.create ~name:"db" in
    for e = 0 to extents_per - 1 do
      let idx = (r * extents_per) + e in
      ignore
        (Datagen.table_of db
           ~name:(Fmt.str "person%d" idx)
           Datagen.person_schema
           (Datagen.person_rows ~seed:(1000 + idx) ~n:6))
    done;
    let schedule =
      if List.mem r down then Schedule.down_during [ (0.0, 1e12) ]
      else Schedule.always_up
    in
    Mediator.register_source m
      ~name:(Fmt.str "r%d" r)
      (Source.create ~id:(Fmt.str "p%d" r)
         ~address:
           (Source.address ~host:(Fmt.str "h%d" r) ~db_name:"db" ~ip:"0" ())
         ~schedule (Source.Relational db));
    Mediator.load_odl m
      (Fmt.str {|r%d := Repository(host="h%d", name="db", address="0");|} r r);
    for e = 0 to extents_per - 1 do
      let idx = (r * extents_per) + e in
      Mediator.load_odl m
        (Fmt.str "extent person%d of Person wrapper w0 repository r%d;" idx r)
    done
  done;
  m

let prop_batch_transparent =
  let gen =
    QCheck.Gen.(
      pair
        (pair (int_range 1 3) (int_range 1 3))
        (pair
           (list_size (int_range 0 2) (int_range 0 2))
           (list_size (int_range 1 4) query_gen)))
  in
  let print ((repos, extents_per), (down, queries)) =
    Fmt.str "repos=%d extents=%d down=[%s] %s" repos extents_per
      (String.concat "," (List.map string_of_int down))
      (String.concat " ; " queries)
  in
  QCheck.Test.make ~name:"batched transport is semantically invisible"
    ~count:40
    (QCheck.make ~print gen)
    (fun ((repos, extents_per), (down, queries)) ->
      let down = List.sort_uniq compare (List.filter (fun r -> r < repos) down) in
      let mb = batch_federation ~batch:true ~repos ~extents_per ~down () in
      let mu = batch_federation ~batch:false ~repos ~extents_per ~down () in
      let agree q =
        let a = (Mediator.query mb q).Mediator.answer
        and b = (Mediator.query mu q).Mediator.answer in
        match (a, b) with
        | Mediator.Complete va, Mediator.Complete vb -> V.equal va vb
        | Mediator.Partial pa, Mediator.Partial pb ->
            List.sort compare pa.Runtime.unavailable
            = List.sort compare pb.Runtime.unavailable
            && String.equal (Mediator.answer_oql a) (Mediator.answer_oql b)
        | _ -> false
      in
      (* the second pass answers from the warm cache on both sides *)
      List.for_all agree queries && List.for_all agree queries)

(* The batch:false transport must be the historical one-call-per-exec
   path, reproduced exactly: pin its stats on a fixed scenario. *)
let test_unbatched_pinned_stats () =
  let m = federation ~batch:false () in
  let o = Mediator.query m "select x.name from x in person where x.salary > 10" in
  let s = o.Mediator.stats in
  Alcotest.(check int) "execs issued" 3 s.Runtime.execs_issued;
  Alcotest.(check int) "execs answered" 3 s.Runtime.execs_answered;
  Alcotest.(check int) "round trips" 3 s.Runtime.round_trips;
  Alcotest.(check int) "tuples shipped" 24 s.Runtime.tuples_shipped;
  Alcotest.(check (float 1e-9)) "virtual elapsed (incl. jitter draws)"
    5.4815723876953131 s.Runtime.elapsed_ms

(* The retry scheduler must be invisible unless it fires: with no policy
   configured the seed one-shot path runs bit-for-bit (the pinned stats
   above still hold), and a policy attached to an all-healthy federation
   must not change a single stat either — no spurious re-polls, hedges,
   or extra round-trips. *)
let test_retry_idle_stats_identical () =
  let q = "select x.name from x in person where x.salary > 10" in
  let s_off = (Mediator.query (federation ()) q).Mediator.stats in
  let retry =
    Runtime.Retry.make ~hedge_ms:100.0 ~breaker_threshold:3 ()
  in
  let s_on = (Mediator.query (federation ~retry ()) q).Mediator.stats in
  Alcotest.(check int) "execs issued" s_off.Runtime.execs_issued
    s_on.Runtime.execs_issued;
  Alcotest.(check int) "execs answered" s_off.Runtime.execs_answered
    s_on.Runtime.execs_answered;
  Alcotest.(check int) "execs blocked" s_off.Runtime.execs_blocked
    s_on.Runtime.execs_blocked;
  Alcotest.(check int) "round trips" s_off.Runtime.round_trips
    s_on.Runtime.round_trips;
  Alcotest.(check int) "tuples shipped" s_off.Runtime.tuples_shipped
    s_on.Runtime.tuples_shipped;
  Alcotest.(check (float 1e-9)) "virtual elapsed" s_off.Runtime.elapsed_ms
    s_on.Runtime.elapsed_ms

(* -- sharded extents: pruned scatter-gather vs the unsharded twin -- *)

module Shard = Disco_shard.Shard

(* Two federations over the same repositories and data slices: one
   declares [person] as a sharded extent (so the optimizer prunes and
   the runtime scatter-gathers), the twin declares each slice as an
   independent extent (so a query over [person] is the unpruned union
   of all of them).  Answers must agree; pruning must never contact a
   shard the key excludes. *)
let twin_fed ~sharded ~partition ~all_rows ~down () =
  let shards = List.length partition.Shard.p_shards in
  let m =
    Mediator.create
      ~config:
        { Mediator.Config.default with cache = Some (Answer_cache.create ()) }
      ~name:(if sharded then "twin_sh" else "twin_un")
      ()
  in
  Mediator.load_odl m
    {|w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute Short id;
        attribute String name;
        attribute Short salary; }|};
  for k = 0 to shards - 1 do
    let slice =
      List.filter (fun r -> Shard.shard_of_value partition r.(0) = k) all_rows
    in
    let db = Database.create ~name:"db" in
    ignore
      (Datagen.table_of db ~name:(Shard.child_name "person" k)
         Datagen.person_schema slice);
    let schedule =
      if List.mem k down then Schedule.down_during [ (0.0, 1e12) ]
      else Schedule.always_up
    in
    Mediator.register_source m ~name:(Fmt.str "r%d" k)
      (Source.create ~id:(Shard.child_name "person" k)
         ~address:
           (Source.address ~host:(Fmt.str "h%d" k) ~db_name:"db" ~ip:"0" ())
         ~schedule (Source.Relational db));
    Mediator.load_odl m
      (Fmt.str {|r%d := Repository(host="h%d", name="db", address="0");|} k k);
    if not sharded then
      Mediator.load_odl m
        (Fmt.str "extent %s of Person wrapper w0 repository r%d;"
           (Shard.child_name "person" k) k)
  done;
  if sharded then
    Mediator.load_odl m
      (Fmt.str "extent person of Person wrapper w0 %a;" Shard.pp partition);
  m

type shard_query = Qkey of int | Qsal of int

let prop_shard_twin_equivalent =
  let gen =
    QCheck.Gen.(
      pair
        (pair (int_range 2 4) bool)
        (pair
           (list_size (int_range 0 2) (int_range 0 3))
           (list_size (int_range 1 5)
              (oneof
                 [
                   map (fun k -> Qkey k) (int_range 0 25);
                   map (fun t -> Qsal t) (int_range 0 30);
                 ]))))
  in
  let print ((shards, hash), (down, qs)) =
    Fmt.str "shards=%d %s down=[%s] %s" shards
      (if hash then "hash" else "range")
      (String.concat "," (List.map string_of_int down))
      (String.concat " ; "
         (List.map
            (function
              | Qkey k -> Fmt.str "id=%d" k
              | Qsal t -> Fmt.str "salary>%d" t)
            qs))
  in
  QCheck.Test.make
    ~name:"sharded gather = unsharded union; pruning skips excluded shards"
    ~count:30
    (QCheck.make ~print gen)
    (fun ((shards, hash), (down, qs)) ->
      let rows_per = 5 in
      let down =
        List.sort_uniq compare (List.filter (fun k -> k < shards) down)
      in
      let partition =
        {
          Shard.p_key = "id";
          p_scheme =
            (if hash then Shard.Hash { vnodes = Shard.default_vnodes }
             else
               Shard.Range
                 (List.init (shards - 1) (fun k ->
                      V.Int ((k + 1) * rows_per))));
          p_shards =
            List.init shards (fun k ->
                { Shard.s_repository = Fmt.str "r%d" k; s_wrapper = None });
        }
      in
      let all_rows = Datagen.person_rows ~seed:4242 ~n:(shards * rows_per) in
      let m_sh = twin_fed ~sharded:true ~partition ~all_rows ~down () in
      let m_un = twin_fed ~sharded:false ~partition ~all_rows ~down () in
      let contacted m =
        List.map
          (fun (r, s) ->
            ( r,
              s.Source.calls_answered + s.Source.calls_refused
              + s.Source.calls_timed_out ))
          (Mediator.source_stats m)
      in
      let unavail = function
        | Mediator.Complete _ -> []
        | Mediator.Partial p -> List.sort compare p.Runtime.unavailable
        | Mediator.Unavailable rs -> List.sort compare rs
      in
      let repo k = Fmt.str "r%d" k in
      let down_repos = List.map repo down in
      let oracle keep =
        V.bag (List.filter_map (fun r -> if keep r then Some r.(1) else None) all_rows)
      in
      let check_query q =
        let text =
          match q with
          | Qkey k -> Fmt.str "select x.name from x in person where x.id = %d" k
          | Qsal t ->
              Fmt.str "select x.name from x in person where x.salary > %d" t
        in
        let before = contacted m_sh in
        let a = (Mediator.query m_sh text).Mediator.answer in
        let after = contacted m_sh in
        let b = (Mediator.query m_un text).Mediator.answer in
        let delta r = List.assoc r after - List.assoc r before in
        match q with
        | Qsal t ->
            (* no key constraint: both sides contact every shard and miss
               exactly the down ones; complete answers match the data *)
            unavail a = down_repos
            && unavail b = down_repos
            && (down <> []
               ||
               match (a, b) with
               | Mediator.Complete va, Mediator.Complete vb ->
                   V.equal va vb
                   && V.equal va
                        (oracle (fun r ->
                             match r.(2) with
                             | V.Int s -> s > t
                             | _ -> false))
               | _ -> false)
        | Qkey k ->
            let owner = Shard.shard_of_value partition (V.Int k) in
            (* pruning containment: shards the key excludes are never
               contacted, up or down *)
            List.for_all
              (fun j -> j = owner || delta (repo j) = 0)
              (List.init shards Fun.id)
            (* the twin still contacts everything *)
            && unavail b = down_repos
            &&
            if List.mem owner down then unavail a = [ repo owner ]
            else
              unavail a = []
              &&
              match a with
              | Mediator.Complete va ->
                  V.equal va
                    (oracle (fun r ->
                         match r.(0) with V.Int id -> id = k | _ -> false))
              | _ -> false
      in
      (* two passes: the second runs against warm answer caches *)
      List.for_all check_query qs && List.for_all check_query qs)

(* -- columnar SQL engine vs the row-at-a-time oracle -- *)

module Sql = Disco_relation.Sql
module Table = Disco_relation.Table
module Schema = Disco_relation.Schema
module Index = Disco_relation.Index

let sql_schema =
  Schema.make
    [ ("id", Schema.TInt); ("name", Schema.TString); ("salary", Schema.TInt) ]

(* Random tables: duplicate ids (hash-index chains), a tiny name alphabet
   (string equality and LIKE both hit), occasional NULL salaries. *)
let sql_rows_gen =
  QCheck.Gen.(
    list_size (int_range 0 30)
      (map3
         (fun id name salary ->
           [|
             V.Int id;
             V.String name;
             (match salary with Some s -> V.Int s | None -> V.Null);
           |])
         (int_range 0 12)
         (oneofl [ "a"; "ab"; "b"; "c%"; "_d"; "" ])
         (frequency [ (6, map Option.some (int_range 0 40)); (1, return None) ])))

let sql_col_names = [ "id"; "name"; "salary" ]

(* Leaves deliberately include ill-typed comparisons (name < 3), NULL
   literals, Div/Mod with zero divisors and negative numerics: the
   engines must agree on errors as well as answers. *)
let sql_pred_gen =
  let open QCheck.Gen in
  let lit =
    oneof
      [
        map (fun i -> Sql.Lit (V.Int i)) (int_range (-5) 40);
        map (fun s -> Sql.Lit (V.String s)) (oneofl [ "a"; "ab"; "b"; "" ]);
        map
          (fun i -> Sql.Lit (V.Float (float_of_int i /. 4.)))
          (int_range (-8) 80);
        return (Sql.Lit V.Null);
      ]
  in
  let leaf =
    oneof
      [
        map3
          (fun c op l -> Sql.Cmp (op, Sql.Col (None, c), l))
          (oneofl sql_col_names)
          (oneofl [ Sql.Eq; Sql.Ne; Sql.Lt; Sql.Le; Sql.Gt; Sql.Ge ])
          lit;
        map
          (fun p ->
            Sql.Cmp (Sql.Like, Sql.Col (None, "name"), Sql.Lit (V.String p)))
          (oneofl [ "a%"; "%b"; "_d"; "%"; "a_"; "c\\%"; "" ]);
        map3
          (fun aop k m ->
            Sql.Cmp
              ( Sql.Lt,
                Sql.Arith (aop, Sql.Col (None, "salary"), Sql.Lit (V.Int k)),
                Sql.Lit (V.Int m) ))
          (oneofl [ Sql.Add; Sql.Sub; Sql.Mul; Sql.Div; Sql.Mod ])
          (int_range (-2) 3) (int_range 0 40);
        map2
          (fun a b -> Sql.Cmp (Sql.Eq, Sql.Col (None, a), Sql.Col (None, b)))
          (oneofl sql_col_names) (oneofl sql_col_names);
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [
            (3, leaf);
            ( 2,
              map2
                (fun a b -> Sql.And (a, b))
                (self (depth - 1))
                (self (depth - 1)) );
            ( 2,
              map2
                (fun a b -> Sql.Or (a, b))
                (self (depth - 1))
                (self (depth - 1)) );
            (1, map (fun a -> Sql.Not a) (self (depth - 1)));
          ])
    2

(* Projected columns (never empty) plus an optional computed item; the
   column list comes along so ORDER BY can pick a selected column. *)
let sql_items_gen =
  QCheck.Gen.(
    map2
      (fun mask arith ->
        let cols =
          List.filteri (fun i _ -> mask land (1 lsl i) <> 0) sql_col_names
        in
        let cols = if cols = [] then [ "id" ] else cols in
        let base = List.map (fun c -> Sql.Item (Sql.Col (None, c), None)) cols in
        let items =
          if arith then
            base
            @ [
                Sql.Item
                  ( Sql.Arith
                      (Sql.Mul, Sql.Col (None, "salary"), Sql.Lit (V.Int 2)),
                    Some "s2" );
              ]
          else base
        in
        (cols, items))
      (int_range 1 7) bool)

let sql_query_gen =
  QCheck.Gen.(
    map3
      (fun (cols, items) pred ((distinct, ob), limit) ->
        let order_by =
          match ob with
          | None -> []
          | Some (i, desc) ->
              [
                ( Sql.Col (None, List.nth cols (i mod List.length cols)),
                  if desc then `Desc else `Asc );
              ]
        in
        Sql.select ~distinct ~where:pred ~order_by ?limit items
          [ ("person", None) ])
      sql_items_gen sql_pred_gen
      (pair
         (pair bool (opt (pair (int_range 0 2) bool)))
         (opt (int_range 0 10))))

let sql_outcome engine db q =
  match engine db q with
  | r -> Ok (r.Sql.columns, Sql.result_to_bag r)
  | exception Sql.Sql_error _ -> Error ()

let prop_columnar_matches_rows =
  let gen = QCheck.Gen.triple sql_rows_gen sql_query_gen QCheck.Gen.bool in
  QCheck.Test.make ~name:"columnar engine = row oracle on random queries"
    ~count:300
    (QCheck.make
       ~print:(fun (rows, q, ix) ->
         Fmt.str "%s over %d rows%s" (Sql.to_string q) (List.length rows)
           (if ix then " [indexed]" else ""))
       gen)
    (fun (rows, q, ix) ->
      let db = Database.create ~name:"prop" in
      let t = Database.create_table db ~name:"person" sql_schema in
      Table.insert_all t rows;
      if ix then (
        Table.declare_index t ~column:"id" Index.Hash;
        Table.declare_index t ~column:"salary" Index.Sorted);
      match (sql_outcome Sql.run db q, sql_outcome Sql.run_rows db q) with
      | Ok (ca, ba), Ok (cb, bb) -> ca = cb && V.equal ba bb
      | Error (), Error () -> true
      | _ -> false)

(* Printing is the wrappers' submit path: the printed text must reparse
   to a query that prints identically (literals — negative numbers, LIKE
   patterns, quotes, floats — all survive the trip). *)
let prop_sql_print_parse_stable =
  QCheck.Test.make ~name:"SQL print/parse/print is stable" ~count:400
    (QCheck.make ~print:Sql.to_string sql_query_gen)
    (fun q ->
      let s = Sql.to_string q in
      String.equal s (Sql.to_string (Sql.parse s)))

let () =
  Alcotest.run "disco_properties"
    [
      ( "grammar-oracle",
        [ Alcotest.test_case "earley vs brute force" `Quick test_earley_vs_brute_force ] );
      ( "qcheck",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_like_matches_oracle;
            prop_join_algorithms_agree;
            prop_smoothing_bounded;
            prop_typemap_roundtrip;
            prop_cache_transparent;
            prop_batch_transparent;
            prop_shard_twin_equivalent;
            prop_columnar_matches_rows;
            prop_sql_print_parse_stable;
          ] );
      ( "batching",
        [
          Alcotest.test_case "batch:false pinned stats" `Quick
            test_unbatched_pinned_stats;
          Alcotest.test_case "idle retry changes nothing" `Quick
            test_retry_idle_stats_identical;
        ] );
      ( "smoothing",
        [ Alcotest.test_case "tracks level shifts" `Quick test_smoothing_tracks_shift ] );
      ( "typemap",
        [ Alcotest.test_case "composition" `Quick test_typemap_compose ] );
    ]
