(* Tests for the OQL front end: parser, pretty-printer (round-trip), and
   the reference evaluator, including the paper's own example queries. *)

module V = Disco_value.Value
module Ast = Disco_oql.Ast
module Parser = Disco_oql.Parser
module Eval = Disco_oql.Eval

let check_value = Alcotest.testable V.pp V.equal

let person ?(id = 0) name salary =
  V.strct [ ("id", V.Int id); ("name", V.String name); ("salary", V.Int salary) ]

let person0 = V.bag [ person ~id:1 "Mary" 200 ]
let person1 = V.bag [ person ~id:2 "Sam" 50 ]

let resolve name =
  match name with
  | "person0" -> Some person0
  | "person1" -> Some person1
  | "person" -> Some (V.bag_union person0 person1)
  | "empty" -> Some (V.bag [])
  | _ -> None

let base_env = Eval.env ~resolve ~interface_names:[ "Person" ] ()
let run q = Eval.eval_string base_env q

(* -- parsing / printing -- *)

let test_parse_paper_query () =
  let q = Parser.parse "select x.name from x in person where x.salary > 10" in
  match q with
  | Ast.Select
      {
        sel_distinct = false;
        sel_proj = Ast.Path (Ast.Ident "x", "name");
        sel_from = [ ("x", Ast.Ident "person") ];
        sel_where =
          Some (Ast.Binop (Ast.Gt, Ast.Path (Ast.Ident "x", "salary"), Ast.Const (V.Int 10)));
        sel_order = [];
      } ->
      ()
  | _ -> Alcotest.fail ("unexpected AST: " ^ Ast.to_string q)

let test_parse_star () =
  (match Parser.parse "select x.name from x in person* where x.salary > 10" with
  | Ast.Select { sel_from = [ ("x", Ast.Extent_star "person") ]; _ } -> ()
  | q -> Alcotest.fail ("star not parsed: " ^ Ast.to_string q));
  (* multiplication is untouched *)
  match Parser.parse "select x.salary * 2 from x in person" with
  | Ast.Select { sel_proj = Ast.Binop (Ast.Mul, _, _); _ } -> ()
  | q -> Alcotest.fail ("multiplication broken: " ^ Ast.to_string q)

let test_parse_from_and_separator () =
  match
    Parser.parse
      "select struct(name: x.name, salary: x.salary + y.salary) from x in \
       person0 and y in person1 where x.id = y.id"
  with
  | Ast.Select { sel_from = [ ("x", _); ("y", _) ]; _ } -> ()
  | q -> Alcotest.fail ("and-separated from broken: " ^ Ast.to_string q)

let test_parse_union_nested () =
  match
    Parser.parse
      {|union(select y.name from y in person0 where y.salary > 10, bag("Sam"))|}
  with
  | Ast.Call ("union", [ Ast.Select _; Ast.Coll_expr (Ast.Kbag, [ _ ]) ]) -> ()
  | q -> Alcotest.fail ("union parse: " ^ Ast.to_string q)

let roundtrip_cases =
  [
    "select x.name from x in person where x.salary > 10";
    "select distinct x from x in person0";
    "select struct(name: x.name, salary: x.salary + y.salary) from x in \
     person0, y in person1 where x.id = y.id";
    "union(select y.name from y in person0, Bag(\"Sam\"))";
    "flatten(select x.e from x in metaextent where x.interface = Person)";
    "select struct(name: x.name, salary: sum(select z.salary from z in person \
     where x.id = z.id)) from x in person*";
    "not (x = 1 or y < 2 and z >= 3)";
    "1 + 2 * 3 - 4 / 5";
    "a mod 2 = 0";
    "count(except(intersect(b1, b2), b3))";
    "-x.salary + abs(y)";
    "element(select p from p in person0 where p.id = 1)";
  ]

let test_roundtrip () =
  List.iter
    (fun input ->
      let q = Parser.parse input in
      let printed = Ast.to_string q in
      let q2 = Parser.parse printed in
      Alcotest.(check bool)
        (Fmt.str "reparse of %S = %S" input printed)
        true (Ast.equal q q2))
    roundtrip_cases

let test_parse_errors () =
  let expect input =
    try
      ignore (Parser.parse input);
      Alcotest.fail ("expected parse error for " ^ input)
    with Disco_lex.Lexer.Error _ -> ()
  in
  expect "select from x in person";
  expect "select x from x";
  expect "select x from x in";
  expect "struct(name x.name)";
  expect "x +";
  expect "select x from x in person where"

(* -- free collections -- *)

let test_free_collections () =
  let q =
    Parser.parse
      "select struct(a: x.name, t: sum(select z.salary from z in person where \
       x.id = z.id)) from x in person0 where x.salary > threshold"
  in
  Alcotest.(check (list string))
    "free names" [ "person"; "person0"; "threshold" ]
    (Ast.free_collections q)

(* -- evaluation -- *)

let test_eval_paper_intro () =
  (* Section 1.2: the motivating query over both sources. *)
  Alcotest.check check_value "Bag(Mary, Sam)"
    (V.bag [ V.String "Mary"; V.String "Sam" ])
    (run "select x.name from x in person where x.salary > 10")

let test_eval_partial_answer_form () =
  (* Section 1.3: evaluating the partial answer once person0 is back gives
     the full answer. *)
  Alcotest.check check_value "partial answer resubmission"
    (V.bag [ V.String "Mary"; V.String "Sam" ])
    (run
       {|union(select y.name from y in person0 where y.salary > 10, bag("Sam"))|})

let test_eval_double_view () =
  (* Section 2.2.3's reconciliation view [double], adapted so both sources
     share an id. *)
  let p0 = V.bag [ person ~id:7 "Ana" 100 ] in
  let p1 = V.bag [ person ~id:7 "Ana" 40 ] in
  let resolve = function
    | "person0" -> Some p0
    | "person1" -> Some p1
    | _ -> None
  in
  let env = Eval.env ~resolve () in
  Alcotest.check check_value "salary reconciliation"
    (V.bag [ V.strct [ ("name", V.String "Ana"); ("salary", V.Int 140) ] ])
    (Eval.eval_string env
       "select struct(name: x.name, salary: x.salary + y.salary) from x in \
        person0 and y in person1 where x.id = y.id")

let test_eval_correlated_aggregate () =
  (* Section 2.2.3's [multiple] view shape: a correlated sum. *)
  let result =
    run
      "select struct(name: x.name, total: sum(select z.salary from z in \
       person where x.id = z.id)) from x in person"
  in
  Alcotest.check check_value "correlated sums"
    (V.bag
       [
         V.strct [ ("name", V.String "Mary"); ("total", V.Int 200) ];
         V.strct [ ("name", V.String "Sam"); ("total", V.Int 50) ];
       ])
    result

let test_eval_metaextent_style () =
  (* Section 2.1: dynamic extent lookup through meta-data, with interface
     names evaluating to strings. *)
  let metaextent =
    V.bag
      [
        V.strct [ ("name", V.String "person0"); ("interface", V.String "Person") ];
        V.strct [ ("name", V.String "student0"); ("interface", V.String "Student") ];
      ]
  in
  let resolve = function "metaextent" -> Some metaextent | _ -> None in
  let env = Eval.env ~resolve ~interface_names:[ "Person"; "Student" ] () in
  Alcotest.check check_value "meta query"
    (V.bag [ V.String "person0" ])
    (Eval.eval_string env
       "select x.name from x in metaextent where x.interface = Person")

let test_eval_distinct_set () =
  Alcotest.check check_value "distinct yields a set"
    (V.set [ V.Int 50; V.Int 200 ])
    (run "select distinct x.salary from x in person")

let test_eval_dependent_from () =
  (* The second from-collection depends on the first variable. *)
  let nested =
    V.bag
      [
        V.strct [ ("tag", V.String "a"); ("items", V.bag [ V.Int 1; V.Int 2 ]) ];
        V.strct [ ("tag", V.String "b"); ("items", V.bag [ V.Int 3 ]) ];
      ]
  in
  let resolve = function "groups" -> Some nested | _ -> None in
  let env = Eval.env ~resolve () in
  Alcotest.check check_value "dependent join"
    (V.bag [ V.Int 1; V.Int 2; V.Int 3 ])
    (Eval.eval_string env "select i from g in groups, i in g.items")

let test_eval_empty_and_null () =
  Alcotest.check check_value "empty select" (V.bag [])
    (run "select x.name from x in empty");
  Alcotest.check check_value "sum empty" (V.Int 0) (run "sum(empty)");
  Alcotest.check check_value "min empty" V.Null (run "min(empty)");
  Alcotest.check check_value "exists" (V.Bool false) (run "exists(empty)")

let test_eval_errors () =
  let expect q =
    try
      ignore (run q);
      Alcotest.fail ("expected Eval_error for " ^ q)
    with Eval.Eval_error _ -> ()
  in
  expect "select x from x in nosuch";
  expect "select x.name from x in 42";
  expect "element(person)";
  expect "1 + \"a\"";
  expect "nosuchfun(1)"

let test_eval_order_by () =
  Alcotest.check check_value "order by salary desc yields a list"
    (V.List [ V.String "Mary"; V.String "Sam" ])
    (run "select x.name from x in person order by x.salary desc");
  Alcotest.check check_value "ascending by name"
    (V.List [ V.String "Mary"; V.String "Sam" ])
    (run "select x.name from x in person order by x.name");
  Alcotest.check check_value "two keys"
    (V.List [ V.Int 50; V.Int 200 ])
    (run "select x.salary from x in person order by x.salary asc, x.name desc");
  (* keys may reference bindings not in the projection *)
  Alcotest.check check_value "key outside projection"
    (V.List [ V.String "Sam"; V.String "Mary" ])
    (run "select x.name from x in person order by x.salary")

let test_order_by_roundtrip () =
  List.iter
    (fun q ->
      let ast = Parser.parse q in
      Alcotest.(check bool)
        (Fmt.str "roundtrip %s" q)
        true
        (Ast.equal ast (Parser.parse (Ast.to_string ast))))
    [
      "select x.name from x in person order by x.salary desc";
      "select x from x in person where x.salary > 10 order by x.name, x.id desc";
    ]

(* -- property tests -- *)

let arb_query =
  (* Random well-formed queries over the person schema, for parse/print
     round-tripping. *)
  let open QCheck.Gen in
  let var = oneofl [ "x"; "y" ] in
  let coll = oneofl [ "person"; "person0"; "person1" ] in
  let rec expr depth =
    let atom =
      oneof
        [
          map (fun i -> Ast.Const (V.Int i)) (int_range 0 100);
          map (fun s -> Ast.Const (V.String s)) (oneofl [ "a"; "b" ]);
          map (fun v -> Ast.Path (Ast.Ident v, "salary")) var;
          map (fun v -> Ast.Path (Ast.Ident v, "name")) var;
        ]
    in
    if depth = 0 then atom
    else
      frequency
        [
          (3, atom);
          ( 2,
            map3
              (fun op a b -> Ast.Binop (op, a, b))
              (oneofl Ast.[ Add; Sub; Mul; Eq; Ne; Lt; Le; Gt; Ge; And; Or ])
              (expr (depth - 1)) (expr (depth - 1)) );
          (1, map (fun a -> Ast.Unop (Ast.Not, a)) (expr (depth - 1)));
          ( 1,
            map2
              (fun f args -> Ast.Call (f, [ args ]))
              (oneofl [ "count"; "sum"; "flatten"; "distinct" ])
              (expr (depth - 1)) );
          ( 1,
            map2
              (fun v c ->
                Ast.Select
                  {
                    Ast.sel_distinct = false;
                    sel_proj = Ast.Path (Ast.Ident v, "salary");
                    sel_from = [ (v, Ast.Ident c) ];
                    sel_where = Some (Ast.Binop (Ast.Gt, Ast.Path (Ast.Ident v, "salary"), Ast.Const (V.Int 10)));
                  sel_order = [];
                  })
              var coll );
        ]
  in
  QCheck.make ~print:Ast.to_string (expr 3)

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:500 arb_query (fun q ->
      Ast.equal q (Parser.parse (Ast.to_string q)))

let () =
  Alcotest.run "disco_oql"
    [
      ( "parser",
        [
          Alcotest.test_case "paper query" `Quick test_parse_paper_query;
          Alcotest.test_case "extent star vs multiplication" `Quick
            test_parse_star;
          Alcotest.test_case "and-separated from" `Quick
            test_parse_from_and_separator;
          Alcotest.test_case "nested union" `Quick test_parse_union_nested;
          Alcotest.test_case "roundtrip cases" `Quick test_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "free collections" `Quick test_free_collections;
        ] );
      ( "eval",
        [
          Alcotest.test_case "paper intro query" `Quick test_eval_paper_intro;
          Alcotest.test_case "partial answer resubmission" `Quick
            test_eval_partial_answer_form;
          Alcotest.test_case "double view" `Quick test_eval_double_view;
          Alcotest.test_case "correlated aggregate" `Quick
            test_eval_correlated_aggregate;
          Alcotest.test_case "metaextent query" `Quick test_eval_metaextent_style;
          Alcotest.test_case "distinct" `Quick test_eval_distinct_set;
          Alcotest.test_case "dependent from" `Quick test_eval_dependent_from;
          Alcotest.test_case "empty and null" `Quick test_eval_empty_and_null;
          Alcotest.test_case "errors" `Quick test_eval_errors;
          Alcotest.test_case "order by" `Quick test_eval_order_by;
          Alcotest.test_case "order by roundtrip" `Quick test_order_by_roundtrip;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_print_parse_roundtrip ] );
    ]
