(* Tests for the ODL layer: types, type maps, the schema registry, and the
   ODL parser with DISCO extensions. *)

module V = Disco_value.Value
module Otype = Disco_odl.Otype
module Typemap = Disco_odl.Typemap
module Registry = Disco_odl.Registry
module Odl = Disco_odl.Odl_parser

let check_value = Alcotest.testable V.pp V.equal

(* The paper's running example (Sections 2.1-2.2) as one ODL program. *)
let paper_program =
  {|
  r0 := Repository(host="rodin", name="db", address="123.45.6.7");
  r1 := Repository(host="umiacs", name="db", address="123.45.6.8");
  w0 := WrapperPostgres();
  interface Person (extent person) {
    attribute String name;
    attribute Short salary; }
  extent person0 of Person wrapper w0 repository r0;
  extent person1 of Person wrapper w0 repository r1;
  interface Student : Person { }
  extent student0 of Student wrapper w0 repository r0;
  interface PersonPrime {
    attribute String n;
    attribute Short s; }
  extent personprime0 of PersonPrime wrapper w0 repository r0
    map ((person0=personprime0),(name=n),(salary=s));
  define double as
    select struct(name: x.name, salary: x.salary + y.salary)
    from x in person0 and y in person1
    where x.id = y.id;
|}

let loaded () =
  let reg = Registry.create () in
  Odl.load reg paper_program;
  reg

(* -- Otype -- *)

let test_otype_names () =
  Alcotest.(check bool) "short" true (Otype.of_odl_name "Short" = Some Otype.TInt);
  Alcotest.(check bool) "string" true
    (Otype.of_odl_name "String" = Some Otype.TString);
  Alcotest.(check bool) "unknown" true (Otype.of_odl_name "Person" = None);
  Alcotest.(check string) "pp bag" "Bag<Short>"
    (Otype.to_string (Otype.TBag Otype.TInt))

(* -- Typemap -- *)

let test_typemap_directions () =
  let m =
    Typemap.make
      ~collection:("person0", "personprime0")
      [ ("name", "n"); ("salary", "s") ]
  in
  Alcotest.(check string) "collection to source" "person0"
    (Typemap.source_collection m "personprime0");
  Alcotest.(check string) "unmapped collection" "other"
    (Typemap.source_collection m "other");
  Alcotest.(check string) "field to source" "salary" (Typemap.source_field m "s");
  Alcotest.(check string) "field to mediator" "s" (Typemap.mediator_field m "salary");
  Alcotest.(check string) "unmapped field" "age" (Typemap.source_field m "age")

let test_typemap_rename_struct () =
  let m = Typemap.make [ ("name", "n"); ("salary", "s") ] in
  let src = V.strct [ ("name", V.String "Mary"); ("salary", V.Int 200) ] in
  Alcotest.check check_value "renamed"
    (V.strct [ ("n", V.String "Mary"); ("s", V.Int 200) ])
    (Typemap.rename_struct_to_mediator m src);
  let bag = V.bag [ src ] in
  (match Typemap.rename_struct_to_mediator m bag with
  | V.Bag [ V.Struct [ ("n", _); ("s", _) ] ] -> ()
  | _ -> Alcotest.fail "collection rename failed")

let test_typemap_duplicates () =
  (try
     ignore (Typemap.make [ ("a", "x"); ("a", "y") ]);
     Alcotest.fail "expected Map_error"
   with Typemap.Map_error _ -> ());
  try
    ignore (Typemap.make [ ("a", "x"); ("b", "x") ]);
    Alcotest.fail "expected Map_error"
  with Typemap.Map_error _ -> ()

let test_typemap_transforms () =
  let m =
    Typemap.make_ext
      ~collection:("weekly0", "person0")
      [ { Typemap.fe_src = "salary"; fe_med = "yearly"; fe_scale = 52.0; fe_offset = 0.0 } ]
  in
  Alcotest.check check_value "int stays int" (V.Int 520)
    (Typemap.convert_value_to_mediator m ~source_field:"salary" (V.Int 10));
  Alcotest.check check_value "unmapped untouched" (V.Int 10)
    (Typemap.convert_value_to_mediator m ~source_field:"other" (V.Int 10));
  (match Typemap.transform_of_mediator_field m "yearly" with
  | Some ("salary", 52.0, 0.0) -> ()
  | _ -> Alcotest.fail "transform lookup");
  (* struct renaming converts values *)
  Alcotest.check check_value "rename + convert"
    (V.strct [ ("yearly", V.Int 104) ])
    (Typemap.rename_struct_to_mediator m (V.strct [ ("salary", V.Int 2) ]));
  (* printing round-trips through the ODL parser *)
  let printed = Fmt.str "%a" Typemap.pp m in
  Alcotest.(check string) "pp" "((weekly0=person0),(salary*52=yearly))" printed;
  (try
     ignore
       (Typemap.make_ext
          [ { Typemap.fe_src = "a"; fe_med = "b"; fe_scale = -1.0; fe_offset = 0.0 } ]);
     Alcotest.fail "negative scale accepted"
   with Typemap.Map_error _ -> ())

let test_typemap_compose_transforms () =
  let inner =
    Typemap.make_ext
      [ { Typemap.fe_src = "mid"; fe_med = "top"; fe_scale = 2.0; fe_offset = 1.0 } ]
  in
  let outer =
    Typemap.make_ext
      [ { Typemap.fe_src = "src"; fe_med = "mid"; fe_scale = 3.0; fe_offset = 4.0 } ]
  in
  let c = Typemap.compose_flat outer inner in
  (* top = 2*mid + 1 = 2*(3*src + 4) + 1 = 6*src + 9 *)
  match Typemap.transform_of_mediator_field c "top" with
  | Some ("src", 6.0, 9.0) -> ()
  | Some (f, sc, off) -> Alcotest.fail (Fmt.str "%s %g %g" f sc off)
  | None -> Alcotest.fail "composition lost the transform"

(* -- Registry -- *)

let test_registry_interfaces () =
  let reg = loaded () in
  Alcotest.(check (list string))
    "interfaces" [ "Person"; "Student"; "PersonPrime" ]
    (Registry.interface_names reg);
  let attrs = Registry.attributes_of reg "Student" in
  Alcotest.(check (list string)) "inherited attrs" [ "name"; "salary" ]
    (List.map fst attrs);
  Alcotest.(check bool) "subtype" true
    (Registry.subtype_of reg ~sub:"Student" ~super:"Person");
  Alcotest.(check bool) "not supertype" false
    (Registry.subtype_of reg ~sub:"Person" ~super:"Student");
  Alcotest.(check bool) "reflexive" true
    (Registry.subtype_of reg ~sub:"Person" ~super:"Person")

let test_registry_extents () =
  let reg = loaded () in
  let names l = List.map (fun e -> e.Registry.me_name) l in
  Alcotest.(check (list string))
    "direct extents (no subtypes, Section 2.2.1)" [ "person0"; "person1" ]
    (names (Registry.extents_of reg "Person"));
  Alcotest.(check (list string))
    "star extents include subtypes" [ "person0"; "person1"; "student0" ]
    (names (Registry.extents_of_star reg "Person"));
  match Registry.find_extent reg "personprime0" with
  | None -> Alcotest.fail "personprime0 missing"
  | Some e ->
      Alcotest.(check string) "mapped source field" "salary"
        (Typemap.source_field e.Registry.me_map "s")

let test_registry_errors () =
  let reg = loaded () in
  let expect_err f =
    try
      f ();
      Alcotest.fail "expected Odl_error"
    with Registry.Odl_error _ -> ()
  in
  expect_err (fun () ->
      Odl.load reg "extent person0 of Person wrapper w0 repository r0;");
  expect_err (fun () ->
      Odl.load reg "extent px of Nosuch wrapper w0 repository r0;");
  expect_err (fun () ->
      Odl.load reg "extent py of Person wrapper nosuch repository r0;");
  expect_err (fun () ->
      Odl.load reg "interface Person { attribute Short x; }");
  expect_err (fun () ->
      Odl.load reg
        "interface Bad : Person { attribute String name; }" (* dup attr *))

let test_registry_metaextent_bag () =
  let reg = loaded () in
  let bag = Registry.metaextent_bag reg in
  Alcotest.(check int) "four extents" 4 (V.cardinal bag);
  let person_extents =
    V.filter_elements
      (fun me -> V.equal (V.field me "interface") (V.String "Person"))
      bag
  in
  Alcotest.(check int) "person extents" 2 (V.cardinal person_extents)

let test_registry_versioning () =
  let reg = loaded () in
  let v0 = Registry.version reg in
  Odl.load reg "extent person2 of Person wrapper w0 repository r0;";
  let v1 = Registry.version reg in
  Alcotest.(check bool) "add bumps" true (v1 > v0);
  Odl.load reg "drop extent person2;";
  Alcotest.(check bool) "drop bumps" true (Registry.version reg > v1);
  Odl.load reg "drop extent nosuch;";
  Alcotest.(check bool) "no-op drop does not bump" true
    (Registry.version reg = v1 + 1)

let test_struct_conforms () =
  let reg = loaded () in
  let ok = V.strct [ ("name", V.String "Mary"); ("salary", V.Int 200) ] in
  let wrong_type = V.strct [ ("name", V.Int 1); ("salary", V.Int 200) ] in
  let missing = V.strct [ ("name", V.String "Mary") ] in
  Alcotest.(check bool) "conforms" true (Registry.struct_conforms reg "Person" ok);
  Alcotest.(check bool) "wrong type" false
    (Registry.struct_conforms reg "Person" wrong_type);
  Alcotest.(check bool) "missing field" false
    (Registry.struct_conforms reg "Person" missing);
  Alcotest.(check bool) "null field conforms" true
    (Registry.struct_conforms reg "Person"
       (V.strct [ ("name", V.Null); ("salary", V.Null) ]))

(* -- parser details -- *)

let test_parse_objects () =
  match Odl.parse_program {|r9 := Repository(host="h", name="n", address="a");|} with
  | [ Odl.Object_def { od_name = "r9"; od_constructor = "Repository"; od_args } ] ->
      Alcotest.(check int) "args" 3 (List.length od_args);
      Alcotest.check check_value "host" (V.String "h") (List.assoc "host" od_args)
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_define_body () =
  let program = {|define v as select x from x in person where x.salary > 10;|} in
  match Odl.parse_program program with
  | [ Odl.View_def { vd_name = "v"; vd_body } ] ->
      Alcotest.(check string) "raw body"
        "select x from x in person where x.salary > 10" vd_body
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_define_nested_semicolon () =
  (* Parentheses protect nothing here, but a second statement follows: the
     define body must stop at the first top-level ';'. *)
  let program =
    {|define v as union(select x from x in a, bag(1));
      interface I { attribute Short k; }|}
  in
  match Odl.parse_program program with
  | [ Odl.View_def { vd_body; _ }; Odl.Interface_def i ] ->
      Alcotest.(check string) "body" "union(select x from x in a, bag(1))" vd_body;
      Alcotest.(check string) "next statement" "I" i.Registry.if_name
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_roundtrip_pp () =
  let program = paper_program in
  let stmts = Odl.parse_program program in
  Alcotest.(check int) "statement count" 11 (List.length stmts);
  (* Printing then reparsing every statement must preserve it. *)
  List.iter
    (fun stmt ->
      let printed = Fmt.str "%a" Odl.pp_statement stmt in
      match Odl.parse_program printed with
      | [ stmt2 ] ->
          Alcotest.(check string)
            (Fmt.str "stable: %s" printed)
            printed
            (Fmt.str "%a" Odl.pp_statement stmt2)
      | _ -> Alcotest.fail ("reparse failed for: " ^ printed))
    stmts

let () =
  Alcotest.run "disco_odl"
    [
      ("otype", [ Alcotest.test_case "names and printing" `Quick test_otype_names ]);
      ( "typemap",
        [
          Alcotest.test_case "directions" `Quick test_typemap_directions;
          Alcotest.test_case "struct renaming" `Quick test_typemap_rename_struct;
          Alcotest.test_case "duplicates rejected" `Quick test_typemap_duplicates;
          Alcotest.test_case "value transforms" `Quick test_typemap_transforms;
          Alcotest.test_case "transform composition" `Quick
            test_typemap_compose_transforms;
        ] );
      ( "registry",
        [
          Alcotest.test_case "interfaces and subtyping" `Quick
            test_registry_interfaces;
          Alcotest.test_case "extents and star" `Quick test_registry_extents;
          Alcotest.test_case "semantic errors" `Quick test_registry_errors;
          Alcotest.test_case "metaextent bag" `Quick test_registry_metaextent_bag;
          Alcotest.test_case "versioning" `Quick test_registry_versioning;
          Alcotest.test_case "struct conformance" `Quick test_struct_conforms;
        ] );
      ( "parser",
        [
          Alcotest.test_case "object definitions" `Quick test_parse_objects;
          Alcotest.test_case "define raw body" `Quick test_parse_define_body;
          Alcotest.test_case "define stops at semicolon" `Quick
            test_parse_define_nested_semicolon;
          Alcotest.test_case "print/parse roundtrip" `Quick test_parse_roundtrip_pp;
        ] );
    ]
