(* Tests for the lib/cache subsystem: the LRU policy, the semantic
   answer cache (normalization, version invalidation, stale serving),
   the mediator integration (fresh hits, Cached_fallback, bounded plan
   cache), and resubmission convergence. *)

module V = Disco_value.Value
module Expr = Disco_algebra.Expr
module Source = Disco_source.Source
module Schedule = Disco_source.Schedule
module Clock = Disco_source.Clock
module Datagen = Disco_source.Datagen
module Database = Disco_relation.Database
module Table = Disco_relation.Table
module Lru = Disco_cache.Lru
module Answer_cache = Disco_cache.Answer_cache
module Resubmission = Disco_cache.Resubmission
module Mediator = Disco_core.Mediator

let qopts ?(timeout_ms = 1000.0) ?(semantics = Mediator.Partial_answers)
    ?(type_check = false) ?(static_check = false) () =
  { Mediator.Query_opts.timeout_ms; semantics; type_check; static_check }

let check_value = Alcotest.testable V.pp V.equal

(* -- LRU policy -- *)

let test_lru_eviction_order () =
  let c = Lru.create ~capacity:3 () in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "c" 3;
  (* touch [a]: it becomes most-recently used, so [b] is now the LRU *)
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find c "a");
  Lru.add c "d" 4;
  Alcotest.(check (option int)) "b evicted" None (Lru.peek c "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Lru.peek c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Lru.peek c "c");
  Alcotest.(check int) "one eviction" 1 (Lru.evictions c);
  Alcotest.(check (list string)) "MRU order"
    [ "d"; "a"; "c" ]
    (List.map fst (Lru.to_list c))

let test_lru_replace_and_clear () =
  let c = Lru.create ~capacity:2 () in
  Lru.add c "a" 1;
  Lru.add c "a" 10;
  Alcotest.(check int) "replace is not insert" 1 (Lru.length c);
  Alcotest.(check (option int)) "replaced value" (Some 10) (Lru.find c "a");
  Lru.add c "b" 2;
  Lru.add c "c" 3;
  Alcotest.(check int) "eviction counted" 1 (Lru.evictions c);
  Lru.clear c;
  Alcotest.(check int) "cleared" 0 (Lru.length c);
  Alcotest.(check int) "clear preserves eviction count" 1 (Lru.evictions c);
  Alcotest.check_raises "capacity >= 1"
    (Invalid_argument "Lru.create: capacity must be >= 1") (fun () ->
      ignore (Lru.create ~capacity:0 ()))

let test_lru_peek_does_not_touch () =
  let c = Lru.create ~capacity:2 () in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  (* peek must NOT rescue [a] from eviction *)
  Alcotest.(check (option int)) "peek a" (Some 1) (Lru.peek c "a");
  Lru.add c "c" 3;
  Alcotest.(check (option int)) "a evicted despite peek" None (Lru.peek c "a")

(* -- normalization: equivalent spellings share one slot -- *)

let sel pred = Expr.Select (Expr.Get "person0", pred)
let attr a = Expr.Attr [ a ]
let gt a k = Expr.Cmp (Expr.Gt, attr a, Expr.Const (V.Int k))
let lt a k = Expr.Cmp (Expr.Lt, attr a, Expr.Const (V.Int k))

let test_normalize_commutes () =
  let p1 = Expr.And (gt "salary" 10, lt "id" 5)
  and p2 = Expr.And (lt "id" 5, gt "salary" 10) in
  Alcotest.(check string) "conjunct order is canonical"
    (Answer_cache.key ~repo:"r0" (sel p1))
    (Answer_cache.key ~repo:"r0" (sel p2));
  (* x > 10 and 10 < x are the same predicate *)
  let flipped = Expr.Cmp (Expr.Lt, Expr.Const (V.Int 10), attr "salary") in
  Alcotest.(check string) "> flips to <"
    (Answer_cache.key ~repo:"r0" (sel (gt "salary" 10)))
    (Answer_cache.key ~repo:"r0" (sel flipped));
  (* different repositories never share slots *)
  Alcotest.(check bool) "repo isolates" false
    (Answer_cache.key ~repo:"r0" (sel p1)
    = Answer_cache.key ~repo:"r1" (sel p1))

(* -- version invalidation and stale serving -- *)

let test_version_invalidation () =
  let c = Answer_cache.create () in
  let e = sel (gt "salary" 10) in
  let v = V.bag [ V.String "Mary" ] in
  Answer_cache.store c ~repo:"r0" ~version:1 ~now:100.0 e v;
  Alcotest.(check (option check_value)) "fresh at matching version" (Some v)
    (Answer_cache.find_fresh c ~repo:"r0" ~version:1 e);
  Alcotest.(check (option check_value)) "version moved: no fresh hit" None
    (Answer_cache.find_fresh c ~repo:"r0" ~version:2 e);
  let s = Answer_cache.stats c in
  Alcotest.(check int) "hit counted" 1 s.Answer_cache.hits;
  Alcotest.(check int) "stale counted" 1 s.Answer_cache.stale;
  (* the stale entry is retained for outage fallback... *)
  (match Answer_cache.find_stale c ~repo:"r0" ~now:150.0 ~max_stale_ms:60.0 e with
  | Some (sv, age) ->
      Alcotest.check check_value "stale value served" v sv;
      Alcotest.(check (float 0.001)) "age" 50.0 age
  | None -> Alcotest.fail "expected stale serve");
  (* ...but only within the staleness budget *)
  Alcotest.(check bool) "over budget: refused" true
    (Answer_cache.find_stale c ~repo:"r0" ~now:200.0 ~max_stale_ms:60.0 e
    = None);
  let s = Answer_cache.stats c in
  Alcotest.(check int) "one stale serve" 1 s.Answer_cache.stale_served;
  Alcotest.(check (float 0.001)) "max served age" 50.0 s.Answer_cache.stale_ms

let test_invalidate_repo () =
  let c = Answer_cache.create () in
  let e = sel (gt "salary" 10) in
  Answer_cache.store c ~repo:"r0" ~version:1 ~now:0.0 e (V.bag [ V.Int 1 ]);
  Answer_cache.store c ~repo:"r1" ~version:1 ~now:0.0 e (V.bag [ V.Int 2 ]);
  Answer_cache.invalidate_repo c "r0";
  Alcotest.(check bool) "r0 gone" true
    (Answer_cache.find_fresh c ~repo:"r0" ~version:1 e = None);
  Alcotest.(check bool) "r1 kept" true
    (Answer_cache.find_fresh c ~repo:"r1" ~version:1 e <> None)

(* -- mediator integration -- *)

let addr host = Source.address ~host ~db_name:"db" ~ip:"0.0.0.0" ()
let person_row id name salary = [| V.Int id; V.String name; V.Int salary |]

(* A source whose Database we keep a handle on, to mutate it later. *)
let open_source ~id ~host rows =
  let db = Database.create ~name:"db" in
  let tbl =
    Datagen.table_of db ~name:("person" ^ string_of_int id)
      Datagen.person_schema rows
  in
  ( Source.create ~id:(Fmt.str "src%d" id) ~address:(addr host)
      ~latency:{ Source.base_ms = 5.0; per_row_ms = 0.0; jitter = 0.0 }
      (Source.Relational db),
    tbl )

let cached_mediator ?metrics () =
  let m =
    Mediator.create
      ~config:
        {
          Mediator.Config.default with
          cache = Some (Answer_cache.create ());
          metrics =
            Option.value metrics
              ~default:Mediator.Config.default.Mediator.Config.metrics;
        }
      ~name:"m0" ()
  in
  let s0, t0 = open_source ~id:0 ~host:"rodin" [ person_row 1 "Mary" 200 ] in
  let s1, t1 = open_source ~id:1 ~host:"umiacs" [ person_row 1 "Sam" 50 ] in
  Mediator.register_source m ~name:"r0" s0;
  Mediator.register_source m ~name:"r1" s1;
  Mediator.load_odl m
    {|
    r0 := Repository(host="rodin", name="db", address="0");
    r1 := Repository(host="umiacs", name="db", address="0");
    w0 := WrapperPostgres();
    interface Person (extent person) {
      attribute String name;
      attribute Short salary; }
    extent person0 of Person wrapper w0 repository r0;
    extent person1 of Person wrapper w0 repository r1;
  |};
  (m, s0, s1, t0, t1)

let q = "select x.name from x in person where x.salary > 10"

let complete outcome =
  match outcome.Mediator.answer with
  | Mediator.Complete v -> v
  | Mediator.Partial _ as p ->
      Alcotest.fail ("unexpected partial: " ^ Mediator.answer_oql p)
  | Mediator.Unavailable repos ->
      Alcotest.fail ("unavailable: " ^ String.concat "," repos)

let test_mediator_answer_cache_hits () =
  let m, _, _, _, _ = cached_mediator () in
  let o1 = Mediator.query m q in
  let expected = V.bag [ V.String "Mary"; V.String "Sam" ] in
  Alcotest.check check_value "cold answer" expected (complete o1);
  Alcotest.(check int) "cold run ships tuples" 2
    o1.Mediator.stats.Disco_runtime.Runtime.tuples_shipped;
  let o2 = Mediator.query m q in
  Alcotest.check check_value "warm answer identical" expected (complete o2);
  Alcotest.(check int) "warm run ships nothing" 0
    o2.Mediator.stats.Disco_runtime.Runtime.tuples_shipped;
  Alcotest.(check int) "both execs hit" 2
    o2.Mediator.answer_cache.Mediator.answer_hits;
  (* plan-cache and answer-cache reporting stay distinct *)
  Alcotest.(check bool) "plan also cached" true o2.Mediator.from_cache;
  Alcotest.(check bool) "cold plan was a miss" false o1.Mediator.from_cache

let test_mediator_version_invalidation () =
  let m, _, _, t0, _ = cached_mediator () in
  ignore (complete (Mediator.query m q));
  (* mutate r0's store: its data version moves, the cached fragment for
     r0 must be refetched while r1's fragment still hits *)
  Table.insert t0 (person_row 2 "Zoe" 300);
  let v = complete (Mediator.query m q) in
  Alcotest.check check_value "new row visible"
    (V.bag [ V.String "Mary"; V.String "Zoe"; V.String "Sam" ])
    v;
  let s = Option.get (Mediator.answer_cache_stats m) in
  Alcotest.(check int) "r0's entry went stale" 1 s.Answer_cache.stale;
  Alcotest.(check bool) "r1 still hit" true (s.Answer_cache.hits >= 1)

let test_cached_fallback_serves_stale () =
  let m, s0, _, t0, _ = cached_mediator () in
  ignore (complete (Mediator.query m q));
  (* r0's data changes AND the source goes down: fresh lookup is
     impossible, plain partial evaluation would leave a residual, but
     Cached_fallback serves the stale fragment within budget *)
  Table.insert t0 (person_row 2 "Zoe" 300);
  Source.set_schedule s0 Schedule.always_down;
  let sem = Mediator.Cached_fallback { max_stale_ms = 60_000.0 } in
  let o = Mediator.query ~opts:(qopts ~semantics:sem ()) m q in
  Alcotest.check check_value "stale fragment bridges the outage"
    (V.bag [ V.String "Mary"; V.String "Sam" ])
    (complete o);
  Alcotest.(check int) "one stale serve" 1
    o.Mediator.answer_cache.Mediator.stale_hits;
  Alcotest.(check bool) "staleness reported" true
    (o.Mediator.answer_cache.Mediator.stale_ms >= 0.0);
  (* beyond the budget the outage is visible again *)
  Clock.advance_to (Mediator.clock m) 120_000.0;
  let tight = Mediator.Cached_fallback { max_stale_ms = 10.0 } in
  (match (Mediator.query ~opts:(qopts ~semantics:tight ()) m q).Mediator.answer with
  | Mediator.Partial { unavailable; _ } ->
      Alcotest.(check (list string)) "r0 residual" [ "r0" ] unavailable
  | Mediator.Complete _ -> Alcotest.fail "expected partial beyond budget"
  | Mediator.Unavailable _ -> Alcotest.fail "unexpected unavailable")

let test_plan_cache_bounded () =
  let m = Mediator.create ~config:{ Mediator.Config.default with plan_cache_capacity = 2 } ~name:"m1" () in
  let s0, _ = open_source ~id:0 ~host:"rodin" [ person_row 1 "Mary" 200 ] in
  Mediator.register_source m ~name:"r0" s0;
  Mediator.load_odl m
    {|
    r0 := Repository(host="rodin", name="db", address="0");
    w0 := WrapperPostgres();
    interface Person (extent person) {
      attribute String name;
      attribute Short salary; }
    extent person0 of Person wrapper w0 repository r0;
  |};
  for k = 1 to 4 do
    ignore
      (Mediator.query m
         (Fmt.str "select x.name from x in person where x.salary > %d" k))
  done;
  let p = Mediator.plan_cache_stats m in
  Alcotest.(check int) "bounded at capacity" 2 p.Mediator.p_size;
  Alcotest.(check int) "capacity reported" 2 p.Mediator.p_capacity;
  Alcotest.(check int) "all four missed" 4 p.Mediator.p_misses;
  Alcotest.(check int) "evictions counted" 2 p.Mediator.p_evictions;
  (* a repeated query hits *)
  ignore (Mediator.query m "select x.name from x in person where x.salary > 4");
  Alcotest.(check int) "hit counted" 1 (Mediator.plan_cache_stats m).Mediator.p_hits;
  Mediator.clear_plan_cache m;
  let p = Mediator.plan_cache_stats m in
  Alcotest.(check int) "clear empties" 0 p.Mediator.p_size;
  Alcotest.(check int) "clear resets hits" 0 p.Mediator.p_hits;
  Alcotest.(check int) "clear resets misses" 0 p.Mediator.p_misses

(* -- metric counters along the cache paths -- *)

let test_cache_metrics_counters () =
  let module Metrics = Disco_obs.Metrics in
  let reg = Metrics.create () in
  let m, s0, _, t0, _ = cached_mediator ~metrics:reg () in
  (* cold: both execs answered by their sources *)
  ignore (complete (Mediator.query m q));
  Alcotest.(check int) "cold execs from sources" 2
    (Metrics.find_counter reg "exec.origin.source");
  Alcotest.(check int) "cold tuples counted" 2
    (Metrics.find_counter reg "exec.tuples_shipped");
  (* warm: both execs served from the cache, nothing shipped *)
  ignore (complete (Mediator.query m q));
  Alcotest.(check int) "warm execs from cache" 2
    (Metrics.find_counter reg "exec.origin.cache");
  Alcotest.(check int) "no extra tuples" 2
    (Metrics.find_counter reg "exec.tuples_shipped");
  Alcotest.(check int) "plan cache hit counted" 1
    (Metrics.find_counter reg "plan_cache.hit");
  (* stale serve: r0's data moves and the source goes down *)
  Table.insert t0 (person_row 2 "Zoe" 300);
  Source.set_schedule s0 Schedule.always_down;
  let sem = Mediator.Cached_fallback { max_stale_ms = 60_000.0 } in
  ignore (complete (Mediator.query ~opts:(qopts ~semantics:sem ()) m q));
  Alcotest.(check int) "stale serve counted" 1
    (Metrics.find_counter reg "exec.origin.stale");
  Alcotest.(check int) "three queries" 3
    (Metrics.find_counter reg "mediator.queries");
  Alcotest.(check int) "all complete" 3
    (Metrics.find_counter reg "mediator.answers.complete");
  (* the elapsed histogram saw every query *)
  match Metrics.find_histogram reg "query.elapsed_virtual_ms" with
  | Some h -> Alcotest.(check int) "histogram count" 3 h.Metrics.h_count
  | None -> Alcotest.fail "elapsed histogram missing"

(* -- resubmission -- *)

let test_resubmission_converges () =
  let m = Mediator.create ~config:{ Mediator.Config.default with cache = Some (Answer_cache.create ()) } ~name:"m2" () in
  let s0, _ = open_source ~id:0 ~host:"rodin" [ person_row 1 "Mary" 200 ] in
  let s1, _ = open_source ~id:1 ~host:"umiacs" [ person_row 2 "Sam" 50 ] in
  Source.set_schedule s1 (Schedule.down_during [ (0.0, 2000.0) ]);
  Mediator.register_source m ~name:"r0" s0;
  Mediator.register_source m ~name:"r1" s1;
  Mediator.load_odl m
    {|
    r0 := Repository(host="rodin", name="db", address="0");
    r1 := Repository(host="umiacs", name="db", address="0");
    w0 := WrapperPostgres();
    interface Person (extent person) {
      attribute String name;
      attribute Short salary; }
    extent person0 of Person wrapper w0 repository r0;
    extent person1 of Person wrapper w0 repository r1;
  |};
  let o = Mediator.query m q in
  let queue = Resubmission.create ~clock:(Mediator.clock m) () in
  (match Mediator.record_partial queue o with
  | Some id -> Alcotest.(check int) "first id" 0 id
  | None -> Alcotest.fail "expected a partial to record");
  let converged =
    Resubmission.drain queue
      ~source_of:(Mediator.find_source m)
      ~run:(Mediator.resubmission_runner m)
  in
  Alcotest.(check int) "converged" 1 converged;
  Alcotest.(check int) "nothing pending" 0 (List.length (Resubmission.pending queue));
  (match Resubmission.entries queue with
  | [ e ] -> (
      match e.Resubmission.state with
      | Resubmission.Converged rounds ->
          Alcotest.(check bool) "bounded rounds" true (rounds >= 1 && rounds <= 2)
      | Resubmission.Pending -> Alcotest.fail "still pending")
  | _ -> Alcotest.fail "expected one entry");
  Alcotest.(check bool) "clock advanced past recovery" true
    (Clock.now (Mediator.clock m) >= 2000.0);
  (* a complete answer records nothing *)
  let o2 = Mediator.query m q in
  Alcotest.check check_value "complete after recovery"
    (V.bag [ V.String "Mary"; V.String "Sam" ])
    (complete o2);
  Alcotest.(check bool) "complete: nothing recorded" true
    (Mediator.record_partial queue o2 = None)

let test_resubmission_no_recovery () =
  let m = Mediator.create ~name:"m3" () in
  let s0, _ = open_source ~id:0 ~host:"rodin" [ person_row 1 "Mary" 200 ] in
  Source.set_schedule s0 Schedule.always_down;
  Mediator.register_source m ~name:"r0" s0;
  Mediator.load_odl m
    {|
    r0 := Repository(host="rodin", name="db", address="0");
    w0 := WrapperPostgres();
    interface Person (extent person) {
      attribute String name;
      attribute Short salary; }
    extent person0 of Person wrapper w0 repository r0;
  |};
  let o = Mediator.query m q in
  let queue = Resubmission.create ~clock:(Mediator.clock m) () in
  ignore (Mediator.record_partial queue o);
  Alcotest.(check (option (float 0.0))) "no recovery in sight" None
    (Resubmission.next_recovery queue ~source_of:(Mediator.find_source m));
  let converged =
    Resubmission.drain queue
      ~source_of:(Mediator.find_source m)
      ~run:(Mediator.resubmission_runner m)
  in
  Alcotest.(check int) "nothing converged" 0 converged;
  Alcotest.(check int) "still pending" 1
    (List.length (Resubmission.pending queue))

let () =
  Alcotest.run "disco_cache"
    [
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "replace and clear" `Quick test_lru_replace_and_clear;
          Alcotest.test_case "peek does not touch" `Quick test_lru_peek_does_not_touch;
        ] );
      ( "normalize",
        [ Alcotest.test_case "equivalent spellings" `Quick test_normalize_commutes ] );
      ( "answer-cache",
        [
          Alcotest.test_case "version invalidation" `Quick test_version_invalidation;
          Alcotest.test_case "invalidate repo" `Quick test_invalidate_repo;
        ] );
      ( "mediator",
        [
          Alcotest.test_case "warm hits ship nothing" `Quick
            test_mediator_answer_cache_hits;
          Alcotest.test_case "store mutation invalidates" `Quick
            test_mediator_version_invalidation;
          Alcotest.test_case "cached fallback serves stale" `Quick
            test_cached_fallback_serves_stale;
          Alcotest.test_case "plan cache bounded" `Quick test_plan_cache_bounded;
          Alcotest.test_case "metric counters" `Quick
            test_cache_metrics_counters;
        ] );
      ( "resubmission",
        [
          Alcotest.test_case "converges on recovery" `Quick
            test_resubmission_converges;
          Alcotest.test_case "no recovery stays pending" `Quick
            test_resubmission_no_recovery;
        ] );
    ]
