(* Tests for the relational substrate: schemas, tables, the SQL dialect
   (lexing, parsing, printing, execution). *)

module V = Disco_value.Value
module Schema = Disco_relation.Schema
module Table = Disco_relation.Table
module Database = Disco_relation.Database
module Sql = Disco_relation.Sql
module Lexer = Disco_lex.Lexer

let check_value = Alcotest.testable V.pp V.equal

let person_schema =
  Schema.make
    [ ("id", Schema.TInt); ("name", Schema.TString); ("salary", Schema.TInt) ]

let sample_db () =
  let db = Database.create ~name:"db" in
  let t = Database.create_table db ~name:"person" person_schema in
  Table.insert t [| V.Int 1; V.String "Mary"; V.Int 200 |];
  Table.insert t [| V.Int 2; V.String "Sam"; V.Int 50 |];
  Table.insert t [| V.Int 3; V.String "Ana"; V.Int 5 |];
  db

(* -- lexer -- *)

let test_lexer_basic () =
  let toks =
    Lexer.tokenize ~puncts:[ "<="; "<"; "("; ")"; "." ]
      "select x.name (42) 3.5 'it''?' <= -- comment\n done"
  in
  let kinds = List.map fst toks in
  Alcotest.(check int) "token count" 12 (List.length kinds);
  (match kinds with
  | Lexer.Ident "select"
    :: Lexer.Ident "x"
    :: Lexer.Punct "."
    :: Lexer.Ident "name" :: _ ->
      ()
  | _ -> Alcotest.fail "unexpected token sequence");
  match List.rev kinds with
  | Lexer.Ident "done" :: Lexer.Punct "<=" :: Lexer.Str "?" :: Lexer.Str "it" :: _ -> ()
  | _ -> Alcotest.fail "unexpected tail"

let test_lexer_errors () =
  let tk s = ignore (Lexer.tokenize ~puncts:[ "(" ] s) in
  Alcotest.check_raises "bad char" (Lexer.Error ("unexpected character '@'", 0))
    (fun () -> tk "@");
  Alcotest.check_raises "unterminated string"
    (Lexer.Error ("unterminated string literal", 0)) (fun () -> tk "\"abc")

(* -- schema / table -- *)

let test_schema_dup () =
  Alcotest.check_raises "dup column" (Schema.Schema_error "duplicate column a")
    (fun () -> ignore (Schema.make [ ("a", Schema.TInt); ("a", Schema.TInt) ]))

let test_row_conformance () =
  let t = Table.create ~name:"t" person_schema in
  Alcotest.check_raises "arity"
    (Schema.Schema_error "row arity 1 does not match schema arity 3")
    (fun () -> Table.insert t [| V.Int 1 |]);
  (try
     Table.insert t [| V.String "x"; V.String "y"; V.Int 1 |];
     Alcotest.fail "type error expected"
   with Schema.Schema_error _ -> ());
  Table.insert t [| V.Null; V.String "ok"; V.Null |];
  Alcotest.(check int) "null conforms" 1 (Table.cardinality t)

let test_struct_roundtrip () =
  let row = [| V.Int 1; V.String "Mary"; V.Int 200 |] in
  let s = Schema.row_to_struct person_schema row in
  Alcotest.check check_value "roundtrip"
    (V.strct [ ("id", V.Int 1); ("name", V.String "Mary"); ("salary", V.Int 200) ])
    s;
  let row' = Schema.struct_to_row person_schema s in
  Alcotest.(check bool) "row equal" true (row = row')

let test_delete_version () =
  let db = sample_db () in
  let t = Database.get_table db "person" in
  let v0 = Table.version t in
  let removed =
    Table.delete_where t (fun row -> V.equal row.(2) (V.Int 50))
  in
  Alcotest.(check int) "one removed" 1 removed;
  Alcotest.(check int) "two left" 2 (Table.cardinality t);
  Alcotest.(check bool) "version bumped" true (Table.version t > v0)

(* -- SQL parse / print -- *)

let test_sql_roundtrip () =
  let inputs =
    [
      "SELECT name FROM person";
      "SELECT DISTINCT name, salary FROM person WHERE salary > 10";
      "SELECT p.name FROM person p, person q WHERE p.id = q.id AND q.salary <= 100";
      "SELECT * FROM person ORDER BY name DESC LIMIT 2";
      "SELECT (salary + 1) * 2 AS s2 FROM person WHERE NOT (salary = 5 OR salary = 6)";
      "SELECT name FROM person WHERE salary + 2 * id > 50";
    ]
  in
  List.iter
    (fun sql ->
      let q = Sql.parse sql in
      let printed = Sql.to_string q in
      let q2 = Sql.parse printed in
      Alcotest.(check string)
        (Fmt.str "stable print of %s" sql)
        printed (Sql.to_string q2))
    inputs

let test_sql_parse_error () =
  (try
     ignore (Sql.parse "SELECT FROM person");
     Alcotest.fail "expected parse error"
   with Lexer.Error _ -> ());
  try
    ignore (Sql.parse "SELECT a FROM person WHERE");
    Alcotest.fail "expected parse error"
  with Lexer.Error _ -> ()

(* -- SQL execution -- *)

let names result =
  List.map (fun row -> row.(0)) result.Sql.rows

let test_sql_select () =
  let db = sample_db () in
  let r = Sql.run_string db "SELECT name FROM person WHERE salary > 10" in
  Alcotest.(check (list string))
    "columns" [ "name" ] r.Sql.columns;
  Alcotest.check check_value "rows"
    (V.bag [ V.String "Mary"; V.String "Sam" ])
    (V.bag (names r))

let test_sql_star_order_limit () =
  let db = sample_db () in
  let r = Sql.run_string db "SELECT * FROM person ORDER BY salary DESC LIMIT 2" in
  Alcotest.(check (list string)) "columns" [ "id"; "name"; "salary" ] r.Sql.columns;
  Alcotest.(check int) "limit" 2 (List.length r.Sql.rows);
  match r.Sql.rows with
  | [ a; b ] ->
      Alcotest.check check_value "first" (V.Int 200) a.(2);
      Alcotest.check check_value "second" (V.Int 50) b.(2)
  | _ -> Alcotest.fail "expected two rows"

let test_sql_join () =
  let db = sample_db () in
  let r =
    Sql.run_string db
      "SELECT p.name, q.name FROM person p, person q WHERE p.salary < q.salary"
  in
  Alcotest.(check int) "pairs" 3 (List.length r.Sql.rows)

let test_sql_arith () =
  let db = sample_db () in
  let r = Sql.run_string db "SELECT salary * 2 + 1 AS d FROM person WHERE id = 1" in
  Alcotest.check check_value "arith" (V.Int 401) (List.hd r.Sql.rows).(0)

let test_sql_distinct () =
  let db = sample_db () in
  let r = Sql.run_string db "SELECT DISTINCT 1 AS one FROM person" in
  Alcotest.(check int) "distinct" 1 (List.length r.Sql.rows)

let test_sql_errors () =
  let db = sample_db () in
  let expect_err sql =
    try
      ignore (Sql.run_string db sql);
      Alcotest.fail ("expected Sql_error for " ^ sql)
    with Sql.Sql_error _ -> ()
  in
  expect_err "SELECT x FROM person";
  expect_err "SELECT name FROM nosuch";
  expect_err "SELECT name FROM person WHERE name > 3";
  expect_err "SELECT p.name FROM person p, person p";
  expect_err "SELECT salary / 0 FROM person"

let test_sql_null_semantics () =
  let db = Database.create ~name:"db" in
  let t = Database.create_table db ~name:"t" person_schema in
  Table.insert t [| V.Int 1; V.Null; V.Null |];
  Table.insert t [| V.Int 2; V.String "Bo"; V.Int 7 |];
  let r = Sql.run_string db "SELECT id FROM t WHERE salary > 0" in
  (* NULL is below every value in the collapsed 3VL, so only row 2 passes. *)
  Alcotest.check check_value "null filtered" (V.bag [ V.Int 2 ]) (V.bag (names r));
  let r2 = Sql.run_string db "SELECT id FROM t WHERE name = NULL" in
  Alcotest.check check_value "null = null" (V.bag [ V.Int 1 ]) (V.bag (names r2))

let test_result_to_bag () =
  let db = sample_db () in
  let r = Sql.run_string db "SELECT name FROM person WHERE id = 2" in
  Alcotest.check check_value "bag of structs"
    (V.bag [ V.strct [ ("name", V.String "Sam") ] ])
    (Sql.result_to_bag r)

(* -- literal printing round-trips (LIKE patterns, negative numbers) -- *)

let roundtrip_query q =
  let printed = Sql.to_string q in
  let q2 = Sql.parse printed in
  Alcotest.(check string) (Fmt.str "stable print of %s" printed) printed
    (Sql.to_string q2)

let test_pp_lit_roundtrip () =
  (* patterns with %/_ and embedded quotes/backslashes survive
     print -> parse -> print *)
  List.iter
    (fun s ->
      roundtrip_query
        (Sql.select
           ~where:(Sql.Cmp (Sql.Like, Sql.Col (None, "name"), Sql.Lit (V.String s)))
           [ Sql.Item (Sql.Col (None, "name"), None) ]
           [ ("person", None) ]))
    [ "M%"; "%_y"; "100%"; "it's"; "a\\b"; "'"; "\\"; "%'%" ];
  let quoted = Sql.select
      [ Sql.Item (Sql.Lit (V.String "O'Hara_%"), Some "s") ]
      [ ("person", None) ]
  in
  let reparsed = Sql.parse (Sql.to_string quoted) in
  (match reparsed.Sql.items with
  | [ Sql.Item (Sql.Lit (V.String s), _) ] ->
      Alcotest.(check string) "literal preserved" "O'Hara_%" s
  | _ -> Alcotest.fail "expected one string literal item");
  (* executed LIKE over printed SQL matches the expected rows *)
  let db = Database.create ~name:"db" in
  let t = Database.create_table db ~name:"person" person_schema in
  Table.insert t [| V.Int 1; V.String "O'Hara"; V.Int 1 |];
  Table.insert t [| V.Int 2; V.String "100% done"; V.Int 2 |];
  let like pat =
    Sql.select
      ~where:(Sql.Cmp (Sql.Like, Sql.Col (None, "name"), Sql.Lit (V.String pat)))
      [ Sql.Item (Sql.Col (None, "id"), None) ]
      [ ("person", None) ]
  in
  let ids pat = V.bag (names (Sql.run db (Sql.parse (Sql.to_string (like pat))))) in
  Alcotest.check check_value "quote pattern" (V.bag [ V.Int 1 ]) (ids "O'%");
  Alcotest.check check_value "percent via underscore"
    (V.bag [ V.Int 2 ]) (ids "100_ done")

let test_negative_literals () =
  (* -N parses as a negative literal, and printing it round-trips
     (the old parser only knew [0 - N], whose print re-parsed fine but
     [Lit (Int (-5))] printed as [-5] failed to parse) *)
  let q = Sql.parse "SELECT id FROM person WHERE salary > -5" in
  (match q.Sql.where with
  | Sql.Cmp (Sql.Gt, _, Sql.Lit (V.Int -5)) -> ()
  | _ -> Alcotest.fail "expected a negative int literal");
  roundtrip_query q;
  let qf = Sql.parse "SELECT -3.5 AS x FROM person" in
  (match qf.Sql.items with
  | [ Sql.Item (Sql.Lit (V.Float f), _) ] ->
      Alcotest.(check (float 0.0)) "negative float" (-3.5) f
  | _ -> Alcotest.fail "expected a negative float literal");
  roundtrip_query qf;
  (* subtraction and negation-of-column still mean what they meant *)
  let db = sample_db () in
  let r = Sql.run_string db "SELECT id - -3 FROM person WHERE id = 1" in
  Alcotest.check check_value "id - -3" (V.Int 4) (List.hd r.Sql.rows).(0);
  let r2 = Sql.run_string db "SELECT -salary FROM person WHERE id = 3" in
  Alcotest.check check_value "negated column" (V.Int (-5))
    (List.hd r2.Sql.rows).(0)

(* -- ORDER BY on NULLs, DISTINCT over whole rows, division by zero -- *)

let null_db () =
  let db = Database.create ~name:"db" in
  let t = Database.create_table db ~name:"t" person_schema in
  Table.insert t [| V.Int 1; V.String "a"; V.Int 20 |];
  Table.insert t [| V.Int 2; V.String "b"; V.Null |];
  Table.insert t [| V.Int 3; V.String "c"; V.Int 10 |];
  db

let test_order_by_nulls () =
  let db = null_db () in
  let ids sql = List.map (fun row -> row.(0)) (Sql.run_string db sql).Sql.rows in
  (* numeric_compare: NULL sorts below every value. ORDER BY requires the
     sort column to be selected, so project it alongside the id. *)
  Alcotest.(check bool) "asc: NULL first" true
    (ids "SELECT id, salary FROM t ORDER BY salary" = [ V.Int 2; V.Int 3; V.Int 1 ]);
  Alcotest.(check bool) "desc: NULL last" true
    (ids "SELECT id, salary FROM t ORDER BY salary DESC" = [ V.Int 1; V.Int 3; V.Int 2 ])

let test_distinct_rows () =
  let db = Database.create ~name:"db" in
  let t = Database.create_table db ~name:"t" person_schema in
  Table.insert_all t
    [
      [| V.Int 1; V.String "a"; V.Int 5 |];
      [| V.Int 1; V.String "a"; V.Int 5 |];
      [| V.Int 1; V.String "a"; V.Null |];
      [| V.Int 1; V.String "a"; V.Null |];
      [| V.Int 2; V.String "a"; V.Int 5 |];
    ];
  (* whole result rows (including NULL-bearing duplicates) deduplicate *)
  let r = Sql.run_string db "SELECT DISTINCT id, name, salary FROM t" in
  Alcotest.(check int) "3 distinct rows" 3 (List.length r.Sql.rows);
  let r2 = Sql.run_string db "SELECT DISTINCT name FROM t" in
  Alcotest.(check int) "1 distinct name" 1 (List.length r2.Sql.rows)

let test_div_mod_zero () =
  let db = sample_db () in
  let expect_both sql =
    let raises f =
      match f () with
      | (_ : Sql.result) -> false
      | exception Sql.Sql_error _ -> true
    in
    let q = Sql.parse sql in
    Alcotest.(check bool) (sql ^ " raises on run") true
      (raises (fun () -> Sql.run db q));
    Alcotest.(check bool) (sql ^ " raises on run_rows") true
      (raises (fun () -> Sql.run_rows db q))
  in
  expect_both "SELECT salary / 0 FROM person";
  expect_both "SELECT salary % 0 FROM person";
  expect_both "SELECT id FROM person WHERE salary / 0 > 1";
  (* no rows evaluate the raising item: both engines return cleanly *)
  let empty = Database.create ~name:"empty" in
  ignore (Database.create_table empty ~name:"person" person_schema);
  let q = Sql.parse "SELECT salary / 0 FROM person" in
  Alcotest.(check int) "empty run" 0 (List.length (Sql.run empty q).Sql.rows);
  Alcotest.(check int) "empty run_rows" 0
    (List.length (Sql.run_rows empty q).Sql.rows)

(* -- batch insert: one version bump per batch -- *)

let test_insert_all_version () =
  let t = Table.create ~name:"t" person_schema in
  let v0 = Table.version t in
  Table.insert_all t
    [
      [| V.Int 1; V.String "a"; V.Int 1 |];
      [| V.Int 2; V.String "b"; V.Int 2 |];
      [| V.Int 3; V.String "c"; V.Int 3 |];
    ];
  Alcotest.(check int) "one bump for the batch" (v0 + 1) (Table.version t);
  Alcotest.(check int) "three rows" 3 (Table.cardinality t);
  Table.insert_all t [];
  Alcotest.(check int) "empty batch: no bump" (v0 + 1) (Table.version t)

(* -- columnar engine and secondary indexes -- *)

module Index = Disco_relation.Index

let big_db () =
  let db = Database.create ~name:"db" in
  let t = Database.create_table db ~name:"person" person_schema in
  Table.insert_all t
    (List.init 100 (fun i ->
         [|
           V.Int i;
           V.String (Fmt.str "n%d" (i mod 7));
           (if i mod 11 = 0 then V.Null else V.Int (i * 3 mod 250));
         |]));
  (db, t)

let sorted_rows r = List.sort compare r.Sql.rows

let check_engines_agree db sql =
  let q = Sql.parse sql in
  let a = Sql.run db q and b = Sql.run_rows db q in
  Alcotest.(check (list string)) (sql ^ ": columns") b.Sql.columns a.Sql.columns;
  Alcotest.(check bool) (sql ^ ": same bag") true
    (sorted_rows a = sorted_rows b)

let engine_queries =
  [
    "SELECT * FROM person";
    "SELECT id, name FROM person WHERE salary > 100";
    "SELECT id FROM person WHERE salary > 50 AND salary <= 200";
    "SELECT id FROM person WHERE name = 'n3' OR salary < 30";
    "SELECT id FROM person WHERE NOT (name = 'n3')";
    "SELECT id FROM person WHERE name LIKE 'n%'";
    "SELECT id FROM person WHERE name LIKE '%3'";
    "SELECT id FROM person WHERE salary = NULL";
    "SELECT id FROM person WHERE salary < 30";
    "SELECT name, salary * 2 FROM person WHERE id >= 90";
    "SELECT DISTINCT name FROM person";
    "SELECT id, salary FROM person ORDER BY salary DESC LIMIT 7";
    "SELECT p.id, q.id FROM person p, person q WHERE p.id = q.salary";
    "SELECT p.id FROM person p, person q WHERE p.id = q.id AND q.salary > 200";
    "SELECT p.id FROM person p, person q WHERE p.name = q.name AND p.id < 3";
  ]

let test_engine_equivalence () =
  let db, _ = big_db () in
  List.iter (check_engines_agree db) engine_queries

let test_engine_dispatch () =
  let db, _ = big_db () in
  let engine sql = Sql.explain_engine db (Sql.parse sql) in
  Alcotest.(check bool) "single table is columnar" true
    (engine "SELECT id FROM person WHERE salary > 10" = `Columnar);
  Alcotest.(check bool) "equi-join is columnar" true
    (engine "SELECT p.id FROM person p, person q WHERE p.id = q.id"
    = `Columnar_join);
  Alcotest.(check bool) "cross join falls back" true
    (engine "SELECT p.id FROM person p, person q WHERE p.id < q.id" = `Rows)

let test_index_declare () =
  let _, t = big_db () in
  Table.declare_index t ~column:"id" Index.Hash;
  Table.declare_index t ~column:"salary" Index.Sorted;
  Alcotest.(check int) "two indexes" 2 (List.length (Table.indexes t));
  Alcotest.(check bool) "kind recorded" true
    (Table.index_kind t "salary" = Some Index.Sorted);
  Table.drop_index t "salary";
  Alcotest.(check int) "one left" 1 (List.length (Table.indexes t));
  (try
     Table.declare_index t ~column:"nosuch" Index.Hash;
     Alcotest.fail "expected Schema_error for a missing column"
   with Schema.Schema_error _ -> ());
  try
    Table.declare_index t ~column:"name" Index.Sorted;
    Alcotest.fail "expected Schema_error for sorted-on-string"
  with Schema.Schema_error _ -> ()

let test_index_serving () =
  let db, t = big_db () in
  Table.declare_index t ~column:"id" Index.Hash;
  Table.declare_index t ~column:"salary" Index.Sorted;
  Table.declare_index t ~column:"name" Index.Hash;
  let engine sql = Sql.explain_engine db (Sql.parse sql) in
  Alcotest.(check bool) "hash serves equality" true
    (engine "SELECT name FROM person WHERE id = 42" = `Columnar_indexed "id");
  Alcotest.(check bool) "hash serves flipped equality" true
    (engine "SELECT name FROM person WHERE 42 = id" = `Columnar_indexed "id");
  Alcotest.(check bool) "sorted serves ranges" true
    (engine "SELECT id FROM person WHERE salary < 30"
    = `Columnar_indexed "salary");
  Alcotest.(check bool) "string hash equality" true
    (engine "SELECT id FROM person WHERE name = 'n3'"
    = `Columnar_indexed "name");
  Alcotest.(check bool) "non-total predicate skips indexes" true
    (engine "SELECT id FROM person WHERE id = 1 AND salary / 1 > 0"
    = `Columnar);
  (* indexed and unindexed answers agree (NULL rows sort below every
     value, so salary < 30 includes them — same as the row engine) *)
  List.iter (check_engines_agree db)
    [
      "SELECT name FROM person WHERE id = 42";
      "SELECT id FROM person WHERE salary < 30";
      "SELECT id FROM person WHERE salary <= 30";
      "SELECT id FROM person WHERE salary > 200";
      "SELECT id FROM person WHERE salary >= 200";
      "SELECT id FROM person WHERE salary = NULL";
      "SELECT id FROM person WHERE name = 'n3'";
      "SELECT id FROM person WHERE name = 'absent'";
      "SELECT id FROM person WHERE id = 42 AND salary > 10";
    ]

let test_index_lazy_rebuild () =
  let db, t = big_db () in
  Table.declare_index t ~column:"id" Index.Hash;
  let count sql = List.length (Sql.run_string db sql).Sql.rows in
  Alcotest.(check int) "before insert" 1
    (count "SELECT id FROM person WHERE id = 5");
  Table.insert t [| V.Int 5; V.String "dup"; V.Int 1 |];
  Alcotest.(check int) "index sees the new row" 2
    (count "SELECT id FROM person WHERE id = 5");
  ignore (Table.delete_where t (fun row -> V.equal row.(0) (V.Int 5)));
  Alcotest.(check int) "index sees the delete" 0
    (count "SELECT id FROM person WHERE id = 5")

let () =
  Alcotest.run "disco_relation"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic tokens" `Quick test_lexer_basic;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "schema",
        [
          Alcotest.test_case "duplicate columns" `Quick test_schema_dup;
          Alcotest.test_case "row conformance" `Quick test_row_conformance;
          Alcotest.test_case "struct roundtrip" `Quick test_struct_roundtrip;
          Alcotest.test_case "delete and version" `Quick test_delete_version;
        ] );
      ( "sql",
        [
          Alcotest.test_case "parse/print roundtrip" `Quick test_sql_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_sql_parse_error;
          Alcotest.test_case "select-where" `Quick test_sql_select;
          Alcotest.test_case "star/order/limit" `Quick test_sql_star_order_limit;
          Alcotest.test_case "join" `Quick test_sql_join;
          Alcotest.test_case "arithmetic" `Quick test_sql_arith;
          Alcotest.test_case "distinct" `Quick test_sql_distinct;
          Alcotest.test_case "errors" `Quick test_sql_errors;
          Alcotest.test_case "null semantics" `Quick test_sql_null_semantics;
          Alcotest.test_case "result to bag" `Quick test_result_to_bag;
          Alcotest.test_case "pp_lit roundtrip" `Quick test_pp_lit_roundtrip;
          Alcotest.test_case "negative literals" `Quick test_negative_literals;
          Alcotest.test_case "order by nulls" `Quick test_order_by_nulls;
          Alcotest.test_case "distinct rows" `Quick test_distinct_rows;
          Alcotest.test_case "div/mod by zero" `Quick test_div_mod_zero;
        ] );
      ( "table",
        [
          Alcotest.test_case "insert_all version" `Quick test_insert_all_version;
        ] );
      ( "columnar",
        [
          Alcotest.test_case "engine equivalence" `Quick test_engine_equivalence;
          Alcotest.test_case "engine dispatch" `Quick test_engine_dispatch;
          Alcotest.test_case "index declare" `Quick test_index_declare;
          Alcotest.test_case "index serving" `Quick test_index_serving;
          Alcotest.test_case "index lazy rebuild" `Quick test_index_lazy_rebuild;
        ] );
    ]
