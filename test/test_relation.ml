(* Tests for the relational substrate: schemas, tables, the SQL dialect
   (lexing, parsing, printing, execution). *)

module V = Disco_value.Value
module Schema = Disco_relation.Schema
module Table = Disco_relation.Table
module Database = Disco_relation.Database
module Sql = Disco_relation.Sql
module Lexer = Disco_lex.Lexer

let check_value = Alcotest.testable V.pp V.equal

let person_schema =
  Schema.make
    [ ("id", Schema.TInt); ("name", Schema.TString); ("salary", Schema.TInt) ]

let sample_db () =
  let db = Database.create ~name:"db" in
  let t = Database.create_table db ~name:"person" person_schema in
  Table.insert t [| V.Int 1; V.String "Mary"; V.Int 200 |];
  Table.insert t [| V.Int 2; V.String "Sam"; V.Int 50 |];
  Table.insert t [| V.Int 3; V.String "Ana"; V.Int 5 |];
  db

(* -- lexer -- *)

let test_lexer_basic () =
  let toks =
    Lexer.tokenize ~puncts:[ "<="; "<"; "("; ")"; "." ]
      "select x.name (42) 3.5 'it''?' <= -- comment\n done"
  in
  let kinds = List.map fst toks in
  Alcotest.(check int) "token count" 12 (List.length kinds);
  (match kinds with
  | Lexer.Ident "select"
    :: Lexer.Ident "x"
    :: Lexer.Punct "."
    :: Lexer.Ident "name" :: _ ->
      ()
  | _ -> Alcotest.fail "unexpected token sequence");
  match List.rev kinds with
  | Lexer.Ident "done" :: Lexer.Punct "<=" :: Lexer.Str "?" :: Lexer.Str "it" :: _ -> ()
  | _ -> Alcotest.fail "unexpected tail"

let test_lexer_errors () =
  let tk s = ignore (Lexer.tokenize ~puncts:[ "(" ] s) in
  Alcotest.check_raises "bad char" (Lexer.Error ("unexpected character '@'", 0))
    (fun () -> tk "@");
  Alcotest.check_raises "unterminated string"
    (Lexer.Error ("unterminated string literal", 0)) (fun () -> tk "\"abc")

(* -- schema / table -- *)

let test_schema_dup () =
  Alcotest.check_raises "dup column" (Schema.Schema_error "duplicate column a")
    (fun () -> ignore (Schema.make [ ("a", Schema.TInt); ("a", Schema.TInt) ]))

let test_row_conformance () =
  let t = Table.create ~name:"t" person_schema in
  Alcotest.check_raises "arity"
    (Schema.Schema_error "row arity 1 does not match schema arity 3")
    (fun () -> Table.insert t [| V.Int 1 |]);
  (try
     Table.insert t [| V.String "x"; V.String "y"; V.Int 1 |];
     Alcotest.fail "type error expected"
   with Schema.Schema_error _ -> ());
  Table.insert t [| V.Null; V.String "ok"; V.Null |];
  Alcotest.(check int) "null conforms" 1 (Table.cardinality t)

let test_struct_roundtrip () =
  let row = [| V.Int 1; V.String "Mary"; V.Int 200 |] in
  let s = Schema.row_to_struct person_schema row in
  Alcotest.check check_value "roundtrip"
    (V.strct [ ("id", V.Int 1); ("name", V.String "Mary"); ("salary", V.Int 200) ])
    s;
  let row' = Schema.struct_to_row person_schema s in
  Alcotest.(check bool) "row equal" true (row = row')

let test_delete_version () =
  let db = sample_db () in
  let t = Database.get_table db "person" in
  let v0 = Table.version t in
  let removed =
    Table.delete_where t (fun row -> V.equal row.(2) (V.Int 50))
  in
  Alcotest.(check int) "one removed" 1 removed;
  Alcotest.(check int) "two left" 2 (Table.cardinality t);
  Alcotest.(check bool) "version bumped" true (Table.version t > v0)

(* -- SQL parse / print -- *)

let test_sql_roundtrip () =
  let inputs =
    [
      "SELECT name FROM person";
      "SELECT DISTINCT name, salary FROM person WHERE salary > 10";
      "SELECT p.name FROM person p, person q WHERE p.id = q.id AND q.salary <= 100";
      "SELECT * FROM person ORDER BY name DESC LIMIT 2";
      "SELECT (salary + 1) * 2 AS s2 FROM person WHERE NOT (salary = 5 OR salary = 6)";
      "SELECT name FROM person WHERE salary + 2 * id > 50";
    ]
  in
  List.iter
    (fun sql ->
      let q = Sql.parse sql in
      let printed = Sql.to_string q in
      let q2 = Sql.parse printed in
      Alcotest.(check string)
        (Fmt.str "stable print of %s" sql)
        printed (Sql.to_string q2))
    inputs

let test_sql_parse_error () =
  (try
     ignore (Sql.parse "SELECT FROM person");
     Alcotest.fail "expected parse error"
   with Lexer.Error _ -> ());
  try
    ignore (Sql.parse "SELECT a FROM person WHERE");
    Alcotest.fail "expected parse error"
  with Lexer.Error _ -> ()

(* -- SQL execution -- *)

let names result =
  List.map (fun row -> row.(0)) result.Sql.rows

let test_sql_select () =
  let db = sample_db () in
  let r = Sql.run_string db "SELECT name FROM person WHERE salary > 10" in
  Alcotest.(check (list string))
    "columns" [ "name" ] r.Sql.columns;
  Alcotest.check check_value "rows"
    (V.bag [ V.String "Mary"; V.String "Sam" ])
    (V.bag (names r))

let test_sql_star_order_limit () =
  let db = sample_db () in
  let r = Sql.run_string db "SELECT * FROM person ORDER BY salary DESC LIMIT 2" in
  Alcotest.(check (list string)) "columns" [ "id"; "name"; "salary" ] r.Sql.columns;
  Alcotest.(check int) "limit" 2 (List.length r.Sql.rows);
  match r.Sql.rows with
  | [ a; b ] ->
      Alcotest.check check_value "first" (V.Int 200) a.(2);
      Alcotest.check check_value "second" (V.Int 50) b.(2)
  | _ -> Alcotest.fail "expected two rows"

let test_sql_join () =
  let db = sample_db () in
  let r =
    Sql.run_string db
      "SELECT p.name, q.name FROM person p, person q WHERE p.salary < q.salary"
  in
  Alcotest.(check int) "pairs" 3 (List.length r.Sql.rows)

let test_sql_arith () =
  let db = sample_db () in
  let r = Sql.run_string db "SELECT salary * 2 + 1 AS d FROM person WHERE id = 1" in
  Alcotest.check check_value "arith" (V.Int 401) (List.hd r.Sql.rows).(0)

let test_sql_distinct () =
  let db = sample_db () in
  let r = Sql.run_string db "SELECT DISTINCT 1 AS one FROM person" in
  Alcotest.(check int) "distinct" 1 (List.length r.Sql.rows)

let test_sql_errors () =
  let db = sample_db () in
  let expect_err sql =
    try
      ignore (Sql.run_string db sql);
      Alcotest.fail ("expected Sql_error for " ^ sql)
    with Sql.Sql_error _ -> ()
  in
  expect_err "SELECT x FROM person";
  expect_err "SELECT name FROM nosuch";
  expect_err "SELECT name FROM person WHERE name > 3";
  expect_err "SELECT p.name FROM person p, person p";
  expect_err "SELECT salary / 0 FROM person"

let test_sql_null_semantics () =
  let db = Database.create ~name:"db" in
  let t = Database.create_table db ~name:"t" person_schema in
  Table.insert t [| V.Int 1; V.Null; V.Null |];
  Table.insert t [| V.Int 2; V.String "Bo"; V.Int 7 |];
  let r = Sql.run_string db "SELECT id FROM t WHERE salary > 0" in
  (* NULL is below every value in the collapsed 3VL, so only row 2 passes. *)
  Alcotest.check check_value "null filtered" (V.bag [ V.Int 2 ]) (V.bag (names r));
  let r2 = Sql.run_string db "SELECT id FROM t WHERE name = NULL" in
  Alcotest.check check_value "null = null" (V.bag [ V.Int 1 ]) (V.bag (names r2))

let test_result_to_bag () =
  let db = sample_db () in
  let r = Sql.run_string db "SELECT name FROM person WHERE id = 2" in
  Alcotest.check check_value "bag of structs"
    (V.bag [ V.strct [ ("name", V.String "Sam") ] ])
    (Sql.result_to_bag r)

let () =
  Alcotest.run "disco_relation"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic tokens" `Quick test_lexer_basic;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "schema",
        [
          Alcotest.test_case "duplicate columns" `Quick test_schema_dup;
          Alcotest.test_case "row conformance" `Quick test_row_conformance;
          Alcotest.test_case "struct roundtrip" `Quick test_struct_roundtrip;
          Alcotest.test_case "delete and version" `Quick test_delete_version;
        ] );
      ( "sql",
        [
          Alcotest.test_case "parse/print roundtrip" `Quick test_sql_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_sql_parse_error;
          Alcotest.test_case "select-where" `Quick test_sql_select;
          Alcotest.test_case "star/order/limit" `Quick test_sql_star_order_limit;
          Alcotest.test_case "join" `Quick test_sql_join;
          Alcotest.test_case "arithmetic" `Quick test_sql_arith;
          Alcotest.test_case "distinct" `Quick test_sql_distinct;
          Alcotest.test_case "errors" `Quick test_sql_errors;
          Alcotest.test_case "null semantics" `Quick test_sql_null_semantics;
          Alcotest.test_case "result to bag" `Quick test_result_to_bag;
        ] );
    ]
