(* Tests for lib/obs and its mediator wiring: the trace builder, the
   metrics registry, a golden pretty/JSON trace of a two-source query
   with one source blocked under Cached_fallback, JSON validity through
   a minimal parser, the zero-overhead guarantee when no sink is
   attached, answer round-trips through the unified [answer_oql], and
   the deprecated [Mediator.Legacy] aliases. *)

module V = Disco_value.Value
module Source = Disco_source.Source
module Schedule = Disco_source.Schedule
module Clock = Disco_source.Clock
module Datagen = Disco_source.Datagen
module Database = Disco_relation.Database
module Table = Disco_relation.Table
module Answer_cache = Disco_cache.Answer_cache
module Mediator = Disco_core.Mediator
module Runtime = Disco_runtime.Runtime
module Trace = Disco_obs.Trace
module Metrics = Disco_obs.Metrics

let check_value = Alcotest.testable V.pp V.equal

(* -- the trace builder -- *)

let test_trace_builder () =
  let b = Trace.make ~query:"q" ~now:10.0 in
  Trace.meta b "mode" "test";
  Trace.enter b ~now:10.0 "parse";
  Trace.leave b ~now:11.0;
  Trace.enter b ~now:11.0 "execute";
  Trace.exec b
    {
      Trace.x_repo = "r0";
      x_wrapper = "W";
      x_expr = "get(e)";
      x_origin = Trace.Source;
      x_start_ms = 11.0;
      x_elapsed_ms = 2.0;
      x_tuples = 3;
      x_rows = 3;
      x_predicted_ms = None;
      x_predicted_rows = None;
      x_batch_id = None;
      x_batch_size = 1;
    };
  (* leaving more often than entering must not underflow the root *)
  Trace.leave b ~now:14.0;
  Trace.leave b ~now:14.0;
  Trace.leave b ~now:14.0;
  let tr = Trace.finish b ~now:15.0 in
  Alcotest.(check string) "query kept" "q" tr.Trace.t_query;
  let root = tr.Trace.t_root in
  Alcotest.(check string) "root name" "query" root.Trace.s_name;
  Alcotest.(check (float 1e-9)) "root start" 10.0 root.Trace.s_start_ms;
  Alcotest.(check (float 1e-9)) "root elapsed" 5.0 root.Trace.s_elapsed_ms;
  Alcotest.(check (list (pair string string)))
    "root meta"
    [ ("mode", "test") ]
    root.Trace.s_meta;
  (match root.Trace.s_children with
  | [ p; e ] ->
      Alcotest.(check string) "first child" "parse" p.Trace.s_name;
      Alcotest.(check (float 1e-9)) "parse elapsed" 1.0 p.Trace.s_elapsed_ms;
      Alcotest.(check string) "second child" "execute" e.Trace.s_name;
      Alcotest.(check (float 1e-9)) "execute elapsed" 3.0 e.Trace.s_elapsed_ms;
      (match e.Trace.s_children with
      | [ x ] -> (
          match x.Trace.s_exec with
          | Some ex ->
              Alcotest.(check string) "exec repo" "r0" ex.Trace.x_repo;
              Alcotest.(check string) "origin label" "source"
                (Trace.origin_label ex.Trace.x_origin)
          | None -> Alcotest.fail "expected exec leaf")
      | _ -> Alcotest.fail "expected one exec child")
  | _ -> Alcotest.fail "expected two children")

let test_origin_labels () =
  List.iter
    (fun (o, l) -> Alcotest.(check string) l l (Trace.origin_label o))
    [
      (Trace.Source, "source");
      (Trace.Cache, "cache");
      (Trace.Stale 5.0, "stale");
      (Trace.Failover "r9", "failover");
      (Trace.Blocked, "blocked");
    ]

(* -- the metrics registry -- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  Alcotest.(check int) "absent counter reads 0" 0 (Metrics.find_counter m "c");
  Metrics.incr m "c";
  Metrics.incr ~by:4 m "c";
  Alcotest.(check int) "counter" 5 (Metrics.find_counter m "c");
  Metrics.observe m "h" 2.0;
  Metrics.observe m "h" 6.0;
  (match Metrics.find_histogram m "h" with
  | Some h ->
      Alcotest.(check int) "count" 2 h.Metrics.h_count;
      Alcotest.(check (float 1e-9)) "sum" 8.0 h.Metrics.h_sum;
      Alcotest.(check (float 1e-9)) "min" 2.0 h.Metrics.h_min;
      Alcotest.(check (float 1e-9)) "max" 6.0 h.Metrics.h_max
  | None -> Alcotest.fail "histogram missing");
  (* names are a namespace: a histogram cannot be incremented *)
  (try
     Metrics.incr m "h";
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  Alcotest.(check (list string))
    "dump sorted" [ "c"; "h" ]
    (List.map fst (Metrics.dump m));
  Alcotest.(check string)
    "json" {|{"c":5,"h":{"count":2,"sum":8,"min":2,"max":6}}|}
    (Metrics.to_json m);
  Metrics.reset m;
  Alcotest.(check int) "reset" 0 (List.length (Metrics.dump m))

(* -- a deterministic two-source federation -- *)

let addr host = Source.address ~host ~db_name:"db" ~ip:"0.0.0.0" ()
let person_row id name salary = [| V.Int id; V.String name; V.Int salary |]

let source ~id ~host rows =
  let db = Database.create ~name:"db" in
  let tbl =
    Datagen.table_of db ~name:("person" ^ string_of_int id)
      Datagen.person_schema rows
  in
  ( Source.create ~id:(Fmt.str "src%d" id) ~address:(addr host)
      ~latency:{ Source.base_ms = 5.0; per_row_ms = 0.0; jitter = 0.0 }
      (Source.Relational db),
    tbl )

let federation ?cache ?trace_sink ?metrics () =
  let m =
    Mediator.create
      ~config:
        {
          Mediator.Config.default with
          cache;
          trace_sink;
          metrics =
            Option.value metrics ~default:Mediator.Config.default.Mediator.Config.metrics;
        }
      ~name:"obs" ()
  in
  let s0, _t0 = source ~id:0 ~host:"rodin" [ person_row 1 "Mary" 200 ] in
  let s1, t1 = source ~id:1 ~host:"umiacs" [ person_row 2 "Sam" 50 ] in
  Mediator.register_source m ~name:"r0" s0;
  Mediator.register_source m ~name:"r1" s1;
  Mediator.load_odl m
    {|
    r0 := Repository(host="rodin", name="db", address="0");
    r1 := Repository(host="umiacs", name="db", address="0");
    w0 := WrapperPostgres();
    interface Person (extent person) {
      attribute String name;
      attribute Short salary; }
    extent person0 of Person wrapper w0 repository r0;
    extent person1 of Person wrapper w0 repository r1;
  |};
  (m, s0, s1, t1)

let q = "select x.name from x in person where x.salary > 10"

(* The golden scenario: warm the answer cache with both sources up, then
   take r1 down and query under Cached_fallback.  r0's fragment is
   served fresh from the cache (origin [cache]), r1's from the stale
   entry (origin [stale]); everything runs on the virtual clock so the
   trace is byte-for-byte deterministic. *)
let golden_trace () =
  let traces = ref [] in
  let sink tr = traces := tr :: !traces in
  let m, _, s1, t1 =
    federation ~cache:(Answer_cache.create ()) ~trace_sink:sink
      ~metrics:(Metrics.create ()) ()
  in
  (match (Mediator.query m q).Mediator.answer with
  | Mediator.Complete _ -> ()
  | _ -> Alcotest.fail "warm-up should complete");
  (* r1's data moves on AND the source goes down: its cached fragment is
     version-stale, servable only under Cached_fallback *)
  Table.insert t1 (person_row 3 "Zoe" 300);
  Source.set_schedule s1 Schedule.always_down;
  let o =
    Mediator.query
      ~opts:
        {
          Mediator.Query_opts.default with
          semantics = Mediator.Cached_fallback { max_stale_ms = 60_000.0 };
        }
      m q
  in
  (match o.Mediator.answer with
  | Mediator.Complete v ->
      Alcotest.check check_value "stale fragment bridges the outage"
        (V.bag [ V.String "Mary"; V.String "Sam" ])
        v
  | _ -> Alcotest.fail "expected complete under Cached_fallback");
  match !traces with
  | [ second; _first ] -> second
  | l -> Alcotest.fail (Fmt.str "expected two traces, got %d" (List.length l))

let golden_pretty =
  String.concat "\n"
    [
      "trace \"select x.name from x in person where x.salary > 10\"";
      "`- query @5.0 +0.0ms {answer=complete; execs=2; tuples_shipped=0}";
      "   |- parse @5.0 +0.0ms";
      "   |- expand @5.0 +0.0ms";
      "   |- compile @5.0 +0.0ms";
      "   |- optimize @5.0 +0.0ms {plan_cache=hit}";
      "   `- execute @5.0 +0.0ms";
      "      |- exec r0 [cache] @5.0 +0.0ms, 0 tuples, 1 rows (predicted \
       5.0ms / 1 rows) :: WrapperSql <- map(name, select(salary > 10, \
       get(person0)))";
      "      `- exec r1 [stale(age 0.0ms)] @5.0 +0.0ms, 0 tuples, 1 rows \
       (predicted 5.0ms / 1 rows) :: WrapperSql <- map(name, select(salary > \
       10, get(person1)))";
      "";
    ]

let test_golden_pretty () =
  let tr = golden_trace () in
  Alcotest.(check string) "pretty span tree" golden_pretty
    (Fmt.str "%a" Trace.pp tr)

let golden_json =
  {|{"query":"select x.name from x in person where x.salary > 10","root":{"name":"query","start_ms":5.0,"elapsed_ms":0.0,"meta":{"answer":"complete","execs":"2","tuples_shipped":"0"},"children":[{"name":"parse","start_ms":5.0,"elapsed_ms":0.0},{"name":"expand","start_ms":5.0,"elapsed_ms":0.0},{"name":"compile","start_ms":5.0,"elapsed_ms":0.0},{"name":"optimize","start_ms":5.0,"elapsed_ms":0.0,"meta":{"plan_cache":"hit"}},{"name":"execute","start_ms":5.0,"elapsed_ms":0.0,"children":[{"name":"exec","start_ms":5.0,"elapsed_ms":0.0,"exec":{"repo":"r0","wrapper":"WrapperSql","expr":"map(name, select(salary > 10, get(person0)))","origin":"cache","start_ms":5.0,"elapsed_ms":0.0,"tuples":0,"rows":1,"predicted_ms":5.0,"predicted_rows":1.0}},{"name":"exec","start_ms":5.0,"elapsed_ms":0.0,"exec":{"repo":"r1","wrapper":"WrapperSql","expr":"map(name, select(salary > 10, get(person1)))","origin":"stale","stale_age_ms":0.0,"start_ms":5.0,"elapsed_ms":0.0,"tuples":0,"rows":1,"predicted_ms":5.0,"predicted_rows":1.0}}]}]}}|}

let test_golden_json () =
  let tr = golden_trace () in
  Alcotest.(check string) "json export" golden_json (Trace.to_json tr)

(* -- a minimal JSON parser, to check the export is valid JSON -- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Fmt.str "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance () else fail (Fmt.str "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then (
      pos := !pos + String.length word;
      v)
    else fail ("expected " ^ word)
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
          | Some 'b' -> advance (); Buffer.add_char b '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char b '\012'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad unicode escape";
              pos := !pos + 4;
              Buffer.add_char b '?';
              go ()
          | Some c -> advance (); Buffer.add_char b c; go ()
          | None -> fail "unterminated escape")
      | Some c -> advance (); Buffer.add_char b c; go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false
    do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elements []
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (number ())
    | None -> fail "unexpected end"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let mem k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let test_json_consumable () =
  (* the exported JSON parses, and the structure the CLI and bench
     consume is reachable: root name, phase children, exec origins *)
  let tr = golden_trace () in
  let j = parse_json (Trace.to_json tr) in
  (match mem "query" j with
  | Some (Str s) -> Alcotest.(check string) "query field" q s
  | _ -> Alcotest.fail "no query field");
  let root = match mem "root" j with Some r -> r | None -> Alcotest.fail "no root" in
  (match mem "name" root with
  | Some (Str "query") -> ()
  | _ -> Alcotest.fail "root not named query");
  let children =
    match mem "children" root with
    | Some (Arr l) -> l
    | _ -> Alcotest.fail "root has no children"
  in
  let names =
    List.filter_map
      (fun c -> match mem "name" c with Some (Str s) -> Some s | _ -> None)
      children
  in
  Alcotest.(check (list string))
    "phases in order"
    [ "parse"; "expand"; "compile"; "optimize"; "execute" ]
    names;
  let execute = List.nth children 4 in
  let origins =
    match mem "children" execute with
    | Some (Arr execs) ->
        List.filter_map
          (fun e ->
            match mem "exec" e with
            | Some ex -> (
                match mem "origin" ex with Some (Str o) -> Some o | _ -> None)
            | None -> None)
          execs
    | _ -> Alcotest.fail "execute has no children"
  in
  Alcotest.(check (list string)) "exec origins" [ "cache"; "stale" ] origins;
  (* the metrics export is valid JSON too *)
  let reg = Metrics.create () in
  Metrics.incr reg "a.b";
  Metrics.observe reg "c" 1.5;
  match parse_json (Metrics.to_json reg) with
  | Obj [ ("a.b", Num 1.0); ("c", Obj _) ] -> ()
  | _ -> Alcotest.fail "unexpected metrics json shape"

(* -- tracing off adds no observable overhead -- *)

let test_no_sink_equivalence () =
  (* the same scenario with and without a sink: answers, stats and the
     virtual clock must be identical *)
  let run ~traced =
    let count = ref 0 in
    let trace_sink = if traced then Some (fun _ -> incr count) else None in
    let m, _, s1, t1 =
      federation ~cache:(Answer_cache.create ()) ?trace_sink ()
    in
    let o1 = Mediator.query m q in
    Table.insert t1 (person_row 3 "Zoe" 300);
    Source.set_schedule s1 Schedule.always_down;
    let o2 =
      Mediator.query
        ~opts:
          {
            Mediator.Query_opts.default with
            timeout_ms = 100.0;
            semantics = Mediator.Cached_fallback { max_stale_ms = 60_000.0 };
          }
        m q
    in
    (o1, o2, Clock.now (Mediator.clock m), !count)
  in
  let o1t, o2t, clock_t, traces = run ~traced:true in
  let o1u, o2u, clock_u, _ = run ~traced:false in
  Alcotest.(check int) "sink saw both queries" 2 traces;
  let check_same label a b =
    (match (a.Mediator.answer, b.Mediator.answer) with
    | Mediator.Complete va, Mediator.Complete vb ->
        Alcotest.check check_value (label ^ " answers equal") va vb
    | _ -> Alcotest.fail (label ^ ": expected two complete answers"));
    let sa = a.Mediator.stats and sb = b.Mediator.stats in
    Alcotest.(check int)
      (label ^ " execs")
      sa.Runtime.execs_issued sb.Runtime.execs_issued;
    Alcotest.(check int)
      (label ^ " tuples")
      sa.Runtime.tuples_shipped sb.Runtime.tuples_shipped;
    Alcotest.(check int)
      (label ^ " cache hits")
      sa.Runtime.cache_hits sb.Runtime.cache_hits;
    Alcotest.(check (float 1e-9))
      (label ^ " elapsed")
      sa.Runtime.elapsed_ms sb.Runtime.elapsed_ms
  in
  check_same "cold" o1t o1u;
  check_same "fallback" o2t o2u;
  Alcotest.(check (float 1e-9)) "virtual clocks agree" clock_t clock_u

(* -- answer round-trips through the unified answer_oql -- *)

let test_answer_roundtrip () =
  let m, _, s1, _ = federation () in
  Source.set_schedule s1 (Schedule.down_during [ (0.0, 2000.0) ]);
  let o =
    Mediator.query
      ~opts:{ Mediator.Query_opts.default with timeout_ms = 100.0 }
      m q
  in
  (match o.Mediator.answer with
  | Mediator.Partial p as answer ->
      let text = Mediator.answer_oql answer in
      (* the mediator and runtime renderers are the same function *)
      Alcotest.(check string)
        "one renderer" text
        (Runtime.answer_oql (Runtime.Partial p));
      (* the text is parseable OQL that mentions the blocked extent *)
      ignore (Disco_oql.Parser.parse text);
      let contains sub =
        let k = String.length sub and len = String.length text in
        let rec go i = i + k <= len && (String.sub text i k = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "residual mentions person1" true (contains "person1")
  | _ -> Alcotest.fail "expected partial");
  (* after recovery, resubmitting the partial gives the full answer *)
  Clock.advance (Mediator.clock m) 3000.0;
  (match (Mediator.resubmit m o.Mediator.answer).Mediator.answer with
  | Mediator.Complete v ->
      Alcotest.check check_value "resubmission completes"
        (V.bag [ V.String "Mary"; V.String "Sam" ])
        v
  | _ -> Alcotest.fail "expected complete after recovery");
  (* complete answers render as a collection literal that parses too *)
  let m2, _, _, _ = federation () in
  match (Mediator.query m2 q).Mediator.answer with
  | Mediator.Complete _ as answer ->
      ignore (Disco_oql.Parser.parse (Mediator.answer_oql answer))
  | _ -> Alcotest.fail "expected complete"

(* -- the Config/Query_opts records cover what the retired Legacy
   optional-arg aliases used to (the Legacy module is gone) -- *)

let test_config_api () =
  let m =
    Mediator.create
      ~config:{ Mediator.Config.default with plan_cache_capacity = 4 }
      ~name:"cfg" ()
  in
  let s0, _ = source ~id:0 ~host:"rodin" [ person_row 1 "Mary" 200 ] in
  Mediator.register_source m ~name:"r0" s0;
  Mediator.load_odl m
    {|
      r0 := Repository(host="rodin", name="db", address="0");
      w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute String name;
        attribute Short salary; }
      extent person0 of Person wrapper w0 repository r0;
    |};
  (match
     (Mediator.query
        ~opts:{ Mediator.Query_opts.default with timeout_ms = 500.0 }
        m "select x.name from x in person")
       .Mediator.answer
   with
  | Mediator.Complete v ->
      Alcotest.check check_value "config-built mediator answers"
        (V.bag [ V.String "Mary" ])
        v
  | _ -> Alcotest.fail "expected complete");
  Alcotest.(check int)
    "plan cache capacity honored" 4
    (Mediator.plan_cache_stats m).Mediator.p_capacity

let () =
  Alcotest.run "disco_obs"
    [
      ( "trace",
        [
          Alcotest.test_case "builder nesting" `Quick test_trace_builder;
          Alcotest.test_case "origin labels" `Quick test_origin_labels;
          Alcotest.test_case "golden pretty tree" `Quick test_golden_pretty;
          Alcotest.test_case "golden json" `Quick test_golden_json;
          Alcotest.test_case "json is consumable" `Quick test_json_consumable;
        ] );
      ( "metrics",
        [ Alcotest.test_case "registry" `Quick test_metrics_registry ] );
      ( "api",
        [
          Alcotest.test_case "no-sink equivalence" `Quick
            test_no_sink_equivalence;
          Alcotest.test_case "answer round-trip" `Quick test_answer_roundtrip;
          Alcotest.test_case "config record api" `Quick test_config_api;
        ] );
    ]
