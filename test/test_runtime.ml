(* Tests for the cost model, physical plans, optimizer, and the runtime's
   parallel execution and partial evaluation. *)

module V = Disco_value.Value
module Source = Disco_source.Source
module Schedule = Disco_source.Schedule
module Clock = Disco_source.Clock
module Datagen = Disco_source.Datagen
module Typemap = Disco_odl.Typemap
module Expr = Disco_algebra.Expr
module Rules = Disco_algebra.Rules
module Cost_model = Disco_cost.Cost_model
module Plan = Disco_physical.Plan
module Optimizer = Disco_optimizer.Optimizer
module Runtime = Disco_runtime.Runtime
module Scheduler = Disco_source.Scheduler
module Wrapper = Disco_wrapper.Wrapper
module Eval = Disco_oql.Eval
module Ast = Disco_oql.Ast

let check_value = Alcotest.testable V.pp V.equal

(* naive substring test for answer-text assertions *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let get0 = Expr.Get "person0"
let gt p = Expr.Cmp (Expr.Gt, Expr.Attr [ "salary" ], Expr.Const (V.Int p))
let bind v e = Expr.Map (e, Expr.Hstruct [ (v, Expr.Attr []) ])

(* -- cost model -- *)

let test_cost_default () =
  let m = Cost_model.create () in
  let est = Cost_model.estimate m ~repo:"r0" get0 in
  Alcotest.(check (float 0.0)) "default time 0" 0.0 est.Cost_model.est_time_ms;
  Alcotest.(check (float 0.0)) "default rows 1" 1.0 est.Cost_model.est_rows;
  Alcotest.(check bool) "basis default" true (est.Cost_model.est_basis = Cost_model.Default)

let test_cost_exact_smoothing () =
  let m = Cost_model.create ~smoothing:0.5 () in
  Cost_model.record m ~repo:"r0" ~expr:get0 ~time_ms:100.0 ~rows:10;
  Cost_model.record m ~repo:"r0" ~expr:get0 ~time_ms:200.0 ~rows:20;
  let est = Cost_model.estimate m ~repo:"r0" get0 in
  (match est.Cost_model.est_basis with
  | Cost_model.Exact 2 -> ()
  | _ -> Alcotest.fail "expected exact basis with 2 records");
  (* most recent (200) weighted 0.5, older (100) 0.25, renormalized:
     (0.5*200 + 0.25*100)/0.75 = 166.67 *)
  Alcotest.(check (float 0.1)) "smoothed time" 166.666 est.Cost_model.est_time_ms;
  (* per-repo isolation *)
  Alcotest.(check bool) "other repo default" true
    ((Cost_model.estimate m ~repo:"r1" get0).Cost_model.est_basis = Cost_model.Default)

let test_cost_close_match () =
  let m = Cost_model.create () in
  let sel c = Expr.Select (get0, gt c) in
  Cost_model.record m ~repo:"r0" ~expr:(sel 10) ~time_ms:50.0 ~rows:5;
  (* same skeleton, different constant *)
  let est = Cost_model.estimate m ~repo:"r0" (sel 99) in
  (match est.Cost_model.est_basis with
  | Cost_model.Close 1 -> ()
  | _ -> Alcotest.fail "expected close basis");
  Alcotest.(check (float 0.001)) "close time" 50.0 est.Cost_model.est_time_ms;
  (* different comparison operator: no close match *)
  let lt = Expr.Select (get0, Expr.Cmp (Expr.Lt, Expr.Attr [ "salary" ], Expr.Const (V.Int 10))) in
  Alcotest.(check bool) "operator mismatch is default" true
    ((Cost_model.estimate m ~repo:"r0" lt).Cost_model.est_basis = Cost_model.Default)

let test_cost_history_bound () =
  let m = Cost_model.create ~history:3 () in
  for i = 1 to 10 do
    Cost_model.record m ~repo:"r0" ~expr:get0 ~time_ms:(float_of_int i) ~rows:i
  done;
  match (Cost_model.estimate m ~repo:"r0" get0).Cost_model.est_basis with
  | Cost_model.Exact 3 -> ()
  | _ -> Alcotest.fail "history not bounded"

let test_cost_batch_calibration () =
  let m = Cost_model.create () in
  Alcotest.(check bool) "no history: no estimate" true
    (Cost_model.estimate_batch m ~repo:"r0" ~size:4 = None);
  (* perfectly linear samples: time = 10 + 2 * size *)
  Cost_model.record_batch m ~repo:"r0" ~size:1 ~time_ms:12.0;
  Cost_model.record_batch m ~repo:"r0" ~size:2 ~time_ms:14.0;
  Cost_model.record_batch m ~repo:"r0" ~size:4 ~time_ms:18.0;
  (match Cost_model.estimate_batch m ~repo:"r0" ~size:8 with
  | Some t -> Alcotest.(check (float 0.01)) "extrapolates the fit" 26.0 t
  | None -> Alcotest.fail "expected a batch estimate");
  Alcotest.(check bool) "other repo has no calibration" true
    (Cost_model.estimate_batch m ~repo:"r1" ~size:2 = None)

let test_cost_indexed_basis () =
  let m = Cost_model.create () in
  let eq_sal = Expr.Select (get0, Expr.Cmp (Expr.Eq, Expr.Attr [ "salary" ], Expr.Const (V.Int 10))) in
  let lt_sal = Expr.Select (get0, gt 10) in
  let eq_id = Expr.Select (get0, Expr.Cmp (Expr.Eq, Expr.Attr [ "id" ], Expr.Const (V.Int 3))) in
  (* without a declaration everything is Default: answers/stats unchanged *)
  Alcotest.(check bool) "no declaration: default" true
    ((Cost_model.estimate m ~repo:"r0" eq_sal).Cost_model.est_basis
    = Cost_model.Default);
  Cost_model.declare_index m ~repo:"r0" ~attr:"salary" ~kind:`Sorted;
  Cost_model.declare_index m ~repo:"r0" ~attr:"id" ~kind:`Hash;
  let basis e = (Cost_model.estimate m ~repo:"r0" e).Cost_model.est_basis in
  Alcotest.(check bool) "sorted serves equality" true (basis eq_sal = Cost_model.Indexed);
  Alcotest.(check bool) "sorted serves ranges" true (basis lt_sal = Cost_model.Indexed);
  Alcotest.(check bool) "hash serves equality" true (basis eq_id = Cost_model.Indexed);
  let lt_id = Expr.Select (get0, Expr.Cmp (Expr.Lt, Expr.Attr [ "id" ], Expr.Const (V.Int 3))) in
  Alcotest.(check bool) "hash does not serve ranges" true (basis lt_id = Cost_model.Default);
  (* observations still outrank the structural hint *)
  Cost_model.record m ~repo:"r0" ~expr:eq_sal ~time_ms:7.0 ~rows:2;
  Alcotest.(check bool) "exact beats indexed" true (basis eq_sal = Cost_model.Exact 1);
  (* per-repo isolation, and clear keeps declarations (DDL, not history) *)
  Alcotest.(check bool) "other repo default" true
    ((Cost_model.estimate m ~repo:"r1" eq_sal).Cost_model.est_basis
    = Cost_model.Default);
  Cost_model.clear m;
  Alcotest.(check bool) "clear keeps declarations" true (basis eq_sal = Cost_model.Indexed);
  Alcotest.(check bool) "advertised attrs" true
    (Cost_model.indexed_attrs m ~repo:"r0" = [ ("id", `Hash); ("salary", `Sorted) ])

(* -- physical plans -- *)

let test_implement_shapes () =
  let located = Expr.Submit ("r0", Expr.Select (get0, gt 10)) in
  (match Plan.implement located with
  | Plan.Exec ("r0", Expr.Select _) -> ()
  | p -> Alcotest.fail (Plan.to_string p));
  let join =
    Expr.Join (bind "x" get0, bind "y" (Expr.Get "person1"), [ ([ "x"; "id" ], [ "y"; "id" ]) ])
  in
  (match Plan.implement (Rules.normalize join) with
  | exception Plan.Physical_error _ -> () (* unlocated gets *)
  | _ -> Alcotest.fail "expected error on unlocated get");
  let located_join =
    Expr.Join
      ( bind "x" (Expr.Submit ("r0", get0)),
        bind "y" (Expr.Submit ("r1", Expr.Get "person1")),
        [ ([ "x"; "id" ], [ "y"; "id" ]) ] )
  in
  match Plan.implement located_join with
  | Plan.Hash_join _ -> ()
  | p -> Alcotest.fail ("expected hash join: " ^ Plan.to_string p)

let test_plan_logical_roundtrip () =
  let located =
    Expr.Union
      [
        Expr.Map (Expr.Submit ("r0", Expr.Select (get0, gt 10)), Expr.Hscalar (Expr.Attr [ "name" ]));
        Expr.Data (V.bag [ V.String "Sam" ]);
      ]
  in
  let plan = Plan.implement located in
  Alcotest.(check bool) "to_logical inverts implement" true
    (Expr.equal (Plan.to_logical plan) located)

let test_hash_vs_nested_loop () =
  (* both join algorithms agree with the logical semantics *)
  let rows_l =
    V.bag (List.map (fun i -> V.strct [ ("x", V.strct [ ("id", V.Int (i mod 5)); ("a", V.Int i) ]) ]) (List.init 20 Fun.id))
  in
  let rows_r =
    V.bag (List.map (fun i -> V.strct [ ("y", V.strct [ ("id", V.Int (i mod 5)); ("b", V.Int i) ]) ]) (List.init 15 Fun.id))
  in
  let pairs = [ ([ "x"; "id" ], [ "y"; "id" ]) ] in
  let nl = Plan.Nested_loop_join (Plan.Mk_data rows_l, Plan.Mk_data rows_r, pairs) in
  let hj = Plan.Hash_join (Plan.Mk_data rows_l, Plan.Mk_data rows_r, pairs) in
  Alcotest.check check_value "hash = nested loop" (Plan.run_local nl) (Plan.run_local hj);
  let logical = Expr.Join (Expr.Data rows_l, Expr.Data rows_r, pairs) in
  Alcotest.check check_value "hash = logical"
    (Expr.eval ~resolve:(fun _ -> None) logical)
    (Plan.run_local hj)

let test_merge_join_agrees () =
  (* all three join algorithms agree with the logical semantics, including
     duplicate key groups on both sides *)
  let mk side n =
    V.bag
      (List.map
         (fun i ->
           V.strct
             [ (side, V.strct [ ("id", V.Int (i mod 4)); ("v", V.Int i) ]) ])
         (List.init n Fun.id))
  in
  let rows_l = mk "x" 17 and rows_r = mk "y" 13 in
  let pairs = [ ([ "x"; "id" ], [ "y"; "id" ]) ] in
  let nl = Plan.Nested_loop_join (Plan.Mk_data rows_l, Plan.Mk_data rows_r, pairs) in
  let hj = Plan.Hash_join (Plan.Mk_data rows_l, Plan.Mk_data rows_r, pairs) in
  let mj = Plan.Merge_join (Plan.Mk_data rows_l, Plan.Mk_data rows_r, pairs) in
  Alcotest.check check_value "merge = nested" (Plan.run_local nl) (Plan.run_local mj);
  Alcotest.check check_value "merge = hash" (Plan.run_local hj) (Plan.run_local mj)

let test_join_algorithm_variants () =
  let j =
    Plan.Hash_join
      ( Plan.Exec ("r0", get0),
        Plan.Exec ("r1", Expr.Get "person1"),
        [ ([ "x"; "id" ], [ "y"; "id" ]) ] )
  in
  let variants = Plan.join_algorithm_variants j in
  Alcotest.(check int) "one algorithmic alternative (merge)" 1
    (List.length variants);
  (match variants with
  | [ Plan.Merge_join _ ] -> ()
  | _ -> Alcotest.fail "expected a merge-join variant");
  (* semijoins are generated separately, and only with informed costs *)
  Alcotest.(check int) "no semijoin without statistics" 0
    (List.length (Plan.semijoin_variants ~informed:(fun _ _ -> false) j));
  let semis = Plan.semijoin_variants ~informed:(fun _ _ -> true) j in
  Alcotest.(check int) "two directions when informed" 2 (List.length semis);
  Alcotest.(check bool) "both are semijoins" true
    (List.for_all (function Plan.Semi_join _ -> true | _ -> false) semis)

let test_hash_build_side () =
  let bag n = V.bag (List.init n (fun i -> V.strct [ ("id", V.Int i) ])) in
  Alcotest.(check bool) "smaller right builds right" true
    (Plan.hash_build_side ~left:(bag 10) ~right:(bag 3) = `Right);
  Alcotest.(check bool) "smaller left flips the build" true
    (Plan.hash_build_side ~left:(bag 3) ~right:(bag 10) = `Left);
  Alcotest.(check bool) "ties keep the historical right build" true
    (Plan.hash_build_side ~left:(bag 5) ~right:(bag 5) = `Right);
  (* the flipped build changes the table side, not the answer (and the
     merged struct still keeps left fields first) *)
  let mk side n =
    V.bag
      (List.init n (fun i ->
           V.strct [ (side, V.strct [ ("id", V.Int (i mod 4)); ("v", V.Int i) ]) ]))
  in
  let pairs = [ ([ "x"; "id" ], [ "y"; "id" ]) ] in
  let check_agrees l r =
    let nl = Plan.Nested_loop_join (Plan.Mk_data l, Plan.Mk_data r, pairs) in
    let hj = Plan.Hash_join (Plan.Mk_data l, Plan.Mk_data r, pairs) in
    Alcotest.check check_value "hash join agrees whichever side builds"
      (Plan.run_local nl) (Plan.run_local hj)
  in
  check_agrees (mk "x" 12) (mk "y" 3);
  check_agrees (mk "x" 3) (mk "y" 12)

let test_merge_key_length_invariant () =
  Alcotest.check_raises "unequal key lists raise"
    (Plan.Physical_error "merge join: key lists of unequal length (2 vs 1)")
    (fun () ->
      ignore (Plan.compare_key_lists [ V.Int 1; V.Int 2 ] [ V.Int 1 ]));
  Alcotest.(check int) "equal-length lists compare" 0
    (Plan.compare_key_lists [ V.Int 1; V.String "a" ] [ V.Int 1; V.String "a" ])

let test_run_local_requires_substitution () =
  Alcotest.check_raises "exec must be substituted"
    (Plan.Physical_error "exec(r0) not substituted before local execution")
    (fun () -> ignore (Plan.run_local (Plan.Exec ("r0", get0))))

(* -- optimizer -- *)

let test_optimizer_default_pushes_down () =
  (* Paper Section 3.3: with no cost information the optimizer chooses
     maximal pushdown. *)
  let located = Expr.Select (Expr.Submit ("r0", get0), gt 10) in
  let cost = Cost_model.create () in
  let choice = Optimizer.optimize ~can_push:Rules.push_all ~cost located in
  (match choice.Optimizer.plan with
  | Plan.Exec ("r0", Expr.Select _) -> ()
  | p -> Alcotest.fail ("expected pushed plan: " ^ Plan.to_string p));
  Alcotest.(check bool) "several alternatives" true (choice.Optimizer.alternatives >= 2)

let test_optimizer_respects_capability () =
  let located = Expr.Select (Expr.Submit ("r0", get0), gt 10) in
  let cost = Cost_model.create () in
  let choice = Optimizer.optimize ~can_push:Rules.push_none ~cost located in
  match choice.Optimizer.plan with
  | Plan.Mk_select (Plan.Exec ("r0", Expr.Get "person0"), _) -> ()
  | p -> Alcotest.fail ("expected mediator-side select: " ^ Plan.to_string p)

let test_optimizer_learns () =
  (* After recording that the pushed select is expensive and the raw scan
     cheap and small, the optimizer switches plans. *)
  let located = Expr.Select (Expr.Submit ("r0", get0), gt 10) in
  let cost = Cost_model.create () in
  let pushed = Expr.Select (get0, gt 10) in
  Cost_model.record cost ~repo:"r0" ~expr:pushed ~time_ms:5000.0 ~rows:900;
  Cost_model.record cost ~repo:"r0" ~expr:get0 ~time_ms:1.0 ~rows:10;
  let choice = Optimizer.optimize ~can_push:Rules.push_all ~cost located in
  match choice.Optimizer.plan with
  | Plan.Mk_select (Plan.Exec _, _) -> ()
  | p -> Alcotest.fail ("expected scan + local select: " ^ Plan.to_string p)

let test_optimizer_dedups_candidates () =
  let metrics = Disco_obs.Metrics.create () in
  let located = Expr.Select (Expr.Submit ("r0", get0), gt 10) in
  let cost = Cost_model.create () in
  let choice =
    Optimizer.optimize ~metrics ~can_push:Rules.push_all ~cost located
  in
  let hist name =
    match Disco_obs.Metrics.find_histogram metrics name with
    | Some h -> h.Disco_obs.Metrics.h_sum
    | None -> Alcotest.fail ("missing histogram " ^ name)
  in
  Alcotest.(check bool) "dedup drops the candidate count" true
    (hist "optimizer.candidates" < hist "optimizer.candidates_raw");
  Alcotest.(check int) "alternatives reflect the deduped count"
    (int_of_float (hist "optimizer.candidates"))
    choice.Optimizer.alternatives

(* -- runtime -- *)

let addr = Source.address ~host:"h" ~db_name:"db" ~ip:"0.0.0.0" ()

let make_env ?(latency = { Source.base_ms = 10.0; per_row_ms = 0.0; jitter = 0.0 })
    ?(schedules = []) ?(replicas = []) ?retry ?breaker ?metrics () =
  let clock = Clock.create () in
  let cost = Cost_model.create () in
  let mk i =
    let db = Datagen.person_db ~seed:i ~name:(Fmt.str "person%d" i) ~n:20 in
    let schedule =
      Option.value (List.assoc_opt i schedules) ~default:Schedule.always_up
    in
    let source =
      Source.create ~id:(Fmt.str "src%d" i) ~address:addr ~latency ~schedule
        (Source.Relational db)
    in
    {
      Runtime.b_extent = Fmt.str "person%d" i;
      b_repo = Fmt.str "r%d" i;
      b_source = source;
      b_replicas = Option.value (List.assoc_opt i replicas) ~default:[];
      b_wrapper = Wrapper.sql_wrapper ();
      b_map = Typemap.identity;
      b_check = None;
    }
  in
  let bindings = List.map mk [ 0; 1 ] in
  ( Runtime.env
      (Runtime.Config.make ?retry ?breaker ?metrics ~clock ~cost ())
      bindings,
    clock,
    cost )

let paper_plan =
  (* union(project(name, submit(r0, select(get person0))),
            project(name, submit(r1, select(get person1)))) *)
  let part i =
    Expr.Map
      ( Expr.Submit (Fmt.str "r%d" i, Expr.Select (Expr.Get (Fmt.str "person%d" i), gt 10)),
        Expr.Hscalar (Expr.Attr [ "name" ]) )
  in
  Plan.implement (Expr.Union [ part 0; part 1 ])

let test_runtime_complete () =
  let env, clock, cost = make_env () in
  let answer, stats = Runtime.execute env paper_plan in
  (match answer with
  | Runtime.Complete v -> Alcotest.(check bool) "non-empty" true (V.cardinal v > 0)
  | Runtime.Partial _ -> Alcotest.fail "expected complete");
  Alcotest.(check int) "both answered" 2 stats.Runtime.execs_answered;
  (* parallel issue: elapsed is ~one latency, not two *)
  Alcotest.(check bool) "parallel" true (stats.Runtime.elapsed_ms < 15.0);
  Alcotest.(check bool) "clock advanced" true (Clock.now clock >= 10.0);
  Alcotest.(check bool) "costs recorded" true (Cost_model.recorded_calls cost = 2)

let test_runtime_partial_and_resubmit () =
  let env, clock, _ = make_env ~schedules:[ (0, Schedule.down_during [ (0.0, 500.0) ]) ] () in
  let answer, stats = Runtime.execute ~timeout_ms:100.0 env paper_plan in
  Alcotest.(check int) "one blocked" 1 stats.Runtime.execs_blocked;
  (match answer with
  | Runtime.Partial { query; unavailable; _ } ->
      Alcotest.(check (list string)) "r0 down" [ "r0" ] unavailable;
      (* deadline consumed *)
      Alcotest.(check (float 0.001)) "waited to deadline" 100.0 stats.Runtime.elapsed_ms;
      (* the partial answer must mention person0 and contain data *)
      let text = Ast.to_string query in
      Alcotest.(check bool) "mentions person0" true
        (contains text "person0");
      (* once the source recovers, resubmitting the partial answer over
         the same (semantic) collections equals the full answer *)
      Clock.advance clock 600.0;
      let answer2, _ = Runtime.execute env paper_plan in
      let full = match answer2 with
        | Runtime.Complete v -> v
        | Runtime.Partial _ -> Alcotest.fail "expected recovery"
      in
      (* evaluate the partial answer text against the same data *)
      let resolve name =
        List.find_map
          (fun b ->
            if String.equal b.Runtime.b_extent name then
              match Source.kind b.Runtime.b_source with
              | Source.Relational db ->
                  Option.map Disco_relation.Table.to_bag
                    (Disco_relation.Database.find_table db name)
              | _ -> None
            else None)
          [] (* bindings are private; re-derive below *)
      in
      ignore resolve;
      let resolve name =
        let i = if name = "person0" then 0 else 1 in
        let db = Datagen.person_db ~seed:i ~name ~n:20 in
        Option.map Disco_relation.Table.to_bag
          (Disco_relation.Database.find_table db name)
      in
      let v = Eval.eval (Eval.env ~resolve ()) query in
      Alcotest.check check_value "resubmission equals full answer" full v
  | Runtime.Complete _ -> Alcotest.fail "expected partial")

let test_runtime_all_blocked () =
  let env, _, _ =
    make_env
      ~schedules:
        [ (0, Schedule.always_down); (1, Schedule.always_down) ]
      ()
  in
  let answer, stats = Runtime.execute ~timeout_ms:50.0 env paper_plan in
  Alcotest.(check int) "none answered" 0 stats.Runtime.execs_answered;
  match answer with
  | Runtime.Partial { query; unavailable; _ } ->
      Alcotest.(check int) "both unavailable" 2 (List.length unavailable);
      (* the answer should be (equivalent to) the original query *)
      let text = Ast.to_string query in
      Alcotest.(check bool) "still a query over both" true
        (contains text "person0"
        && contains text "person1")
  | Runtime.Complete _ -> Alcotest.fail "expected partial"

let test_runtime_fold_ready () =
  (* The available side is folded to data in the partial answer, matching
     the paper's union(query, data) form. *)
  let env, _, _ = make_env ~schedules:[ (0, Schedule.always_down) ] () in
  let answer, _ = Runtime.execute ~timeout_ms:50.0 env paper_plan in
  match answer with
  | Runtime.Partial { query; _ } -> (
      match query with
      | Ast.Call ("union", [ Ast.Select _; Ast.Const (V.Bag _) ]) -> ()
      | q -> Alcotest.fail ("expected union(select, Bag): " ^ Ast.to_string q))
  | Runtime.Complete _ -> Alcotest.fail "expected partial"

let test_runtime_fetch () =
  let env, _, _ = make_env ~schedules:[ (1, Schedule.always_down) ] () in
  let fetched, stats = Runtime.fetch ~timeout_ms:50.0 env [ "person0"; "person1" ] in
  Alcotest.(check int) "issued" 2 stats.Runtime.execs_issued;
  (match List.assoc "person0" fetched with
  | Some v -> Alcotest.(check int) "20 rows" 20 (V.cardinal v)
  | None -> Alcotest.fail "person0 should answer");
  match List.assoc "person1" fetched with
  | None -> ()
  | Some _ -> Alcotest.fail "person1 should be blocked"

let test_runtime_wrapper_refusal () =
  (* a scan-only wrapper receiving a pushed select: runtime error *)
  let clock = Clock.create () in
  let cost = Cost_model.create () in
  let db = Datagen.person_db ~seed:0 ~name:"person0" ~n:5 in
  let source = Source.create ~id:"s" ~address:addr (Source.Relational db) in
  let binding =
    {
      Runtime.b_extent = "person0";
      b_repo = "r0";
      b_source = source;
      b_replicas = [];
      b_wrapper = Wrapper.scan_wrapper ();
      b_map = Typemap.identity;
      b_check = None;
    }
  in
  let env = Runtime.env (Runtime.Config.make ~clock ~cost ()) [ binding ] in
  let plan = Plan.Exec ("r0", Expr.Select (get0, gt 10)) in
  try
    ignore (Runtime.execute env plan);
    Alcotest.fail "expected Runtime_error"
  with Runtime.Runtime_error _ -> ()

let test_runtime_type_check () =
  let clock = Clock.create () in
  let cost = Cost_model.create () in
  let db = Datagen.person_db ~seed:0 ~name:"person0" ~n:3 in
  let source = Source.create ~id:"s" ~address:addr (Source.Relational db) in
  let reject_all _ = false in
  let binding =
    {
      Runtime.b_extent = "person0";
      b_repo = "r0";
      b_source = source;
      b_replicas = [];
      b_wrapper = Wrapper.sql_wrapper ();
      b_map = Typemap.identity;
      b_check = Some reject_all;
    }
  in
  let env = Runtime.env (Runtime.Config.make ~clock ~cost ()) [ binding ] in
  try
    ignore (Runtime.execute env (Plan.Exec ("r0", get0)));
    Alcotest.fail "expected type mismatch"
  with Runtime.Runtime_error m ->
    Alcotest.(check bool) "mentions type" true (contains m "type mismatch")

(* -- retry scheduler, hedging, breaker (DESIGN.md Section 4g) -- *)

let nominal_latency = { Source.base_ms = 10.0; per_row_ms = 0.0; jitter = 0.0 }

let person_source ?schedule ~id ~seed () =
  let db = Datagen.person_db ~seed ~name:"person0" ~n:20 in
  Source.create ~id ~address:addr ~latency:nominal_latency ?schedule
    (Source.Relational db)

let counter metrics name = Disco_obs.Metrics.find_counter metrics name

let test_retry_recovers () =
  (* r0 is down until t=300 under a 1000 ms deadline: without retries the
     answer is partial; with the default policy the re-poll at t=350 finds
     the source back up and the answer completes *)
  let schedules = [ (0, Schedule.down_during [ (0.0, 300.0) ]) ] in
  let env_off, _, _ = make_env ~schedules () in
  (match Runtime.execute env_off paper_plan with
  | Runtime.Partial _, _ -> ()
  | Runtime.Complete _, _ -> Alcotest.fail "one-shot issue should block");
  let metrics = Disco_obs.Metrics.create () in
  let env, _, _ = make_env ~schedules ~retry:(Runtime.Retry.make ()) ~metrics () in
  let answer, stats = Runtime.execute env paper_plan in
  (match answer with
  | Runtime.Complete v -> Alcotest.(check bool) "non-empty" true (V.cardinal v > 0)
  | Runtime.Partial _ -> Alcotest.fail "retry should recover the answer");
  Alcotest.(check int) "nothing blocked" 0 stats.Runtime.execs_blocked;
  Alcotest.(check int) "both answered" 2 stats.Runtime.execs_answered;
  (* re-polls at 50, 150, 350; recovery at 300 means the third lands *)
  Alcotest.(check (float 0.001)) "answered at re-poll + latency" 360.0
    stats.Runtime.elapsed_ms;
  Alcotest.(check int) "three re-polls" 3 (counter metrics "runtime.retry.attempts");
  Alcotest.(check int) "one recovery" 1 (counter metrics "runtime.retry.recovered");
  (* each re-poll is a wire round-trip on top of the two initial issues *)
  Alcotest.(check int) "round trips include re-polls" 5 stats.Runtime.round_trips

let test_retry_exhausts () =
  (* a source that never comes back: the scheduler spends its attempts and
     the exec finalizes as blocked at the deadline, exactly like one-shot *)
  let metrics = Disco_obs.Metrics.create () in
  let env, _, _ =
    make_env
      ~schedules:[ (0, Schedule.always_down) ]
      ~retry:(Runtime.Retry.make ~max_attempts:2 ())
      ~metrics ()
  in
  let answer, stats = Runtime.execute env paper_plan in
  (match answer with
  | Runtime.Partial { unavailable; _ } ->
      Alcotest.(check (list string)) "r0 residual" [ "r0" ] unavailable
  | Runtime.Complete _ -> Alcotest.fail "expected partial");
  Alcotest.(check int) "one blocked" 1 stats.Runtime.execs_blocked;
  Alcotest.(check (float 0.001)) "deadline consumed" 1000.0 stats.Runtime.elapsed_ms;
  Alcotest.(check int) "both re-polls spent" 2
    (counter metrics "runtime.retry.attempts");
  Alcotest.(check int) "nothing recovered" 0
    (counter metrics "runtime.retry.recovered")

let test_retry_hedge () =
  (* the primary is alive but degraded 20x (200 ms); with a 30 ms hedge
     delay the replica is dialed at t=30 and answers at t=40, far ahead of
     the primary's completion *)
  let slow = Schedule.slow_during [ (0.0, 1e9) ] ~factor:20.0 in
  let replica = person_source ~id:"src0b" ~seed:0 () in
  let metrics = Disco_obs.Metrics.create () in
  let env, _, _ =
    make_env
      ~schedules:[ (0, slow) ]
      ~replicas:[ (0, [ ("r0b", replica) ]) ]
      ~retry:(Runtime.Retry.make ~hedge_ms:30.0 ())
      ~metrics ()
  in
  let answer, stats = Runtime.execute env paper_plan in
  (match answer with
  | Runtime.Complete v -> Alcotest.(check bool) "non-empty" true (V.cardinal v > 0)
  | Runtime.Partial _ -> Alcotest.fail "expected complete");
  Alcotest.(check (float 0.001)) "replica's finish wins" 40.0
    stats.Runtime.elapsed_ms;
  Alcotest.(check int) "one hedge issued" 1 (counter metrics "runtime.hedge.issued");
  Alcotest.(check int) "the hedge won" 1 (counter metrics "runtime.hedge.won");
  (* the hedged answer must equal what the slow primary would have sent *)
  let env_slow, _, _ = make_env ~schedules:[ (0, slow) ] () in
  match (answer, Runtime.execute env_slow paper_plan) with
  | Runtime.Complete hedged, (Runtime.Complete direct, _) ->
      Alcotest.check check_value "same rows either way" direct hedged
  | _ -> Alcotest.fail "expected complete answers"

let test_retry_breaker () =
  (* two consecutive refusals trip src0's breaker; with a cooldown longer
     than the deadline every later re-poll is skipped, not issued *)
  let breaker = Runtime.Breaker.create () in
  let metrics = Disco_obs.Metrics.create () in
  let retry =
    Runtime.Retry.make ~max_attempts:6 ~breaker_threshold:2
      ~breaker_cooldown_ms:5000.0 ()
  in
  let env, _, _ =
    make_env ~schedules:[ (0, Schedule.always_down) ] ~retry ~breaker ~metrics ()
  in
  let answer, _ = Runtime.execute env paper_plan in
  (match answer with
  | Runtime.Partial { unavailable; _ } ->
      Alcotest.(check (list string)) "still residual" [ "r0" ] unavailable
  | Runtime.Complete _ -> Alcotest.fail "expected partial");
  (* the initial issue failed (fails=1), the re-poll at t=50 failed and
     opened the breaker (fails=2); no further call reaches the source *)
  Alcotest.(check int) "only the pre-open re-poll issued" 1
    (counter metrics "runtime.retry.attempts");
  Alcotest.(check int) "breaker opened once" 1
    (counter metrics "runtime.breaker.open");
  match Runtime.Breaker.snapshot breaker with
  | [ ("src0", fails, Some since) ] ->
      Alcotest.(check int) "consecutive failures" 2 fails;
      Alcotest.(check (float 0.001)) "opened at the failing re-poll" 50.0 since
  | s ->
      Alcotest.fail
        (Fmt.str "unexpected breaker snapshot (%d entries)" (List.length s))

let test_failover_records_replica_version () =
  (* regression: when the replica answers for a down primary, the partial
     answer's version vector must carry the replica's repo and version —
     recording the primary's would make the staleness check watch the
     wrong database *)
  let clock = Clock.create () in
  let cost = Cost_model.create () in
  let primary = person_source ~id:"p0" ~seed:0 ~schedule:Schedule.always_down () in
  let replica = person_source ~id:"p0x" ~seed:7 () in
  let replica_db =
    match Source.kind replica with
    | Source.Relational db -> db
    | _ -> assert false
  in
  (* make the two versions numerically distinct so a swapped recording
     cannot pass by coincidence *)
  (match Disco_relation.Database.find_table replica_db "person0" with
  | Some t ->
      Disco_relation.Table.insert t [| V.Int 990; V.String "zz"; V.Int 40 |]
  | None -> Alcotest.fail "replica table missing");
  Alcotest.(check bool) "versions differ" true
    (Source.data_version primary <> Source.data_version replica);
  let bindings =
    [
      {
        Runtime.b_extent = "person0";
        b_repo = "r0";
        b_source = primary;
        b_replicas = [ ("r0x", replica) ];
        b_wrapper = Wrapper.sql_wrapper ();
        b_map = Typemap.identity;
        b_check = None;
      };
      {
        Runtime.b_extent = "person1";
        b_repo = "r1";
        b_source = person_source ~id:"p1" ~seed:1 ~schedule:Schedule.always_down ();
        b_replicas = [];
        b_wrapper = Wrapper.sql_wrapper ();
        b_map = Typemap.identity;
        b_check = None;
      };
    ]
  in
  let env = Runtime.env (Runtime.Config.make ~clock ~cost ()) bindings in
  let answer, stats = Runtime.execute ~timeout_ms:100.0 env paper_plan in
  Alcotest.(check int) "replica answered" 1 stats.Runtime.execs_answered;
  (match answer with
  | Runtime.Partial { unavailable; versions; _ } ->
      Alcotest.(check (list string)) "r1 residual" [ "r1" ] unavailable;
      Alcotest.(check (list (pair string int)))
        "the answering replica's repo and version recorded"
        [ ("r0x", Source.data_version replica) ]
        versions
  | Runtime.Complete _ -> Alcotest.fail "expected partial");
  (* the staleness check now watches the replica, not the primary *)
  Alcotest.(check (list string)) "fresh answer: no hint" []
    (Runtime.resubmit_hint env answer);
  (match Disco_relation.Database.find_table replica_db "person0" with
  | Some t ->
      Disco_relation.Table.insert t [| V.Int 991; V.String "zy"; V.Int 41 |]
  | None -> Alcotest.fail "replica table missing");
  Alcotest.(check (list string)) "replica change flags the answer" [ "r0x" ]
    (Runtime.resubmit_hint env answer)

(* -- batched transport (DESIGN.md Section 4e) -- *)

(* [n_extents] Person extents all bound to ONE repository/source, so a
   round over them exercises per-source grouping. *)
let make_shared_env ?metrics ~batch ~n_extents () =
  let clock = Clock.create () in
  let cost = Cost_model.create () in
  let db = Disco_relation.Database.create ~name:"db" in
  let source =
    Source.create ~id:"shared" ~address:addr
      ~latency:{ Source.base_ms = 10.0; per_row_ms = 0.0; jitter = 0.0 }
      (Source.Relational db)
  in
  let bindings =
    List.init n_extents (fun i ->
        ignore
          (Datagen.table_of db ~name:(Fmt.str "person%d" i)
             Datagen.person_schema
             (Datagen.person_rows ~seed:i ~n:10));
        {
          Runtime.b_extent = Fmt.str "person%d" i;
          b_repo = "r0";
          b_source = source;
          b_replicas = [];
          b_wrapper = Wrapper.sql_wrapper ();
          b_map = Typemap.identity;
          b_check = None;
        })
  in
  (Runtime.env (Runtime.Config.make ?metrics ~batch ~clock ~cost ()) bindings, clock, cost)

let shared_plan n =
  Plan.implement
    (Expr.Union
       (List.init n (fun i ->
            Expr.Map
              ( Expr.Submit
                  ( "r0",
                    Expr.Select (Expr.Get (Fmt.str "person%d" i), gt 10) ),
                Expr.Hscalar (Expr.Attr [ "name" ]) ))))

let test_runtime_batched_round_trips () =
  let run batch =
    let env, _, _ = make_shared_env ~batch ~n_extents:4 () in
    Runtime.execute env (shared_plan 4)
  in
  let a_b, s_b = run true and a_u, s_u = run false in
  (match (a_b, a_u) with
  | Runtime.Complete vb, Runtime.Complete vu ->
      Alcotest.check check_value "batched answer = unbatched" vu vb
  | _ -> Alcotest.fail "expected complete answers");
  Alcotest.(check int) "unbatched: one round-trip per exec" 4
    s_u.Runtime.round_trips;
  Alcotest.(check int) "batched: one round-trip per source" 1
    s_b.Runtime.round_trips;
  Alcotest.(check int) "same execs issued" s_u.Runtime.execs_issued
    s_b.Runtime.execs_issued;
  Alcotest.(check int) "same tuples shipped" s_u.Runtime.tuples_shipped
    s_b.Runtime.tuples_shipped;
  Alcotest.(check bool) "batched not slower" true
    (s_b.Runtime.elapsed_ms <= s_u.Runtime.elapsed_ms)

let test_runtime_dedup_shared_scan () =
  (* the same (repo, expr) appears twice in one plan: computed once,
     substituted everywhere *)
  let part = Expr.Map
      ( Expr.Submit ("r0", Expr.Select (Expr.Get "person0", gt 10)),
        Expr.Hscalar (Expr.Attr [ "name" ]) )
  in
  let plan = Plan.implement (Expr.Union [ part; part ]) in
  let metrics = Disco_obs.Metrics.create () in
  let env_b, _, _ = make_shared_env ~metrics ~batch:true ~n_extents:1 () in
  let a_b, s_b = Runtime.execute env_b plan in
  let env_u, _, _ = make_shared_env ~batch:false ~n_extents:1 () in
  let a_u, s_u = Runtime.execute env_u plan in
  (match (a_b, a_u) with
  | Runtime.Complete vb, Runtime.Complete vu ->
      Alcotest.check check_value "shared answer substituted everywhere" vu vb
  | _ -> Alcotest.fail "expected complete answers");
  Alcotest.(check int) "unbatched issues both copies" 2 s_u.Runtime.execs_issued;
  Alcotest.(check int) "batched issues the unique exec once" 1
    s_b.Runtime.execs_issued;
  Alcotest.(check int) "dedup hit counted" 1
    (Disco_obs.Metrics.find_counter metrics "runtime.batch.dedup_hits");
  Alcotest.(check int) "one round-trip" 1 s_b.Runtime.round_trips

(* -- scheduler equivalence -- *)

(* An env built over an explicit [Scheduler.of_clock] must reproduce the
   default clock-only configuration bit-for-bit: same answer, same
   stats, same final clock reading. The virtual scheduler is the pinned
   deterministic path; this is the contract that lets serve mode swap in
   a wall scheduler without touching any simulation result. *)
let test_scheduler_equivalence () =
  let run use_sched =
    let clock = Clock.create () in
    let cost = Cost_model.create () in
    let mk i =
      let db = Datagen.person_db ~seed:i ~name:(Fmt.str "person%d" i) ~n:20 in
      let source =
        Source.create ~id:(Fmt.str "src%d" i) ~address:addr
          ~latency:{ Source.base_ms = 10.0; per_row_ms = 0.05; jitter = 0.25 }
          (Source.Relational db)
      in
      {
        Runtime.b_extent = Fmt.str "person%d" i;
        b_repo = Fmt.str "r%d" i;
        b_source = source;
        b_replicas = [];
        b_wrapper = Wrapper.sql_wrapper ();
        b_map = Typemap.identity;
        b_check = None;
      }
    in
    let bindings = List.map mk [ 0; 1 ] in
    let sched = if use_sched then Some (Scheduler.of_clock clock) else None in
    let env =
      Runtime.env (Runtime.Config.make ?sched ~clock ~cost ()) bindings
    in
    let answer, stats = Runtime.execute env paper_plan in
    (answer, stats, Clock.now clock)
  in
  let a0, s0, t0 = run false in
  let a1, s1, t1 = run true in
  (match (a0, a1) with
  | Runtime.Complete v0, Runtime.Complete v1 ->
      Alcotest.check check_value "identical answers" v0 v1
  | _ -> Alcotest.fail "expected complete answers");
  Alcotest.(check (float 0.0))
    "identical elapsed" s0.Runtime.elapsed_ms s1.Runtime.elapsed_ms;
  Alcotest.(check int) "identical round trips" s0.Runtime.round_trips
    s1.Runtime.round_trips;
  Alcotest.(check int) "identical execs" s0.Runtime.execs_answered
    s1.Runtime.execs_answered;
  Alcotest.(check (float 0.0)) "identical final clock reading" t0 t1

let test_runtime_map_namespace () =
  (* extent with a type map: query in mediator names, source stores
     different names, answers come back in mediator names *)
  let clock = Clock.create () in
  let cost = Cost_model.create () in
  let db = Disco_relation.Database.create ~name:"db" in
  ignore
    (Datagen.table_of db ~name:"person0" Datagen.person_schema
       (Datagen.person_rows ~seed:1 ~n:10));
  let source = Source.create ~id:"s" ~address:addr (Source.Relational db) in
  let map =
    Typemap.make
      ~collection:("person0", "personprime0")
      [ ("name", "n"); ("salary", "s") ]
  in
  let binding =
    {
      Runtime.b_extent = "personprime0";
      b_repo = "r0";
      b_source = source;
      b_replicas = [];
      b_wrapper = Wrapper.sql_wrapper ();
      b_map = map;
      b_check = None;
    }
  in
  let env = Runtime.env (Runtime.Config.make ~clock ~cost ()) [ binding ] in
  let plan =
    Plan.Exec
      ( "r0",
        Expr.Select
          ( Expr.Get "personprime0",
            Expr.Cmp (Expr.Gt, Expr.Attr [ "s" ], Expr.Const (V.Int 10)) ) )
  in
  match Runtime.execute env plan with
  | Runtime.Complete v, _ ->
      Alcotest.(check bool) "rows returned" true (V.cardinal v > 0);
      List.iter
        (fun p ->
          match p with
          | V.Struct [ ("id", _); ("n", _); ("s", sal) ] ->
              Alcotest.(check bool) "filter applied at source" true
                (V.to_int sal > 10)
          | _ -> Alcotest.fail ("bad mediator-ns struct: " ^ V.to_string p))
        (V.elements v)
  | Runtime.Partial _, _ -> Alcotest.fail "expected complete"

let () =
  Alcotest.run "disco_runtime"
    [
      ( "cost",
        [
          Alcotest.test_case "default 0/1" `Quick test_cost_default;
          Alcotest.test_case "exact smoothing" `Quick test_cost_exact_smoothing;
          Alcotest.test_case "close match" `Quick test_cost_close_match;
          Alcotest.test_case "history bound" `Quick test_cost_history_bound;
          Alcotest.test_case "batch calibration" `Quick
            test_cost_batch_calibration;
          Alcotest.test_case "indexed basis" `Quick test_cost_indexed_basis;
        ] );
      ( "plan",
        [
          Alcotest.test_case "implementation rules" `Quick test_implement_shapes;
          Alcotest.test_case "logical roundtrip" `Quick test_plan_logical_roundtrip;
          Alcotest.test_case "hash vs nested loop" `Quick test_hash_vs_nested_loop;
          Alcotest.test_case "merge join agrees" `Quick test_merge_join_agrees;
          Alcotest.test_case "join algorithm variants" `Quick
            test_join_algorithm_variants;
          Alcotest.test_case "hash build side" `Quick test_hash_build_side;
          Alcotest.test_case "merge key length invariant" `Quick
            test_merge_key_length_invariant;
          Alcotest.test_case "exec substitution required" `Quick
            test_run_local_requires_substitution;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "default costs push down" `Quick
            test_optimizer_default_pushes_down;
          Alcotest.test_case "capability respected" `Quick
            test_optimizer_respects_capability;
          Alcotest.test_case "learning flips the plan" `Quick test_optimizer_learns;
          Alcotest.test_case "candidate dedup" `Quick
            test_optimizer_dedups_candidates;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "complete answer" `Quick test_runtime_complete;
          Alcotest.test_case "partial + resubmit" `Quick
            test_runtime_partial_and_resubmit;
          Alcotest.test_case "all blocked" `Quick test_runtime_all_blocked;
          Alcotest.test_case "available side folded" `Quick test_runtime_fold_ready;
          Alcotest.test_case "fetch" `Quick test_runtime_fetch;
          Alcotest.test_case "wrapper refusal" `Quick test_runtime_wrapper_refusal;
          Alcotest.test_case "run-time type check" `Quick test_runtime_type_check;
          Alcotest.test_case "type maps end to end" `Quick test_runtime_map_namespace;
          Alcotest.test_case "scheduler equivalence" `Quick
            test_scheduler_equivalence;
        ] );
      ( "retry",
        [
          Alcotest.test_case "re-poll recovers" `Quick test_retry_recovers;
          Alcotest.test_case "attempts exhaust" `Quick test_retry_exhausts;
          Alcotest.test_case "replica hedging" `Quick test_retry_hedge;
          Alcotest.test_case "circuit breaker" `Quick test_retry_breaker;
          Alcotest.test_case "failover records replica version" `Quick
            test_failover_records_replica_version;
        ] );
      ( "batching",
        [
          Alcotest.test_case "grouped round-trips" `Quick
            test_runtime_batched_round_trips;
          Alcotest.test_case "shared-scan dedup" `Quick
            test_runtime_dedup_shared_scan;
        ] );
    ]
