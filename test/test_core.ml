(* End-to-end tests of the Disco mediator: the paper's running examples
   (Sections 1.2-2.3), partial evaluation (Section 4), the four
   unavailable-data semantics, plan caching, wrapper fallback, views,
   maps, subtyping, catalogs, and mediator composition (Figure 1). *)

module V = Disco_value.Value
module Source = Disco_source.Source
module Schedule = Disco_source.Schedule
module Clock = Disco_source.Clock
module Datagen = Disco_source.Datagen
module Database = Disco_relation.Database
module Wrapper = Disco_wrapper.Wrapper
module Catalog = Disco_catalog.Catalog
module Mediator = Disco_core.Mediator
module Maintenance = Disco_core.Maintenance
module Composition = Disco_core.Composition
module Plan = Disco_physical.Plan

let qopts ?(timeout_ms = 1000.0) ?(semantics = Mediator.Partial_answers)
    ?(type_check = false) ?(static_check = false) () =
  { Mediator.Query_opts.timeout_ms; semantics; type_check; static_check }

let check_value = Alcotest.testable V.pp V.equal

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let addr host = Source.address ~host ~db_name:"db" ~ip:"123.45.6.7" ()

(* The paper's two-source world: r0 holds Mary/200, r1 holds Sam/50. *)
let person_row id name salary = [| V.Int id; V.String name; V.Int salary |]

let paper_source ~id ~host rows =
  let db = Database.create ~name:"db" in
  ignore (Datagen.table_of db ~name:("person" ^ string_of_int id) Datagen.person_schema rows);
  Source.create ~id:(Fmt.str "src%d" id) ~address:(addr host)
    ~latency:{ Source.base_ms = 5.0; per_row_ms = 0.0; jitter = 0.0 }
    (Source.Relational db)

let paper_odl =
  {|
  r0 := Repository(host="rodin", name="db", address="123.45.6.7");
  r1 := Repository(host="umiacs", name="db", address="123.45.6.8");
  w0 := WrapperPostgres();
  interface Person (extent person) {
    attribute String name;
    attribute Short salary; }
  extent person0 of Person wrapper w0 repository r0;
  extent person1 of Person wrapper w0 repository r1;
|}

let paper_mediator () =
  let m = Mediator.create ~name:"m0" () in
  Mediator.register_source m ~name:"r0"
    (paper_source ~id:0 ~host:"rodin" [ person_row 1 "Mary" 200 ]);
  Mediator.register_source m ~name:"r1"
    (paper_source ~id:1 ~host:"umiacs" [ person_row 1 "Sam" 50 ]);
  Mediator.load_odl m paper_odl;
  m

let complete outcome =
  match outcome.Mediator.answer with
  | Mediator.Complete v -> v
  | Mediator.Partial _ as p ->
      Alcotest.fail ("unexpected partial: " ^ Mediator.answer_oql p)
  | Mediator.Unavailable repos ->
      Alcotest.fail ("unavailable: " ^ String.concat "," repos)

(* -- the paper's Section 1.2 example -- *)

let test_paper_intro_query () =
  let m = paper_mediator () in
  let v =
    complete
      (Mediator.query m "select x.name from x in person where x.salary > 10")
  in
  Alcotest.check check_value "Bag(Mary, Sam)"
    (V.bag [ V.String "Mary"; V.String "Sam" ])
    v

let test_explicit_extents () =
  let m = paper_mediator () in
  let v =
    complete
      (Mediator.query m
         "select x.name from x in union(person0, person1) where x.salary > 10")
  in
  Alcotest.check check_value "explicit union"
    (V.bag [ V.String "Mary"; V.String "Sam" ])
    v;
  let v0 =
    complete (Mediator.query m "select x.name from x in person0 where x.salary > 10")
  in
  Alcotest.check check_value "single extent" (V.bag [ V.String "Mary" ]) v0

(* Section 1.2: "the addition of a new data source ... simply requires the
   addition of a new extent ... the query itself does not change". *)
let test_add_source_same_query () =
  let m = paper_mediator () in
  let q = "select x.name from x in person where x.salary > 10" in
  ignore (complete (Mediator.query m q));
  Mediator.register_source m ~name:"r2"
    (paper_source ~id:2 ~host:"lip6" [ person_row 9 "Zoe" 75 ]);
  Mediator.load_odl m
    {|r2 := Repository(host="lip6", name="db", address="123.45.6.9");
      extent person2 of Person wrapper w0 repository r2;|};
  let v = complete (Mediator.query m q) in
  Alcotest.check check_value "three sources now"
    (V.bag [ V.String "Mary"; V.String "Sam"; V.String "Zoe" ])
    v

(* -- Section 1.3 / 4: partial evaluation -- *)

let test_partial_answer_paper_form () =
  let m = paper_mediator () in
  (* r0 does not respond *)
  (match Mediator.find_source m "r0" with
  | Some src -> Source.set_schedule src (Schedule.down_during [ (0.0, 500.0) ])
  | None -> Alcotest.fail "no r0");
  let outcome =
    Mediator.query ~opts:(qopts ~timeout_ms:100.0 ()) m
      "select x.name from x in person where x.salary > 10"
  in
  match outcome.Mediator.answer with
  | Mediator.Partial { unavailable; _ } as p ->
      let oql = Mediator.answer_oql p in
      Alcotest.(check (list string)) "r0 unavailable" [ "r0" ] unavailable;
      (* the paper's exact answer shape: union(select..., Bag("Sam")) *)
      Alcotest.(check string) "paper partial answer"
        {|union(select x.name from x in person0 where x.salary > 10, Bag("Sam"))|}
        oql;
      (* Section 4: when r0 becomes available, resubmitting yields the
         answer to the original query *)
      Clock.advance (Mediator.clock m) 600.0;
      let v = complete (Mediator.resubmit m outcome.Mediator.answer) in
      Alcotest.check check_value "resubmission"
        (V.bag [ V.String "Mary"; V.String "Sam" ])
        v
  | _ -> Alcotest.fail "expected a partial answer"

let test_semantics_variants () =
  let make_down () =
    let m = paper_mediator () in
    (match Mediator.find_source m "r0" with
    | Some src -> Source.set_schedule src Schedule.always_down
    | None -> ());
    m
  in
  let q = "select x.name from x in person where x.salary > 10" in
  (* Wait_all: no answer *)
  let m = make_down () in
  (match (Mediator.query ~opts:(qopts ~semantics:Mediator.Wait_all ~timeout_ms:50.0 ()) m q).Mediator.answer with
  | Mediator.Unavailable [ "r0" ] -> ()
  | _ -> Alcotest.fail "expected Unavailable");
  (* Null_sources: complete answer over available data *)
  let m = make_down () in
  (match (Mediator.query ~opts:(qopts ~semantics:Mediator.Null_sources ~timeout_ms:50.0 ()) m q).Mediator.answer with
  | Mediator.Complete v ->
      Alcotest.check check_value "null semantics" (V.bag [ V.String "Sam" ]) v
  | _ -> Alcotest.fail "expected Complete under null semantics");
  (* Skip_sources: same data, but no timeout wait *)
  let m = make_down () in
  let t0 = Clock.now (Mediator.clock m) in
  (match (Mediator.query ~opts:(qopts ~semantics:Mediator.Skip_sources ~timeout_ms:5000.0 ()) m q).Mediator.answer with
  | Mediator.Complete v ->
      Alcotest.check check_value "skip semantics" (V.bag [ V.String "Sam" ]) v;
      let elapsed = Clock.now (Mediator.clock m) -. t0 in
      Alcotest.(check bool) "no deadline wait" true (elapsed < 100.0)
  | _ -> Alcotest.fail "expected Complete under skip semantics")

(* -- Section 2.2.2: maps -- *)

let test_type_map_end_to_end () =
  let m = paper_mediator () in
  Mediator.load_odl m
    {|
    interface PersonPrime {
      attribute String n;
      attribute Short s; }
    extent personprime0 of PersonPrime wrapper w0 repository r0
      map ((person0=personprime0),(name=n),(salary=s));
  |};
  let v =
    complete (Mediator.query m "select x.n from x in personprime0 where x.s > 10")
  in
  Alcotest.check check_value "mapped query" (V.bag [ V.String "Mary" ]) v

(* Section 6.2's closing example: yearly mediator salaries over a
   weekly-paid source, via a value-transform map. *)
let test_value_transform_map () =
  let m = Mediator.create ~name:"vt" () in
  let db = Database.create ~name:"db" in
  ignore
    (Datagen.table_of db ~name:"weekly0" Datagen.person_schema
       [ person_row 1 "Mary" 10; person_row 2 "Sam" 5 ]);
  Mediator.register_source m ~name:"r0"
    (Source.create ~id:"payroll" ~address:(addr "site") (Source.Relational db));
  Mediator.load_odl m
    {|r0 := Repository(host="site", name="db", address="0");
      w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute Short id;
        attribute String name;
        attribute Short yearly; }
      extent person0 of Person wrapper w0 repository r0
        map ((weekly0=person0),(salary*52=yearly));|};
  (* predicates compare in mediator (yearly) units, pushed to the source *)
  let o =
    Mediator.query m "select x.name from x in person where x.yearly > 400"
  in
  Alcotest.check check_value "filter in yearly units"
    (V.bag [ V.String "Mary" ])
    (complete o);
  Alcotest.(check int) "filter ran at the source" 1
    o.Mediator.stats.Disco_runtime.Runtime.tuples_shipped;
  (* raw tuples come back converted *)
  let v = complete (Mediator.query m "select x.yearly from x in person") in
  Alcotest.check check_value "values converted"
    (V.bag [ V.Int 260; V.Int 520 ])
    v;
  (* computed heads convert too *)
  let v2 =
    complete
      (Mediator.query m
         {|select struct(n: x.name, monthly: x.yearly / 12) from x in person where x.name = "Mary"|})
  in
  Alcotest.check check_value "arithmetic over converted field"
    (V.bag [ V.strct [ ("n", V.String "Mary"); ("monthly", V.Int 43) ] ])
    v2

(* Join pushdown into ONE repository whose two relations both need maps:
   the merged submit must translate each extent through its own map. *)
let test_same_repo_join_with_maps () =
  let m = Mediator.create ~name:"jm" () in
  let db = Database.create ~name:"db" in
  let emp_schema =
    Disco_relation.Schema.make
      [ ("nom", Disco_relation.Schema.TString);
        ("svc", Disco_relation.Schema.TString) ]
  in
  let mgr_schema =
    Disco_relation.Schema.make
      [ ("chef", Disco_relation.Schema.TString);
        ("service", Disco_relation.Schema.TString) ]
  in
  ignore
    (Datagen.table_of db ~name:"employes" emp_schema
       [ [| V.String "Ana"; V.String "it" |];
         [| V.String "Bob"; V.String "hr" |] ]);
  ignore
    (Datagen.table_of db ~name:"chefs" mgr_schema
       [ [| V.String "Max"; V.String "it" |] ]);
  Mediator.register_source m ~name:"r0"
    (Source.create ~id:"site" ~address:(addr "site") (Source.Relational db));
  Mediator.load_odl m
    {|r0 := Repository(host="site", name="db", address="0");
      w0 := WrapperPostgres();
      interface Employee {
        attribute String name;
        attribute String dept; }
      interface Manager {
        attribute String name;
        attribute String dept; }
      extent employee0 of Employee wrapper w0 repository r0
        map ((employes=employee0),(nom=name),(svc=dept));
      extent manager0 of Manager wrapper w0 repository r0
        map ((chefs=manager0),(chef=name),(service=dept));|};
  let o =
    Mediator.query m
      "select struct(who: e.name, boss: b.name) from e in employee0, b in        manager0 where e.dept = b.dept"
  in
  Alcotest.check check_value "join through two maps"
    (V.bag [ V.strct [ ("who", V.String "Ana"); ("boss", V.String "Max") ] ])
    (complete o);
  (* the join was pushed: one exec, only the joined row shipped *)
  Alcotest.(check int) "one exec (merged submit)" 1
    o.Mediator.stats.Disco_runtime.Runtime.execs_issued;
  Alcotest.(check int) "one tuple shipped" 1
    o.Mediator.stats.Disco_runtime.Runtime.tuples_shipped

(* Maps work across source kinds: a key-value store whose French field
   names map onto the mediator type, with the indexed lookup preserved. *)
let test_kv_with_map () =
  let m = Mediator.create ~name:"kvm" () in
  let tbl = Hashtbl.create 8 in
  let kv =
    Source.create ~id:"cache" ~address:(addr "cache") (Source.Key_value tbl)
  in
  Source.kv_put kv "mary"
    (V.strct [ ("key", V.String "mary"); ("paie", V.Int 200) ]);
  Source.kv_put kv "sam"
    (V.strct [ ("key", V.String "sam"); ("paie", V.Int 50) ]);
  Mediator.register_source m ~name:"rk" kv;
  Mediator.load_odl m
    {|rk := Repository(host="cache", name="kv", address="0");
      wk := WrapperKV();
      interface Entry (extent entries) {
        attribute String key;
        attribute Short salary; }
      extent entries0 of Entry wrapper wk repository rk
        map ((entries0=entries0),(paie=salary));|};
  (* the indexed lookup still reaches the store *)
  let o =
    Mediator.query m {|select e.salary from e in entries where e.key = "mary"|}
  in
  Alcotest.check check_value "lookup through map" (V.bag [ V.Int 200 ])
    (complete o);
  Alcotest.(check int) "index served one row" 1
    o.Mediator.stats.Disco_runtime.Runtime.tuples_shipped;
  (* scans rename the value fields *)
  let v = complete (Mediator.query m "select e.salary from e in entries") in
  Alcotest.check check_value "scan renamed" (V.bag [ V.Int 50; V.Int 200 ]) v

(* -- Section 2.2.1: subtyping and star -- *)

let student_odl =
  {|
  r2 := Repository(host="ens", name="db", address="123.45.6.10");
  interface Student : Person { }
  extent student0 of Student wrapper w0 repository r2;
|}

let add_students m =
  let db = Database.create ~name:"db" in
  ignore
    (Datagen.table_of db ~name:"student0" Datagen.person_schema
       [ person_row 7 "Stu" 42 ]);
  Mediator.register_source m ~name:"r2"
    (Source.create ~id:"src2" ~address:(addr "ens")
       ~latency:{ Source.base_ms = 5.0; per_row_ms = 0.0; jitter = 0.0 }
       (Source.Relational db));
  Mediator.load_odl m student_odl

let test_subtype_star () =
  let m = paper_mediator () in
  add_students m;
  (* person does NOT include student extents *)
  let v = complete (Mediator.query m "select x.name from x in person") in
  Alcotest.check check_value "person excludes subtypes"
    (V.bag [ V.String "Mary"; V.String "Sam" ])
    v;
  (* person* does *)
  let v' = complete (Mediator.query m "select x.name from x in person*") in
  Alcotest.check check_value "person* includes subtypes"
    (V.bag [ V.String "Mary"; V.String "Sam"; V.String "Stu" ])
    v'

(* -- Section 2.1: metaextent queries -- *)

let test_metaextent_query () =
  let m = paper_mediator () in
  let v =
    complete
      (Mediator.query m
         {|select x.name from x in metaextent where x.interface = Person|})
  in
  Alcotest.check check_value "metaextent"
    (V.bag [ V.String "person0"; V.String "person1" ])
    v

let test_meta_collections () =
  let m = paper_mediator () in
  let v =
    complete
      (Mediator.query m
         "select r.host from r in repositories order by r.host")
  in
  Alcotest.check check_value "repository hosts"
    (V.List [ V.String "rodin"; V.String "umiacs" ])
    v;
  let w = complete (Mediator.query m "select w.constructor from w in wrappers") in
  Alcotest.check check_value "wrapper constructors"
    (V.bag [ V.String "WrapperPostgres" ])
    w

let test_order_by_through_mediator () =
  let m = paper_mediator () in
  let v =
    complete
      (Mediator.query m
         "select x.name from x in person order by x.salary desc")
  in
  Alcotest.check check_value "ordered result"
    (V.List [ V.String "Mary"; V.String "Sam" ])
    v

let test_like_operator () =
  let m = paper_mediator () in
  (* like pushes into the SQL wrapper (full_relational includes it) *)
  let v =
    complete
      (Mediator.query m {|select x.name from x in person where x.name like "M%"|})
  in
  Alcotest.check check_value "like" (V.bag [ V.String "Mary" ]) v;
  let o =
    Mediator.query m {|select x.name from x in person0 where x.name like "%a%"|}
  in
  (match o.Mediator.plan with
  | Some plan ->
      (* the filter ran at the source: only the match shipped *)
      Alcotest.(check int) "pushed like ships matches only" 1
        o.Mediator.stats.Disco_runtime.Runtime.tuples_shipped;
      ignore plan
  | None -> Alcotest.fail "expected compiled path");
  (* underscore wildcard *)
  let v2 =
    complete
      (Mediator.query m {|select x.name from x in person where x.name like "S_m"|})
  in
  Alcotest.check check_value "underscore" (V.bag [ V.String "Sam" ]) v2

let test_like_not_in_weak_wrapper_grammar () =
  let weak = Disco_wrapper.Grammar.select_pushdown () in
  let like_sel =
    Disco_algebra.Expr.Select
      ( Disco_algebra.Expr.Get "t",
        Disco_algebra.Expr.Cmp
          ( Disco_algebra.Expr.Like,
            Disco_algebra.Expr.Attr [ "name" ],
            Disco_algebra.Expr.Const (V.String "M%") ) )
  in
  Alcotest.(check bool) "default select wrapper refuses like" false
    (Disco_wrapper.Grammar.accepts weak like_sel);
  let with_like =
    Disco_wrapper.Grammar.select_pushdown
      ~comparisons:[ "="; "like" ] ()
  in
  Alcotest.(check bool) "like-capable grammar accepts" true
    (Disco_wrapper.Grammar.accepts with_like like_sel)

(* -- Section 2.2.3 / 2.3: views -- *)

let test_views_double_multiple () =
  let m = paper_mediator () in
  (* make the two persons share an id so double is non-empty *)
  Mediator.load_odl m
    {|
    define double as
      select struct(name: x.name, salary: x.salary + y.salary)
      from x in person0 and y in person1
      where x.id = y.id;
    define multiple as
      select struct(name: x.name,
                    salary: sum(select z.salary from z in person where x.id = z.id))
      from x in person*;
  |};
  let v = complete (Mediator.query m "select d from d in double") in
  Alcotest.check check_value "double reconciles"
    (V.bag [ V.strct [ ("name", V.String "Mary"); ("salary", V.Int 250) ] ])
    v;
  (* multiple: correlated aggregate (hybrid path) over person* *)
  let v' = complete (Mediator.query m "select r.salary from r in multiple") in
  Alcotest.check check_value "multiple sums by id"
    (V.bag [ V.Int 250; V.Int 250 ])
    v'

let test_view_over_view_and_cycles () =
  let m = paper_mediator () in
  Mediator.load_odl m
    {|
    define rich as select p from p in person where p.salary > 100;
    define richnames as select r.name from r in rich;
  |};
  let v = complete (Mediator.query m "richnames") in
  Alcotest.check check_value "view over view" (V.bag [ V.String "Mary" ]) v;
  Mediator.load_odl m
    {|
    define a1 as select x from x in b1;
    define b1 as select y from y in a1;
  |};
  try
    ignore (Mediator.query m "a1");
    Alcotest.fail "expected cycle error"
  with Mediator.Mediator_error msg ->
    Alcotest.(check bool) "cycle reported" true (contains msg "cyclic")

(* -- Section 2.3: dissimilar structures -- *)

let test_personnew_reconciliation () =
  let m = paper_mediator () in
  let db = Database.create ~name:"db" in
  ignore
    (Datagen.table_of db ~name:"persontwo0" Datagen.person_two_schema
       [ [| V.Int 5; V.String "Pat"; V.Int 30; V.Int 12 |] ]);
  Mediator.register_source m ~name:"r5"
    (Source.create ~id:"src5" ~address:(addr "inria")
       (Source.Relational db));
  Mediator.load_odl m
    {|
    r5 := Repository(host="inria", name="db", address="123.45.6.11");
    interface PersonTwo {
      attribute String name;
      attribute Short regular;
      attribute Short consult; }
    extent persontwo0 of PersonTwo wrapper w0 repository r5;
    define personnew as
      union(select struct(name: x.name, salary: x.salary) from x in person,
            select struct(name: x.name, salary: x.regular + x.consult)
            from x in persontwo0);
  |};
  let v = complete (Mediator.query m "select p.salary from p in personnew where p.name = \"Pat\"") in
  Alcotest.check check_value "split pay reconciled" (V.bag [ V.Int 42 ]) v

(* -- replication extension -- *)

let test_replica_failover () =
  let m = Mediator.create ~name:"mr" () in
  (* primary r0 and replica r9 hold the same data *)
  Mediator.register_source m ~name:"r0"
    (paper_source ~id:0 ~host:"rodin" [ person_row 1 "Mary" 200 ]);
  let replica_db = Database.create ~name:"db" in
  ignore
    (Datagen.table_of replica_db ~name:"person0" Datagen.person_schema
       [ person_row 1 "Mary" 200 ]);
  Mediator.register_source m ~name:"r9"
    (Source.create ~id:"mirror" ~address:(addr "mirror")
       ~latency:{ Source.base_ms = 20.0; per_row_ms = 0.0; jitter = 0.0 }
       (Source.Relational replica_db));
  Mediator.load_odl m
    {|r0 := Repository(host="rodin", name="db", address="1");
      r9 := Repository(host="mirror", name="db", address="9");
      w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute String name;
        attribute Short salary; }
      extent person0 of Person wrapper w0 repository r0 replica r9;|};
  let q = "select x.name from x in person where x.salary > 10" in
  (* primary up: normal *)
  Alcotest.check check_value "primary serves" (V.bag [ V.String "Mary" ])
    (complete (Mediator.query m q));
  (* primary down: the replica answers, still a complete answer *)
  (match Mediator.find_source m "r0" with
  | Some src -> Source.set_schedule src Schedule.always_down
  | None -> ());
  Alcotest.check check_value "replica serves" (V.bag [ V.String "Mary" ])
    (complete (Mediator.query ~opts:(qopts ~timeout_ms:100.0 ()) m q));
  (* both down: back to a partial answer *)
  (match Mediator.find_source m "r9" with
  | Some src -> Source.set_schedule src Schedule.always_down
  | None -> ());
  match (Mediator.query ~opts:(qopts ~timeout_ms:50.0 ()) m q).Mediator.answer with
  | Mediator.Partial { unavailable = [ "r0" ]; _ } -> ()
  | _ -> Alcotest.fail "expected partial once all copies are down"

let test_replica_requires_attached_source () =
  let m = paper_mediator () in
  Mediator.load_odl m
    {|r9 := Repository(host="ghost", name="db", address="9");
      extent person9 of Person wrapper w0 repository r0 replica r9;|};
  try
    ignore (Mediator.query m "select x from x in person9");
    Alcotest.fail "expected error about unattached replica"
  with Mediator.Mediator_error msg ->
    Alcotest.(check bool) "mentions replica" true (contains msg "replica")

(* -- hybrid fragment pushdown -- *)

let test_hybrid_fragment_pushdown () =
  (* an aggregate is outside the algebra, but its inner select is a closed
     fragment: the filter must still run at the source *)
  let m = Mediator.create ~name:"hf" () in
  let rows = List.init 500 (fun i -> person_row i (Fmt.str "p%d" i) i) in
  Mediator.register_source m ~name:"r0" (paper_source ~id:0 ~host:"h" rows);
  Mediator.load_odl m
    {|r0 := Repository(host="h", name="db", address="0");
      w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute Short id;
        attribute String name;
        attribute Short salary; }
      extent person0 of Person wrapper w0 repository r0;|};
  let o =
    Mediator.query m "sum(select x.salary from x in person where x.salary > 450)"
  in
  (match o.Mediator.answer with
  | Mediator.Complete (V.Int total) ->
      Alcotest.(check int) "sum of 451..499" (49 * (451 + 499) / 2) total
  | _ -> Alcotest.fail "expected a sum");
  Alcotest.(check int) "only matching tuples shipped" 49
    o.Mediator.stats.Disco_runtime.Runtime.tuples_shipped;
  (* correlated aggregates still work (fragments must skip open
     subqueries) *)
  let o2 =
    Mediator.query m
      "select struct(n: x.name, peers: count(select y from y in person where        y.salary = x.salary)) from x in person where x.salary > 497"
  in
  match o2.Mediator.answer with
  | Mediator.Complete v -> Alcotest.(check int) "two rows" 2 (V.cardinal v)
  | _ -> Alcotest.fail "expected complete"

let test_hybrid_fragment_partial () =
  let m = paper_mediator () in
  (match Mediator.find_source m "r1" with
  | Some src -> Source.set_schedule src Schedule.always_down
  | None -> ());
  (* the aggregate query's fragment over person1 blocks: partial answer *)
  let o =
    Mediator.query ~opts:(qopts ~timeout_ms:50.0 ()) m
      "sum(select x.salary from x in person where x.salary > 10)"
  in
  match o.Mediator.answer with
  | Mediator.Partial { unavailable; _ } ->
      Alcotest.(check (list string)) "r1 blocked" [ "r1" ] unavailable;
      (* recovery: the resubmitted text gives the true sum *)
      (match Mediator.find_source m "r1" with
      | Some src -> Source.set_schedule src Schedule.always_up
      | None -> ());
      (match (Mediator.resubmit m o.Mediator.answer).Mediator.answer with
      | Mediator.Complete (V.Int 250) -> ()
      | Mediator.Complete v -> Alcotest.fail (V.to_string v)
      | _ -> Alcotest.fail "resubmission failed")
  | _ -> Alcotest.fail "expected partial"

(* -- semijoin reduction (future-work extension, Sections 3.2 / 6.2) -- *)

let test_semijoin_reduction () =
  let m = Mediator.create ~name:"sj" () in
  (* a tiny "managers" source and a large "employees" source at different
     sites; transfer costs dominate the large side *)
  let small_db = Database.create ~name:"db" in
  ignore
    (Datagen.table_of small_db ~name:"vip0" Datagen.person_schema
       (List.init 5 (fun i -> person_row (i * 400) (Fmt.str "vip%d" i) 999)));
  let big_db = Database.create ~name:"db" in
  ignore
    (Datagen.table_of big_db ~name:"staff0" Datagen.person_schema
       (Datagen.person_rows ~seed:77 ~n:5000));
  Mediator.register_source m ~name:"r0"
    (Source.create ~id:"small" ~address:(addr "hq")
       ~latency:{ Source.base_ms = 10.0; per_row_ms = 0.05; jitter = 0.0 }
       (Source.Relational small_db));
  Mediator.register_source m ~name:"r1"
    (Source.create ~id:"big" ~address:(addr "plant")
       ~latency:{ Source.base_ms = 10.0; per_row_ms = 0.05; jitter = 0.0 }
       (Source.Relational big_db));
  Mediator.load_odl m
    {|r0 := Repository(host="hq", name="db", address="0");
      r1 := Repository(host="plant", name="db", address="1");
      w0 := WrapperPostgres();
      interface Person {
        attribute Short id;
        attribute String name;
        attribute Short salary; }
      extent vip0 of Person wrapper w0 repository r0;
      extent staff0 of Person wrapper w0 repository r1;|};
  let q =
    "select struct(a: x.name, b: y.name) from x in vip0, y in staff0 where      x.id = y.id"
  in
  (* run 1: no cost information, maximal pushdown ships everything *)
  let o1 = Mediator.query ~opts:(qopts ~timeout_ms:10_000.0 ()) m q in
  let shipped1 = o1.Mediator.stats.Disco_runtime.Runtime.tuples_shipped in
  Alcotest.(check bool) "first run ships the big extent" true (shipped1 >= 5000);
  (* run 2: learned costs make the semijoin plan win *)
  Mediator.clear_plan_cache m;
  let o2 = Mediator.query ~opts:(qopts ~timeout_ms:10_000.0 ()) m q in
  let shipped2 = o2.Mediator.stats.Disco_runtime.Runtime.tuples_shipped in
  (match o2.Mediator.plan with
  | Some plan ->
      Alcotest.(check bool)
        (Fmt.str "semijoin chosen: %s" (Disco_physical.Plan.to_string plan))
        true
        (Disco_physical.Plan.semi_joins plan > 0)
  | None -> Alcotest.fail "expected a compiled plan");
  Alcotest.(check bool)
    (Fmt.str "reduced shipping: %d -> %d" shipped1 shipped2)
    true
    (shipped2 < shipped1 / 10);
  (* and the answers agree *)
  Alcotest.check check_value "same answer" (complete o1) (complete o2)

let test_semijoin_partial_degrades () =
  (* if the reduced side is down, the residual query must be the plain
     join over the original expressions *)
  let m = paper_mediator () in
  let cost = Mediator.cost_model m in
  ignore cost;
  (* force a semijoin plan by learning costs first *)
  let q =
    "select struct(a: x.name, b: y.name) from x in person0, y in person1      where x.salary = y.salary"
  in
  ignore (Mediator.query m q);
  Mediator.clear_plan_cache m;
  (match Mediator.find_source m "r1" with
  | Some src -> Source.set_schedule src Schedule.always_down
  | None -> ());
  let o = Mediator.query ~opts:(qopts ~timeout_ms:50.0 ()) m q in
  (match o.Mediator.answer with
  | Mediator.Partial _ ->
      (* resubmittable after recovery *)
      (match Mediator.find_source m "r1" with
      | Some src -> Source.set_schedule src Schedule.always_up
      | None -> ());
      let v = complete (Mediator.resubmit m o.Mediator.answer) in
      ignore v
  | Mediator.Complete _ -> () (* optimizer may not have picked semijoin *)
  | Mediator.Unavailable _ -> Alcotest.fail "unexpected wait-all");
  ()

let test_skip_respects_replicas () =
  let m = Mediator.create ~name:"sr" () in
  Mediator.register_source m ~name:"r0"
    (paper_source ~id:0 ~host:"a" [ person_row 1 "Mary" 200 ]);
  Mediator.register_source m ~name:"r9"
    (paper_source ~id:0 ~host:"b" [ person_row 1 "Mary" 200 ]);
  Mediator.load_odl m
    {|r0 := Repository(host="a", name="db", address="0");
      r9 := Repository(host="b", name="db", address="9");
      w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute Short id;
        attribute String name;
        attribute Short salary; }
      extent person0 of Person wrapper w0 repository r0 replica r9;|};
  (match Mediator.find_source m "r0" with
  | Some src -> Source.set_schedule src Schedule.always_down
  | None -> ());
  (* primary down but replica up: skip semantics must NOT drop the data *)
  (match
     (Mediator.query ~opts:(qopts ~semantics:Mediator.Skip_sources ()) m
        "select x.name from x in person")
       .Mediator.answer
   with
  | Mediator.Complete v ->
      Alcotest.check check_value "replica kept the extent alive"
        (V.bag [ V.String "Mary" ]) v
  | _ -> Alcotest.fail "expected complete");
  (match Mediator.find_source m "r9" with
  | Some src -> Source.set_schedule src Schedule.always_down
  | None -> ());
  match
    (Mediator.query ~opts:(qopts ~semantics:Mediator.Skip_sources ()) m
       "select x.name from x in person")
      .Mediator.answer
  with
  | Mediator.Complete v ->
      Alcotest.check check_value "all copies down: skipped" (V.bag []) v
  | _ -> Alcotest.fail "expected complete empty"

let test_order_by_partial () =
  let m = paper_mediator () in
  (match Mediator.find_source m "r0" with
  | Some src -> Source.set_schedule src (Schedule.down_during [ (0.0, 500.0) ])
  | None -> ());
  let o =
    Mediator.query ~opts:(qopts ~timeout_ms:50.0 ()) m
      "select x.name from x in person order by x.salary desc"
  in
  match o.Mediator.answer with
  | Mediator.Partial _ ->
      Clock.advance (Mediator.clock m) 600.0;
      (match (Mediator.resubmit m o.Mediator.answer).Mediator.answer with
      | Mediator.Complete v ->
          Alcotest.check check_value "ordered after recovery"
            (V.List [ V.String "Mary"; V.String "Sam" ])
            v
      | _ -> Alcotest.fail "resubmission failed")
  | _ -> Alcotest.fail "expected partial"

let test_wait_all_hybrid () =
  let m = paper_mediator () in
  (match Mediator.find_source m "r0" with
  | Some src -> Source.set_schedule src Schedule.always_down
  | None -> ());
  match
    (Mediator.query ~opts:(qopts ~semantics:Mediator.Wait_all ~timeout_ms:50.0 ()) m
       "count(select x from x in person where x.salary > 10)")
      .Mediator.answer
  with
  | Mediator.Unavailable repos ->
      Alcotest.(check (list string)) "r0 reported" [ "r0" ] repos
  | _ -> Alcotest.fail "expected Unavailable on the hybrid path"

let test_null_semantics_hybrid () =
  let m = paper_mediator () in
  (match Mediator.find_source m "r0" with
  | Some src -> Source.set_schedule src Schedule.always_down
  | None -> ());
  match
    (Mediator.query ~opts:(qopts ~semantics:Mediator.Null_sources ~timeout_ms:50.0 ()) m
       "sum(select x.salary from x in person)")
      .Mediator.answer
  with
  | Mediator.Complete (V.Int 50) -> ()
  | Mediator.Complete v -> Alcotest.fail (V.to_string v)
  | _ -> Alcotest.fail "expected complete under null semantics"

(* -- plan caching -- *)

let test_source_stats () =
  let m = paper_mediator () in
  ignore (Mediator.query m "select x.name from x in person");
  (match Mediator.source_stats m with
  | [ ("r0", s0); ("r1", s1) ] ->
      Alcotest.(check int) "r0 answered" 1 s0.Source.calls_answered;
      Alcotest.(check int) "r1 answered" 1 s1.Source.calls_answered;
      Alcotest.(check int) "r0 rows" 1 s0.Source.rows_shipped
  | other -> Alcotest.fail (Fmt.str "%d entries" (List.length other)));
  ()

let test_plan_cache () =
  let m = paper_mediator () in
  let q = "select x.name from x in person where x.salary > 10" in
  let o1 = Mediator.query m q in
  Alcotest.(check bool) "first run plans" false o1.Mediator.from_cache;
  let o2 = Mediator.query m q in
  Alcotest.(check bool) "second run cached" true o2.Mediator.from_cache;
  (* adding an extent invalidates: the same query text now sees 3 sources *)
  Mediator.register_source m ~name:"r2"
    (paper_source ~id:2 ~host:"lip6" [ person_row 3 "Zoe" 80 ]);
  Mediator.load_odl m
    {|r2 := Repository(host="lip6", name="db", address="x");
      extent person2 of Person wrapper w0 repository r2;|};
  let o3 = Mediator.query m q in
  Alcotest.(check bool) "invalidated" false o3.Mediator.from_cache;
  Alcotest.check check_value "new source visible"
    (V.bag [ V.String "Mary"; V.String "Sam"; V.String "Zoe" ])
    (complete o3)

(* -- wrapper capability fallback -- *)

let test_runtime_fallback_on_refusal () =
  (* A lying wrapper: advertises full capability, refuses everything but
     get. The mediator must fall back and still answer. *)
  let lying =
    Wrapper.make ~name:"WrapperLiar"
      ~grammar:Disco_wrapper.Grammar.full_relational
      ~execute:(fun source e ->
        match e with
        | Disco_algebra.Expr.Get _ ->
            Wrapper.execute (Wrapper.scan_wrapper ()) source e
        | _ -> Error (Wrapper.Refused "liar"))
      ()
  in
  let m = Mediator.create ~name:"m1" () in
  Mediator.register_source m ~name:"r0"
    (paper_source ~id:0 ~host:"rodin" [ person_row 1 "Mary" 200 ]);
  Mediator.register_wrapper m ~name:"w0" lying;
  Mediator.load_odl m
    {|
    r0 := Repository(host="rodin", name="db", address="x");
    w0 := WrapperCustom();
    interface Person (extent person) {
      attribute String name;
      attribute Short salary; }
    extent person0 of Person wrapper w0 repository r0;
  |};
  let o = Mediator.query m "select x.name from x in person where x.salary > 10" in
  Alcotest.(check bool) "fallback used" true o.Mediator.fallback;
  Alcotest.check check_value "still answered" (V.bag [ V.String "Mary" ]) (complete o)

(* A custom wrapper registered via the API: the optimizer must push what
   its grammar allows (project) and keep the rest (select) local. *)
let test_custom_wrapper_capability () =
  let custom =
    Wrapper.make ~name:"WrapperCustomProject"
      ~grammar:Disco_wrapper.Grammar.project_no_compose
      ~execute:(fun source e ->
        Wrapper.execute (Wrapper.project_wrapper ()) source e)
      ()
  in
  let m = Mediator.create ~name:"cw" () in
  let rows = List.init 50 (fun i -> person_row i (Fmt.str "p%d" i) i) in
  Mediator.register_source m ~name:"r0" (paper_source ~id:0 ~host:"h" rows);
  Mediator.register_wrapper m ~name:"w0" custom;
  Mediator.load_odl m
    {|r0 := Repository(host="h", name="db", address="0");
      w0 := WrapperCustomProject();
      interface Person (extent person) {
        attribute Short id;
        attribute String name;
        attribute Short salary; }
      extent person0 of Person wrapper w0 repository r0;|};
  (* pure projection: pushed, ships all 50 single-column tuples *)
  let o1 = Mediator.query m "select x.name from x in person" in
  Alcotest.(check int) "projection pushed" 50
    o1.Mediator.stats.Disco_runtime.Runtime.tuples_shipped;
  (match o1.Mediator.plan with
  | Some plan -> (
      match Plan.all_source_exprs plan with
      | [ ("r0", Disco_algebra.Expr.Project (Disco_algebra.Expr.Get "person0", [ "name" ])) ] ->
          ()
      | _ -> Alcotest.fail ("project not pushed: " ^ Plan.to_string plan))
  | None -> Alcotest.fail "expected compiled plan");
  (* a filter cannot push: the select runs on the mediator over a scan *)
  let o2 = Mediator.query m "select x.name from x in person where x.salary > 48" in
  Alcotest.(check int) "one row answer" 1
    (V.cardinal (complete o2));
  Alcotest.(check int) "scan shipped everything" 50
    o2.Mediator.stats.Disco_runtime.Runtime.tuples_shipped

(* -- pushdown shape: scan wrapper ships everything, sql wrapper filters
   at the source -- *)

let test_pushdown_tuples_shipped () =
  let run wrapper_ctor =
    let m = Mediator.create ~name:"m" () in
    let rows = List.init 100 (fun i -> person_row i (Fmt.str "p%d" i) i) in
    Mediator.register_source m ~name:"r0" (paper_source ~id:0 ~host:"h" rows);
    Mediator.load_odl m
      (Fmt.str
         {|r0 := Repository(host="h", name="db", address="x");
           w0 := %s();
           interface Person (extent person) {
             attribute Short id;
             attribute String name;
             attribute Short salary; }
           extent person0 of Person wrapper w0 repository r0;|}
         wrapper_ctor);
    let o = Mediator.query m "select x.name from x in person where x.salary > 90" in
    (V.cardinal (complete o), o.Mediator.stats.Disco_runtime.Runtime.tuples_shipped)
  in
  let n_sql, shipped_sql = run "WrapperPostgres" in
  let n_scan, shipped_scan = run "WrapperScan" in
  Alcotest.(check int) "same answer size" n_sql n_scan;
  Alcotest.(check int) "sql ships only matches" 9 shipped_sql;
  Alcotest.(check int) "scan ships everything" 100 shipped_scan

(* -- run-time type check -- *)

let test_type_check_detects_mismatch () =
  let m = Mediator.create ~name:"m" () in
  (* source stores a relation whose fields do not match Person *)
  let db = Database.create ~name:"db" in
  let schema =
    Disco_relation.Schema.make
      [ ("nom", Disco_relation.Schema.TString); ("paie", Disco_relation.Schema.TInt) ]
  in
  ignore (Datagen.table_of db ~name:"person0" schema [ [| V.String "X"; V.Int 1 |] ]);
  Mediator.register_source m ~name:"r0"
    (Source.create ~id:"s" ~address:(addr "h") (Source.Relational db));
  Mediator.load_odl m
    {|r0 := Repository(host="h", name="db", address="x");
      w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute String name;
        attribute Short salary; }
      extent person0 of Person wrapper w0 repository r0;|};
  try
    ignore (Mediator.query ~opts:(qopts ~type_check:true ()) m "select x from x in person0");
    Alcotest.fail "expected type mismatch"
  with Disco_runtime.Runtime.Runtime_error msg | Mediator.Mediator_error msg ->
    Alcotest.(check bool) "mentions mismatch" true (contains msg "mismatch")

(* -- maintenance models (E3 sanity) -- *)

let test_maintenance_models () =
  let d10 = Maintenance.disco ~n:10 and d50 = Maintenance.disco ~n:50 in
  Alcotest.(check int) "disco query constant" d10.Maintenance.query_size
    d50.Maintenance.query_size;
  Alcotest.(check int) "disco one statement" 1 d50.Maintenance.statements;
  let u10 = Maintenance.explicit_union ~n:10
  and u50 = Maintenance.explicit_union ~n:50 in
  Alcotest.(check bool) "union query grows" true
    (u50.Maintenance.query_size > u10.Maintenance.query_size);
  let g50 = Maintenance.global_schema ~n:50 in
  Alcotest.(check int) "global schema touches all" 50
    g50.Maintenance.redefined_entities;
  (* the generated texts actually parse *)
  ignore (Disco_oql.Parser.parse (Maintenance.explicit_union_query ~n:20));
  ignore (Disco_oql.Parser.parse (Maintenance.disco_query ~n:20))

(* -- catalog and composition (Figure 1) -- *)

let test_catalog () =
  let m = paper_mediator () in
  let c = Catalog.create ~name:"c0" in
  Mediator.register_in_catalog m c;
  (match Catalog.lookup c Catalog.Mediator "m0" with
  | Some e -> Alcotest.(check string) "owner" "m0" e.Catalog.e_owner
  | None -> Alcotest.fail "mediator not registered");
  let peer = Catalog.create ~name:"c1" in
  Catalog.add_peer peer c;
  (match Catalog.lookup peer Catalog.Repository "r0" with
  | Some _ -> ()
  | None -> Alcotest.fail "peer lookup failed");
  let counts = Catalog.overview peer in
  Alcotest.(check bool) "overview sees repositories" true
    (List.assoc_opt Catalog.Repository counts = Some 2)

let test_mediator_composition () =
  (* child mediator owns the two person sources; parent re-exports the
     implicit extent through a mediator-wrapper (A -> M -> M -> W -> D). *)
  let child = paper_mediator () in
  let parent = Mediator.create ~config:{ Mediator.Config.default with clock = Some (Mediator.clock child) } ~name:"parent" () in
  let src, wrap = Composition.as_source child in
  Mediator.register_source parent ~name:"rm" src;
  Mediator.register_wrapper parent ~name:"wm" wrap;
  Mediator.load_odl parent
    {|
    rm := Repository(host="child", name="mediator", address="mediator://");
    wm := WrapperMediator();
    interface Person (extent people) {
      attribute String name;
      attribute Short salary; }
    extent person of Person wrapper wm repository rm;
  |};
  let v =
    complete
      (Mediator.query parent "select x.name from x in people where x.salary > 10")
  in
  Alcotest.check check_value "through two mediators"
    (V.bag [ V.String "Mary"; V.String "Sam" ])
    v

(* -- explain -- *)

let test_explain () =
  let m = paper_mediator () in
  let text = Mediator.explain m "select x.name from x in person where x.salary > 10" in
  Alcotest.(check bool) "shows exec" true (contains text "exec");
  let hybrid = Mediator.explain m "sum(select x.salary from x in person)" in
  Alcotest.(check bool) "hybrid notice" true (contains hybrid "hybrid")

(* -- hybrid partial answers -- *)

let test_hybrid_partial_answer () =
  let m = paper_mediator () in
  (match Mediator.find_source m "r1" with
  | Some src -> Source.set_schedule src Schedule.always_down
  | None -> ());
  (* correlated aggregate: not algebra-compilable, hybrid path *)
  let o =
    Mediator.query ~opts:(qopts ~timeout_ms:50.0 ()) m
      "select struct(n: x.name, t: sum(select z.salary from z in person0 \
       where z.id = x.id)) from x in person"
  in
  match o.Mediator.answer with
  | Mediator.Partial { unavailable; _ } as p ->
      let oql = Mediator.answer_oql p in
      Alcotest.(check (list string)) "r1 down" [ "r1" ] unavailable;
      Alcotest.(check bool) "mentions person1" true (contains oql "person1");
      (* materialized person0 is inlined as data *)
      Alcotest.(check bool) "person0 inlined" true (contains oql "Mary");
      (* recovery: resubmit gives the full answer *)
      (match Mediator.find_source m "r1" with
      | Some src -> Source.set_schedule src Schedule.always_up
      | None -> ());
      let v = complete (Mediator.resubmit m o.Mediator.answer) in
      Alcotest.(check int) "two rows" 2 (V.cardinal v)
  | _ -> Alcotest.fail "expected hybrid partial"

(* -- end-to-end property: the full engine (compile, pushdown, SQL,
   wrappers, runtime) agrees with the reference evaluator -- *)

let prop_engine_matches_reference =
  let gen =
    QCheck.Gen.(
      let* threshold = int_range 0 300 in
      let* shape = int_range 0 5 in
      return
        (match shape with
        | 0 -> Fmt.str "select x.name from x in person where x.salary > %d" threshold
        | 1 -> Fmt.str "select struct(n: x.name, s: x.salary * 2) from x in person where x.salary <= %d" threshold
        | 2 -> Fmt.str "select distinct x.salary from x in person where x.salary != %d" threshold
        | 3 -> "select struct(a: x.name, b: y.name) from x in person0, y in person1 where x.id = y.id"
        | 4 -> Fmt.str "count(select p from p in person where p.salary < %d)" threshold
        | _ -> Fmt.str "sum(select p.salary from p in person where p.salary >= %d)" threshold))
  in
  QCheck.Test.make ~name:"engine agrees with the reference evaluator"
    ~count:100
    (QCheck.make ~print:Fun.id gen)
    (fun q ->
      let m = Mediator.create ~name:"prop" () in
      Mediator.register_source m ~name:"r0"
        (paper_source ~id:0 ~host:"a"
           (Datagen.person_rows ~seed:11 ~n:25));
      Mediator.register_source m ~name:"r1"
        (paper_source ~id:1 ~host:"b"
           (Datagen.person_rows ~seed:12 ~n:25));
      Mediator.load_odl m paper_odl;
      let engine =
        match (Mediator.query m q).Mediator.answer with
        | Mediator.Complete v -> v
        | _ -> QCheck.assume_fail ()
      in
      let table name =
        match Mediator.find_source m (if name = "person0" then "r0" else "r1") with
        | Some src -> (
            match Source.kind src with
            | Source.Relational db ->
                Option.map Disco_relation.Table.to_bag
                  (Database.find_table db name)
            | _ -> None)
        | None -> None
      in
      let resolve = function
        | "person0" -> table "person0"
        | "person1" -> table "person1"
        | "person" -> (
            match (table "person0", table "person1") with
            | Some a, Some b -> Some (V.bag_union a b)
            | _ -> None)
        | _ -> None
      in
      let reference =
        Disco_oql.Eval.eval_string (Disco_oql.Eval.env ~resolve ()) q
      in
      V.equal engine reference)

let test_validate_views () =
  let m = paper_mediator () in
  Mediator.load_odl m
    {|define good as select p.name from p in person;
      define bad as select p.age from p in person;|};
  let errors = Mediator.validate_views m in
  Alcotest.(check int) "one bad view" 1 (List.length errors);
  match errors with
  | [ ("bad", msg) ] ->
      Alcotest.(check bool) "mentions the attribute" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected the bad view flagged"

(* -- scale stress: 64 sources, mixed availability -- *)

let test_scale_64_sources () =
  let m = Mediator.create ~name:"big" () in
  Mediator.load_odl m
    {|w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute Short id;
        attribute String name;
        attribute Short salary; }|};
  for i = 0 to 63 do
    Mediator.register_source m ~name:(Fmt.str "r%d" i)
      (paper_source ~id:i ~host:(Fmt.str "h%d" i)
         (Datagen.person_rows ~seed:(3000 + i) ~n:20));
    Mediator.load_odl m
      (Fmt.str
         {|r%d := Repository(host="h%d", name="db", address="0");
           extent person%d of Person wrapper w0 repository r%d;|}
         i i i i)
  done;
  (* all up: full answer over 64 sources *)
  let q = "select x.name from x in person where x.salary > 400" in
  let reference = complete (Mediator.query m q) in
  Alcotest.(check bool) "non-trivial answer" true (V.cardinal reference > 50);
  (* a third of the fleet goes down: partial, then recovery equivalence *)
  for i = 0 to 63 do
    if i mod 3 = 0 then
      match Mediator.find_source m (Fmt.str "r%d" i) with
      | Some src -> Source.set_schedule src Schedule.always_down
      | None -> ()
  done;
  Mediator.clear_plan_cache m;
  let o = Mediator.query ~opts:(qopts ~timeout_ms:50.0 ()) m q in
  (match o.Mediator.answer with
  | Mediator.Partial { unavailable; _ } ->
      Alcotest.(check int) "22 sources down" 22 (List.length unavailable);
      for i = 0 to 63 do
        match Mediator.find_source m (Fmt.str "r%d" i) with
        | Some src -> Source.set_schedule src Schedule.always_up
        | None -> ()
      done;
      let v = complete (Mediator.resubmit m o.Mediator.answer) in
      Alcotest.check check_value "recovery equals reference" reference v
  | _ -> Alcotest.fail "expected partial");
  ()

let () =
  Alcotest.run "disco_core"
    [
      ( "paper-examples",
        [
          Alcotest.test_case "Section 1.2 query" `Quick test_paper_intro_query;
          Alcotest.test_case "explicit extents" `Quick test_explicit_extents;
          Alcotest.test_case "add source, same query" `Quick
            test_add_source_same_query;
          Alcotest.test_case "metaextent" `Quick test_metaextent_query;
          Alcotest.test_case "repositories/wrappers collections" `Quick
            test_meta_collections;
          Alcotest.test_case "order by through mediator" `Quick
            test_order_by_through_mediator;
          Alcotest.test_case "like operator" `Quick test_like_operator;
          Alcotest.test_case "like capability" `Quick
            test_like_not_in_weak_wrapper_grammar;
        ] );
      ( "partial-evaluation",
        [
          Alcotest.test_case "paper partial answer form" `Quick
            test_partial_answer_paper_form;
          Alcotest.test_case "semantics variants" `Quick test_semantics_variants;
          Alcotest.test_case "hybrid partial answer" `Quick
            test_hybrid_partial_answer;
          Alcotest.test_case "skip respects replicas" `Quick
            test_skip_respects_replicas;
          Alcotest.test_case "order by partial" `Quick test_order_by_partial;
          Alcotest.test_case "null semantics on hybrid" `Quick
            test_null_semantics_hybrid;
          Alcotest.test_case "wait-all on hybrid" `Quick test_wait_all_hybrid;
        ] );
      ( "modeling",
        [
          Alcotest.test_case "type maps" `Quick test_type_map_end_to_end;
          Alcotest.test_case "value-transform maps" `Quick
            test_value_transform_map;
          Alcotest.test_case "same-repo join with maps" `Quick
            test_same_repo_join_with_maps;
          Alcotest.test_case "kv source with map" `Quick test_kv_with_map;
          Alcotest.test_case "subtyping and star" `Quick test_subtype_star;
          Alcotest.test_case "views double/multiple" `Quick
            test_views_double_multiple;
          Alcotest.test_case "views over views, cycles" `Quick
            test_view_over_view_and_cycles;
          Alcotest.test_case "personnew reconciliation" `Quick
            test_personnew_reconciliation;
        ] );
      ( "engine",
        [
          Alcotest.test_case "hybrid fragment pushdown" `Quick
            test_hybrid_fragment_pushdown;
          Alcotest.test_case "hybrid fragment partial" `Quick
            test_hybrid_fragment_partial;
          Alcotest.test_case "semijoin reduction" `Quick test_semijoin_reduction;
          Alcotest.test_case "semijoin degrades on outage" `Quick
            test_semijoin_partial_degrades;
          Alcotest.test_case "replica failover" `Quick test_replica_failover;
          Alcotest.test_case "replica needs a source" `Quick
            test_replica_requires_attached_source;
          Alcotest.test_case "plan cache" `Quick test_plan_cache;
          Alcotest.test_case "per-source stats" `Quick test_source_stats;
          Alcotest.test_case "fallback on wrapper refusal" `Quick
            test_runtime_fallback_on_refusal;
          Alcotest.test_case "pushdown tuples shipped" `Quick
            test_pushdown_tuples_shipped;
          Alcotest.test_case "custom wrapper capability" `Quick
            test_custom_wrapper_capability;
          Alcotest.test_case "run-time type check" `Quick
            test_type_check_detects_mismatch;
          Alcotest.test_case "explain" `Quick test_explain;
        ] );
      ( "system",
        [
          QCheck_alcotest.to_alcotest prop_engine_matches_reference;
          Alcotest.test_case "view validation" `Quick test_validate_views;
          Alcotest.test_case "maintenance models" `Quick test_maintenance_models;
          Alcotest.test_case "catalog" `Quick test_catalog;
          Alcotest.test_case "mediator composition" `Quick
            test_mediator_composition;
          Alcotest.test_case "scale: 64 sources" `Slow test_scale_64_sources;
        ] );
    ]
