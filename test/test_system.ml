(* System-level coverage: catalog peering edge cases, mediator
   composition under failure, source statistics, schedule transitions,
   the text index, and schema evolution corner cases. *)

module V = Disco_value.Value
module Source = Disco_source.Source
module Schedule = Disco_source.Schedule
module Clock = Disco_source.Clock
module Datagen = Disco_source.Datagen
module Database = Disco_relation.Database
module Text_index = Disco_source.Text_index
module Registry = Disco_odl.Registry
module Odl = Disco_odl.Odl_parser
module Catalog = Disco_catalog.Catalog
module Mediator = Disco_core.Mediator
module Composition = Disco_core.Composition
module Wrapper = Disco_wrapper.Wrapper

let qopts ?(timeout_ms = 1000.0) ?(semantics = Mediator.Partial_answers)
    ?(type_check = false) ?(static_check = false) () =
  { Mediator.Query_opts.timeout_ms; semantics; type_check; static_check }

let check_value = Alcotest.testable V.pp V.equal

(* -- catalog -- *)

let entry kind name owner =
  { Catalog.e_kind = kind; e_name = name; e_owner = owner; e_info = [] }

let test_catalog_peering_cycles () =
  let a = Catalog.create ~name:"a" in
  let b = Catalog.create ~name:"b" in
  let c = Catalog.create ~name:"c" in
  (* a <-> b cycle, c hangs off b *)
  Catalog.add_peer a b;
  Catalog.add_peer b a;
  Catalog.add_peer b c;
  Catalog.register c (entry Catalog.Repository "deep" "c");
  (match Catalog.lookup a Catalog.Repository "deep" with
  | Some e -> Alcotest.(check string) "found through the cycle" "c" e.Catalog.e_owner
  | None -> Alcotest.fail "peer chase failed");
  Alcotest.(check bool) "missing stays missing" true
    (Catalog.lookup a Catalog.Wrapper "nope" = None)

let test_catalog_overview_dedup () =
  let a = Catalog.create ~name:"a" in
  let b = Catalog.create ~name:"b" in
  Catalog.add_peer a b;
  Catalog.add_peer b a;
  (* the same entry registered in both *)
  Catalog.register a (entry Catalog.Mediator "m" "x");
  Catalog.register b (entry Catalog.Mediator "m" "x");
  Catalog.register b (entry Catalog.Mediator "n" "x");
  let counts = Catalog.overview a in
  Alcotest.(check (option int)) "deduplicated" (Some 2)
    (List.assoc_opt Catalog.Mediator counts)

let test_catalog_reregistration () =
  let a = Catalog.create ~name:"a" in
  Catalog.register a (entry Catalog.Wrapper "w" "old");
  Catalog.register a { (entry Catalog.Wrapper "w" "new") with Catalog.e_info = [ ("v", "2") ] };
  (match Catalog.lookup a Catalog.Wrapper "w" with
  | Some e -> Alcotest.(check string) "last wins" "new" e.Catalog.e_owner
  | None -> Alcotest.fail "lost");
  Alcotest.(check int) "no duplicate entries" 1 (List.length (Catalog.entries a));
  Catalog.deregister a Catalog.Wrapper "w";
  Alcotest.(check int) "deregistered" 0 (List.length (Catalog.entries a))

(* -- composition under failure -- *)

let child_mediator ?(schedule = Schedule.always_up) () =
  let m = Mediator.create ~name:"child" () in
  let db = Datagen.person_db ~seed:9 ~name:"person0" ~n:6 in
  Mediator.register_source m ~name:"r0"
    (Source.create ~id:"s"
       ~address:(Source.address ~host:"h" ~db_name:"d" ~ip:"0" ())
       ~schedule (Source.Relational db));
  Mediator.load_odl m
    {|r0 := Repository(host="h", name="d", address="0");
      w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute Short id;
        attribute String name;
        attribute Short salary; }
      extent person0 of Person wrapper w0 repository r0;|};
  m

let parent_over child =
  let parent = Mediator.create ~config:{ Mediator.Config.default with clock = Some (Mediator.clock child) } ~name:"parent" () in
  let src, wrap = Composition.as_source child in
  Mediator.register_source parent ~name:"rm" src;
  Mediator.register_wrapper parent ~name:"wm" wrap;
  Mediator.load_odl parent
    {|rm := Repository(host="child", name="mediator", address="m");
      wm := WrapperMediator();
      interface Person (extent people) {
        attribute Short id;
        attribute String name;
        attribute Short salary; }
      extent person0 of Person wrapper wm repository rm;|};
  parent

let test_composition_child_source_down () =
  (* the child's backing source is down: the child returns a partial, the
     composition wrapper reports it as a source error, and the parent's
     fallback also fails -> a clean mediator error, not a wrong answer *)
  let child = child_mediator ~schedule:Schedule.always_down () in
  let parent = parent_over child in
  match Mediator.query ~opts:(qopts ~timeout_ms:50.0 ()) parent "select x.name from x in people" with
  | exception Disco_runtime.Runtime.Runtime_error _ -> ()
  | exception Mediator.Mediator_error _ -> ()
  | o -> (
      match o.Mediator.answer with
      | Mediator.Complete v when V.cardinal v = 0 ->
          Alcotest.fail "empty answer would be wrong"
      | Mediator.Complete _ -> Alcotest.fail "cannot be complete"
      | _ -> ())

let test_composition_parent_link_down () =
  (* the mediator-to-mediator link itself is down: the parent treats the
     child like any unavailable source and returns a partial answer *)
  let child = child_mediator () in
  let parent = parent_over child in
  (match Mediator.find_source parent "rm" with
  | Some src -> Source.set_schedule src Schedule.always_down
  | None -> Alcotest.fail "no link source");
  match (Mediator.query ~opts:(qopts ~timeout_ms:50.0 ()) parent "select x.name from x in people").Mediator.answer with
  | Mediator.Partial { unavailable = [ "rm" ]; _ } -> ()
  | _ -> Alcotest.fail "expected partial over the mediator link"

(* -- replica failover end to end -- *)

let test_failover_replica_cache_invalidation () =
  (* primary down -> the replica answers a complete query; the answer is
     cached under the replica's data version, so a later change to the
     replica (the database that actually produced the rows) invalidates
     the entry, while the idle primary never would *)
  let cache = Disco_cache.Answer_cache.create () in
  let m =
    Mediator.create
      ~config:{ Mediator.Config.default with cache = Some cache }
      ~name:"failover" ()
  in
  let address i = Source.address ~host:(Fmt.str "h%d" i) ~db_name:"d" ~ip:"0" () in
  let primary_db = Datagen.person_db ~seed:5 ~name:"person0" ~n:6 in
  let replica_db = Datagen.person_db ~seed:5 ~name:"person0" ~n:6 in
  Mediator.register_source m ~name:"r0"
    (Source.create ~id:"p" ~address:(address 0) ~schedule:Schedule.always_down
       (Source.Relational primary_db));
  let replica =
    Source.create ~id:"px" ~address:(address 1) (Source.Relational replica_db)
  in
  Mediator.register_source m ~name:"r1" replica;
  Mediator.load_odl m
    {|r0 := Repository(host="h0", name="d", address="0");
      r1 := Repository(host="h1", name="d", address="0");
      w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute Short id;
        attribute String name;
        attribute Short salary; }
      extent person0 of Person wrapper w0 repository r0 replica r1;|};
  let q = "select x.name from x in person0 where x.salary > 10" in
  let o1 = Mediator.query m q in
  let v1 =
    match o1.Mediator.answer with
    | Mediator.Complete v -> v
    | _ -> Alcotest.fail "replica should complete the answer"
  in
  Alcotest.(check bool) "rows from the replica" true (V.cardinal v1 > 0);
  Alcotest.(check int) "first pass hits nothing" 0
    o1.Mediator.answer_cache.Mediator.answer_hits;
  (* second pass: served from the cache at the replica's version *)
  let o2 = Mediator.query m q in
  Alcotest.(check int) "second pass served from cache" 1
    o2.Mediator.answer_cache.Mediator.answer_hits;
  (match o2.Mediator.answer with
  | Mediator.Complete v2 -> Alcotest.check check_value "cached = original" v1 v2
  | _ -> Alcotest.fail "cached answer should be complete");
  (* change the replica: the cached entry is now a version behind *)
  (match Database.find_table replica_db "person0" with
  | Some t ->
      Disco_relation.Table.insert t
        [| V.Int 990; V.String "newcomer"; V.Int 400 |]
  | None -> Alcotest.fail "replica table missing");
  let o3 = Mediator.query m q in
  Alcotest.(check int) "replica change invalidates the entry" 0
    o3.Mediator.answer_cache.Mediator.answer_hits;
  match o3.Mediator.answer with
  | Mediator.Complete v3 ->
      Alcotest.(check int) "refetched answer sees the new row"
        (V.cardinal v1 + 1) (V.cardinal v3)
  | _ -> Alcotest.fail "refetched answer should be complete"

(* -- source statistics -- *)

let test_source_stats_accumulate () =
  let db = Datagen.person_db ~seed:4 ~name:"person0" ~n:10 in
  let src =
    Source.create ~id:"s"
      ~address:(Source.address ~host:"h" ~db_name:"d" ~ip:"0" ())
      ~latency:{ Source.base_ms = 10.0; per_row_ms = 1.0; jitter = 0.0 }
      (Source.Relational db)
  in
  let clock = Clock.create () in
  (match Source.call src ~clock (fun () -> ((), 10)) with
  | Source.Answered ((), t) -> Alcotest.(check (float 0.001)) "latency" 20.0 t
  | _ -> Alcotest.fail "call failed");
  ignore (Source.call src ~clock (fun () -> ((), 5)));
  let stats = Source.stats src in
  Alcotest.(check int) "answered" 2 stats.Source.calls_answered;
  Alcotest.(check int) "rows" 15 stats.Source.rows_shipped;
  Alcotest.(check (float 0.001)) "busy" 35.0 stats.Source.busy_ms;
  Source.reset_stats src;
  Alcotest.(check int) "reset" 0 (Source.stats src).Source.calls_answered

(* -- schedules: transitions -- *)

let test_flaky_transitions () =
  let s = Schedule.flaky ~seed:1 ~period:10.0 ~availability:0.5 in
  (match Schedule.next_transition s 12.5 with
  | Some t -> Alcotest.(check (float 0.001)) "next period boundary" 20.0 t
  | None -> Alcotest.fail "flaky has transitions");
  Alcotest.(check (option (float 0.0))) "constant has none" None
    (Schedule.next_transition Schedule.always_up 5.0)

(* -- text index -- *)

let test_text_index_details () =
  let idx = Text_index.create () in
  let d1 = Text_index.add idx ~title:"Alpha Beta" ~body:"the quick fox" in
  let d2 = Text_index.add idx ~title:"Beta Gamma" ~body:"lazy dogs sleep" in
  Alcotest.(check int) "ids sequential" 1 (d2 - d1);
  Alcotest.(check int) "cardinal" 2 (Text_index.cardinal idx);
  Alcotest.(check int) "body search" 1 (List.length (Text_index.search idx "FOX"));
  Alcotest.(check int) "title search both" 2
    (List.length (Text_index.search_title idx "beta"));
  Alcotest.(check int) "missing keyword" 0 (List.length (Text_index.search idx "cat"));
  let v0 = Text_index.version idx in
  ignore (Text_index.add idx ~title:"New" ~body:"fox again");
  Alcotest.(check bool) "version bumps" true (Text_index.version idx > v0);
  Alcotest.(check int) "index updated" 2 (List.length (Text_index.search idx "fox"))

(* -- schema evolution corners -- *)

let test_drop_and_redefine_extent () =
  let reg = Registry.create () in
  Odl.load reg
    {|r0 := Repository(host="h", name="d", address="0");
      w0 := WrapperPostgres();
      interface Person { attribute String name; }
      extent person0 of Person wrapper w0 repository r0;|};
  Odl.load reg "drop extent person0;";
  Alcotest.(check bool) "gone" true (Registry.find_extent reg "person0" = None);
  (* redefinition after drop is allowed, now with a replica *)
  Odl.load reg
    {|r1 := Repository(host="h2", name="d", address="1");
      extent person0 of Person wrapper w0 repository r0 replica r1;|};
  match Registry.find_extent reg "person0" with
  | Some e ->
      Alcotest.(check (list string)) "replicas recorded" [ "r1" ]
        e.Registry.me_replicas
  | None -> Alcotest.fail "redefinition failed"

let test_objects_bag_filtering () =
  let reg = Registry.create () in
  Odl.load reg
    {|r0 := Repository(host="h", name="d", address="0");
      r1 := Repository(host="h2", name="d", address="1");
      w0 := WrapperPostgres();|};
  Alcotest.(check int) "repositories" 2
    (V.cardinal (Registry.objects_bag ~constructor_prefix:"Repository" reg));
  Alcotest.(check int) "wrappers" 1
    (V.cardinal (Registry.objects_bag ~constructor_prefix:"Wrapper" reg));
  Alcotest.(check int) "all" 3 (V.cardinal (Registry.objects_bag reg));
  (* struct shape carries the constructor arguments *)
  let repos = Registry.objects_bag ~constructor_prefix:"Repository" reg in
  List.iter
    (fun r ->
      Alcotest.check check_value "constructor field" (V.String "Repository")
        (V.field r "constructor");
      Alcotest.(check bool) "has host" true (V.field_opt r "host" <> None))
    (V.elements repos)

let () =
  Alcotest.run "disco_system"
    [
      ( "catalog",
        [
          Alcotest.test_case "peering with cycles" `Quick test_catalog_peering_cycles;
          Alcotest.test_case "overview dedup" `Quick test_catalog_overview_dedup;
          Alcotest.test_case "re-registration" `Quick test_catalog_reregistration;
        ] );
      ( "composition",
        [
          Alcotest.test_case "child source down" `Quick
            test_composition_child_source_down;
          Alcotest.test_case "mediator link down" `Quick
            test_composition_parent_link_down;
          Alcotest.test_case "replica failover + cache invalidation" `Quick
            test_failover_replica_cache_invalidation;
        ] );
      ( "sources",
        [
          Alcotest.test_case "stats accumulate" `Quick test_source_stats_accumulate;
          Alcotest.test_case "flaky transitions" `Quick test_flaky_transitions;
          Alcotest.test_case "text index" `Quick test_text_index_details;
        ] );
      ( "evolution",
        [
          Alcotest.test_case "drop and redefine" `Quick test_drop_and_redefine_extent;
          Alcotest.test_case "objects bag" `Quick test_objects_bag_filtering;
        ] );
    ]
