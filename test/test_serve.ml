(* Tests for the serving surface: admission control observed
   deterministically through a barrier-blocking worker factory, per-tenant
   fair queueing, a wall-clock smoke test over real mediators, and the
   open-loop load generator on the in-process transport. *)

module V = Disco_value.Value
module Source = Disco_source.Source
module Datagen = Disco_source.Datagen
module Scheduler = Disco_source.Scheduler
module Database = Disco_relation.Database
module Runtime = Disco_runtime.Runtime
module Mediator = Disco_core.Mediator
module Metrics = Disco_obs.Metrics
module Server = Disco_serve.Server
module Loadgen = Disco_serve.Loadgen

(* A counting semaphore: workers block in [acquire] until the test hands
   out permits, so queue depths are observed at rest, not raced. *)
let make_gate () =
  let m = Mutex.create () and c = Condition.create () in
  let permits = ref 0 in
  let acquire () =
    Mutex.lock m;
    while !permits <= 0 do
      Condition.wait c m
    done;
    decr permits;
    Mutex.unlock m
  in
  let release n =
    Mutex.lock m;
    permits := !permits + n;
    Condition.broadcast c;
    Mutex.unlock m
  in
  (acquire, release)

let wait_until ?(timeout_s = 5.0) msg pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () -. t0 > timeout_s then
      Alcotest.fail ("timed out waiting for " ^ msg)
    else (
      Thread.yield ();
      Unix.sleepf 0.001;
      go ())
  in
  go ()

(* -- admission control -- *)

let test_admission_limit () =
  let acquire, release = make_gate () in
  let worker _ ~tenant:_ oql =
    acquire ();
    Server.Answered { body = oql; elapsed_ms = 0.0 }
  in
  let metrics = Metrics.create () in
  let srv = Server.create ~inflight:2 ~queue_bound:2 ~metrics ~worker () in
  let replies = Array.make 4 None in
  let submit k =
    Thread.create
      (fun () ->
        replies.(k) <- Some (Server.submit srv ~tenant:"t" (Fmt.str "q%d" k)))
      ()
  in
  (* fill the in-flight limit... *)
  let t0 = submit 0 in
  let t1 = submit 1 in
  wait_until "both workers busy" (fun () ->
      (Server.health srv).Server.h_inflight = 2);
  (* ...then the backlog... *)
  let t2 = submit 2 in
  let t3 = submit 3 in
  wait_until "backlog full" (fun () ->
      (Server.health srv).Server.h_queued = 2);
  (* ...and the next arrival is shed synchronously, carrying the whole
     query as its resubmittable residual. *)
  (match Server.submit srv ~tenant:"t" "q4" with
  | Server.Shed { residual } ->
      Alcotest.(check string) "residual is the query" "q4" residual
  | Server.Answered _ | Server.Failed _ -> Alcotest.fail "expected shed");
  release 4;
  List.iter Thread.join [ t0; t1; t2; t3 ];
  Array.iter
    (function
      | Some (Server.Answered _) -> ()
      | _ -> Alcotest.fail "expected every admitted query answered")
    replies;
  let h = Server.health srv in
  Alcotest.(check int) "completed" 4 h.Server.h_completed;
  Alcotest.(check int) "shed" 1 h.Server.h_shed;
  Alcotest.(check int) "errors" 0 h.Server.h_errors;
  Alcotest.(check int) "metrics: completed" 4
    (Metrics.find_counter metrics "serve.completed");
  Alcotest.(check int) "metrics: shed" 1
    (Metrics.find_counter metrics "serve.shed");
  Server.stop srv

let test_create_validation () =
  let worker _ ~tenant:_ oql =
    Server.Answered { body = oql; elapsed_ms = 0.0 }
  in
  Alcotest.check_raises "inflight must be positive"
    (Invalid_argument "Server.create: inflight must be positive") (fun () ->
      ignore (Server.create ~inflight:0 ~worker ()));
  Alcotest.check_raises "queue bound must be non-negative"
    (Invalid_argument "Server.create: queue_bound must be non-negative")
    (fun () -> ignore (Server.create ~queue_bound:(-1) ~worker ()))

let test_stopped_server_fails () =
  let worker _ ~tenant:_ oql =
    Server.Answered { body = oql; elapsed_ms = 0.0 }
  in
  let srv = Server.create ~inflight:1 ~worker () in
  Server.stop srv;
  Server.stop srv;
  (* idempotent *)
  match Server.submit srv ~tenant:"t" "q" with
  | Server.Failed _ -> ()
  | Server.Answered _ | Server.Shed _ ->
      Alcotest.fail "expected Failed after stop"

(* -- fair queueing -- *)

let test_fair_queueing () =
  (* One worker, blocked; tenant [a] then floods three queries, tenant
     [b] files one. Round-robin drain must not serve [b] last. *)
  let acquire, release = make_gate () in
  let order = ref [] in
  let lock = Mutex.create () in
  let worker _ ~tenant oql =
    acquire ();
    Mutex.lock lock;
    order := (tenant, oql) :: !order;
    Mutex.unlock lock;
    Server.Answered { body = oql; elapsed_ms = 0.0 }
  in
  let srv = Server.create ~inflight:1 ~queue_bound:16 ~worker () in
  let spawn tenant oql =
    Thread.create (fun () -> ignore (Server.submit srv ~tenant oql)) ()
  in
  let warm = spawn "w" "warm" in
  wait_until "worker busy" (fun () ->
      (Server.health srv).Server.h_inflight = 1);
  let enqueue k tenant oql =
    let t = spawn tenant oql in
    wait_until (Fmt.str "queue depth %d" k) (fun () ->
        (Server.health srv).Server.h_queued = k);
    t
  in
  let ta1 = enqueue 1 "a" "a1" in
  let ta2 = enqueue 2 "a" "a2" in
  let ta3 = enqueue 3 "a" "a3" in
  let tb1 = enqueue 4 "b" "b1" in
  let ts = [ ta1; ta2; ta3; tb1 ] in
  release 5;
  List.iter Thread.join (warm :: ts);
  let executed = List.rev !order in
  (match executed with
  | ("w", "warm") :: rest ->
      let pos =
        List.mapi (fun i x -> (i, x)) rest
        |> List.find_map (fun (i, (t, _)) ->
               if String.equal t "b" then Some i else None)
      in
      (match pos with
      | Some i ->
          Alcotest.(check bool)
            "tenant b served within the first two drained requests" true
            (i < 2)
      | None -> Alcotest.fail "tenant b never served")
  | _ -> Alcotest.fail "warm-up query not executed first");
  Server.stop srv

(* -- wall-clock smoke over real mediators -- *)

let replica ~sched n =
  let m =
    Mediator.create
      ~config:{ Mediator.Config.default with sched = Some sched }
      ~name:"serve-test" ()
  in
  Mediator.load_odl m
    {|w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute Short id;
        attribute String name;
        attribute Short salary; }|};
  for i = 0 to n - 1 do
    let name = Fmt.str "person%d" i in
    let db = Database.create ~name:"db" in
    ignore
      (Datagen.table_of db ~name Datagen.person_schema
         (Datagen.person_rows ~seed:(1000 + i) ~n:5));
    let source =
      Source.create ~id:name
        ~address:
          (Source.address ~host:(Fmt.str "site%d" i) ~db_name:"db"
             ~ip:"0.0.0.0" ())
        ~latency:{ Source.base_ms = 2.0; per_row_ms = 0.01; jitter = 0.0 }
        (Source.Relational db)
    in
    Mediator.register_source m ~name:(Fmt.str "r%d" i) source;
    Mediator.load_odl m
      (Fmt.str
         {|r%d := Repository(host="site%d", name="db", address="0.0.0.0");
           extent person%d of Person wrapper w0 repository r%d;|}
         i i i i)
  done;
  m

let test_wall_clock_smoke () =
  (* N concurrent sessions over per-worker mediator replicas sharing one
     wall scheduler: everything answers, nothing sheds, nothing errors. *)
  let sched = Scheduler.wall ~domains:2 () in
  let meds = Array.init 2 (fun _ -> replica ~sched 3) in
  let opts = { Mediator.Query_opts.default with timeout_ms = 5000.0 } in
  let worker i ~tenant:_ oql =
    match Mediator.query ~opts meds.(i) oql with
    | o ->
        Server.Answered
          { body = "ok"; elapsed_ms = o.Mediator.stats.Runtime.elapsed_ms }
    | exception e -> Server.Failed (Printexc.to_string e)
  in
  let srv = Server.create ~inflight:2 ~queue_bound:32 ~worker () in
  let n = 8 in
  let replies = Array.make n None in
  let threads =
    List.init n (fun k ->
        Thread.create
          (fun () ->
            replies.(k) <-
              Some
                (Server.submit srv
                   ~tenant:(if k mod 2 = 0 then "a" else "b")
                   "select x.name from x in person where x.salary > 10"))
          ())
  in
  List.iter Thread.join threads;
  Array.iter
    (function
      | Some (Server.Answered { elapsed_ms; _ }) ->
          Alcotest.(check bool) "positive wall service time" true
            (elapsed_ms > 0.0)
      | Some (Server.Failed msg) -> Alcotest.fail ("query failed: " ^ msg)
      | _ -> Alcotest.fail "expected every query answered")
    replies;
  let h = Server.health srv in
  Alcotest.(check int) "all completed" n h.Server.h_completed;
  Alcotest.(check int) "nothing shed" 0 h.Server.h_shed;
  Alcotest.(check int) "no errors" 0 h.Server.h_errors;
  Server.stop srv;
  Scheduler.shutdown sched

(* -- load generator -- *)

let test_loadgen_direct () =
  let worker _ ~tenant:_ oql =
    Server.Answered { body = oql; elapsed_ms = 0.1 }
  in
  let srv = Server.create ~inflight:4 ~queue_bound:64 ~worker () in
  let r =
    Loadgen.run ~seed:7
      ~tenants:[ "a"; "b" ]
      ~queries:[| "q1"; "q2"; "q3" |]
      ~rate:200.0 ~duration_s:0.2 (Loadgen.Direct srv)
  in
  Server.stop srv;
  Alcotest.(check int) "open loop sends rate*duration" 40 r.Loadgen.r_sent;
  Alcotest.(check int) "all completed" r.Loadgen.r_sent r.Loadgen.r_completed;
  Alcotest.(check int) "nothing shed" 0 r.Loadgen.r_shed;
  Alcotest.(check int) "no errors" 0 r.Loadgen.r_errors;
  Alcotest.(check bool) "throughput measured" true (r.Loadgen.r_qps > 0.0);
  Alcotest.(check bool) "percentiles ordered" true
    (r.Loadgen.r_p50_ms <= r.Loadgen.r_p99_ms
    && r.Loadgen.r_p99_ms <= r.Loadgen.r_p999_ms)

let test_loadgen_validation () =
  let worker _ ~tenant:_ oql =
    Server.Answered { body = oql; elapsed_ms = 0.0 }
  in
  let srv = Server.create ~inflight:1 ~worker () in
  Alcotest.check_raises "empty pool"
    (Invalid_argument "Loadgen.run: empty query pool") (fun () ->
      ignore
        (Loadgen.run ~queries:[||] ~rate:1.0 ~duration_s:0.1
           (Loadgen.Direct srv)));
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Loadgen.run: rate must be positive") (fun () ->
      ignore
        (Loadgen.run ~queries:[| "q" |] ~rate:0.0 ~duration_s:0.1
           (Loadgen.Direct srv)));
  Server.stop srv

let () =
  Alcotest.run "disco_serve"
    [
      ( "admission",
        [
          Alcotest.test_case "limit and shedding" `Quick test_admission_limit;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "stopped server fails submissions" `Quick
            test_stopped_server_fails;
        ] );
      ( "fairness",
        [ Alcotest.test_case "round-robin drain" `Quick test_fair_queueing ] );
      ( "wall-clock",
        [ Alcotest.test_case "concurrent sessions" `Quick test_wall_clock_smoke ] );
      ( "loadgen",
        [
          Alcotest.test_case "direct transport" `Quick test_loadgen_direct;
          Alcotest.test_case "validation" `Quick test_loadgen_validation;
        ] );
    ]
