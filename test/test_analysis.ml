(* Tests for the federation analyzer (lib/analysis):

   - golden DISCO-Axxx diagnostics, one pair of fixtures per code
     (present / absent after the fix the diagnostic suggests);
   - the W006 extension of the wrapper audit (unbacked index
     advertisements);
   - JSON determinism and the shared lint/analyze diagnostic schema;
   - doc/diagnostics.md staying in sync with the code registries;
   - the availability property: the analyzer's predicted unavailable
     set and residual query match what the live mediator actually
     degrades to under forced outages (ISSUE satellite 4). *)

module V = Disco_value.Value
module Schema = Disco_relation.Schema
module Database = Disco_relation.Database
module Registry = Disco_odl.Registry
module Odl_parser = Disco_odl.Odl_parser
module Otype = Disco_odl.Otype
module Eval = Disco_oql.Eval
module Expr = Disco_algebra.Expr
module Wrapper = Disco_wrapper.Wrapper
module Check = Disco_check.Check
module Catalog = Disco_catalog.Catalog
module Source = Disco_source.Source
module Schedule = Disco_source.Schedule
module Datagen = Disco_source.Datagen
module Mediator = Disco_core.Mediator
module Runtime = Disco_runtime.Runtime
module Analysis = Disco_analysis.Analysis

let check_value = Alcotest.testable V.pp V.equal

let index_of s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then -1 else if String.sub s i m = sub then i else go (i + 1)
  in
  go 0

let contains s sub = index_of s sub >= 0

let registry_of text =
  let r = Registry.create () in
  Odl_parser.load r text;
  r

let analyze ?queries text =
  let workload =
    Option.map (fun qs -> [ ("w.oql", String.concat "\n" qs) ]) queries
  in
  Analysis.analyze ?workload (registry_of text)

let diag_codes (r : Analysis.report) =
  List.map (fun (_, d) -> d.Check.d_code) r.Analysis.r_diags

let has_code code r = List.mem code (diag_codes r)

let check_code name code present r =
  Alcotest.(check bool)
    (Fmt.str "%s: %s %s in %s" name code
       (if present then "present" else "absent")
       (String.concat "," (diag_codes r)))
    present (has_code code r)

(* Three repositories, one wrapper, the paper's Person interface —
   extent declarations are appended per test. *)
let base_odl =
  {|
  r0 := Repository(host="h0", name="db", address="1");
  r1 := Repository(host="h1", name="db", address="2");
  r2 := Repository(host="h2", name="db", address="3");
  w0 := WrapperPostgres();
  interface Person (extent person) {
    attribute Short id;
    attribute String name;
    attribute Short salary;
  }
|}

(* -- corpus splitting -- *)

let test_queries_of_corpus () =
  let corpus =
    "-- a comment\n\
     select x from x in person0\n\
     \n\
     --@ directive: ignored\n\
     select x.name from x in person1\n"
  in
  let qs = Analysis.queries_of_corpus ~file:"w.oql" corpus in
  Alcotest.(check (list (pair string string)))
    "locations and text"
    [
      ("w.oql:2", "select x from x in person0");
      ("w.oql:5", "select x.name from x in person1");
    ]
    qs

(* -- A001: single points of failure, and replicas removing them -- *)

let test_spof_and_replica () =
  let queries = [ "select x.name from x in person0" ] in
  let fragile =
    analyze ~queries
      (base_odl ^ "extent person0 of Person wrapper w0 repository r0;")
  in
  check_code "fragile" "DISCO-A001" true fragile;
  Alcotest.(check (list string)) "r0 is a SPOF" [ "r0" ] fragile.Analysis.r_spofs;
  (* the fix the diagnostic suggests: declare a replica *)
  let replicated =
    analyze ~queries
      (base_odl ^ "extent person0 of Person wrapper w0 repository r0 replica r2;")
  in
  check_code "replicated" "DISCO-A001" false replicated;
  Alcotest.(check (list string))
    "no SPOFs once replicated" [] replicated.Analysis.r_spofs

let test_minimal_sources_and_class () =
  let r =
    analyze
      ~queries:
        [
          "select x.name from x in person0 where x.salary > 10";
          "select struct(n: x.name, s: y.salary) from x in person0, y in \
           person1 where x.id = y.id";
        ]
      (base_odl
     ^ {|extent person0 of Person wrapper w0 repository r0;
         extent person1 of Person wrapper w0 repository r1;|})
  in
  match r.Analysis.r_queries with
  | [ single; join ] ->
      Alcotest.(check (list string))
        "single-extent select contacts r0 only" [ "r0" ]
        single.Analysis.q_sources;
      Alcotest.(check string)
        "single-extent select pushes fully" "pushed"
        (Analysis.class_name single.Analysis.q_class);
      Alcotest.(check (list string))
        "cross-repository join contacts both" [ "r0"; "r1" ]
        join.Analysis.q_sources;
      Alcotest.(check string)
        "cross-repository join leaves mediator work" "mixed"
        (Analysis.class_name join.Analysis.q_class)
  | qs -> Alcotest.fail (Fmt.str "expected 2 query reports, got %d" (List.length qs))

(* -- A003: shard keys the workload never constrains -- *)

let shard_odl =
  base_odl ^ "extent emp of Person wrapper w0 sharded by id range (100) across r0 r1;"

let test_unconstrained_shard_key () =
  let scatter = analyze ~queries:[ "select x.name from x in emp" ] shard_odl in
  check_code "scatter" "DISCO-A003" true scatter;
  let pruned =
    analyze ~queries:[ "select x.name from x in emp where x.id = 7" ] shard_odl
  in
  check_code "pruned" "DISCO-A003" false pruned

(* -- A004: advertised index lookups no query filters on -- *)

let indexed_odl =
  base_odl
  ^ {|wIdx := WrapperIndexed(eq="salary");
      extent person0 of Person wrapper wIdx repository r0;|}

let test_unused_index_advertisement () =
  let unused =
    analyze ~queries:[ "select x from x in person0 where x.name = \"bob\"" ]
      indexed_odl
  in
  check_code "unused" "DISCO-A004" true unused;
  let used =
    analyze ~queries:[ "select x from x in person0 where x.salary = 10" ]
      indexed_odl
  in
  check_code "used" "DISCO-A004" false used

(* -- A005: type maps and views naming attributes the schema lacks -- *)

let test_schema_inconsistency () =
  let r =
    analyze
      (base_odl
     ^ {|extent person0 of Person wrapper w0 repository r0;
         extent legacy0 of Person wrapper w0 repository r1
           map ((legacy=legacy0),(salary=wage));
         define overpaid as select x.nope from x in person;|})
  in
  let a005 =
    List.filter (fun (_, d) -> d.Check.d_code = "DISCO-A005") r.Analysis.r_diags
  in
  Alcotest.(check int) "two schema inconsistencies" 2 (List.length a005);
  List.iter
    (fun (_, d) ->
      Alcotest.(check bool) "A005 is an error" true (d.Check.d_severity = Check.Error))
    a005;
  let paths = List.map (fun (_, d) -> d.Check.d_path) a005 in
  Alcotest.(check bool)
    "type map flagged" true
    (List.exists (fun p -> contains p "extent(legacy0)") paths);
  Alcotest.(check bool)
    "view flagged" true
    (List.exists (fun p -> contains p "view(overpaid)") paths)

(* -- A006: cache-key collisions between inequivalent submits -- *)

let bind v e = Expr.Map (e, Expr.Hstruct [ (v, Expr.Attr []) ])

let select_attr attr =
  Expr.Select (bind "x" (Expr.Get "person0"), Expr.Cmp (Expr.Eq, attr, Expr.Const (V.Int 5)))

let collision_resolve = function
  | "person0" ->
      Some
        (V.bag
           [
             V.strct [ ("id", V.Int 1); ("salary", V.Int 5) ];
             V.strct [ ("id", V.Int 2); ("salary", V.Int 7) ];
           ])
  | _ -> None

let test_cache_key_collision () =
  (* [x.salary] and the single path component ["x.salary"] print the
     same — same cache key — but resolve to different rows: a true
     collision no parsable corpus produces. *)
  let good = select_attr (Expr.Attr [ "x"; "salary" ]) in
  let evil = select_attr (Expr.Attr [ "x.salary" ]) in
  let ds =
    Analysis.collision_diags ~resolve:collision_resolve
      [ ("r0", good); ("r0", evil) ]
  in
  (match ds with
  | [ d ] ->
      Alcotest.(check string) "code" "DISCO-A006" d.Check.d_code;
      Alcotest.(check bool) "severity" true (d.Check.d_severity = Check.Error)
  | ds -> Alcotest.fail (Fmt.str "expected 1 collision, got %d" (List.length ds)));
  (* flipped comparisons normalize to the same tree: equivalent, silent *)
  let gt =
    Expr.Select
      ( bind "x" (Expr.Get "person0"),
        Expr.Cmp (Expr.Gt, Expr.Attr [ "x"; "salary" ], Expr.Const (V.Int 5)) )
  and lt =
    Expr.Select
      ( bind "x" (Expr.Get "person0"),
        Expr.Cmp (Expr.Lt, Expr.Const (V.Int 5), Expr.Attr [ "x"; "salary" ]) )
  in
  Alcotest.(check int)
    "flipped spellings are equivalent" 0
    (List.length
       (Analysis.collision_diags ~resolve:collision_resolve
          [ ("r0", gt); ("r0", lt) ]));
  (* distinct keys: no group, no diagnostic *)
  Alcotest.(check int)
    "different repositories never collide" 0
    (List.length
       (Analysis.collision_diags ~resolve:collision_resolve
          [ ("r0", good); ("r1", evil) ]))

(* -- W006: the wrapper audit rejects unbacked index advertisements -- *)

let test_w006_unbacked_index () =
  let w =
    match
      Wrapper.of_constructor_args "WrapperIndexed"
        [ ("eq", V.String "id"); ("range", V.String "nickname") ]
    with
    | Some w -> w
    | None -> Alcotest.fail "WrapperIndexed did not construct"
  in
  let attrs = [ ("id", Otype.TInt); ("name", Otype.TString) ] in
  let w006 ds =
    List.filter (fun d -> d.Check.d_code = "DISCO-W006") ds
  in
  (* no index declared anywhere: both advertisements are flagged *)
  let ds = w006 (Check.audit_wrapper ~extent:"person0" ~attrs w) in
  Alcotest.(check int) "both advertisements flagged" 2 (List.length ds);
  Alcotest.(check bool)
    "undeclared attribute named" true
    (List.exists (fun d -> contains d.Check.d_message "nickname") ds);
  (* an index on id: only the undeclared-attribute advertisement stays *)
  let ds =
    w006
      (Check.audit_wrapper ~indexed:(fun f -> f = "id") ~extent:"person0"
         ~attrs w)
  in
  Alcotest.(check int) "backed advertisement accepted" 1 (List.length ds);
  Alcotest.(check bool)
    "the survivor is the undeclared attribute" true
    (List.for_all (fun d -> contains d.Check.d_message "nickname") ds)

(* -- JSON determinism and the shared diagnostic schema -- *)

let fixture_odl =
  base_odl
  ^ {|extent person0 of Person wrapper w0 repository r0;
      extent emp of Person wrapper w0 sharded by id range (100) across r0 r1;|}

let fixture_queries =
  [ "select x.name from x in person0"; "select x.name from x in emp" ]

let test_json_deterministic () =
  let j1 = Analysis.json_of_report (analyze ~queries:fixture_queries fixture_odl)
  and j2 = Analysis.json_of_report (analyze ~queries:fixture_queries fixture_odl) in
  Alcotest.(check string) "independent runs render identically" j1 j2;
  (* the diagnostics array is the lint schema: same keys, same order *)
  Alcotest.(check bool) "diagnostics key present" true (contains j1 "\"diagnostics\"");
  Alcotest.(check bool) "lint schema fields" true
    (contains j1 "\"code\"" && contains j1 "\"severity\"" && contains j1 "\"message\"")

let test_code_registries_disjoint () =
  let codes =
    List.map (fun (c, _, _) -> c) (Check.code_registry @ Analysis.code_registry)
  in
  Alcotest.(check int)
    "no code is defined twice"
    (List.length codes)
    (List.length (List.sort_uniq String.compare codes))

(* doc/diagnostics.md is generated; the committed copy must match the
   registries (regenerate with `discoctl analyze --doc`). The dune
   stanza declares the dependency, so the relative path resolves inside
   the build sandbox. *)
let test_doc_in_sync () =
  (* `dune runtest` runs from the stanza dir, `dune exec` from the
     workspace root — accept either *)
  let path =
    if Sys.file_exists "../doc/diagnostics.md" then "../doc/diagnostics.md"
    else "doc/diagnostics.md"
  in
  let ic = open_in path in
  let n = in_channel_length ic in
  let committed = really_input_string ic n in
  close_in ic;
  Alcotest.(check string)
    "doc/diagnostics.md regenerated" (Analysis.diagnostics_doc ()) committed

(* -- publish: SPOFs become catalog entries -- *)

let test_publish () =
  let r =
    analyze
      ~queries:[ "select x.name from x in person0" ]
      (base_odl ^ "extent person0 of Person wrapper w0 repository r0;")
  in
  let cat = Catalog.create ~name:"cat" in
  Analysis.publish cat ~owner:"m0" r;
  match Catalog.lookup cat Catalog.Repository "r0" with
  | None -> Alcotest.fail "SPOF not published"
  | Some e ->
      Alcotest.(check (option string))
        "marked fragile" (Some "true")
        (List.assoc_opt "spof" e.Catalog.e_info);
      Alcotest.(check (option string))
        "affected query count" (Some "1")
        (List.assoc_opt "affected_queries" e.Catalog.e_info)

(* -- satellite 4: predictions vs the live runtime -- *)

(* Three primaries holding person0..person2; with [replicate], a fourth
   source r3 mirrors every table and each extent declares it as replica.
   Sources in [down] never answer. Same data as the analyzer's ground
   truth below. *)
let truth_rows i =
  Datagen.person_rows ~seed:(1000 + i) ~n:8
  |> List.map (Schema.row_to_struct Datagen.person_schema)

let truth_resolve = function
  | "person0" -> Some (V.bag (truth_rows 0))
  | "person1" -> Some (V.bag (truth_rows 1))
  | "person2" -> Some (V.bag (truth_rows 2))
  | "person" -> Some (V.bag (truth_rows 0 @ truth_rows 1 @ truth_rows 2))
  | _ -> None

let prop_federation ?(replicate = false) ?(down = []) () =
  let m = Mediator.create ~name:"anprop" () in
  Mediator.load_odl m
    {|w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute Short id;
        attribute String name;
        attribute Short salary; }|};
  let mirror = Database.create ~name:"db" in
  for i = 0 to 2 do
    let rows = Datagen.person_rows ~seed:(1000 + i) ~n:8 in
    let db = Database.create ~name:"db" in
    ignore
      (Datagen.table_of db
         ~name:(Fmt.str "person%d" i)
         Datagen.person_schema rows);
    if replicate then
      ignore
        (Datagen.table_of mirror
           ~name:(Fmt.str "person%d" i)
           Datagen.person_schema rows);
    let schedule =
      if List.mem i down then Schedule.always_down else Schedule.always_up
    in
    Mediator.register_source m
      ~name:(Fmt.str "r%d" i)
      (Source.create ~id:(Fmt.str "p%d" i)
         ~address:
           (Source.address ~host:(Fmt.str "h%d" i) ~db_name:"db" ~ip:"0" ())
         ~schedule (Source.Relational db));
    Mediator.load_odl m
      (Fmt.str {|r%d := Repository(host="h%d", name="db", address="0");|} i i)
  done;
  if replicate then (
    Mediator.register_source m ~name:"r3"
      (Source.create ~id:"mirror"
         ~address:(Source.address ~host:"h3" ~db_name:"db" ~ip:"0" ())
         (Source.Relational mirror));
    Mediator.load_odl m
      {|r3 := Repository(host="h3", name="db", address="0");|});
  for i = 0 to 2 do
    Mediator.load_odl m
      (Fmt.str "extent person%d of Person wrapper w0 repository r%d%s;" i i
         (if replicate then " replica r3" else ""))
  done;
  m

let down_pred down r = List.mem r (List.map (Fmt.str "r%d") down)

let bag_eq a b =
  let sorted v = List.sort V.compare (V.elements v) in
  List.equal V.equal (sorted a) (sorted b)

(* Random single-shape selections over the implicit extent: every query
   fans out to all three primaries, so any outage bites. *)
let query_gen =
  QCheck.Gen.(
    map3
      (fun attrib op threshold ->
        Fmt.str "select x.name from x in person where x.%s %s %d" attrib op
          threshold)
      (oneofl [ "salary"; "id" ])
      (oneofl [ ">"; "<"; ">="; "<="; "="; "!=" ])
      (int_range 0 400))

let outage_gen =
  QCheck.Gen.(pair query_gen (list_size (int_range 0 3) (int_range 0 2)))

let outage_arb =
  QCheck.make
    ~print:(fun (q, down) ->
      Fmt.str "%s with down={%s}" q
        (String.concat "," (List.map string_of_int down)))
    outage_gen

let prop_unavailable_matches_runtime =
  QCheck.Test.make ~name:"predicted unavailable set = runtime's" ~count:40
    outage_arb
    (fun (q, down) ->
      let down = List.sort_uniq Int.compare down in
      let m = prop_federation ~down () in
      let reg = Mediator.registry m in
      match Analysis.plan_logical reg q with
      | Error reason -> QCheck.Test.fail_reportf "planning failed: %s" reason
      | Ok logical -> (
          let predicted =
            Analysis.predict_unavailable reg ~down:(down_pred down) logical
          in
          match (Mediator.query m q).Mediator.answer with
          | Mediator.Complete _ -> predicted = []
          | Mediator.Partial p ->
              List.sort_uniq String.compare p.Runtime.unavailable = predicted
          | Mediator.Unavailable _ -> false))

let prop_residual_bag_equals_runtime =
  QCheck.Test.make
    ~name:"predicted residual bag-equals the runtime's partial answer"
    ~count:40
    (QCheck.make
       ~print:(fun (q, down) ->
         Fmt.str "%s with down={%s}" q
           (String.concat "," (List.map string_of_int down)))
       QCheck.Gen.(pair query_gen (list_size (int_range 1 3) (int_range 0 2))))
    (fun (q, down) ->
      let down = List.sort_uniq Int.compare down in
      let m = prop_federation ~down () in
      let reg = Mediator.registry m in
      match Analysis.plan_logical reg q with
      | Error reason -> QCheck.Test.fail_reportf "planning failed: %s" reason
      | Ok logical -> (
          let predicted =
            Analysis.predicted_residual ~resolve:truth_resolve
              ~down:(down_pred down) reg logical
          in
          let outcome = Mediator.query m q in
          match (predicted, outcome.Mediator.answer) with
          | None, Mediator.Complete _ -> true
          | Some predicted_text, (Mediator.Partial _ as actual) ->
              (* both residuals are self-contained queries; evaluated
                 with every source's ground-truth data (simulating
                 recovery) they must agree with each other and with the
                 full answer *)
              let env = Eval.env ~resolve:truth_resolve () in
              let vp = Eval.eval_string env predicted_text
              and va = Eval.eval_string env (Mediator.answer_oql actual)
              and vfull = Eval.eval_string env q in
              bag_eq vp va && bag_eq vp vfull
          | None, _ -> QCheck.Test.fail_report "runtime degraded, analyzer did not"
          | Some _, _ -> QCheck.Test.fail_report "analyzer degraded, runtime did not"))

(* Replica-awareness, deterministically: with a mirror covering every
   extent, losing one primary must be predicted — and observed — as
   harmless; losing the mirror too restores the outage. *)
let test_replica_failover_predicted () =
  let m = prop_federation ~replicate:true ~down:[ 0 ] () in
  let reg = Mediator.registry m in
  let q = "select x.name from x in person where x.salary > 100" in
  let logical =
    match Analysis.plan_logical reg q with
    | Ok l -> l
    | Error reason -> Alcotest.fail ("planning failed: " ^ reason)
  in
  Alcotest.(check (list string))
    "mirror covers the lost primary" []
    (Analysis.predict_unavailable reg ~down:(fun r -> r = "r0") logical);
  (match (Mediator.query m q).Mediator.answer with
  | Mediator.Complete _ -> ()
  | _ -> Alcotest.fail "runtime should fail over to the mirror");
  (* mirror down too: r0's fragment is really gone now *)
  (match Mediator.find_source m "r3" with
  | Some src -> Source.set_schedule src Schedule.always_down
  | None -> Alcotest.fail "mirror source missing");
  Alcotest.(check (list string))
    "no replica left" [ "r0" ]
    (Analysis.predict_unavailable reg
       ~down:(fun r -> r = "r0" || r = "r3")
       logical);
  match (Mediator.query m q).Mediator.answer with
  | Mediator.Partial p ->
      Alcotest.(check (list string))
        "runtime agrees" [ "r0" ]
        (List.sort_uniq String.compare p.Runtime.unavailable)
  | _ -> Alcotest.fail "expected a partial answer"

(* A complete answer sanity check: with everything up, the mediator's
   answer bag-equals the reference evaluation of the ground truth. *)
let test_ground_truth_agrees () =
  let m = prop_federation () in
  let q = "select x.name from x in person where x.salary > 100" in
  match (Mediator.query m q).Mediator.answer with
  | Mediator.Complete v ->
      let expected =
        Eval.eval_string (Eval.env ~resolve:truth_resolve ()) q
      in
      Alcotest.(check bool) "bag-equal" true (bag_eq v expected);
      Alcotest.check check_value "and in fact equal" expected v
  | _ -> Alcotest.fail "expected a complete answer"

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "analysis"
    [
      ("corpus", [ tc "queries_of_corpus" test_queries_of_corpus ]);
      ( "availability",
        [
          tc "SPOF and replica (A001)" test_spof_and_replica;
          tc "minimal sources and class" test_minimal_sources_and_class;
        ] );
      ( "coverage",
        [
          tc "unconstrained shard key (A003)" test_unconstrained_shard_key;
          tc "unused index advertisement (A004)" test_unused_index_advertisement;
          tc "schema inconsistency (A005)" test_schema_inconsistency;
          tc "cache-key collision (A006)" test_cache_key_collision;
          tc "unbacked index audit (W006)" test_w006_unbacked_index;
        ] );
      ( "rendering",
        [
          tc "JSON deterministic" test_json_deterministic;
          tc "code registries disjoint" test_code_registries_disjoint;
          tc "doc/diagnostics.md in sync" test_doc_in_sync;
          tc "publish SPOFs" test_publish;
        ] );
      ( "runtime-agreement",
        [
          QCheck_alcotest.to_alcotest prop_unavailable_matches_runtime;
          QCheck_alcotest.to_alcotest prop_residual_bag_equals_runtime;
          tc "replica failover predicted" test_replica_failover_predicted;
          tc "ground truth agrees" test_ground_truth_agrees;
        ] );
    ]
