(* Edge-case tests for the shared tokenizer and token stream. *)

module Lexer = Disco_lex.Lexer
module Stream = Disco_lex.Lexer.Stream

let puncts = [ "<="; "<"; ":="; ":"; "("; ")"; ";"; "." ]

let kinds input = List.map fst (Lexer.tokenize ~puncts input)

let test_numbers () =
  (match kinds "42 3.5 1e6 2.5e-3 7E+2 10" with
  | [ Lexer.Int 42; Lexer.Float 3.5; Lexer.Float 1e6; Lexer.Float 2.5e-3;
      Lexer.Float 700.0; Lexer.Int 10 ] -> ()
  | _ -> Alcotest.fail "number forms");
  (* a digit followed by a bare 'e' is a number then an identifier *)
  match kinds "12e" with
  | [ Lexer.Int 12; Lexer.Ident "e" ] -> ()
  | _ -> Alcotest.fail "trailing e"

let test_longest_punct_first () =
  (match kinds "a<=b<c" with
  | [ Lexer.Ident "a"; Lexer.Punct "<="; Lexer.Ident "b"; Lexer.Punct "<";
      Lexer.Ident "c" ] -> ()
  | _ -> Alcotest.fail "<= vs <");
  match kinds "x := 1 : 2" with
  | [ Lexer.Ident "x"; Lexer.Punct ":="; Lexer.Int 1; Lexer.Punct ":";
      Lexer.Int 2 ] -> ()
  | _ -> Alcotest.fail ":= vs :"

let test_comments () =
  (match kinds "a // one\nb -- two\nc /* three\nlines */ d" with
  | [ Lexer.Ident "a"; Lexer.Ident "b"; Lexer.Ident "c"; Lexer.Ident "d" ] -> ()
  | _ -> Alcotest.fail "comment forms");
  Alcotest.check_raises "unterminated block"
    (Lexer.Error ("unterminated block comment", 5)) (fun () ->
      ignore (kinds "a /* b"))

let test_strings () =
  (match kinds {|"a\"b" 'c''d' "tab\there"|} with
  | [ Lexer.Str {|a"b|}; Lexer.Str "c"; Lexer.Str "d"; Lexer.Str "tab\there" ] ->
      ()
  | _ -> Alcotest.fail "string escapes");
  match kinds {|""|} with
  | [ Lexer.Str "" ] -> ()
  | _ -> Alcotest.fail "empty string"

let test_stream_navigation () =
  let s = Stream.of_string ~puncts "a ( b ) ;" in
  Alcotest.(check bool) "peek" true (Stream.peek s = Some (Lexer.Ident "a"));
  Alcotest.(check bool) "peek2" true (Stream.peek2 s = Some (Lexer.Punct "("));
  Alcotest.(check string) "ident" "a" (Stream.ident s);
  let saved = Stream.save s in
  Stream.eat_punct s "(";
  Alcotest.(check string) "b" "b" (Stream.ident s);
  Stream.restore s saved;
  Alcotest.(check bool) "restored" true (Stream.peek s = Some (Lexer.Punct "("));
  Stream.eat_punct s "(";
  ignore (Stream.ident s);
  Stream.eat_punct s ")";
  Alcotest.(check bool) "not at end" false (Stream.at_end s);
  Stream.eat_punct s ";";
  Alcotest.(check bool) "at end" true (Stream.at_end s);
  Stream.expect_end s

let test_stream_errors () =
  let s = Stream.of_string ~puncts "a b" in
  ignore (Stream.ident s);
  (try
     Stream.eat_punct s "(";
     Alcotest.fail "expected error"
   with Lexer.Error (m, pos) ->
     Alcotest.(check bool) "names expectation" true (String.length m > 0);
     Alcotest.(check int) "position of b" 2 pos);
  ignore (Stream.ident s);
  try
    ignore (Stream.next s);
    Alcotest.fail "expected end error"
  with Lexer.Error _ -> ()

let test_keywords_case_insensitive () =
  let s = Stream.of_string ~puncts "SELECT Select select" in
  Stream.eat_kw s "select";
  Alcotest.(check bool) "try" true (Stream.try_kw s "SELECT");
  Alcotest.(check bool) "peek" true (Stream.peek_kw s "SeLeCt")

let prop_offsets_monotone =
  QCheck.Test.make ~name:"token offsets are strictly increasing" ~count:300
    QCheck.(
      make
        ~print:(fun s -> s)
        Gen.(
          string_size ~gen:(oneofl [ 'a'; '1'; ' '; '('; ')'; '.'; ';' ])
            (int_range 0 30)))
    (fun input ->
      match Lexer.tokenize ~puncts input with
      | toks -> (
          let offsets = List.map snd toks in
          match offsets with
          | [] -> true
          | _ :: rest -> List.for_all2 ( < ) offsets (rest @ [ max_int ]))
      | exception Lexer.Error _ -> true)

let () =
  Alcotest.run "disco_lex"
    [
      ( "lexer",
        [
          Alcotest.test_case "numbers incl. exponents" `Quick test_numbers;
          Alcotest.test_case "longest punct wins" `Quick test_longest_punct_first;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "strings" `Quick test_strings;
        ] );
      ( "stream",
        [
          Alcotest.test_case "navigation and backtracking" `Quick
            test_stream_navigation;
          Alcotest.test_case "errors with positions" `Quick test_stream_errors;
          Alcotest.test_case "keywords case-insensitive" `Quick
            test_keywords_case_insensitive;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_offsets_monotone ]);
    ]
