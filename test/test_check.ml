(* Tests for the static verifier (lib/check): golden diagnostics per
   DISCO code, the optimizer and runtime Enforce gates, the wrapper
   conformance audit, capability-grammar edge cases, and the JSON
   diagnostic rendering. *)

module V = Disco_value.Value
module Source = Disco_source.Source
module Clock = Disco_source.Clock
module Datagen = Disco_source.Datagen
module Registry = Disco_odl.Registry
module Odl_parser = Disco_odl.Odl_parser
module Otype = Disco_odl.Otype
module Typemap = Disco_odl.Typemap
module Expr = Disco_algebra.Expr
module Rules = Disco_algebra.Rules
module Cost_model = Disco_cost.Cost_model
module Plan = Disco_physical.Plan
module Optimizer = Disco_optimizer.Optimizer
module Runtime = Disco_runtime.Runtime
module Wrapper = Disco_wrapper.Wrapper
module Grammar = Disco_wrapper.Grammar
module Check = Disco_check.Check
module Mediator = Disco_core.Mediator
module Metrics = Disco_obs.Metrics

let addr host = Source.address ~host ~db_name:"db" ~ip:"0.0.0.0" ()

(* first index of [sub] in [s], or -1 *)
let index_of s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then -1 else if String.sub s i m = sub then i else go (i + 1)
  in
  go 0

let contains s sub = index_of s sub >= 0

let schema =
  {|
  r0 := Repository(host="h0", name="db", address="1");
  r1 := Repository(host="h1", name="db", address="2");
  w0 := WrapperPostgres();
  w1 := WrapperScan();
  wX := WrapperBogus();
  interface Person (extent person) {
    attribute Short id;
    attribute String name;
    attribute Short salary;
  }
  extent person0 of Person wrapper w0 repository r0;
  extent person1 of Person wrapper w1 repository r1;
  extent broken0 of Person wrapper wX repository r0;
|}

let registry () =
  let r = Registry.create () in
  Odl_parser.load r schema;
  r

let checker () = Check.of_registry (registry ())
let codes ds = List.map (fun d -> d.Check.d_code) ds

let check_has c ds =
  Alcotest.(check bool)
    (c ^ " present in " ^ String.concat "," (codes ds))
    true
    (List.mem c (codes ds))

let bind v e = Expr.Map (e, Expr.Hstruct [ (v, Expr.Attr []) ])
let const_i n = Expr.Const (V.Int n)
let get0 = Expr.Get "person0"

(* -- golden diagnostics, one per code -- *)

let test_clean_tree () =
  let e =
    Expr.Map
      ( Expr.Select
          (bind "x" get0, Expr.Cmp (Expr.Gt, Expr.Attr [ "x"; "salary" ], const_i 10)),
        Expr.Hscalar (Expr.Attr [ "x"; "name" ]) )
  in
  Alcotest.(check (list string)) "no diagnostics" [] (codes (Check.check_expr (checker ()) e))

let test_e001_unknown_collection () =
  check_has "DISCO-E001" (Check.check_expr (checker ()) (Expr.Get "nosuch"))

let test_e002_unresolved_attribute () =
  let e =
    Expr.Select (get0, Expr.Cmp (Expr.Eq, Expr.Attr [ "nosuch" ], const_i 1))
  in
  check_has "DISCO-E002" (Check.check_expr (checker ()) e)

let test_e003_type_mismatch () =
  let e =
    Expr.Select (get0, Expr.Cmp (Expr.Gt, Expr.Attr [ "name" ], const_i 3))
  in
  check_has "DISCO-E003" (Check.check_expr (checker ()) e)

let test_e004_nonconstant_membership () =
  let e = Expr.Select (get0, Expr.Member (Expr.Attr [ "id" ], V.Int 3)) in
  check_has "DISCO-E004" (Check.check_expr (checker ()) e)

let test_e005_grammar_refusal () =
  (* person1 is behind a scan-only wrapper: project must not be pushed *)
  let e = Expr.Submit ("r1", Expr.Project (Expr.Get "person1", [ "name" ])) in
  check_has "DISCO-E005" (Check.check_expr (checker ()) e)

let test_e005_wrapper_span () =
  let e =
    Expr.Submit
      ( "r0",
        Expr.Join
          ( bind "x" get0,
            bind "y" (Expr.Get "person1"),
            [ ([ "x"; "id" ], [ "y"; "id" ]) ] ) )
  in
  check_has "DISCO-E005" (Check.check_expr (checker ()) e)

let test_e006_not_decompilable () =
  (* a join over raw elements, outside the binding-struct discipline *)
  let e = Expr.Join (get0, get0, [ ([ "id" ], [ "id" ]) ]) in
  check_has "DISCO-E006" (Check.check_expr (checker ()) e)

let test_e007_unknown_repository () =
  check_has "DISCO-E007"
    (Check.check_plan (checker ()) (Plan.Exec ("nowhere", get0)));
  (* person0 is bound to r0, not r1 *)
  check_has "DISCO-E007" (Check.check_plan (checker ()) (Plan.Exec ("r1", get0)))

let test_e008_empty_join_keys () =
  let p =
    Plan.Hash_join (Plan.Mk_data (V.bag []), Plan.Mk_data (V.bag []), [])
  in
  check_has "DISCO-E008" (Check.check_plan (checker ()) p)

let test_e009_binding_overlap () =
  let e =
    Expr.Join
      (bind "x" get0, bind "x" get0, [ ([ "x"; "id" ], [ "x"; "id" ]) ])
  in
  check_has "DISCO-E009" (Check.check_expr (checker ()) e)

let test_e010_unresolvable_wrapper () =
  let e = Expr.Submit ("r0", Expr.Get "broken0") in
  check_has "DISCO-E010" (Check.check_expr (checker ()) e)

let test_w001_union_drift () =
  let e = Expr.Union [ get0; Expr.Data (V.bag [ V.Int 1 ]) ] in
  check_has "DISCO-W001" (Check.check_expr (checker ()) e)

let test_w003_roundtrip_drift () =
  (* a right-deep join tree recompiles to the canonical left-deep form *)
  let e =
    Expr.Join
      ( bind "x" get0,
        Expr.Join
          ( bind "y" get0,
            bind "z" get0,
            [ ([ "y"; "id" ], [ "z"; "id" ]) ] ),
        [ ([ "x"; "id" ], [ "y"; "id" ]) ] )
  in
  check_has "DISCO-W003" (Check.check_expr (checker ()) e)

(* -- the optimizer gate -- *)

let test_optimizer_enforce_raises () =
  let located = Expr.Submit ("r1", Expr.Project (Expr.Get "person1", [ "name" ])) in
  try
    ignore
      (Optimizer.optimize
         ~check:(checker (), Check.Enforce)
         ~can_push:Rules.push_none ~cost:(Cost_model.create ()) located);
    Alcotest.fail "expected Check_error"
  with Check.Check_error ds -> check_has "DISCO-E005" ds

let test_optimizer_warn_counts () =
  let metrics = Metrics.create () in
  let located = Expr.Submit ("r1", Expr.Project (Expr.Get "person1", [ "name" ])) in
  ignore
    (Optimizer.optimize ~metrics
       ~check:(checker (), Check.Warn)
       ~can_push:Rules.push_none ~cost:(Cost_model.create ()) located);
  Alcotest.(check bool)
    "violations counted" true
    (Metrics.find_counter metrics "check.violations" > 0)

(* -- the runtime gate: a capability-violating plan is refused before
   anything reaches a source -- *)

let test_runtime_enforce_refuses () =
  let clock = Clock.create () in
  let cost = Cost_model.create () in
  let db = Datagen.person_db ~seed:0 ~name:"person0" ~n:5 in
  let source = Source.create ~id:"s" ~address:(addr "h") (Source.Relational db) in
  let binding =
    {
      Runtime.b_extent = "person0";
      b_repo = "r0";
      b_source = source;
      b_replicas = [];
      b_wrapper = Wrapper.scan_wrapper ();
      b_map = Typemap.identity;
      b_check = None;
    }
  in
  let env =
    Runtime.env (Runtime.Config.make ~check:Check.Enforce ~clock ~cost ()) [ binding ]
  in
  let plan = Plan.Exec ("r0", Expr.Project (get0, [ "name" ])) in
  (try
     ignore (Runtime.execute env plan);
     Alcotest.fail "expected Check_error"
   with Check.Check_error ds -> check_has "DISCO-E005" ds);
  Alcotest.(check int)
    "source untouched" 0
    (Source.stats source).Source.calls_answered;
  Alcotest.(check (float 0.0)) "clock unchanged" 0.0 (Clock.now clock)

(* -- mediator integration under Enforce -- *)

let person_schema_odl w0 w1 =
  Fmt.str
    {|
    r0 := Repository(host="h0", name="db", address="1");
    r1 := Repository(host="h1", name="db", address="2");
    w0 := %s();
    w1 := %s();
    interface Person (extent person) {
      attribute Short id;
      attribute String name;
      attribute Short salary; }
    extent person0 of Person wrapper w0 repository r0;
    extent person1 of Person wrapper w1 repository r1;
  |}
    w0 w1

let mk_mediator ?(metrics = Metrics.create ()) ~w0 ~w1 () =
  let config =
    { Mediator.Config.default with check = Check.Enforce; metrics }
  in
  let m = Mediator.create ~config ~name:"t" () in
  let s0 =
    Source.create ~id:"s0" ~address:(addr "h0")
      (Source.Relational (Datagen.person_db ~seed:0 ~name:"person0" ~n:8))
  in
  let s1 =
    Source.create ~id:"s1" ~address:(addr "h1")
      (Source.Relational (Datagen.person_db ~seed:1 ~name:"person1" ~n:8))
  in
  Mediator.register_source m ~name:"r0" s0;
  Mediator.register_source m ~name:"r1" s1;
  Mediator.load_odl m (person_schema_odl w0 w1);
  m

let query_pool =
  [|
    "select x.name from x in person where x.salary > 10";
    "select x from x in person1";
    "select struct(a: x.name, b: y.name) from x in person0, y in person1 \
     where x.name = y.name";
    "select distinct x.name from x in person";
    "select struct(n: x.name, s: x.salary * 2) from x in person0 where \
     x.name like \"%a%\"";
    "select x.name from x in person where x.salary > 10 and x.salary < 100";
  |]

let test_mediator_enforce_clean () =
  let metrics = Metrics.create () in
  let m = mk_mediator ~metrics ~w0:"WrapperPostgres" ~w1:"WrapperScan" () in
  Array.iter
    (fun q ->
      match (Mediator.query m q).Mediator.answer with
      | Mediator.Complete _ -> ()
      | _ -> Alcotest.fail ("not complete: " ^ q))
    query_pool;
  Alcotest.(check int)
    "no violations" 0
    (Metrics.find_counter metrics "check.violations")

let wrappers = [| "WrapperPostgres"; "WrapperSelect"; "WrapperScan" |]

let prop_enforce_random_federations =
  QCheck.Test.make ~count:15
    ~name:"every optimized plan passes the verifier under Enforce"
    QCheck.(triple (int_bound 2) (int_bound 2) (int_bound 5))
    (fun (w0, w1, qi) ->
      let m = mk_mediator ~w0:wrappers.(w0) ~w1:wrappers.(w1) () in
      match (Mediator.query m query_pool.(qi)).Mediator.answer with
      | Mediator.Complete _ -> true
      | _ -> false)

(* -- the wrapper conformance audit -- *)

let person_attrs =
  [ ("id", Otype.TInt); ("name", Otype.TString); ("salary", Otype.TInt) ]

let test_audit_sql_clean () =
  let ds =
    Check.audit_wrapper ~extent:"person0" ~attrs:person_attrs
      (Wrapper.sql_wrapper ())
  in
  Alcotest.(check (list string)) "sql audit clean" [] (codes ds)

let test_audit_scan_clean () =
  let ds =
    Check.audit_wrapper ~extent:"person0" ~attrs:person_attrs
      (Wrapper.scan_wrapper ())
  in
  Alcotest.(check (list string)) "scan audit clean" [] (codes ds)

let test_audit_kv_overclaims () =
  (* the key-value grammar advertises select(ATTRIBUTE = CONST, ...) for
     any attribute, but the wrapper only serves lookups on "key" *)
  let tbl = Hashtbl.create 4 in
  Hashtbl.replace tbl "alpha"
    (V.Struct [ ("key", V.String "alpha"); ("value", V.String "v") ]);
  let src = Source.create ~id:"kv" ~address:(addr "kv") (Source.Key_value tbl) in
  let ds =
    Check.audit_wrapper ~source:src ~extent:"kv0"
      ~attrs:[ ("key", Otype.TString); ("value", Otype.TString) ]
      (Wrapper.kv_wrapper ())
  in
  check_has "DISCO-W002" ds

(* -- capability-grammar edge cases -- *)

let test_grammar_empty_production () =
  let g = Grammar.parse "a :- b c\nb :-\nc :- get OPEN SOURCE CLOSE" in
  Alcotest.(check bool) "nullable prefix" true (Grammar.accepts g (Expr.Get "s"));
  let g0 = Grammar.parse "a :-" in
  Alcotest.(check bool) "empty sentence" true (Grammar.derives g0 [])

let test_grammar_distinct_over_union () =
  let g =
    Grammar.parse
      "a :- distinct OPEN u CLOSE\n\
       u :- union OPEN g COMMA g CLOSE\n\
       g :- get OPEN SOURCE CLOSE"
  in
  Alcotest.(check bool)
    "distinct over union accepted" true
    (Grammar.accepts g (Expr.Distinct (Expr.Union [ Expr.Get "s"; Expr.Get "t" ])));
  Alcotest.(check bool)
    "bare union rejected" false
    (Grammar.accepts g (Expr.Union [ Expr.Get "s"; Expr.Get "t" ]))

let test_grammar_unknown_rhs_rejected () =
  try
    ignore (Grammar.parse "a :- foo");
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument msg ->
    Alcotest.(check bool) "names the symbol" true (contains msg "foo")

(* -- JSON rendering: stable (file, code, path, message) ordering -- *)

let test_json_ordering () =
  let d code path =
    { Check.d_code = code; d_severity = Check.Error; d_path = path; d_message = "m" }
  in
  let j =
    Check.json_of_diags
      [
        ("b.oql", d "DISCO-E002" "q");
        ("a.oql", d "DISCO-E001" "q");
        ("a.oql", d "DISCO-E001" "p");
      ]
  in
  Alcotest.(check bool) "a before b" true (index_of j "a.oql" < index_of j "b.oql");
  Alcotest.(check bool)
    "path p before path q" true
    (index_of j "\"path\":\"p\"" < index_of j "\"path\":\"q\"");
  Alcotest.(check bool) "escaped fields" true (contains j "\"severity\":\"error\"")

let () =
  Alcotest.run "check"
    [
      ( "golden",
        [
          Alcotest.test_case "clean tree" `Quick test_clean_tree;
          Alcotest.test_case "E001 unknown collection" `Quick
            test_e001_unknown_collection;
          Alcotest.test_case "E002 unresolved attribute" `Quick
            test_e002_unresolved_attribute;
          Alcotest.test_case "E003 type mismatch" `Quick test_e003_type_mismatch;
          Alcotest.test_case "E004 non-constant membership" `Quick
            test_e004_nonconstant_membership;
          Alcotest.test_case "E005 grammar refusal" `Quick
            test_e005_grammar_refusal;
          Alcotest.test_case "E005 wrapper span" `Quick test_e005_wrapper_span;
          Alcotest.test_case "E006 not decompilable" `Quick
            test_e006_not_decompilable;
          Alcotest.test_case "E007 unknown repository" `Quick
            test_e007_unknown_repository;
          Alcotest.test_case "E008 empty join keys" `Quick
            test_e008_empty_join_keys;
          Alcotest.test_case "E009 binding overlap" `Quick
            test_e009_binding_overlap;
          Alcotest.test_case "E010 unresolvable wrapper" `Quick
            test_e010_unresolvable_wrapper;
          Alcotest.test_case "W001 union drift" `Quick test_w001_union_drift;
          Alcotest.test_case "W003 round-trip drift" `Quick
            test_w003_roundtrip_drift;
        ] );
      ( "gates",
        [
          Alcotest.test_case "optimizer Enforce raises" `Quick
            test_optimizer_enforce_raises;
          Alcotest.test_case "optimizer Warn counts" `Quick
            test_optimizer_warn_counts;
          Alcotest.test_case "runtime Enforce refuses before execution" `Quick
            test_runtime_enforce_refuses;
          Alcotest.test_case "mediator Enforce clean corpus" `Quick
            test_mediator_enforce_clean;
          QCheck_alcotest.to_alcotest prop_enforce_random_federations;
        ] );
      ( "audit",
        [
          Alcotest.test_case "sql wrapper audit clean" `Quick
            test_audit_sql_clean;
          Alcotest.test_case "scan wrapper audit clean" `Quick
            test_audit_scan_clean;
          Alcotest.test_case "kv wrapper over-claims" `Quick
            test_audit_kv_overclaims;
        ] );
      ( "grammar",
        [
          Alcotest.test_case "empty productions" `Quick
            test_grammar_empty_production;
          Alcotest.test_case "distinct over union" `Quick
            test_grammar_distinct_over_union;
          Alcotest.test_case "unknown rhs rejected" `Quick
            test_grammar_unknown_rhs_rejected;
        ] );
      ("json", [ Alcotest.test_case "stable ordering" `Quick test_json_ordering ]);
    ]
