(* Tests for lib/shard and its integration through the registry and
   mediator:

   - placement determinism and the consistent-hash stability property
     (adding a shard moves keys only onto the new shard);
   - range_index / admits pruning logic, including the conservative
     incomparable cases;
   - ODL 'sharded by' declarations: child auto-registration, structural
     validation errors, cascade removal;
   - the scatter-gather dedup regression: a hash-sharded extent whose
     rebalance window double-covers a key returns the tuple once, while
     a range-sharded extent (which cannot double-cover) keeps plain
     union semantics;
   - a pin: with no sharded extents declared, the seed federation's
     stats are reproduced bit-for-bit. *)

module V = Disco_value.Value
module Shard = Disco_shard.Shard
module Expr = Disco_algebra.Expr
module Plan = Disco_physical.Plan
module Shard_prune = Disco_optimizer.Shard_prune
module Registry = Disco_odl.Registry
module Odl_parser = Disco_odl.Odl_parser
module Database = Disco_relation.Database
module Datagen = Disco_source.Datagen
module Source = Disco_source.Source
module Mediator = Disco_core.Mediator
module Runtime = Disco_runtime.Runtime

let partition ?scheme n =
  let p_scheme =
    match scheme with
    | Some s -> s
    | None -> Shard.Hash { vnodes = Shard.default_vnodes }
  in
  {
    Shard.p_key = "id";
    p_scheme;
    p_shards =
      List.init n (fun k ->
          { Shard.s_repository = Fmt.str "r%d" k; s_wrapper = None });
  }

(* -- placement -- *)

let test_child_name () =
  Alcotest.(check string) "child 2" "person__s2" (Shard.child_name "person" 2);
  Alcotest.(check string) "child 0" "person__s0" (Shard.child_name "person" 0)

let test_range_index () =
  let bs = [ V.Int 10; V.Int 20 ] in
  let idx v = Shard.range_index bs v in
  Alcotest.(check (option int)) "0 below" (Some 0) (idx (V.Int 0));
  Alcotest.(check (option int)) "9 below" (Some 0) (idx (V.Int 9));
  Alcotest.(check (option int)) "10 at boundary" (Some 1) (idx (V.Int 10));
  Alcotest.(check (option int)) "19 middle" (Some 1) (idx (V.Int 19));
  Alcotest.(check (option int)) "20 top" (Some 2) (idx (V.Int 20));
  Alcotest.(check (option int)) "float crosses" (Some 1) (idx (V.Float 10.5));
  Alcotest.(check (option int)) "incomparable" None (idx (V.String "x"))

let test_hash_placement_deterministic () =
  let p = partition 4 in
  for k = 0 to 99 do
    let o1 = Shard.owner_of_key p (V.Int k) in
    let o2 = Shard.owner_of_key p (V.Int k) in
    Alcotest.(check int) (Fmt.str "key %d stable" k) o1 o2;
    Alcotest.(check bool) (Fmt.str "key %d in range" k) true (o1 >= 0 && o1 < 4)
  done;
  (* Int and Float of the same numeric value hash to the same shard, so
     placement agrees with numeric equality in predicates *)
  Alcotest.(check int) "int = float placement"
    (Shard.owner_of_key p (V.Int 7))
    (Shard.owner_of_key p (V.Float 7.0))

(* The consistent-hashing contract: growing from n to n+1 shards, a key
   either keeps its owner or moves to the new shard — never between old
   shards. *)
let test_ring_stability () =
  let p3 = partition 3 and p4 = partition 4 in
  let keys = 1000 in
  let moved = ref 0 in
  for k = 0 to keys - 1 do
    let o3 = Shard.owner_of_key p3 (V.Int k) in
    let o4 = Shard.owner_of_key p4 (V.Int k) in
    Alcotest.(check bool)
      (Fmt.str "key %d: %d -> %d keeps owner or joins the new shard" k o3 o4)
      true
      (o4 = o3 || o4 = 3);
    if o4 <> o3 then incr moved
  done;
  Alcotest.(check bool) "some keys moved to the new shard" true (!moved > 0);
  Alcotest.(check bool) "most keys stayed" true (!moved < keys / 2)

(* -- pruning -- *)

let test_range_admits () =
  let p = partition ~scheme:(Shard.Range [ V.Int 10; V.Int 20 ]) 3 in
  let adm k cs = Shard.admits p k cs in
  (* shard 0 = [-inf,10), shard 1 = [10,20), shard 2 = [20,+inf) *)
  Alcotest.(check bool) "eq in shard 0" true (adm 0 [ Shard.Ceq (V.Int 5) ]);
  Alcotest.(check bool) "eq not in shard 1" false (adm 1 [ Shard.Ceq (V.Int 5) ]);
  Alcotest.(check bool) "eq not in shard 2" false (adm 2 [ Shard.Ceq (V.Int 5) ]);
  Alcotest.(check bool) "ge 10 excludes shard 0" false (adm 0 [ Shard.Cge (V.Int 10) ]);
  Alcotest.(check bool) "ge 10 keeps shard 1" true (adm 1 [ Shard.Cge (V.Int 10) ]);
  Alcotest.(check bool) "lt 12 keeps shard 1" true (adm 1 [ Shard.Clt (V.Int 12) ]);
  Alcotest.(check bool) "lt 12 excludes shard 2" false (adm 2 [ Shard.Clt (V.Int 12) ]);
  Alcotest.(check bool) "band keeps shard 1" true
    (adm 1 [ Shard.Cgt (V.Int 5); Shard.Clt (V.Int 12) ]);
  Alcotest.(check bool) "in-list reaches shard 0" true
    (adm 0 [ Shard.Cin [ V.Int 5; V.Int 15 ] ]);
  Alcotest.(check bool) "in-list misses shard 2" false
    (adm 2 [ Shard.Cin [ V.Int 5; V.Int 15 ] ]);
  (* conservative cases: empty membership and incomparable constants *)
  Alcotest.(check bool) "empty in-list admits" true (adm 2 [ Shard.Cin [] ]);
  Alcotest.(check bool) "incomparable admits" true
    (adm 0 [ Shard.Ceq (V.String "x") ]);
  Alcotest.(check bool) "no constraints admit" true (adm 1 [])

let test_hash_admits () =
  let p = partition 4 in
  let owner = Shard.owner_of_key p (V.Int 7) in
  let admitted =
    List.filter (fun k -> Shard.admits p k [ Shard.Ceq (V.Int 7) ]) [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "equality admits only the owner" [ owner ] admitted;
  (* order constraints give a ring no information *)
  List.iter
    (fun k ->
      Alcotest.(check bool) (Fmt.str "lt admits shard %d" k) true
        (Shard.admits p k [ Shard.Clt (V.Int 7) ]))
    [ 0; 1; 2; 3 ]

(* -- the prune pass: constraint translation across the submit -- *)

(* Resolver for children of a "person" partition, as the mediator
   derives one from the registry. *)
let shard_resolver p name =
  let n = List.length p.Shard.p_shards in
  let rec find k =
    if k >= n then None
    else if String.equal name (Shard.child_name "person" k) then Some (p, k)
    else find (k + 1)
  in
  find 0

let test_prune_translates_through_inner_map () =
  (* shard 0 = [-inf,10), shard 1 = [10,20), shard 2 = [20,+inf) *)
  let p = partition ~scheme:(Shard.Range [ V.Int 10; V.Int 20 ]) 3 in
  let shard = shard_resolver p in
  let eq path n = Expr.Cmp (Expr.Eq, Expr.Attr path, Expr.Const (V.Int n)) in
  (* Pushdown can move a renaming Map inside the submit; the outer
     constraint [k = 5] must follow the rename onto the shard key and
     still prune. *)
  let renamed =
    Expr.Select
      ( Expr.Submit
          ( "r1",
            Expr.Map
              ( Expr.Get "person__s1",
                Expr.Hstruct [ ("k", Expr.Attr [ "id" ]) ] ) ),
        eq [ "k" ] 5 )
  in
  Alcotest.(check (list string))
    "rename onto the key prunes the excluded shard" []
    (Expr.gets (Shard_prune.prune ~shard renamed));
  (* The reviewer's trap: the visible [id] is really [salary], so a
     constraint on it says nothing about the shard key and the scan
     must survive. *)
  let aliased =
    Expr.Select
      ( Expr.Submit
          ( "r1",
            Expr.Map
              ( Expr.Get "person__s1",
                Expr.Hstruct [ ("id", Expr.Attr [ "salary" ]) ] ) ),
        eq [ "id" ] 5 )
  in
  Alcotest.(check (list string))
    "alias shadowing the key must not prune" [ "person__s1" ]
    (Expr.gets (Shard_prune.prune ~shard aliased));
  (* A selection already pushed inside the submit constrains the key in
     the inner namespace directly. *)
  let inner_select =
    Expr.Submit ("r1", Expr.Select (Expr.Get "person__s1", eq [ "id" ] 5))
  in
  Alcotest.(check (list string))
    "inner selection on the key prunes" []
    (Expr.gets (Shard_prune.prune ~shard inner_select))

(* -- the merge rewrite: only a partitioning union may dedup -- *)

let test_merge_rewrite_requires_partitioning () =
  let p = partition 2 in
  let shard = shard_resolver p in
  let ex k =
    Plan.Exec (Fmt.str "r%d" k, Expr.Get (Shard.child_name "person" k))
  in
  let is_merge = function Plan.Mk_shard_merge _ -> true | _ -> false in
  let rewrites pl = is_merge (Shard_prune.merge_rewrite ~shard pl) in
  Alcotest.(check bool) "one branch per distinct child rewrites" true
    (rewrites (Plan.Mk_union [ ex 0; ex 1 ]));
  Alcotest.(check bool) "unary chains over a single exec qualify" true
    (rewrites (Plan.Mk_union [ Plan.Mk_select (ex 0, Expr.True); ex 1 ]));
  (* person union person, flattened: each child scanned by two
     branches — cross-branch duplicates are legitimate bag tuples *)
  Alcotest.(check bool) "self-union stays a bag union" false
    (rewrites (Plan.Mk_union [ ex 0; ex 1; ex 0; ex 1 ]));
  (* nested shape: each member is itself a whole-extent gather; the
     inner unions dedup their own double-coverage, the outer union
     must keep both copies *)
  (match
     Shard_prune.merge_rewrite ~shard
       (Plan.Mk_union
          [ Plan.Mk_union [ ex 0; ex 1 ]; Plan.Mk_union [ ex 0; ex 1 ] ])
   with
  | Plan.Mk_union [ inner0; inner1 ] ->
      Alcotest.(check bool) "inner gathers rewrite" true
        (is_merge inner0 && is_merge inner1)
  | _ -> Alcotest.fail "outer union of whole-extent scans must survive");
  (* constant rows are never placement-bounded, so they may collide
     with any branch *)
  Alcotest.(check bool) "constant-data member disqualifies" false
    (rewrites
       (Plan.Mk_union [ ex 0; ex 1; Plan.Mk_data (V.bag [ V.Int 1 ]) ]));
  (* a range gather never rewrites *)
  let pr = partition ~scheme:(Shard.Range [ V.Int 10 ]) 2 in
  Alcotest.(check bool) "range gather stays a bag union" false
    (is_merge
       (Shard_prune.merge_rewrite ~shard:(shard_resolver pr)
          (Plan.Mk_union [ ex 0; ex 1 ])))

(* -- registry integration -- *)

let sharded_odl =
  {|w0 := WrapperPostgres();
    r0 := Repository(host="h0", name="db", address="0");
    r1 := Repository(host="h1", name="db", address="1");
    r2 := Repository(host="h2", name="db", address="2");
    interface Person (extent person) {
      attribute Short id;
      attribute String name;
      attribute Short salary; }
    extent person of Person wrapper w0 sharded by id range (10, 20) across r0 r1 r2;|}

let test_odl_sharded_extent () =
  let reg = Registry.create () in
  Odl_parser.load reg sharded_odl;
  let parent =
    match Registry.find_extent reg "person" with
    | Some e -> e
    | None -> Alcotest.fail "parent extent missing"
  in
  (match parent.Registry.me_partition with
  | Some p ->
      Alcotest.(check string) "shard key" "id" p.Shard.p_key;
      Alcotest.(check int) "shard count" 3 (List.length p.Shard.p_shards)
  | None -> Alcotest.fail "no partition recorded");
  let children = Registry.shard_children reg "person" in
  Alcotest.(check (list string))
    "children registered in order"
    [ "person__s0"; "person__s1"; "person__s2" ]
    (List.map (fun c -> c.Registry.me_name) children);
  List.iteri
    (fun k c ->
      Alcotest.(check string)
        (Fmt.str "child %d repository" k)
        (Fmt.str "r%d" k) c.Registry.me_repository;
      Alcotest.(check string) "child wrapper inherited" "w0" c.Registry.me_wrapper)
    children;
  (* children resolve by name but stay out of the meta-extent *)
  Alcotest.(check bool) "child resolvable" true
    (Registry.find_extent reg "person__s1" <> None);
  Alcotest.(check bool) "children hidden from enumeration" false
    (List.exists
       (fun e -> e.Registry.me_name = "person__s1")
       (Registry.extents_of reg "Person"));
  (* removing the parent cascades *)
  Registry.remove_extent reg "person";
  Alcotest.(check bool) "children removed with the parent" true
    (Registry.find_extent reg "person__s1" = None)

let test_odl_structural_errors () =
  let load text =
    let reg = Registry.create () in
    Odl_parser.load reg
      ({|w0 := WrapperPostgres();
         r0 := Repository(host="h0", name="db", address="0");
         r1 := Repository(host="h1", name="db", address="1");
         interface Person (extent person) {
           attribute Short id;
           attribute String name; }|}
      ^ text)
  in
  let raises text =
    match load text with
    | () -> false
    | exception Registry.Odl_error _ -> true
  in
  Alcotest.(check bool) "boundary count must be shards - 1" true
    (raises
       "extent person of Person wrapper w0 sharded by id range (10, 20) \
        across r0 r1;");
  Alcotest.(check bool) "vnodes must be positive" true
    (raises
       "extent person of Person wrapper w0 sharded by id hash vnodes 0 \
        across r0 r1;");
  (* placement (range_index) and pruning (range_admits) assume sorted
     distinct boundaries, so anything else is rejected at load — not
     merely flagged by the optional lint pass *)
  Alcotest.(check bool) "unsorted range boundaries rejected" true
    (raises
       "extent person of Person wrapper w0 sharded by id range (20, 10) \
        across r0 r1 r0;");
  Alcotest.(check bool) "duplicate range boundaries rejected" true
    (raises
       "extent person of Person wrapper w0 sharded by id range (10, 10) \
        across r0 r1 r0;");
  Alcotest.(check bool) "a well-formed declaration loads" false
    (raises
       "extent person of Person wrapper w0 sharded by id range (10) across \
        r0 r1;");
  (* unknown shard repositories are a lint finding (E014), not a load
     error: declarations stay loadable so the checker can report them *)
  Alcotest.(check bool) "unknown repo tolerated at load" false
    (raises
       "extent person of Person wrapper w0 sharded by id range (10) across \
        r0 r9;")

(* -- scatter-gather dedup (rebalance double-coverage) -- *)

let dup_row = [| V.Int 999; V.String "Dup"; V.Int 50 |]

(* Two shard sources, both holding [dup_row] — the state mid-rebalance
   when a key range is double-covered.  Every other row sits where the
   scheme places it. *)
let double_covered_mediator ~scheme () =
  let shards = 2 in
  let p = partition ~scheme shards in
  let m = Mediator.create ~name:"shardtest" () in
  Mediator.load_odl m
    {|w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute Short id;
        attribute String name;
        attribute Short salary; }|};
  let all_rows = Datagen.person_rows ~seed:7 ~n:10 in
  for k = 0 to shards - 1 do
    let slice =
      List.filter (fun r -> Shard.shard_of_value p r.(0) = k) all_rows
    in
    let db = Database.create ~name:"db" in
    ignore
      (Datagen.table_of db ~name:(Shard.child_name "person" k)
         Datagen.person_schema (dup_row :: slice));
    Mediator.register_source m ~name:(Fmt.str "r%d" k)
      (Source.create ~id:(Shard.child_name "person" k)
         ~address:(Source.address ~host:(Fmt.str "h%d" k) ~db_name:"db" ~ip:"0" ())
         (Source.Relational db));
    Mediator.load_odl m
      (Fmt.str {|r%d := Repository(host="h%d", name="db", address="0");|} k k)
  done;
  Mediator.load_odl m
    (Fmt.str "extent person of Person wrapper w0 %a;" Shard.pp p);
  m

let dup_cardinal m =
  match
    (Mediator.query m "select x.name from x in person where x.name = \"Dup\"")
      .Mediator.answer
  with
  | Mediator.Complete v -> V.cardinal v
  | _ -> Alcotest.fail "expected a complete answer"

let test_hash_gather_dedups () =
  let m =
    double_covered_mediator
      ~scheme:(Shard.Hash { vnodes = Shard.default_vnodes })
      ()
  in
  Alcotest.(check int) "double-covered tuple returned once" 1 (dup_cardinal m)

(* A bag union of two scans of the same sharded extent legitimately
   duplicates every tuple; only each scan's own gather may dedup its
   rebalance double-coverage, never the outer union across scans. *)
let test_union_of_sharded_scans_keeps_bag_semantics () =
  let m =
    double_covered_mediator
      ~scheme:(Shard.Hash { vnodes = Shard.default_vnodes })
      ()
  in
  let q =
    "union(select x.name from x in person where x.id < 900, select x.name \
     from x in person where x.id < 900)"
  in
  match (Mediator.query m q).Mediator.answer with
  | Mediator.Complete v ->
      (* 10 generated rows per scan (the planted duplicate has id 999),
         and both scans' copies must surface *)
      Alcotest.(check int) "each branch keeps its own copy" 20 (V.cardinal v)
  | _ -> Alcotest.fail "expected a complete answer"

let test_range_gather_keeps_bag_semantics () =
  (* range shards cannot double-cover by construction, so their gather
     stays a plain union: a duplicated tuple is a data fact, not a
     rebalance artifact, and both copies surface *)
  let m = double_covered_mediator ~scheme:(Shard.Range [ V.Int 5 ]) () in
  Alcotest.(check int) "range union keeps both copies" 2 (dup_cardinal m)

(* -- pin: no sharding declared, nothing changes -- *)

(* The same 3-source seed federation test_properties pins; declared with
   plain [repository] clauses, so every meta_extent has
   [me_partition = None] and the shard resolver returns [None]
   everywhere.  The stats must be bit-for-bit the seed's. *)
let plain_federation () =
  let m =
    Mediator.create
      ~config:{ Mediator.Config.default with batch = false }
      ~name:"prop" ()
  in
  Mediator.load_odl m
    {|w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute Short id;
        attribute String name;
        attribute Short salary; }|};
  for i = 0 to 2 do
    let db = Database.create ~name:"db" in
    ignore
      (Datagen.table_of db
         ~name:(Fmt.str "person%d" i)
         Datagen.person_schema
         (Datagen.person_rows ~seed:(1000 + i) ~n:8));
    Mediator.register_source m
      ~name:(Fmt.str "r%d" i)
      (Source.create ~id:(Fmt.str "p%d" i)
         ~address:
           (Source.address ~host:(Fmt.str "h%d" i) ~db_name:"db" ~ip:"0" ())
         (Source.Relational db));
    Mediator.load_odl m
      (Fmt.str
         {|r%d := Repository(host="h%d", name="db", address="0");
           extent person%d of Person wrapper w0 repository r%d;|}
         i i i i)
  done;
  m

let test_unsharded_pinned_stats () =
  let m = plain_federation () in
  let o = Mediator.query m "select x.name from x in person where x.salary > 10" in
  let s = o.Mediator.stats in
  Alcotest.(check int) "execs issued" 3 s.Runtime.execs_issued;
  Alcotest.(check int) "execs answered" 3 s.Runtime.execs_answered;
  Alcotest.(check int) "round trips" 3 s.Runtime.round_trips;
  Alcotest.(check int) "tuples shipped" 24 s.Runtime.tuples_shipped;
  Alcotest.(check (float 1e-9)) "virtual elapsed bit-for-bit"
    5.4815723876953131 s.Runtime.elapsed_ms

let () =
  Alcotest.run "disco_shard"
    [
      ( "placement",
        [
          Alcotest.test_case "child names" `Quick test_child_name;
          Alcotest.test_case "range index" `Quick test_range_index;
          Alcotest.test_case "hash determinism" `Quick
            test_hash_placement_deterministic;
          Alcotest.test_case "ring stability on growth" `Quick
            test_ring_stability;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "range admits" `Quick test_range_admits;
          Alcotest.test_case "hash admits" `Quick test_hash_admits;
          Alcotest.test_case "constraint translation across the submit"
            `Quick test_prune_translates_through_inner_map;
        ] );
      ( "registry",
        [
          Alcotest.test_case "sharded extent loads" `Quick
            test_odl_sharded_extent;
          Alcotest.test_case "structural errors" `Quick
            test_odl_structural_errors;
        ] );
      ( "gather",
        [
          Alcotest.test_case "hash dedups double-coverage" `Quick
            test_hash_gather_dedups;
          Alcotest.test_case "range keeps bag semantics" `Quick
            test_range_gather_keeps_bag_semantics;
          Alcotest.test_case "merge rewrite requires a partitioning union"
            `Quick test_merge_rewrite_requires_partitioning;
          Alcotest.test_case "union of sharded scans keeps bag semantics"
            `Quick test_union_of_sharded_scans_keeps_bag_semantics;
        ] );
      ( "pin",
        [
          Alcotest.test_case "unsharded stats bit-for-bit" `Quick
            test_unsharded_pinned_stats;
        ] );
    ]
