(* Tests for the logical algebra: compilation from OQL, reference
   evaluation, decompilation back to OQL, and the transformation rules.

   The central properties (paper Sections 3.2 and 4):
   - compiling an OQL query and evaluating the algebra tree agrees with
     the OQL reference evaluator;
   - every rewrite rule preserves evaluation;
   - decompiling any (possibly rewritten) tree yields OQL that evaluates
     to the same result — the closure property partial answers rely on. *)

module V = Disco_value.Value
module Ast = Disco_oql.Ast
module Parser = Disco_oql.Parser
module Eval = Disco_oql.Eval
module Expr = Disco_algebra.Expr
module Compile = Disco_algebra.Compile
module Decompile = Disco_algebra.Decompile
module Rules = Disco_algebra.Rules

let check_value = Alcotest.testable V.pp V.equal

(* A small two-source database. *)
let person ?(id = 0) name salary =
  V.strct [ ("id", V.Int id); ("name", V.String name); ("salary", V.Int salary) ]

let person0 =
  V.bag [ person ~id:1 "Mary" 200; person ~id:3 "Ana" 5; person ~id:4 "Bob" 90 ]

let person1 = V.bag [ person ~id:2 "Sam" 50; person ~id:4 "Bob" 60 ]

let resolve = function
  | "person0" -> Some person0
  | "person1" -> Some person1
  | "person" -> Some (V.bag_union person0 person1)
  | _ -> None

let oql_env = Eval.env ~resolve ()
let eval_alg e = Expr.eval ~resolve e

let compile_ok q =
  match Compile.compile (Parser.parse q) with
  | Ok e -> e
  | Error reason -> Alcotest.fail ("compile rejected: " ^ reason)

(* Check compile + every normalization stage + decompile against the OQL
   reference evaluator. *)
let assert_coherent ?(can_push = Rules.push_all) oql =
  let expected = Eval.eval_string oql_env oql in
  let compiled = compile_ok oql in
  Alcotest.check check_value
    (Fmt.str "compiled %s" oql)
    expected (eval_alg compiled);
  let located =
    Compile.locate
      ~repo_of:(fun name ->
        if String.length name >= 6 && String.sub name 0 6 = "person" then
          Some ("r_" ^ name)
        else None)
      compiled
  in
  let normalized = Rules.normalize ~can_push located in
  Alcotest.check check_value
    (Fmt.str "normalized %s" oql)
    expected (eval_alg normalized);
  let round_tripped = Decompile.decompile normalized in
  Alcotest.check check_value
    (Fmt.str "decompiled %s -> %s" oql (Ast.to_string round_tripped))
    expected
    (Eval.eval oql_env round_tripped)

(* -- compilation -- *)

let test_compile_simple () =
  let e = compile_ok "select x.name from x in person0 where x.salary > 10" in
  (* shape: Map(Select(Bind(x, Get person0), pred), head) *)
  match e with
  | Expr.Map
      ( Expr.Select
          (Expr.Map (Expr.Get "person0", Expr.Hstruct [ ("x", Expr.Attr []) ]), _),
        Expr.Hscalar (Expr.Attr [ "x"; "name" ]) ) ->
      ()
  | _ -> Alcotest.fail ("unexpected shape: " ^ Expr.to_string e)

let test_compile_rejects () =
  let expect_reject q =
    match Compile.compile (Parser.parse q) with
    | Error _ -> ()
    | Ok e -> Alcotest.fail ("should reject, got " ^ Expr.to_string e)
  in
  (* correlated subquery in projection *)
  expect_reject
    "select struct(n: x.name, t: sum(select z.salary from z in person where \
     z.id = x.id)) from x in person";
  (* dependent from binding *)
  expect_reject "select i from g in groups, i in g.items";
  (* aggregate call as collection *)
  expect_reject "sum(person0)";
  (* unexpanded star *)
  expect_reject "select x from x in person*"

let test_locate () =
  let e = compile_ok "select x.name from x in union(person0, person1)" in
  let located =
    Compile.locate
      ~repo_of:(function
        | "person0" -> Some "r0" | "person1" -> Some "r1" | _ -> None)
      e
  in
  let submits = Expr.submits located in
  Alcotest.(check (list string)) "submits introduced" [ "r0"; "r1" ]
    (List.map fst submits)

(* -- coherence across the pipeline -- *)

let coherence_cases =
  [
    "select x.name from x in person where x.salary > 10";
    "select x from x in person0";
    "select distinct x.salary from x in person";
    "select struct(name: x.name, double: x.salary * 2) from x in person0 \
     where x.salary >= 5 and not (x.name = \"Ana\")";
    "select struct(a: x.name, b: y.name) from x in person0, y in person1 \
     where x.id = y.id";
    "select struct(a: x.name, s: x.salary + y.salary) from x in person0 and \
     y in person1 where x.id = y.id and x.salary > 50";
    "union(select x.name from x in person0, select y.name from y in person1)";
    "select p.name from p in union(person0, person1) where p.salary < 100";
    "select struct(x: a.id + 1, y: a.salary - 1) from a in person1";
    "distinct(select x.name from x in person)";
    "select t.name from t in (select u from u in person0 where u.salary > 10) \
     where t.salary < 500";
    "select struct(l: x.name, r: y.name, z: z.id) from x in person0, y in \
     person1, z in person0 where x.id = z.id and y.salary > 50";
    "union(bag(1, 2), bag(3))";
    {|select x.name from x in person where x.name like "%a%"|};
    {|select struct(n: x.name) from x in person0 where x.name like "M%" or x.salary > 100|};
  ]

let test_pipeline_coherence () = List.iter assert_coherent coherence_cases

let test_pipeline_coherence_no_push () =
  List.iter (assert_coherent ~can_push:Rules.push_none) coherence_cases

(* -- rules in isolation -- *)

let test_extract_join_pairs () =
  let e =
    compile_ok
      "select struct(a: x.name, b: y.name) from x in person0, y in person1 \
       where x.id = y.id and x.salary > 10"
  in
  let e' = Rules.extract_join_pairs e in
  let rec find_join = function
    | Expr.Join (_, _, pairs) -> Some pairs
    | Expr.Map (inner, _) | Expr.Select (inner, _) | Expr.Distinct inner ->
        find_join inner
    | _ -> None
  in
  match find_join e' with
  | Some [ ([ "x"; "id" ], [ "y"; "id" ]) ] -> ()
  | Some _ | None -> Alcotest.fail ("pairs not extracted: " ^ Expr.to_string e')

let test_push_select_through_union () =
  let e =
    Expr.Select
      ( Expr.Union [ Expr.Get "person0"; Expr.Get "person1" ],
        Expr.Cmp (Expr.Gt, Expr.Attr [ "salary" ], Expr.Const (V.Int 10)) )
  in
  match Rules.push_selects e with
  | Expr.Union [ Expr.Select (Expr.Get "person0", _); Expr.Select (Expr.Get "person1", _) ] ->
      ()
  | e' -> Alcotest.fail ("not distributed: " ^ Expr.to_string e')

let test_push_select_strips_binding () =
  (* Select over a bind moves inside with the variable prefix stripped. *)
  let bind = Expr.Map (Expr.Get "person0", Expr.Hstruct [ ("x", Expr.Attr []) ]) in
  let e =
    Expr.Select
      (bind, Expr.Cmp (Expr.Gt, Expr.Attr [ "x"; "salary" ], Expr.Const (V.Int 10)))
  in
  match Rules.push_selects e with
  | Expr.Map (Expr.Select (Expr.Get "person0", Expr.Cmp (Expr.Gt, Expr.Attr [ "salary" ], _)), _) ->
      ()
  | e' -> Alcotest.fail ("binding not stripped: " ^ Expr.to_string e')

let test_absorb_respects_capability () =
  let submit = Expr.Submit ("r0", Expr.Get "person0") in
  let sel =
    Expr.Select
      (submit, Expr.Cmp (Expr.Gt, Expr.Attr [ "salary" ], Expr.Const (V.Int 10)))
  in
  (match Rules.absorb ~can_push:Rules.push_all sel with
  | Expr.Submit ("r0", Expr.Select (Expr.Get "person0", _)) -> ()
  | e' -> Alcotest.fail ("not absorbed: " ^ Expr.to_string e'));
  match Rules.absorb ~can_push:Rules.push_none sel with
  | Expr.Select (Expr.Submit ("r0", Expr.Get "person0"), _) -> ()
  | e' -> Alcotest.fail ("absorbed against capability: " ^ Expr.to_string e')

let test_join_pushdown_same_repo () =
  (* Paper Section 3.2: join of two submits to the same repository merges
     into one submit when the wrapper accepts joins. *)
  let j =
    Expr.Join
      ( Expr.Map (Expr.Submit ("r0", Expr.Get "employee0"), Expr.Hstruct [ ("e", Expr.Attr []) ]),
        Expr.Map (Expr.Submit ("r0", Expr.Get "manager0"), Expr.Hstruct [ ("m", Expr.Attr []) ]),
        [ ([ "e"; "dept" ], [ "m"; "dept" ]) ] )
  in
  (* Map over submit absorbs first, then the join merges. *)
  let e' = Rules.normalize ~can_push:Rules.push_all j in
  match Expr.submits e' with
  | [ ("r0", Expr.Join (_, _, _)) ] -> ()
  | other ->
      Alcotest.fail
        (Fmt.str "expected one merged submit, got %d: %s" (List.length other)
           (Expr.to_string e'))

let test_no_cross_source_merge () =
  (* Submits to different repositories must never merge (no semijoin /
     data shipping between sources, paper Section 3.2). *)
  let j =
    Expr.Join
      ( Expr.Map (Expr.Submit ("r0", Expr.Get "person0"), Expr.Hstruct [ ("x", Expr.Attr []) ]),
        Expr.Map (Expr.Submit ("r1", Expr.Get "person1"), Expr.Hstruct [ ("y", Expr.Attr []) ]),
        [ ([ "x"; "id" ], [ "y"; "id" ]) ] )
  in
  let e' = Rules.normalize ~can_push:Rules.push_all j in
  let submit_repos = List.map fst (Expr.submits e') in
  Alcotest.(check (list string)) "two submits remain" [ "r0"; "r1" ] submit_repos;
  (* no submit nested inside another *)
  List.iter
    (fun (_, body) ->
      Alcotest.(check (list string)) "no nested submit" []
        (List.map fst (Expr.submits body)))
    (Expr.submits e')

let test_simplify () =
  let e = Expr.Select (Expr.Get "person0", Expr.True) in
  Alcotest.(check bool) "select true dropped" true
    (Expr.equal (Rules.simplify e) (Expr.Get "person0"));
  let u = Expr.Union [ Expr.Union [ Expr.Get "a"; Expr.Get "b" ]; Expr.Get "c" ] in
  Alcotest.(check bool) "nested union flattened" true
    (Expr.equal (Rules.simplify u)
       (Expr.Union [ Expr.Get "a"; Expr.Get "b"; Expr.Get "c" ]))

(* -- decompilation -- *)

let test_decompile_paper_form () =
  (* The compiled paper query decompiles back to a single
     select-from-where. *)
  let e = compile_ok "select x.name from x in person0 where x.salary > 10" in
  let q = Decompile.decompile e in
  Alcotest.(check string) "paper form"
    "select x.name from x in person0 where x.salary > 10" (Ast.to_string q)

let test_decompile_partial_answer_shape () =
  (* Build the paper's Section 1.3 partial answer: person1 answered with
     Bag("Sam"); person0 still a query. *)
  let residual =
    Expr.Union
      [
        Expr.Map
          ( Expr.Select
              ( Expr.Map (Expr.Submit ("r0", Expr.Get "person0"), Expr.Hstruct [ ("y", Expr.Attr []) ]),
                Expr.Cmp (Expr.Gt, Expr.Attr [ "y"; "salary" ], Expr.Const (V.Int 10)) ),
            Expr.Hscalar (Expr.Attr [ "y"; "name" ]) );
        Expr.Data (V.bag [ V.String "Sam" ]);
      ]
  in
  let text = Decompile.decompile_string residual in
  Alcotest.(check string) "paper partial answer"
    {|union(select y.name from y in person0 where y.salary > 10, Bag("Sam"))|}
    text;
  (* and resubmitting it yields the full answer *)
  Alcotest.check check_value "resubmission"
    (V.bag [ V.String "Bob"; V.String "Mary"; V.String "Sam" ])
    (Eval.eval_string oql_env text)

let test_decompile_general_join () =
  let j =
    Expr.Join
      ( Expr.Map (Expr.Get "person0", Expr.Hstruct [ ("x", Expr.Attr []) ]),
        Expr.Map (Expr.Get "person1", Expr.Hstruct [ ("y", Expr.Attr []) ]),
        [ ([ "x"; "id" ], [ "y"; "id" ]) ] )
  in
  (* wrap so the select-shape path is not taken for the join itself *)
  let q = Decompile.decompile (Expr.Distinct j) in
  let expected = eval_alg (Expr.Distinct j) in
  Alcotest.check check_value "general join decompiles and evaluates" expected
    (Eval.eval oql_env q)

(* -- property tests -- *)

(* Random select-from-where queries over person0/person1. *)
let arb_oql_query =
  let open QCheck.Gen in
  let cmp = oneofl [ "="; "!="; "<"; "<="; ">"; ">=" ] in
  let gen =
    let* nvars = int_range 1 2 in
    let vars = List.init nvars (fun i -> Printf.sprintf "v%d" i) in
    let* colls =
      flatten_l (List.map (fun _ -> oneofl [ "person0"; "person1" ]) vars)
    in
    let scalar_of v =
      oneofl
        [ v ^ ".salary"; v ^ ".id"; string_of_int (Random.State.int (Random.State.make [|0|]) 1) ]
    in
    ignore scalar_of;
    let* conds =
      flatten_l
        (List.map
           (fun v ->
             let* kind = int_range 0 3 in
             if kind = 0 then
               let* pat = oneofl [ "%a%"; "M%"; "%_"; "%ar%" ] in
               return (Printf.sprintf {|%s.name like "%s"|} v pat)
             else
               let* op = cmp in
               let* rhs = int_range 0 300 in
               return (Printf.sprintf "%s.salary %s %d" v op rhs))
           vars)
    in
    let* join_cond =
      if nvars = 2 then
        oneofl [ []; [ "v0.id = v1.id" ]; [ "v0.salary = v1.salary" ] ]
      else return []
    in
    let where = String.concat " and " (conds @ join_cond) in
    let proj =
      match vars with
      | [ v ] -> Printf.sprintf "struct(n: %s.name, s: %s.salary * 2)" v v
      | v0 :: v1 :: _ -> Printf.sprintf "struct(a: %s.name, b: %s.salary)" v0 v1
      | [] -> assert false
    in
    let from =
      String.concat ", "
        (List.map2 (fun v c -> Printf.sprintf "%s in %s" v c) vars colls)
    in
    return (Printf.sprintf "select %s from %s where %s" proj from where)
  in
  QCheck.make ~print:(fun s -> s) gen

let prop_compile_eval_agree =
  QCheck.Test.make ~name:"compile/eval agreement" ~count:300 arb_oql_query
    (fun oql ->
      let expected = Eval.eval_string oql_env oql in
      let compiled = compile_ok oql in
      V.equal expected (eval_alg compiled))

let prop_normalize_preserves =
  QCheck.Test.make ~name:"normalize preserves evaluation" ~count:300
    arb_oql_query (fun oql ->
      let compiled = compile_ok oql in
      let normalized = Rules.normalize ~can_push:Rules.push_all compiled in
      V.equal (eval_alg compiled) (eval_alg normalized))

let prop_decompile_roundtrip =
  QCheck.Test.make ~name:"decompile roundtrip" ~count:300 arb_oql_query
    (fun oql ->
      let compiled = compile_ok oql in
      let normalized = Rules.normalize ~can_push:Rules.push_all compiled in
      let oql' = Decompile.decompile normalized in
      V.equal (eval_alg compiled) (Eval.eval oql_env oql'))

let () =
  Alcotest.run "disco_algebra"
    [
      ( "compile",
        [
          Alcotest.test_case "simple shape" `Quick test_compile_simple;
          Alcotest.test_case "rejections" `Quick test_compile_rejects;
          Alcotest.test_case "submit introduction" `Quick test_locate;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "coherence (full pushdown)" `Quick
            test_pipeline_coherence;
          Alcotest.test_case "coherence (no pushdown)" `Quick
            test_pipeline_coherence_no_push;
        ] );
      ( "rules",
        [
          Alcotest.test_case "join pair extraction" `Quick
            test_extract_join_pairs;
          Alcotest.test_case "select through union" `Quick
            test_push_select_through_union;
          Alcotest.test_case "select strips binding" `Quick
            test_push_select_strips_binding;
          Alcotest.test_case "absorb respects capability" `Quick
            test_absorb_respects_capability;
          Alcotest.test_case "join pushdown same repo" `Quick
            test_join_pushdown_same_repo;
          Alcotest.test_case "no cross-source merge" `Quick
            test_no_cross_source_merge;
          Alcotest.test_case "simplify" `Quick test_simplify;
        ] );
      ( "decompile",
        [
          Alcotest.test_case "paper select form" `Quick test_decompile_paper_form;
          Alcotest.test_case "paper partial answer" `Quick
            test_decompile_partial_answer_shape;
          Alcotest.test_case "general join" `Quick test_decompile_general_join;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_compile_eval_agree;
            prop_normalize_preserves;
            prop_decompile_roundtrip;
          ] );
    ]
