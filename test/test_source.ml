(* Tests for the source simulation: virtual clock, availability schedules,
   latency-priced calls, and the native store kinds. *)

module V = Disco_value.Value
module Clock = Disco_source.Clock
module Schedule = Disco_source.Schedule
module Source = Disco_source.Source
module Datagen = Disco_source.Datagen
module Sql = Disco_relation.Sql

let addr = Source.address ~host:"rodin" ~db_name:"db" ~ip:"123.45.6.7" ()

let relational_source ?latency ?schedule ~seed ~n () =
  let db = Datagen.person_db ~seed ~name:"person0" ~n in
  Source.create ~id:"r0" ~address:addr ?latency ?schedule (Source.Relational db)

(* -- clock -- *)

let test_clock () =
  let c = Clock.create () in
  Alcotest.(check (float 0.0)) "t0" 0.0 (Clock.now c);
  Clock.advance c 10.0;
  Clock.advance_to c 25.0;
  Alcotest.(check (float 0.0)) "advance_to" 25.0 (Clock.now c);
  (* the same instant is a no-op, not an error *)
  Clock.advance_to c 25.0;
  Alcotest.(check (float 0.0)) "idempotent" 25.0 (Clock.now c);
  Alcotest.check_raises "negative" (Invalid_argument "Clock.advance: negative delta")
    (fun () -> Clock.advance c (-1.0));
  (* regression: a stale finish time used to silently rewind observed
     durations — moving backwards must fail loudly now *)
  Alcotest.check_raises "backwards"
    (Invalid_argument "Clock.advance_to: 5 is before the current time 25")
    (fun () -> Clock.advance_to c 5.0);
  Alcotest.(check (float 0.0)) "unchanged after rejection" 25.0 (Clock.now c)

(* -- schedules -- *)

let test_schedule_constants () =
  Alcotest.(check bool) "up" true (Schedule.is_up Schedule.always_up 42.0);
  Alcotest.(check bool) "down" false (Schedule.is_up Schedule.always_down 42.0)

let test_schedule_intervals () =
  let s = Schedule.down_during [ (10.0, 20.0); (30.0, 35.0) ] in
  Alcotest.(check bool) "before" true (Schedule.is_up s 5.0);
  Alcotest.(check bool) "inside" false (Schedule.is_up s 10.0);
  Alcotest.(check bool) "boundary is up" true (Schedule.is_up s 20.0);
  Alcotest.(check bool) "second interval" false (Schedule.is_up s 31.0);
  Alcotest.(check (option (float 0.0))) "next transition" (Some 10.0)
    (Schedule.next_transition s 0.0);
  Alcotest.(check (option (float 0.0))) "inside transition" (Some 20.0)
    (Schedule.next_transition s 12.0)

let test_schedule_validation () =
  Alcotest.check_raises "reversed interval"
    (Invalid_argument "Schedule.down_during: reversed interval 20..10")
    (fun () -> ignore (Schedule.down_during [ (20.0, 10.0) ]));
  Alcotest.check_raises "overlapping intervals"
    (Invalid_argument "Schedule.down_during: overlapping intervals at 5")
    (fun () -> ignore (Schedule.down_during [ (0.0, 10.0); (5.0, 15.0) ]));
  (* touching intervals merge into one contiguous outage *)
  let s = Schedule.down_during [ (0.0, 10.0); (10.0, 20.0) ] in
  Alcotest.(check bool) "contiguous at the seam" false (Schedule.is_up s 10.0);
  Alcotest.(check bool) "up at the merged stop" true (Schedule.is_up s 20.0);
  (* an empty (a, a) interval is a no-op, not an error *)
  Alcotest.(check bool) "empty interval is harmless" true
    (Schedule.is_up (Schedule.down_during [ (5.0, 5.0) ]) 5.0)

let test_schedule_half_open_edges () =
  (* [start, stop): down at exactly start, up again at exactly stop *)
  let s = Schedule.down_during [ (10.0, 20.0) ] in
  Alcotest.(check bool) "just before start" true (Schedule.is_up s 9.999);
  Alcotest.(check bool) "at start" false (Schedule.is_up s 10.0);
  Alcotest.(check bool) "just before stop" false (Schedule.is_up s 19.999);
  Alcotest.(check bool) "at stop" true (Schedule.is_up s 20.0)

let test_schedule_flapping () =
  let s = Schedule.flapping ~period:100.0 ~up_ms:40.0 in
  Alcotest.(check bool) "up at cycle start" true (Schedule.is_up s 0.0);
  Alcotest.(check bool) "up just inside" true (Schedule.is_up s 39.999);
  Alcotest.(check bool) "down at up_ms (half-open)" false (Schedule.is_up s 40.0);
  Alcotest.(check bool) "down at period end" false (Schedule.is_up s 99.999);
  Alcotest.(check bool) "next cycle up" true (Schedule.is_up s 100.0);
  Alcotest.(check bool) "next cycle flips down" false (Schedule.is_up s 140.0);
  Alcotest.(check (option (float 0.0))) "transition while up" (Some 40.0)
    (Schedule.next_transition s 5.0);
  Alcotest.(check (option (float 0.0))) "transition while down" (Some 100.0)
    (Schedule.next_transition s 50.0);
  Alcotest.check_raises "up_ms above period"
    (Invalid_argument "Schedule.flapping: up_ms must be in [0, period]")
    (fun () -> ignore (Schedule.flapping ~period:10.0 ~up_ms:11.0))

let test_schedule_slow_during () =
  let s = Schedule.slow_during [ (100.0, 200.0) ] ~factor:3.0 in
  Alcotest.(check bool) "always up" true (Schedule.is_up s 150.0);
  Alcotest.(check (float 0.0)) "nominal outside" 1.0 (Schedule.latency_factor s 50.0);
  Alcotest.(check (float 0.0)) "degraded at start edge" 3.0
    (Schedule.latency_factor s 100.0);
  Alcotest.(check (float 0.0)) "nominal at stop edge" 1.0
    (Schedule.latency_factor s 200.0);
  Alcotest.check_raises "factor below 1"
    (Invalid_argument "Schedule.slow_during: factor must be at least 1")
    (fun () -> ignore (Schedule.slow_during [ (0.0, 1.0) ] ~factor:0.5));
  Alcotest.check_raises "reversed interval"
    (Invalid_argument "Schedule.slow_during: reversed interval 9..3")
    (fun () -> ignore (Schedule.slow_during [ (9.0, 3.0) ] ~factor:2.0))

let test_schedule_flaky_deterministic () =
  let s1 = Schedule.flaky ~seed:7 ~period:10.0 ~availability:0.5 in
  let s2 = Schedule.flaky ~seed:7 ~period:10.0 ~availability:0.5 in
  for i = 0 to 100 do
    let t = float_of_int i *. 3.7 in
    Alcotest.(check bool)
      (Fmt.str "deterministic at %g" t)
      (Schedule.is_up s1 t) (Schedule.is_up s2 t)
  done

let test_schedule_flaky_rate () =
  let s = Schedule.flaky ~seed:3 ~period:1.0 ~availability:0.9 in
  let ups = ref 0 in
  let n = 5000 in
  for i = 0 to n - 1 do
    if Schedule.is_up s (float_of_int i +. 0.5) then incr ups
  done;
  let rate = float_of_int !ups /. float_of_int n in
  Alcotest.(check bool)
    (Fmt.str "rate %g near 0.9" rate)
    true
    (rate > 0.87 && rate < 0.93)

(* -- calls -- *)

let test_call_answered () =
  let src =
    relational_source
      ~latency:{ Source.base_ms = 5.0; per_row_ms = 1.0; jitter = 0.0 }
      ~seed:1 ~n:100 ()
  in
  let clock = Clock.create () in
  let outcome =
    Source.call src ~clock (fun () ->
        let r = Source.exec_sql src (Sql.parse "SELECT name FROM person0") in
        (r, List.length r.Sql.rows))
  in
  (match outcome with
  | Source.Answered (r, finish) ->
      Alcotest.(check int) "rows" 100 (List.length r.Sql.rows);
      Alcotest.(check (float 0.001)) "latency = base + rows" 105.0 finish
  | _ -> Alcotest.fail "expected an answer");
  let stats = Source.stats src in
  Alcotest.(check int) "stat answered" 1 stats.Source.calls_answered;
  Alcotest.(check int) "stat rows" 100 stats.Source.rows_shipped

let test_call_unavailable () =
  let src = relational_source ~schedule:Schedule.always_down ~seed:1 ~n:10 () in
  let clock = Clock.create () in
  (match Source.call src ~clock (fun () -> ((), 0)) with
  | Source.Unavailable -> ()
  | _ -> Alcotest.fail "expected Unavailable");
  Alcotest.(check int) "refused" 1 (Source.stats src).Source.calls_refused

let test_call_deadline () =
  let src =
    relational_source
      ~latency:{ Source.base_ms = 50.0; per_row_ms = 0.0; jitter = 0.0 }
      ~seed:1 ~n:10 ()
  in
  let clock = Clock.create () in
  (match Source.call src ~clock ~deadline:20.0 (fun () -> ((), 0)) with
  | Source.Timed_out finish -> Alcotest.(check (float 0.001)) "finish" 50.0 finish
  | _ -> Alcotest.fail "expected Timed_out");
  match Source.call src ~clock ~deadline:60.0 (fun () -> ((), 0)) with
  | Source.Answered ((), _) -> ()
  | _ -> Alcotest.fail "expected answer under looser deadline"

let test_call_deadline_boundary () =
  (* completion exactly at the deadline counts as answered *)
  let src =
    relational_source
      ~latency:{ Source.base_ms = 50.0; per_row_ms = 0.0; jitter = 0.0 }
      ~seed:1 ~n:10 ()
  in
  let clock = Clock.create () in
  match Source.call src ~clock ~deadline:50.0 (fun () -> ((), 0)) with
  | Source.Answered ((), 50.0) -> ()
  | Source.Answered ((), t) -> Alcotest.fail (Fmt.str "finish %g" t)
  | _ -> Alcotest.fail "boundary should answer"

let test_call_timed_out_stats () =
  (* a timed-out call is work the source actually did: its elapsed time
     accrues in busy_ms and it counts as calls_timed_out — it must not be
     lumped in with refusals, which cost the source nothing *)
  let src =
    relational_source
      ~latency:{ Source.base_ms = 50.0; per_row_ms = 0.0; jitter = 0.0 }
      ~seed:1 ~n:10 ()
  in
  let clock = Clock.create () in
  (match Source.call src ~clock ~deadline:20.0 (fun () -> ((), 0)) with
  | Source.Timed_out 50.0 -> ()
  | _ -> Alcotest.fail "expected Timed_out at 50");
  let stats = Source.stats src in
  Alcotest.(check int) "timed out counted" 1 stats.Source.calls_timed_out;
  Alcotest.(check int) "not a refusal" 0 stats.Source.calls_refused;
  Alcotest.(check int) "not answered" 0 stats.Source.calls_answered;
  Alcotest.(check (float 0.001)) "busy time accrued" 50.0 stats.Source.busy_ms;
  (* a genuine refusal still accrues nothing *)
  Source.set_schedule src Schedule.always_down;
  (match Source.call src ~clock (fun () -> ((), 0)) with
  | Source.Unavailable -> ()
  | _ -> Alcotest.fail "expected Unavailable");
  let stats = Source.stats src in
  Alcotest.(check int) "refusal counted" 1 stats.Source.calls_refused;
  Alcotest.(check (float 0.001)) "refusal costs nothing" 50.0 stats.Source.busy_ms

let test_call_slow_schedule () =
  (* inside a slow_during window calls pay factor x their nominal
     latency; outside they are nominal again *)
  let src =
    relational_source
      ~latency:{ Source.base_ms = 10.0; per_row_ms = 0.0; jitter = 0.0 }
      ~schedule:(Schedule.slow_during [ (0.0, 100.0) ] ~factor:4.0)
      ~seed:1 ~n:10 ()
  in
  let clock = Clock.create () in
  (match Source.call src ~clock (fun () -> ((), 0)) with
  | Source.Answered ((), finish) ->
      Alcotest.(check (float 0.001)) "degraded latency" 40.0 finish
  | _ -> Alcotest.fail "slow source still answers");
  Clock.advance clock 200.0;
  match Source.call src ~clock (fun () -> ((), 0)) with
  | Source.Answered ((), finish) ->
      Alcotest.(check (float 0.001)) "nominal after the window" 210.0 finish
  | _ -> Alcotest.fail "expected an answer"

let test_call_at_future_instant () =
  (* call_at issues at an explicit virtual time without touching the
     clock — the primitive the retry scheduler re-polls with *)
  let src =
    relational_source
      ~latency:{ Source.base_ms = 10.0; per_row_ms = 0.0; jitter = 0.0 }
      ~schedule:(Schedule.down_during [ (0.0, 300.0) ])
      ~seed:1 ~n:10 ()
  in
  (match Source.call_at src ~now:100.0 (fun () -> ((), 0)) with
  | Source.Unavailable -> ()
  | _ -> Alcotest.fail "down at t=100");
  match Source.call_at src ~now:300.0 (fun () -> ((), 0)) with
  | Source.Answered ((), finish) ->
      Alcotest.(check (float 0.001)) "answers at issue + latency" 310.0 finish
  | _ -> Alcotest.fail "up again at t=300"

let test_call_schedule_recovery () =
  let src =
    relational_source ~schedule:(Schedule.down_during [ (0.0, 100.0) ]) ~seed:1
      ~n:10 ()
  in
  let clock = Clock.create () in
  (match Source.call src ~clock (fun () -> ((), 0)) with
  | Source.Unavailable -> ()
  | _ -> Alcotest.fail "down at t=0");
  Clock.advance clock 150.0;
  match Source.call src ~clock (fun () -> ((), 0)) with
  | Source.Answered _ -> ()
  | _ -> Alcotest.fail "recovered at t=150"

(* -- stores -- *)

let test_kv_store () =
  let tbl = Hashtbl.create 8 in
  let src = Source.create ~id:"kv0" ~address:addr (Source.Key_value tbl) in
  Source.kv_put src "mary" (V.strct [ ("salary", V.Int 200) ]);
  Source.kv_put src "sam" (V.strct [ ("salary", V.Int 50) ]);
  Alcotest.(check bool) "get" true (Source.kv_get src "mary" <> None);
  Alcotest.(check (list string)) "scan sorted" [ "mary"; "sam" ]
    (List.map fst (Source.kv_scan src));
  let v0 = Source.data_version src in
  Source.kv_put src "zoe" V.Null;
  Alcotest.(check bool) "version bumps" true (Source.data_version src > v0);
  Alcotest.check_raises "wrong kind"
    (Invalid_argument "source kv0 is not a flat file") (fun () ->
      ignore (Source.file_records src))

let test_flat_file () =
  let src = Source.create ~id:"f0" ~address:addr (Source.Flat_file (ref [])) in
  Source.file_append src (V.strct [ ("line", V.Int 1) ]);
  Source.file_append src (V.strct [ ("line", V.Int 2) ]);
  Alcotest.(check int) "records in order" 2 (List.length (Source.file_records src));
  match Source.file_records src with
  | first :: _ ->
      Alcotest.(check bool) "order" true (V.equal (V.field first "line") (V.Int 1))
  | [] -> Alcotest.fail "no records"

(* -- datagen determinism -- *)

let test_datagen_deterministic () =
  let a = Datagen.person_rows ~seed:42 ~n:50 in
  let b = Datagen.person_rows ~seed:42 ~n:50 in
  let c = Datagen.person_rows ~seed:43 ~n:50 in
  Alcotest.(check bool) "same seed same rows" true (a = b);
  Alcotest.(check bool) "different seed differs" true (a <> c);
  List.iteri
    (fun i row ->
      Alcotest.(check bool)
        "salary in range" true
        (match row.(2) with V.Int s -> s >= 10 && s <= 500 | _ -> false);
      Alcotest.(check bool) "id" true (V.equal row.(0) (V.Int i)))
    a

let test_datagen_water () =
  let rows = Datagen.water_rows ~seed:1 ~station:"st1" ~n:20 in
  List.iter
    (fun row ->
      match (row.(2), row.(4)) with
      | V.Float ph, V.Float oxy ->
          Alcotest.(check bool) "ph range" true (ph >= 6.0 && ph <= 8.5);
          Alcotest.(check bool) "oxygen range" true (oxy >= 4.0 && oxy <= 12.0)
      | _ -> Alcotest.fail "bad row shape")
    rows

(* -- scheduler -- *)

module Scheduler = Disco_source.Scheduler

let test_scheduler_virtual () =
  let c = Clock.create ~start:5.0 () in
  let s = Scheduler.of_clock c in
  Alcotest.(check bool) "virtual" true (Scheduler.is_virtual s);
  Alcotest.(check (float 0.0)) "reads the clock" 5.0 (Scheduler.now s);
  Scheduler.advance_to s 30.0;
  Alcotest.(check (float 0.0)) "moves the clock" 30.0 (Clock.now c);
  (* pace never touches the shared clock — the retry drain depends on
     that *)
  Scheduler.pace s 1000.0;
  Alcotest.(check (float 0.0)) "pace is a no-op" 30.0 (Clock.now c);
  (* jobs run sequentially in list order *)
  let order = ref [] in
  let out =
    Scheduler.map_rounds s
      (fun i ->
        order := i :: !order;
        i * 10)
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "results in order" [ 10; 20; 30 ] out;
  Alcotest.(check (list int)) "executed in order" [ 1; 2; 3 ] (List.rev !order);
  Scheduler.shutdown s

let test_scheduler_wall () =
  let s = Scheduler.wall ~domains:2 () in
  Alcotest.(check bool) "not virtual" false (Scheduler.is_virtual s);
  let t0 = Scheduler.now s in
  Alcotest.(check bool) "time starts near zero" true (t0 >= 0.0 && t0 < 5000.0);
  Scheduler.advance_to s (t0 +. 5.0);
  Alcotest.(check bool) "advance_to waits" true (Scheduler.now s >= t0 +. 5.0);
  (* past instants return immediately instead of raising *)
  Scheduler.advance_to s 0.0;
  let out = Scheduler.map_rounds s (fun i -> i + 1) [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "parallel map keeps order" [ 2; 3; 4; 5; 6 ] out;
  (* exceptions cross the domain boundary *)
  Alcotest.check_raises "job failure propagates" (Failure "boom") (fun () ->
      ignore
        (Scheduler.map_rounds s
           (fun i -> if i = 2 then failwith "boom" else i)
           [ 1; 2; 3 ]));
  Scheduler.shutdown s;
  Scheduler.shutdown s

let () =
  Alcotest.run "disco_source"
    [
      ("clock", [ Alcotest.test_case "virtual clock" `Quick test_clock ]);
      ( "scheduler",
        [
          Alcotest.test_case "virtual wraps the clock" `Quick
            test_scheduler_virtual;
          Alcotest.test_case "wall pool" `Quick test_scheduler_wall;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "constants" `Quick test_schedule_constants;
          Alcotest.test_case "intervals" `Quick test_schedule_intervals;
          Alcotest.test_case "interval validation" `Quick test_schedule_validation;
          Alcotest.test_case "half-open edges" `Quick test_schedule_half_open_edges;
          Alcotest.test_case "flapping" `Quick test_schedule_flapping;
          Alcotest.test_case "slow_during" `Quick test_schedule_slow_during;
          Alcotest.test_case "flaky deterministic" `Quick
            test_schedule_flaky_deterministic;
          Alcotest.test_case "flaky rate" `Quick test_schedule_flaky_rate;
        ] );
      ( "call",
        [
          Alcotest.test_case "answered with latency" `Quick test_call_answered;
          Alcotest.test_case "unavailable" `Quick test_call_unavailable;
          Alcotest.test_case "deadline" `Quick test_call_deadline;
          Alcotest.test_case "deadline boundary" `Quick test_call_deadline_boundary;
          Alcotest.test_case "timed-out accounting" `Quick test_call_timed_out_stats;
          Alcotest.test_case "slow schedule latency" `Quick test_call_slow_schedule;
          Alcotest.test_case "call_at future instant" `Quick
            test_call_at_future_instant;
          Alcotest.test_case "recovery" `Quick test_call_schedule_recovery;
        ] );
      ( "stores",
        [
          Alcotest.test_case "key-value" `Quick test_kv_store;
          Alcotest.test_case "flat file" `Quick test_flat_file;
        ] );
      ( "datagen",
        [
          Alcotest.test_case "deterministic" `Quick test_datagen_deterministic;
          Alcotest.test_case "water ranges" `Quick test_datagen_water;
        ] );
    ]
