(* Interleaving stress tests for the domain-parallel paths (PR 7's wall
   scheduler and the serving surface). The toolchain has no thread
   sanitizer for OCaml 5.1 and no dscheck, so these hammer the shared
   structures from many threads and domains and assert the invariants a
   race would break:

   - Metrics: concurrent counters and histograms lose no update;
   - Server: submit/stop churn — every admitted request is answered
     even when stop lands mid-burst, and the health counters reconcile
     exactly with the observed replies;
   - Scheduler: the wall scheduler answers exactly like the
     deterministic virtual one, under concurrent sessions too. *)

module V = Disco_value.Value
module Database = Disco_relation.Database
module Source = Disco_source.Source
module Datagen = Disco_source.Datagen
module Scheduler = Disco_source.Scheduler
module Mediator = Disco_core.Mediator
module Runtime = Disco_runtime.Runtime
module Metrics = Disco_obs.Metrics
module Server = Disco_serve.Server

(* -- metrics under domain parallelism -- *)

let test_metrics_hammer () =
  let m = Metrics.create () in
  let domains = 4 and iters = 5000 in
  let spawned =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to iters - 1 do
              Metrics.incr m "hammer.count";
              Metrics.incr ~by:2 m (Fmt.str "hammer.d%d" d);
              Metrics.observe m "hammer.lat" (float_of_int i)
            done))
  in
  List.iter Domain.join spawned;
  Alcotest.(check int)
    "shared counter lost nothing" (domains * iters)
    (Metrics.find_counter m "hammer.count");
  for d = 0 to domains - 1 do
    Alcotest.(check int)
      (Fmt.str "private counter d%d" d)
      (2 * iters)
      (Metrics.find_counter m (Fmt.str "hammer.d%d" d))
  done;
  match Metrics.find_histogram m "hammer.lat" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      Alcotest.(check int) "every observation kept" (domains * iters)
        h.Metrics.h_count;
      Alcotest.(check (float 0.0)) "min" 0.0 h.Metrics.h_min;
      Alcotest.(check (float 0.0))
        "max"
        (float_of_int (iters - 1))
        h.Metrics.h_max;
      Alcotest.(check (float 0.5))
        "sum"
        (float_of_int (domains * iters * (iters - 1) / 2))
        h.Metrics.h_sum

(* -- server submit/stop churn -- *)

(* A burst of submitters racing a concurrent stop. The contract: a
   request admitted before stop is drained and answered; one arriving
   after is refused with Failed — never silently dropped, never
   double-counted. Repeated, since the interesting interleavings are
   timing-dependent. *)
let test_submit_stop_churn () =
  for round = 1 to 6 do
    let worker _i ~tenant:_ oql =
      Thread.yield ();
      Server.Answered { body = oql; elapsed_ms = 0.1 }
    in
    let srv = Server.create ~inflight:3 ~queue_bound:8 ~worker () in
    let n = 24 in
    let replies = Array.make n None in
    let submitters =
      List.init n (fun k ->
          Thread.create
            (fun () ->
              if k mod 4 = 3 then Thread.yield ();
              replies.(k) <-
                Some
                  (Server.submit srv
                     ~tenant:(Fmt.str "t%d" (k mod 3))
                     (Fmt.str "q%d" k)))
            ())
    in
    (* land stop in the middle of the burst *)
    let stopper =
      Thread.create
        (fun () ->
          if round mod 2 = 0 then Thread.yield ();
          Server.stop srv)
        ()
    in
    List.iter Thread.join submitters;
    Thread.join stopper;
    let answered = ref 0 and shed = ref 0 and refused = ref 0 in
    Array.iter
      (function
        | Some (Server.Answered _) -> incr answered
        | Some (Server.Shed _) -> incr shed
        | Some (Server.Failed _) -> incr refused
        | None -> Alcotest.fail "a submitter never got a reply")
      replies;
    let h = Server.health srv in
    Alcotest.(check int)
      (Fmt.str "round %d: replies partition the burst" round)
      n
      (!answered + !shed + !refused);
    Alcotest.(check int)
      (Fmt.str "round %d: completed = answered" round)
      !answered h.Server.h_completed;
    Alcotest.(check int)
      (Fmt.str "round %d: shed counter = shed replies" round)
      !shed h.Server.h_shed;
    Alcotest.(check int)
      (Fmt.str "round %d: no worker errors" round)
      0 h.Server.h_errors;
    Alcotest.(check int)
      (Fmt.str "round %d: backlog drained" round)
      0 h.Server.h_queued;
    Alcotest.(check int)
      (Fmt.str "round %d: nothing in flight" round)
      0 h.Server.h_inflight;
    (* the metrics registry tells the same story as the health struct *)
    let mx = Server.metrics srv in
    Alcotest.(check int)
      (Fmt.str "round %d: admitted = completed" round)
      h.Server.h_completed
      (Metrics.find_counter mx "serve.requests");
    Alcotest.(check int)
      (Fmt.str "round %d: serve.shed agrees" round)
      !shed
      (Metrics.find_counter mx "serve.shed")
  done

(* -- wall scheduler vs virtual scheduler -- *)

let federation ?sched () =
  let config =
    match sched with
    | None -> Mediator.Config.default
    | Some s -> { Mediator.Config.default with sched = Some s }
  in
  let m = Mediator.create ~config ~name:"races" () in
  Mediator.load_odl m
    {|w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute Short id;
        attribute String name;
        attribute Short salary; }|};
  for i = 0 to 2 do
    let db = Database.create ~name:"db" in
    ignore
      (Datagen.table_of db
         ~name:(Fmt.str "person%d" i)
         Datagen.person_schema
         (Datagen.person_rows ~seed:(1000 + i) ~n:8));
    Mediator.register_source m
      ~name:(Fmt.str "r%d" i)
      (Source.create ~id:(Fmt.str "p%d" i)
         ~address:
           (Source.address ~host:(Fmt.str "h%d" i) ~db_name:"db" ~ip:"0" ())
         ~latency:{ Source.base_ms = 1.0; per_row_ms = 0.01; jitter = 0.0 }
         (Source.Relational db));
    Mediator.load_odl m
      (Fmt.str
         {|r%d := Repository(host="h%d", name="db", address="0");
           extent person%d of Person wrapper w0 repository r%d;|}
         i i i i)
  done;
  m

let bag_eq a b =
  let sorted v = List.sort V.compare (V.elements v) in
  List.equal V.equal (sorted a) (sorted b)

let complete = function
  | Mediator.Complete v -> v
  | _ -> Alcotest.fail "expected a complete answer"

let equivalence_queries =
  [
    "select x.name from x in person where x.salary > 100";
    "select x from x in person0 where x.id = 3";
    "select struct(n: x.name, s: x.salary) from x in person1 where x.salary \
     <= 250";
    "select x.name from x in person2";
  ]

let test_scheduler_equivalence () =
  let sched = Scheduler.wall ~domains:3 () in
  let virt = federation () and wall = federation ~sched () in
  let opts = { Mediator.Query_opts.default with timeout_ms = 5000.0 } in
  List.iter
    (fun q ->
      let a = complete (Mediator.query virt q).Mediator.answer
      and b = complete (Mediator.query ~opts wall q).Mediator.answer in
      Alcotest.(check bool)
        (Fmt.str "virtual and wall agree on %S" q)
        true (bag_eq a b))
    equivalence_queries;
  Scheduler.shutdown sched

(* Concurrent sessions over mediator replicas sharing one wall
   scheduler: everything answers and the answers are right — the
   domain-parallel batch issue loses and duplicates nothing. *)
let test_wall_concurrent_sessions () =
  let sched = Scheduler.wall ~domains:3 () in
  let expected =
    complete
      (Mediator.query (federation ())
         "select x.name from x in person where x.salary > 100")
        .Mediator.answer
    |> V.elements |> List.sort V.compare
  in
  let meds = Array.init 3 (fun _ -> federation ~sched ()) in
  let opts = { Mediator.Query_opts.default with timeout_ms = 5000.0 } in
  let worker i ~tenant:_ oql =
    match Mediator.query ~opts meds.(i) oql with
    | o -> (
        match o.Mediator.answer with
        | Mediator.Complete v ->
            Server.Answered
              {
                body =
                  String.concat ","
                    (List.map V.to_string
                       (List.sort V.compare (V.elements v)));
                elapsed_ms = o.Mediator.stats.Runtime.elapsed_ms;
              }
        | _ -> Server.Failed "degraded answer")
    | exception e -> Server.Failed (Printexc.to_string e)
  in
  let srv = Server.create ~inflight:3 ~queue_bound:64 ~worker () in
  let n = 18 in
  let replies = Array.make n None in
  let threads =
    List.init n (fun k ->
        Thread.create
          (fun () ->
            replies.(k) <-
              Some
                (Server.submit srv
                   ~tenant:(Fmt.str "t%d" (k mod 4))
                   "select x.name from x in person where x.salary > 100"))
          ())
  in
  List.iter Thread.join threads;
  let expected_body = String.concat "," (List.map V.to_string expected) in
  Array.iter
    (function
      | Some (Server.Answered { body; _ }) ->
          Alcotest.(check string) "every session got the full answer"
            expected_body body
      | Some (Server.Failed msg) -> Alcotest.fail ("session failed: " ^ msg)
      | Some (Server.Shed _) -> Alcotest.fail "nothing should shed"
      | None -> Alcotest.fail "a session never finished")
    replies;
  let h = Server.health srv in
  Alcotest.(check int) "all completed" n h.Server.h_completed;
  Alcotest.(check int) "no errors" 0 h.Server.h_errors;
  Server.stop srv;
  Scheduler.shutdown sched

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "races"
    [
      ("metrics", [ tc "domain-parallel hammer" test_metrics_hammer ]);
      ("server", [ tc "submit/stop churn" test_submit_stop_churn ]);
      ( "scheduler",
        [
          tc "wall = virtual" test_scheduler_equivalence;
          tc "concurrent wall sessions" test_wall_concurrent_sessions;
        ] );
    ]
