(* Failure-injection tests: outage patterns, mid-run transitions, wrapper
   misbehaviour, map errors — the system must degrade to partial answers
   or clean mediator errors, never crash or return wrong data.

   The central property (paper Section 4) is tested with qcheck over
   random outage subsets: for ANY subset of sources down, the partial
   answer resubmitted after recovery equals the full answer. *)

module V = Disco_value.Value
module Source = Disco_source.Source
module Schedule = Disco_source.Schedule
module Clock = Disco_source.Clock
module Datagen = Disco_source.Datagen
module Database = Disco_relation.Database
module Wrapper = Disco_wrapper.Wrapper
module Grammar = Disco_wrapper.Grammar
module Expr = Disco_algebra.Expr
module Mediator = Disco_core.Mediator

let qopts ?(timeout_ms = 1000.0) ?(semantics = Mediator.Partial_answers)
    ?(type_check = false) ?(static_check = false) () =
  { Mediator.Query_opts.timeout_ms; semantics; type_check; static_check }

let _check_value = Alcotest.testable V.pp V.equal

let federation ?(n = 6) ?(rows = 8) () =
  let m = Mediator.create ~name:"fail" () in
  Mediator.load_odl m
    {|w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute Short id;
        attribute String name;
        attribute Short salary; }|};
  for i = 0 to n - 1 do
    let name = Fmt.str "person%d" i in
    let db = Database.create ~name:"db" in
    ignore
      (Datagen.table_of db ~name Datagen.person_schema
         (Datagen.person_rows ~seed:(500 + i) ~n:rows));
    Mediator.register_source m ~name:(Fmt.str "r%d" i)
      (Source.create ~id:name
         ~address:(Source.address ~host:name ~db_name:"db" ~ip:"0" ())
         ~latency:{ Source.base_ms = 5.0; per_row_ms = 0.0; jitter = 0.0 }
         (Source.Relational db));
    Mediator.load_odl m
      (Fmt.str
         {|r%d := Repository(host="%s", name="db", address="0");
           extent %s of Person wrapper w0 repository r%d;|}
         i name name i)
  done;
  m

let q = "select x.name from x in person where x.salary > 100"

let set_down m i =
  match Mediator.find_source m (Fmt.str "r%d" i) with
  | Some src -> Source.set_schedule src Schedule.always_down
  | None -> ()

let set_up m i =
  match Mediator.find_source m (Fmt.str "r%d" i) with
  | Some src -> Source.set_schedule src Schedule.always_up
  | None -> ()

(* -- property: resubmission equivalence over random outage subsets -- *)

let prop_resubmission_equivalence =
  QCheck.Test.make ~name:"partial answers resubmit to the full answer"
    ~count:120
    QCheck.(
      pair (int_bound 63)
        (oneofl
           [
             q;
             "select struct(n: x.name, s: x.salary) from x in person where \
              x.salary < 250";
             "count(person)" (* hybrid path *);
             "select distinct x.name from x in person";
           ]))
    (fun (mask, query) ->
      let m = federation () in
      let reference =
        match (Mediator.query m query).Mediator.answer with
        | Mediator.Complete v -> v
        | _ -> QCheck.assume_fail ()
      in
      Mediator.clear_plan_cache m;
      for i = 0 to 5 do
        if mask land (1 lsl i) <> 0 then set_down m i
      done;
      let o = Mediator.query ~opts:(qopts ~timeout_ms:50.0 ()) m query in
      for i = 0 to 5 do
        set_up m i
      done;
      match o.Mediator.answer with
      | Mediator.Complete v ->
          (* no source the query needed was down *)
          V.equal v reference
      | Mediator.Unavailable _ -> false
      | Mediator.Partial _ as partial -> (
          match (Mediator.resubmit m partial).Mediator.answer with
          | Mediator.Complete v -> V.equal v reference
          | _ -> false))

(* -- mid-run transitions -- *)

let test_source_recovers_between_queries () =
  let m = federation ~n:3 () in
  (match Mediator.find_source m "r1" with
  | Some src -> Source.set_schedule src (Schedule.down_during [ (0.0, 100.0) ])
  | None -> ());
  let o1 = Mediator.query ~opts:(qopts ~timeout_ms:20.0 ()) m q in
  (match o1.Mediator.answer with
  | Mediator.Partial { unavailable = [ "r1" ]; _ } -> ()
  | _ -> Alcotest.fail "expected r1 partial");
  (* the deadline advanced the clock; advance beyond recovery *)
  Clock.advance (Mediator.clock m) 200.0;
  match (Mediator.query m q).Mediator.answer with
  | Mediator.Complete _ -> ()
  | _ -> Alcotest.fail "expected recovery"

let test_flapping_source () =
  let m = federation ~n:2 () in
  (match Mediator.find_source m "r0" with
  | Some src ->
      Source.set_schedule src
        (Schedule.flaky ~seed:3 ~period:50.0 ~availability:0.5)
  | None -> ());
  (* many queries against a flapping source: always an answer, never a
     crash, and partials always resubmittable text *)
  for _ = 1 to 40 do
    let o = Mediator.query ~opts:(qopts ~timeout_ms:25.0 ()) m q in
    (match o.Mediator.answer with
    | Mediator.Complete _ -> ()
    | Mediator.Partial _ as p ->
        ignore (Disco_oql.Parser.parse (Mediator.answer_oql p))
    | Mediator.Unavailable _ -> Alcotest.fail "unexpected wait-all result");
    Clock.advance (Mediator.clock m) 50.0
  done

(* -- wrapper misbehaviour -- *)

let test_wrapper_raises () =
  (* a wrapper whose execute raises must not kill the mediator: the
     runtime reports it and the mediator falls back, then errors
     cleanly *)
  let bomb =
    Wrapper.make ~name:"WrapperBomb" ~grammar:Grammar.full_relational
      ~execute:(fun _ _ -> Error (Wrapper.Native_error "boom"))
      ()
  in
  let m = federation ~n:1 () in
  Mediator.register_wrapper m ~name:"w0" bomb;
  Mediator.clear_plan_cache m;
  try
    ignore (Mediator.query m q);
    Alcotest.fail "expected a runtime error"
  with Disco_runtime.Runtime.Runtime_error msg ->
    Alcotest.(check bool) "mentions boom" true
      (String.length msg > 0)

let test_wrapper_returns_garbage_shape () =
  (* wrapper returns a non-collection: the runtime's rename passes it
     through and local execution raises a clean error *)
  let weird =
    Wrapper.make ~name:"WrapperWeird" ~grammar:Grammar.get_only
      ~execute:(fun _ _ -> Ok (V.Int 42, 1))
      ()
  in
  let m = federation ~n:1 () in
  Mediator.register_wrapper m ~name:"w0" weird;
  Mediator.clear_plan_cache m;
  match Mediator.query m q with
  | exception Disco_physical.Plan.Physical_error _ -> ()
  | exception Disco_value.Value.Type_error _ -> ()
  | exception Mediator.Mediator_error _ -> ()
  | exception Disco_algebra.Expr.Algebra_error _ -> ()
  | _ -> Alcotest.fail "garbage shape silently accepted"

(* -- schema / map errors -- *)

let test_map_to_missing_source_field () =
  (* the map sends salary to a column the source does not have: the SQL
     wrapper reports it, the mediator falls back, then errors cleanly *)
  let m = federation ~n:1 () in
  Mediator.load_odl m
    {|
    interface PersonPrime {
      attribute String n;
      attribute Short s; }
    extent pp0 of PersonPrime wrapper w0 repository r0
      map ((person0=pp0),(nosuch=n),(missing=s));
  |};
  match Mediator.query m "select x.n from x in pp0 where x.s > 0" with
  | exception Disco_runtime.Runtime.Runtime_error _ -> ()
  | exception Mediator.Mediator_error _ -> ()
  | o -> (
      match o.Mediator.answer with
      | Mediator.Complete _ -> Alcotest.fail "should not succeed"
      | _ -> ())

let test_query_unknown_extent () =
  let m = federation ~n:1 () in
  try
    ignore (Mediator.query m "select x from x in martians");
    Alcotest.fail "expected error"
  with Mediator.Mediator_error msg ->
    Alcotest.(check bool) "names the unknown" true
      (String.length msg > 0)

let test_source_without_attachment () =
  let m = Mediator.create ~name:"na" () in
  Mediator.load_odl m
    {|r0 := Repository(host="h", name="d", address="0");
      w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute String name;
        attribute Short salary; }
      extent person0 of Person wrapper w0 repository r0;|};
  try
    ignore (Mediator.query m q);
    Alcotest.fail "expected error about missing source"
  with Mediator.Mediator_error msg ->
    Alcotest.(check bool) "mentions repository" true
      (String.length msg > 0)

(* -- data changes between partial answer and resubmission -- *)

let test_stale_hint () =
  let m = federation ~n:2 () in
  set_down m 1;
  let o = Mediator.query ~opts:(qopts ~timeout_ms:20.0 ()) m q in
  (match o.Mediator.answer with
  | Mediator.Partial _ as p ->
      Alcotest.(check (list string)) "nothing stale yet" []
        (Mediator.stale_hint m p)
  | _ -> Alcotest.fail "expected partial");
  (* mutate the answered source, then ask again for the hint *)
  (match Mediator.find_source m "r0" with
  | Some src -> (
      match Source.kind src with
      | Source.Relational db ->
          let t = Database.get_table db "person0" in
          Disco_relation.Table.insert t [| V.Int 99; V.String "New"; V.Int 999 |]
      | _ -> ())
  | None -> ());
  Alcotest.(check (list string)) "answered source now stale" [ "r0" ]
    (Mediator.stale_hint m o.Mediator.answer);
  set_up m 1;
  (* re-running the query gives the fresh complete answer including the
     new row *)
  match (Mediator.query m q).Mediator.answer with
  | Mediator.Complete v ->
      Alcotest.(check bool) "new row visible" true
        (List.exists
           (fun x -> V.equal x (V.String "New"))
           (V.elements v))
  | _ -> Alcotest.fail "expected complete after recovery"

let test_deep_nesting_robustness () =
  (* a deeply nested query exercises parser/eval recursion *)
  let m = federation ~n:1 () in
  let rec nest k inner =
    if k = 0 then inner
    else nest (k - 1) (Fmt.str "(select t from t in %s)" inner)
  in
  let deep = Fmt.str "count(%s)" (nest 30 "person0") in
  match (Mediator.query m deep).Mediator.answer with
  | Mediator.Complete (V.Int 8) -> ()
  | Mediator.Complete v -> Alcotest.fail (V.to_string v)
  | _ -> Alcotest.fail "expected complete"

let () =
  Alcotest.run "disco_failures"
    [
      ( "outage-patterns",
        [
          QCheck_alcotest.to_alcotest prop_resubmission_equivalence;
          Alcotest.test_case "recovery between queries" `Quick
            test_source_recovers_between_queries;
          Alcotest.test_case "flapping source" `Quick test_flapping_source;
        ] );
      ( "wrapper-misbehaviour",
        [
          Alcotest.test_case "wrapper native failure" `Quick test_wrapper_raises;
          Alcotest.test_case "garbage answer shape" `Quick
            test_wrapper_returns_garbage_shape;
        ] );
      ( "schema-errors",
        [
          Alcotest.test_case "map to missing field" `Quick
            test_map_to_missing_source_field;
          Alcotest.test_case "unknown extent" `Quick test_query_unknown_extent;
          Alcotest.test_case "unattached repository" `Quick
            test_source_without_attachment;
        ] );
      ( "staleness-and-depth",
        [
          Alcotest.test_case "data changes after partial" `Quick test_stale_hint;
          Alcotest.test_case "deep nesting" `Quick test_deep_nesting_robustness;
        ] );
    ]
