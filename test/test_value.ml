(* Unit and property tests for Disco_value.Value: the ODMG value domain. *)

module V = Disco_value.Value

let check_value = Alcotest.testable V.pp V.equal
let v_int i = V.Int i
let v_str s = V.String s

(* A qcheck generator of values, bounded in depth so canonicalization work
   stays small. *)
let value_gen =
  let open QCheck.Gen in
  let atom =
    oneof
      [
        return V.Null;
        map (fun b -> V.Bool b) bool;
        map (fun i -> V.Int i) (int_range (-1000) 1000);
        map (fun f -> V.Float f) (float_range (-1e6) 1e6);
        map (fun s -> V.String s) (string_size ~gen:printable (int_range 0 8));
      ]
  in
  let rec value depth =
    if depth = 0 then atom
    else
      frequency
        [
          (3, atom);
          (1, map V.bag (list_size (int_range 0 4) (value (depth - 1))));
          (1, map V.set (list_size (int_range 0 4) (value (depth - 1))));
          (1, map V.list (list_size (int_range 0 4) (value (depth - 1))));
          ( 1,
            map
              (fun vs ->
                V.strct (List.mapi (fun i v -> (Printf.sprintf "f%d" i, v)) vs))
              (list_size (int_range 0 3) (value (depth - 1))) );
        ]
  in
  value 3

let arb_value = QCheck.make ~print:V.to_string value_gen

(* -- unit tests -- *)

let test_bag_canonical () =
  Alcotest.check check_value "bag order irrelevant"
    (V.bag [ v_str "Mary"; v_str "Sam" ])
    (V.bag [ v_str "Sam"; v_str "Mary" ]);
  Alcotest.check Alcotest.bool "bag keeps duplicates" true
    (V.equal (V.bag [ v_int 1; v_int 1 ]) (V.Bag [ V.Int 1; V.Int 1 ]))

let test_set_dedup () =
  Alcotest.check check_value "set dedups"
    (V.set [ v_int 1; v_int 1; v_int 2 ])
    (V.set [ v_int 2; v_int 1 ])

let test_struct_sorted () =
  let s = V.strct [ ("salary", v_int 200); ("name", v_str "Mary") ] in
  match s with
  | V.Struct [ ("name", _); ("salary", _) ] -> ()
  | _ -> Alcotest.fail "struct fields not sorted"

let test_struct_dup_field () =
  Alcotest.check_raises "duplicate field rejected"
    (V.Type_error "duplicate struct field a") (fun () ->
      ignore (V.strct [ ("a", v_int 1); ("a", v_int 2) ]))

let test_field_access () =
  let s = V.strct [ ("name", v_str "Mary"); ("salary", v_int 200) ] in
  Alcotest.check check_value "field" (v_str "Mary") (V.field s "name");
  Alcotest.check check_value "null propagates" V.Null (V.field V.Null "name");
  Alcotest.check_raises "missing field" (V.Type_error "struct has no field x")
    (fun () -> ignore (V.field s "x"))

let test_bag_union () =
  (* Paper Section 1.3: the union of two bags is a bag. *)
  let u =
    V.bag_union (V.bag [ v_str "Mary" ]) (V.bag [ v_str "Sam"; v_str "Mary" ])
  in
  Alcotest.check check_value "multiset sum"
    (V.bag [ v_str "Mary"; v_str "Mary"; v_str "Sam" ])
    u

let test_flatten () =
  let nested = V.bag [ V.bag [ v_int 1; v_int 2 ]; V.bag [ v_int 3 ] ] in
  Alcotest.check check_value "flatten"
    (V.bag [ v_int 1; v_int 2; v_int 3 ])
    (V.flatten nested);
  let sets = V.set [ V.set [ v_int 1 ]; V.set [ v_int 1; v_int 2 ] ] in
  Alcotest.check check_value "flatten sets stays set"
    (V.set [ v_int 1; v_int 2 ])
    (V.flatten sets)

let test_aggregates () =
  let c = V.bag [ v_int 10; v_int 20; V.Null; v_int 30 ] in
  Alcotest.check check_value "count includes null" (v_int 4) (V.agg_count c);
  Alcotest.check check_value "sum skips null" (v_int 60) (V.agg_sum c);
  Alcotest.check check_value "avg" (V.Float 20.0) (V.agg_avg c);
  Alcotest.check check_value "min" (v_int 10) (V.agg_min c);
  Alcotest.check check_value "max" (v_int 30) (V.agg_max c);
  Alcotest.check check_value "sum of empty" (v_int 0) (V.agg_sum (V.bag []));
  Alcotest.check check_value "min of empty" V.Null (V.agg_min (V.bag []));
  Alcotest.check check_value "mixed numeric sum" (V.Float 3.5)
    (V.agg_sum (V.bag [ v_int 1; V.Float 2.5 ]))

let test_numeric_compare () =
  Alcotest.(check (option int))
    "int vs float" (Some 0)
    (V.numeric_compare (v_int 2) (V.Float 2.0));
  Alcotest.(check (option int))
    "incomparable" None
    (V.numeric_compare (v_int 2) (v_str "a"));
  Alcotest.(check bool)
    "null below all" true
    (V.numeric_compare V.Null (v_int 0) = Some (-1))

let test_inter_diff () =
  let a = V.bag [ v_int 1; v_int 1; v_int 2 ] in
  let b = V.bag [ v_int 1; v_int 2; v_int 3 ] in
  Alcotest.check check_value "bag inter"
    (V.bag [ v_int 1; v_int 2 ])
    (V.inter a b);
  Alcotest.check check_value "bag diff" (V.bag [ v_int 1 ]) (V.diff a b);
  Alcotest.check check_value "set diff"
    (V.set [ v_int 3 ])
    (V.diff (V.set [ v_int 1; v_int 3 ]) (V.set [ v_int 1 ]))

let test_pp () =
  Alcotest.(check string)
    "paper rendering" {|Bag("Mary", "Sam")|}
    (V.to_string (V.bag [ v_str "Sam"; v_str "Mary" ]));
  Alcotest.(check string)
    "struct rendering" {|struct(name: "Mary", salary: 200)|}
    (V.to_string (V.strct [ ("salary", v_int 200); ("name", v_str "Mary") ]))

(* -- property tests -- *)

let prop_compare_refl =
  QCheck.Test.make ~name:"compare is reflexive" ~count:200 arb_value (fun v ->
      V.compare v v = 0)

let prop_compare_antisym =
  QCheck.Test.make ~name:"compare is antisymmetric" ~count:200
    (QCheck.pair arb_value arb_value) (fun (a, b) ->
      let c1 = V.compare a b and c2 = V.compare b a in
      (c1 = 0 && c2 = 0) || (c1 > 0 && c2 < 0) || (c1 < 0 && c2 > 0))

let prop_compare_trans =
  QCheck.Test.make ~name:"compare is transitive" ~count:200
    (QCheck.triple arb_value arb_value arb_value) (fun (a, b, c) ->
      let sorted = List.sort V.compare [ a; b; c ] in
      match sorted with
      | [ x; y; z ] -> V.compare x y <= 0 && V.compare y z <= 0 && V.compare x z <= 0
      | _ -> false)

let prop_bag_union_comm =
  QCheck.Test.make ~name:"bag union commutes" ~count:200
    (QCheck.pair
       (QCheck.map V.bag (QCheck.list_of_size (QCheck.Gen.int_range 0 6) arb_value))
       (QCheck.map V.bag (QCheck.list_of_size (QCheck.Gen.int_range 0 6) arb_value)))
    (fun (a, b) -> V.equal (V.bag_union a b) (V.bag_union b a))

let prop_bag_union_cardinal =
  QCheck.Test.make ~name:"bag union adds cardinalities" ~count:200
    (QCheck.pair
       (QCheck.map V.bag (QCheck.list_of_size (QCheck.Gen.int_range 0 6) arb_value))
       (QCheck.map V.bag (QCheck.list_of_size (QCheck.Gen.int_range 0 6) arb_value)))
    (fun (a, b) ->
      V.cardinal (V.bag_union a b) = V.cardinal a + V.cardinal b)

let prop_set_idempotent =
  QCheck.Test.make ~name:"set union is idempotent" ~count:200
    (QCheck.map V.set (QCheck.list_of_size (QCheck.Gen.int_range 0 6) arb_value))
    (fun s -> V.equal (V.set_union s s) s)

let prop_distinct_subset =
  QCheck.Test.make ~name:"distinct never grows a bag" ~count:200
    (QCheck.map V.bag (QCheck.list_of_size (QCheck.Gen.int_range 0 8) arb_value))
    (fun b -> V.cardinal (V.distinct b) <= V.cardinal b)

let prop_inter_diff_partition =
  QCheck.Test.make ~name:"inter + diff partition a bag" ~count:200
    (QCheck.pair
       (QCheck.map V.bag (QCheck.list_of_size (QCheck.Gen.int_range 0 8) arb_value))
       (QCheck.map V.bag (QCheck.list_of_size (QCheck.Gen.int_range 0 8) arb_value)))
    (fun (a, b) ->
      V.equal (V.bag_union (V.inter a b) (V.diff a b)) a)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_compare_refl;
      prop_compare_antisym;
      prop_compare_trans;
      prop_bag_union_comm;
      prop_bag_union_cardinal;
      prop_set_idempotent;
      prop_distinct_subset;
      prop_inter_diff_partition;
    ]

let () =
  Alcotest.run "disco_value"
    [
      ( "value",
        [
          Alcotest.test_case "bag canonical form" `Quick test_bag_canonical;
          Alcotest.test_case "set dedup" `Quick test_set_dedup;
          Alcotest.test_case "struct field sorting" `Quick test_struct_sorted;
          Alcotest.test_case "struct duplicate field" `Quick test_struct_dup_field;
          Alcotest.test_case "field access" `Quick test_field_access;
          Alcotest.test_case "bag union" `Quick test_bag_union;
          Alcotest.test_case "flatten" `Quick test_flatten;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "numeric compare" `Quick test_numeric_compare;
          Alcotest.test_case "inter and diff" `Quick test_inter_diff;
          Alcotest.test_case "pretty printing" `Quick test_pp;
        ] );
      ("value.properties", qcheck_cases);
    ]
