(* Tests for the wrapper layer: capability grammars, name-space
   translation through type maps, SQL generation, and the built-in
   wrapper implementations. *)

module V = Disco_value.Value
module Schema = Disco_relation.Schema
module Database = Disco_relation.Database
module Table = Disco_relation.Table
module Sql = Disco_relation.Sql
module Source = Disco_source.Source
module Datagen = Disco_source.Datagen
module Typemap = Disco_odl.Typemap
module Expr = Disco_algebra.Expr
module Grammar = Disco_wrapper.Grammar
module Translate = Disco_wrapper.Translate
module Sqlgen = Disco_wrapper.Sqlgen
module Wrapper = Disco_wrapper.Wrapper

let check_value = Alcotest.testable V.pp V.equal

(* helpers *)
let get = Expr.Get "person0"
let bind v e = Expr.Map (e, Expr.Hstruct [ (v, Expr.Attr []) ])
let gt_pred = Expr.Cmp (Expr.Gt, Expr.Attr [ "salary" ], Expr.Const (V.Int 10))

let person_db ~n = Datagen.person_db ~seed:7 ~name:"person0" ~n

let relational_source ?schedule ~n () =
  Source.create ~id:"r0"
    ~address:(Source.address ~host:"rodin" ~db_name:"db" ~ip:"1.2.3.4" ())
    ?schedule
    (Source.Relational (person_db ~n))

let resolve_db db name =
  Option.map Table.to_bag (Database.find_table db name)

(* -- grammar -- *)

let test_grammar_paper_example () =
  (* The paper's literal no-composition grammar text. *)
  let g =
    Grammar.parse
      "a :- b\n\
       a :- c\n\
       b :- get OPEN SOURCE CLOSE\n\
       c :- project OPEN ATTRIBUTE COMMA b CLOSE"
  in
  Alcotest.(check bool) "get ok" true (Grammar.accepts g get);
  Alcotest.(check bool) "project(get) ok" true
    (Grammar.accepts g (Expr.Project (get, [ "name" ])));
  Alcotest.(check bool) "no composition" false
    (Grammar.accepts g (Expr.Project (Expr.Select (get, gt_pred), [ "name" ])));
  Alcotest.(check bool) "no select" false
    (Grammar.accepts g (Expr.Select (get, gt_pred)))

let test_grammar_capability_lattice () =
  (* Monotonicity: everything the weaker grammars accept, full_relational
     accepts. *)
  let candidates =
    [
      get;
      Expr.Select (get, gt_pred);
      Expr.Project (get, [ "name"; "salary" ]);
      Expr.Project (get, [ "name" ]);
      Expr.Select
        (get, Expr.Cmp (Expr.Eq, Expr.Attr [ "key" ], Expr.Const (V.String "k")));
      Expr.Join
        ( bind "x" get,
          bind "y" (Expr.Get "person1"),
          [ ([ "x"; "id" ], [ "y"; "id" ]) ] );
      Expr.Distinct (Expr.Map (get, Expr.Hscalar (Expr.Attr [ "name" ])));
    ]
  in
  let weak =
    [
      Grammar.get_only;
      Grammar.project_no_compose;
      Grammar.select_pushdown ();
      Grammar.key_lookup;
    ]
  in
  List.iter
    (fun e ->
      List.iter
        (fun g ->
          if Grammar.accepts g e then
            Alcotest.(check bool)
              (Fmt.str "full accepts %s" (Expr.to_string e))
              true
              (Grammar.accepts Grammar.full_relational e))
        weak)
    candidates

let test_grammar_comparison_restriction () =
  let eq_only = Grammar.select_pushdown ~comparisons:[ "=" ] () in
  let eq_sel =
    Expr.Select (get, Expr.Cmp (Expr.Eq, Expr.Attr [ "id" ], Expr.Const (V.Int 1)))
  in
  Alcotest.(check bool) "equality accepted" true (Grammar.accepts eq_only eq_sel);
  Alcotest.(check bool) "range refused" false (Grammar.accepts eq_only (Expr.Select (get, gt_pred)))

let test_grammar_submit_never_nested () =
  Alcotest.(check bool) "nested submit unparseable" false
    (Grammar.accepts Grammar.full_relational
       (Expr.Select (Expr.Submit ("r1", get), gt_pred)))

(* -- translation -- *)

let prime_map =
  Typemap.make
    ~collection:("person0", "personprime0")
    [ ("name", "n"); ("salary", "s") ]

let map_of name = if name = "personprime0" then prime_map else Typemap.identity

let test_translate_to_source () =
  (* Mediator query over personprime0 with mapped names -> source query
     over person0 with source names (paper Section 2.2.2). *)
  let e =
    Expr.Select
      ( Expr.Get "personprime0",
        Expr.Cmp (Expr.Gt, Expr.Attr [ "s" ], Expr.Const (V.Int 10)) )
  in
  match Translate.to_source ~map_of e with
  | Expr.Select
      (Expr.Get "person0", Expr.Cmp (Expr.Gt, Expr.Attr [ "salary" ], _)) ->
      ()
  | e' -> Alcotest.fail ("bad translation: " ^ Expr.to_string e')

let test_translate_binding_paths () =
  let e =
    Expr.Select
      ( bind "x" (Expr.Get "personprime0"),
        Expr.Cmp (Expr.Gt, Expr.Attr [ "x"; "s" ], Expr.Const (V.Int 10)) )
  in
  match Translate.to_source ~map_of e with
  | Expr.Select (_, Expr.Cmp (Expr.Gt, Expr.Attr [ "x"; "salary" ], _)) -> ()
  | e' -> Alcotest.fail ("bad binding translation: " ^ Expr.to_string e')

let test_answer_renamer () =
  let e = Expr.Get "personprime0" in
  let rename = Translate.answer_renamer ~map_of e in
  let src_answer =
    V.bag [ V.strct [ ("name", V.String "Mary"); ("salary", V.Int 200) ] ]
  in
  Alcotest.check check_value "tuple renamed"
    (V.bag [ V.strct [ ("n", V.String "Mary"); ("s", V.Int 200) ] ])
    (rename src_answer)

let test_answer_renamer_computed_head () =
  (* Computed projections keep mediator labels: no renaming. *)
  let e =
    Expr.Map
      ( Expr.Get "personprime0",
        Expr.Hstruct [ ("label", Expr.Attr [ "s" ]) ] )
  in
  let rename = Translate.answer_renamer ~map_of e in
  let answer = V.bag [ V.strct [ ("label", V.Int 5) ] ] in
  Alcotest.check check_value "labels untouched" answer (rename answer)

let test_answer_renamer_binding_struct () =
  let e = bind "x" (Expr.Get "personprime0") in
  let rename = Translate.answer_renamer ~map_of e in
  let answer =
    V.bag
      [ V.strct [ ("x", V.strct [ ("name", V.String "a"); ("salary", V.Int 1) ]) ] ]
  in
  Alcotest.check check_value "nested rename"
    (V.bag [ V.strct [ ("x", V.strct [ ("n", V.String "a"); ("s", V.Int 1) ]) ] ])
    (rename answer)

(* -- sqlgen -- *)

let schema_of db table =
  Option.map (fun t -> Schema.column_names (Table.schema t)) (Database.find_table db table)

let run_sqlgen db e =
  let { Sqlgen.sql; rebuild } = Sqlgen.compile ~schema_of:(schema_of db) e in
  rebuild (Sql.run db sql)

let test_sqlgen_matches_reference () =
  let db = person_db ~n:40 in
  let resolve = resolve_db db in
  let cases =
    [
      get;
      Expr.Select (get, gt_pred);
      Expr.Project (get, [ "name" ]);
      Expr.Project (Expr.Select (get, gt_pred), [ "name"; "salary" ]);
      Expr.Map
        ( Expr.Select (get, gt_pred),
          Expr.Hscalar (Expr.Attr [ "name" ]) );
      Expr.Map
        ( get,
          Expr.Hstruct
            [
              ("n", Expr.Attr [ "name" ]);
              ("s2", Expr.Arith (Expr.Mul, Expr.Attr [ "salary" ], Expr.Const (V.Int 2)));
            ] );
      Expr.Distinct (Expr.Map (get, Expr.Hscalar (Expr.Attr [ "salary" ])));
      bind "x" (Expr.Select (get, gt_pred));
    ]
  in
  List.iter
    (fun e ->
      let expected = Expr.eval ~resolve e in
      let got = run_sqlgen db e in
      (* SQL DISTINCT yields a bag of unique rows; reference gives a set *)
      let expected =
        match expected with V.Set xs -> V.bag xs | v -> v
      in
      Alcotest.check check_value (Expr.to_string e) expected got)
    cases

let test_sqlgen_join () =
  let db = Database.create ~name:"db" in
  ignore
    (Datagen.table_of db ~name:"employee0" Datagen.employee_schema
       (Datagen.employee_rows ~seed:3 ~n:25 ~depts:4));
  ignore
    (Datagen.table_of db ~name:"manager0" Datagen.manager_schema
       (Datagen.manager_rows ~seed:3 ~depts:4));
  let e =
    Expr.Join
      ( bind "e" (Expr.Get "employee0"),
        bind "m" (Expr.Get "manager0"),
        [ ([ "e"; "dept" ], [ "m"; "dept" ]) ] )
  in
  let expected = Expr.eval ~resolve:(resolve_db db) e in
  Alcotest.check check_value "join via SQL" expected (run_sqlgen db e);
  (* and with a computed head over the join *)
  let e2 =
    Expr.Map
      ( e,
        Expr.Hstruct
          [ ("who", Expr.Attr [ "e"; "name" ]); ("boss", Expr.Attr [ "m"; "name" ]) ] )
  in
  let expected2 = Expr.eval ~resolve:(resolve_db db) e2 in
  Alcotest.check check_value "join + head via SQL" expected2 (run_sqlgen db e2)

let test_sqlgen_whole_tuple_head () =
  let db = person_db ~n:10 in
  let e =
    Expr.Map
      ( bind "x" (Expr.Select (get, gt_pred)),
        Expr.Hstruct [ ("p", Expr.Attr [ "x" ]) ] )
  in
  let expected = Expr.eval ~resolve:(resolve_db db) e in
  Alcotest.check check_value "whole-tuple field" expected (run_sqlgen db e)

let test_sqlgen_unsupported () =
  let db = person_db ~n:5 in
  let union = Expr.Union [ get; get ] in
  (try
     ignore (run_sqlgen db union);
     Alcotest.fail "expected Unsupported"
   with Sqlgen.Unsupported _ -> ());
  let deep = Expr.Select (get, Expr.Cmp (Expr.Eq, Expr.Attr [ "a"; "b"; "c" ], Expr.Const V.Null)) in
  try
    ignore (run_sqlgen db deep);
    Alcotest.fail "expected Unsupported on deep path"
  with Sqlgen.Unsupported _ -> ()

(* -- wrappers -- *)

let test_sql_wrapper_executes () =
  let src = relational_source ~n:30 () in
  let w = Wrapper.sql_wrapper () in
  Alcotest.(check bool) "accepts select" true
    (Wrapper.accepts w (Expr.Select (get, gt_pred)));
  match Wrapper.execute w src (Expr.Select (get, gt_pred)) with
  | Ok (v, n) ->
      Alcotest.(check int) "row count" (V.cardinal v) n;
      Alcotest.(check bool) "all filtered" true
        (List.for_all
           (fun p -> V.to_int (V.field p "salary") > 10)
           (V.elements v))
  | Error e -> Alcotest.fail (Wrapper.error_message e)

let test_scan_wrapper_refuses () =
  let src = relational_source ~n:5 () in
  let w = Wrapper.scan_wrapper () in
  Alcotest.(check bool) "grammar refuses select" false
    (Wrapper.accepts w (Expr.Select (get, gt_pred)));
  (* even if the mediator ignores the grammar, execution refuses *)
  (match Wrapper.execute w src (Expr.Select (get, gt_pred)) with
  | Error (Wrapper.Refused _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected refusal");
  match Wrapper.execute w src get with
  | Ok (v, _) -> Alcotest.(check int) "scan ships everything" 5 (V.cardinal v)
  | Error e -> Alcotest.fail (Wrapper.error_message e)

let test_project_wrapper () =
  let src = relational_source ~n:5 () in
  let w = Wrapper.project_wrapper () in
  (match Wrapper.execute w src (Expr.Project (get, [ "name" ])) with
  | Ok (v, _) ->
      List.iter
        (fun p ->
          match p with
          | V.Struct [ ("name", _) ] -> ()
          | _ -> Alcotest.fail "extra fields")
        (V.elements v)
  | Error e -> Alcotest.fail (Wrapper.error_message e));
  match Wrapper.execute w src (Expr.Project (Expr.Select (get, gt_pred), [ "name" ])) with
  | Error (Wrapper.Refused _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "composition should be refused"

let test_kv_wrapper () =
  let tbl = Hashtbl.create 8 in
  let src =
    Source.create ~id:"kv0"
      ~address:(Source.address ~host:"h" ~db_name:"kv" ~ip:"0.0.0.0" ())
      (Source.Key_value tbl)
  in
  Source.kv_put src "mary"
    (V.strct [ ("key", V.String "mary"); ("salary", V.Int 200) ]);
  Source.kv_put src "sam"
    (V.strct [ ("key", V.String "sam"); ("salary", V.Int 50) ]);
  let w = Wrapper.kv_wrapper () in
  let lookup =
    Expr.Select
      ( Expr.Get "people",
        Expr.Cmp (Expr.Eq, Expr.Attr [ "key" ], Expr.Const (V.String "mary")) )
  in
  Alcotest.(check bool) "grammar accepts key lookup" true (Wrapper.accepts w lookup);
  (match Wrapper.execute w src lookup with
  | Ok (v, 1) ->
      Alcotest.check check_value "lookup"
        (V.bag [ V.strct [ ("key", V.String "mary"); ("salary", V.Int 200) ] ])
        v
  | Ok _ -> Alcotest.fail "expected one row"
  | Error e -> Alcotest.fail (Wrapper.error_message e));
  (match Wrapper.execute w src (Expr.Get "people") with
  | Ok (v, 2) -> Alcotest.(check int) "scan" 2 (V.cardinal v)
  | Ok _ | Error _ -> Alcotest.fail "scan failed");
  match Wrapper.execute w src (Expr.Select (Expr.Get "people", gt_pred)) with
  | Error (Wrapper.Refused _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "range filter should be refused"

let test_file_wrapper () =
  let src =
    Source.create ~id:"f0"
      ~address:(Source.address ~host:"h" ~db_name:"f" ~ip:"0.0.0.0" ())
      (Source.Flat_file (ref []))
  in
  Source.file_append src (V.strct [ ("line", V.String "a") ]);
  let w = Wrapper.file_wrapper () in
  (match Wrapper.execute w src (Expr.Get "records") with
  | Ok (v, 1) -> Alcotest.(check int) "one record" 1 (V.cardinal v)
  | Ok _ | Error _ -> Alcotest.fail "file scan failed");
  match Wrapper.execute w src (Expr.Select (Expr.Get "records", gt_pred)) with
  | Error (Wrapper.Refused _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "filter should be refused"

let test_text_wrapper () =
  let module Text_index = Disco_source.Text_index in
  let idx = Text_index.create () in
  ignore (Text_index.add idx ~title:"Water quality" ~body:"nitrate levels in the Seine");
  ignore (Text_index.add idx ~title:"Air quality" ~body:"ozone and particulates");
  ignore (Text_index.add idx ~title:"Seine flows" ~body:"discharge measurements");
  let src =
    Source.create ~id:"wais0"
      ~address:(Source.address ~host:"wais" ~db_name:"docs" ~ip:"0" ())
      (Source.Text idx)
  in
  let w = Wrapper.text_wrapper () in
  let keyword field word =
    Expr.Select
      ( Expr.Get "docs",
        Expr.Cmp
          (Expr.Like, Expr.Attr [ field ], Expr.Const (V.String ("%" ^ word ^ "%"))) )
  in
  Alcotest.(check bool) "grammar accepts keyword" true
    (Wrapper.accepts w (keyword "body" "nitrate"));
  Alcotest.(check bool) "grammar refuses range" false
    (Wrapper.accepts w (Expr.Select (Expr.Get "docs", gt_pred)));
  (match Wrapper.execute w src (keyword "body" "seine") with
  | Ok (v, 1) ->
      Alcotest.(check bool) "case-insensitive index hit" true
        (match V.elements v with
        | [ d ] -> V.equal (V.field d "title") (V.String "Water quality")
        | _ -> false)
  | Ok (_, n) -> Alcotest.fail (Fmt.str "expected 1 doc, got %d" n)
  | Error e -> Alcotest.fail (Wrapper.error_message e));
  (match Wrapper.execute w src (keyword "title" "quality") with
  | Ok (_, 2) -> ()
  | Ok (_, n) -> Alcotest.fail (Fmt.str "title search: expected 2, got %d" n)
  | Error e -> Alcotest.fail (Wrapper.error_message e));
  (match Wrapper.execute w src (Expr.Get "docs") with
  | Ok (_, 3) -> ()
  | _ -> Alcotest.fail "scan failed");
  (* multi-keyword patterns are outside the WAIS model: refused *)
  match Wrapper.execute w src (keyword "body" "nitrate% %ozone") with
  | Error (Wrapper.Refused _) -> ()
  | _ -> Alcotest.fail "expected refusal of complex pattern"

let test_text_wrapper_through_mediator () =
  let module Text_index = Disco_source.Text_index in
  let module Mediator = Disco_core.Mediator in
  let idx = Text_index.create () in
  ignore (Text_index.add idx ~title:"Doc A" ~body:"mediator architectures");
  ignore (Text_index.add idx ~title:"Doc B" ~body:"wrapper grammars");
  let m = Mediator.create ~name:"wais" () in
  Mediator.register_source m ~name:"rw"
    (Source.create ~id:"wais"
       ~address:(Source.address ~host:"wais" ~db_name:"docs" ~ip:"0" ())
       (Source.Text idx));
  Mediator.load_odl m
    {|rw := Repository(host="wais", name="docs", address="0");
      ww := WrapperWais();
      interface Doc (extent docs) {
        attribute Short id;
        attribute String title;
        attribute String body; }
      extent docs0 of Doc wrapper ww repository rw;|};
  match
    (Mediator.query m
       {|select d.title from d in docs where d.body like "%grammars%"|})
      .Mediator.answer
  with
  | Mediator.Complete v ->
      Alcotest.(check bool) "keyword query" true
        (V.equal v (V.bag [ V.String "Doc B" ]))
  | _ -> Alcotest.fail "expected complete"

let test_of_constructor () =
  Alcotest.(check bool) "WrapperPostgres" true
    (Wrapper.of_constructor "WrapperPostgres" <> None);
  Alcotest.(check bool) "case-insensitive" true
    (Wrapper.of_constructor "wrapperscan" <> None);
  Alcotest.(check bool) "unknown" true (Wrapper.of_constructor "Nope" = None)

let test_wrong_source_kind () =
  let src = relational_source ~n:2 () in
  let w = Wrapper.kv_wrapper () in
  match Wrapper.execute w src (Expr.Get "person0") with
  | Error (Wrapper.Native_error _) -> ()
  | Ok _ | Error (Wrapper.Refused _) -> Alcotest.fail "expected native error"

(* -- property: SQL wrapper agrees with reference evaluation on random
   filtered projections -- *)

let prop_sql_wrapper_agrees =
  let open QCheck in
  let gen =
    Gen.map2
      (fun threshold project_name ->
        let base = Expr.Select (get, Expr.Cmp (Expr.Gt, Expr.Attr [ "salary" ], Expr.Const (V.Int threshold))) in
        if project_name then Expr.Project (base, [ "name" ]) else base)
      (Gen.int_range 0 500) Gen.bool
  in
  Test.make ~name:"sql wrapper agrees with reference" ~count:100
    (make ~print:Expr.to_string gen) (fun e ->
      let db = person_db ~n:60 in
      let src =
        Source.create ~id:"r"
          ~address:(Source.address ~host:"h" ~db_name:"db" ~ip:"0.0.0.0" ())
          (Source.Relational db)
      in
      match Wrapper.execute (Wrapper.sql_wrapper ()) src e with
      | Ok (v, _) -> V.equal v (Expr.eval ~resolve:(resolve_db db) e)
      | Error _ -> false)

let () =
  Alcotest.run "disco_wrapper"
    [
      ( "grammar",
        [
          Alcotest.test_case "paper example" `Quick test_grammar_paper_example;
          Alcotest.test_case "capability lattice" `Quick
            test_grammar_capability_lattice;
          Alcotest.test_case "comparison restriction" `Quick
            test_grammar_comparison_restriction;
          Alcotest.test_case "submit never nested" `Quick
            test_grammar_submit_never_nested;
        ] );
      ( "translate",
        [
          Alcotest.test_case "to source namespace" `Quick test_translate_to_source;
          Alcotest.test_case "binding paths" `Quick test_translate_binding_paths;
          Alcotest.test_case "answer renaming" `Quick test_answer_renamer;
          Alcotest.test_case "computed heads untouched" `Quick
            test_answer_renamer_computed_head;
          Alcotest.test_case "binding structs renamed" `Quick
            test_answer_renamer_binding_struct;
        ] );
      ( "sqlgen",
        [
          Alcotest.test_case "matches reference" `Quick test_sqlgen_matches_reference;
          Alcotest.test_case "join" `Quick test_sqlgen_join;
          Alcotest.test_case "whole-tuple head" `Quick test_sqlgen_whole_tuple_head;
          Alcotest.test_case "unsupported shapes" `Quick test_sqlgen_unsupported;
        ] );
      ( "wrappers",
        [
          Alcotest.test_case "sql wrapper" `Quick test_sql_wrapper_executes;
          Alcotest.test_case "scan wrapper refuses" `Quick test_scan_wrapper_refuses;
          Alcotest.test_case "project wrapper" `Quick test_project_wrapper;
          Alcotest.test_case "kv wrapper" `Quick test_kv_wrapper;
          Alcotest.test_case "file wrapper" `Quick test_file_wrapper;
          Alcotest.test_case "text wrapper" `Quick test_text_wrapper;
          Alcotest.test_case "text wrapper via mediator" `Quick
            test_text_wrapper_through_mediator;
          Alcotest.test_case "constructor lookup" `Quick test_of_constructor;
          Alcotest.test_case "wrong source kind" `Quick test_wrong_source_kind;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_sql_wrapper_agrees ] );
    ]
