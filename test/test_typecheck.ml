(* Tests for the OQL static type checker and the quantifier forms. *)

module V = Disco_value.Value
module Otype = Disco_odl.Otype
module Registry = Disco_odl.Registry
module Odl = Disco_odl.Odl_parser
module Parser = Disco_oql.Parser
module Eval = Disco_oql.Eval
module Ast = Disco_oql.Ast
module Typecheck = Disco_oql.Typecheck

let schema =
  {|
  r0 := Repository(host="h", name="d", address="a");
  w0 := WrapperPostgres();
  interface Person (extent person) {
    attribute Short id;
    attribute String name;
    attribute Short salary; }
  extent person0 of Person wrapper w0 repository r0;
  extent person1 of Person wrapper w0 repository r0;
  interface Student : Person {
    attribute String school; }
  extent student0 of Student wrapper w0 repository r0;
  define rich as select p from p in person where p.salary > 100;
  define names as select p.name from p in rich;
|}

let env () =
  let reg = Registry.create () in
  Odl.load reg schema;
  Typecheck.env_of_registry reg

let infer q = Typecheck.infer (env ()) (Parser.parse q)

let check_ty = Alcotest.testable (fun ppf t -> Fmt.string ppf (Otype.to_string t)) Otype.equal

let expect_ok q ty () = Alcotest.check check_ty q ty (infer q)

let expect_err fragment q () =
  match Typecheck.check (env ()) (Parser.parse q) with
  | Ok ty -> Alcotest.fail ("expected type error, got " ^ Otype.to_string ty)
  | Error m ->
      let contains s sub =
        let n = String.length s and k = String.length sub in
        let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
        k = 0 || go 0
      in
      Alcotest.(check bool) (Fmt.str "%S mentions %S" m fragment) true
        (contains m fragment)

let ok_cases =
  [
    ("extent", "person0", Otype.TBag (Otype.TInterface "Person"));
    ("implicit extent", "person", Otype.TBag (Otype.TInterface "Person"));
    ("star", "person*", Otype.TBag (Otype.TInterface "Person"));
    ( "paper query",
      "select x.name from x in person where x.salary > 10",
      Otype.TBag Otype.TString );
    ( "struct projection",
      "select struct(n: x.name, s2: x.salary * 2) from x in person0",
      Otype.TBag (Otype.TStruct [ ("n", Otype.TString); ("s2", Otype.TInt) ]) );
    ("distinct", "select distinct x.salary from x in person", Otype.TSet Otype.TInt);
    ("count", "count(person)", Otype.TInt);
    ("avg", "avg(select x.salary from x in person)", Otype.TFloat);
    ("sum int", "sum(select x.salary from x in person)", Otype.TInt);
    ( "union of extents",
      "union(person0, person1)",
      Otype.TBag (Otype.TInterface "Person") );
    ( "union joins subtypes upward",
      "union(person0, student0)",
      Otype.TBag (Otype.TInterface "Person") );
    ("view", "names", Otype.TBag Otype.TString);
    ( "metaextent",
      "select m.interface from m in metaextent",
      Otype.TBag Otype.TString );
    ("interface as string", "select m.name from m in metaextent where m.interface = Person",
      Otype.TBag Otype.TString);
    ("inherited attribute", "select s.name from s in student0", Otype.TBag Otype.TString);
    ("own attribute", "select s.school from s in student0", Otype.TBag Otype.TString);
    ("exists quantifier", "exists p in person : p.salary > 100", Otype.TBool);
    ( "forall in where",
      "select x.name from x in person where for all y in person : x.salary >= \
       y.salary",
      Otype.TBag Otype.TString );
    ("numeric widening", "select x.salary + 0.5 from x in person", Otype.TBag Otype.TFloat);
    ("string concat", {|"a" + "b"|}, Otype.TString);
    ("empty bag", "bag()", Otype.TBag Otype.TVoid);
    ("element", "element(select x.id from x in person0)", Otype.TInt);
  ]

let err_cases =
  [
    ("unknown name", "unknown name", "select x from x in nosuch");
    ("bad attribute", "no attribute", "select x.age from x in person");
    ( "school not on Person",
      "no attribute",
      "select x.school from x in person" );
    ("arith on string", "arithmetic", "select x.name * 2 from x in person");
    ("where not bool", "where-clause", "select x from x in person where x.salary");
    ("sum of strings", "non-numeric", "sum(select x.name from x in person)");
    ("flatten flat", "collection", "flatten(select x.id from x in person)");
    ("compare incompatible", "incompatible", {|select x from x in person where x.name = 3|});
    ("quantifier body", "quantifier body", "exists p in person : p.salary");
    ("count of scalar", "collection", "count(1)");
    ("and of ints", "boolean connective", "1 and 2");
  ]

(* quantifier evaluation and round-trip *)

let people =
  V.bag
    [
      V.strct [ ("name", V.String "Mary"); ("salary", V.Int 200) ];
      V.strct [ ("name", V.String "Sam"); ("salary", V.Int 50) ];
    ]

let eval_env =
  Eval.env ~resolve:(function "person" -> Some people | _ -> None) ()

let test_quant_eval () =
  let check_value = Alcotest.testable V.pp V.equal in
  Alcotest.check check_value "exists true" (V.Bool true)
    (Eval.eval_string eval_env "exists p in person : p.salary > 100");
  Alcotest.check check_value "exists false" (V.Bool false)
    (Eval.eval_string eval_env "exists p in person : p.salary > 500");
  Alcotest.check check_value "forall true" (V.Bool true)
    (Eval.eval_string eval_env "for all p in person : p.salary >= 50");
  Alcotest.check check_value "forall false" (V.Bool false)
    (Eval.eval_string eval_env "for all p in person : p.salary > 100");
  Alcotest.check check_value "forall over empty" (V.Bool true)
    (Eval.eval_string eval_env "for all p in bag() : p > 1");
  (* in a where clause, with the quantifier var shadowing *)
  Alcotest.check check_value "max by forall"
    (V.bag [ V.String "Mary" ])
    (Eval.eval_string eval_env
       "select x.name from x in person where for all y in person : x.salary \
        >= y.salary")

let test_quant_roundtrip () =
  List.iter
    (fun q ->
      let ast = Parser.parse q in
      let printed = Ast.to_string ast in
      Alcotest.(check bool)
        (Fmt.str "roundtrip %s -> %s" q printed)
        true
        (Ast.equal ast (Parser.parse printed)))
    [
      "exists p in person : p.salary > 100";
      "for all p in person : p.salary > 100 and p.id > 0";
      "(exists p in person : p.id = 1) and (for all q in person : q.id > 0)";
      "select x from x in person where exists y in person : y.id = x.id";
      "not (exists p in person : p.salary > 3)";
    ]

let test_quant_through_mediator () =
  (* quantifiers take the hybrid path end to end *)
  let module Mediator = Disco_core.Mediator in
  let module Source = Disco_source.Source in
  let module Datagen = Disco_source.Datagen in
  let m = Mediator.create ~name:"tq" () in
  Mediator.register_source m ~name:"r0"
    (Source.create ~id:"s"
       ~address:(Source.address ~host:"h" ~db_name:"d" ~ip:"0" ())
       (Source.Relational (Datagen.person_db ~seed:5 ~name:"person0" ~n:20)));
  Mediator.load_odl m
    {|r0 := Repository(host="h", name="d", address="0");
      w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute Short id;
        attribute String name;
        attribute Short salary; }
      extent person0 of Person wrapper w0 repository r0;|};
  match
    (Mediator.query ~opts:{ Mediator.Query_opts.default with static_check = true } m
       "select x.name from x in person where for all y in person : x.salary \
        >= y.salary")
      .Mediator.answer
  with
  | Mediator.Complete v -> Alcotest.(check int) "one maximum" 1 (V.cardinal v)
  | _ -> Alcotest.fail "expected complete"

let test_static_check_rejects () =
  let module Mediator = Disco_core.Mediator in
  let m = Mediator.create ~name:"tsc" () in
  Mediator.load_odl m
    {|w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute String name;
        attribute Short salary; }|};
  (match Mediator.typecheck m "select x.name from x in person" with
  | Ok (Otype.TBag Otype.TString) -> ()
  | Ok t -> Alcotest.fail (Otype.to_string t)
  | Error m -> Alcotest.fail m);
  try
    ignore (Mediator.query ~opts:{ Mediator.Query_opts.default with static_check = true } m "select x.age from x in person");
    Alcotest.fail "expected static rejection"
  with Mediator.Mediator_error msg ->
    Alcotest.(check bool) "type error surfaced" true
      (String.length msg > 0)

let () =
  Alcotest.run "disco_typecheck"
    [
      ( "well-typed",
        List.map
          (fun (name, q, ty) -> Alcotest.test_case name `Quick (expect_ok q ty))
          ok_cases );
      ( "ill-typed",
        List.map
          (fun (name, frag, q) ->
            Alcotest.test_case name `Quick (expect_err frag q))
          err_cases );
      ( "quantifiers",
        [
          Alcotest.test_case "evaluation" `Quick test_quant_eval;
          Alcotest.test_case "print/parse roundtrip" `Quick test_quant_roundtrip;
          Alcotest.test_case "through the mediator" `Quick
            test_quant_through_mediator;
          Alcotest.test_case "static check on query" `Quick
            test_static_check_rejects;
        ] );
    ]
