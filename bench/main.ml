(* The Disco experiment harness.

   The paper (INRIA RR-2704 / ICDCS'96) is a design paper: its two figures
   are architecture diagrams and it reports no measurements. Each
   experiment below (E1-E14, the soak harness, plus ablations A1-A3, indexed in DESIGN.md
   and EXPERIMENTS.md) quantifies one of the paper's load-bearing claims
   on the simulated substrate, printing a table; the bechamel suite at
   the end times the system's hot paths (one Test.make per experiment
   family).

   Every mediator built here carries a shared trace sink, so each
   experiment additionally emits one machine-readable JSON line with its
   per-phase virtual-time breakdown and metric counters.

   Run everything:            dune exec bench/main.exe
   One experiment:            dune exec bench/main.exe -- --experiment e4
   Scale trial counts:        dune exec bench/main.exe -- --trials 20
   Skip wall-clock benches:   dune exec bench/main.exe -- --no-bechamel *)

module V = Disco_value.Value
module Shard = Disco_shard.Shard
module Source = Disco_source.Source
module Schedule = Disco_source.Schedule
module Clock = Disco_source.Clock
module Datagen = Disco_source.Datagen
module Database = Disco_relation.Database
module Typemap = Disco_odl.Typemap
module Oql = Disco_oql.Parser
module Eval = Disco_oql.Eval
module Expr = Disco_algebra.Expr
module Compile = Disco_algebra.Compile
module Rules = Disco_algebra.Rules
module Decompile = Disco_algebra.Decompile
module Grammar = Disco_wrapper.Grammar
module Wrapper = Disco_wrapper.Wrapper
module Cost_model = Disco_cost.Cost_model
module Plan = Disco_physical.Plan
module Optimizer = Disco_optimizer.Optimizer
module Runtime = Disco_runtime.Runtime
module Mediator = Disco_core.Mediator
module Answer_cache = Disco_cache.Answer_cache
module Resubmission = Disco_cache.Resubmission
module Maintenance = Disco_core.Maintenance
module Composition = Disco_core.Composition
module Trace = Disco_obs.Trace
module Metrics = Disco_obs.Metrics
module Scheduler = Disco_source.Scheduler
module Server = Disco_serve.Server
module Loadgen = Disco_serve.Loadgen
module Registry = Disco_odl.Registry
module Odl_parser = Disco_odl.Odl_parser
module Check = Disco_check.Check
module Analysis = Disco_analysis.Analysis

let header title = Fmt.pr "@.======== %s ========@." title

let table ~columns rows =
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length c) rows)
      columns
  in
  let print_row cells =
    let padded =
      List.map2 (fun w c -> c ^ String.make (w - String.length c) ' ') widths cells
    in
    Fmt.pr "| %s |@." (String.concat " | " padded)
  in
  print_row columns;
  Fmt.pr "|%s|@."
    (String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths));
  List.iter print_row rows

(* -- machine-readable timing -- *)

(* Every mediator below shares one trace sink.  It folds each finished
   trace into a per-phase (count, total virtual ms) table; the driver
   prints the table as one JSON line after each experiment and resets. *)
let phase_acc : (string, int * float) Hashtbl.t = Hashtbl.create 16
let traces_seen = ref 0
let bench_metrics = Metrics.create ()

let bench_sink (tr : Trace.trace) =
  incr traces_seen;
  let rec walk (s : Trace.span) =
    let count, total =
      Option.value (Hashtbl.find_opt phase_acc s.Trace.s_name) ~default:(0, 0.0)
    in
    Hashtbl.replace phase_acc s.Trace.s_name (count + 1, total +. s.Trace.s_elapsed_ms);
    List.iter walk s.Trace.s_children
  in
  walk tr.Trace.t_root

let reset_observations () =
  Hashtbl.reset phase_acc;
  traces_seen := 0;
  Metrics.reset bench_metrics

(* One JSON record per experiment, accumulated across the run and written
   to BENCH_RESULTS.json at exit (CI uploads the file as an artifact). *)
let bench_results : string list ref = ref []

let capture_results name =
  let phase_count p =
    match Hashtbl.find_opt phase_acc p with Some (c, _) -> c | None -> 0
  in
  let virtual_ms =
    match Metrics.find_histogram bench_metrics "query.elapsed_virtual_ms" with
    | Some h ->
        Fmt.str "{\"count\":%d,\"sum\":%.1f,\"min\":%.1f,\"max\":%.1f}"
          h.Metrics.h_count h.Metrics.h_sum h.Metrics.h_min h.Metrics.h_max
    | None -> "null"
  in
  bench_results :=
    Fmt.str
      "{\"experiment\":%S,\"trials\":%d,\"queries\":%d,\"virtual_ms\":%s,\"execs\":%d,\"tuples_shipped\":%d,\"batch_rounds\":%d,\"batch_dedup_hits\":%d,\"retry_attempts\":%d,\"retry_recovered\":%d,\"hedge_issued\":%d,\"hedge_won\":%d,\"breaker_open\":%d,\"shard_pruned\":%d,\"shard_scanned\":%d,\"shard_rounds\":%d}"
      name !traces_seen
      (Metrics.find_counter bench_metrics "mediator.queries")
      virtual_ms (phase_count "exec")
      (Metrics.find_counter bench_metrics "exec.tuples_shipped")
      (Metrics.find_counter bench_metrics "runtime.batch.rounds")
      (Metrics.find_counter bench_metrics "runtime.batch.dedup_hits")
      (Metrics.find_counter bench_metrics "runtime.retry.attempts")
      (Metrics.find_counter bench_metrics "runtime.retry.recovered")
      (Metrics.find_counter bench_metrics "runtime.hedge.issued")
      (Metrics.find_counter bench_metrics "runtime.hedge.won")
      (Metrics.find_counter bench_metrics "runtime.breaker.open")
      (Metrics.find_counter bench_metrics "shard.pruned")
      (Metrics.find_counter bench_metrics "shard.scanned")
      (Metrics.find_counter bench_metrics "shard.rounds")
    :: !bench_results

let write_results_file () =
  let oc = open_out "BENCH_RESULTS.json" in
  output_string oc "[\n";
  output_string oc (String.concat ",\n" (List.rev !bench_results));
  output_string oc "\n]\n";
  close_out oc;
  Fmt.pr "@.wrote BENCH_RESULTS.json (%d experiments)@."
    (List.length !bench_results)

let emit_summary name =
  let phases =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) phase_acc []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (phase, (count, total)) ->
           Fmt.str "%S:{\"count\":%d,\"total_ms\":%.1f}" phase count total)
    |> String.concat ","
  in
  Fmt.pr "@.TRACE_SUMMARY {\"experiment\":%S,\"traces\":%d,\"phases\":{%s},\"metrics\":%s}@."
    name !traces_seen phases
    (Metrics.to_json bench_metrics);
  capture_results name

(* Mediators used by the experiments all route traces and metrics into
   the shared observers above. *)
let mk_mediator ?clock ?cost ?cache ?(batch = true) ?retry ~name () =
  Mediator.create
    ~config:
      {
        Mediator.Config.default with
        clock;
        cost;
        cache;
        batch;
        retry;
        trace_sink = Some bench_sink;
        metrics = bench_metrics;
      }
    ~name ()

let qopts ?(timeout_ms = 1000.0) ?(semantics = Mediator.Partial_answers) () =
  { Mediator.Query_opts.default with timeout_ms; semantics }

(* --trials N scales the statistical experiments (e1/e10/e11). *)
let trials_override = ref None
let trials ~default = Option.value !trials_override ~default

(* -- shared builders -- *)

let person_source ?(latency = { Source.base_ms = 10.0; per_row_ms = 0.01; jitter = 0.0 })
    ?schedule ~index ~rows () =
  let name = Fmt.str "person%d" index in
  let db = Database.create ~name:"db" in
  ignore
    (Datagen.table_of db ~name Datagen.person_schema
       (Datagen.person_rows ~seed:(1000 + index) ~n:rows));
  Source.create ~id:name
    ~address:(Source.address ~host:(Fmt.str "site%d" index) ~db_name:"db" ~ip:"0.0.0.0" ())
    ~latency ?schedule (Source.Relational db)

(* A mediator federating [n] person sources under one Person type. *)
let person_federation ?latency ?(rows = 5) ?(wrapper = "WrapperPostgres")
    ?(schedule_of = fun _ -> Schedule.always_up) ?cache n =
  let m = mk_mediator ~name:(Fmt.str "fed%d" n) ?cache () in
  Mediator.load_odl m
    (Fmt.str
       {|w0 := %s();
         interface Person (extent person) {
           attribute Short id;
           attribute String name;
           attribute Short salary; }|}
       wrapper);
  for i = 0 to n - 1 do
    Mediator.register_source m ~name:(Fmt.str "r%d" i)
      (person_source ?latency ~index:i ~rows ~schedule:(schedule_of i) ());
    Mediator.load_odl m
      (Fmt.str
         {|r%d := Repository(host="site%d", name="db", address="0.0.0.0");
           extent person%d of Person wrapper w0 repository r%d;|}
         i i i i)
  done;
  m

let paper_query = "select x.name from x in person where x.salary > 10"

(* ==================================================================== *)
(* E1 - availability of answers vs number of sources (Section 1)        *)
(* ==================================================================== *)

let e1 () =
  header "E1: answer availability vs number of sources (Section 1)";
  Fmt.pr
    "claim: under wait-all semantics P(complete) = p^n collapses as n grows;@.";
  Fmt.pr "       Disco's partial answers still deliver the available fraction.@.@.";
  let trials = trials ~default:200 in
  let rows = ref [] in
  List.iter
    (fun p ->
      List.iter
        (fun n ->
          let m =
            person_federation
              ~schedule_of:(fun i ->
                Schedule.flaky ~seed:(7919 * (i + 1)) ~period:1000.0
                  ~availability:p)
              n
          in
          let complete = ref 0 and partial_fraction = ref 0.0 in
          for trial = 0 to trials - 1 do
            (* jump to the next availability period so draws are fresh *)
            Clock.advance_to (Mediator.clock m) (float_of_int trial *. 1000.0);
            let o = Mediator.query ~opts:(qopts ~timeout_ms:400.0 ()) m paper_query in
            match o.Mediator.answer with
            | Mediator.Complete _ -> incr complete
            | Mediator.Partial { unavailable; _ } ->
                let up = n - List.length unavailable in
                partial_fraction :=
                  !partial_fraction +. (float_of_int up /. float_of_int n)
            | Mediator.Unavailable _ -> ()
          done;
          let complete_rate = float_of_int !complete /. float_of_int trials in
          let predicted = p ** float_of_int n in
          let avg_fraction =
            (float_of_int !complete +. !partial_fraction) /. float_of_int trials
          in
          rows :=
            [
              Fmt.str "%.2f" p;
              string_of_int n;
              Fmt.str "%.3f" predicted;
              Fmt.str "%.3f" complete_rate;
              Fmt.str "%.3f" avg_fraction;
            ]
            :: !rows)
        [ 1; 2; 4; 8; 16; 32; 64 ])
    [ 0.90; 0.99 ];
  table
    ~columns:
      [ "p(up)"; "sources"; "p^n (wait-all)"; "measured complete"; "disco data fraction" ]
    (List.rev !rows)

(* ==================================================================== *)
(* E2 - the distributed architecture of Figure 1                        *)
(* ==================================================================== *)

let e2 () =
  header "E2: component message flow through the Figure 1 architecture";
  Fmt.pr "A -> mediator -> {mediators} -> wrappers -> sources, 2 children x 3 sources@.@.";
  let clock = Clock.create () in
  let child k =
    let m = mk_mediator ~name:(Fmt.str "child%d" k) ~clock () in
    Mediator.load_odl m
      {|w0 := WrapperPostgres();
        interface Person (extent person) {
          attribute Short id;
          attribute String name;
          attribute Short salary; }|};
    for i = 0 to 2 do
      let index = (3 * k) + i in
      Mediator.register_source m ~name:(Fmt.str "r%d" i)
        (person_source ~index ~rows:10 ());
      Mediator.load_odl m
        (Fmt.str
           {|r%d := Repository(host="site%d", name="db", address="0.0.0.0");
             extent person%d of Person wrapper w0 repository r%d;|}
           i index index i)
    done;
    m
  in
  let c0 = child 0 and c1 = child 1 in
  (* each child re-exports its implicit extent under the name the parent
     declares as an extent *)
  Mediator.load_odl c0 "define half0 as select p from p in person;";
  Mediator.load_odl c1 "define half1 as select p from p in person;";
  let parent = mk_mediator ~name:"parent" ~clock () in
  let attach k m =
    let src, wrap = Composition.as_source m in
    Mediator.register_source parent ~name:(Fmt.str "rm%d" k) src;
    Mediator.register_wrapper parent ~name:(Fmt.str "wm%d" k) wrap
  in
  attach 0 c0;
  attach 1 c1;
  Mediator.load_odl parent
    {|rm0 := Repository(host="child0", name="mediator", address="mediator://");
      rm1 := Repository(host="child1", name="mediator", address="mediator://");
      wm0 := WrapperMediator();
      wm1 := WrapperMediator();
      interface Person (extent people) {
        attribute Short id;
        attribute String name;
        attribute Short salary; }
      extent half0 of Person wrapper wm0 repository rm0;
      extent half1 of Person wrapper wm1 repository rm1;|};
  let o = Mediator.query parent "select x.name from x in people where x.salary > 10" in
  let n_answer =
    match o.Mediator.answer with
    | Mediator.Complete v -> V.cardinal v
    | _ -> -1
  in
  let child_stats m =
    List.fold_left
      (fun (calls, rows) (_, s) ->
        (calls + s.Source.calls_answered, rows + s.Source.rows_shipped))
      (0, 0) (Mediator.source_stats m)
  in
  let c0_calls, c0_rows = child_stats c0 in
  let c1_calls, c1_rows = child_stats c1 in
  table
    ~columns:[ "component"; "queries in"; "subqueries out"; "tuples returned up" ]
    [
      [ "application"; "-"; "1"; string_of_int n_answer ];
      [
        "parent mediator";
        "1";
        string_of_int o.Mediator.stats.Runtime.execs_issued;
        string_of_int o.Mediator.stats.Runtime.tuples_shipped;
      ];
      [
        "child mediators";
        "2";
        Fmt.str "%d + %d" c0_calls c1_calls;
        Fmt.str "%d + %d (measured)" c0_rows c1_rows;
      ];
      [ "wrappers / sources"; "6"; "6 native queries"; "selected tuples only" ];
    ];
  Fmt.pr "answer size through two mediator levels: %d@." n_answer

(* ==================================================================== *)
(* E3 - DBA maintenance cost (Sections 1.2, 2.1, 5)                     *)
(* ==================================================================== *)

let e3 () =
  header "E3: cost of integrating the n-th source (Sections 1.2 / 5)";
  let rows =
    List.map
      (fun n ->
        let d = Maintenance.disco ~n in
        let u = Maintenance.explicit_union ~n in
        let g = Maintenance.global_schema ~n in
        [
          string_of_int n;
          Fmt.str "%d stmt / query %d nodes" d.Maintenance.statements
            d.Maintenance.query_size;
          Fmt.str "%d stmts / query %d nodes" u.Maintenance.statements
            u.Maintenance.query_size;
          Fmt.str "%d stmt / %d entities re-resolved" g.Maintenance.statements
            g.Maintenance.redefined_entities;
        ])
      [ 1; 2; 5; 10; 20; 50 ]
  in
  table
    ~columns:[ "n"; "DISCO extents"; "explicit union"; "unified global schema" ]
    rows;
  let m = person_federation 3 in
  let before = Mediator.query m paper_query in
  Mediator.register_source m ~name:"r3" (person_source ~index:3 ~rows:5 ());
  Mediator.load_odl m
    {|r3 := Repository(host="site3", name="db", address="0.0.0.0");
      extent person3 of Person wrapper w0 repository r3;|};
  let after = Mediator.query m paper_query in
  let size o =
    match o.Mediator.answer with Mediator.Complete v -> V.cardinal v | _ -> -1
  in
  Fmt.pr
    "@.operational check: the same query text answered %d rows over 3 \
     sources, %d over 4 after one ODL statement.@."
    (size before) (size after)

(* ==================================================================== *)
(* E4 - capability-driven pushdown (Section 3.2)                        *)
(* ==================================================================== *)

let e4 () =
  header "E4: tuples shipped vs wrapper capability (Section 3.2)";
  let n_rows = 10_000 in
  Fmt.pr "one source, %d tuples, query selectivity swept by threshold@.@." n_rows;
  let wrappers = [ "WrapperPostgres"; "WrapperSelect"; "WrapperProject"; "WrapperScan" ] in
  let selectivities = [ (0.001, 500); (0.01, 496); (0.1, 451); (0.5, 255) ] in
  let rows =
    List.concat_map
      (fun (sel, threshold) ->
        List.map
          (fun ctor ->
            let m = person_federation ~rows:n_rows ~wrapper:ctor 1 in
            let q =
              Fmt.str "select x.name from x in person where x.salary > %d"
                threshold
            in
            let o = Mediator.query ~opts:(qopts ~timeout_ms:10_000.0 ()) m q in
            let answer =
              match o.Mediator.answer with
              | Mediator.Complete v -> V.cardinal v
              | _ -> -1
            in
            [
              Fmt.str "%.3f" sel;
              ctor;
              string_of_int answer;
              string_of_int o.Mediator.stats.Runtime.tuples_shipped;
              Fmt.str "%.1f" o.Mediator.stats.Runtime.elapsed_ms;
            ])
          wrappers)
      selectivities
  in
  table
    ~columns:[ "selectivity"; "wrapper"; "answer rows"; "tuples shipped"; "virtual ms" ]
    rows;
  (* aggregates are outside the algebra, but their closed fragments still
     push down (hybrid fragment execution) *)
  Fmt.pr "@.aggregate query (hybrid path): sum over the 0.01-selectivity filter@.";
  let agg_rows =
    List.map
      (fun ctor ->
        let m = person_federation ~rows:n_rows ~wrapper:ctor 1 in
        let o =
          Mediator.query ~opts:(qopts ~timeout_ms:10_000.0 ()) m
            "sum(select x.salary from x in person where x.salary > 496)"
        in
        [
          ctor;
          (match o.Mediator.answer with
          | Mediator.Complete v -> V.to_string v
          | _ -> "?");
          string_of_int o.Mediator.stats.Runtime.tuples_shipped;
        ])
      wrappers
  in
  table ~columns:[ "wrapper"; "sum"; "tuples shipped" ] agg_rows

(* ==================================================================== *)
(* E5 - the learned cost model (Section 3.3)                            *)
(* ==================================================================== *)

let e5 () =
  header "E5a: cost-estimate error vs recorded exec calls (Section 3.3)";
  let m = person_federation ~rows:2_000 1 in
  let cost = Mediator.cost_model m in
  let expr k =
    Expr.Map
      ( Expr.Select
          ( Expr.Get "person0",
            Expr.Cmp (Expr.Gt, Expr.Attr [ "salary" ], Expr.Const (V.Int k)) ),
        Expr.Hscalar (Expr.Attr [ "name" ]) )
  in
  let rows = ref [] in
  for round = 0 to 9 do
    let threshold = 50 + (round * 40) in
    let est = Cost_model.estimate cost ~repo:"r0" (expr threshold) in
    let q =
      Fmt.str "select x.name from x in person where x.salary > %d" threshold
    in
    let o = Mediator.query ~opts:(qopts ~timeout_ms:10_000.0 ()) m q in
    let actual_rows = o.Mediator.stats.Runtime.tuples_shipped in
    let basis =
      match est.Cost_model.est_basis with
      | Cost_model.Default -> "default"
      | Cost_model.Indexed -> "indexed"
      | Cost_model.Close k -> Fmt.str "close(%d)" k
      | Cost_model.Exact k -> Fmt.str "exact(%d)" k
    in
    let err =
      if actual_rows = 0 then 0.0
      else
        Float.abs (est.Cost_model.est_rows -. float_of_int actual_rows)
        /. float_of_int actual_rows
    in
    rows :=
      [
        string_of_int round;
        basis;
        Fmt.str "%.0f" est.Cost_model.est_rows;
        string_of_int actual_rows;
        Fmt.str "%.0f%%" (err *. 100.0);
      ]
      :: !rows
  done;
  (* repeated identical queries: the exact-match path converges *)
  for round = 10 to 13 do
    let threshold = 250 in
    let est = Cost_model.estimate cost ~repo:"r0" (expr threshold) in
    let q =
      Fmt.str "select x.name from x in person where x.salary > %d" threshold
    in
    let o = Mediator.query ~opts:(qopts ~timeout_ms:10_000.0 ()) m q in
    let actual_rows = o.Mediator.stats.Runtime.tuples_shipped in
    let basis =
      match est.Cost_model.est_basis with
      | Cost_model.Default -> "default"
      | Cost_model.Indexed -> "indexed"
      | Cost_model.Close k -> Fmt.str "close(%d)" k
      | Cost_model.Exact k -> Fmt.str "exact(%d)" k
    in
    let err =
      if actual_rows = 0 then 0.0
      else
        Float.abs (est.Cost_model.est_rows -. float_of_int actual_rows)
        /. float_of_int actual_rows
    in
    rows :=
      [
        string_of_int round;
        basis;
        Fmt.str "%.0f" est.Cost_model.est_rows;
        string_of_int actual_rows;
        Fmt.str "%.0f%%" (err *. 100.0);
      ]
      :: !rows
  done;
  table
    ~columns:[ "round"; "estimate basis"; "predicted rows"; "actual rows"; "error" ]
    (List.rev !rows);
  Fmt.pr
    "(the close-match drift under the monotone threshold sweep is the data      skew@. effect the paper itself flags in Section 3.3; exact repeats      converge.)@.";

  header "E5b: with an empty cost store the optimizer pushes maximally";
  let located =
    Compile.locate
      ~repo_of:(fun _ -> Some "r0")
      (Result.get_ok
         (Compile.compile
            (Oql.parse "select x.name from x in person0 where x.salary > 10")))
  in
  let fresh = Cost_model.create () in
  let choice = Optimizer.optimize ~can_push:Rules.push_all ~cost:fresh located in
  let ops = Plan.mediator_op_count choice.Optimizer.plan in
  table
    ~columns:[ "cost store"; "chosen plan"; "mediator ops" ]
    [
      [ "empty (defaults)"; Plan.to_string choice.Optimizer.plan; string_of_int ops ];
    ]

(* ==================================================================== *)
(* E6 - partial evaluation (Section 4)                                  *)
(* ==================================================================== *)

let e6 () =
  header "E6: partial answers vs deadline; resubmission equivalence (Section 4)";
  let n = 16 in
  let rows = ref [] in
  List.iter
    (fun deadline ->
      (* even sources answer in ~10 ms; odd ones are slow (~80 ms) *)
      let m = person_federation n in
      for i = 0 to n - 1 do
        match Mediator.find_source m (Fmt.str "r%d" i) with
        | Some _ when i mod 2 = 0 -> ()
        | Some _ ->
            Mediator.register_source m ~name:(Fmt.str "r%d" i)
              (person_source
                 ~latency:{ Source.base_ms = 80.0; per_row_ms = 0.0; jitter = 0.0 }
                 ~index:i ~rows:5 ())
        | None -> ()
      done;
      let o = Mediator.query ~opts:(qopts ~timeout_ms:deadline ()) m paper_query in
      let kind, fraction =
        match o.Mediator.answer with
        | Mediator.Complete _ -> ("complete", 1.0)
        | Mediator.Partial { unavailable; _ } ->
            ( "partial",
              float_of_int (n - List.length unavailable) /. float_of_int n )
        | Mediator.Unavailable _ -> ("none", 0.0)
      in
      Clock.advance (Mediator.clock m) 1000.0;
      let resubmitted = Mediator.resubmit m o.Mediator.answer in
      let reference = Mediator.query m paper_query in
      let equal =
        match (resubmitted.Mediator.answer, reference.Mediator.answer) with
        | Mediator.Complete a, Mediator.Complete b -> V.equal a b
        | _ -> false
      in
      rows :=
        [
          Fmt.str "%.0f" deadline;
          kind;
          Fmt.str "%.2f" fraction;
          (if equal then "yes" else "NO");
        ]
        :: !rows)
    [ 5.0; 15.0; 40.0; 75.0; 120.0 ];
  table
    ~columns:
      [ "deadline (ms)"; "answer"; "source fraction in data"; "resubmit = full?" ]
    (List.rev !rows)

(* ==================================================================== *)
(* E7 - the Figure 2 pipeline                                           *)
(* ==================================================================== *)

let e7 () =
  header "E7: Prototype 0 pipeline stages vs federation size (Figure 2)";
  let rows =
    List.map
      (fun n_sources ->
        let m = person_federation ~rows:100 n_sources in
        let q = paper_query in
        let time f =
          let t0 = Sys.time () in
          let r = f () in
          ((Sys.time () -. t0) *. 1e6, r)
        in
        let t_parse, _ = time (fun () -> Oql.parse q) in
        let t_plan, _ = time (fun () -> Mediator.explain m q) in
        let t_exec, o = time (fun () -> Mediator.query m q) in
        [
          string_of_int n_sources;
          Fmt.str "%.0f us" t_parse;
          Fmt.str "%.0f us" t_plan;
          Fmt.str "%.0f us" t_exec;
          string_of_int o.Mediator.stats.Runtime.execs_issued;
        ])
      [ 1; 2; 4; 8; 16; 32 ]
  in
  table
    ~columns:
      [ "sources"; "parse (wall)"; "plan (wall)"; "plan+execute (wall)"; "execs" ]
    rows

(* ==================================================================== *)
(* E8 - modeling features: maps, subtyping, views (Sections 2.2-2.3)    *)
(* ==================================================================== *)

let e8 () =
  header "E8: reconciliation views return the paper's expected answers";
  let m = mk_mediator ~name:"e8" () in
  let mk_source name schema rows =
    let db = Database.create ~name:"db" in
    ignore (Datagen.table_of db ~name schema rows);
    Source.create ~id:name
      ~address:(Source.address ~host:name ~db_name:"db" ~ip:"0.0.0.0" ())
      (Source.Relational db)
  in
  Mediator.register_source m ~name:"r0"
    (mk_source "person0" Datagen.person_schema
       [ [| V.Int 1; V.String "Mary"; V.Int 200 |] ]);
  Mediator.register_source m ~name:"r1"
    (mk_source "person1" Datagen.person_schema
       [
         [| V.Int 1; V.String "Mary"; V.Int 50 |];
         [| V.Int 2; V.String "Sam"; V.Int 50 |];
       ]);
  Mediator.register_source m ~name:"r5"
    (mk_source "persontwo0" Datagen.person_two_schema
       [ [| V.Int 5; V.String "Pat"; V.Int 30; V.Int 12 |] ]);
  Mediator.register_source m ~name:"r6"
    (mk_source "student0" Datagen.person_schema
       [ [| V.Int 9; V.String "Stu"; V.Int 20 |] ]);
  Mediator.load_odl m
    {|
    r6 := Repository(host="ens", name="db", address="4");
    r0 := Repository(host="rodin", name="db", address="1");
    r1 := Repository(host="umiacs", name="db", address="2");
    r5 := Repository(host="inria", name="db", address="3");
    w0 := WrapperPostgres();
    interface Person (extent person) {
      attribute Short id;
      attribute String name;
      attribute Short salary; }
    extent person0 of Person wrapper w0 repository r0;
    extent person1 of Person wrapper w0 repository r1;
    interface PersonTwo {
      attribute Short id;
      attribute String name;
      attribute Short regular;
      attribute Short consult; }
    extent persontwo0 of PersonTwo wrapper w0 repository r5;
    interface Student : Person { }
    extent student0 of Student wrapper w0 repository r6;
    define double as
      select struct(name: x.name, salary: x.salary + y.salary)
      from x in person0 and y in person1 where x.id = y.id;
    define multiple as
      select struct(name: x.name,
                    salary: sum(select z.salary from z in person where x.id = z.id))
      from x in person*;
    define personnew as
      union(select struct(name: x.name, salary: x.salary) from x in person,
            select struct(name: x.name, salary: x.regular + x.consult)
            from x in persontwo0);
  |};
  let run q =
    match (Mediator.query m q).Mediator.answer with
    | Mediator.Complete v -> V.to_string v
    | Mediator.Partial _ -> "(partial)"
    | Mediator.Unavailable _ -> "(unavailable)"
  in
  table
    ~columns:[ "view / query"; "expected (paper)"; "measured" ]
    [
      [ "double"; "Mary: 200 + 50 = 250"; run "double" ];
      [
        "multiple (Mary)";
        "250 summed across sources";
        run "select r.salary from r in multiple where r.name = \"Mary\"";
      ];
      [
        "personnew (Pat)";
        "42 = regular 30 + consult 12";
        run "select p.salary from p in personnew where p.name = \"Pat\"";
      ];
      [
        "count(person) / count(person*)";
        "3 direct / 4 with the Student extent";
        Fmt.str "%s / %s" (run "count(person)") (run "count(person*)");
      ];
    ]

(* ==================================================================== *)
(* E9 - the four unavailable-data semantics (Section 4)                 *)
(* ==================================================================== *)

let e9 () =
  header "E9: semantics for unavailable data (Section 4)";
  let n = 16 in
  let rows = ref [] in
  List.iter
    (fun p ->
      List.iter
        (fun (label, semantics) ->
          let m =
            person_federation
              ~latency:{ Source.base_ms = 10.0; per_row_ms = 0.0; jitter = 0.0 }
              ~schedule_of:(fun i ->
                Schedule.flaky ~seed:(31 * (i + 1)) ~period:10_000.0
                  ~availability:p)
              n
          in
          let t0 = Clock.now (Mediator.clock m) in
          let o = Mediator.query ~opts:(qopts ~timeout_ms:200.0 ~semantics ()) m paper_query in
          let latency = Clock.now (Mediator.clock m) -. t0 in
          let quality =
            match o.Mediator.answer with
            | Mediator.Complete v -> Fmt.str "complete (%d rows)" (V.cardinal v)
            | Mediator.Partial { unavailable; _ } ->
                Fmt.str "partial, resubmittable (%d pending)"
                  (List.length unavailable)
            | Mediator.Unavailable _ -> "no answer"
          in
          rows :=
            [ Fmt.str "%.2f" p; label; Fmt.str "%.0f ms" latency; quality ]
            :: !rows)
        [
          ("wait-all", Mediator.Wait_all);
          ("null-sources", Mediator.Null_sources);
          ("skip-sources", Mediator.Skip_sources);
          ("disco partial", Mediator.Partial_answers);
        ])
    [ 0.50; 0.80; 0.95 ];
  table ~columns:[ "p(up)"; "semantics"; "virtual latency"; "answer" ] (List.rev !rows)

(* ==================================================================== *)
(* E10 - replication vs partial answers (extension; Section 1's          *)
(* "in the absence of replication" premise made concrete)               *)
(* ==================================================================== *)

let e10 () =
  header "E10: replication restores completeness; partial answers remain the fallback";
  Fmt.pr "16 sources at p(up)=0.90, k independent replicas per extent@.@.";
  let n = 16 and p = 0.90 in
  let trials = trials ~default:200 in
  let rows = ref [] in
  List.iter
    (fun k ->
      let m = mk_mediator ~name:(Fmt.str "e10_%d" k) () in
      Mediator.load_odl m
        {|w0 := WrapperPostgres();
          interface Person (extent person) {
            attribute Short id;
            attribute String name;
            attribute Short salary; }|};
      for i = 0 to n - 1 do
        (* primary + k replicas, each with an independent outage process *)
        let copies = k + 1 in
        let repo_names =
          List.init copies (fun c -> Fmt.str "r%d_%d" i c)
        in
        List.iteri
          (fun c repo ->
            let src =
              let name = Fmt.str "person%d" i in
              let db = Database.create ~name:"db" in
              ignore
                (Datagen.table_of db ~name Datagen.person_schema
                   (Datagen.person_rows ~seed:(1000 + i) ~n:5));
              Source.create
                ~id:(Fmt.str "%s_copy%d" name c)
                ~address:(Source.address ~host:repo ~db_name:"db" ~ip:"0" ())
                ~latency:{ Source.base_ms = 10.0; per_row_ms = 0.0; jitter = 0.0 }
                ~schedule:
                  (Schedule.flaky ~seed:(7919 * ((i * 7) + c + 1)) ~period:1000.0
                     ~availability:p)
                (Source.Relational db)
            in
            Mediator.register_source m ~name:repo src;
            Mediator.load_odl m
              (Fmt.str {|%s := Repository(host="%s", name="db", address="0");|}
                 repo repo))
          repo_names;
        let primary = List.hd repo_names in
        let replicas =
          String.concat " "
            (List.map (fun r -> "replica " ^ r) (List.tl repo_names))
        in
        Mediator.load_odl m
          (Fmt.str "extent person%d of Person wrapper w0 repository %s %s;" i
             primary replicas)
      done;
      let complete = ref 0 in
      for trial = 0 to trials - 1 do
        Clock.advance_to (Mediator.clock m) (float_of_int trial *. 1000.0);
        match (Mediator.query ~opts:(qopts ~timeout_ms:400.0 ()) m paper_query).Mediator.answer with
        | Mediator.Complete _ -> incr complete
        | Mediator.Partial _ | Mediator.Unavailable _ -> ()
      done;
      let rate = float_of_int !complete /. float_of_int trials in
      let predicted = (1.0 -. ((1.0 -. p) ** float_of_int (k + 1))) ** float_of_int n in
      rows :=
        [
          string_of_int k;
          Fmt.str "%.3f" predicted;
          Fmt.str "%.3f" rate;
        ]
        :: !rows)
    [ 0; 1; 2 ];
  table
    ~columns:[ "replicas/extent"; "predicted complete"; "measured complete" ]
    (List.rev !rows);
  Fmt.pr
    "(replication buys completeness with storage and copy maintenance; the\n\
     partial-answer semantics needs neither — the paper's premise quantified.)@."

(* ==================================================================== *)
(* E11 - semantic answer cache: stale fallback, warm-up, resubmission   *)
(* (extension of the Section 4 staleness discussion)                    *)
(* ==================================================================== *)

let e11 () =
  header "E11: answer cache - stale fallback, warm-up, resubmission drain";
  (* Part 1: under heavy outages, Cached_fallback answers queries from
     cached fragments that plain partial evaluation leaves residual. *)
  Fmt.pr
    "part 1: 8 sources, p(up)=0.50 - fraction of extents contributing data\n\
     per query, and total tuples shipped, with and without the cache@.@.";
  let n = 8 and p = 0.50 in
  let trials = trials ~default:100 in
  let run_federation ~label ~semantics ~cache =
    let m =
      person_federation
        ~schedule_of:(fun i ->
          Schedule.flaky ~seed:(104729 * (i + 1)) ~period:1000.0
            ~availability:p)
        ?cache n
    in
    let data_fraction = ref 0.0 and shipped = ref 0 and complete = ref 0 in
    for trial = 0 to trials - 1 do
      Clock.advance_to (Mediator.clock m) (float_of_int trial *. 1000.0);
      let o = Mediator.query ~opts:(qopts ~timeout_ms:400.0 ~semantics ()) m paper_query in
      shipped := !shipped + o.Mediator.stats.Runtime.tuples_shipped;
      match o.Mediator.answer with
      | Mediator.Complete _ ->
          incr complete;
          data_fraction := !data_fraction +. 1.0
      | Mediator.Partial { unavailable; _ } ->
          data_fraction :=
            !data_fraction
            +. (float_of_int (n - List.length unavailable) /. float_of_int n)
      | Mediator.Unavailable _ -> ()
    done;
    ( label,
      !data_fraction /. float_of_int trials,
      float_of_int !complete /. float_of_int trials,
      !shipped,
      Mediator.answer_cache_stats m )
  in
  let results =
    [
      run_federation ~label:"partial answers (no cache)"
        ~semantics:Mediator.Partial_answers ~cache:None;
      run_federation ~label:"cached fallback (10s staleness)"
        ~semantics:(Mediator.Cached_fallback { max_stale_ms = 10_000.0 })
        ~cache:(Some (Answer_cache.create ()));
    ]
  in
  table
    ~columns:[ "configuration"; "data fraction"; "complete"; "tuples shipped" ]
    (List.map
       (fun (label, frac, complete, shipped, _) ->
         [
           label; Fmt.str "%.3f" frac; Fmt.str "%.2f" complete;
           string_of_int shipped;
         ])
       results);
  (match results with
  | [ (_, frac_plain, _, shipped_plain, _); (_, frac_cached, _, shipped_cached, stats) ]
    ->
      (match stats with
      | Some s ->
          Fmt.pr "cache counters: %a@." Answer_cache.pp_stats s
      | None -> ());
      if trials >= 10 then (
        assert (frac_cached > frac_plain);
        assert (shipped_cached < shipped_plain));
      Fmt.pr
        "(once warm, outages are bridged by cached fragments: more of each\n\
         answer is data, and hits ship no tuples over the wire.)@."
  | _ -> assert false);
  (* Part 2: warm-up on a healthy federation - repeated identical queries
     ship tuples exactly once. *)
  Fmt.pr "@.part 2: repeated identical query on a healthy 4-source federation@.@.";
  let m = person_federation ~cache:(Answer_cache.create ()) 4 in
  let rows = ref [] in
  for k = 1 to 3 do
    let o = Mediator.query m paper_query in
    let s = o.Mediator.stats in
    rows :=
      [
        string_of_int k;
        string_of_int s.Runtime.tuples_shipped;
        string_of_int s.Runtime.cache_hits;
        Fmt.str "%.1f" s.Runtime.elapsed_ms;
      ]
      :: !rows;
    if k > 1 then assert (s.Runtime.tuples_shipped = 0)
  done;
  table
    ~columns:[ "run"; "tuples shipped"; "cache hits"; "virtual ms" ]
    (List.rev !rows);
  (* Part 3: the resubmission manager drives partial answers to
     completion as sources recover. *)
  Fmt.pr
    "@.part 3: resubmission - sources recover staggered at t=2s/4s/6s;\n\
     every partial converges to a complete answer@.@.";
  let m =
    person_federation
      ~schedule_of:(fun i ->
        if i = 0 then Schedule.always_up
        else Schedule.down_during [ (0.0, float_of_int i *. 2000.0) ])
      ~cache:(Answer_cache.create ())
      4
  in
  let o = Mediator.query m paper_query in
  let queue = Resubmission.create ~clock:(Mediator.clock m) () in
  (match Mediator.record_partial queue o with
  | None -> assert false
  | Some _ -> ());
  let converged =
    Resubmission.drain queue
      ~source_of:(Mediator.find_source m)
      ~run:(Mediator.resubmission_runner m)
  in
  List.iter
    (fun e ->
      match e.Resubmission.state with
      | Resubmission.Converged rounds ->
          Fmt.pr "partial #%d: complete after %d resubmission round(s), t=%.1f@."
            e.Resubmission.id rounds
            (Clock.now (Mediator.clock m))
      | Resubmission.Pending -> Fmt.pr "partial #%d: still pending@." e.Resubmission.id)
    (Resubmission.entries queue);
  assert (converged = 1);
  assert (Resubmission.pending queue = []);
  Fmt.pr
    "(the queue watches availability schedules and replays residual\n\
     queries only when a blocking source transitions to up.)@."

(* ==================================================================== *)
(* E12 - per-source exec batching (DESIGN.md Section 4e)                *)
(* ==================================================================== *)

(* [sources] sites each holding [extents_per] Person extents, so a query
   over the implicit extent issues sources x extents_per execs —
   extents_per of them bound for each site. *)
let multi_extent_federation ~batch ~sources ~extents_per ~rows ~latency () =
  let m =
    mk_mediator ~batch ~name:(Fmt.str "e12_%b_%d" batch extents_per) ()
  in
  Mediator.load_odl m
    {|w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute Short id;
        attribute String name;
        attribute Short salary; }|};
  for s = 0 to sources - 1 do
    let db = Database.create ~name:"db" in
    for e = 0 to extents_per - 1 do
      let idx = (s * extents_per) + e in
      ignore
        (Datagen.table_of db ~name:(Fmt.str "person%d" idx)
           Datagen.person_schema
           (Datagen.person_rows ~seed:(1000 + idx) ~n:rows))
    done;
    Mediator.register_source m ~name:(Fmt.str "r%d" s)
      (Source.create ~id:(Fmt.str "site%d" s)
         ~address:
           (Source.address ~host:(Fmt.str "site%d" s) ~db_name:"db" ~ip:"0" ())
         ~latency (Source.Relational db));
    Mediator.load_odl m
      (Fmt.str {|r%d := Repository(host="site%d", name="db", address="0");|} s
         s);
    for e = 0 to extents_per - 1 do
      let idx = (s * extents_per) + e in
      Mediator.load_odl m
        (Fmt.str "extent person%d of Person wrapper w0 repository r%d;" idx s)
    done
  done;
  m

let e12 () =
  header "E12: per-source exec batching (DESIGN.md Section 4e)";
  Fmt.pr
    "4 sources x E extents each, base 10 ms, jitter 0.3: the batched\n\
     transport pays one round-trip per source instead of one per extent,\n\
     and each round waits on one jitter draw instead of the max of E.@.@.";
  let sources = 4 in
  let latency = { Source.base_ms = 10.0; per_row_ms = 0.0; jitter = 0.3 } in
  let trials = trials ~default:30 in
  let run ~batch ~extents_per =
    let m =
      multi_extent_federation ~batch ~sources ~extents_per ~rows:5 ~latency ()
    in
    let elapsed = ref 0.0 and rts = ref 0 and execs = ref 0 and tuples = ref 0 in
    for _ = 1 to trials do
      let o = Mediator.query m paper_query in
      (match o.Mediator.answer with
      | Mediator.Complete _ -> ()
      | _ -> assert false);
      let s = o.Mediator.stats in
      elapsed := !elapsed +. s.Runtime.elapsed_ms;
      rts := !rts + s.Runtime.round_trips;
      execs := !execs + s.Runtime.execs_issued;
      tuples := !tuples + s.Runtime.tuples_shipped
    done;
    (!elapsed /. float_of_int trials, !rts / trials, !execs / trials, !tuples)
  in
  let rows = ref [] in
  List.iter
    (fun extents_per ->
      let ms_u, rt_u, ex_u, tup_u = run ~batch:false ~extents_per in
      let ms_b, rt_b, ex_b, tup_b = run ~batch:true ~extents_per in
      (* identical answers: same execs issued, same tuples shipped *)
      assert (ex_b = ex_u);
      assert (tup_b = tup_u);
      (* the acceptance claim: at >= 4 extents per source, batching
         strictly reduces both round-trips and virtual latency *)
      if extents_per >= 4 then (
        assert (rt_b < rt_u);
        assert (ms_b < ms_u));
      rows :=
        [
          string_of_int extents_per;
          string_of_int ex_u;
          string_of_int rt_u;
          string_of_int rt_b;
          Fmt.str "%.1f" ms_u;
          Fmt.str "%.1f" ms_b;
          Fmt.str "%.2fx" (ms_u /. ms_b);
        ]
        :: !rows)
    [ 1; 2; 4; 8 ];
  table
    ~columns:
      [
        "extents/source"; "execs/query"; "round-trips unbatched";
        "round-trips batched"; "virtual ms unbatched"; "virtual ms batched";
        "speedup";
      ]
    (List.rev !rows);
  Fmt.pr
    "(answers are identical both ways; per-query numbers averaged over %d\n\
     trials.)@."
    trials

(* ==================================================================== *)
(* E13 - deadline-aware retry and replica hedging (DESIGN.md §4g)       *)
(* ==================================================================== *)

(* One Person extent per site; optionally one replica per extent (same
   data, its own outage process and source id). *)
let e13_source ~index ~suffix ~schedule () =
  let name = Fmt.str "person%d" index in
  let db = Database.create ~name:"db" in
  ignore
    (Datagen.table_of db ~name Datagen.person_schema
       (Datagen.person_rows ~seed:(1000 + index) ~n:5));
  Source.create ~id:(name ^ suffix)
    ~address:
      (Source.address ~host:(Fmt.str "site%d%s" index suffix) ~db_name:"db"
         ~ip:"0" ())
    ~latency:{ Source.base_ms = 10.0; per_row_ms = 0.01; jitter = 0.0 }
    ~schedule (Source.Relational db)

let e13_federation ?retry ?replica_schedule_of ~name ~n ~schedule_of () =
  let m = mk_mediator ?retry ~name () in
  Mediator.load_odl m
    {|w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute Short id;
        attribute String name;
        attribute Short salary; }|};
  for i = 0 to n - 1 do
    Mediator.register_source m ~name:(Fmt.str "r%d" i)
      (e13_source ~index:i ~suffix:"" ~schedule:(schedule_of i) ());
    Mediator.load_odl m
      (Fmt.str {|r%d := Repository(host="site%d", name="db", address="0");|} i
         i);
    match replica_schedule_of with
    | None ->
        Mediator.load_odl m
          (Fmt.str "extent person%d of Person wrapper w0 repository r%d;" i i)
    | Some rs ->
        Mediator.register_source m ~name:(Fmt.str "r%db" i)
          (e13_source ~index:i ~suffix:"b" ~schedule:(rs i) ());
        Mediator.load_odl m
          (Fmt.str
             {|r%db := Repository(host="site%db", name="db", address="0");
               extent person%d of Person wrapper w0 repository r%d replica r%db;|}
             i i i i i)
  done;
  m

let e13 () =
  header "E13: deadline-aware retry and replica hedging (DESIGN.md Section 4g)";
  (* Part 1: sources flap on staggered cycles, so at any query's issue
     time some of them are down but recover within the deadline.  The
     one-shot runtime finalizes those execs as blocked; the retry
     scheduler re-polls them into answers. *)
  Fmt.pr
    "part 1: 8 flapping sources (staggered periods, 40%% duty cycle),\n\
     800 ms deadline - blocked-exec rate and complete-answer rate with\n\
     the retry scheduler off and on@.@.";
  let n = 8 in
  let trials = trials ~default:50 in
  let schedule_of i =
    let period = 250.0 +. (60.0 *. float_of_int i) in
    Schedule.flapping ~period ~up_ms:(0.4 *. period)
  in
  let run ~label ~retry =
    let m = e13_federation ?retry ~name:("e13_" ^ label) ~n ~schedule_of () in
    let issued = ref 0 and blocked = ref 0 and complete = ref 0 in
    let elapsed = ref 0.0 in
    for trial = 0 to trials - 1 do
      Clock.advance_to (Mediator.clock m) (float_of_int trial *. 1000.0);
      let o = Mediator.query ~opts:(qopts ~timeout_ms:800.0 ()) m paper_query in
      issued := !issued + o.Mediator.stats.Runtime.execs_issued;
      blocked := !blocked + o.Mediator.stats.Runtime.execs_blocked;
      elapsed := !elapsed +. o.Mediator.stats.Runtime.elapsed_ms;
      match o.Mediator.answer with
      | Mediator.Complete _ -> incr complete
      | Mediator.Partial _ | Mediator.Unavailable _ -> ()
    done;
    ( float_of_int !blocked /. float_of_int !issued,
      float_of_int !complete /. float_of_int trials,
      !elapsed /. float_of_int trials )
  in
  let blocked_off, complete_off, ms_off = run ~label:"off" ~retry:None in
  let blocked_on, complete_on, ms_on =
    run ~label:"on"
      ~retry:
        (Some
           (Runtime.Retry.make ~initial_ms:40.0 ~multiplier:2.0
              ~max_attempts:5 ()))
  in
  (* the acceptance claim: re-polling measurably lowers the blocked rate
     and raises completeness *)
  assert (blocked_on < blocked_off);
  assert (complete_on > complete_off);
  table
    ~columns:[ "retry"; "blocked rate"; "complete rate"; "virtual ms/query" ]
    [
      [ "off"; Fmt.str "%.3f" blocked_off; Fmt.str "%.3f" complete_off;
        Fmt.str "%.1f" ms_off ];
      [ "on"; Fmt.str "%.3f" blocked_on; Fmt.str "%.3f" complete_on;
        Fmt.str "%.1f" ms_on ];
    ];
  (* Part 2: a degraded primary (x20 latency) with a healthy replica.
     Issue-time failover never triggers — the primary is up, just slow —
     but hedging races the replica after 30 ms and takes its answer. *)
  Fmt.pr
    "@.part 2: primaries degraded x20 (up but slow), healthy replicas,\n\
     hedge delay 30 ms@.@.";
  let slow = Schedule.slow_during [ (0.0, 1e9) ] ~factor:20.0 in
  let run_hedge ~label ~retry =
    let m =
      e13_federation ?retry
        ~name:("e13_hedge_" ^ label)
        ~n:4
        ~schedule_of:(fun _ -> slow)
        ~replica_schedule_of:(fun _ -> Schedule.always_up)
        ()
    in
    let elapsed = ref 0.0 in
    let trials = 20 in
    for trial = 0 to trials - 1 do
      Clock.advance_to (Mediator.clock m) (float_of_int trial *. 1000.0);
      let o = Mediator.query ~opts:(qopts ~timeout_ms:800.0 ()) m paper_query in
      (match o.Mediator.answer with
      | Mediator.Complete _ -> ()
      | Mediator.Partial _ | Mediator.Unavailable _ -> assert false);
      elapsed := !elapsed +. o.Mediator.stats.Runtime.elapsed_ms
    done;
    !elapsed /. float_of_int trials
  in
  let ms_unhedged = run_hedge ~label:"off" ~retry:None in
  let ms_hedged =
    run_hedge ~label:"on"
      ~retry:(Some (Runtime.Retry.make ~hedge_ms:30.0 ()))
  in
  assert (ms_hedged < ms_unhedged);
  assert (Metrics.find_counter bench_metrics "runtime.hedge.won" > 0);
  table
    ~columns:[ "hedging"; "virtual ms/query" ]
    [
      [ "off"; Fmt.str "%.1f" ms_unhedged ];
      [ "30 ms"; Fmt.str "%.1f" ms_hedged ];
    ];
  Fmt.pr
    "(retry turns within-deadline recoveries into complete answers; hedging\n\
     cuts tail latency when a healthy replica exists. Both default off —\n\
     the paper's one-shot semantics is the baseline.)@."

(* ==================================================================== *)
(* E14 - sharded extents: partition pruning and scatter-gather          *)
(* (DESIGN.md Section 4h)                                               *)
(* ==================================================================== *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* One logical person extent sharded by id across [shards] repositories.
   The total row count is fixed, so adding shards splits the same data
   into smaller slices; rows are placed with {!Shard.shard_of_value} so
   the data agrees with what the optimizer prunes. *)
let e14_federation ?(scheme = `Range)
    ?(schedule_of = fun _ -> Schedule.always_up) ~shards ~total_rows () =
  let m = mk_mediator ~name:(Fmt.str "e14_%d" shards) () in
  let per = total_rows / shards in
  let p_scheme =
    match scheme with
    | `Range ->
        Shard.Range (List.init (shards - 1) (fun k -> V.Int ((k + 1) * per)))
    | `Hash -> Shard.Hash { vnodes = Shard.default_vnodes }
  in
  let partition =
    {
      Shard.p_key = "id";
      p_scheme;
      p_shards =
        List.init shards (fun k ->
            { Shard.s_repository = Fmt.str "r%d" k; s_wrapper = None });
    }
  in
  let all_rows = Datagen.person_rows ~seed:42 ~n:total_rows in
  Mediator.load_odl m
    {|w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute Short id;
        attribute String name;
        attribute Short salary; }|};
  for k = 0 to shards - 1 do
    let slice =
      List.filter
        (fun row -> Shard.shard_of_value partition row.(0) = k)
        all_rows
    in
    let db = Database.create ~name:"db" in
    ignore
      (Datagen.table_of db ~name:(Shard.child_name "person" k)
         Datagen.person_schema slice);
    Mediator.register_source m ~name:(Fmt.str "r%d" k)
      (Source.create ~id:(Shard.child_name "person" k)
         ~address:
           (Source.address ~host:(Fmt.str "site%d" k) ~db_name:"db" ~ip:"0" ())
         ~latency:{ Source.base_ms = 2.0; per_row_ms = 1.0; jitter = 0.0 }
         ~schedule:(schedule_of k) (Source.Relational db));
    Mediator.load_odl m
      (Fmt.str {|r%d := Repository(host="site%d", name="db", address="0");|} k
         k)
  done;
  Mediator.load_odl m
    (Fmt.str "extent person of Person wrapper w0 %a;" Shard.pp partition);
  (m, partition)

let e14 () =
  header "E14: sharded extents - scatter-gather scaling, partition pruning";
  let total = 240 in
  Fmt.pr
    "one logical person extent, %d rows total, sharded by id; source\n\
     latency 2 ms + 1 ms/row, so slice size dominates@.@."
    total;
  (* Part 1: shard-count sweep under a non-key predicate.  Every shard is
     scanned, in one parallel round; the fixed total splits into smaller
     slices, so virtual latency drops near-linearly. *)
  Fmt.pr "part 1: full scan (predicate on salary, not the shard key)@.@.";
  let reference = ref None in
  let ms_of = Hashtbl.create 8 in
  let rows =
    List.map
      (fun shards ->
        let m, _ = e14_federation ~shards ~total_rows:total () in
        let o =
          Mediator.query ~opts:(qopts ~timeout_ms:10_000.0 ()) m paper_query
        in
        let answer =
          match o.Mediator.answer with
          | Mediator.Complete v -> v
          | _ -> assert false
        in
        (* scatter-gather is transparent: every shard count returns the
           same bag as the single-shard layout *)
        (match !reference with
        | None -> reference := Some answer
        | Some v -> assert (V.equal answer v));
        let s = o.Mediator.stats in
        Hashtbl.replace ms_of shards s.Runtime.elapsed_ms;
        let speedup =
          match Hashtbl.find_opt ms_of 1 with
          | Some ms1 -> Fmt.str "%.1fx" (ms1 /. s.Runtime.elapsed_ms)
          | None -> "-"
        in
        [
          string_of_int shards;
          string_of_int s.Runtime.execs_issued;
          string_of_int s.Runtime.tuples_shipped;
          Fmt.str "%.1f" s.Runtime.elapsed_ms;
          speedup;
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  table
    ~columns:[ "shards"; "execs"; "tuples shipped"; "virtual ms"; "speedup" ]
    rows;
  (* the acceptance claim: 8 shards answer the same scan >= 3x faster *)
  assert (Hashtbl.find ms_of 1 /. Hashtbl.find ms_of 8 >= 3.0);
  (* Part 2: a predicate that fixes the shard key contacts exactly one
     shard under either scheme; the rest are pruned before execution. *)
  Fmt.pr "@.part 2: shard-key equality (x.id = 57) on 8 shards@.@.";
  let prune_rows =
    List.map
      (fun (scheme, label) ->
        let m, partition = e14_federation ~scheme ~shards:8 ~total_rows:total () in
        let key = 57 in
        let expected = Shard.shard_of_value partition (V.Int key) in
        let pruned0 = Metrics.find_counter bench_metrics "shard.pruned" in
        let scanned0 = Metrics.find_counter bench_metrics "shard.scanned" in
        let o =
          Mediator.query m
            (Fmt.str "select x.name from x in person where x.id = %d" key)
        in
        let s = o.Mediator.stats in
        assert (s.Runtime.execs_issued = 1);
        (match o.Mediator.answer with
        | Mediator.Complete v -> assert (V.cardinal v = 1)
        | _ -> assert false);
        let pruned = Metrics.find_counter bench_metrics "shard.pruned" - pruned0 in
        let scanned =
          Metrics.find_counter bench_metrics "shard.scanned" - scanned0
        in
        assert (pruned = 7);
        assert (scanned = 1);
        [
          label;
          string_of_int expected;
          string_of_int s.Runtime.execs_issued;
          string_of_int pruned;
          Fmt.str "%.1f" s.Runtime.elapsed_ms;
        ])
      [ (`Range, "range"); (`Hash, "hash") ]
  in
  table
    ~columns:[ "scheme"; "owning shard"; "execs"; "shards pruned"; "virtual ms" ]
    prune_rows;
  (* Part 3: one shard down.  The gather degrades to a partial answer
     whose residual covers exactly the missing shard. *)
  Fmt.pr "@.part 3: shard 3 of 8 down - residual covers only that shard@.@.";
  let m, _ =
    e14_federation ~shards:8 ~total_rows:total
      ~schedule_of:(fun k ->
        if k = 3 then Schedule.always_down else Schedule.always_up)
      ()
  in
  let o = Mediator.query ~opts:(qopts ~timeout_ms:400.0 ()) m paper_query in
  (match o.Mediator.answer with
  | Mediator.Partial { unavailable; _ } as answer ->
      assert (unavailable = [ "r3" ]);
      let residual = Mediator.answer_oql answer in
      assert (contains_sub residual (Shard.child_name "person" 3));
      for k = 0 to 7 do
        if k <> 3 then
          assert (not (contains_sub residual (Shard.child_name "person" k)))
      done;
      Fmt.pr "residual: %s@." residual
  | _ -> assert false);
  Fmt.pr
    "(a sharded extent scatter-gathers in one parallel round; key-fixing\n\
     predicates contact a single shard, and a down shard degrades to a\n\
     residual query over just that shard.)@."

(* ==================================================================== *)
(* SOAK - deterministic fault injection for the retry scheduler         *)
(* ==================================================================== *)

let soak () =
  header "SOAK: retry/hedge/breaker under deterministic fault injection";
  Fmt.pr
    "8 flaky primaries + 8 flaky replicas (p(up)=0.70, 300 ms period),\n\
     retry+hedge+breaker on, 5 schedule seeds x queries: no runtime\n\
     errors, blocked rate bounded@.@.";
  let n = 8 in
  let trials = trials ~default:40 in
  let retry =
    Runtime.Retry.make ~initial_ms:25.0 ~multiplier:2.0 ~max_attempts:5
      ~hedge_ms:50.0 ~breaker_threshold:3 ~breaker_cooldown_ms:200.0 ()
  in
  let rows = ref [] in
  List.iter
    (fun seed ->
      let flaky k i =
        Schedule.flaky
          ~seed:(7919 * ((seed * 131) + (i * 17) + k))
          ~period:300.0 ~availability:0.70
      in
      let m =
        e13_federation ~retry
          ~name:(Fmt.str "soak_%d" seed)
          ~n
          ~schedule_of:(flaky 1)
          ~replica_schedule_of:(flaky 2)
          ()
      in
      let issued = ref 0 and blocked = ref 0 and failures = ref 0 in
      for trial = 0 to trials - 1 do
        Clock.advance_to (Mediator.clock m) (float_of_int trial *. 1000.0);
        match Mediator.query ~opts:(qopts ~timeout_ms:500.0 ()) m paper_query with
        | o ->
            issued := !issued + o.Mediator.stats.Runtime.execs_issued;
            blocked := !blocked + o.Mediator.stats.Runtime.execs_blocked
        | exception Runtime.Runtime_error msg ->
            Fmt.epr "soak seed %d trial %d: runtime error: %s@." seed trial msg;
            incr failures
      done;
      (* hard gates: the scheduler must never corrupt an exec into a
         runtime error, and with a replica per extent the blocked rate
         stays well under the both-copies-down ceiling *)
      assert (!failures = 0);
      let rate = float_of_int !blocked /. float_of_int !issued in
      assert (rate <= 0.35);
      rows :=
        [
          string_of_int seed;
          string_of_int trials;
          Fmt.str "%.3f" rate;
        ]
        :: !rows)
    [ 1; 2; 3; 4; 5 ];
  table ~columns:[ "seed"; "queries"; "blocked rate" ] (List.rev !rows);
  Fmt.pr
    "(every seed passes: no Runtime_error, blocked rate within bounds —\n\
     the deterministic soak CI runs on every push.)@."

(* ==================================================================== *)
(* A1/A2 - ablations of design choices (DESIGN.md Section 7)            *)
(* ==================================================================== *)

let a1 () =
  header "A1 ablation: close matching in the cost model (Section 3.3)";
  Fmt.pr
    "workload: 12 selects with different constants; how well does each\n\
     model predict the rows of the NEXT (unseen) query?@.@.";
  let run ~close_matching =
    let cost = Cost_model.create ~close_matching () in
    let m = mk_mediator ~name:"a1" ~cost () in
    Mediator.load_odl m
      {|w0 := WrapperPostgres();
        interface Person (extent person) {
          attribute Short id;
          attribute String name;
          attribute Short salary; }|};
    Mediator.register_source m ~name:"r0" (person_source ~index:0 ~rows:2000 ());
    Mediator.load_odl m
      {|r0 := Repository(host="site0", name="db", address="0.0.0.0");
        extent person0 of Person wrapper w0 repository r0;|};
    let total_err = ref 0.0 and n_preds = ref 0 in
    for round = 0 to 11 do
      let threshold = 40 + (round * 35) in
      let expr =
        Expr.Map
          ( Expr.Select
              ( Expr.Get "person0",
                Expr.Cmp (Expr.Gt, Expr.Attr [ "salary" ], Expr.Const (V.Int threshold)) ),
            Expr.Hscalar (Expr.Attr [ "name" ]) )
      in
      let est = Cost_model.estimate cost ~repo:"r0" expr in
      let o =
        Mediator.query ~opts:(qopts ~timeout_ms:10_000.0 ()) m
          (Fmt.str "select x.name from x in person where x.salary > %d" threshold)
      in
      let actual = float_of_int o.Mediator.stats.Runtime.tuples_shipped in
      if round > 0 && actual > 0.0 then (
        total_err := !total_err +. (Float.abs (est.Cost_model.est_rows -. actual) /. actual);
        incr n_preds)
    done;
    100.0 *. !total_err /. float_of_int !n_preds
  in
  table
    ~columns:[ "close matching"; "mean row-estimate error" ]
    [
      [ "on (DISCO)"; Fmt.str "%.0f%%" (run ~close_matching:true) ];
      [ "off (exact only)"; Fmt.str "%.0f%%" (run ~close_matching:false) ];
    ]

let a2 () =
  header "A2 ablation: the plan cache (Section 3.3)";
  let m = person_federation ~rows:50 16 in
  let reps = 100 in
  let timed f =
    let t0 = Sys.time () in
    for _ = 1 to reps do
      f ()
    done;
    (Sys.time () -. t0) *. 1e6 /. float_of_int reps
  in
  let with_cache = timed (fun () -> ignore (Mediator.query m paper_query)) in
  let without_cache =
    timed (fun () ->
        Mediator.clear_plan_cache m;
        ignore (Mediator.query m paper_query))
  in
  table
    ~columns:[ "plan cache"; "mean wall time / query" ]
    [
      [ "on"; Fmt.str "%.0f us" with_cache ];
      [ "off (replanned each query)"; Fmt.str "%.0f us" without_cache ];
    ];
  Fmt.pr "speedup from caching: %.1fx@." (without_cache /. with_cache)

(* ==================================================================== *)

let a3 () =
  header "A3 ablation: semijoin reduction (Sections 3.2 / 6.2 future work)";
  Fmt.pr "5-row VIP extent joined with a 5000-row staff extent at another site@.@.";
  let build () =
    let m = mk_mediator ~name:"a3" () in
    let small_db = Database.create ~name:"db" in
    ignore
      (Datagen.table_of small_db ~name:"vip0" Datagen.person_schema
         (List.init 5 (fun i -> [| V.Int (i * 400); V.String (Fmt.str "vip%d" i); V.Int 999 |])));
    let big_db = Database.create ~name:"db" in
    ignore
      (Datagen.table_of big_db ~name:"staff0" Datagen.person_schema
         (Datagen.person_rows ~seed:77 ~n:5000));
    Mediator.register_source m ~name:"r0"
      (Source.create ~id:"small"
         ~address:(Source.address ~host:"hq" ~db_name:"db" ~ip:"0" ())
         ~latency:{ Source.base_ms = 10.0; per_row_ms = 0.05; jitter = 0.0 }
         (Source.Relational small_db));
    Mediator.register_source m ~name:"r1"
      (Source.create ~id:"big"
         ~address:(Source.address ~host:"plant" ~db_name:"db" ~ip:"1" ())
         ~latency:{ Source.base_ms = 10.0; per_row_ms = 0.05; jitter = 0.0 }
         (Source.Relational big_db));
    Mediator.load_odl m
      {|r0 := Repository(host="hq", name="db", address="0");
        r1 := Repository(host="plant", name="db", address="1");
        w0 := WrapperPostgres();
        interface Person {
          attribute Short id;
          attribute String name;
          attribute Short salary; }
        extent vip0 of Person wrapper w0 repository r0;
        extent staff0 of Person wrapper w0 repository r1;|};
    m
  in
  let q =
    "select struct(a: x.name, b: y.name) from x in vip0, y in staff0 where      x.id = y.id"
  in
  let m = build () in
  let o1 = Mediator.query ~opts:(qopts ~timeout_ms:100_000.0 ()) m q in
  Mediator.clear_plan_cache m;
  let o2 = Mediator.query ~opts:(qopts ~timeout_ms:100_000.0 ()) m q in
  let row label o =
    [
      label;
      string_of_int o.Mediator.stats.Runtime.tuples_shipped;
      Fmt.str "%.1f ms" o.Mediator.stats.Runtime.elapsed_ms;
      (match o.Mediator.plan with
      | Some p when Plan.semi_joins p > 0 -> "semijoin"
      | Some _ -> "parallel join"
      | None -> "hybrid");
    ]
  in
  table
    ~columns:[ "run"; "tuples shipped"; "virtual latency"; "strategy" ]
    [
      row "1 (no statistics: max pushdown)" o1;
      row "2 (learned costs: semijoin)" o2;
    ]

(* ==================================================================== *)
(* bechamel wall-clock benches                                          *)
(* ==================================================================== *)

let bechamel_suite () =
  header "wall-clock micro-benchmarks (bechamel)";
  let open Bechamel in
  let m16 = person_federation ~rows:200 16 in
  let grammar_expr =
    Expr.Map
      ( Expr.Select
          ( Expr.Get "person0",
            Expr.Cmp (Expr.Gt, Expr.Attr [ "salary" ], Expr.Const (V.Int 10)) ),
        Expr.Hscalar (Expr.Attr [ "name" ]) )
  in
  let compiled = Result.get_ok (Compile.compile (Oql.parse paper_query)) in
  let partial_plan =
    Plan.Mk_union
      [ Plan.Exec ("r0", grammar_expr); Plan.Mk_data (V.bag [ V.String "Sam" ]) ]
  in
  let tests =
    [
      Test.make ~name:"e7.parse-oql" (Staged.stage (fun () -> Oql.parse paper_query));
      Test.make ~name:"e7.compile+normalize"
        (Staged.stage (fun () ->
             Rules.normalize ~can_push:Rules.push_all
               (Compile.locate ~repo_of:(fun _ -> Some "r0") compiled)));
      Test.make ~name:"e7.end-to-end-16-sources"
        (Staged.stage (fun () -> Mediator.query m16 paper_query));
      Test.make ~name:"e4.grammar-check"
        (Staged.stage (fun () ->
             Grammar.accepts Grammar.full_relational grammar_expr));
      Test.make ~name:"e6.partial-answer-decompile"
        (Staged.stage (fun () ->
             Decompile.decompile (Plan.to_logical partial_plan)));
      Test.make ~name:"e5.cost-estimate"
        (Staged.stage
           (let cm = Cost_model.create () in
            Cost_model.record cm ~repo:"r0" ~expr:grammar_expr ~time_ms:5.0
              ~rows:10;
            fun () -> Cost_model.estimate cm ~repo:"r0" grammar_expr));
      Test.make ~name:"e3.odl-load"
        (Staged.stage (fun () ->
             let reg = Disco_odl.Registry.create () in
             Disco_odl.Odl_parser.load reg
               {|w0 := WrapperPostgres();
                 r0 := Repository(host="h", name="d", address="a");
                 interface Person (extent person) {
                   attribute String name;
                   attribute Short salary; }
                 extent person0 of Person wrapper w0 repository r0;|}));
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
    in
    let raw = Benchmark.all cfg instances test in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let results = benchmark (Test.make_grouped ~name:"disco" ~fmt:"%s/%s" tests) in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some [ x ] -> Fmt.str "%.0f ns" x
        | _ -> "n/a"
      in
      rows := [ name; ns ] :: !rows)
    results;
  table ~columns:[ "bench"; "time/run" ] (List.sort compare !rows)

(* ==================================================================== *)
(* E15 - wall-clock serving: admission control and load shedding        *)
(* ==================================================================== *)

(* A person-federation replica for serve mode. Unlike [mk_mediator] it
   carries no trace sink — the sink's hashtable fold is not thread-safe
   and serve-mode workers finish queries concurrently — and it runs on
   the given wall scheduler, so the sources' simulated latencies become
   real service times. One replica per worker thread: per-worker state
   needs no locking. *)
let e15_replica ~sched n =
  let m =
    Mediator.create
      ~config:
        { Mediator.Config.default with sched = Some sched; metrics = bench_metrics }
      ~name:"serve" ()
  in
  Mediator.load_odl m
    {|w0 := WrapperPostgres();
      interface Person (extent person) {
        attribute Short id;
        attribute String name;
        attribute Short salary; }|};
  for i = 0 to n - 1 do
    Mediator.register_source m ~name:(Fmt.str "r%d" i)
      (person_source ~index:i ~rows:5 ());
    Mediator.load_odl m
      (Fmt.str
         {|r%d := Repository(host="site%d", name="db", address="0.0.0.0");
           extent person%d of Person wrapper w0 repository r%d;|}
         i i i i)
  done;
  m

let e15_pool =
  [|
    paper_query;
    "select x.name from x in person where x.salary > 30";
    "select x from x in person where x.id = 3";
    "select x.salary from x in person";
  |]

(* One open-loop run against an in-process server; returns the table row
   ingredients and pushes a wall-clock JSON record for the artifact. *)
let e15_run ~label ~inflight ~queue_bound ~rate ~duration_s =
  let sched = Scheduler.wall ~domains:2 () in
  let meds = Array.init inflight (fun _ -> e15_replica ~sched 4) in
  let opts = qopts ~timeout_ms:5000.0 () in
  let worker i ~tenant:_ oql =
    match Mediator.query ~opts meds.(i) oql with
    | o ->
        Server.Answered
          { body = "ok"; elapsed_ms = o.Mediator.stats.Runtime.elapsed_ms }
    | exception e -> Server.Failed (Printexc.to_string e)
  in
  let srv =
    Server.create ~inflight ~queue_bound ~metrics:bench_metrics ~worker ()
  in
  let r =
    Loadgen.run ~zipf_s:1.1 ~seed:42 ~tenants:[ "t0"; "t1" ] ~queries:e15_pool
      ~rate ~duration_s (Loadgen.Direct srv)
  in
  Server.stop srv;
  Scheduler.shutdown sched;
  bench_results :=
    Fmt.str
      "{\"experiment\":\"e15\",\"mode\":\"wall\",\"run\":%S,\"inflight\":%d,\"queue_bound\":%d,\"offered_qps\":%.0f,\"sent\":%d,\"completed\":%d,\"shed\":%d,\"errors\":%d,\"qps\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"p999_ms\":%.3f}"
      label inflight queue_bound rate r.Loadgen.r_sent r.Loadgen.r_completed
      r.Loadgen.r_shed r.Loadgen.r_errors r.Loadgen.r_qps r.Loadgen.r_p50_ms
      r.Loadgen.r_p99_ms r.Loadgen.r_p999_ms
    :: !bench_results;
  (label, inflight, queue_bound, rate, r)

let e15 () =
  header "E15: wall-clock serving - admission control and load shedding";
  Fmt.pr "claim: the serve-mode admission limit bounds concurrency: offered@.";
  Fmt.pr "       load below capacity sheds nothing, while past the queue@.";
  Fmt.pr "       bound excess arrivals are rejected with resubmittable@.";
  Fmt.pr "       residuals (open-loop Zipf arrivals, real domains).@.@.";
  let under =
    e15_run ~label:"underload" ~inflight:4 ~queue_bound:64 ~rate:40.0
      ~duration_s:1.5
  in
  let over =
    e15_run ~label:"overload" ~inflight:1 ~queue_bound:2 ~rate:200.0
      ~duration_s:1.0
  in
  table
    ~columns:
      [
        "run"; "inflight"; "qbound"; "offered"; "sent"; "done"; "shed"; "err";
        "qps"; "p50 ms"; "p99 ms"; "p999 ms";
      ]
    (List.map
       (fun (label, inflight, qb, rate, r) ->
         [
           label; string_of_int inflight; string_of_int qb;
           Fmt.str "%.0f/s" rate; string_of_int r.Loadgen.r_sent;
           string_of_int r.Loadgen.r_completed; string_of_int r.Loadgen.r_shed;
           string_of_int r.Loadgen.r_errors; Fmt.str "%.1f" r.Loadgen.r_qps;
           Fmt.str "%.2f" r.Loadgen.r_p50_ms; Fmt.str "%.2f" r.Loadgen.r_p99_ms;
           Fmt.str "%.2f" r.Loadgen.r_p999_ms;
         ])
       [ under; over ]);
  let (_, _, _, _, ur) = under and _, _, _, _, ov = over in
  if ur.Loadgen.r_shed <> 0 then failwith "E15: underload run shed requests";
  if ur.Loadgen.r_errors <> 0 then failwith "E15: underload run errored";
  if ov.Loadgen.r_shed = 0 then failwith "E15: overload run shed nothing";
  if ov.Loadgen.r_errors <> 0 then failwith "E15: overload run errored";
  Fmt.pr "@.underload shed=0, overload shed=%d: admission limit enforced@."
    ov.Loadgen.r_shed

(* == E16: columnar relation engine =================================== *)

(* Wall-clock micro-benchmark of lib/relation itself — no mediator, no
   virtual clock: tuples/sec of the row-at-a-time reference interpreter
   vs the columnar batch engine vs declared indexes, on the same table
   and queries.  --rows N replaces the default tiers (CI smoke runs
   --rows 100000; pass 10000000 for the 10^7 tier). *)

let e16_rows_override = ref None

let e16_tiers () =
  match !e16_rows_override with
  | Some n -> [ n ]
  | None -> [ 100_000; 1_000_000 ]

(* best-of-3 wall time per call; [reps] batches sub-resolution calls
   (indexed lookups finish in nanoseconds) inside one measurement *)
let e16_best ?(reps = 1) f =
  let rec go k best =
    if k = 0 then best
    else
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do
        ignore (Sys.opaque_identity (f ()))
      done;
      let dt = (Unix.gettimeofday () -. t0) /. float_of_int reps in
      go (k - 1) (Float.min best dt)
  in
  Float.max 1e-9 (go 3 infinity)

let e16 () =
  header "E16: columnar relation engine - batch kernels and indexes";
  Fmt.pr "claim: rebuilding lib/relation around typed column vectors,@.";
  Fmt.pr "       dictionary-coded strings and batch predicate kernels@.";
  Fmt.pr "       multiplies scan throughput, and declared indexes turn@.";
  Fmt.pr "       selective lookups sublinear, without changing results.@.@.";
  let module Sql = Disco_relation.Sql in
  let module Table = Disco_relation.Table in
  let module Index = Disco_relation.Index in
  let rows_out = ref [] in
  List.iter
    (fun n ->
      let db = Database.create ~name:"bench" in
      let tbl =
        Datagen.table_of db ~name:"person" Datagen.person_schema
          (Datagen.person_rows ~seed:7 ~n)
      in
      let scan_q =
        Sql.parse "SELECT id, name FROM person WHERE salary > 450"
      in
      let point_q =
        Sql.parse (Fmt.str "SELECT name FROM person WHERE id = %d" (n / 2))
      in
      let range_q = Sql.parse "SELECT id FROM person WHERE salary < 15" in
      let bag r = List.sort compare r.Sql.rows in
      let check q label =
        if bag (Sql.run db q) <> bag (Sql.run_rows db q) then
          failwith ("E16: engines disagree on " ^ label)
      in
      check scan_q "selective scan";
      check point_q "point lookup";
      (match Sql.explain_engine db scan_q with
      | `Columnar -> ()
      | _ -> failwith "E16: scan not on the columnar engine");
      let scan_row = e16_best (fun () -> Sql.run_rows db scan_q) in
      let scan_col = e16_best (fun () -> Sql.run db scan_q) in
      let point_row = e16_best (fun () -> Sql.run_rows db point_q) in
      let point_col = e16_best (fun () -> Sql.run db point_q) in
      Table.declare_index tbl ~column:"id" Index.Hash;
      Table.declare_index tbl ~column:"salary" Index.Sorted;
      (match Sql.explain_engine db point_q with
      | `Columnar_indexed "id" -> ()
      | _ -> failwith "E16: point lookup not index-served");
      (match Sql.explain_engine db range_q with
      | `Columnar_indexed "salary" -> ()
      | _ -> failwith "E16: range filter not index-served");
      check point_q "indexed point lookup";
      check range_q "indexed range filter";
      ignore (Sql.run db point_q) (* build the lazy indexes once *);
      let point_ix = e16_best ~reps:1000 (fun () -> Sql.run db point_q) in
      let range_ix = e16_best ~reps:100 (fun () -> Sql.run db range_q) in
      let range_col = e16_best (fun () -> Sql.run_rows db range_q) in
      Table.drop_index tbl "id";
      Table.drop_index tbl "salary";
      let tps dt = float_of_int n /. dt in
      let speedup = tps scan_col /. tps scan_row in
      rows_out :=
        [
          string_of_int n; "scan salary>450";
          Fmt.str "%.2e" (tps scan_row); Fmt.str "%.2e" (tps scan_col); "-";
          Fmt.str "%.1fx" speedup;
        ]
        :: [
             string_of_int n; "point id=k";
             Fmt.str "%.2e" (tps point_row); Fmt.str "%.2e" (tps point_col);
             Fmt.str "%.2e" (tps point_ix);
             Fmt.str "%.0fx" (tps point_ix /. tps point_row);
           ]
        :: [
             string_of_int n; "range salary<15";
             Fmt.str "%.2e" (tps range_col); "-"; Fmt.str "%.2e" (tps range_ix);
             Fmt.str "%.0fx" (tps range_ix /. tps range_col);
           ]
        :: !rows_out;
      bench_results :=
        Fmt.str
          "{\"experiment\":\"e16\",\"rows\":%d,\"scan_row_tps\":%.0f,\"scan_col_tps\":%.0f,\"scan_speedup\":%.2f,\"point_row_tps\":%.0f,\"point_col_tps\":%.0f,\"point_indexed_tps\":%.0f,\"range_row_tps\":%.0f,\"range_indexed_tps\":%.0f}"
          n (tps scan_row) (tps scan_col) speedup (tps point_row)
          (tps point_col) (tps point_ix) (tps range_col) (tps range_ix)
        :: !bench_results;
      if n >= 1_000_000 && speedup < 5.0 then
        failwith
          (Fmt.str "E16: columnar scan speedup %.1fx < 5x at %d rows" speedup n))
    (e16_tiers ());
  table
    ~columns:
      [ "rows"; "query"; "row tps"; "columnar tps"; "indexed tps"; "speedup" ]
    (List.rev !rows_out);
  Fmt.pr "@.engines agree bag-for-bag on every query above@."

let e17 () =
  header "E17: static analyzer - SPOF counts and analysis cost";
  Fmt.pr "claim: the federation analyzer finds every single point of@.";
  Fmt.pr "       failure without contacting a source, a declared replica@.";
  Fmt.pr "       removes it from the report, and whole-federation@.";
  Fmt.pr "       analysis costs milliseconds, not a survey of sites.@.@.";
  let base replicas =
    Fmt.str
      {|r0 := Repository(host="rodin", name="payroll", address="1");
        r1 := Repository(host="matisse", name="payroll", address="2");
        r2 := Repository(host="archive", name="payroll", address="3");
        r3 := Repository(host="mirror", name="payroll", address="4");
        w0 := WrapperPostgres();
        w1 := WrapperSql();
        interface Person (extent person) {
          attribute Short id;
          attribute String name;
          attribute Short salary;
        }
        extent person0 of Person wrapper w0 repository r0%s;
        extent person1 of Person wrapper w1 repository r1%s;
        extent emp of Person wrapper w0 sharded by id range (100) across r0 r2;
        define seniors as select x from x in person where x.salary > 50;|}
      (if replicas then " replica r3" else "")
      (if replicas then " replica r3" else "")
  in
  let workload =
    [
      ( "bench.oql",
        String.concat "\n"
          [
            "select x.name from x in person where x.salary > 10";
            "select x from x in person0";
            "select x.name from x in emp where x.id = 7";
            "select x.name from x in seniors";
            "select struct(a: x.name, b: y.salary) from x in person0, y in \
             person1 where x.id = y.id";
          ] );
    ]
  in
  let analyze replicas =
    let reg = Registry.create () in
    Odl_parser.load reg (base replicas);
    Analysis.analyze ~workload reg
  in
  let count sev r =
    List.length
      (List.filter (fun (_, d) -> d.Check.d_severity = sev) r.Analysis.r_diags)
  in
  let dt_ms replicas =
    1000.0 *. e16_best ~reps:20 (fun () -> ignore (analyze replicas))
  in
  let before = analyze false and after = analyze true in
  let ms_before = dt_ms false and ms_after = dt_ms true in
  table
    ~columns:[ "federation"; "spofs"; "errors"; "warnings"; "analyze ms" ]
    [
      [
        "no replicas";
        string_of_int (List.length before.Analysis.r_spofs);
        string_of_int (count Check.Error before);
        string_of_int (count Check.Warning before);
        Fmt.str "%.2f" ms_before;
      ];
      [
        "replica r3 on person0/person1";
        string_of_int (List.length after.Analysis.r_spofs);
        string_of_int (count Check.Error after);
        string_of_int (count Check.Warning after);
        Fmt.str "%.2f" ms_after;
      ];
    ];
  bench_results :=
    Fmt.str
      "{\"experiment\":\"e17\",\"queries\":%d,\"spofs_before\":%d,\"spofs_after\":%d,\"errors\":%d,\"warnings\":%d,\"analyze_ms\":%.3f}"
      (List.length before.Analysis.r_queries)
      (List.length before.Analysis.r_spofs)
      (List.length after.Analysis.r_spofs)
      (count Check.Error before) (count Check.Warning before) ms_before
    :: !bench_results;
  (* the sharded extent keeps its unreplicated shard repositories as
     SPOFs; the replica must remove the two plain extents' ones *)
  if List.length before.Analysis.r_spofs <= List.length after.Analysis.r_spofs
  then failwith "E17: adding a replica did not reduce the SPOF count";
  if List.mem "r1" after.Analysis.r_spofs then
    failwith "E17: replicated repository still reported as a SPOF";
  Fmt.pr "@.replica r3 removed %d of %d SPOFs; analysis stayed static@."
    (List.length before.Analysis.r_spofs - List.length after.Analysis.r_spofs)
    (List.length before.Analysis.r_spofs)

(* ==================================================================== *)

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
    ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16);
    ("e17", e17);
    ("a1", a1); ("a2", a2); ("a3", a3); ("soak", soak);
  ]

(* --merge-results folds an existing BENCH_RESULTS.json (one object per
   line) in front of this run's entries, so a follow-up invocation (CI's
   wall-clock E15 step) appends to the artifact instead of overwriting
   the virtual-clock series. *)
let merge_existing_results () =
  match open_in "BENCH_RESULTS.json" with
  | exception Sys_error _ -> ()
  | ic ->
      let entries = ref [] in
      (try
         while true do
           let line = String.trim (input_line ic) in
           let line =
             if String.length line > 0 && line.[String.length line - 1] = ','
             then String.sub line 0 (String.length line - 1)
             else line
           in
           if String.length line > 0 && line.[0] = '{' then
             entries := line :: !entries
         done
       with End_of_file -> ());
      close_in ic;
      (* both lists are newest-first; the final [List.rev] in
         [write_results_file] restores file order with the old entries
         leading. *)
      bench_results := !bench_results @ !entries

let () =
  let args = Array.to_list Sys.argv in
  let wanted = ref None in
  let rec scan = function
    | "--experiment" :: name :: rest ->
        wanted := Some (String.lowercase_ascii name);
        scan rest
    | "--trials" :: n :: rest ->
        trials_override := int_of_string_opt n;
        scan rest
    | "--rows" :: n :: rest ->
        e16_rows_override := int_of_string_opt n;
        scan rest
    | _ :: rest -> scan rest
    | [] -> ()
  in
  scan args;
  let no_bechamel = List.mem "--no-bechamel" args in
  let run (name, f) =
    reset_observations ();
    f ();
    emit_summary name
  in
  (match !wanted with
  | Some name -> (
      match List.assoc_opt name experiments with
      | Some f -> run (name, f)
      | None ->
          Fmt.epr "unknown experiment %s (e1..e16, a1..a3, soak)@." name;
          exit 1)
  | None ->
      List.iter run experiments;
      if not no_bechamel then bechamel_suite ());
  if List.mem "--merge-results" args then merge_existing_results ();
  write_results_file ()
