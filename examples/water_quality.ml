(* The environmental application that motivates DISCO (Section 1):
   "Multiple databases, distributed geographically, contain measurements
   of water quality at the physical site of the database. All of these
   measurements have the same type."

   Sixteen monitoring stations expose identical reading relations. The
   DBA integrates each with one extent statement; analysts query the
   single implicit extent [reading]. Stations go down routinely (remote
   hardware), so partial answers are the norm: the example runs a
   pollution scan while a storm takes out a river valley, then resubmits
   when the stations recover.

   Run with: dune exec examples/water_quality.exe *)

module V = Disco_value.Value
module Source = Disco_source.Source
module Schedule = Disco_source.Schedule
module Clock = Disco_source.Clock
module Database = Disco_relation.Database
module Datagen = Disco_source.Datagen
module Mediator = Disco_core.Mediator
module Runtime = Disco_runtime.Runtime

let station_names =
  [
    "seine_amont"; "seine_aval"; "marne"; "oise"; "yonne"; "loing"; "eure";
    "aube"; "essonne"; "orge"; "bievre"; "ourcq"; "grand_morin"; "petit_morin";
    "therouanne"; "yerres";
  ]

let station_source ~index ~name =
  let db = Database.create ~name in
  ignore
    (Datagen.table_of db
       ~name:(Fmt.str "reading%d" index)
       Datagen.water_schema
       (Datagen.water_rows ~seed:(100 + index) ~station:name ~n:200));
  Source.create ~id:name
    ~address:(Source.address ~host:name ~db_name:"hydro" ~ip:(Fmt.str "10.0.0.%d" index) ())
    ~latency:{ Source.base_ms = 12.0; per_row_ms = 0.05; jitter = 0.1 }
    (Source.Relational db)

let () =
  let m = Mediator.create ~name:"hydromed" () in

  (* One interface for every station; one extent statement per station. *)
  Mediator.load_odl m
    {|
    w0 := WrapperPostgres();
    interface Reading (extent reading) {
      attribute String station;
      attribute Short ts;
      attribute Float ph;
      attribute Float turbidity;
      attribute Float oxygen; }
  |};
  List.iteri
    (fun i name ->
      Mediator.register_source m ~name:(Fmt.str "r%d" i) (station_source ~index:i ~name);
      Mediator.load_odl m
        (Fmt.str
           {|r%d := Repository(host="%s", name="hydro", address="10.0.0.%d");
             extent reading%d of Reading wrapper w0 repository r%d;|}
           i name i i i))
    station_names;
  Fmt.pr "integrated %d stations (one ODL statement each)@."
    (List.length station_names);

  (* A pollution scan: low oxygen AND high turbidity, network-wide. *)
  let q =
    "select struct(station: x.station, oxygen: x.oxygen, turbidity: \
     x.turbidity) from x in reading where x.oxygen < 4.4 and x.turbidity > 38.0"
  in
  Fmt.pr "@.pollution scan: %s@." q;
  let o =
    Mediator.query
      ~opts:{ Mediator.Query_opts.default with timeout_ms = 500.0 }
      m q
  in
  (match o.Mediator.answer with
  | Mediator.Complete v ->
      Fmt.pr "alerts: %d readings from %d stations shipped %d tuples in %.1f \
              virtual ms@."
        (V.cardinal v) (List.length station_names)
        o.Mediator.stats.Runtime.tuples_shipped
        o.Mediator.stats.Runtime.elapsed_ms
  | _ -> assert false);

  (* A storm takes out four river-valley stations. *)
  let storm = [ 2; 3; 4; 5 ] in
  List.iter
    (fun i ->
      match Mediator.find_source m (Fmt.str "r%d" i) with
      | Some src -> Source.set_schedule src (Schedule.down_during [ (0.0, 60000.0) ])
      | None -> ())
    storm;
  Fmt.pr "@.storm: stations %s offline@."
    (String.concat ", " (List.map (fun i -> List.nth station_names i) storm));

  let o =
    Mediator.query
      ~opts:{ Mediator.Query_opts.default with timeout_ms = 300.0 }
      m q
  in
  (match o.Mediator.answer with
  | Mediator.Partial { unavailable; _ } as partial ->
      Fmt.pr "partial answer over %d live stations; %d unavailable@."
        (List.length station_names - List.length unavailable)
        (List.length unavailable);
      Fmt.pr "residual query is %d characters of OQL (data from live \
              stations inlined)@."
        (String.length (Mediator.answer_oql partial))
  | Mediator.Complete _ -> Fmt.pr "unexpectedly complete@."
  | Mediator.Unavailable _ -> assert false);

  (* The storm passes; resubmit the saved partial answer. *)
  Clock.advance (Mediator.clock m) 61000.0;
  (match o.Mediator.answer with
  | Mediator.Partial _ as partial -> (
      match (Mediator.resubmit m partial).Mediator.answer with
      | Mediator.Complete v ->
          Fmt.pr "@.after the storm, resubmission completes: %d alerts@."
            (V.cardinal v)
      | _ -> Fmt.pr "still partial@.")
  | _ -> ());

  (* Aggregate analytics run through the mediator's hybrid evaluator. *)
  let avg_q = "avg(select x.oxygen from x in reading)" in
  match (Mediator.query m avg_q).Mediator.answer with
  | Mediator.Complete (V.Float avg) ->
      Fmt.pr "@.network-wide average dissolved oxygen: %.2f mg/L@." avg
  | _ -> assert false
