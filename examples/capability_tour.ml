(* The wrapper implementor's view (paper Sections 1.4 and 3.2).

   The same logical query runs against four sources whose wrappers
   advertise different capability grammars: full SQL, select-pushdown,
   the paper's project-without-composition example, and get-only. The
   example prints each wrapper's grammar, the plan the optimizer derives
   under that grammar, and how many tuples actually crossed the wrapper
   interface — the capability/pushdown trade-off of experiment E4.

   A key-value store and a flat file round out Section 2.2's claim that
   the model "can be applied to a variety of information servers".

   Run with: dune exec examples/capability_tour.exe *)

module V = Disco_value.Value
module Source = Disco_source.Source
module Database = Disco_relation.Database
module Datagen = Disco_source.Datagen
module Grammar = Disco_wrapper.Grammar
module Wrapper = Disco_wrapper.Wrapper
module Mediator = Disco_core.Mediator
module Runtime = Disco_runtime.Runtime

let n_rows = 500

let mediator_with ~ctor =
  let m = Mediator.create ~name:("m_" ^ ctor) () in
  let db = Datagen.person_db ~seed:11 ~name:"person0" ~n:n_rows in
  Mediator.register_source m ~name:"r0"
    (Source.create ~id:"src"
       ~address:(Source.address ~host:"site" ~db_name:"db" ~ip:"10.2.0.1" ())
       (Source.Relational db));
  Mediator.load_odl m
    (Fmt.str
       {|r0 := Repository(host="site", name="db", address="10.2.0.1");
         w0 := %s();
         interface Person (extent person) {
           attribute Short id;
           attribute String name;
           attribute Short salary; }
         extent person0 of Person wrapper w0 repository r0;|}
       ctor);
  m

let () =
  let q = "select x.name from x in person where x.salary > 450" in
  Fmt.pr "query: %s  (over %d tuples)@." q n_rows;
  List.iter
    (fun (ctor, wrapper) ->
      Fmt.pr "@.=== %s ===@." ctor;
      Fmt.pr "submit-functionality returns:@.%a" Grammar.pp
        (Wrapper.functionality wrapper);
      let m = mediator_with ~ctor in
      Fmt.pr "chosen plan: %s@." (Mediator.explain m q);
      let o = Mediator.query m q in
      match o.Mediator.answer with
      | Mediator.Complete v ->
          Fmt.pr "answer size %d; tuples shipped across the wrapper: %d@."
            (V.cardinal v) o.Mediator.stats.Runtime.tuples_shipped
      | _ -> assert false)
    [
      ("WrapperPostgres", Wrapper.sql_wrapper ());
      ("WrapperSelect", Wrapper.select_wrapper ());
      ("WrapperProject", Wrapper.project_wrapper ());
      ("WrapperScan", Wrapper.scan_wrapper ());
    ];

  (* Non-relational servers behind the same interface. *)
  Fmt.pr "@.=== WrapperKV (key-value server) ===@.";
  let m = Mediator.create ~name:"m_kv" () in
  let tbl = Hashtbl.create 16 in
  let kv = Source.create ~id:"kv"
      ~address:(Source.address ~host:"cache" ~db_name:"people" ~ip:"10.2.0.9" ())
      (Source.Key_value tbl)
  in
  List.iter
    (fun (k, salary) ->
      Source.kv_put kv k
        (V.strct [ ("key", V.String k); ("salary", V.Int salary) ]))
    [ ("mary", 200); ("sam", 50); ("zoe", 75) ];
  Mediator.register_source m ~name:"rk" kv;
  Mediator.load_odl m
    {|rk := Repository(host="cache", name="people", address="10.2.0.9");
      wk := WrapperKV();
      interface Entry (extent entries) {
        attribute String key;
        attribute Short salary; }
      extent entries0 of Entry wrapper wk repository rk;|};
  (match (Mediator.query m {|select e.salary from e in entries where e.key = "mary"|}).Mediator.answer with
  | Mediator.Complete v -> Fmt.pr "indexed lookup: %a@." V.pp v
  | _ -> assert false);
  (match (Mediator.query m "count(entries)").Mediator.answer with
  | Mediator.Complete v -> Fmt.pr "scan count: %a@." V.pp v
  | _ -> assert false);

  (* A WAIS-style document server: keyword search through the like
     capability, everything else refused. *)
  Fmt.pr "@.=== WrapperWais (keyword-indexed documents) ===@.";
  let module Text_index = Disco_source.Text_index in
  let idx = Text_index.create () in
  List.iter
    (fun (title, body) -> ignore (Text_index.add idx ~title ~body))
    [
      ("Mediator architectures", "scaling heterogeneous databases with mediators");
      ("Wrapper grammars", "capability descriptions as grammars over operators");
      ("Partial answers", "unavailable sources and answers that are queries");
    ];
  let mw = Mediator.create ~name:"m_wais" () in
  Mediator.register_source mw ~name:"rt"
    (Source.create ~id:"wais"
       ~address:(Source.address ~host:"wais.inria.fr" ~db_name:"docs" ~ip:"10.2.0.20" ())
       (Source.Text idx));
  Mediator.load_odl mw
    {|rt := Repository(host="wais.inria.fr", name="docs", address="10.2.0.20");
      wt := WrapperWais();
      interface Doc (extent docs) {
        attribute Short id;
        attribute String title;
        attribute String body; }
      extent docs0 of Doc wrapper wt repository rt;|};
  (match
     (Mediator.query mw {|select d.title from d in docs where d.body like "%grammars%"|})
       .Mediator.answer
   with
  | Mediator.Complete v -> Fmt.pr "keyword search: %a@." V.pp v
  | _ -> assert false);
  match (Mediator.query mw "count(docs)").Mediator.answer with
  | Mediator.Complete v -> Fmt.pr "document count: %a@." V.pp v
  | _ -> assert false
