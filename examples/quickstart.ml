(* Quickstart: the paper's running example (Sections 1.2-1.3).

   Two autonomous person databases sit behind SQL wrappers. The mediator
   models each as an extent of the Person type; the implicit extent
   [person] ranges over both. We run the paper's query, take one source
   down, receive the partial answer *as a query*, bring the source back,
   and resubmit.

   Run with: dune exec examples/quickstart.exe *)

module V = Disco_value.Value
module Source = Disco_source.Source
module Schedule = Disco_source.Schedule
module Clock = Disco_source.Clock
module Database = Disco_relation.Database
module Datagen = Disco_source.Datagen
module Mediator = Disco_core.Mediator

let section title = Fmt.pr "@.== %s ==@." title

let person_source ~id ~host rows =
  let db = Database.create ~name:"db" in
  ignore
    (Datagen.table_of db
       ~name:(Fmt.str "person%d" id)
       Datagen.person_schema rows);
  Source.create ~id:(Fmt.str "src%d" id)
    ~address:(Source.address ~host ~db_name:"db" ~ip:"123.45.6.7" ())
    ~latency:{ Source.base_ms = 8.0; per_row_ms = 0.02; jitter = 0.0 }
    (Source.Relational db)

let () =
  let m = Mediator.create ~name:"quickstart" () in

  (* The two sites of the paper: Mary/200 at rodin, Sam/50 at umiacs. *)
  Mediator.register_source m ~name:"r0"
    (person_source ~id:0 ~host:"rodin"
       [ [| V.Int 1; V.String "Mary"; V.Int 200 |] ]);
  Mediator.register_source m ~name:"r1"
    (person_source ~id:1 ~host:"umiacs"
       [ [| V.Int 2; V.String "Sam"; V.Int 50 |] ]);

  (* The DBA's view of the world, in ODL with the DISCO extensions. *)
  Mediator.load_odl m
    {|
    r0 := Repository(host="rodin", name="db", address="123.45.6.7");
    r1 := Repository(host="umiacs", name="db", address="123.45.6.8");
    w0 := WrapperPostgres();
    interface Person (extent person) {
      attribute String name;
      attribute Short salary; }
    extent person0 of Person wrapper w0 repository r0;
    extent person1 of Person wrapper w0 repository r1;
  |};

  let q = "select x.name from x in person where x.salary > 10" in

  section "Both sources available";
  Fmt.pr "query: %s@." q;
  Fmt.pr "plan:  %s@." (Mediator.explain m q);
  (match (Mediator.query m q).Mediator.answer with
  | Mediator.Complete v -> Fmt.pr "answer: %a@." V.pp v
  | _ -> assert false);

  section "r0 goes down: the answer is another query";
  (match Mediator.find_source m "r0" with
  | Some src -> Source.set_schedule src (Schedule.down_during [ (0.0, 2000.0) ])
  | None -> assert false);
  let outcome =
    Mediator.query
      ~opts:{ Mediator.Query_opts.default with timeout_ms = 200.0 }
      m q
  in
  let partial = outcome.Mediator.answer in
  (match partial with
  | Mediator.Partial { unavailable; _ } ->
      Fmt.pr "unavailable: %s@." (String.concat ", " unavailable);
      Fmt.pr "partial answer (a query!):@.  %s@." (Mediator.answer_oql partial)
  | _ -> assert false);

  section "r0 recovers: resubmit the partial answer";
  Clock.advance (Mediator.clock m) 3000.0;
  (match (Mediator.resubmit m partial).Mediator.answer with
  | Mediator.Complete v -> Fmt.pr "resubmitted answer: %a@." V.pp v
  | _ -> assert false);

  section "Scaling: add a third source, the query is unchanged";
  Mediator.register_source m ~name:"r2"
    (person_source ~id:2 ~host:"lip6"
       [ [| V.Int 3; V.String "Zoe"; V.Int 75 |] ]);
  Mediator.load_odl m
    {|
    r2 := Repository(host="lip6", name="db", address="123.45.6.9");
    extent person2 of Person wrapper w0 repository r2;
  |};
  match (Mediator.query m q).Mediator.answer with
  | Mediator.Complete v -> Fmt.pr "same query, three sources: %a@." V.pp v
  | _ -> assert false
