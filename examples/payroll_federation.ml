(* Reconciling similar and dissimilar structures (paper Sections 2.2-2.3).

   Three payroll systems with three shapes:
   - HR France stores (id, name, salary)      -> matches Person directly
   - HR legacy stores (id, n, s)               -> same shape, French field
                                                  names: a *type map* fixes it
   - Consulting stores (id, name, regular,
     consult)                                  -> dissimilar: a *view*
                                                  reconciles regular+consult

   The example builds the federation, then runs the paper's [double],
   [multiple] and [personnew] views.

   Run with: dune exec examples/payroll_federation.exe *)

module V = Disco_value.Value
module Source = Disco_source.Source
module Schema = Disco_relation.Schema
module Database = Disco_relation.Database
module Datagen = Disco_source.Datagen
module Mediator = Disco_core.Mediator

let relational ~id ~host db =
  Source.create ~id ~address:(Source.address ~host ~db_name:"payroll" ~ip:"10.1.0.1" ())
    (Source.Relational db)

let () =
  let m = Mediator.create ~name:"payroll" () in

  (* Source 1: conforming schema. *)
  let db0 = Database.create ~name:"hr_fr" in
  ignore
    (Datagen.table_of db0 ~name:"person0" Datagen.person_schema
       [
         [| V.Int 1; V.String "Mary"; V.Int 200 |];
         [| V.Int 2; V.String "Jules"; V.Int 120 |];
       ]);
  Mediator.register_source m ~name:"r0" (relational ~id:"hr_fr" ~host:"paris" db0);

  (* Source 2: same structure, different names (needs a map). *)
  let db1 = Database.create ~name:"hr_legacy" in
  let legacy_schema =
    Schema.make [ ("id", Schema.TInt); ("nom", Schema.TString); ("paie", Schema.TInt) ]
  in
  ignore
    (Datagen.table_of db1 ~name:"personnel" legacy_schema
       [
         [| V.Int 1; V.String "Mary"; V.Int 40 |];
         [| V.Int 3; V.String "Sam"; V.Int 50 |];
       ]);
  Mediator.register_source m ~name:"r1" (relational ~id:"hr_legacy" ~host:"lyon" db1);

  (* Source 3: dissimilar structure (split pay). *)
  let db2 = Database.create ~name:"consulting" in
  ignore
    (Datagen.table_of db2 ~name:"persontwo0" Datagen.person_two_schema
       [
         [| V.Int 4; V.String "Pat"; V.Int 30; V.Int 12 |];
         [| V.Int 5; V.String "Nadia"; V.Int 80; V.Int 5 |];
       ]);
  Mediator.register_source m ~name:"r5" (relational ~id:"consulting" ~host:"nice" db2);

  Mediator.load_odl m
    {|
    r0 := Repository(host="paris", name="payroll", address="10.1.0.1");
    r1 := Repository(host="lyon",  name="payroll", address="10.1.0.2");
    r5 := Repository(host="nice",  name="payroll", address="10.1.0.3");
    w0 := WrapperPostgres();

    interface Person (extent person) {
      attribute Short id;
      attribute String name;
      attribute Short salary; }

    extent person0 of Person wrapper w0 repository r0;

    // Section 2.2.2: the legacy relation "personnel" with French field
    // names maps onto Person. (source=mediator) pairs:
    extent person1 of Person wrapper w0 repository r1
      map ((personnel=person1),(nom=name),(paie=salary));

    interface PersonTwo {
      attribute Short id;
      attribute String name;
      attribute Short regular;
      attribute Short consult; }
    extent persontwo0 of PersonTwo wrapper w0 repository r5;

    // Section 2.2.3: reconciliation views.
    define double as
      select struct(name: x.name, salary: x.salary + y.salary)
      from x in person0 and y in person1
      where x.id = y.id;

    define multiple as
      select struct(name: x.name,
                    salary: sum(select z.salary from z in person
                                where x.id = z.id))
      from x in person*;

    // Section 2.3: dissimilar structures under one view.
    define personnew as
      union(select struct(name: x.name, salary: x.salary) from x in person,
            select struct(name: x.name, salary: x.regular + x.consult)
            from x in persontwo0);
  |};

  let show title q =
    Fmt.pr "@.-- %s@.   %s@." title q;
    match (Mediator.query m q).Mediator.answer with
    | Mediator.Complete v -> Fmt.pr "   %a@." V.pp v
    | Mediator.Partial _ as partial ->
        Fmt.pr "   partial: %s@." (Mediator.answer_oql partial)
    | Mediator.Unavailable rs -> Fmt.pr "   unavailable: %s@." (String.concat "," rs)
  in

  show "the mapped legacy source answers mediator-named queries"
    "select x.name from x in person1 where x.salary >= 40";
  show "implicit extent spans conforming + mapped sources"
    "select x.name from x in person where x.salary > 100";
  show "double: per-person salary reconciliation across two sources"
    "double";
  show "multiple: aggregate over an arbitrary number of sources"
    "select r from r in multiple where r.salary > 150";
  show "personnew: dissimilar structures unified by a view"
    "select p.name from p in personnew where p.salary > 40";
  show "views compose with ad-hoc queries"
    "avg(select p.salary from p in personnew)"
