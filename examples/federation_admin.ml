(* The DBA's tour: everything Section 2 gives the administrator, plus the
   implemented extensions — catalogs, replication failover,
   value-transform maps, schema evolution with plan-cache invalidation,
   and view validation.

   Run with: dune exec examples/federation_admin.exe *)

module V = Disco_value.Value
module Source = Disco_source.Source
module Schedule = Disco_source.Schedule
module Database = Disco_relation.Database
module Datagen = Disco_source.Datagen
module Catalog = Disco_catalog.Catalog
module Mediator = Disco_core.Mediator
module Registry = Disco_odl.Registry

let section title = Fmt.pr "@.== %s ==@." title

let person_source ~name ~rows =
  let db = Database.create ~name:"db" in
  ignore (Datagen.table_of db ~name Datagen.person_schema rows);
  Source.create ~id:name
    ~address:(Source.address ~host:name ~db_name:"db" ~ip:"10.3.0.1" ())
    ~latency:{ Source.base_ms = 6.0; per_row_ms = 0.01; jitter = 0.0 }
    (Source.Relational db)

let () =
  let m = Mediator.create ~name:"hr" () in
  let row id name salary = [| V.Int id; V.String name; V.Int salary |] in

  section "Integrate two sites, one of them weekly-paid (value transform)";
  Mediator.register_source m ~name:"r0"
    (person_source ~name:"person0" ~rows:[ row 1 "Mary" 10400; row 2 "Jules" 6240 ]);
  (* the lyon site stores WEEKLY pay under French column names *)
  let lyon = Database.create ~name:"db" in
  let schema =
    Disco_relation.Schema.make
      [ ("id", Disco_relation.Schema.TInt);
        ("nom", Disco_relation.Schema.TString);
        ("paie", Disco_relation.Schema.TInt) ]
  in
  ignore
    (Datagen.table_of lyon ~name:"personnel" schema
       [ [| V.Int 3; V.String "Sam"; V.Int 100 |] ]);
  Mediator.register_source m ~name:"r1"
    (Source.create ~id:"lyon"
       ~address:(Source.address ~host:"lyon" ~db_name:"db" ~ip:"10.3.0.2" ())
       (Source.Relational lyon));
  Mediator.load_odl m
    {|
    r0 := Repository(host="paris", name="db", address="10.3.0.1");
    r1 := Repository(host="lyon",  name="db", address="10.3.0.2");
    w0 := WrapperPostgres();
    interface Person (extent person) {
      attribute Short id;
      attribute String name;
      attribute Short salary; }
    extent person0 of Person wrapper w0 repository r0;
    extent person1 of Person wrapper w0 repository r1
      map ((personnel=person1),(nom=name),(paie*52=salary));
  |};
  let q = "select struct(who: x.name, yearly: x.salary) from x in person where x.salary > 5000" in
  (match (Mediator.query m q).Mediator.answer with
  | Mediator.Complete v -> Fmt.pr "yearly salaries across sites: %a@." V.pp v
  | _ -> assert false);

  section "Replication: a mirror keeps person0 answerable";
  Mediator.register_source m ~name:"r9"
    (person_source ~name:"person0" ~rows:[ row 1 "Mary" 10400; row 2 "Jules" 6240 ]);
  Mediator.load_odl m
    {|r9 := Repository(host="mirror", name="db", address="10.3.0.9");
      drop extent person0;
      extent person0 of Person wrapper w0 repository r0 replica r9;|};
  (match Mediator.find_source m "r0" with
  | Some src -> Source.set_schedule src Schedule.always_down
  | None -> ());
  (match (Mediator.query m q).Mediator.answer with
  | Mediator.Complete v ->
      Fmt.pr "primary down, replica answered: %d rows@." (V.cardinal v)
  | _ -> Fmt.pr "unexpected partial@.");

  section "Schema evolution invalidates cached plans";
  let o1 = Mediator.query m q in
  Fmt.pr "repeat query served from plan cache: %b@." o1.Mediator.from_cache;
  Mediator.register_source m ~name:"r2"
    (person_source ~name:"person2" ~rows:[ row 4 "Zoe" 9000 ]);
  Mediator.load_odl m
    {|r2 := Repository(host="nice", name="db", address="10.3.0.3");
      extent person2 of Person wrapper w0 repository r2;|};
  let o2 = Mediator.query m q in
  Fmt.pr "after adding a source the plan is rebuilt: cached=%b, rows=%d@."
    o2.Mediator.from_cache
    (match o2.Mediator.answer with Mediator.Complete v -> V.cardinal v | _ -> -1);

  section "View validation after evolution";
  Mediator.load_odl m
    {|define names as select p.name from p in person;
      define broken as select p.bonus from p in person;|};
  List.iter
    (fun (view, err) -> Fmt.pr "view %s is invalid: %s@." view err)
    (Mediator.validate_views m);

  section "Catalogs give the system overview (Figure 1's C)";
  let c0 = Catalog.create ~name:"c0" in
  Mediator.register_in_catalog m c0;
  let c1 = Catalog.create ~name:"c1" in
  Catalog.add_peer c1 c0;
  Fmt.pr "%a@." Catalog.pp c1;
  (match Catalog.lookup c1 Catalog.Repository "r9" with
  | Some e ->
      Fmt.pr "peer lookup of r9: registered by %s (host %s)@." e.Catalog.e_owner
        (List.assoc "host" e.Catalog.e_info)
  | None -> assert false);

  section "The schema, queried through OQL meta-collections";
  match
    (Mediator.query m "select r.host from r in repositories order by r.host")
      .Mediator.answer
  with
  | Mediator.Complete v -> Fmt.pr "repository hosts: %a@." V.pp v
  | _ -> assert false
