module Ast = Disco_oql.Ast
module Registry = Disco_odl.Registry
module V = Disco_value.Value

exception Expand_error of string

let expand_error fmt = Format.kasprintf (fun s -> raise (Expand_error s)) fmt

module S = Set.Make (String)

(* Generic scope-aware rewriting of free names. [f name] returns the
   replacement for a free occurrence, or None to leave it. *)
let rec rewrite_free bound f q =
  match q with
  | Ast.Const _ -> q
  | Ast.Ident name ->
      if S.mem name bound then q
      else Option.value (f (`Ident name)) ~default:q
  | Ast.Extent_star name ->
      Option.value (f (`Star name)) ~default:q
  | Ast.Path (base, field) -> Ast.Path (rewrite_free bound f base, field)
  | Ast.Binop (op, a, b) ->
      Ast.Binop (op, rewrite_free bound f a, rewrite_free bound f b)
  | Ast.Unop (op, a) -> Ast.Unop (op, rewrite_free bound f a)
  | Ast.Call (name, args) ->
      Ast.Call (name, List.map (rewrite_free bound f) args)
  | Ast.Struct_expr fields ->
      Ast.Struct_expr (List.map (fun (n, e) -> (n, rewrite_free bound f e)) fields)
  | Ast.Coll_expr (kind, elems) ->
      Ast.Coll_expr (kind, List.map (rewrite_free bound f) elems)
  | Ast.Quant (kind, var, coll, body) ->
      let coll' = rewrite_free bound f coll in
      Ast.Quant (kind, var, coll', rewrite_free (S.add var bound) f body)
  | Ast.Select sel ->
      let bound', from' =
        List.fold_left
          (fun (bound, acc) (var, coll) ->
            let coll' = rewrite_free bound f coll in
            (S.add var bound, (var, coll') :: acc))
          (bound, []) sel.Ast.sel_from
      in
      Ast.Select
        {
          sel with
          Ast.sel_from = List.rev from';
          sel_proj = rewrite_free bound' f sel.Ast.sel_proj;
          sel_where = Option.map (rewrite_free bound' f) sel.Ast.sel_where;
          sel_order =
            List.map
              (fun (k, dir) -> (rewrite_free bound' f k, dir))
              sel.Ast.sel_order;
        }

let substitute_collections lookup q =
  rewrite_free S.empty
    (function `Ident name -> lookup name | `Star _ -> None)
    q

(* Top-down: try [f] on each node whose free names do not include any
   enclosing binding variable; recurse into children otherwise. *)
let map_closed_subqueries f q =
  let module SS = Set.Make (String) in
  let closed bound q =
    List.for_all (fun n -> not (SS.mem n bound)) (Ast.free_collections q)
  in
  let rec go bound q =
    match if closed bound q then f q else None with
    | Some replaced -> replaced
    | None -> descend bound q
  and descend bound q =
    match q with
    | Ast.Const _ | Ast.Ident _ | Ast.Extent_star _ -> q
    | Ast.Path (base, field) -> Ast.Path (go bound base, field)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, go bound a, go bound b)
    | Ast.Unop (op, a) -> Ast.Unop (op, go bound a)
    | Ast.Call (name, args) -> Ast.Call (name, List.map (go bound) args)
    | Ast.Struct_expr fields ->
        Ast.Struct_expr (List.map (fun (n, e) -> (n, go bound e)) fields)
    | Ast.Coll_expr (kind, elems) ->
        Ast.Coll_expr (kind, List.map (go bound) elems)
    | Ast.Quant (kind, var, coll, body) ->
        Ast.Quant (kind, var, go bound coll, go (SS.add var bound) body)
    | Ast.Select sel ->
        let bound', from' =
          List.fold_left
            (fun (bound, acc) (var, coll) ->
              (SS.add var bound, (var, go bound coll) :: acc))
            (bound, []) sel.Ast.sel_from
        in
        Ast.Select
          {
            sel with
            Ast.sel_from = List.rev from';
            sel_proj = go bound' sel.Ast.sel_proj;
            sel_where = Option.map (go bound') sel.Ast.sel_where;
            sel_order =
              List.map (fun (k, d) -> (go bound' k, d)) sel.Ast.sel_order;
          }
  in
  go SS.empty q

(* A partitioned extent contributes its shard children (the parent never
   executes); any other extent contributes itself. *)
let idents_of_extent e =
  match e.Registry.me_partition with
  | Some p ->
      List.mapi
        (fun k _ ->
          Ast.Ident (Disco_shard.Shard.child_name e.Registry.me_name k))
        p.Disco_shard.Shard.p_shards
  | None -> [ Ast.Ident e.Registry.me_name ]

let union_of_idents = function
  | [] -> Ast.Const (V.Bag [])
  | [ single ] -> single
  | many -> Ast.Call ("union", many)

let union_of_extents extents =
  union_of_idents (List.concat_map idents_of_extent extents)

(* The interface whose declared extent (or own name) is [name]. *)
let interface_for_extent_name registry name =
  List.find_opt
    (fun itf_name ->
      match Registry.find_interface registry itf_name with
      | Some { Registry.if_declared_extent = Some e; _ } -> String.equal e name
      | _ -> false)
    (Registry.interface_names registry)

let expand registry q =
  let rec go stack q =
    let replace = function
      | `Star name -> (
          (* person* ranges over the subtype closure (Section 2.2.1). *)
          let interface =
            match interface_for_extent_name registry name with
            | Some itf -> Some itf
            | None ->
                if Registry.find_interface registry name <> None then Some name
                else None
          in
          match interface with
          | Some itf ->
              Some (union_of_extents (Registry.extents_of_star registry itf))
          | None -> expand_error "%s* does not name a type's extent" name)
      | `Ident name -> (
          if String.equal name "metaextent" then
            Some (Ast.Const (Registry.metaextent_bag registry))
          else
            match Registry.find_view registry name with
            | Some body ->
                if List.mem name stack then
                  expand_error "cyclic view definition through %s" name
                else
                  let parsed =
                    try Disco_oql.Parser.parse body
                    with Disco_lex.Lexer.Error (m, _) ->
                      expand_error "view %s does not parse: %s" name m
                  in
                  Some (go (name :: stack) parsed)
            | None -> (
                match interface_for_extent_name registry name with
                | Some itf ->
                    Some (union_of_extents (Registry.extents_of registry itf))
                | None -> (
                    match Registry.find_extent registry name with
                    | Some ({ Registry.me_partition = Some _; _ } as e) ->
                        (* A partitioned extent is purely logical: scan
                           it as the union of its shard children. *)
                        Some (union_of_idents (idents_of_extent e))
                    | Some _ -> None
                    | None ->
                        if String.equal name "repositories" then
                          Some
                            (Ast.Const
                               (Registry.objects_bag
                                  ~constructor_prefix:"Repository" registry))
                        else if String.equal name "wrappers" then
                          Some
                            (Ast.Const
                               (Registry.objects_bag ~constructor_prefix:"Wrapper"
                                  registry))
                        else if Registry.find_interface registry name <> None
                        then Some (Ast.Const (V.String name))
                        else
                          expand_error
                            "unknown name %s: not a view, extent, type extent, \
                             or interface"
                            name)))
    in
    rewrite_free S.empty replace q
  in
  go [] q
