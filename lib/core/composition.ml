module Source = Disco_source.Source
module Wrapper = Disco_wrapper.Wrapper
module Grammar = Disco_wrapper.Grammar
module Decompile = Disco_algebra.Decompile
module V = Disco_value.Value

let as_source ?latency ?schedule mediator =
  let address =
    Source.address
      ~host:(Mediator.name mediator)
      ~db_name:"mediator" ~ip:"mediator://" ()
  in
  (* The store kind is irrelevant: the wrapper routes everything to the
     sub-mediator. An empty flat file stands in. *)
  let source =
    Source.create
      ~id:("mediator:" ^ Mediator.name mediator)
      ~address ?latency ?schedule
      (Source.Flat_file (ref []))
  in
  let execute _source expr =
    match Decompile.decompile_string expr with
    | exception Decompile.Not_decompilable m -> Error (Wrapper.Refused m)
    | oql -> (
        match Mediator.query mediator oql with
        | { Mediator.answer = Mediator.Complete v; _ } ->
            Ok (v, try V.cardinal v with V.Type_error _ -> 1)
        | { Mediator.answer = Mediator.Partial { unavailable; _ }; _ } ->
            Error
              (Wrapper.Native_error
                 (Fmt.str "sub-mediator %s returned a partial answer (%s down)"
                    (Mediator.name mediator)
                    (String.concat ", " unavailable)))
        | { Mediator.answer = Mediator.Unavailable repos; _ } ->
            Error
              (Wrapper.Native_error
                 (Fmt.str "sub-mediator %s: sources unavailable (%s)"
                    (Mediator.name mediator)
                    (String.concat ", " repos)))
        | exception Mediator.Mediator_error m -> Error (Wrapper.Native_error m))
  in
  let wrapper =
    Wrapper.make
      ~name:("WrapperMediator:" ^ Mediator.name mediator)
      ~grammar:Grammar.full_relational ~execute ()
  in
  (source, wrapper)
