(** Maintenance-cost models for experiment E3 (paper Sections 1.2 and 5).

    The paper's scaling argument for DBAs: with DISCO's multi-extent
    types, adding a data source of an existing type is {e one} ODL
    statement and no query changes; with explicit per-source queries the
    query text grows with every source; with a unified-global-schema
    system (Pegasus / UniSQL-M style, Section 5) "the unified schema must
    be substantially modified as new sources are integrated".

    Each model here produces the {e actual artifacts} (ODL statements,
    query text) for integrating [n] identical person sources, so the
    experiment measures real sizes rather than asserted ones. *)

type integration_cost = {
  statements : int;  (** DBA statements issued for the n-th source *)
  query_size : int;  (** AST node count of the standing user query *)
  redefined_entities : int;
      (** schema entities that had to be touched when adding the n-th
          source *)
}

val disco : n:int -> integration_cost
(** DISCO: 1 [extent] statement; the query ([select ... from x in person])
    is unchanged. *)

val explicit_union : n:int -> integration_cost
(** No implicit extents: the user query unions all n extents explicitly
    and is rewritten on every addition. *)

val global_schema : n:int -> integration_cost
(** Unified-schema baseline: integrating source n requires revisiting the
    mapping of every previously integrated source against the unified
    type (conflict re-resolution), modeled as n touched entities, plus
    the import statement. *)

val disco_query : n:int -> string
(** The standing DISCO query text (independent of [n]). *)

val explicit_union_query : n:int -> string
(** The explicit query over n extents. *)

val disco_odl_for_source : int -> string
(** The single ODL statement integrating source [i]. *)
