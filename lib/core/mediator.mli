(** The Disco mediator — the system's primary component (paper Figure 2).

    A mediator bundles the internal database (schema registry with
    interfaces, meta-extents, views, named objects), connections to
    simulated sources and wrappers, the learned cost model, a plan cache,
    and the query manager that drives parse → expand → compile → optimize
    → execute → (partial) answer.

    Typical setup, mirroring Section 2.1:

    {[
      let m = Mediator.create ~name:"m0" () in
      Mediator.register_source m ~name:"r0" source0;   (* simulated site *)
      Mediator.load_odl m {|
        r0 := Repository(host="rodin", name="db", address="123.45.6.7");
        w0 := WrapperPostgres();
        interface Person (extent person) {
          attribute String name;
          attribute Short salary; }
        extent person0 of Person wrapper w0 repository r0;
      |};
      match Mediator.query m "select x.name from x in person where x.salary > 10" with
      | { answer = Complete v; _ } -> ...
      | { answer = Partial _; _ } -> ...
    ]} *)

module V := Disco_value.Value
module Runtime := Disco_runtime.Runtime

exception Mediator_error of string

(** Semantics for queries touching unavailable sources (Section 4
    discusses the first four; Disco's contribution is [Partial_answers],
    and [Cached_fallback] is the answer-cache extension of its staleness
    discussion). *)
type semantics =
  | Partial_answers
      (** the answer is a query: partial evaluation (Disco's choice) *)
  | Wait_all
      (** classic distributed-DB semantics: no answer unless every source
          answers — the query outcome is {!Unavailable} *)
  | Null_sources
      (** "the data source can be considered to have no tuples" *)
  | Skip_sources
      (** "as if the data source objects which reference unavailable
          sources do not exist": implicit type extents range over
          available sources only *)
  | Cached_fallback of { max_stale_ms : float }
      (** partial-answer semantics, but execs to unavailable sources are
          answered from cached fragments no older than [max_stale_ms]
          virtual ms (requires a mediator created with [?cache]); the
          served staleness is reported in [outcome.answer_cache]. Only
          fragments with no eligible cache entry remain residual. *)

(** How the answer cache contributed to one outcome ([outcome.from_cache]
    reports the {e plan} cache; these fields report the {e answer}
    cache — the two are independent). *)
type answer_cache_use = {
  answer_hits : int;
      (** execs answered from cache at a fresh data version *)
  stale_hits : int;
      (** execs to unavailable sources served stale under
          {!Cached_fallback} *)
  stale_ms : float;  (** maximum staleness age served, virtual ms *)
}

type outcome = {
  answer : answer;
  stats : Runtime.stats;
  plan : Disco_physical.Plan.plan option;
      (** the physical plan, when the compiled path ran ([None] for
          hybrid-evaluated queries) *)
  from_cache : bool;  (** the plan came from the plan cache *)
  answer_cache : answer_cache_use;
  fallback : bool;
      (** a wrapper refused its expression at run time and the query was
          replanned without pushdown *)
}

and answer =
  | Complete of V.t
  | Partial of Runtime.partial
      (** the answer-as-query (see {!Disco_runtime.Runtime.partial}):
          the residual query, the repositories that did not answer, and
          the data versions of those that did. Render with
          {!answer_oql}; check staleness with {!stale_hint}. *)
  | Unavailable of string list
      (** [Wait_all] semantics with blocked sources *)

(** Plan-cache counters ({!plan_cache_stats}). *)
type plan_cache_stats = {
  p_hits : int;
  p_misses : int;
  p_size : int;
  p_capacity : int;
  p_evictions : int;
}

type t

(** Everything {!create} accepts, as one record. Build with
    [{ Config.default with ... }]. *)
module Config : sig
  type t = {
    clock : Disco_source.Clock.t option;
        (** [None]: a fresh virtual clock per mediator *)
    sched : Disco_source.Scheduler.t option;
        (** the time-and-execution scheduler every query runs on.
            [None] (the default) wraps the mediator's clock in the
            deterministic virtual scheduler — the historical
            single-threaded simulation, bit-for-bit.  Pass a
            {!Disco_source.Scheduler.wall} scheduler to read real time
            and issue each round's per-source batches in parallel on
            OCaml 5 domains (the serving mode); the clock is then
            unused. *)
    cost : Disco_cost.Cost_model.t option;
        (** [None]: a fresh (empty) learned cost model *)
    params : Disco_physical.Plan.params;
    plan_cache_capacity : int;
        (** bound of the LRU plan cache (default 128 entries) *)
    cache : Disco_cache.Answer_cache.t option;
        (** semantic answer cache: completed execs are recorded in it
            and later execs served from it (see
            {!Disco_cache.Answer_cache}); [None], the mediator never
            caches answers *)
    trace_sink : Disco_obs.Trace.sink option;
        (** called with the finished span tree of every query; [None]
            disables tracing entirely (no builder is ever allocated) *)
    metrics : Disco_obs.Metrics.t;
        (** registry receiving the mediator's counters (defaults to
            {!Disco_obs.Metrics.default}) *)
    batch : bool;
        (** per-source exec batching and shared-scan deduplication
            (default [true]): within an execution round, structurally
            identical execs are answered once, and execs bound for the
            same repository share one wrapper round-trip (one [base_ms],
            one jitter draw).  The optimizer costs plans batch-aware.
            [false] restores the historical one-call-per-exec transport
            bit-for-bit — answers, stats and the virtual clock are
            identical to pre-batching builds. *)
    check : Disco_check.Check.mode;
        (** static verification of plans ({!Disco_check.Check}): [Warn]
            (the default) runs the verifier over every optimizer
            candidate and every executed plan, counting violations into
            [check.violations] / [check.warnings] metrics; [Enforce]
            additionally excludes candidates with error diagnostics from
            the search and raises {!Disco_check.Check.Check_error} if a
            plan about to execute (or every candidate of a query) fails;
            [Off] skips verification. *)
    retry : Disco_runtime.Runtime.Retry.t option;
        (** deadline-aware retry scheduler
            ({!Disco_runtime.Runtime.Retry}): blocked execs are re-polled
            on exponential backoff within the query deadline, slow
            primaries are optionally hedged with a replica, and
            consistently-refusing sources trip a per-federation circuit
            breaker.  [None] (the default) reproduces the one-shot
            behavior bit-for-bit. *)
  }

  val default : t
end

(** Everything {!query} accepts besides the OQL text. Build with
    [{ Query_opts.default with ... }]. *)
module Query_opts : sig
  type t = {
    timeout_ms : float;  (** designated deadline, virtual ms *)
    semantics : semantics;
    type_check : bool;
        (** run-time source-type check — enable it to detect sources
            returning wrongly-typed tuples *)
    static_check : bool;
        (** run the OQL type checker before planning, rejecting
            ill-typed queries with {!Mediator_error} *)
  }

  val default : t
  (** 1000 virtual ms, [Partial_answers], both checks off. *)
end

val create : ?config:Config.t -> name:string -> unit -> t

val name : t -> string

val clock : t -> Disco_source.Clock.t

val scheduler : t -> Disco_source.Scheduler.t
(** The scheduler queries run on — the virtual wrap of {!clock} unless
    [Config.sched] supplied another. *)

val registry : t -> Disco_odl.Registry.t
val cost_model : t -> Disco_cost.Cost_model.t

val metrics : t -> Disco_obs.Metrics.t
(** The registry this mediator reports into. *)

val retry_policy : t -> Disco_runtime.Runtime.Retry.t option
(** The retry policy this mediator was created with, if any. *)

val breaker_snapshot : t -> (string * int * float option) list
(** Current circuit-breaker state, one row per source the breaker has
    seen: [(source id, consecutive failures, opened-at virtual time)].
    Empty until a retry policy with [breaker_threshold] records its
    first failure. *)

val answer_cache : t -> Disco_cache.Answer_cache.t option
val answer_cache_stats : t -> Disco_cache.Answer_cache.stats option

val register_source : t -> name:string -> Disco_source.Source.t -> unit
(** Attach a simulated source under a repository object name. Define the
    matching [name := Repository(...)] object in ODL (in either order —
    the binding is looked up at query time). *)

val register_wrapper : t -> name:string -> Disco_wrapper.Wrapper.t -> unit
(** Provide a custom wrapper object directly, bypassing the constructor
    table. *)

val find_source : t -> string -> Disco_source.Source.t option

val declare_index :
  t ->
  repo:string ->
  table:string ->
  column:string ->
  kind:[ `Hash | `Sorted ] ->
  unit
(** Declare a source-side secondary index: builds the access path on the
    source's table ({!Disco_relation.Table.declare_index}) and tells the
    cost model that lookups on [column] at [repo] are index-served
    ({!Disco_cost.Cost_model.declare_index}), so the optimizer treats
    such submits as informed even before any call history exists. Also
    drops cached plans, whose estimates may have changed shape. Raises
    {!Mediator_error} if the source is missing or not relational, the
    table or column is absent, or the kind does not support the column
    type ([`Sorted] requires a numeric column). Without any declaration,
    answers, stats and the virtual clock are bit-for-bit unchanged. *)

val load_odl : t -> string -> unit
(** Parse and apply ODL text: interfaces, extents, views, and object
    definitions. [w := WrapperX();] resolves through
    {!Disco_wrapper.Wrapper.of_constructor} unless [w] was registered
    explicitly. Raises {!Mediator_error} (wrapping parse and registry
    errors) on failure. *)

val query : ?opts:Query_opts.t -> t -> string -> outcome
(** Run an OQL query ([opts] defaults to {!Query_opts.default}). Raises
    {!Mediator_error} on parse/expansion errors. When the mediator was
    created with a [trace_sink], the sink receives the query's span tree
    — phases parse → expand → compile → optimize → execute with one exec
    leaf per issued exec — after the outcome is computed. *)

val answer_oql : answer -> string
(** The OQL text of an answer: a collection literal for {!Complete}, the
    residual query for {!Partial} (delegates to
    {!Disco_runtime.Runtime.answer_oql} — the single renderer). Raises
    {!Mediator_error} for {!Unavailable}, which carries no answer. *)

val stale_hint : t -> answer -> string list
(** For a partial answer: the repositories that answered but whose data
    has already changed since — resubmitting would yield fresher data
    (Section 4's staleness check). Empty otherwise. *)

val typecheck : t -> string -> (Disco_odl.Otype.t, string) result
(** Statically type a query against the mediator schema without running
    it. *)

val validate_views : t -> (string * string) list
(** Type-check every view definition against the current schema;
    returns [(view, error)] pairs for the ones that no longer parse or
    type — the DBA's consistency check after schema evolution. *)

val resubmit : ?opts:Query_opts.t -> t -> answer -> outcome
(** Resubmit a (partial) answer as a new query (Section 4: "this partial
    answer could be submitted as a new query"). A [Complete] answer
    returns itself. *)

val resubmission_runner :
  ?opts:Query_opts.t -> t -> string -> Disco_cache.Resubmission.run_result
(** The [run] callback for {!Disco_cache.Resubmission.drain}: replays a
    residual OQL query through this mediator and classifies the result
    (counted as [resubmission.replays] / [resubmission.converged] in the
    metrics registry). With an answer cache attached, recovered data is
    folded into the cache as it arrives. *)

val record_partial : Disco_cache.Resubmission.t -> outcome -> int option
(** Enqueue an outcome's partial answer on a resubmission queue; [None]
    for complete answers ([Unavailable] outcomes carry no residual to
    replay either). *)

val explain : t -> string -> string
(** The chosen physical plan (or the hybrid-evaluation notice) for a
    query, without executing it. *)

val register_in_catalog : t -> Disco_catalog.Catalog.t -> unit
(** Advertise this mediator, its repositories and wrappers. *)

val source_stats : t -> (string * Disco_source.Source.stats) list
(** Cumulative per-repository call statistics (answered/refused calls,
    rows shipped, busy time), sorted by repository name. *)

val plan_cache_size : t -> int

val plan_cache_stats : t -> plan_cache_stats
(** Hit/miss/eviction counters of the LRU-bounded plan cache. *)

val clear_plan_cache : t -> unit
(** Drop every cached plan {e and} reset the hit/miss counters. *)

val clear_answer_cache : t -> unit
(** Drop every cached answer and reset its counters; a no-op on a
    mediator without an answer cache. *)
