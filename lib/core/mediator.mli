(** The Disco mediator — the system's primary component (paper Figure 2).

    A mediator bundles the internal database (schema registry with
    interfaces, meta-extents, views, named objects), connections to
    simulated sources and wrappers, the learned cost model, a plan cache,
    and the query manager that drives parse → expand → compile → optimize
    → execute → (partial) answer.

    Typical setup, mirroring Section 2.1:

    {[
      let m = Mediator.create ~name:"m0" () in
      Mediator.register_source m ~name:"r0" source0;   (* simulated site *)
      Mediator.load_odl m {|
        r0 := Repository(host="rodin", name="db", address="123.45.6.7");
        w0 := WrapperPostgres();
        interface Person (extent person) {
          attribute String name;
          attribute Short salary; }
        extent person0 of Person wrapper w0 repository r0;
      |};
      match Mediator.query m "select x.name from x in person where x.salary > 10" with
      | { answer = Complete v; _ } -> ...
      | { answer = Partial _; _ } -> ...
    ]} *)

module V := Disco_value.Value
module Runtime := Disco_runtime.Runtime

exception Mediator_error of string

(** Semantics for queries touching unavailable sources (Section 4
    discusses the first four; Disco's contribution is [Partial_answers],
    and [Cached_fallback] is the answer-cache extension of its staleness
    discussion). *)
type semantics =
  | Partial_answers
      (** the answer is a query: partial evaluation (Disco's choice) *)
  | Wait_all
      (** classic distributed-DB semantics: no answer unless every source
          answers — the query outcome is {!Unavailable} *)
  | Null_sources
      (** "the data source can be considered to have no tuples" *)
  | Skip_sources
      (** "as if the data source objects which reference unavailable
          sources do not exist": implicit type extents range over
          available sources only *)
  | Cached_fallback of { max_stale_ms : float }
      (** partial-answer semantics, but execs to unavailable sources are
          answered from cached fragments no older than [max_stale_ms]
          virtual ms (requires a mediator created with [?cache]); the
          served staleness is reported in [outcome.answer_cache]. Only
          fragments with no eligible cache entry remain residual. *)

(** How the answer cache contributed to one outcome ([outcome.from_cache]
    reports the {e plan} cache; these fields report the {e answer}
    cache — the two are independent). *)
type answer_cache_use = {
  answer_hits : int;
      (** execs answered from cache at a fresh data version *)
  stale_hits : int;
      (** execs to unavailable sources served stale under
          {!Cached_fallback} *)
  stale_ms : float;  (** maximum staleness age served, virtual ms *)
}

type outcome = {
  answer : answer;
  stats : Runtime.stats;
  plan : Disco_physical.Plan.plan option;
      (** the physical plan, when the compiled path ran ([None] for
          hybrid-evaluated queries) *)
  from_cache : bool;  (** the plan came from the plan cache *)
  answer_cache : answer_cache_use;
  fallback : bool;
      (** a wrapper refused its expression at run time and the query was
          replanned without pushdown *)
}

and answer =
  | Complete of V.t
  | Partial of {
      oql : string;  (** the answer-as-query, resubmittable *)
      unavailable : string list;  (** repository names *)
      stale_hint : string list;
          (** sources whose data already changed since they answered *)
    }
  | Unavailable of string list
      (** [Wait_all] semantics with blocked sources *)

(** Plan-cache counters ({!plan_cache_stats}). *)
type plan_cache_stats = {
  p_hits : int;
  p_misses : int;
  p_size : int;
  p_capacity : int;
  p_evictions : int;
}

type t

val create :
  ?clock:Disco_source.Clock.t ->
  ?cost:Disco_cost.Cost_model.t ->
  ?params:Disco_physical.Plan.params ->
  ?plan_cache_capacity:int ->
  ?cache:Disco_cache.Answer_cache.t ->
  name:string ->
  unit ->
  t
(** [plan_cache_capacity] bounds the LRU plan cache (default 128
    entries). [cache] attaches a semantic answer cache: completed execs
    are recorded in it and later execs served from it (see
    {!Disco_cache.Answer_cache}); omitted, the mediator never caches
    answers and behaves exactly as before. *)

val name : t -> string
val clock : t -> Disco_source.Clock.t
val registry : t -> Disco_odl.Registry.t
val cost_model : t -> Disco_cost.Cost_model.t

val answer_cache : t -> Disco_cache.Answer_cache.t option
val answer_cache_stats : t -> Disco_cache.Answer_cache.stats option

val register_source : t -> name:string -> Disco_source.Source.t -> unit
(** Attach a simulated source under a repository object name. Define the
    matching [name := Repository(...)] object in ODL (in either order —
    the binding is looked up at query time). *)

val register_wrapper : t -> name:string -> Disco_wrapper.Wrapper.t -> unit
(** Provide a custom wrapper object directly, bypassing the constructor
    table. *)

val find_source : t -> string -> Disco_source.Source.t option

val load_odl : t -> string -> unit
(** Parse and apply ODL text: interfaces, extents, views, and object
    definitions. [w := WrapperX();] resolves through
    {!Disco_wrapper.Wrapper.of_constructor} unless [w] was registered
    explicitly. Raises {!Mediator_error} (wrapping parse and registry
    errors) on failure. *)

val query :
  ?timeout_ms:float ->
  ?semantics:semantics ->
  ?type_check:bool ->
  ?static_check:bool ->
  t ->
  string ->
  outcome
(** Run an OQL query. [timeout_ms] is the designated deadline in virtual
    ms (default 1000). [type_check] enables the run-time source-type check
    (default false — enable it to detect sources returning wrongly-typed
    tuples). [static_check] runs the OQL type checker before planning
    (default false), rejecting ill-typed queries with {!Mediator_error}.
    Raises {!Mediator_error} on parse/expansion errors. *)

val typecheck : t -> string -> (Disco_odl.Otype.t, string) result
(** Statically type a query against the mediator schema without running
    it. *)

val validate_views : t -> (string * string) list
(** Type-check every view definition against the current schema;
    returns [(view, error)] pairs for the ones that no longer parse or
    type — the DBA's consistency check after schema evolution. *)

val resubmit : ?timeout_ms:float -> ?semantics:semantics -> t -> answer -> outcome
(** Resubmit a (partial) answer as a new query (Section 4: "this partial
    answer could be submitted as a new query"). A [Complete] answer
    returns itself. *)

val resubmission_runner :
  ?timeout_ms:float ->
  ?semantics:semantics ->
  t ->
  string ->
  Disco_cache.Resubmission.run_result
(** The [run] callback for {!Disco_cache.Resubmission.drain}: replays a
    residual OQL query through this mediator and classifies the result.
    With an answer cache attached, recovered data is folded into the
    cache as it arrives. *)

val record_partial : Disco_cache.Resubmission.t -> outcome -> int option
(** Enqueue an outcome's partial answer on a resubmission queue; [None]
    for complete answers ([Unavailable] outcomes carry no residual to
    replay either). *)

val explain : t -> string -> string
(** The chosen physical plan (or the hybrid-evaluation notice) for a
    query, without executing it. *)

val register_in_catalog : t -> Disco_catalog.Catalog.t -> unit
(** Advertise this mediator, its repositories and wrappers. *)

val source_stats : t -> (string * Disco_source.Source.stats) list
(** Cumulative per-repository call statistics (answered/refused calls,
    rows shipped, busy time), sorted by repository name. *)

val plan_cache_size : t -> int

val plan_cache_stats : t -> plan_cache_stats
(** Hit/miss/eviction counters of the LRU-bounded plan cache. *)

val clear_plan_cache : t -> unit
(** Drop every cached plan {e and} reset the hit/miss counters. *)

val clear_answer_cache : t -> unit
(** Drop every cached answer and reset its counters; a no-op on a
    mediator without an answer cache. *)
