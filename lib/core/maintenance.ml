module Ast = Disco_oql.Ast
module Parser = Disco_oql.Parser

type integration_cost = {
  statements : int;
  query_size : int;
  redefined_entities : int;
}

let rec ast_size = function
  | Ast.Const _ | Ast.Ident _ | Ast.Extent_star _ -> 1
  | Ast.Path (b, _) -> 1 + ast_size b
  | Ast.Binop (_, a, b) -> 1 + ast_size a + ast_size b
  | Ast.Unop (_, a) -> 1 + ast_size a
  | Ast.Call (_, args) -> List.fold_left (fun acc a -> acc + ast_size a) 1 args
  | Ast.Struct_expr fields ->
      List.fold_left (fun acc (_, e) -> acc + ast_size e) 1 fields
  | Ast.Coll_expr (_, elems) ->
      List.fold_left (fun acc e -> acc + ast_size e) 1 elems
  | Ast.Quant (_, _, coll, body) -> 1 + ast_size coll + ast_size body
  | Ast.Select sel ->
      let base = 1 + ast_size sel.Ast.sel_proj in
      let base =
        List.fold_left (fun acc (_, c) -> acc + 1 + ast_size c) base sel.Ast.sel_from
      in
      Option.fold ~none:base ~some:(fun w -> base + ast_size w) sel.Ast.sel_where

let disco_query _ = "select x.name from x in person where x.salary > 10"

let explicit_union_query ~n =
  let extents = List.init n (fun i -> Fmt.str "person%d" i) in
  let union =
    match extents with
    | [ single ] -> single
    | many -> Fmt.str "union(%s)" (String.concat ", " many)
  in
  Fmt.str "select x.name from x in %s where x.salary > 10" union

let disco_odl_for_source i =
  Fmt.str "extent person%d of Person wrapper w0 repository r%d;" i i

let query_size text = ast_size (Parser.parse text)

let disco ~n =
  {
    statements = 1;
    query_size = query_size (disco_query n);
    redefined_entities = 0;
  }

let explicit_union ~n =
  {
    (* the extent statement plus the rewrite of the standing query *)
    statements = 2;
    query_size = query_size (explicit_union_query ~n);
    redefined_entities = 1;
  }

let global_schema ~n =
  {
    statements = 1;
    query_size = query_size (disco_query n);
    (* re-resolve the unified type against every prior source *)
    redefined_entities = n;
  }

let disco_query ~n = disco_query n
let explicit_union_query ~n = explicit_union_query ~n
