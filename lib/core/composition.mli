(** Mediator composition (paper Figure 1: "permits mediators to be
    combined").

    A mediator becomes a data source of another mediator: {!as_source}
    produces a {!Disco_source.Source.t} carrying the sub-mediator's
    network characteristics (latency, availability) and a
    {!Disco_wrapper.Wrapper.t} that decompiles incoming logical
    expressions to OQL and runs them through the sub-mediator's full query
    engine. The sub-mediator thus looks exactly like any other wrapped
    source; its extents are declared in the parent with ordinary [extent]
    statements (one per sub-mediator extent or view to re-export).

    If the sub-mediator itself returns a partial answer, the call fails
    as a source error and the parent classifies it like any refused call;
    propagating partial answers across mediator levels is future work in
    the paper too. *)

val as_source :
  ?latency:Disco_source.Source.latency ->
  ?schedule:Disco_source.Schedule.t ->
  Mediator.t ->
  Disco_source.Source.t * Disco_wrapper.Wrapper.t
(** [as_source m] is a (source, wrapper) pair for registering [m] in a
    parent: [register_source parent ~name:"rm" src] plus
    [register_wrapper parent ~name:"wm" w]. The source's address is
    derived from the mediator's name. The returned wrapper advertises
    full relational capability. *)
