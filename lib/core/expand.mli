(** Query expansion against the mediator schema.

    Before optimization, a mediator rewrites the parsed OQL so that every
    remaining free collection name is a concrete data-source extent:

    - {b views} ([define ... as], Section 2.2.3) are replaced by their
      (recursively expanded) bodies; cyclic views are an error ("a view
      can reference other views, as long as the references are not
      cyclic");
    - {b implicit type extents} (Section 2.1): the declared extent of an
      interface ([person] for [Person]) becomes the union of the
      interface's data-source extents — operationally the paper's
      [flatten(select x.e from x in metaextent where x.interface =
      Person)];
    - {b subtype extents} (Section 2.2.1): [person*] becomes the union
      over the subtype closure;
    - {b meta-data}: the name [metaextent] resolves to the current
      {!Disco_odl.Registry.metaextent_bag} as a constant;
    - {b interface names} used as values ([x.interface = Person]) become
      string constants.

    Bound variables shadow all of the above. *)

module Ast := Disco_oql.Ast
module Registry := Disco_odl.Registry

exception Expand_error of string
(** Unknown free names, cyclic views. *)

val expand : Registry.t -> Ast.query -> Ast.query
(** Raises {!Expand_error} if a free name is neither a view, an implicit
    extent, a concrete extent, [metaextent], nor an interface name. *)

val substitute_collections : (string -> Ast.query option) -> Ast.query -> Ast.query
(** Replace free collection names (scope-aware); used by the hybrid
    evaluator to plug materialized data into the original query when
    constructing general partial answers. *)

val map_closed_subqueries : (Ast.query -> Ast.query option) -> Ast.query -> Ast.query
(** Apply [f] to every {e closed} subquery — one that references no
    enclosing binding variables — working top-down and leaving a subtree
    alone once [f] rewrites it. The hybrid evaluator uses this to push
    the maximal algebra-compilable fragments of a non-algebraic query
    through the optimized engine. *)
