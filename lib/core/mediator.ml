module V = Disco_value.Value
module Registry = Disco_odl.Registry
module Odl = Disco_odl.Odl_parser
module Typemap = Disco_odl.Typemap
module Ast = Disco_oql.Ast
module Oql_parser = Disco_oql.Parser
module Eval = Disco_oql.Eval
module Expr = Disco_algebra.Expr
module Compile = Disco_algebra.Compile
module Rules = Disco_algebra.Rules
module Plan = Disco_physical.Plan
module Optimizer = Disco_optimizer.Optimizer
module Cost_model = Disco_cost.Cost_model
module Runtime = Disco_runtime.Runtime
module Source = Disco_source.Source
module Clock = Disco_source.Clock
module Wrapper = Disco_wrapper.Wrapper
module Catalog = Disco_catalog.Catalog
module Lru = Disco_cache.Lru
module Answer_cache = Disco_cache.Answer_cache
module Resubmission = Disco_cache.Resubmission

let log_src = Logs.Src.create "disco.mediator" ~doc:"Disco mediator"

module Log = (val Logs.src_log log_src)

exception Mediator_error of string

let mediator_error fmt = Format.kasprintf (fun s -> raise (Mediator_error s)) fmt

type semantics =
  | Partial_answers
  | Wait_all
  | Null_sources
  | Skip_sources
  | Cached_fallback of { max_stale_ms : float }

type answer =
  | Complete of V.t
  | Partial of {
      oql : string;
      unavailable : string list;
      stale_hint : string list;
    }
  | Unavailable of string list

type answer_cache_use = {
  answer_hits : int;
  stale_hits : int;
  stale_ms : float;
}

type outcome = {
  answer : answer;
  stats : Runtime.stats;
  plan : Plan.plan option;
  from_cache : bool;
  answer_cache : answer_cache_use;
  fallback : bool;
}

type plan_cache_stats = {
  p_hits : int;
  p_misses : int;
  p_size : int;
  p_capacity : int;
  p_evictions : int;
}

type cached_plan = { c_plan : Plan.plan; c_version : int }

type t = {
  m_name : string;
  registry : Registry.t;
  clock : Clock.t;
  cost : Cost_model.t;
  params : Plan.params;
  sources : (string, Source.t) Hashtbl.t;
  wrappers : (string, Wrapper.t) Hashtbl.t;
  plan_cache : (string, cached_plan) Lru.t;
  mutable plan_hits : int;
  mutable plan_misses : int;
  cache : Answer_cache.t option;
}

let create ?clock ?cost ?(params = Plan.default_params)
    ?(plan_cache_capacity = 128) ?cache ~name () =
  {
    m_name = name;
    registry = Registry.create ();
    clock = Option.value clock ~default:(Clock.create ());
    cost = Option.value cost ~default:(Cost_model.create ());
    params;
    sources = Hashtbl.create 16;
    wrappers = Hashtbl.create 16;
    plan_cache = Lru.create ~capacity:plan_cache_capacity ();
    plan_hits = 0;
    plan_misses = 0;
    cache;
  }

let name t = t.m_name
let clock t = t.clock
let registry t = t.registry
let cost_model t = t.cost
let answer_cache t = t.cache
let answer_cache_stats t = Option.map Answer_cache.stats t.cache

let register_source t ~name source = Hashtbl.replace t.sources name source
let register_wrapper t ~name wrapper = Hashtbl.replace t.wrappers name wrapper
let find_source t name = Hashtbl.find_opt t.sources name

let load_odl t text =
  match Odl.load t.registry text with
  | () -> ()
  | exception Registry.Odl_error m -> mediator_error "ODL error: %s" m
  | exception Typemap.Map_error m -> mediator_error "map error: %s" m
  | exception Disco_lex.Lexer.Error (m, pos) ->
      mediator_error "ODL parse error at offset %d: %s" pos m

(* -- name resolution -- *)

let source_of t repo =
  match Hashtbl.find_opt t.sources repo with
  | Some s -> Some s
  | None -> None

let wrapper_of t wname =
  match Hashtbl.find_opt t.wrappers wname with
  | Some w -> Some w
  | None -> (
      match Registry.find_object t.registry wname with
      | Some obj -> (
          match Wrapper.of_constructor obj.Registry.obj_constructor with
          | Some w ->
              Hashtbl.replace t.wrappers wname w;
              Some w
          | None -> None)
      | None -> None)

let binding_for t ~type_check extent_name =
  match Registry.find_extent t.registry extent_name with
  | None -> mediator_error "no extent named %s" extent_name
  | Some ext -> (
      match
        (source_of t ext.Registry.me_repository, wrapper_of t ext.Registry.me_wrapper)
      with
      | None, _ ->
          mediator_error "repository %s of extent %s has no attached source"
            ext.Registry.me_repository extent_name
      | _, None ->
          mediator_error "wrapper %s of extent %s cannot be constructed"
            ext.Registry.me_wrapper extent_name
      | Some source, Some wrapper ->
          let replicas =
            List.filter_map
              (fun repo ->
                match source_of t repo with
                | Some src -> Some (repo, src)
                | None ->
                    mediator_error
                      "replica repository %s of extent %s has no attached \
                       source"
                      repo extent_name)
              ext.Registry.me_replicas
          in
          {
            Runtime.b_extent = extent_name;
            b_repo = ext.Registry.me_repository;
            b_source = source;
            b_replicas = replicas;
            b_wrapper = wrapper;
            b_map = ext.Registry.me_map;
            b_check =
              (if type_check then
                 Some
                   (fun v ->
                     Registry.struct_conforms t.registry
                       ext.Registry.me_interface v)
               else None);
          })

(* Cached_fallback is partial-answer semantics with the runtime allowed
   to answer blocked execs from cached fragments within the staleness
   budget. *)
let serve_stale_of = function
  | Cached_fallback { max_stale_ms } -> Some max_stale_ms
  | Partial_answers | Wait_all | Null_sources | Skip_sources -> None

let runtime_env t ~type_check ~semantics extents =
  let bindings = List.map (binding_for t ~type_check) extents in
  Runtime.env ?cache:t.cache
    ?serve_stale_ms:(serve_stale_of semantics)
    ~clock:t.clock ~cost:t.cost bindings

(* Capability check used by the optimizer: every extent mentioned in the
   candidate expression must be served by a wrapper that accepts it, and
   a merged submit requires a single common wrapper. *)
let can_push t ~repo expr =
  ignore repo;
  let extents = Expr.gets expr in
  let wrappers =
    List.filter_map
      (fun extent ->
        Option.bind (Registry.find_extent t.registry extent) (fun ext ->
            wrapper_of t ext.Registry.me_wrapper))
      extents
  in
  List.length wrappers = List.length extents
  && (match wrappers with
     | [] -> false
     | first :: rest ->
         List.for_all (fun w -> String.equal (Wrapper.name w) (Wrapper.name first)) rest)
  && List.for_all (fun w -> Wrapper.accepts w expr) wrappers

let repo_of t extent =
  Option.map
    (fun e -> e.Registry.me_repository)
    (Registry.find_extent t.registry extent)

(* -- answers -- *)

let zero_stats =
  {
    Runtime.execs_issued = 0;
    execs_answered = 0;
    execs_blocked = 0;
    tuples_shipped = 0;
    elapsed_ms = 0.0;
    cache_hits = 0;
    cache_stale_hits = 0;
    cache_stale_ms = 0.0;
  }

let cache_use_of (stats : Runtime.stats) =
  {
    answer_hits = stats.Runtime.cache_hits;
    stale_hits = stats.Runtime.cache_stale_hits;
    stale_ms = stats.Runtime.cache_stale_ms;
  }

let no_cache_use = { answer_hits = 0; stale_hits = 0; stale_ms = 0.0 }

let eval_env ?(resolve = fun _ -> None) t =
  Eval.env ~resolve ~interface_names:(Registry.interface_names t.registry) ()

let to_mediator_answer env = function
  | Runtime.Complete v -> Complete v
  | Runtime.Partial { query; unavailable; _ } as a ->
      Partial
        {
          oql = Ast.to_string query;
          unavailable;
          stale_hint = Runtime.resubmit_hint env a;
        }

(* Apply the chosen unavailable-data semantics to a runtime partial
   answer. *)
let apply_semantics t semantics answer =
  match (semantics, answer) with
  | (Partial_answers | Skip_sources | Cached_fallback _), a -> a
  | Wait_all, Partial { unavailable; _ } -> Unavailable unavailable
  | Null_sources, Partial { oql; _ } -> (
      (* unavailable sources contribute no tuples: replace the residual
         extents with empty bags and finish locally *)
      let residual = Oql_parser.parse oql in
      let emptied =
        Expand.substitute_collections
          (fun name ->
            if Registry.find_extent t.registry name <> None then
              Some (Ast.Const (V.Bag []))
            else None)
          residual
      in
      match Eval.eval (eval_env t) emptied with
      | v -> Complete v
      | exception Eval.Eval_error m ->
          mediator_error "null-semantics evaluation failed: %s" m)
  | (Wait_all | Null_sources), a -> a

(* -- the compiled path -- *)

let compiled_outcome t ~timeout_ms ~type_check ~semantics ~oql located =
  let cache_key = oql in
  let version = Registry.version t.registry in
  let cached =
    match Lru.find t.plan_cache cache_key with
    | Some { c_plan; c_version } when c_version = version -> Some c_plan
    | _ -> None
  in
  let plan, from_cache =
    match cached with
    | Some plan ->
        t.plan_hits <- t.plan_hits + 1;
        (plan, true)
    | None ->
        t.plan_misses <- t.plan_misses + 1;
        let choice =
          Optimizer.optimize ~params:t.params ~can_push:(can_push t)
            ~cost:t.cost located
        in
        Lru.add t.plan_cache cache_key
          { c_plan = choice.Optimizer.plan; c_version = version };
        (choice.Optimizer.plan, false)
  in
  let extents =
    List.sort_uniq String.compare
      (List.concat_map (fun (_, e) -> Expr.gets e) (Plan.all_source_exprs plan))
  in
  let env = runtime_env t ~type_check ~semantics extents in
  let run plan =
    (* execution-layer failures (bad maps, misbehaving wrappers) surface
       as clean mediator errors, never raw engine exceptions *)
    match Runtime.execute ~timeout_ms env plan with
    | answer, stats -> (to_mediator_answer env answer, stats)
    | exception Plan.Physical_error m -> mediator_error "execution failed: %s" m
    | exception Expr.Algebra_error m -> mediator_error "execution failed: %s" m
    | exception V.Type_error m -> mediator_error "execution failed: %s" m
  in
  match run plan with
  | answer, stats ->
      {
        answer = apply_semantics t semantics answer;
        stats;
        plan = Some plan;
        from_cache;
        answer_cache = cache_use_of stats;
        fallback = false;
      }
  | exception Runtime.Runtime_error reason ->
      (* a wrapper refused its expression: replan without pushdown *)
      Log.warn (fun m -> m "capability fallback: %s" reason);
      let conservative =
        Plan.implement (Rules.normalize ~can_push:Rules.push_none located)
      in
      let answer, stats = run conservative in
      {
        answer = apply_semantics t semantics answer;
        stats;
        plan = Some conservative;
        from_cache = false;
        answer_cache = cache_use_of stats;
        fallback = true;
      }

(* -- the hybrid path: full OQL with engine-executed fragments --

   A query outside the algebraic subset (aggregates, correlated
   subqueries, quantifiers, order by) still contains closed fragments
   that ARE algebraic; each maximal such fragment is planned and executed
   through the optimizer/runtime — so capability pushdown keeps working —
   and the rest is evaluated on the mediator. Fragments run as successive
   parallel rounds against the virtual clock. *)

let add_stats a b =
  {
    Runtime.execs_issued = a.Runtime.execs_issued + b.Runtime.execs_issued;
    execs_answered = a.Runtime.execs_answered + b.Runtime.execs_answered;
    execs_blocked = a.Runtime.execs_blocked + b.Runtime.execs_blocked;
    tuples_shipped = a.Runtime.tuples_shipped + b.Runtime.tuples_shipped;
    elapsed_ms = a.Runtime.elapsed_ms +. b.Runtime.elapsed_ms;
    cache_hits = a.Runtime.cache_hits + b.Runtime.cache_hits;
    cache_stale_hits = a.Runtime.cache_stale_hits + b.Runtime.cache_stale_hits;
    cache_stale_ms = Float.max a.Runtime.cache_stale_ms b.Runtime.cache_stale_ms;
  }

let hybrid_outcome t ~timeout_ms ~type_check ~semantics expanded =
  (match
     List.find_opt
       (fun name -> Registry.find_extent t.registry name = None)
       (Ast.free_collections expanded)
   with
  | Some unknown -> mediator_error "unresolved name %s after expansion" unknown
  | None -> ());
  let stats_acc = ref zero_stats in
  let blocked_repos = ref [] in
  let try_fragment sub =
    match sub with
    | Ast.Const _ | Ast.Ident _ -> None
        (* bare extents go through the batched fetch below *)
    | _ -> (
        match Compile.compile sub with
        | Error _ -> None
        | Ok compiled -> (
            let frees = Ast.free_collections sub in
            if
              frees = []
              || not
                   (List.for_all
                      (fun n -> Registry.find_extent t.registry n <> None)
                      frees)
            then None
            else
              let located = Compile.locate ~repo_of:(repo_of t) compiled in
              let choice =
                Optimizer.optimize ~params:t.params ~can_push:(can_push t)
                  ~cost:t.cost located
              in
              let extents =
                List.sort_uniq String.compare
                  (List.concat_map
                     (fun (_, e) -> Expr.gets e)
                     (Plan.all_source_exprs choice.Optimizer.plan))
              in
              let env = runtime_env t ~type_check ~semantics extents in
              match Runtime.execute ~timeout_ms env choice.Optimizer.plan with
              | Runtime.Complete v, st ->
                  stats_acc := add_stats !stats_acc st;
                  Some (Ast.Const v)
              | Runtime.Partial { unavailable; _ }, st ->
                  stats_acc := add_stats !stats_acc st;
                  blocked_repos := unavailable @ !blocked_repos;
                  (* leave the fragment symbolic for the partial answer *)
                  None
              | exception Runtime.Runtime_error _ ->
                  (* capability surprise: fall back to plain fetches *)
                  None))
  in
  let substituted = Expand.map_closed_subqueries try_fragment expanded in
  (* whatever extents remain (bare or in failed fragments) are fetched
     whole, in one parallel round *)
  let extents =
    List.filter
      (fun name -> Registry.find_extent t.registry name <> None)
      (Ast.free_collections substituted)
  in
  let env = runtime_env t ~type_check ~semantics extents in
  let fetched, fetch_stats = Runtime.fetch ~timeout_ms env extents in
  let stats = add_stats !stats_acc fetch_stats in
  let fetch_blocked = List.filter (fun (_, v) -> v = None) fetched in
  if fetch_blocked = [] && !blocked_repos = [] then
    let resolve name =
      match List.assoc_opt name fetched with Some v -> v | None -> None
    in
    match Eval.eval (eval_env ~resolve t) substituted with
    | v ->
        {
          answer = Complete v;
          stats;
          plan = None;
          from_cache = false;
          answer_cache = cache_use_of stats;
          fallback = false;
        }
    | exception Eval.Eval_error m -> mediator_error "evaluation failed: %s" m
  else
    (* general partial answer: plug what did arrive into the query *)
    let residual =
      Expand.substitute_collections
        (fun name ->
          match List.assoc_opt name fetched with
          | Some (Some v) -> Some (Ast.Const v)
          | _ -> None)
        substituted
    in
    let unavailable =
      List.sort_uniq String.compare
        (!blocked_repos
        @ List.filter_map
            (fun (extent, _) ->
              Option.map
                (fun e -> e.Registry.me_repository)
                (Registry.find_extent t.registry extent))
            fetch_blocked)
    in
    let answer =
      Partial { oql = Ast.to_string residual; unavailable; stale_hint = [] }
    in
    {
      answer = apply_semantics t semantics answer;
      stats;
      plan = None;
      from_cache = false;
      answer_cache = cache_use_of stats;
      fallback = false;
    }

(* -- entry points -- *)

let parse_oql oql =
  try Oql_parser.parse oql
  with Disco_lex.Lexer.Error (m, pos) ->
    mediator_error "OQL parse error at offset %d: %s" pos m

let expand t ast =
  try Expand.expand t.registry ast
  with Expand.Expand_error m -> mediator_error "%s" m

(* Skip_sources: drop extents whose source is down right now, before
   planning — "as if the data source objects ... do not exist". An extent
   with replicas is only skipped when every copy is down. *)
let apply_skip t expanded =
  let now = Clock.now t.clock in
  let copy_up repo =
    match source_of t repo with
    | Some source -> Source.is_up source now
    | None -> false
  in
  Expand.substitute_collections
    (fun name ->
      match Registry.find_extent t.registry name with
      | None -> None
      | Some ext ->
          if
            List.exists copy_up
              (ext.Registry.me_repository :: ext.Registry.me_replicas)
          then None
          else Some (Ast.Const (V.Bag [])))
    expanded

let typecheck t oql =
  match parse_oql oql with
  | ast ->
      Disco_oql.Typecheck.check
        (Disco_oql.Typecheck.env_of_registry t.registry)
        ast
  | exception Mediator_error m -> Error m

let validate_views t =
  List.filter_map
    (fun name ->
      match
        Disco_oql.Typecheck.check
          (Disco_oql.Typecheck.env_of_registry t.registry)
          (Ast.Ident name)
      with
      | Ok _ -> None
      | Error m -> Some (name, m))
    (Registry.view_names t.registry)

let query ?(timeout_ms = 1000.0) ?(semantics = Partial_answers)
    ?(type_check = false) ?(static_check = false) t oql =
  Log.info (fun m -> m "[%s] query: %s" t.m_name oql);
  let ast = parse_oql oql in
  (if static_check then
     match
       Disco_oql.Typecheck.check
         (Disco_oql.Typecheck.env_of_registry t.registry)
         ast
     with
     | Ok _ -> ()
     | Error m -> mediator_error "type error: %s" m);
  let expanded = expand t ast in
  let expanded =
    match semantics with
    | Skip_sources -> apply_skip t expanded
    | Partial_answers | Wait_all | Null_sources | Cached_fallback _ -> expanded
  in
  match Compile.compile expanded with
  | Ok compiled ->
      let located = Compile.locate ~repo_of:(repo_of t) compiled in
      compiled_outcome t ~timeout_ms ~type_check ~semantics
        ~oql:(Ast.to_string expanded) located
  | Error _ -> hybrid_outcome t ~timeout_ms ~type_check ~semantics expanded

let resubmit ?timeout_ms ?semantics t answer =
  match answer with
  | Complete v ->
      {
        answer = Complete v;
        stats = zero_stats;
        plan = None;
        from_cache = false;
        answer_cache = no_cache_use;
        fallback = false;
      }
  | Partial { oql; _ } -> query ?timeout_ms ?semantics t oql
  | Unavailable repos ->
      mediator_error "nothing to resubmit: no answer from %s"
        (String.concat ", " repos)

(* Feed the resubmission manager: replay a residual query and classify
   the result. Records fresh data into the answer cache as a side effect
   when the mediator runs with one. *)
let resubmission_runner ?timeout_ms ?semantics t oql =
  match (query ?timeout_ms ?semantics t oql).answer with
  | Complete _ -> Resubmission.Run_complete
  | Partial { oql; unavailable; _ } ->
      Resubmission.Run_partial { oql; unavailable }
  | Unavailable unavailable ->
      Resubmission.Run_partial { oql; unavailable }

let record_partial resubmissions outcome =
  match outcome.answer with
  | Partial { oql; unavailable; _ } ->
      Some (Resubmission.record resubmissions ~oql ~unavailable)
  | Complete _ | Unavailable _ -> None

let explain t oql =
  let ast = parse_oql oql in
  let expanded = expand t ast in
  match Compile.compile expanded with
  | Ok compiled ->
      let located = Compile.locate ~repo_of:(repo_of t) compiled in
      let choice =
        Optimizer.optimize ~params:t.params ~can_push:(can_push t) ~cost:t.cost
          located
      in
      Fmt.str "plan (%d alternatives, est. %.3f ms, %.1f rows shipped):@\n%s"
        choice.Optimizer.alternatives choice.Optimizer.cost.Plan.time_ms
        choice.Optimizer.cost.Plan.shipped
        (Plan.to_string choice.Optimizer.plan)
  | Error reason -> Fmt.str "hybrid evaluation (%s)" reason

let register_in_catalog t catalog =
  Catalog.register catalog
    {
      Catalog.e_kind = Catalog.Mediator;
      e_name = t.m_name;
      e_owner = t.m_name;
      e_info =
        [
          ("interfaces", string_of_int (List.length (Registry.interface_names t.registry)));
          ("extents", string_of_int (List.length (Registry.all_extents t.registry)));
        ];
    };
  Hashtbl.iter
    (fun name source ->
      Catalog.register catalog
        {
          Catalog.e_kind = Catalog.Repository;
          e_name = name;
          e_owner = t.m_name;
          e_info =
            [
              ("host", (Source.addr source).Source.host);
              ("db", (Source.addr source).Source.db_name);
            ];
        })
    t.sources;
  List.iter
    (fun wname ->
      match Registry.find_object t.registry wname with
      | Some obj
        when String.length obj.Registry.obj_constructor >= 7
             && String.sub obj.Registry.obj_constructor 0 7 = "Wrapper" ->
          Catalog.register catalog
            {
              Catalog.e_kind = Catalog.Wrapper;
              e_name = wname;
              e_owner = t.m_name;
              e_info = [ ("constructor", obj.Registry.obj_constructor) ];
            }
      | Some _ | None -> ())
    (Registry.object_names t.registry)

let source_stats t =
  Hashtbl.fold (fun name src acc -> (name, Source.stats src) :: acc) t.sources []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let plan_cache_size t = Lru.length t.plan_cache

let plan_cache_stats t =
  {
    p_hits = t.plan_hits;
    p_misses = t.plan_misses;
    p_size = Lru.length t.plan_cache;
    p_capacity = Lru.capacity t.plan_cache;
    p_evictions = Lru.evictions t.plan_cache;
  }

let clear_plan_cache t =
  Lru.clear t.plan_cache;
  t.plan_hits <- 0;
  t.plan_misses <- 0

let clear_answer_cache t =
  match t.cache with
  | Some cache ->
      Answer_cache.clear cache;
      Answer_cache.reset_stats cache
  | None -> ()
