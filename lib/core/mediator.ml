module V = Disco_value.Value
module Registry = Disco_odl.Registry
module Shard = Disco_shard.Shard
module Odl = Disco_odl.Odl_parser
module Typemap = Disco_odl.Typemap
module Ast = Disco_oql.Ast
module Oql_parser = Disco_oql.Parser
module Eval = Disco_oql.Eval
module Expr = Disco_algebra.Expr
module Compile = Disco_algebra.Compile
module Rules = Disco_algebra.Rules
module Plan = Disco_physical.Plan
module Optimizer = Disco_optimizer.Optimizer
module Check = Disco_check.Check
module Cost_model = Disco_cost.Cost_model
module Runtime = Disco_runtime.Runtime
module Source = Disco_source.Source
module Clock = Disco_source.Clock
module Scheduler = Disco_source.Scheduler
module Wrapper = Disco_wrapper.Wrapper
module Catalog = Disco_catalog.Catalog
module Lru = Disco_cache.Lru
module Answer_cache = Disco_cache.Answer_cache
module Resubmission = Disco_cache.Resubmission
module Trace = Disco_obs.Trace
module Metrics = Disco_obs.Metrics

let log_src = Logs.Src.create "disco.mediator" ~doc:"Disco mediator"

module Log = (val Logs.src_log log_src)

exception Mediator_error of string

let mediator_error fmt = Format.kasprintf (fun s -> raise (Mediator_error s)) fmt

type semantics =
  | Partial_answers
  | Wait_all
  | Null_sources
  | Skip_sources
  | Cached_fallback of { max_stale_ms : float }

module Config = struct
  type t = {
    clock : Clock.t option;
    sched : Scheduler.t option;
    cost : Cost_model.t option;
    params : Plan.params;
    plan_cache_capacity : int;
    cache : Answer_cache.t option;
    trace_sink : Trace.sink option;
    metrics : Metrics.t;
    batch : bool;
    check : Check.mode;
    retry : Runtime.Retry.t option;
  }

  let default =
    {
      clock = None;
      sched = None;
      cost = None;
      params = Plan.default_params;
      plan_cache_capacity = 128;
      cache = None;
      trace_sink = None;
      metrics = Metrics.default;
      batch = true;
      check = Check.Warn;
      retry = None;
    }
end

module Query_opts = struct
  type t = {
    timeout_ms : float;
    semantics : semantics;
    type_check : bool;
    static_check : bool;
  }

  let default =
    {
      timeout_ms = 1000.0;
      semantics = Partial_answers;
      type_check = false;
      static_check = false;
    }
end

type answer =
  | Complete of V.t
  | Partial of Runtime.partial
  | Unavailable of string list

type answer_cache_use = {
  answer_hits : int;
  stale_hits : int;
  stale_ms : float;
}

type outcome = {
  answer : answer;
  stats : Runtime.stats;
  plan : Plan.plan option;
  from_cache : bool;
  answer_cache : answer_cache_use;
  fallback : bool;
}

type plan_cache_stats = {
  p_hits : int;
  p_misses : int;
  p_size : int;
  p_capacity : int;
  p_evictions : int;
}

type cached_plan = { c_plan : Plan.plan; c_version : int }

type t = {
  m_name : string;
  registry : Registry.t;
  clock : Clock.t;
  sched : Scheduler.t;
  cost : Cost_model.t;
  params : Plan.params;
  sources : (string, Source.t) Hashtbl.t;
  wrappers : (string, Wrapper.t) Hashtbl.t;
  plan_cache : (string, cached_plan) Lru.t;
  mutable plan_hits : int;
  mutable plan_misses : int;
  cache : Answer_cache.t option;
  trace_sink : Trace.sink option;
  metrics : Metrics.t;
  batch : bool;
  check : Check.mode;
  retry : Runtime.Retry.t option;
  breaker : Runtime.Breaker.t;
      (* one breaker table per federation, threaded into every runtime
         env so circuit state persists across queries *)
}

let create ?(config = Config.default) ~name () =
  let clock = Option.value config.Config.clock ~default:(Clock.create ()) in
  {
    m_name = name;
    registry = Registry.create ();
    clock;
    sched =
      Option.value config.Config.sched ~default:(Scheduler.of_clock clock);
    cost = Option.value config.Config.cost ~default:(Cost_model.create ());
    params = config.Config.params;
    sources = Hashtbl.create 16;
    wrappers = Hashtbl.create 16;
    plan_cache = Lru.create ~capacity:config.Config.plan_cache_capacity ();
    plan_hits = 0;
    plan_misses = 0;
    cache = config.Config.cache;
    trace_sink = config.Config.trace_sink;
    metrics = config.Config.metrics;
    batch = config.Config.batch;
    check = config.Config.check;
    retry = config.Config.retry;
    breaker = Runtime.Breaker.create ();
  }

let name t = t.m_name
let clock t = t.clock
let scheduler t = t.sched
let registry t = t.registry
let cost_model t = t.cost
let answer_cache t = t.cache
let answer_cache_stats t = Option.map Answer_cache.stats t.cache
let metrics t = t.metrics
let retry_policy t = t.retry
let breaker_snapshot t = Runtime.Breaker.snapshot t.breaker

let register_source t ~name source = Hashtbl.replace t.sources name source
let register_wrapper t ~name wrapper = Hashtbl.replace t.wrappers name wrapper
let find_source t name = Hashtbl.find_opt t.sources name

let declare_index t ~repo ~table ~column ~kind =
  let module Table = Disco_relation.Table in
  let module Index = Disco_relation.Index in
  let module Schema = Disco_relation.Schema in
  match Hashtbl.find_opt t.sources repo with
  | None -> mediator_error "declare_index: no source registered as %s" repo
  | Some source -> (
      match Source.kind source with
      | Source.Key_value _ | Source.Flat_file _ | Source.Text _ ->
          mediator_error "declare_index: source %s is not relational" repo
      | Source.Relational db -> (
          match Disco_relation.Database.find_table db table with
          | None ->
              mediator_error "declare_index: %s has no table named %s" repo
                table
          | Some tbl -> (
              let ikind =
                match kind with `Hash -> Index.Hash | `Sorted -> Index.Sorted
              in
              match Table.declare_index tbl ~column ikind with
              | () ->
                  Cost_model.declare_index t.cost ~repo ~attr:column ~kind;
                  (* estimates for this repo just changed shape *)
                  Lru.clear t.plan_cache
              | exception Schema.Schema_error m ->
                  mediator_error "declare_index: %s" m)))

let load_odl t text =
  match Odl.load t.registry text with
  | () -> ()
  | exception Registry.Odl_error m -> mediator_error "ODL error: %s" m
  | exception Typemap.Map_error m -> mediator_error "map error: %s" m
  | exception Disco_lex.Lexer.Error (m, pos) ->
      mediator_error "ODL parse error at offset %d: %s" pos m

(* -- name resolution -- *)

let source_of t repo =
  match Hashtbl.find_opt t.sources repo with
  | Some s -> Some s
  | None -> None

let wrapper_of t wname =
  match Hashtbl.find_opt t.wrappers wname with
  | Some w -> Some w
  | None -> (
      match Registry.find_object t.registry wname with
      | Some obj -> (
          match
            Wrapper.of_constructor_args obj.Registry.obj_constructor
              obj.Registry.obj_args
          with
          | Some w ->
              Hashtbl.replace t.wrappers wname w;
              Some w
          | None -> None)
      | None -> None)

let binding_for t ~type_check extent_name =
  match Registry.find_extent t.registry extent_name with
  | None -> mediator_error "no extent named %s" extent_name
  | Some ext -> (
      match
        (source_of t ext.Registry.me_repository, wrapper_of t ext.Registry.me_wrapper)
      with
      | None, _ ->
          mediator_error "repository %s of extent %s has no attached source"
            ext.Registry.me_repository extent_name
      | _, None ->
          mediator_error "wrapper %s of extent %s cannot be constructed"
            ext.Registry.me_wrapper extent_name
      | Some source, Some wrapper ->
          let replicas =
            List.filter_map
              (fun repo ->
                match source_of t repo with
                | Some src -> Some (repo, src)
                | None ->
                    mediator_error
                      "replica repository %s of extent %s has no attached \
                       source"
                      repo extent_name)
              ext.Registry.me_replicas
          in
          {
            Runtime.b_extent = extent_name;
            b_repo = ext.Registry.me_repository;
            b_source = source;
            b_replicas = replicas;
            b_wrapper = wrapper;
            b_map = ext.Registry.me_map;
            b_check =
              (if type_check then
                 Some
                   (fun v ->
                     Registry.struct_conforms t.registry
                       ext.Registry.me_interface v)
               else None);
          })

(* Cached_fallback is partial-answer semantics with the runtime allowed
   to answer blocked execs from cached fragments within the staleness
   budget. *)
let serve_stale_of = function
  | Cached_fallback { max_stale_ms } -> Some max_stale_ms
  | Partial_answers | Wait_all | Null_sources | Skip_sources -> None

(* The static verifier's view of this mediator: extents type by the
   registry, wrappers resolve through the extent's wrapper object, and a
   repository is known if it has an attached source or a registry
   object. Handed to both the optimizer (checking every candidate) and
   the runtime's debug gate. *)
let checker_for t =
  Check.make ~registry:t.registry
    ~wrapper_of:(fun ext ->
      Option.bind (Registry.find_extent t.registry ext) (fun me ->
          wrapper_of t me.Registry.me_wrapper))
    ~repo_of:(fun ext ->
      Option.map
        (fun me -> me.Registry.me_repository)
        (Registry.find_extent t.registry ext))
    ~repo_known:(fun r ->
      Hashtbl.mem t.sources r || Registry.find_object t.registry r <> None)
    ()

let opt_check t = (checker_for t, t.check)

let runtime_env t ~type_check ~semantics ~tr extents =
  let bindings = List.map (binding_for t ~type_check) extents in
  Runtime.env
    (Runtime.Config.make ~sched:t.sched ?cache:t.cache
       ?serve_stale_ms:(serve_stale_of semantics)
       ?trace:tr ~metrics:t.metrics ~batch:t.batch ~check:t.check
       ~checker:(checker_for t) ?retry:t.retry ~breaker:t.breaker
       ~clock:t.clock ~cost:t.cost ())
    bindings

(* -- tracing helpers --

   [tr] is [Some builder] only when the mediator was created with a
   trace sink; the [None] path never touches the clock or allocates, so
   disabled tracing costs nothing. *)

let in_span t tr name f =
  match tr with
  | None -> f ()
  | Some b -> (
      Trace.enter b ~now:(Scheduler.now t.sched) name;
      match f () with
      | r ->
          Trace.leave b ~now:(Scheduler.now t.sched);
          r
      | exception e ->
          Trace.leave b ~now:(Scheduler.now t.sched);
          raise e)

let span_meta tr k v = Option.iter (fun b -> Trace.meta b k v) tr

(* Capability check used by the optimizer: every extent mentioned in the
   candidate expression must be served by a wrapper that accepts it, and
   a merged submit requires a single common wrapper. *)
let can_push t ~repo expr =
  ignore repo;
  let extents = Expr.gets expr in
  let wrappers =
    List.filter_map
      (fun extent ->
        Option.bind (Registry.find_extent t.registry extent) (fun ext ->
            wrapper_of t ext.Registry.me_wrapper))
      extents
  in
  List.length wrappers = List.length extents
  && (match wrappers with
     | [] -> false
     | first :: rest ->
         List.for_all (fun w -> String.equal (Wrapper.name w) (Wrapper.name first)) rest)
  && List.for_all (fun w -> Wrapper.accepts w expr) wrappers

let repo_of t extent =
  Option.map
    (fun e -> e.Registry.me_repository)
    (Registry.find_extent t.registry extent)

(* Shard resolver handed to the optimizer: maps a shard-child extent
   name back to its parent's partition and its index. *)
let shard_of t extent =
  match Registry.find_extent t.registry extent with
  | Some { Registry.me_shard_of = Some (parent, k); _ } ->
      Option.bind (Registry.find_extent t.registry parent) (fun pe ->
          Option.map (fun p -> (p, k)) pe.Registry.me_partition)
  | _ -> None

(* Shard children the plan scans: drives the shard span and metrics of
   the scatter-gather round. *)
let shard_children_of_plan t plan =
  List.sort_uniq String.compare
    (List.concat_map
       (fun (_, e) ->
         List.filter (fun name -> shard_of t name <> None) (Expr.gets e))
       (Plan.all_source_exprs plan))

(* -- answers -- *)

let zero_stats =
  {
    Runtime.execs_issued = 0;
    execs_answered = 0;
    execs_blocked = 0;
    tuples_shipped = 0;
    elapsed_ms = 0.0;
    cache_hits = 0;
    cache_stale_hits = 0;
    cache_stale_ms = 0.0;
    round_trips = 0;
  }

let cache_use_of (stats : Runtime.stats) =
  {
    answer_hits = stats.Runtime.cache_hits;
    stale_hits = stats.Runtime.cache_stale_hits;
    stale_ms = stats.Runtime.cache_stale_ms;
  }

let no_cache_use = { answer_hits = 0; stale_hits = 0; stale_ms = 0.0 }

let eval_env ?(resolve = fun _ -> None) t =
  Eval.env ~resolve ~interface_names:(Registry.interface_names t.registry) ()

(* The runtime and the mediator share one partial-answer payload
   ([Runtime.partial]); converting is constructor renaming only. *)
let answer_of_runtime = function
  | Runtime.Complete v -> Complete v
  | Runtime.Partial p -> Partial p

let runtime_of_answer = function
  | Complete v -> Some (Runtime.Complete v)
  | Partial p -> Some (Runtime.Partial p)
  | Unavailable _ -> None

let answer_oql answer =
  match runtime_of_answer answer with
  | Some a -> Runtime.answer_oql a
  | None -> mediator_error "no answer to render: every source unavailable"

(* The staleness check of Section 4: which sources that answered have
   already changed their data? Computed on demand from the versions the
   partial answer recorded. *)
let stale_hint t = function
  | Complete _ | Unavailable _ -> []
  | Partial { Runtime.versions; _ } ->
      List.filter_map
        (fun (repo, recorded_version) ->
          match source_of t repo with
          | Some s when Source.data_version s <> recorded_version -> Some repo
          | Some _ | None -> None)
        versions

(* Apply the chosen unavailable-data semantics to a runtime partial
   answer. *)
let apply_semantics t semantics answer =
  match (semantics, answer) with
  | (Partial_answers | Skip_sources | Cached_fallback _), a -> a
  | Wait_all, Partial { Runtime.unavailable; _ } -> Unavailable unavailable
  | Null_sources, Partial { Runtime.query = residual; _ } -> (
      (* unavailable sources contribute no tuples: replace the residual
         extents with empty bags and finish locally *)
      let emptied =
        Expand.substitute_collections
          (fun name ->
            if Registry.find_extent t.registry name <> None then
              Some (Ast.Const (V.Bag []))
            else None)
          residual
      in
      match Eval.eval (eval_env t) emptied with
      | v -> Complete v
      | exception Eval.Eval_error m ->
          mediator_error "null-semantics evaluation failed: %s" m)
  | (Wait_all | Null_sources), a -> a

(* -- the compiled path -- *)

let compiled_outcome t ~timeout_ms ~type_check ~semantics ~tr ~oql located =
  let cache_key = oql in
  let version = Registry.version t.registry in
  let cached =
    match Lru.find t.plan_cache cache_key with
    | Some { c_plan; c_version } when c_version = version -> Some c_plan
    | _ -> None
  in
  let plan, from_cache =
    in_span t tr "optimize" (fun () ->
        match cached with
        | Some plan ->
            t.plan_hits <- t.plan_hits + 1;
            Metrics.incr t.metrics "plan_cache.hit";
            span_meta tr "plan_cache" "hit";
            (plan, true)
        | None ->
            t.plan_misses <- t.plan_misses + 1;
            Metrics.incr t.metrics "plan_cache.miss";
            span_meta tr "plan_cache" "miss";
            let choice =
              Optimizer.optimize ~params:t.params ~metrics:t.metrics
                ~batch:t.batch ~check:(opt_check t) ~shard:(shard_of t)
                ~can_push:(can_push t) ~cost:t.cost located
            in
            span_meta tr "alternatives"
              (string_of_int choice.Optimizer.alternatives);
            span_meta tr "est_time_ms"
              (Printf.sprintf "%.3f" choice.Optimizer.cost.Plan.time_ms);
            Lru.add t.plan_cache cache_key
              { c_plan = choice.Optimizer.plan; c_version = version };
            (choice.Optimizer.plan, false))
  in
  let extents =
    List.sort_uniq String.compare
      (List.concat_map (fun (_, e) -> Expr.gets e) (Plan.all_source_exprs plan))
  in
  let env = runtime_env t ~type_check ~semantics ~tr extents in
  let run plan =
    (* execution-layer failures (bad maps, misbehaving wrappers) surface
       as clean mediator errors, never raw engine exceptions *)
    let execute () =
      match shard_children_of_plan t plan with
      | [] -> Runtime.execute ~timeout_ms env plan
      | shards ->
          (* the scatter-gather round over a partitioned extent gets its
             own span so traces show the fan-out width *)
          Metrics.incr t.metrics "shard.rounds";
          in_span t tr "shard" (fun () ->
              span_meta tr "shards" (string_of_int (List.length shards));
              Runtime.execute ~timeout_ms env plan)
    in
    match in_span t tr "execute" execute with
    | answer, stats -> (answer_of_runtime answer, stats)
    | exception Plan.Physical_error m -> mediator_error "execution failed: %s" m
    | exception Expr.Algebra_error m -> mediator_error "execution failed: %s" m
    | exception V.Type_error m -> mediator_error "execution failed: %s" m
  in
  match run plan with
  | answer, stats ->
      {
        answer = apply_semantics t semantics answer;
        stats;
        plan = Some plan;
        from_cache;
        answer_cache = cache_use_of stats;
        fallback = false;
      }
  | exception Runtime.Runtime_error reason ->
      (* a wrapper refused its expression: replan without pushdown *)
      Log.warn (fun m -> m "capability fallback: %s" reason);
      Metrics.incr t.metrics "mediator.capability_fallback";
      let conservative =
        in_span t tr "replan" (fun () ->
            Plan.implement (Rules.normalize ~can_push:Rules.push_none located))
      in
      let answer, stats = run conservative in
      {
        answer = apply_semantics t semantics answer;
        stats;
        plan = Some conservative;
        from_cache = false;
        answer_cache = cache_use_of stats;
        fallback = true;
      }

(* -- the hybrid path: full OQL with engine-executed fragments --

   A query outside the algebraic subset (aggregates, correlated
   subqueries, quantifiers, order by) still contains closed fragments
   that ARE algebraic; each maximal such fragment is planned and executed
   through the optimizer/runtime — so capability pushdown keeps working —
   and the rest is evaluated on the mediator. Fragments run as successive
   parallel rounds against the virtual clock. *)

let add_stats a b =
  {
    Runtime.execs_issued = a.Runtime.execs_issued + b.Runtime.execs_issued;
    execs_answered = a.Runtime.execs_answered + b.Runtime.execs_answered;
    execs_blocked = a.Runtime.execs_blocked + b.Runtime.execs_blocked;
    tuples_shipped = a.Runtime.tuples_shipped + b.Runtime.tuples_shipped;
    elapsed_ms = a.Runtime.elapsed_ms +. b.Runtime.elapsed_ms;
    cache_hits = a.Runtime.cache_hits + b.Runtime.cache_hits;
    cache_stale_hits = a.Runtime.cache_stale_hits + b.Runtime.cache_stale_hits;
    cache_stale_ms = Float.max a.Runtime.cache_stale_ms b.Runtime.cache_stale_ms;
    round_trips = a.Runtime.round_trips + b.Runtime.round_trips;
  }

let hybrid_outcome t ~timeout_ms ~type_check ~semantics ~tr expanded =
  (match
     List.find_opt
       (fun name -> Registry.find_extent t.registry name = None)
       (Ast.free_collections expanded)
   with
  | Some unknown -> mediator_error "unresolved name %s after expansion" unknown
  | None -> ());
  span_meta tr "mode" "hybrid";
  let stats_acc = ref zero_stats in
  let blocked_repos = ref [] in
  let try_fragment sub =
    match sub with
    | Ast.Const _ | Ast.Ident _ -> None
        (* bare extents go through the batched fetch below *)
    | _ -> (
        match Compile.compile sub with
        | Error _ -> None
        | Ok compiled -> (
            let frees = Ast.free_collections sub in
            if
              frees = []
              || not
                   (List.for_all
                      (fun n -> Registry.find_extent t.registry n <> None)
                      frees)
            then None
            else
              let located = Compile.locate ~repo_of:(repo_of t) compiled in
              let choice =
                Optimizer.optimize ~params:t.params ~metrics:t.metrics
                  ~batch:t.batch ~check:(opt_check t) ~shard:(shard_of t)
                  ~can_push:(can_push t) ~cost:t.cost located
              in
              let extents =
                List.sort_uniq String.compare
                  (List.concat_map
                     (fun (_, e) -> Expr.gets e)
                     (Plan.all_source_exprs choice.Optimizer.plan))
              in
              let env = runtime_env t ~type_check ~semantics ~tr extents in
              match Runtime.execute ~timeout_ms env choice.Optimizer.plan with
              | Runtime.Complete v, st ->
                  stats_acc := add_stats !stats_acc st;
                  Some (Ast.Const v)
              | Runtime.Partial { unavailable; _ }, st ->
                  stats_acc := add_stats !stats_acc st;
                  blocked_repos := unavailable @ !blocked_repos;
                  (* leave the fragment symbolic for the partial answer *)
                  None
              | exception Runtime.Runtime_error _ ->
                  (* capability surprise: fall back to plain fetches *)
                  None))
  in
  let substituted, fetched, fetch_stats =
    in_span t tr "execute" (fun () ->
        let substituted = Expand.map_closed_subqueries try_fragment expanded in
        (* whatever extents remain (bare or in failed fragments) are
           fetched whole, in one parallel round *)
        let extents =
          List.filter
            (fun name -> Registry.find_extent t.registry name <> None)
            (Ast.free_collections substituted)
        in
        let env = runtime_env t ~type_check ~semantics ~tr extents in
        let fetched, fetch_stats = Runtime.fetch ~timeout_ms env extents in
        (substituted, fetched, fetch_stats))
  in
  let stats = add_stats !stats_acc fetch_stats in
  let fetch_blocked = List.filter (fun (_, v) -> v = None) fetched in
  if fetch_blocked = [] && !blocked_repos = [] then
    let resolve name =
      match List.assoc_opt name fetched with Some v -> v | None -> None
    in
    match Eval.eval (eval_env ~resolve t) substituted with
    | v ->
        {
          answer = Complete v;
          stats;
          plan = None;
          from_cache = false;
          answer_cache = cache_use_of stats;
          fallback = false;
        }
    | exception Eval.Eval_error m -> mediator_error "evaluation failed: %s" m
  else
    (* general partial answer: plug what did arrive into the query *)
    let residual =
      Expand.substitute_collections
        (fun name ->
          match List.assoc_opt name fetched with
          | Some (Some v) -> Some (Ast.Const v)
          | _ -> None)
        substituted
    in
    let unavailable =
      List.sort_uniq String.compare
        (!blocked_repos
        @ List.filter_map
            (fun (extent, _) ->
              Option.map
                (fun e -> e.Registry.me_repository)
                (Registry.find_extent t.registry extent))
            fetch_blocked)
    in
    let answer =
      Partial { Runtime.query = residual; unavailable; versions = [] }
    in
    {
      answer = apply_semantics t semantics answer;
      stats;
      plan = None;
      from_cache = false;
      answer_cache = cache_use_of stats;
      fallback = false;
    }

(* -- entry points -- *)

let parse_oql oql =
  try Oql_parser.parse oql
  with Disco_lex.Lexer.Error (m, pos) ->
    mediator_error "OQL parse error at offset %d: %s" pos m

let expand t ast =
  try Expand.expand t.registry ast
  with Expand.Expand_error m -> mediator_error "%s" m

(* Skip_sources: drop extents whose source is down right now, before
   planning — "as if the data source objects ... do not exist". An extent
   with replicas is only skipped when every copy is down. *)
let apply_skip t expanded =
  let now = Scheduler.now t.sched in
  let copy_up repo =
    match source_of t repo with
    | Some source -> Source.is_up source now
    | None -> false
  in
  Expand.substitute_collections
    (fun name ->
      match Registry.find_extent t.registry name with
      | None -> None
      | Some ext ->
          if
            List.exists copy_up
              (ext.Registry.me_repository :: ext.Registry.me_replicas)
          then None
          else Some (Ast.Const (V.Bag [])))
    expanded

let typecheck t oql =
  match parse_oql oql with
  | ast ->
      Disco_oql.Typecheck.check
        (Disco_oql.Typecheck.env_of_registry t.registry)
        ast
  | exception Mediator_error m -> Error m

let validate_views t =
  List.filter_map
    (fun name ->
      match
        Disco_oql.Typecheck.check
          (Disco_oql.Typecheck.env_of_registry t.registry)
          (Ast.Ident name)
      with
      | Ok _ -> None
      | Error m -> Some (name, m))
    (Registry.view_names t.registry)

let query ?(opts = Query_opts.default) t oql =
  let { Query_opts.timeout_ms; semantics; type_check; static_check } = opts in
  Log.info (fun m -> m "[%s] query: %s" t.m_name oql);
  Metrics.incr t.metrics "mediator.queries";
  let tr =
    Option.map
      (fun _ -> Trace.make ~query:oql ~now:(Scheduler.now t.sched))
      t.trace_sink
  in
  let outcome =
    let ast = in_span t tr "parse" (fun () -> parse_oql oql) in
    (if static_check then
       match
         Disco_oql.Typecheck.check
           (Disco_oql.Typecheck.env_of_registry t.registry)
           ast
       with
       | Ok _ -> ()
       | Error m -> mediator_error "type error: %s" m);
    let expanded = in_span t tr "expand" (fun () -> expand t ast) in
    let expanded =
      match semantics with
      | Skip_sources -> apply_skip t expanded
      | Partial_answers | Wait_all | Null_sources | Cached_fallback _ ->
          expanded
    in
    match in_span t tr "compile" (fun () -> Compile.compile expanded) with
    | Ok compiled ->
        let located = Compile.locate ~repo_of:(repo_of t) compiled in
        compiled_outcome t ~timeout_ms ~type_check ~semantics ~tr
          ~oql:(Ast.to_string expanded) located
    | Error _ -> hybrid_outcome t ~timeout_ms ~type_check ~semantics ~tr expanded
  in
  (match outcome.answer with
  | Complete _ -> Metrics.incr t.metrics "mediator.answers.complete"
  | Partial _ -> Metrics.incr t.metrics "mediator.answers.partial"
  | Unavailable _ -> Metrics.incr t.metrics "mediator.answers.unavailable");
  Metrics.observe t.metrics "query.elapsed_virtual_ms"
    outcome.stats.Runtime.elapsed_ms;
  (match (tr, t.trace_sink) with
  | Some b, Some sink ->
      span_meta tr "answer"
        (match outcome.answer with
        | Complete _ -> "complete"
        | Partial _ -> "partial"
        | Unavailable _ -> "unavailable");
      span_meta tr "execs"
        (string_of_int outcome.stats.Runtime.execs_answered);
      span_meta tr "tuples_shipped"
        (string_of_int outcome.stats.Runtime.tuples_shipped);
      if outcome.fallback then span_meta tr "fallback" "capability";
      sink (Trace.finish b ~now:(Scheduler.now t.sched))
  | _ -> ());
  outcome

let resubmit ?opts t answer =
  match answer with
  | Complete v ->
      {
        answer = Complete v;
        stats = zero_stats;
        plan = None;
        from_cache = false;
        answer_cache = no_cache_use;
        fallback = false;
      }
  | Partial p -> query ?opts t (Ast.to_string p.Runtime.query)
  | Unavailable repos ->
      mediator_error "nothing to resubmit: no answer from %s"
        (String.concat ", " repos)

(* Feed the resubmission manager: replay a residual query and classify
   the result. Records fresh data into the answer cache as a side effect
   when the mediator runs with one. *)
let resubmission_runner ?opts t oql =
  Metrics.incr t.metrics "resubmission.replays";
  match (query ?opts t oql).answer with
  | Complete _ ->
      Metrics.incr t.metrics "resubmission.converged";
      Resubmission.Run_complete
  | Partial p ->
      Resubmission.Run_partial
        { oql = Ast.to_string p.Runtime.query; unavailable = p.Runtime.unavailable }
  | Unavailable unavailable -> Resubmission.Run_partial { oql; unavailable }

let record_partial resubmissions outcome =
  match outcome.answer with
  | Partial p ->
      Some
        (Resubmission.record resubmissions
           ~oql:(Ast.to_string p.Runtime.query)
           ~unavailable:p.Runtime.unavailable)
  | Complete _ | Unavailable _ -> None

let explain t oql =
  let ast = parse_oql oql in
  let expanded = expand t ast in
  match Compile.compile expanded with
  | Ok compiled ->
      let located = Compile.locate ~repo_of:(repo_of t) compiled in
      let choice =
        Optimizer.optimize ~params:t.params ~batch:t.batch
          ~check:(opt_check t) ~shard:(shard_of t) ~can_push:(can_push t)
          ~cost:t.cost located
      in
      Fmt.str "plan (%d alternatives, est. %.3f ms, %.1f rows shipped):@\n%s"
        choice.Optimizer.alternatives choice.Optimizer.cost.Plan.time_ms
        choice.Optimizer.cost.Plan.shipped
        (Plan.to_string choice.Optimizer.plan)
  | Error reason -> Fmt.str "hybrid evaluation (%s)" reason

let register_in_catalog t catalog =
  Catalog.register catalog
    {
      Catalog.e_kind = Catalog.Mediator;
      e_name = t.m_name;
      e_owner = t.m_name;
      e_info =
        [
          ("interfaces", string_of_int (List.length (Registry.interface_names t.registry)));
          ("extents", string_of_int (List.length (Registry.all_extents t.registry)));
        ];
    };
  Hashtbl.iter
    (fun name source ->
      Catalog.register catalog
        {
          Catalog.e_kind = Catalog.Repository;
          e_name = name;
          e_owner = t.m_name;
          e_info =
            [
              ("host", (Source.addr source).Source.host);
              ("db", (Source.addr source).Source.db_name);
            ];
        })
    t.sources;
  List.iter
    (fun wname ->
      match Registry.find_object t.registry wname with
      | Some obj
        when String.length obj.Registry.obj_constructor >= 7
             && String.sub obj.Registry.obj_constructor 0 7 = "Wrapper" ->
          Catalog.register catalog
            {
              Catalog.e_kind = Catalog.Wrapper;
              e_name = wname;
              e_owner = t.m_name;
              e_info = [ ("constructor", obj.Registry.obj_constructor) ];
            }
      | Some _ | None -> ())
    (Registry.object_names t.registry);
  (* partitioned extents publish their layout so peers can see how a
     logical collection scales out *)
  List.iter
    (fun me ->
      match me.Registry.me_partition with
      | None -> ()
      | Some p ->
          Catalog.register catalog
            {
              Catalog.e_kind = Catalog.Extent;
              e_name = me.Registry.me_name;
              e_owner = t.m_name;
              e_info =
                [
                  ("interface", me.Registry.me_interface);
                  ("key", p.Shard.p_key);
                  ("scheme", Fmt.str "%a" Shard.pp_scheme p.Shard.p_scheme);
                  ("shards", string_of_int (List.length p.Shard.p_shards));
                  ( "repositories",
                    String.concat " "
                      (List.map
                         (fun s -> s.Shard.s_repository)
                         p.Shard.p_shards) );
                ];
            })
    (Registry.all_extents t.registry)

let source_stats t =
  Hashtbl.fold (fun name src acc -> (name, Source.stats src) :: acc) t.sources []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let plan_cache_size t = Lru.length t.plan_cache

let plan_cache_stats t =
  {
    p_hits = t.plan_hits;
    p_misses = t.plan_misses;
    p_size = Lru.length t.plan_cache;
    p_capacity = Lru.capacity t.plan_cache;
    p_evictions = Lru.evictions t.plan_cache;
  }

let clear_plan_cache t =
  Lru.clear t.plan_cache;
  t.plan_hits <- 0;
  t.plan_misses <- 0

let clear_answer_cache t =
  match t.cache with
  | Some cache ->
      Answer_cache.clear cache;
      Answer_cache.reset_stats cache
  | None -> ()
