(** Structured query tracing.

    A trace is a tree of spans recorded while the mediator answers one
    query.  Spans carry {e virtual} timestamps (the simulated clock the
    runtime already uses), which keeps traces fully deterministic: the
    same query against the same federation yields the same trace,
    byte-for-byte.  That determinism is what makes golden tests of the
    pretty printer and JSON export possible.

    The builder ({!t}) is threaded through the query path as an
    [option]; when no sink is attached the mediator never allocates a
    builder, so the disabled path costs nothing. *)

(** Where an exec's answer came from. *)
type origin =
  | Source  (** answered by the primary source *)
  | Cache  (** served from the semantic answer cache *)
  | Stale of float  (** stale cache entry served; age in virtual ms *)
  | Failover of string  (** answered by the named replica repository *)
  | Blocked  (** source down and no fallback; exec never answered *)

val origin_label : origin -> string
(** Short lowercase label: ["source"], ["cache"], ["stale"],
    ["failover"], ["blocked"].  Used as the metric-name suffix for
    [exec.origin.*] counters. *)

val pp_origin : origin Fmt.t

(** One submitted exec (a single-collection subquery shipped to a
    wrapper), as observed by the runtime. *)
type exec = {
  x_repo : string;  (** repository the exec was addressed to *)
  x_wrapper : string;  (** wrapper that owns the repository *)
  x_expr : string;  (** logical expression shipped, printed *)
  x_origin : origin;
  x_start_ms : float;  (** virtual time the exec was issued *)
  x_elapsed_ms : float;  (** virtual time until it answered/blocked *)
  x_tuples : int;  (** tuples shipped over the (simulated) wire *)
  x_rows : int;  (** rows in the materialized answer *)
  x_predicted_ms : float option;  (** cost-model prediction, if traced *)
  x_predicted_rows : float option;
  x_batch_id : int option;
      (** batched round-trip this exec rode in, if any; execs sharing an
          id shared one wrapper call (and one [base_ms]) *)
  x_batch_size : int;  (** execs in that round-trip; 1 when unbatched *)
}

(** One re-poll (or hedge) of an exec by the retry scheduler, rendered
    as a child span of the exec leaf. *)
type attempt = {
  a_number : int;  (** 1-based re-poll number within the exec *)
  a_start_ms : float;  (** virtual time the re-poll was issued *)
  a_elapsed_ms : float;  (** until its own completion or failure *)
  a_outcome : string;
      (** ["recovered"], ["unavailable"], ["timed-out"], ["breaker-open"]
          or ["hedge-won"] *)
}

type span = {
  s_name : string;
  s_start_ms : float;
  s_elapsed_ms : float;
  s_meta : (string * string) list;
  s_exec : exec option;  (** [Some _] iff this is an exec leaf *)
  s_children : span list;
}

type trace = { t_query : string; t_root : span }

type sink = trace -> unit
(** Called once per finished query with the completed trace. *)

(** {1 Building} *)

type t
(** A mutable trace under construction. *)

val make : query:string -> now:float -> t
(** [make ~query ~now] opens the root span at virtual time [now]. *)

val enter : t -> now:float -> string -> unit
(** Open a child span of the current span. *)

val leave : t -> now:float -> unit
(** Close the current span.  Closing the root is a no-op ({!finish}
    does that). *)

val meta : t -> string -> string -> unit
(** Attach a key/value annotation to the current span. *)

val exec : ?attempts:attempt list -> t -> exec -> unit
(** Record an exec leaf under the current span. [attempts] (issue order)
    become child spans named ["retry"] under the leaf, carrying the
    attempt number and outcome as span metadata — the retry scheduler's
    re-polls stay attached to the exec they served. *)

val finish : t -> now:float -> trace
(** Close any spans still open (root included) and return the
    completed trace. *)

(** {1 Rendering} *)

val pp : trace Fmt.t
(** Pretty span tree with per-span virtual timings, span metadata, and
    per-exec repository / origin / elapsed / tuples. *)

val to_json : trace -> string
(** The whole trace as a single JSON object:
    [{"query": ..., "root": {"name", "start_ms", "elapsed_ms", "meta",
    "exec", "children"}}].  Numbers are printed with a fixed format so
    output is deterministic. *)
