(** Named counters and histograms.

    A registry maps metric names (dot-separated, e.g.
    ["exec.origin.cache"]) to values.  The library keeps one
    process-wide {!default} registry that all Disco subsystems write to
    unless a different registry is supplied through their configuration
    records; tests that need isolation create their own with
    {!create}.

    Counters are monotonic ints; histograms keep count/sum/min/max of
    observed values (enough for means and ranges without binning).
    Incrementing a name that exists as the other kind raises
    [Invalid_argument] — metric names are a namespace, not dynamically
    typed. *)

type histogram = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
}

type value = Counter of int | Histogram of histogram

type t
(** A metrics registry. *)

val create : unit -> t

val default : t
(** The process-wide registry. *)

val reset : t -> unit
(** Drop every metric in the registry. *)

val incr : ?by:int -> t -> string -> unit
(** Bump a counter, creating it at zero first if absent. *)

val observe : t -> string -> float -> unit
(** Record one histogram observation, creating the histogram if
    absent. *)

val find_counter : t -> string -> int
(** Current value, 0 if the counter does not exist. *)

val find_histogram : t -> string -> histogram option

val dump : t -> (string * value) list
(** All metrics, sorted by name. *)

val pp : t Fmt.t
(** One metric per line, sorted by name. *)

val to_json : t -> string
(** [{"name": 3, "hist": {"count":2,"sum":...,"min":...,"max":...}}],
    keys sorted. *)
