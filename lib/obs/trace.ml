type origin =
  | Source
  | Cache
  | Stale of float
  | Failover of string
  | Blocked

let origin_label = function
  | Source -> "source"
  | Cache -> "cache"
  | Stale _ -> "stale"
  | Failover _ -> "failover"
  | Blocked -> "blocked"

let pp_origin ppf = function
  | Source -> Fmt.string ppf "source"
  | Cache -> Fmt.string ppf "cache"
  | Stale age -> Fmt.pf ppf "stale(age %.1fms)" age
  | Failover repo -> Fmt.pf ppf "failover->%s" repo
  | Blocked -> Fmt.string ppf "blocked"

type exec = {
  x_repo : string;
  x_wrapper : string;
  x_expr : string;
  x_origin : origin;
  x_start_ms : float;
  x_elapsed_ms : float;
  x_tuples : int;
  x_rows : int;
  x_predicted_ms : float option;
  x_predicted_rows : float option;
  x_batch_id : int option;
  x_batch_size : int;
}

type attempt = {
  a_number : int;
  a_start_ms : float;
  a_elapsed_ms : float;
  a_outcome : string;
}

type span = {
  s_name : string;
  s_start_ms : float;
  s_elapsed_ms : float;
  s_meta : (string * string) list;
  s_exec : exec option;
  s_children : span list;
}

type trace = { t_query : string; t_root : span }
type sink = trace -> unit

(* -- builder -- *)

type frame = {
  f_name : string;
  f_start : float;
  mutable f_meta : (string * string) list; (* reversed *)
  mutable f_children : span list; (* reversed *)
}

type t = { b_query : string; mutable b_stack : frame list (* top first *) }

let frame name now = { f_name = name; f_start = now; f_meta = []; f_children = [] }

let make ~query ~now = { b_query = query; b_stack = [ frame "query" now ] }

let enter t ~now name = t.b_stack <- frame name now :: t.b_stack

let meta t k v =
  match t.b_stack with
  | f :: _ -> f.f_meta <- (k, v) :: f.f_meta
  | [] -> ()

let close f ~now =
  {
    s_name = f.f_name;
    s_start_ms = f.f_start;
    s_elapsed_ms = now -. f.f_start;
    s_meta = List.rev f.f_meta;
    s_exec = None;
    s_children = List.rev f.f_children;
  }

let leave t ~now =
  match t.b_stack with
  | f :: (parent :: _ as rest) ->
      parent.f_children <- close f ~now :: parent.f_children;
      t.b_stack <- rest
  | _ -> ()

let attempt_span a =
  {
    s_name = "retry";
    s_start_ms = a.a_start_ms;
    s_elapsed_ms = a.a_elapsed_ms;
    s_meta =
      [ ("attempt", string_of_int a.a_number); ("outcome", a.a_outcome) ];
    s_exec = None;
    s_children = [];
  }

let exec ?(attempts = []) t x =
  match t.b_stack with
  | f :: _ ->
      let leaf =
        {
          s_name = "exec";
          s_start_ms = x.x_start_ms;
          s_elapsed_ms = x.x_elapsed_ms;
          s_meta = [];
          s_exec = Some x;
          s_children = List.map attempt_span attempts;
        }
      in
      f.f_children <- leaf :: f.f_children
  | [] -> ()

let rec finish t ~now =
  match t.b_stack with
  | [ root ] -> { t_query = t.b_query; t_root = close root ~now }
  | _ :: _ :: _ ->
      leave t ~now;
      finish t ~now
  | [] -> { t_query = t.b_query; t_root = close (frame "query" now) ~now }

(* -- pretty printing -- *)

let pp_meta ppf = function
  | [] -> ()
  | kvs ->
      Fmt.pf ppf " {%a}"
        (Fmt.list ~sep:(Fmt.any "; ") (fun ppf (k, v) -> Fmt.pf ppf "%s=%s" k v))
        kvs

let pp_exec ppf x =
  Fmt.pf ppf "exec %s [%a] @@%.1f +%.1fms, %d tuples, %d rows" x.x_repo
    pp_origin x.x_origin x.x_start_ms x.x_elapsed_ms x.x_tuples x.x_rows;
  (match (x.x_predicted_ms, x.x_predicted_rows) with
  | Some ms, Some rows -> Fmt.pf ppf " (predicted %.1fms / %.0f rows)" ms rows
  | Some ms, None -> Fmt.pf ppf " (predicted %.1fms)" ms
  | None, _ -> ());
  (match x.x_batch_id with
  | Some id -> Fmt.pf ppf " [batch %d/%d]" id x.x_batch_size
  | None -> ());
  Fmt.pf ppf " :: %s <- %s" x.x_wrapper x.x_expr

let rec pp_span ~prefix ~last ppf sp =
  let branch = if last then "`- " else "|- " in
  let extend = if last then "   " else "|  " in
  (match sp.s_exec with
  | Some x -> Fmt.pf ppf "%s%s%a@." prefix branch pp_exec x
  | None ->
      Fmt.pf ppf "%s%s%s @@%.1f +%.1fms%a@." prefix branch sp.s_name
        sp.s_start_ms sp.s_elapsed_ms pp_meta sp.s_meta);
  let n = List.length sp.s_children in
  List.iteri
    (fun i child ->
      pp_span ~prefix:(prefix ^ extend) ~last:(i = n - 1) ppf child)
    sp.s_children

let pp ppf tr =
  Fmt.pf ppf "trace %S@." tr.t_query;
  pp_span ~prefix:"" ~last:true ppf tr.t_root

(* -- JSON export -- *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_add_float b f =
  (* fixed decimal notation keeps output deterministic and JSON-legal
     (no OCaml-style trailing dots or infinities) *)
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.1f" f)
  else Buffer.add_string b (Printf.sprintf "%.6g" f)

let buf_add_field b first k =
  if not !first then Buffer.add_char b ',';
  first := false;
  buf_add_json_string b k;
  Buffer.add_char b ':'

let add_exec b x =
  Buffer.add_char b '{';
  let first = ref true in
  let str k v =
    buf_add_field b first k;
    buf_add_json_string b v
  in
  let num k v =
    buf_add_field b first k;
    buf_add_float b v
  in
  let int k v =
    buf_add_field b first k;
    Buffer.add_string b (string_of_int v)
  in
  str "repo" x.x_repo;
  str "wrapper" x.x_wrapper;
  str "expr" x.x_expr;
  str "origin" (origin_label x.x_origin);
  (match x.x_origin with
  | Stale age -> num "stale_age_ms" age
  | Failover repo -> str "failover_repo" repo
  | Source | Cache | Blocked -> ());
  num "start_ms" x.x_start_ms;
  num "elapsed_ms" x.x_elapsed_ms;
  int "tuples" x.x_tuples;
  int "rows" x.x_rows;
  (match x.x_predicted_ms with Some ms -> num "predicted_ms" ms | None -> ());
  (match x.x_predicted_rows with
  | Some rows -> num "predicted_rows" rows
  | None -> ());
  (match x.x_batch_id with
  | Some id ->
      int "batch_id" id;
      int "batch_size" x.x_batch_size
  | None -> ());
  Buffer.add_char b '}'

let rec add_span b sp =
  Buffer.add_char b '{';
  let first = ref true in
  buf_add_field b first "name";
  buf_add_json_string b sp.s_name;
  buf_add_field b first "start_ms";
  buf_add_float b sp.s_start_ms;
  buf_add_field b first "elapsed_ms";
  buf_add_float b sp.s_elapsed_ms;
  if sp.s_meta <> [] then (
    buf_add_field b first "meta";
    Buffer.add_char b '{';
    let mfirst = ref true in
    List.iter
      (fun (k, v) ->
        buf_add_field b mfirst k;
        buf_add_json_string b v)
      sp.s_meta;
    Buffer.add_char b '}');
  (match sp.s_exec with
  | Some x ->
      buf_add_field b first "exec";
      add_exec b x
  | None -> ());
  if sp.s_children <> [] then (
    buf_add_field b first "children";
    Buffer.add_char b '[';
    List.iteri
      (fun i child ->
        if i > 0 then Buffer.add_char b ',';
        add_span b child)
      sp.s_children;
    Buffer.add_char b ']');
  Buffer.add_char b '}'

let to_json tr =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"query\":";
  buf_add_json_string b tr.t_query;
  Buffer.add_string b ",\"root\":";
  add_span b tr.t_root;
  Buffer.add_char b '}';
  Buffer.contents b
