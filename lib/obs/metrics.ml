type histogram = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
}

type value = Counter of int | Histogram of histogram

(* A registry may be shared by serve-mode sessions running on several
   threads and by wrapper calls running on pool domains, so every
   operation serializes behind the registry's own lock. The lock is
   uncontended in the single-threaded simulation. *)
type t = { tbl : (string, value) Hashtbl.t; lock : Mutex.t }

let create () : t = { tbl = Hashtbl.create 32; lock = Mutex.create () }
let default : t = create ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let reset t = locked t (fun () -> Hashtbl.reset t.tbl)

let incr ?(by = 1) t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | None -> Hashtbl.replace t.tbl name (Counter by)
      | Some (Counter n) -> Hashtbl.replace t.tbl name (Counter (n + by))
      | Some (Histogram _) ->
          invalid_arg (Printf.sprintf "Metrics.incr: %S is a histogram" name))

let observe t name v =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | None ->
          Hashtbl.replace t.tbl name
            (Histogram { h_count = 1; h_sum = v; h_min = v; h_max = v })
      | Some (Histogram h) ->
          Hashtbl.replace t.tbl name
            (Histogram
               {
                 h_count = h.h_count + 1;
                 h_sum = h.h_sum +. v;
                 h_min = Float.min h.h_min v;
                 h_max = Float.max h.h_max v;
               })
      | Some (Counter _) ->
          invalid_arg (Printf.sprintf "Metrics.observe: %S is a counter" name))

let find_counter t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with Some (Counter n) -> n | _ -> 0)

let find_histogram t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Histogram h) -> Some h
      | _ -> None)

let dump t =
  locked t (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf t =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> Fmt.pf ppf "%-40s %d@." name n
      | Histogram h ->
          Fmt.pf ppf "%-40s count=%d sum=%.1f min=%.1f max=%.1f mean=%.2f@."
            name h.h_count h.h_sum h.h_min h.h_max
            (h.h_sum /. float_of_int (max 1 h.h_count)))
    (dump t)

let to_json t =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "%S:" name);
      match v with
      | Counter n -> Buffer.add_string b (string_of_int n)
      | Histogram h ->
          Buffer.add_string b
            (Printf.sprintf
               "{\"count\":%d,\"sum\":%.6g,\"min\":%.6g,\"max\":%.6g}"
               h.h_count h.h_sum h.h_min h.h_max))
    (dump t);
  Buffer.add_char b '}';
  Buffer.contents b
