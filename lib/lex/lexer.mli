(** A small hand-rolled tokenizer and token-stream reader shared by the
    ODL, OQL and SQL front ends.

    The tokenizer knows nothing about keywords: parsers test identifiers
    case-insensitively with {!Stream.eat_kw} / {!Stream.peek_kw}, so the
    same machinery serves all three languages. *)

type token =
  | Ident of string  (** identifier, case preserved *)
  | Int of int
  | Float of float
  | Str of string  (** string literal, quotes and escapes resolved *)
  | Punct of string  (** one of the punctuation strings given to {!tokenize} *)

val pp_token : Format.formatter -> token -> unit
val token_to_string : token -> string

exception Error of string * int
(** [Error (message, offset)]: lexing or parsing error with the character
    offset in the input at which it occurred. *)

val error : int -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [error offset fmt ...] raises {!Error} with a formatted message. *)

val tokenize : puncts:string list -> string -> (token * int) list
(** [tokenize ~puncts input] splits [input] into tokens paired with their
    character offsets. [puncts] lists the multi- and single-character
    punctuation tokens of the language (matched longest-first). Comments
    of both [// ...] and [-- ...] (to end of line) and [/* ... */] forms
    are skipped. String literals use double or single quotes with [\\]
    escapes. Raises {!Error} on malformed input. *)

(** Imperative token-stream reader used by the recursive-descent
    parsers. *)
module Stream : sig
  type t

  val of_tokens : (token * int) list -> t
  val of_string : puncts:string list -> string -> t

  val pos : t -> int
  (** Character offset of the current token (or of end of input). *)

  val peek : t -> token option
  val peek2 : t -> token option
  (** One token of lookahead past the current token. *)

  val next : t -> token
  (** Consume and return the current token. Raises {!Error} at end of
      input. *)

  val at_end : t -> bool

  val save : t -> int
  (** Snapshot the cursor for backtracking. *)

  val restore : t -> int -> unit
  (** Reset the cursor to a snapshot taken with {!save}. *)

  val eat_punct : t -> string -> unit
  (** Consume the given punctuation token or raise {!Error}. *)

  val try_punct : t -> string -> bool
  (** Consume the punctuation token if it is next; report whether it was. *)

  val peek_punct : t -> string -> bool

  val eat_kw : t -> string -> unit
  (** Consume the given keyword (case-insensitive identifier) or raise
      {!Error}. *)

  val try_kw : t -> string -> bool
  val peek_kw : t -> string -> bool

  val ident : t -> string
  (** Consume an identifier or raise {!Error}. *)

  val expect_end : t -> unit
  (** Raise {!Error} unless all input has been consumed. *)

  val failf : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
  (** Raise {!Error} at the current position. *)
end
