type token =
  | Ident of string
  | Int of int
  | Float of float
  | Str of string
  | Punct of string

let pp_token ppf = function
  | Ident s -> Fmt.pf ppf "identifier %s" s
  | Int i -> Fmt.pf ppf "integer %d" i
  | Float f -> Fmt.pf ppf "float %g" f
  | Str s -> Fmt.pf ppf "string %S" s
  | Punct s -> Fmt.pf ppf "'%s'" s

let token_to_string t = Fmt.str "%a" pp_token t

exception Error of string * int

let error pos fmt = Format.kasprintf (fun s -> raise (Error (s, pos))) fmt

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize ~puncts input =
  let puncts =
    List.sort (fun a b -> Int.compare (String.length b) (String.length a)) puncts
  in
  let len = String.length input in
  let buf = Buffer.create 32 in
  let rec skip_space i =
    if i >= len then i
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> skip_space (i + 1)
      | '/' when i + 1 < len && input.[i + 1] = '/' -> skip_space (line_end i)
      | '-' when i + 1 < len && input.[i + 1] = '-' -> skip_space (line_end i)
      | '/' when i + 1 < len && input.[i + 1] = '*' -> skip_space (block_end (i + 2))
      | _ -> i
  and line_end i = if i >= len || input.[i] = '\n' then i else line_end (i + 1)
  and block_end i =
    if i + 1 >= len then error i "unterminated block comment"
    else if input.[i] = '*' && input.[i + 1] = '/' then i + 2
    else block_end (i + 1)
  in
  let match_punct i =
    List.find_opt
      (fun p ->
        let n = String.length p in
        i + n <= len && String.equal (String.sub input i n) p)
      puncts
  in
  let read_string quote i =
    Buffer.clear buf;
    let rec go j =
      if j >= len then error i "unterminated string literal"
      else if input.[j] = quote then (Str (Buffer.contents buf), j + 1)
      else if input.[j] = '\\' && j + 1 < len then (
        (match input.[j + 1] with
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | c -> Buffer.add_char buf c);
        go (j + 2))
      else (
        Buffer.add_char buf input.[j];
        go (j + 1))
    in
    go (i + 1)
  in
  let read_number i =
    let rec digits j = if j < len && is_digit input.[j] then digits (j + 1) else j in
    let j = digits i in
    let j, is_float =
      if j < len && input.[j] = '.' && j + 1 < len && is_digit input.[j + 1]
      then (digits (j + 1), true)
      else (j, false)
    in
    let j, is_float =
      (* exponent part, as printed by %g for large/small floats *)
      if j < len && (input.[j] = 'e' || input.[j] = 'E') then
        let k = if j + 1 < len && (input.[j + 1] = '+' || input.[j + 1] = '-') then j + 2 else j + 1 in
        if k < len && is_digit input.[k] then (digits k, true) else (j, is_float)
      else (j, is_float)
    in
    if is_float then (Float (float_of_string (String.sub input i (j - i))), j)
    else (Int (int_of_string (String.sub input i (j - i))), j)
  in
  let read_ident i =
    let rec go j = if j < len && is_ident_char input.[j] then go (j + 1) else j in
    let j = go i in
    (Ident (String.sub input i (j - i)), j)
  in
  let rec loop acc i =
    let i = skip_space i in
    if i >= len then List.rev acc
    else
      let tok, next =
        if input.[i] = '"' || input.[i] = '\'' then read_string input.[i] i
        else if is_digit input.[i] then read_number i
        else if is_ident_start input.[i] then read_ident i
        else
          match match_punct i with
          | Some p -> (Punct p, i + String.length p)
          | None -> error i "unexpected character %C" input.[i]
      in
      loop ((tok, i) :: acc) next
  in
  loop [] 0

module Stream = struct
  type t = { tokens : (token * int) array; mutable cursor : int; input_len : int }

  let of_tokens toks =
    let tokens = Array.of_list toks in
    let input_len =
      match Array.length tokens with
      | 0 -> 0
      | n -> snd tokens.(n - 1) + 1
    in
    { tokens; cursor = 0; input_len }

  let of_string ~puncts input =
    let s = of_tokens (tokenize ~puncts input) in
    { s with input_len = String.length input }

  let pos s =
    if s.cursor < Array.length s.tokens then snd s.tokens.(s.cursor)
    else s.input_len

  let peek s =
    if s.cursor < Array.length s.tokens then Some (fst s.tokens.(s.cursor))
    else None

  let peek2 s =
    if s.cursor + 1 < Array.length s.tokens then Some (fst s.tokens.(s.cursor + 1))
    else None

  let next s =
    match peek s with
    | Some t ->
        s.cursor <- s.cursor + 1;
        t
    | None -> error (pos s) "unexpected end of input"

  let at_end s = s.cursor >= Array.length s.tokens
  let save s = s.cursor
  let restore s cursor = s.cursor <- cursor

  let failf s fmt = error (pos s) fmt

  let eat_punct s p =
    match peek s with
    | Some (Punct q) when String.equal p q -> ignore (next s)
    | Some t -> failf s "expected '%s', found %s" p (token_to_string t)
    | None -> failf s "expected '%s', found end of input" p

  let try_punct s p =
    match peek s with
    | Some (Punct q) when String.equal p q ->
        ignore (next s);
        true
    | _ -> false

  let peek_punct s p =
    match peek s with Some (Punct q) -> String.equal p q | _ -> false

  let kw_matches kw = function
    | Ident id -> String.lowercase_ascii id = String.lowercase_ascii kw
    | _ -> false

  let eat_kw s kw =
    match peek s with
    | Some t when kw_matches kw t -> ignore (next s)
    | Some t -> failf s "expected keyword %s, found %s" kw (token_to_string t)
    | None -> failf s "expected keyword %s, found end of input" kw

  let try_kw s kw =
    match peek s with
    | Some t when kw_matches kw t ->
        ignore (next s);
        true
    | _ -> false

  let peek_kw s kw = match peek s with Some t -> kw_matches kw t | None -> false

  let ident s =
    match peek s with
    | Some (Ident id) ->
        ignore (next s);
        id
    | Some t -> failf s "expected an identifier, found %s" (token_to_string t)
    | None -> failf s "expected an identifier, found end of input"

  let expect_end s =
    if not (at_end s) then
      failf s "trailing input: %s" (token_to_string (Option.get (peek s)))
end
