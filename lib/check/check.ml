module V = Disco_value.Value
module Otype = Disco_odl.Otype
module Registry = Disco_odl.Registry
module Typemap = Disco_odl.Typemap
module Lexer = Disco_lex.Lexer
module Ast = Disco_oql.Ast
module Parser = Disco_oql.Parser
module Expr = Disco_algebra.Expr
module Compile = Disco_algebra.Compile
module Decompile = Disco_algebra.Decompile
module Rules = Disco_algebra.Rules
module Grammar = Disco_wrapper.Grammar
module Wrapper = Disco_wrapper.Wrapper
module Translate = Disco_wrapper.Translate
module Plan = Disco_physical.Plan

type severity = Warning | Error

type diag = {
  d_code : string;
  d_severity : severity;
  d_path : string;
  d_message : string;
}

type mode = Off | Warn | Enforce

exception Check_error of diag list

let mode_of_string s =
  match String.lowercase_ascii s with
  | "off" -> Some Off
  | "warn" -> Some Warn
  | "enforce" -> Some Enforce
  | _ -> None

let mode_name = function Off -> "off" | Warn -> "warn" | Enforce -> "enforce"
let severity_name = function Warning -> "warning" | Error -> "error"

type t = {
  registry : Registry.t option;
  wrapper_of : (string -> Wrapper.t option) option;
  repo_of : string -> string option;
  repo_known : (string -> bool) option;
}

let make ?registry ?wrapper_of ?(repo_of = fun _ -> None) ?repo_known () =
  { registry; wrapper_of; repo_of; repo_known }

let of_registry ?wrapper_of reg =
  let default_wrapper_of ext =
    match Registry.find_extent reg ext with
    | None -> None
    | Some me -> (
        match Registry.find_object reg me.Registry.me_wrapper with
        | None -> None
        | Some o ->
            Wrapper.of_constructor_args o.Registry.obj_constructor
              o.Registry.obj_args)
  in
  {
    registry = Some reg;
    wrapper_of = Some (Option.value wrapper_of ~default:default_wrapper_of);
    repo_of =
      (fun ext ->
        Option.map
          (fun me -> me.Registry.me_repository)
          (Registry.find_extent reg ext));
    repo_known = Some (fun r -> Registry.find_object reg r <> None);
  }

(* -- diagnostics -- *)

type state = { checker : t; diags : diag list ref }

let render_path rev_path = String.concat "." (List.rev rev_path)

let emit st ~code ~severity ~path fmt =
  Format.kasprintf
    (fun msg ->
      st.diags :=
        {
          d_code = code;
          d_severity = severity;
          d_path = render_path path;
          d_message = msg;
        }
        :: !(st.diags))
    fmt

let error st code path fmt = emit st ~code ~severity:Error ~path fmt
let warn st code path fmt = emit st ~code ~severity:Warning ~path fmt
let errors ds = List.filter (fun d -> d.d_severity = Error) ds
let has_errors ds = List.exists (fun d -> d.d_severity = Error) ds

(* -- the type lattice --

   Only concretely known facts are represented; [Any] silences every
   check downstream of a type the schema cannot determine, so the
   verifier never rejects a tree for lack of information. *)

type ty = Any | Bool | Int | Float | Str | Row of (string * ty) list

let rec ty_of_otype = function
  | Otype.TBool -> Bool
  | Otype.TInt -> Int
  | Otype.TFloat -> Float
  | Otype.TString -> Str
  | Otype.TStruct fields ->
      Row (List.map (fun (n, t) -> (n, ty_of_otype t)) fields)
  | Otype.TVoid | Otype.TInterface _ | Otype.TBag _ | Otype.TSet _
  | Otype.TList _ ->
      Any

let rec ty_of_value = function
  | V.Null | V.Object _ | V.Bag _ | V.Set _ | V.List _ -> Any
  | V.Bool _ -> Bool
  | V.Int _ -> Int
  | V.Float _ -> Float
  | V.String _ -> Str
  | V.Struct fields -> Row (List.map (fun (n, v) -> (n, ty_of_value v)) fields)

let rec lub a b =
  match (a, b) with
  | x, y when x = y -> x
  | (Int | Float), (Int | Float) -> Float
  | Row fa, Row fb ->
      (* union of fields: extents of sibling interfaces contribute their
         common attributes plus each one's extras *)
      let extra = List.filter (fun (n, _) -> not (List.mem_assoc n fa)) fb in
      Row
        (List.map
           (fun (n, t) ->
             match List.assoc_opt n fb with
             | Some t' -> (n, lub t t')
             | None -> (n, t))
           fa
        @ extra)
  | _ -> Any

(* element type of a constant collection *)
let elem_ty_of_value v =
  if not (V.is_collection v) then Any
  else
    match V.elements v with
    | [] -> Any
    | e :: es -> List.fold_left (fun acc x -> lub acc (ty_of_value x)) (ty_of_value e) es

let is_numeric = function Any | Int | Float -> true | _ -> false
let is_string = function Any | Str -> true | _ -> false

(* comparable under [V.numeric_compare]: numerics cross-compare, equal
   kinds compare; a concrete kind mismatch can never be true *)
let comparable a b =
  match (a, b) with
  | Any, _ | _, Any -> true
  | (Int | Float), (Int | Float) -> true
  | x, y -> x = y

let ty_name = function
  | Any -> "unknown"
  | Bool -> "bool"
  | Int -> "int"
  | Float -> "float"
  | Str -> "string"
  | Row _ -> "struct"

let rec resolve ty path =
  match path with
  | [] -> Ok ty
  | f :: rest -> (
      match ty with
      | Any -> Ok Any
      | Row fields -> (
          match List.assoc_opt f fields with
          | Some t -> resolve t rest
          | None -> Result.Error (Printf.sprintf "no attribute %S" f))
      | t ->
          Result.Error
            (Printf.sprintf "component %S descends into a %s" f (ty_name t)))

let path_string p = match p with [] -> "@elem" | _ -> String.concat "." p

let e001 = "DISCO-E001"
let e002 = "DISCO-E002"
let e003 = "DISCO-E003"
let e004 = "DISCO-E004"
let e005 = "DISCO-E005"
let e006 = "DISCO-E006"
let e007 = "DISCO-E007"
let e008 = "DISCO-E008"
let e009 = "DISCO-E009"
let e010 = "DISCO-E010"
let e011 = "DISCO-E011"
let e012 = "DISCO-E012"
let e013 = "DISCO-E013"
let e014 = "DISCO-E014"
let e015 = "DISCO-E015"
let e016 = "DISCO-E016"
let w001 = "DISCO-W001"
let w002 = "DISCO-W002"
let w003 = "DISCO-W003"
let w004 = "DISCO-W004"
let w005 = "DISCO-W005"
let w006 = "DISCO-W006"

(* Every code this module can emit, with a one-line summary. The
   generated doc/diagnostics.md and the analyzer's shared --json schema
   are asserted against this registry, so a new code must be added here
   (a test fails otherwise). *)
let code_registry =
  [
    (e001, Error, "unknown collection: a Get names an unregistered extent");
    ( e002,
      Error,
      "unresolved attribute: an attribute path does not resolve against the \
       concretely known element type" );
    ( e003,
      Error,
      "operand type mismatch: comparison or arithmetic operands are \
       concretely incompatible" );
    ( e004,
      Error,
      "non-constant membership: a Member filter's key set is not a constant \
       collection" );
    ( e005,
      Error,
      "capability violation: a wrapper grammar refuses a submitted subtree, \
       or one submit spans extents served by different wrappers" );
    ( e006,
      Error,
      "not decompilable: the tree cannot round-trip through OQL \
       (decompile, re-parse, re-compile)" );
    ( e007,
      Error,
      "unknown repository: an exec names an unregistered repository or an \
       extent bound elsewhere" );
    (e008, Error, "empty join key list: an equi-join algorithm has no key pairs");
    ( e009,
      Error,
      "binding overlap: the binding-struct field sets of a join's sides \
       intersect, or a struct head binds a field twice" );
    (e010, Error, "unresolvable wrapper: an extent's wrapper cannot be constructed");
    (e011, Error, "schema error: an ODL file fails to load");
    (e012, Error, "parse error: an OQL query fails to parse");
    ( e013,
      Error,
      "type error: an OQL query fails expansion or static typing against \
       the schema" );
    ( e014,
      Error,
      "unknown shard repository: a partitioned extent names a shard \
       repository that is not a registered source" );
    ( e015,
      Error,
      "bad shard key: a partitioned extent's shard key is not a declared \
       scalar attribute of its interface" );
    ( e016,
      Error,
      "bad range boundaries: a range partition's boundaries are unsorted, \
       duplicated, or incomparable" );
    (w001, Warning, "union drift: union members have concretely incompatible element types");
    ( w002,
      Warning,
      "wrapper over-claim: the capability grammar derives a sentence whose \
       translation leaves the grammar, or that the wrapper refuses to \
       execute" );
    ( w003,
      Warning,
      "round-trip drift: the tree decompiles and recompiles, but not to an \
       alpha-equivalent tree" );
    ( w004,
      Warning,
      "semijoin filter not pushable: a second-round membership filter is \
       outside the wrapper grammar" );
    ( w005,
      Warning,
      "heterogeneous shard grammars: the wrappers serving one sharded \
       extent advertise different capability grammars" );
    ( w006,
      Warning,
      "unbacked index advertisement: an indexed wrapper's grammar \
       advertises index-served lookups on an attribute that is undeclared \
       or has no declared index" );
  ]

(* -- typing -- *)

let resolve_attr st path elem p =
  match resolve elem p with
  | Ok t -> t
  | Result.Error msg ->
      error st e002 path "attribute path %s does not resolve: %s"
        (path_string p) msg;
      Any

let rec scalar_ty st path elem (s : Expr.scalar) =
  match s with
  | Expr.Const v -> ty_of_value v
  | Expr.Attr p -> resolve_attr st path elem p
  | Expr.Arith (op, a, b) -> (
      let ta = scalar_ty st path elem a and tb = scalar_ty st path elem b in
      match op with
      | Expr.Add ->
          if is_numeric ta && is_numeric tb then
            if ta = Float || tb = Float then Float else lub ta tb
          else if is_string ta && is_string tb then Str
          else (
            error st e003 path
              "operands of + must be both numeric or both strings, got %s \
               and %s"
              (ty_name ta) (ty_name tb);
            Any)
      | Expr.Sub | Expr.Mul | Expr.Div ->
          if is_numeric ta && is_numeric tb then
            if ta = Float || tb = Float then Float else lub ta tb
          else (
            error st e003 path "arithmetic over non-numbers: %s and %s"
              (ty_name ta) (ty_name tb);
            Any)
      | Expr.Mod ->
          if
            (ta = Int || ta = Any) && (tb = Int || tb = Any)
          then Int
          else (
            error st e003 path "mod requires integer operands, got %s and %s"
              (ty_name ta) (ty_name tb);
            Any))

let rec pred_check st path elem (p : Expr.pred) =
  match p with
  | Expr.True -> ()
  | Expr.Cmp (Expr.Like, a, b) ->
      let ta = scalar_ty st path elem a and tb = scalar_ty st path elem b in
      if not (is_string ta && is_string tb) then
        error st e003 path "like requires string operands, got %s and %s"
          (ty_name ta) (ty_name tb)
  | Expr.Cmp (_, a, b) ->
      let ta = scalar_ty st path elem a and tb = scalar_ty st path elem b in
      if not (comparable ta tb) then
        error st e003 path "comparison between %s and %s can never hold"
          (ty_name ta) (ty_name tb)
  | Expr.Member (s, keys) ->
      let ts = scalar_ty st path elem s in
      if not (V.is_collection keys) then
        error st e004 path
          "membership filter requires a constant collection of keys"
      else
        let tk = elem_ty_of_value keys in
        if not (comparable ts tk) then
          error st e003 path "membership of a %s in a collection of %s"
            (ty_name ts) (ty_name tk)
  | Expr.And (a, b) | Expr.Or (a, b) ->
      pred_check st path elem a;
      pred_check st path elem b
  | Expr.Not a -> pred_check st path elem a

let row_names = function Row fields -> Some (List.map fst fields) | _ -> None

let rec infer st path (e : Expr.expr) : ty =
  match e with
  | Expr.Get name -> (
      match st.checker.registry with
      | None -> Any
      | Some reg -> (
          match Registry.find_extent reg name with
          | None ->
              error st e001 path "collection %S is not a registered extent"
                name;
              Any
          | Some me -> (
              match Registry.attributes_of reg me.Registry.me_interface with
              | attrs ->
                  Row (List.map (fun (n, t) -> (n, ty_of_otype t)) attrs)
              | exception Registry.Odl_error msg ->
                  error st e001 path "extent %S: %s" name msg;
                  Any)))
  | Expr.Data v -> elem_ty_of_value v
  | Expr.Select (inner, p) ->
      let t = infer st ("select" :: path) inner in
      pred_check st ("pred" :: "select" :: path) t p;
      t
  | Expr.Project (inner, attrs) ->
      let t = infer st ("project" :: path) inner in
      Row
        (List.map
           (fun a ->
             ( a,
               match resolve t [ a ] with
               | Ok ta -> ta
               | Result.Error msg ->
                   error st e002 ("project" :: path)
                     "projected attribute %S does not resolve: %s" a msg;
                   Any ))
           attrs)
  | Expr.Map (inner, Expr.Hscalar s) ->
      let t = infer st ("map" :: path) inner in
      scalar_ty st ("head" :: "map" :: path) t s
  | Expr.Map (inner, Expr.Hstruct fields) ->
      let t = infer st ("map" :: path) inner in
      let rec dup = function
        | [] -> None
        | n :: rest -> if List.mem n rest then Some n else dup rest
      in
      (match dup (List.map fst fields) with
      | Some n ->
          error st e009 ("head" :: "map" :: path)
            "struct head binds field %S twice" n
      | None -> ());
      Row
        (List.map
           (fun (n, s) -> (n, scalar_ty st ("head" :: "map" :: path) t s))
           fields)
  | Expr.Join (l, r, pairs) ->
      let tl = infer st ("l" :: "join" :: path) l
      and tr = infer st ("r" :: "join" :: path) r in
      (match (tl, tr) with
      | Row _, Row _ -> (
          let nl = Option.get (row_names tl)
          and nr = Option.get (row_names tr) in
          match List.filter (fun n -> List.mem n nr) nl with
          | [] -> ()
          | overlap ->
              error st e009 ("join" :: path)
                "binding fields {%s} appear on both sides of the join"
                (String.concat ", " overlap))
      | (Bool | Int | Float | Str), _ | _, (Bool | Int | Float | Str) ->
          error st e009 ("join" :: path)
            "join sides must produce struct elements"
      | _ -> ());
      List.iteri
        (fun i (pl, pr) ->
          let pi = Printf.sprintf "pairs[%d]" i :: "join" :: path in
          let ta = resolve_attr st pi tl pl in
          let tb = resolve_attr st pi tr pr in
          if not (comparable ta tb) then
            error st e003 pi "join key %s : %s against %s : %s"
              (path_string pl) (ty_name ta) (path_string pr) (ty_name tb))
        pairs;
      (match (tl, tr) with
      | Row fl, Row fr ->
          Row (fl @ List.filter (fun (n, _) -> not (List.mem_assoc n fl)) fr)
      | _ -> Any)
  | Expr.Union es ->
      let tys =
        List.mapi
          (fun i m -> infer st (Printf.sprintf "union[%d]" i :: path) m)
          es
      in
      let concrete = List.filter (fun t -> t <> Any) tys in
      (match concrete with
      | first :: rest ->
          List.iter
            (fun t ->
              let drift =
                match (first, t) with
                | Row fa, Row fb ->
                    List.exists
                      (fun (n, ta) ->
                        match List.assoc_opt n fb with
                        | Some tb -> not (comparable ta tb)
                        | None -> false)
                      fa
                | a, b -> not (comparable a b)
              in
              if drift then
                warn st w001 ("union" :: path)
                  "union members have incompatible element types (%s vs %s)"
                  (ty_name first) (ty_name t))
            rest
      | [] -> ());
      if List.exists (fun t -> t = Any) tys then Any
      else (
        match tys with [] -> Any | t :: ts -> List.fold_left lub t ts)
  | Expr.Distinct inner -> infer st ("distinct" :: path) inner
  | Expr.Submit (repo, inner) ->
      infer st (Printf.sprintf "submit(%s)" repo :: path) inner

(* -- capability conformance -- *)

let check_submit st path repo sub =
  let c = st.checker in
  (match c.repo_known with
  | Some known when not (known repo) ->
      error st e007 path "repository %S is not registered" repo
  | _ -> ());
  let extents = Expr.gets sub in
  (match extents with
  | [] -> error st e007 path "exec to %S references no extent" repo
  | _ ->
      List.iter
        (fun ext ->
          match c.repo_of ext with
          | Some r when r <> repo ->
              error st e007 path
                "extent %S is bound to repository %S, not %S" ext r repo
          | _ -> ())
        extents);
  match c.wrapper_of with
  | None -> ()
  | Some wrapper_of -> (
      let resolved =
        List.filter_map
          (fun ext ->
            match wrapper_of ext with
            | Some w -> Some (ext, w)
            | None ->
                (* only a hole in the schema when the extent itself is
                   known; unknown extents already got DISCO-E001 *)
                (match c.registry with
                | Some reg when Registry.find_extent reg ext <> None ->
                    error st e010 path
                      "no wrapper can be resolved for extent %S" ext
                | _ -> ());
                None)
          (List.sort_uniq compare extents)
      in
      match resolved with
      | [] -> ()
      | (_, w0) :: _ -> (
          match
            List.sort_uniq compare
              (List.map (fun (_, w) -> Wrapper.name w) resolved)
          with
          | _ :: _ :: _ as names ->
              error st e005 path
                "one exec spans extents served by different wrappers (%s)"
                (String.concat ", " names)
          | _ ->
              if not (Wrapper.accepts w0 sub) then
                error st e005 path
                  "wrapper %S does not accept the pushed expression %s"
                  (Wrapper.name w0) (Expr.to_string sub)))

(* -- decompilability -- *)

let rec strip_submits (e : Expr.expr) : Expr.expr =
  match e with
  | Expr.Get _ | Expr.Data _ -> e
  | Expr.Select (i, p) -> Expr.Select (strip_submits i, p)
  | Expr.Project (i, a) -> Expr.Project (strip_submits i, a)
  | Expr.Map (i, h) -> Expr.Map (strip_submits i, h)
  | Expr.Join (l, r, pairs) ->
      Expr.Join (strip_submits l, strip_submits r, pairs)
  | Expr.Union es -> Expr.Union (List.map strip_submits es)
  | Expr.Distinct i -> Expr.Distinct (strip_submits i)
  | Expr.Submit (_, i) -> strip_submits i

(* [Project] is semantically the struct-rebuilding [Map]; canonicalize so
   wrapper-split trees (Project pushed, Map kept) compare equal to their
   recompilations *)
let rec project_as_map (e : Expr.expr) : Expr.expr =
  match e with
  | Expr.Get _ | Expr.Data _ -> e
  | Expr.Select (i, p) -> Expr.Select (project_as_map i, p)
  | Expr.Project (i, attrs) ->
      Expr.Map
        ( project_as_map i,
          Expr.Hstruct (List.map (fun a -> (a, Expr.Attr [ a ])) attrs) )
  | Expr.Map (i, h) -> Expr.Map (project_as_map i, h)
  | Expr.Join (l, r, pairs) ->
      Expr.Join (project_as_map l, project_as_map r, pairs)
  | Expr.Union es -> Expr.Union (List.map project_as_map es)
  | Expr.Distinct i -> Expr.Distinct (project_as_map i)
  | Expr.Submit (r, i) -> Expr.Submit (r, project_as_map i)

let rec contains_member_pred (p : Expr.pred) =
  match p with
  | Expr.Member _ -> true
  | Expr.And (a, b) | Expr.Or (a, b) ->
      contains_member_pred a || contains_member_pred b
  | Expr.Not a -> contains_member_pred a
  | Expr.True | Expr.Cmp _ -> false

(* [Member] decompiles to an existential the algebra compiler does not
   accept back (it only ever arises from runtime semijoin reduction), and
   constant [Data] collections print as value literals OQL cannot always
   re-read; for such trees only decompilation itself is required *)
let rec roundtrip_exempt (e : Expr.expr) =
  match e with
  | Expr.Get _ -> false
  | Expr.Data _ -> true
  | Expr.Select (i, p) -> contains_member_pred p || roundtrip_exempt i
  | Expr.Project (i, _) | Expr.Map (i, _) | Expr.Distinct i
  | Expr.Submit (_, i) ->
      roundtrip_exempt i
  | Expr.Join (l, r, _) -> roundtrip_exempt l || roundtrip_exempt r
  | Expr.Union es -> List.exists roundtrip_exempt es

(* α-canonicalization: rename binding variables (the fields of pure
   binding structs) positionally, in order of first occurrence *)
let alpha_rename (e : Expr.expr) : Expr.expr =
  let order = ref [] in
  let rec collect (e : Expr.expr) =
    match e with
    | Expr.Map (i, Expr.Hstruct [ (v, Expr.Attr []) ]) ->
        collect i;
        if not (List.mem v !order) then order := v :: !order
    | Expr.Get _ | Expr.Data _ -> ()
    | Expr.Select (i, _) | Expr.Project (i, _) | Expr.Map (i, _)
    | Expr.Distinct i
    | Expr.Submit (_, i) ->
        collect i
    | Expr.Join (l, r, _) ->
        collect l;
        collect r
    | Expr.Union es -> List.iter collect es
  in
  collect e;
  let vars = List.rev !order in
  let renaming =
    List.mapi (fun i v -> (v, Printf.sprintf "\xce\xb1%d" i)) vars
  in
  let ren v = match List.assoc_opt v renaming with Some v' -> v' | None -> v in
  let ren_path = function h :: rest -> ren h :: rest | [] -> [] in
  let rec ren_scalar (s : Expr.scalar) =
    match s with
    | Expr.Attr p -> Expr.Attr (ren_path p)
    | Expr.Const _ -> s
    | Expr.Arith (op, a, b) -> Expr.Arith (op, ren_scalar a, ren_scalar b)
  in
  let rec ren_pred (p : Expr.pred) =
    match p with
    | Expr.True -> p
    | Expr.Cmp (op, a, b) -> Expr.Cmp (op, ren_scalar a, ren_scalar b)
    | Expr.Member (s, keys) -> Expr.Member (ren_scalar s, keys)
    | Expr.And (a, b) -> Expr.And (ren_pred a, ren_pred b)
    | Expr.Or (a, b) -> Expr.Or (ren_pred a, ren_pred b)
    | Expr.Not a -> Expr.Not (ren_pred a)
  in
  let ren_head (h : Expr.head) =
    match h with
    | Expr.Hstruct [ (v, Expr.Attr []) ] ->
        Expr.Hstruct [ (ren v, Expr.Attr []) ]
    | Expr.Hstruct fields ->
        Expr.Hstruct (List.map (fun (n, s) -> (n, ren_scalar s)) fields)
    | Expr.Hscalar s -> Expr.Hscalar (ren_scalar s)
  in
  let rec go (e : Expr.expr) : Expr.expr =
    match e with
    | Expr.Get _ | Expr.Data _ -> e
    | Expr.Select (i, p) -> Expr.Select (go i, ren_pred p)
    | Expr.Project (i, a) -> Expr.Project (go i, a)
    | Expr.Map (i, h) -> Expr.Map (go i, ren_head h)
    | Expr.Join (l, r, pairs) ->
        Expr.Join
          ( go l,
            go r,
            List.map (fun (a, b) -> (ren_path a, ren_path b)) pairs )
    | Expr.Union es -> Expr.Union (List.map go es)
    | Expr.Distinct i -> Expr.Distinct (go i)
    | Expr.Submit (r, i) -> Expr.Submit (r, go i)
  in
  go e

let canon e =
  alpha_rename
    (Rules.normalize ~can_push:Rules.push_none (project_as_map e))

let check_roundtrip st path e =
  match Decompile.decompile e with
  | exception Decompile.Not_decompilable msg ->
      error st e006 path "not decompilable to OQL: %s" msg
  | q ->
      if not (roundtrip_exempt e) then (
        let text = Ast.to_string q in
        match Parser.parse text with
        | exception Lexer.Error (msg, pos) ->
            error st e006 path
              "decompiled OQL %S does not re-parse: %s (at %d)" text msg pos
        | q' -> (
            match Compile.compile q' with
            | Result.Error msg ->
                error st e006 path
                  "decompiled OQL %S does not recompile: %s" text msg
            | Ok e' ->
                let c0 = canon (strip_submits e)
                and c1 = canon (strip_submits e') in
                if not (Expr.equal c0 c1) then
                  warn st w003 path
                    "round-trip drift: recompiled tree is not α-equivalent \
                     (%s vs %s)"
                    (Expr.to_string c0) (Expr.to_string c1)))

(* -- entry points -- *)

let finish st = List.rev !(st.diags)

let check_expr_st st e =
  ignore (infer st [] e);
  List.iter
    (fun (repo, sub) ->
      check_submit st [ Printf.sprintf "submit(%s)" repo ] repo sub)
    (Expr.submits e);
  check_roundtrip st [] e

let check_expr checker e =
  let st = { checker; diags = ref [] } in
  check_expr_st st e;
  finish st

(* the membership filter the runtime will push on a semijoin's second
   round; key sets are only known at run time, so probe with an empty bag
   (token-wise a [CONST] like any other) *)
let semijoin_probe re pairs =
  let member (_, rpath) = Expr.Member (Expr.Attr rpath, V.bag []) in
  match pairs with
  | [] -> re
  | p0 :: rest ->
      Expr.Select
        ( re,
          List.fold_left
            (fun acc p -> Expr.And (acc, member p))
            (member p0) rest )

let check_plan checker plan =
  let st = { checker; diags = ref [] } in
  let rec walk path (p : Plan.plan) =
    match p with
    | Plan.Exec (repo, e) ->
        check_submit st (Printf.sprintf "exec(%s)" repo :: path) repo e
    | Plan.Mk_data _ -> ()
    | Plan.Mk_select (i, _) -> walk ("select" :: path) i
    | Plan.Mk_project (i, _) -> walk ("project" :: path) i
    | Plan.Mk_map (i, _) -> walk ("map" :: path) i
    | Plan.Nested_loop_join (l, r, _) ->
        walk ("l" :: "join" :: path) l;
        walk ("r" :: "join" :: path) r
    | Plan.Hash_join (l, r, pairs) | Plan.Merge_join (l, r, pairs) ->
        if pairs = [] then
          error st e008 ("join" :: path)
            "equi-join algorithm carries no key pairs";
        walk ("l" :: "join" :: path) l;
        walk ("r" :: "join" :: path) r
    | Plan.Semi_join (l, (repo, re), pairs) ->
        let spath = Printf.sprintf "semijoin(%s)" repo :: path in
        if pairs = [] then
          error st e008 spath "semijoin carries no key pairs";
        check_submit st ("r" :: spath) repo re;
        (match st.checker.wrapper_of with
        | Some wrapper_of when pairs <> [] -> (
            let probe = semijoin_probe re pairs in
            match
              List.filter_map wrapper_of
                (List.sort_uniq compare (Expr.gets re))
            with
            | w :: _ when not (Wrapper.accepts w probe) ->
                warn st w004 spath
                  "wrapper %S cannot push the second-round membership \
                   filter; the runtime will ship the unreduced answer"
                  (Wrapper.name w)
            | _ -> ())
        | _ -> ());
        walk ("l" :: spath) l
    | Plan.Mk_union ps ->
        List.iteri
          (fun i sub -> walk (Printf.sprintf "union[%d]" i :: path) sub)
          ps
    | Plan.Mk_shard_merge ps ->
        List.iteri
          (fun i sub -> walk (Printf.sprintf "shardmerge[%d]" i :: path) sub)
          ps
    | Plan.Mk_distinct i -> walk ("distinct" :: path) i
  in
  walk [] plan;
  (* the logical reading of the plan carries the typing and
     decompilability obligations; capability was already checked exec by
     exec above *)
  let logical = Plan.to_logical (Plan.degrade_semi_joins plan) in
  ignore (infer st [] logical);
  check_roundtrip st [] logical;
  finish st

(* -- wrapper-conformance audit -- *)

let const_of_otype = function
  | Otype.TInt -> V.Int 1
  | Otype.TFloat -> V.Float 1.0
  | Otype.TBool -> V.Bool true
  | _ -> V.String "alpha"

let audit_catalog ~extent ~attrs =
  let get = Expr.Get extent in
  let bind v e = Expr.Map (e, Expr.Hstruct [ (v, Expr.Attr []) ]) in
  let names = List.map fst attrs in
  let a1, c1 =
    match attrs with
    | (n, t) :: _ -> (n, const_of_otype t)
    | [] -> ("key", V.String "alpha")
  in
  let eq1 = Expr.Cmp (Expr.Eq, Expr.Attr [ a1 ], Expr.Const c1) in
  let per_attr =
    List.concat_map
      (fun (n, t) ->
        let c = const_of_otype t in
        [
          Expr.Select (get, Expr.Cmp (Expr.Eq, Expr.Attr [ n ], Expr.Const c));
          Expr.Select (get, Expr.Cmp (Expr.Lt, Expr.Attr [ n ], Expr.Const c));
        ]
        @
        if t = Otype.TString then
          [
            Expr.Select
              ( get,
                Expr.Cmp
                  ( Expr.Like,
                    Expr.Attr [ n ],
                    Expr.Const (V.String "%alpha%") ) );
          ]
        else [])
      attrs
  in
  [ get; bind "x" get ]
  @ per_attr
  @ [
      Expr.Select (get, Expr.And (eq1, eq1));
      Expr.Select (get, Expr.Or (eq1, eq1));
      Expr.Select (get, Expr.Not eq1);
      Expr.Select (get, Expr.Member (Expr.Attr [ a1 ], V.bag [ c1 ]));
      Expr.Project (get, [ a1 ]);
      Expr.Project (get, names);
      Expr.Map (get, Expr.Hstruct [ (a1, Expr.Attr [ a1 ]) ]);
      Expr.Map
        ( Expr.Select
            (bind "x" get, Expr.Cmp (Expr.Eq, Expr.Attr [ "x"; a1 ], Expr.Const c1)),
          Expr.Hscalar (Expr.Attr [ "x"; a1 ]) );
      Expr.Distinct get;
      Expr.Distinct (Expr.Project (get, [ a1 ]));
    ]

let audit_wrapper ?source ?(indexed = fun _ -> false) ~extent ~attrs w =
  let st =
    { checker = make (); diags = ref [] }
  in
  (* indexed wrappers advertise index-served lookups as named
     ATTRIBUTE:f terminals; each advertisement must name a declared
     attribute backed by a declared index, or the optimizer will push
     lookups the source answers with a full scan *)
  List.iter
    (fun f ->
      let path = [ Printf.sprintf "wrapper(%s)" (Wrapper.name w) ] in
      if not (List.mem_assoc f attrs) then
        warn st w006 path
          "the grammar advertises index-backed lookups on %S, which extent \
           %s does not declare"
          f extent
      else if not (indexed f) then
        warn st w006 path
          "the grammar advertises index-backed lookups on %s.%s but no \
           declared index backs them"
          extent f)
    (Grammar.named_attributes (Wrapper.functionality w));
  let catalog = audit_catalog ~extent ~attrs in
  let accepted = List.filter (Wrapper.accepts w) catalog in
  if accepted = [] then
    warn st w002
      [ Printf.sprintf "wrapper(%s)" (Wrapper.name w) ]
      "the capability grammar derives none of the audit sentences";
  (* a renaming extent map: translation must keep accepted sentences
     inside the grammar (renaming cannot change the token string shape) *)
  let tmap =
    Typemap.make
      ~collection:(extent ^ "_src", extent)
      (List.map (fun (n, _) -> (n ^ "_src", n)) attrs)
  in
  List.iter
    (fun e ->
      let path =
        [ Printf.sprintf "audit(%s)" (Expr.to_string e) ]
      in
      (match Translate.to_source ~map_of:(fun _ -> tmap) e with
      | translated ->
          if not (Wrapper.accepts w translated) then
            warn st w002 path
              "the translated sentence %s leaves the grammar"
              (Expr.to_string translated)
      | exception Typemap.Map_error msg ->
          warn st w002 path "translation failed: %s" msg);
      match source with
      | None -> ()
      | Some src -> (
          match Wrapper.execute w src e with
          | Ok _ -> ()
          | Result.Error (Wrapper.Refused msg) ->
              warn st w002 path
                "the grammar derives this sentence but the wrapper refuses \
                 it: %s"
                msg
          | Result.Error (Wrapper.Native_error msg) ->
              warn st w002 path
                "the grammar derives this sentence but the source fails on \
                 it: %s"
                msg))
    accepted;
  finish st

(* -- shard-declaration audit -- *)

let audit_shards checker =
  let st = { checker; diags = ref [] } in
  (match checker.registry with
  | None -> ()
  | Some reg ->
      let repo_known =
        match checker.repo_known with
        | Some f -> f
        | None -> fun r -> Registry.find_object reg r <> None
      in
      List.iter
        (fun me ->
          match me.Registry.me_partition with
          | None -> ()
          | Some p ->
              let path = [ Printf.sprintf "extent(%s)" me.Registry.me_name ] in
              (* E014: every shard repository must name a known source *)
              List.iteri
                (fun k shard ->
                  let repo = shard.Disco_shard.Shard.s_repository in
                  if not (repo_known repo) then
                    error st e014
                      (Printf.sprintf "shard[%d]" k :: path)
                      "shard repository %s is not a known source" repo)
                p.Disco_shard.Shard.p_shards;
              (* E015: the shard key must be a declared scalar attribute *)
              (let attrs =
                 try Registry.attributes_of reg me.Registry.me_interface
                 with Registry.Odl_error _ -> []
               in
               match
                 List.assoc_opt p.Disco_shard.Shard.p_key attrs
               with
               | None ->
                   error st e015 path
                     "shard key %s is not an attribute of interface %s"
                     p.Disco_shard.Shard.p_key me.Registry.me_interface
               | Some
                   (Otype.TBool | Otype.TInt | Otype.TFloat | Otype.TString) ->
                   ()
               | Some ty ->
                   error st e015 path
                     "shard key %s has non-scalar type %s; keys must be \
                      bool, int, float or string"
                     p.Disco_shard.Shard.p_key (Otype.to_string ty));
              (* E016: range boundaries must be strictly increasing *)
              (match p.Disco_shard.Shard.p_scheme with
              | Disco_shard.Shard.Hash _ -> ()
              | Disco_shard.Shard.Range bs ->
                  let rec check_sorted i = function
                    | a :: (b :: _ as rest) ->
                        (match V.numeric_compare a b with
                        | Some c when c < 0 -> ()
                        | Some _ ->
                            error st e016 path
                              "range boundaries %a and %a are unsorted or \
                               overlapping (shards %d and %d double-cover)"
                              V.pp a V.pp b i (i + 1)
                        | None ->
                            error st e016 path
                              "range boundaries %a and %a are not comparable"
                              V.pp a V.pp b);
                        check_sorted (i + 1) rest
                    | [ _ ] | [] -> ()
                  in
                  check_sorted 0 bs);
              (* W005: shards answering through wrappers with different
                 capability grammars make pushdown asymmetric: the
                 mediator must plan for the weakest member *)
              match checker.wrapper_of with
              | None -> ()
              | Some wrapper_of -> (
                  let children = Registry.shard_children reg me.Registry.me_name in
                  let grammars =
                    List.filter_map
                      (fun child ->
                        Option.map
                          (fun w -> (Wrapper.name w, Wrapper.functionality w))
                          (wrapper_of child.Registry.me_name))
                      children
                  in
                  match grammars with
                  | [] -> ()
                  | (_, g0) :: rest ->
                      if List.exists (fun (_, g) -> g <> g0) rest then
                        warn st w005 path
                          "shard wrappers advertise heterogeneous grammars \
                           (%s); pushdown degrades to the weakest shard"
                          (String.concat ", "
                             (List.sort_uniq String.compare
                                (List.map fst grammars)))))
        (Registry.all_extents reg));
  finish st

(* -- rendering -- *)

let pp_diag ppf d =
  Format.fprintf ppf "%s %s%s: %s" d.d_code
    (severity_name d.d_severity)
    (if d.d_path = "" then "" else " at " ^ d.d_path)
    d.d_message

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_diags entries =
  let sorted =
    List.sort
      (fun (f1, d1) (f2, d2) ->
        compare
          (f1, d1.d_code, d1.d_path, d1.d_message)
          (f2, d2.d_code, d2.d_path, d2.d_message))
      entries
  in
  let item (file, d) =
    Printf.sprintf
      {|{"file":"%s","code":"%s","severity":"%s","path":"%s","message":"%s"}|}
      (json_escape file) (json_escape d.d_code)
      (severity_name d.d_severity)
      (json_escape d.d_path)
      (json_escape d.d_message)
  in
  "[" ^ String.concat "," (List.map item sorted) ^ "]"
