(** Static verification of logical algebra trees and physical plans.

    The paper's correctness story (Sections 3–4) rests on invariants the
    rest of the system maintains only by convention: every [Submit]
    subtree must stay inside its wrapper's capability grammar after
    rewriting, every logical tree must obey the binding-struct discipline
    so it remains decompilable to OQL (the property partial answers
    depend on), and physical plans must only exec against registered
    repositories. This module proves those invariants on a concrete tree
    or plan, before execution, and reports violations as diagnostics with
    stable codes.

    {b Checks performed.}
    - {e Schema-aware typing} of the logical algebra against an ODL
      registry: [Attr] paths resolve, [Cmp]/[Arith] operand types agree,
      [Member] filters range over constant collections, and the
      binding-struct field sets of the two sides of a [Join] stay
      disjoint. Typing is lenient: only {e concretely known} mismatches
      are reported; anything the schema cannot determine types as
      unknown and is skipped.
    - {e Capability conformance}: {!Disco_wrapper.Grammar.accepts} is
      re-run on every [Submit] / [Exec] subtree, catching rewrites or
      batching that drift outside the wrapper grammar, and all extents of
      one submit must be served by one common wrapper.
    - {e Decompilability}: every checked tree must round-trip
      [Decompile → Oql.parse → Compile] to an α-equivalent tree.
    - {e Physical well-formedness}: exec leaves name registered
      repositories and extents bound to them, equi-join algorithms carry
      at least one key pair, semijoin second-round membership filters are
      pushable to the wrapper.

    {b Diagnostic codes} (stable; [E] = error, [W] = warning):
    - [DISCO-E001] unknown collection: a [Get] names an extent the
      registry does not know.
    - [DISCO-E002] unresolved attribute: an [Attr] path (or [Project]
      attribute, or join key path) does not resolve against the
      concretely known element type.
    - [DISCO-E003] operand type mismatch: [Cmp]/[Arith] operands are
      concretely incompatible ([like] over non-strings, arithmetic over
      non-numbers, comparison across kinds).
    - [DISCO-E004] non-constant membership: a [Member] filter's key set
      is not a constant collection value.
    - [DISCO-E005] capability violation: a wrapper's grammar refuses a
      [Submit]/[Exec] subtree, or one submit spans extents served by
      different wrappers.
    - [DISCO-E006] not decompilable: the tree cannot be decompiled to
      OQL, or the decompiled text fails to re-parse or re-compile.
    - [DISCO-E007] unknown repository: an exec names an unregistered
      repository, an extent bound to a different repository, or no
      extent at all.
    - [DISCO-E008] empty join key list: an equi-join algorithm
      ([Hash_join]/[Merge_join]/[Semi_join]) carries no key pairs.
    - [DISCO-E009] binding overlap: the binding-struct field sets of the
      two sides of a [Join] intersect, a struct head binds a field
      twice, or a join side concretely produces scalar elements.
    - [DISCO-E010] unresolvable wrapper: an extent's wrapper cannot be
      resolved or constructed.
    - [DISCO-E011] schema error: an ODL file fails to load (lint).
    - [DISCO-E012] parse error: an OQL query fails to parse (lint).
    - [DISCO-E013] type error: an OQL query fails expansion or static
      typing against the schema (lint).
    - [DISCO-E014] unknown shard repository: a partitioned extent names
      a shard repository that is not a registered source (shard audit).
    - [DISCO-E015] bad shard key: a partitioned extent's shard key is
      not a declared attribute of its interface, or has a non-scalar
      type (shard audit).
    - [DISCO-E016] bad range boundaries: a range-partitioned extent's
      boundaries are unsorted, duplicated, or mutually incomparable, so
      shards overlap or leave gaps (shard audit).
    - [DISCO-W001] union drift: union members have concretely
      incompatible element types.
    - [DISCO-W002] wrapper over-claim: the capability grammar derives a
      sentence whose translation leaves the grammar, or that the wrapper
      then refuses to execute (conformance audit).
    - [DISCO-W003] round-trip drift: the tree decompiles and recompiles,
      but not to an α-equivalent tree.
    - [DISCO-W004] semijoin filter not pushable: a [Semi_join]'s
      second-round membership filter is outside the wrapper grammar (the
      runtime will fall back to shipping the unreduced answer).
    - [DISCO-W005] heterogeneous shard grammars: the wrappers serving a
      sharded extent's shards advertise different capability grammars,
      so per-shard pushdown degrades to the weakest member (shard
      audit).
    - [DISCO-W006] unbacked index advertisement: an indexed wrapper's
      grammar advertises index-served lookups ([ATTRIBUTE:f] named
      terminals) on an attribute the extent does not declare, or that no
      declared index backs — the optimizer would push lookups the source
      answers with a full scan (conformance audit).

    The whole-federation static analyzer ({!Disco_analysis.Analysis})
    adds [DISCO-Axxx] codes on top of these, sharing this module's
    diagnostic type and JSON rendering. *)

module Otype := Disco_odl.Otype
module Registry := Disco_odl.Registry
module Expr := Disco_algebra.Expr
module Plan := Disco_physical.Plan
module Wrapper := Disco_wrapper.Wrapper
module Source := Disco_source.Source

type severity = Warning | Error

type diag = {
  d_code : string;  (** stable code, e.g. ["DISCO-E005"] *)
  d_severity : severity;
  d_path : string;  (** dotted descent into the tree, e.g. ["join.l.pred"] *)
  d_message : string;
}

(** How callers react to diagnostics: [Off] skips verification entirely,
    [Warn] records violations in metrics and logs, [Enforce] raises
    {!Check_error} on any error-severity diagnostic. *)
type mode = Off | Warn | Enforce

exception Check_error of diag list
(** Raised (by callers in [Enforce] mode) with the error-severity
    diagnostics of a rejected tree. *)

val mode_of_string : string -> mode option
val mode_name : mode -> string

type t
(** A checker: schema plus capability context. Everything is optional —
    what the checker does not know it does not check. *)

val make :
  ?registry:Registry.t ->
  ?wrapper_of:(string -> Wrapper.t option) ->
  ?repo_of:(string -> string option) ->
  ?repo_known:(string -> bool) ->
  unit ->
  t
(** [wrapper_of] and [repo_of] map {e extent} names to the wrapper
    serving them / the repository they are bound to; [repo_known] says
    whether a repository name is registered. Omitted components disable
    the corresponding checks. *)

val of_registry : ?wrapper_of:(string -> Wrapper.t option) -> Registry.t -> t
(** Checker over a registry: extents type by their interfaces, wrappers
    resolve through the extent's wrapper object constructor
    ({!Wrapper.of_constructor}) unless [wrapper_of] overrides, and
    repositories are known when a registry object of that name exists. *)

val check_expr : t -> Expr.expr -> diag list
(** Typing + capability + decompilability over a logical tree.
    Deterministic order; empty means clean. *)

val check_plan : t -> Plan.plan -> diag list
(** Physical well-formedness over the plan, then {!check_expr}-style
    typing and decompilability over
    [Plan.to_logical (Plan.degrade_semi_joins plan)]. *)

val audit_wrapper :
  ?source:Source.t ->
  ?indexed:(string -> bool) ->
  extent:string ->
  attrs:(string * Otype.t) list ->
  Wrapper.t ->
  diag list
(** Wrapper-conformance audit: enumerate a catalog of small expressions
    over [extent]/[attrs], keep the sentences the wrapper's grammar
    derives, and assert each stays inside the grammar after
    {!Disco_wrapper.Translate.to_source} renaming — and, when a [source]
    holding the extent's data is provided, that the wrapper actually
    executes it instead of refusing. Violations are [DISCO-W002]
    over-claims: the grammar advertises capability the wrapper does not
    deliver, which silently degrades pushdown into mediator-side work.

    Indexed wrappers additionally have every named-attribute terminal of
    their grammar ({!Disco_wrapper.Grammar.named_attributes} — how
    [indexed_lookup] advertises index-served productions) checked
    against the extent: an advertised attribute that is not declared in
    [attrs], or for which [indexed] (default: no index information, so
    every advertisement is unbacked) reports no declared index, warns
    [DISCO-W006]. *)

val code_registry : (string * severity * string) list
(** Every diagnostic code this module can emit: [(code, severity,
    one-line summary)], in code order. The generated [doc/diagnostics.md]
    is asserted against this registry (plus the analyzer's [Axxx]
    codes). *)

val audit_shards : t -> diag list
(** Shard-declaration audit over the checker's registry: every
    partitioned extent's shard repositories must be registered sources
    ([DISCO-E014]), its shard key a declared scalar attribute
    ([DISCO-E015]), its range boundaries strictly increasing
    ([DISCO-E016]); shards served through wrappers with structurally
    different grammars warn [DISCO-W005]. Empty without a registry. *)

val errors : diag list -> diag list
(** The error-severity subset, order preserved. *)

val has_errors : diag list -> bool

val pp_diag : Format.formatter -> diag -> unit
(** [DISCO-E005 error at join.l: ...] *)

val severity_name : severity -> string

val json_of_diags : (string * diag) list -> string
(** Machine-readable rendering of [(file, diag)] pairs: a JSON array
    sorted by (file, code, path, message) — stable across runs so future
    tooling can diff lint results. *)
