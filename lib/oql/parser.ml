module V = Disco_value.Value
module Lexer = Disco_lex.Lexer
module Stream = Disco_lex.Lexer.Stream

let puncts =
  [
    "<="; ">="; "!="; "<>"; "="; "<"; ">"; "("; ")"; ","; "."; ":"; "*"; "+";
    "-"; "/"; ";";
  ]

(* Keywords that terminate an expression; used to disambiguate the postfix
   [person*] star from multiplication. *)
let expression_terminators =
  [ "where"; "from"; "and"; "or"; "in"; "order"; "group"; "as" ]

let is_expression_end = function
  | None -> true
  | Some (Lexer.Punct (")" | "," | ";")) -> true
  | Some (Lexer.Ident id) ->
      List.mem (String.lowercase_ascii id) expression_terminators
  | Some _ -> false

(* "distinct" is not reserved: it is only special immediately after
   "select" (handled contextually) and also names the distinct() builtin. *)
let reserved =
  [ "select"; "from"; "where"; "in"; "and"; "or"; "not"; "struct"; "mod"; "as"; "define" ]

let rec parse_query s = parse_or s

and parse_or s =
  let rec go left =
    if Stream.try_kw s "or" then go (Ast.Binop (Ast.Or, left, parse_and s))
    else left
  in
  go (parse_and s)

and parse_and s =
  let rec go left =
    if Stream.try_kw s "and" then go (Ast.Binop (Ast.And, left, parse_cmp s))
    else left
  in
  go (parse_cmp s)

and parse_cmp s =
  let left = parse_add s in
  let op =
    if Stream.try_punct s "=" then Some Ast.Eq
    else if Stream.try_punct s "!=" then Some Ast.Ne
    else if Stream.try_punct s "<>" then Some Ast.Ne
    else if Stream.try_punct s "<=" then Some Ast.Le
    else if Stream.try_punct s ">=" then Some Ast.Ge
    else if Stream.try_punct s "<" then Some Ast.Lt
    else if Stream.try_punct s ">" then Some Ast.Gt
    else if Stream.try_kw s "like" then Some Ast.Like
    else None
  in
  match op with
  | None -> left
  | Some op -> Ast.Binop (op, left, parse_add s)

and parse_add s =
  let rec go left =
    if Stream.try_punct s "+" then go (Ast.Binop (Ast.Add, left, parse_mul s))
    else if Stream.try_punct s "-" then
      go (Ast.Binop (Ast.Sub, left, parse_mul s))
    else left
  in
  go (parse_mul s)

and parse_mul s =
  let rec go left =
    (* A "*" that ends an expression is the subtype-extent star, handled
       in parse_postfix; only treat it as multiplication otherwise. *)
    if Stream.peek_punct s "*" && not (is_expression_end (Stream.peek2 s))
    then (
      Stream.eat_punct s "*";
      go (Ast.Binop (Ast.Mul, left, parse_unary s)))
    else if Stream.try_punct s "/" then
      go (Ast.Binop (Ast.Div, left, parse_unary s))
    else if Stream.try_kw s "mod" then
      go (Ast.Binop (Ast.Mod, left, parse_unary s))
    else left
  in
  go (parse_unary s)

and parse_unary s =
  if Stream.try_kw s "not" then Ast.Unop (Ast.Not, parse_unary s)
  else if Stream.try_punct s "-" then Ast.Unop (Ast.Neg, parse_unary s)
  else if
    Stream.peek_kw s "exists"
    && match Stream.peek2 s with Some (Lexer.Ident _) -> true | _ -> false
  then (
    Stream.eat_kw s "exists";
    parse_quantifier s Ast.Exists)
  else if
    Stream.peek_kw s "for"
    &&
    match Stream.peek2 s with
    | Some (Lexer.Ident kw) -> String.lowercase_ascii kw = "all"
    | _ -> false
  then (
    Stream.eat_kw s "for";
    Stream.eat_kw s "all";
    parse_quantifier s Ast.Forall)
  else parse_postfix s

and parse_quantifier s kind =
  let var = Stream.ident s in
  Stream.eat_kw s "in";
  let coll = parse_cmp s in
  Stream.eat_punct s ":";
  let body = parse_query s in
  Ast.Quant (kind, var, coll, body)

and parse_postfix s =
  let rec go base =
    if Stream.try_punct s "." then go (Ast.Path (base, Stream.ident s))
    else if Stream.peek_punct s "*" && is_expression_end (Stream.peek2 s) then (
      Stream.eat_punct s "*";
      match base with
      | Ast.Ident name -> go (Ast.Extent_star name)
      | _ -> Stream.failf s "'*' may only follow an extent name")
    else base
  in
  go (parse_atom s)

and parse_atom s =
  match Stream.peek s with
  | Some (Lexer.Int i) ->
      ignore (Stream.next s);
      Ast.Const (V.Int i)
  | Some (Lexer.Float f) ->
      ignore (Stream.next s);
      Ast.Const (V.Float f)
  | Some (Lexer.Str str) ->
      ignore (Stream.next s);
      Ast.Const (V.String str)
  | Some (Lexer.Punct "(") ->
      ignore (Stream.next s);
      let q = parse_query s in
      Stream.eat_punct s ")";
      q
  | Some (Lexer.Ident id) -> parse_ident_form s id
  | Some t -> Stream.failf s "unexpected %s" (Lexer.token_to_string t)
  | None -> Stream.failf s "unexpected end of query"

and parse_ident_form s id =
  match String.lowercase_ascii id with
  | "select" ->
      ignore (Stream.next s);
      parse_select s
  | "struct" ->
      ignore (Stream.next s);
      Stream.eat_punct s "(";
      let rec fields acc =
        let name = Stream.ident s in
        Stream.eat_punct s ":";
        let e = parse_query s in
        let acc = (name, e) :: acc in
        if Stream.try_punct s "," then fields acc else List.rev acc
      in
      let fs = if Stream.try_punct s ")" then [] else fields [] in
      if fs <> [] then Stream.eat_punct s ")";
      Ast.Struct_expr fs
  | "bag" | "set" | "list" when Stream.peek2 s = Some (Lexer.Punct "(") ->
      ignore (Stream.next s);
      let kind =
        match String.lowercase_ascii id with
        | "bag" -> Ast.Kbag
        | "set" -> Ast.Kset
        | _ -> Ast.Klist
      in
      Stream.eat_punct s "(";
      let elems = parse_arguments s in
      Ast.Coll_expr (kind, elems)
  | "true" ->
      ignore (Stream.next s);
      Ast.Const (V.Bool true)
  | "false" ->
      ignore (Stream.next s);
      Ast.Const (V.Bool false)
  | "null" | "nil" ->
      ignore (Stream.next s);
      Ast.Const V.Null
  | low when List.mem low reserved ->
      Stream.failf s "unexpected keyword %s" id
  | _ ->
      ignore (Stream.next s);
      if Stream.peek_punct s "(" then (
        Stream.eat_punct s "(";
        let args = parse_arguments s in
        Ast.Call (String.lowercase_ascii id, args))
      else Ast.Ident id

and parse_arguments s =
  if Stream.try_punct s ")" then []
  else
    let rec go acc =
      let e = parse_query s in
      let acc = e :: acc in
      if Stream.try_punct s "," then go acc
      else (
        Stream.eat_punct s ")";
        List.rev acc)
    in
    go []

and parse_select s =
  let distinct = Stream.try_kw s "distinct" in
  let proj = parse_query s in
  Stream.eat_kw s "from";
  let rec bindings acc =
    let var = Stream.ident s in
    Stream.eat_kw s "in";
    let coll = parse_cmp s in
    let acc = (var, coll) :: acc in
    let continues_with_binding () =
      (* Both "," and "and" continue the from-list only when followed by
         "<ident> in"; otherwise they belong to an enclosing expression
         (e.g. the argument list of [union(select ..., bag(...))]). *)
      match (Stream.peek s, Stream.peek2 s) with
      | Some (Lexer.Ident _), Some (Lexer.Ident kw) ->
          String.lowercase_ascii kw = "in"
      | _ -> false
    in
    if Stream.peek_punct s "," then (
      let saved = Stream.save s in
      Stream.eat_punct s ",";
      if continues_with_binding () then bindings acc
      else (
        Stream.restore s saved;
        List.rev acc))
    else if Stream.peek_kw s "and" then (
      (* "and" separates from-bindings when followed by "<ident> in"
         (Section 2.2.3 writes [from x in person0 and y in person1]). *)
      let saved = Stream.save s in
      Stream.eat_kw s "and";
      if continues_with_binding () then bindings acc
      else (
        Stream.restore s saved;
        List.rev acc))
    else List.rev acc
  in
  let from = bindings [] in
  let where = if Stream.try_kw s "where" then Some (parse_query s) else None in
  let order =
    if Stream.try_kw s "order" then (
      Stream.eat_kw s "by";
      let rec keys acc =
        let k = parse_cmp s in
        let dir = if Stream.try_kw s "desc" then Ast.Desc
          else (ignore (Stream.try_kw s "asc"); Ast.Asc)
        in
        let acc = (k, dir) :: acc in
        if Stream.try_punct s "," then keys acc else List.rev acc
      in
      keys [])
    else []
  in
  Ast.Select
    {
      sel_distinct = distinct;
      sel_proj = proj;
      sel_from = from;
      sel_where = where;
      sel_order = order;
    }

let parse_stream s = parse_query s

let parse input =
  let s = Stream.of_string ~puncts input in
  let q = parse_query s in
  ignore (Stream.try_punct s ";");
  Stream.expect_end s;
  q
