(** Recursive-descent parser for the OQL subset of {!Ast}.

    Grammar sketch (precedence low to high):

    {v
    query   := or
    or      := and ("or" and)*
    and     := cmp ("and" cmp)*
    cmp     := add (("="|"!="|"<>"|"<"|"<="|">"|">=") add)?
    add     := mul (("+"|"-") mul)*
    mul     := unary (("*"|"/"|"mod") unary)*
    unary   := "not" unary | "-" unary | postfix
    postfix := atom ("." ident | "*" )*            -- star per Section 2.2.1
    atom    := literal | ident | call | select | struct | bag/set/list
             | "(" query ")"
    select  := "select" ["distinct"] query
               "from" binding (("," | "and") binding)*
               ["where" query]
    binding := ident "in" postfix-or-parenthesized-query
    v}

    [from] bindings may be separated by [,] or by [and], as the paper
    writes both ([from x in person0 and y in person1], Section 2.2.3). *)

val parse : string -> Ast.query
(** Raises [Disco_lex.Lexer.Error] on malformed input. *)

val parse_stream : Disco_lex.Lexer.Stream.t -> Ast.query
(** Parse one query from an existing stream, leaving trailing tokens. *)

val puncts : string list
(** The punctuation set OQL is tokenized with. *)
