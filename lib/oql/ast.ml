module V = Disco_value.Value

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge | Like
  | And | Or

type unop = Not | Neg

type coll_kind = Kbag | Kset | Klist
type quant = Exists | Forall

type query =
  | Const of V.t
  | Ident of string
  | Extent_star of string
  | Path of query * string
  | Select of select
  | Binop of binop * query * query
  | Unop of unop * query
  | Call of string * query list
  | Struct_expr of (string * query) list
  | Coll_expr of coll_kind * query list
  | Quant of quant * string * query * query

and select = {
  sel_distinct : bool;
  sel_proj : query;
  sel_from : (string * query) list;
  sel_where : query option;
  sel_order : (query * order_dir) list;
}

and order_dir = Asc | Desc

let builtin_functions =
  [
    "union"; "intersect"; "except"; "flatten"; "distinct"; "count"; "sum";
    "avg"; "min"; "max"; "element"; "exists"; "abs";
  ]

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "mod"
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Like -> "like"
  | And -> "and"
  | Or -> "or"

(* Precedence levels for printing with minimal parentheses. *)
let binop_level = function
  | Or -> 1
  | And -> 2
  | Eq | Ne | Lt | Le | Gt | Ge | Like -> 3
  | Add | Sub -> 4
  | Mul | Div | Mod -> 5

let coll_name = function Kbag -> "bag" | Kset -> "set" | Klist -> "list"

let rec pp_level level ppf q =
  match q with
  | Const v -> V.pp ppf v
  | Ident name -> Fmt.string ppf name
  | Extent_star name -> Fmt.pf ppf "%s*" name
  | Path (base, field) -> Fmt.pf ppf "%a.%s" (pp_level 7) base field
  | Binop (op, a, b) ->
      let l = binop_level op in
      (* Comparisons are non-associative in the grammar, so a nested
         comparison on the left must be parenthesized too. *)
      let left_level = if l = 3 then l + 1 else l in
      let body ppf () =
        Fmt.pf ppf "%a %s %a" (pp_level left_level) a (binop_symbol op)
          (pp_level (l + 1)) b
      in
      if l < level then Fmt.pf ppf "(%a)" body () else body ppf ()
  | Unop (Not, a) -> Fmt.pf ppf "not (%a)" (pp_level 0) a
  | Unop (Neg, a) -> Fmt.pf ppf "-%a" (pp_level 6) a
  | Call (f, args) ->
      Fmt.pf ppf "%s(%a)" f (Fmt.list ~sep:(Fmt.any ", ") (pp_level 0)) args
  | Struct_expr fields ->
      let pp_field ppf (n, e) = Fmt.pf ppf "%s: %a" n (pp_level 0) e in
      Fmt.pf ppf "struct(%a)" (Fmt.list ~sep:(Fmt.any ", ") pp_field) fields
  | Coll_expr (kind, elems) ->
      Fmt.pf ppf "%s(%a)" (coll_name kind)
        (Fmt.list ~sep:(Fmt.any ", ") (pp_level 0))
        elems
  | Quant (kind, var, coll, body) ->
      (* the body runs to the end of the expression, so anything but a
         top-level occurrence is parenthesized for a faithful reparse *)
      let word = match kind with Exists -> "exists" | Forall -> "for all" in
      let print ppf () =
        Fmt.pf ppf "%s %s in %a : %a" word var (pp_level 1) coll (pp_level 0)
          body
      in
      if level > 0 then Fmt.pf ppf "(%a)" print () else print ppf ()
  | Select sel ->
      let body ppf () =
        Fmt.pf ppf "select %s%a from %a"
          (if sel.sel_distinct then "distinct " else "")
          (pp_level 0) sel.sel_proj
          (Fmt.list ~sep:(Fmt.any ", ") pp_from_binding)
          sel.sel_from;
        (match sel.sel_where with
        | None -> ()
        | Some w -> Fmt.pf ppf " where %a" (pp_level 0) w);
        match sel.sel_order with
        | [] -> ()
        | keys ->
            let pp_key ppf (k, dir) =
              Fmt.pf ppf "%a%s" (pp_level 1) k
                (match dir with Asc -> "" | Desc -> " desc")
            in
            Fmt.pf ppf " order by %a"
              (Fmt.list ~sep:(Fmt.any ", ") pp_key)
              keys
      in
      if level > 0 then Fmt.pf ppf "(%a)" body () else body ppf ()

and pp_from_binding ppf (var, coll) =
  Fmt.pf ppf "%s in %a" var (pp_level 1) coll

let pp ppf q = pp_level 0 ppf q
let to_string q = Fmt.str "%a" pp q
let equal (a : query) (b : query) = a = b

let rec fold_idents f q acc =
  match q with
  | Const _ -> acc
  | Ident name -> f name acc
  | Extent_star name -> f name acc
  | Path (base, _) -> fold_idents f base acc
  | Binop (_, a, b) -> fold_idents f b (fold_idents f a acc)
  | Unop (_, a) -> fold_idents f a acc
  | Call (_, args) -> List.fold_left (fun acc a -> fold_idents f a acc) acc args
  | Struct_expr fields ->
      List.fold_left (fun acc (_, e) -> fold_idents f e acc) acc fields
  | Coll_expr (_, elems) ->
      List.fold_left (fun acc e -> fold_idents f e acc) acc elems
  | Quant (_, _, coll, body) -> fold_idents f body (fold_idents f coll acc)
  | Select sel ->
      let acc =
        List.fold_left (fun acc (_, coll) -> fold_idents f coll acc) acc
          sel.sel_from
      in
      let acc = fold_idents f sel.sel_proj acc in
      let acc =
        Option.fold ~none:acc ~some:(fun w -> fold_idents f w acc)
          sel.sel_where
      in
      List.fold_left (fun acc (k, _) -> fold_idents f k acc) acc sel.sel_order

(* Collect names used as collections (extents or views), respecting the
   scope introduced by [from] bindings. *)
let free_collections q =
  let module S = Set.Make (String) in
  let rec go bound q acc =
    match q with
    | Const _ -> acc
    | Ident name -> if S.mem name bound then acc else S.add name acc
    | Extent_star name -> S.add name acc
    | Path (base, _) -> go bound base acc
    | Binop (_, a, b) -> go bound b (go bound a acc)
    | Unop (_, a) -> go bound a acc
    | Call (_, args) -> List.fold_left (fun acc a -> go bound a acc) acc args
    | Struct_expr fields ->
        List.fold_left (fun acc (_, e) -> go bound e acc) acc fields
    | Coll_expr (_, elems) ->
        List.fold_left (fun acc e -> go bound e acc) acc elems
    | Quant (_, var, coll, body) ->
        let acc = go bound coll acc in
        go (S.add var bound) body acc
    | Select sel ->
        let bound', acc =
          List.fold_left
            (fun (bound, acc) (var, coll) ->
              let acc = go bound coll acc in
              (S.add var bound, acc))
            (bound, acc) sel.sel_from
        in
        let acc = go bound' sel.sel_proj acc in
        let acc =
          Option.fold ~none:acc ~some:(fun w -> go bound' w acc) sel.sel_where
        in
        List.fold_left (fun acc (k, _) -> go bound' k acc) acc sel.sel_order
  in
  S.elements (go S.empty q S.empty)
