module V = Disco_value.Value

exception Eval_error of string

let eval_error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

type env = {
  vars : (string * V.t) list;  (* innermost first *)
  resolve : string -> V.t option;
  interface_names : string list;
}

let env ?(resolve = fun _ -> None) ?(interface_names = []) () =
  { vars = []; resolve; interface_names }

let with_binding e name v = { e with vars = (name, v) :: e.vars }

let truthy = function V.Bool b -> b | _ -> false

let lookup e name =
  match List.assoc_opt name e.vars with
  | Some v -> Some v
  | None -> (
      match e.resolve name with
      | Some v -> Some v
      | None ->
          if List.mem name e.interface_names then Some (V.String name)
          else None)

let arith op a b =
  match (a, b) with
  | V.Null, _ | _, V.Null -> V.Null
  | V.Int x, V.Int y -> (
      match op with
      | Ast.Add -> V.Int (x + y)
      | Ast.Sub -> V.Int (x - y)
      | Ast.Mul -> V.Int (x * y)
      | Ast.Div ->
          if y = 0 then eval_error "division by zero" else V.Int (x / y)
      | Ast.Mod ->
          if y = 0 then eval_error "modulo by zero" else V.Int (x mod y)
      | _ -> assert false)
  | V.String x, V.String y when op = Ast.Add -> V.String (x ^ y)
  | (V.Int _ | V.Float _), (V.Int _ | V.Float _) -> (
      let x = V.to_float a and y = V.to_float b in
      match op with
      | Ast.Add -> V.Float (x +. y)
      | Ast.Sub -> V.Float (x -. y)
      | Ast.Mul -> V.Float (x *. y)
      | Ast.Div ->
          if y = 0.0 then eval_error "division by zero" else V.Float (x /. y)
      | Ast.Mod -> eval_error "modulo requires integers"
      | _ -> assert false)
  | _ ->
      eval_error "arithmetic on %s and %s" (V.type_name a) (V.type_name b)

let compare_vals op a b =
  match V.numeric_compare a b with
  | None ->
      eval_error "cannot compare %s with %s" (V.type_name a) (V.type_name b)
  | Some c ->
      V.Bool
        (match op with
        | Ast.Eq -> c = 0
        | Ast.Ne -> c <> 0
        | Ast.Lt -> c < 0
        | Ast.Le -> c <= 0
        | Ast.Gt -> c > 0
        | Ast.Ge -> c >= 0
        | _ -> assert false)

let rec eval e q =
  match q with
  | Ast.Const v -> v
  | Ast.Ident name -> (
      match lookup e name with
      | Some v -> v
      | None -> eval_error "unbound name %s" name)
  | Ast.Extent_star name -> (
      (* The mediator resolves [person*] before local evaluation; a
         resolver may still supply it directly (keyed with the star). *)
      match lookup e (name ^ "*") with
      | Some v -> v
      | None -> eval_error "unresolved subtype extent %s*" name)
  | Ast.Path (base, field) -> (
      let v = eval e base in
      try V.field v field
      with V.Type_error m -> eval_error "%s" m)
  | Ast.Binop (Ast.And, a, b) ->
      V.Bool (truthy (eval e a) && truthy (eval e b))
  | Ast.Binop (Ast.Or, a, b) ->
      V.Bool (truthy (eval e a) || truthy (eval e b))
  | Ast.Binop (((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod) as op), a, b)
    ->
      arith op (eval e a) (eval e b)
  | Ast.Binop (Ast.Like, a, b) -> (
      match (eval e a, eval e b) with
      | V.String str, V.String pattern -> V.Bool (V.like_match ~pattern str)
      | V.Null, _ | _, V.Null -> V.Bool false
      | va, vb ->
          eval_error "like requires strings, got %s and %s" (V.type_name va)
            (V.type_name vb))
  | Ast.Binop (op, a, b) -> compare_vals op (eval e a) (eval e b)
  | Ast.Unop (Ast.Not, a) -> V.Bool (not (truthy (eval e a)))
  | Ast.Unop (Ast.Neg, a) -> (
      match eval e a with
      | V.Int i -> V.Int (-i)
      | V.Float f -> V.Float (-.f)
      | V.Null -> V.Null
      | v -> eval_error "cannot negate a %s" (V.type_name v))
  | Ast.Call (f, args) -> eval_call e f (List.map (eval e) args)
  | Ast.Struct_expr fields ->
      V.strct (List.map (fun (n, q) -> (n, eval e q)) fields)
  | Ast.Coll_expr (kind, elems) -> (
      let vs = List.map (eval e) elems in
      match kind with
      | Ast.Kbag -> V.bag vs
      | Ast.Kset -> V.set vs
      | Ast.Klist -> V.list vs)
  | Ast.Select sel -> eval_select e sel
  | Ast.Quant (kind, var, coll_q, body) -> (
      let coll = eval e coll_q in
      if not (V.is_collection coll) then
        eval_error "quantifier over a %s" (V.type_name coll)
      else
        let holds v = truthy (eval (with_binding e var v) body) in
        match kind with
        | Ast.Exists -> V.Bool (List.exists holds (V.elements coll))
        | Ast.Forall -> V.Bool (List.for_all holds (V.elements coll)))

and eval_call _e f args =
  let one name = function
    | [ v ] -> v
    | args -> eval_error "%s expects 1 argument, got %d" name (List.length args)
  in
  let collection name v =
    if V.is_collection v then v
    else eval_error "%s expects a collection, got %s" name (V.type_name v)
  in
  try
    match (f, args) with
    | "union", [] -> V.bag []
    | "union", first :: rest ->
        List.fold_left V.bag_union (collection "union" first) rest
    | "intersect", [ a; b ] -> V.inter a b
    | "except", [ a; b ] -> V.diff a b
    | "flatten", args -> V.flatten (collection "flatten" (one "flatten" args))
    | "distinct", args -> V.distinct (collection "distinct" (one "distinct" args))
    | "count", args -> V.agg_count (collection "count" (one "count" args))
    | "sum", args -> V.agg_sum (collection "sum" (one "sum" args))
    | "avg", args -> V.agg_avg (collection "avg" (one "avg" args))
    | "min", args -> V.agg_min (collection "min" (one "min" args))
    | "max", args -> V.agg_max (collection "max" (one "max" args))
    | "element", args -> (
        match V.elements (collection "element" (one "element" args)) with
        | [ v ] -> v
        | vs -> eval_error "element of a collection of %d" (List.length vs))
    | "exists", args ->
        V.Bool (V.cardinal (collection "exists" (one "exists" args)) > 0)
    | "abs", args -> (
        match one "abs" args with
        | V.Int i -> V.Int (abs i)
        | V.Float x -> V.Float (Float.abs x)
        | V.Null -> V.Null
        | v -> eval_error "abs of a %s" (V.type_name v))
    | name, _ -> eval_error "unknown function %s" name
  with V.Type_error m -> eval_error "%s" m

and eval_select e sel =
  let rows = ref [] in
  (* Dependent join: each binding's collection may reference variables
     bound by earlier bindings. Rows carry their sort keys so [order by]
     sees the binding environment, not just the projection. *)
  let rec loop e = function
    | [] ->
        let keep =
          match sel.sel_where with
          | None -> true
          | Some w -> truthy (eval e w)
        in
        if keep then
          let keys =
            List.map (fun (k, dir) -> (eval e k, dir)) sel.sel_order
          in
          rows := (eval e sel.sel_proj, keys) :: !rows
    | (var, coll_q) :: rest ->
        let coll = eval e coll_q in
        if not (V.is_collection coll) then
          eval_error "from-clause of %s ranges over a %s" var
            (V.type_name coll);
        List.iter
          (fun v -> loop (with_binding e var v) rest)
          (V.elements coll)
  in
  loop e sel.sel_from;
  let collected = List.rev !rows in
  match sel.sel_order with
  | [] ->
      let values = List.map fst collected in
      if sel.sel_distinct then V.set values else V.bag values
  | _ ->
      let cmp (_, ka) (_, kb) =
        let rec go ka kb =
          match (ka, kb) with
          | [], [] -> 0
          | (va, dir) :: ra, (vb, _) :: rb ->
              let c = V.compare va vb in
              let c = match dir with Ast.Asc -> c | Ast.Desc -> -c in
              if c <> 0 then c else go ra rb
          | _ -> 0
        in
        go ka kb
      in
      let sorted = List.stable_sort cmp collected in
      let values = List.map fst sorted in
      let values =
        if sel.sel_distinct then
          (* distinct keeps the first occurrence, preserving order *)
          let seen = ref [] in
          List.filter
            (fun v ->
              if List.exists (V.equal v) !seen then false
              else (
                seen := v :: !seen;
                true))
            values
        else values
      in
      V.list values

let eval_string e input = eval e (Parser.parse input)
