(** Abstract syntax of the OQL subset used by Disco mediators.

    The language covers everything the paper exercises: select-from-where
    with dependent [from] clauses, struct and collection constructors,
    [union] / [flatten] / aggregate calls, correlated subqueries in
    projections, path expressions, the [person*] subtype-extent syntax
    (Section 2.2.1), and comparison of meta-data attributes against
    interface names (Section 2.1's [x.interface = Person]).

    OQL is closed: answers are expressions too (Section 4, "both queries
    and answers are simply expressions"), which is what makes partial
    answers representable. {!Const} embeds any ODMG value, so a fully
    evaluated query is just a [Const]. *)

module V := Disco_value.Value

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge | Like
  | And | Or

type unop = Not | Neg

type coll_kind = Kbag | Kset | Klist
type quant = Exists | Forall

type query =
  | Const of V.t
  | Ident of string
      (** variable, extent, view, or interface name in scope *)
  | Extent_star of string  (** [person*]: extents of the subtype closure *)
  | Path of query * string  (** [x.name] *)
  | Select of select
  | Binop of binop * query * query
  | Unop of unop * query
  | Call of string * query list
      (** built-ins: [union], [intersect], [except], [flatten],
          [distinct], [count], [sum], [avg], [min], [max], [element],
          [exists], [abs] *)
  | Struct_expr of (string * query) list
  | Coll_expr of coll_kind * query list
  | Quant of quant * string * query * query
      (** [exists x in c : p] / [for all x in c : p] *)

and select = {
  sel_distinct : bool;
  sel_proj : query;  (** projection; [Struct_expr] for multi-field *)
  sel_from : (string * query) list;
      (** [(x, coll)] bindings; later collections may reference earlier
          variables (dependent join) *)
  sel_where : query option;
  sel_order : (query * order_dir) list;
      (** [order by] keys over the binding variables; a non-empty list
          makes the result a list instead of a bag/set *)
}

and order_dir = Asc | Desc

val builtin_functions : string list
(** Names recognized in {!Call} position. *)

val pp : Format.formatter -> query -> unit
(** Pretty-prints parseable OQL text. *)

val to_string : query -> string
val equal : query -> query -> bool

val fold_idents : (string -> 'a -> 'a) -> query -> 'a -> 'a
(** Fold over every {!Ident} and {!Extent_star} name, including those
    bound by [from] clauses (callers filter with scope knowledge). *)

val free_collections : query -> string list
(** Names appearing in collection position of [from] clauses or as bare
    identifiers outside any enclosing binding — the extents/views a query
    mentions. Sorted, deduplicated. *)
