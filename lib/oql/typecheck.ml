module V = Disco_value.Value
module Otype = Disco_odl.Otype
module Registry = Disco_odl.Registry

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

type env = {
  vars : (string * Otype.t) list;
  registry : Registry.t;
  view_stack : string list;
}

let env_of_registry registry = { vars = []; registry; view_stack = [] }
let with_var env name ty = { env with vars = (name, ty) :: env.vars }

let metaextent_type =
  Otype.TBag
    (Otype.TStruct
       [
         ("name", Otype.TString);
         ("interface", Otype.TString);
         ("wrapper", Otype.TString);
         ("repository", Otype.TString);
       ])

(* Least upper bound of element types: equal types, numeric widening,
   void as bottom (empty collections / nulls), interfaces joined through
   the subtype hierarchy. *)
let rec lub env a b =
  if Otype.equal a b then a
  else
    match (a, b) with
    | Otype.TVoid, t | t, Otype.TVoid -> t
    | Otype.TInt, Otype.TFloat | Otype.TFloat, Otype.TInt -> Otype.TFloat
    | Otype.TInterface x, Otype.TInterface y ->
        if Registry.subtype_of env.registry ~sub:x ~super:y then
          Otype.TInterface y
        else if Registry.subtype_of env.registry ~sub:y ~super:x then
          Otype.TInterface x
        else
          type_error "interfaces %s and %s have no common supertype" x y
    | Otype.TBag x, Otype.TBag y -> Otype.TBag (lub env x y)
    | Otype.TSet x, Otype.TSet y -> Otype.TSet (lub env x y)
    | Otype.TList x, Otype.TList y -> Otype.TList (lub env x y)
    | Otype.TStruct xs, Otype.TStruct ys
      when List.map fst xs = List.map fst ys ->
        Otype.TStruct
          (List.map2 (fun (n, tx) (_, ty) -> (n, lub env tx ty)) xs ys)
    | _ ->
        type_error "incompatible types %s and %s" (Otype.to_string a)
          (Otype.to_string b)

let rec type_of_value env v =
  match v with
  | V.Null -> Otype.TVoid
  | V.Bool _ -> Otype.TBool
  | V.Int _ -> Otype.TInt
  | V.Float _ -> Otype.TFloat
  | V.String _ -> Otype.TString
  | V.Object { V.oid_class; _ } -> Otype.TInterface oid_class
  | V.Struct fields ->
      Otype.TStruct (List.map (fun (n, x) -> (n, type_of_value env x)) fields)
  | V.Bag xs -> Otype.TBag (element_lub env xs)
  | V.Set xs -> Otype.TSet (element_lub env xs)
  | V.List xs -> Otype.TList (element_lub env xs)

and element_lub env = function
  | [] -> Otype.TVoid
  | x :: rest ->
      List.fold_left
        (fun acc v -> lub env acc (type_of_value env v))
        (type_of_value env x) rest

let is_numeric = function Otype.TInt | Otype.TFloat | Otype.TVoid -> true | _ -> false

let element_of name = function
  | Otype.TBag e | Otype.TSet e | Otype.TList e -> e
  | t -> type_error "%s expects a collection, got %s" name (Otype.to_string t)

(* The interface whose declared extent is [name]. *)
let interface_for_extent_name registry name =
  List.find_opt
    (fun itf ->
      match Registry.find_interface registry itf with
      | Some { Registry.if_declared_extent = Some e; _ } -> String.equal e name
      | _ -> false)
    (Registry.interface_names registry)

let rec resolve_name env name =
  if name = "metaextent" then metaextent_type
  else
    match List.assoc_opt name env.vars with
    | Some ty -> ty
    | None -> (
        match Registry.find_view env.registry name with
        | Some body ->
            if List.mem name env.view_stack then
              type_error "cyclic view definition through %s" name
            else
              let parsed =
                try Parser.parse body
                with Disco_lex.Lexer.Error (m, _) ->
                  type_error "view %s does not parse: %s" name m
              in
              infer
                { env with view_stack = name :: env.view_stack; vars = [] }
                parsed
        | None -> (
            match interface_for_extent_name env.registry name with
            | Some itf -> Otype.TBag (Otype.TInterface itf)
            | None -> (
                match Registry.find_extent env.registry name with
                | Some ext ->
                    Otype.TBag (Otype.TInterface ext.Registry.me_interface)
                | None ->
                    if Registry.find_interface env.registry name <> None then
                      Otype.TString
                    else type_error "unknown name %s" name)))

and attribute_type env base_ty field =
  match base_ty with
  | Otype.TInterface itf -> (
      match
        List.assoc_opt field (Registry.attributes_of env.registry itf)
      with
      | Some ty -> ty
      | None -> type_error "interface %s has no attribute %s" itf field)
  | Otype.TStruct fields -> (
      match List.assoc_opt field fields with
      | Some ty -> ty
      | None -> type_error "struct has no field %s" field)
  | Otype.TVoid -> Otype.TVoid
  | t -> type_error "cannot access .%s on a %s" field (Otype.to_string t)

and infer env q =
  match q with
  | Ast.Const v -> type_of_value env v
  | Ast.Ident name -> resolve_name env name
  | Ast.Extent_star name -> (
      let interface =
        match interface_for_extent_name env.registry name with
        | Some itf -> Some itf
        | None ->
            if Registry.find_interface env.registry name <> None then Some name
            else None
      in
      match interface with
      | Some itf -> Otype.TBag (Otype.TInterface itf)
      | None -> type_error "%s* does not name a type's extent" name)
  | Ast.Path (base, field) -> attribute_type env (infer env base) field
  | Ast.Binop (((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod) as op), a, b)
    -> (
      let ta = infer env a and tb = infer env b in
      match (op, ta, tb) with
      | Ast.Add, Otype.TString, Otype.TString -> Otype.TString
      | _ when is_numeric ta && is_numeric tb -> lub env (lub env ta tb) Otype.TInt
      | _ ->
          type_error "arithmetic on %s and %s" (Otype.to_string ta)
            (Otype.to_string tb))
  | Ast.Binop ((Ast.And | Ast.Or), a, b) ->
      let check side q =
        match infer env q with
        | Otype.TBool | Otype.TVoid -> ()
        | t ->
            type_error "%s operand of a boolean connective is %s" side
              (Otype.to_string t)
      in
      check "left" a;
      check "right" b;
      Otype.TBool
  | Ast.Binop (Ast.Like, a, b) ->
      let check side q =
        match infer env q with
        | Otype.TString | Otype.TVoid -> ()
        | t -> type_error "%s operand of like is %s" side (Otype.to_string t)
      in
      check "left" a;
      check "right" b;
      Otype.TBool
  | Ast.Binop (_, a, b) ->
      (* comparison: operands must share a lub *)
      ignore (lub env (infer env a) (infer env b));
      Otype.TBool
  | Ast.Unop (Ast.Not, a) -> (
      match infer env a with
      | Otype.TBool | Otype.TVoid -> Otype.TBool
      | t -> type_error "not applied to %s" (Otype.to_string t))
  | Ast.Unop (Ast.Neg, a) ->
      let t = infer env a in
      if is_numeric t then lub env t Otype.TInt
      else type_error "cannot negate %s" (Otype.to_string t)
  | Ast.Call (f, args) -> infer_call env f (List.map (infer env) args)
  | Ast.Struct_expr fields ->
      Otype.TStruct (List.map (fun (n, e) -> (n, infer env e)) fields)
  | Ast.Coll_expr (kind, elems) -> (
      let elem =
        List.fold_left
          (fun acc e -> lub env acc (infer env e))
          Otype.TVoid elems
      in
      match kind with
      | Ast.Kbag -> Otype.TBag elem
      | Ast.Kset -> Otype.TSet elem
      | Ast.Klist -> Otype.TList elem)
  | Ast.Quant (_, var, coll, body) -> (
      let elem = element_of "quantifier" (infer env coll) in
      match infer (with_var env var elem) body with
      | Otype.TBool | Otype.TVoid -> Otype.TBool
      | t -> type_error "quantifier body has type %s" (Otype.to_string t))
  | Ast.Select sel ->
      let env' =
        List.fold_left
          (fun env (var, coll) ->
            let elem = element_of ("binding of " ^ var) (infer env coll) in
            with_var env var elem)
          env sel.Ast.sel_from
      in
      (match sel.Ast.sel_where with
      | None -> ()
      | Some w -> (
          match infer env' w with
          | Otype.TBool | Otype.TVoid -> ()
          | t -> type_error "where-clause has type %s" (Otype.to_string t)));
      List.iter (fun (k, _) -> ignore (infer env' k)) sel.Ast.sel_order;
      let proj = infer env' sel.Ast.sel_proj in
      if sel.Ast.sel_order <> [] then Otype.TList proj
      else if sel.Ast.sel_distinct then Otype.TSet proj
      else Otype.TBag proj

and infer_call env f arg_types =
  let one () =
    match arg_types with
    | [ t ] -> t
    | _ -> type_error "%s expects one argument" f
  in
  match f with
  | "union" | "intersect" | "except" ->
      let elem =
        List.fold_left
          (fun acc t -> lub env acc (element_of f t))
          Otype.TVoid arg_types
      in
      Otype.TBag elem
  | "flatten" -> Otype.TBag (element_of f (element_of f (one ())))
  | "distinct" -> Otype.TSet (element_of f (one ()))
  | "count" ->
      ignore (element_of f (one ()));
      Otype.TInt
  | "sum" | "min" | "max" ->
      let elem = element_of f (one ()) in
      if is_numeric elem then lub env elem Otype.TInt
      else type_error "%s over non-numeric %s" f (Otype.to_string elem)
  | "avg" ->
      let elem = element_of f (one ()) in
      if is_numeric elem then Otype.TFloat
      else type_error "avg over non-numeric %s" (Otype.to_string elem)
  | "element" -> element_of f (one ())
  | "exists" ->
      ignore (element_of f (one ()));
      Otype.TBool
  | "abs" ->
      let t = one () in
      if is_numeric t then lub env t Otype.TInt
      else type_error "abs of %s" (Otype.to_string t)
  | name -> type_error "unknown function %s" name

let check env q =
  match infer env q with
  | ty -> Ok ty
  | exception Type_error m -> Error m
