(** Static typing of OQL queries against a mediator schema.

    The checker infers an {!Disco_odl.Otype.t} for a query given the
    schema registry: extents type as bags of their interface, views type
    as their bodies, [metaextent] as the meta-schema bag, and interface
    names used as values as strings (mirroring {!Eval}'s conventions).
    Arithmetic is numeric (int unless a float forces widening), [select]
    yields a bag of its projection type ([select distinct] a set),
    aggregates require numeric element types.

    The mediator runs this before planning when asked
    ([Mediator.query ~static_check:true]); queries over sources with
    mismatched maps fail here instead of at the wrappers. *)

module Otype := Disco_odl.Otype
module Registry := Disco_odl.Registry

exception Type_error of string

type env

val env_of_registry : Registry.t -> env
(** Collection names resolve through views, implicit/declared extents,
    concrete extents (typed by their interface), [metaextent], and
    interface-name constants. *)

val with_var : env -> string -> Otype.t -> env

val infer : env -> Ast.query -> Otype.t
(** Raises {!Type_error} with a readable message on ill-typed queries,
    unknown names or attributes, non-boolean where-clauses, or aggregate
    misuse. *)

val check : env -> Ast.query -> (Otype.t, string) result
(** Exception-free wrapper around {!infer}. *)
