(** The mediator-local OQL evaluator.

    This is the {e reference semantics} of the system: the algebra
    compiler, the rewrite rules and the distributed runtime are all tested
    against it. It evaluates a query given an {!env} that resolves free
    collection names (extents, views, [metaextent]) to values.

    The evaluator performs dependent joins left-to-right over [from]
    bindings, supports correlated subqueries anywhere an expression may
    appear, and implements the paper's conventions: [select] yields a bag,
    [select distinct] a set, [union] of bags is a bag. *)

module V := Disco_value.Value

exception Eval_error of string

type env

val env :
  ?resolve:(string -> V.t option) ->
  ?interface_names:string list ->
  unit ->
  env
(** [resolve name] supplies the value of a free collection name (extent,
    view, or [metaextent]); [interface_names] lists schema type names,
    which evaluate to their own name as a string so that meta-data
    comparisons like [x.interface = Person] work (Section 2.1). *)

val with_binding : env -> string -> V.t -> env
(** Extend the variable scope (innermost wins). *)

val eval : env -> Ast.query -> V.t
(** Raises {!Eval_error} on unbound names, arity errors, or type errors
    (via [Value.Type_error] wrapped into {!Eval_error}). *)

val eval_string : env -> string -> V.t
(** Parse then evaluate. *)

val truthy : V.t -> bool
(** The boolean reading of a where-clause result: [Bool b] is [b]; every
    other value (including [Null]) is false. *)
