(** The long-running serving surface: concurrent query sessions with
    admission control, load shedding and per-tenant fair queueing.

    A server owns a fixed pool of worker threads — the {e in-flight
    admission limit}: at most that many queries execute at once.
    Arrivals beyond the limit queue per tenant, and workers drain the
    tenant queues round-robin so one chatty tenant cannot starve the
    rest. Once the total backlog reaches the queue bound, further
    arrivals are {e shed} with a partial-answer-style rejection carrying
    the whole query as its residual — the client can resubmit it later,
    exactly like a paper-style partial answer whose every source was
    unavailable.

    The server knows nothing about mediators: {!create} takes a worker
    {e factory} so each worker thread builds (or is handed) its own
    replica of whatever executes queries — per-worker state needs no
    locking. Tests inject a factory that blocks on a barrier to observe
    the admission limit deterministically. *)

type reply =
  | Answered of { body : string; elapsed_ms : float }
      (** the worker's answer and its wall-clock service time *)
  | Shed of { residual : string }
      (** rejected at admission: the backlog already held [queue_bound]
          requests.  [residual] is the unserved query, resubmittable
          verbatim. *)
  | Failed of string  (** the worker raised; the message, one line *)

type health = {
  h_workers : int;  (** the in-flight admission limit *)
  h_queued : int;  (** requests admitted but not yet executing *)
  h_inflight : int;  (** requests executing right now *)
  h_completed : int;
  h_shed : int;
  h_errors : int;
}

type t

val create :
  ?inflight:int ->
  ?queue_bound:int ->
  ?metrics:Disco_obs.Metrics.t ->
  worker:(int -> tenant:string -> string -> reply) ->
  unit ->
  t
(** [create ~worker ()] starts [inflight] worker threads (default 4);
    thread [i] executes queries with [worker i ~tenant oql], the factory
    being applied once per worker at thread start. [queue_bound]
    (default 64) caps the admitted-but-waiting backlog. [metrics]
    (default a fresh registry) receives [serve.requests], [serve.shed],
    [serve.completed], [serve.errors] and the [serve.latency_ms]
    histogram; it is also what the [metrics] protocol verb renders.
    Raises [Invalid_argument] on a non-positive [inflight] or negative
    [queue_bound]. *)

val submit : t -> tenant:string -> string -> reply
(** Submit one query and block until its reply. Returns [Shed]
    immediately when the backlog is full, and [Failed] without executing
    when the server is stopping. Safe to call from any thread. *)

val health : t -> health

val metrics : t -> Disco_obs.Metrics.t

val stop : t -> unit
(** Refuse new submissions, let the workers drain the backlog, and join
    them. Idempotent. *)

(** {1 The line protocol}

    One request per line, one reply line per request:
    {v
    query <tenant> <oql...>   ->  ok <elapsed_ms> <answer oql>
                                  shed <residual oql>
                                  error <message>
    health                    ->  ok workers=.. queued=.. inflight=..
                                     completed=.. shed=.. errors=..
    metrics                   ->  ok <metrics json>
    quit                      ->  ok bye            (closes the session)
    shutdown                  ->  ok shutting down  (stops the server)
    v} *)

val serve_tcp : t -> ?host:string -> port:int -> unit -> unit
(** Bind, accept sessions (one thread per connection, requests within a
    session served in order), and block until a [shutdown] verb arrives
    or {!shutdown_requested} fires; then {!stop} the server and return.
    [host] defaults to ["127.0.0.1"]. *)

val shutdown_requested : t -> unit
(** Ask a running {!serve_tcp} loop to wind down (as the [shutdown] verb
    does). Safe from any thread; a no-op when nothing is listening. *)
