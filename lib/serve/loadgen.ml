type transport =
  | Direct of Server.t
  | Tcp of { host : string; port : int }

type result = {
  r_sent : int;
  r_completed : int;
  r_shed : int;
  r_errors : int;
  r_duration_s : float;
  r_qps : float;
  r_p50_ms : float;
  r_p99_ms : float;
  r_p999_ms : float;
}

(* Deterministic 48-bit LCG (the POSIX drand48 constants): the request
   sequence depends only on the seed, never on the global [Random]
   state. *)
let lcg state =
  state := ((!state * 25214903917) + 11) land 0xFFFFFFFFFFFF;
  float_of_int !state /. float_of_int 0x1000000000000

(* Zipf over pool indices: weight 1/(i+1)^s, drawn by inverting the
   cumulative distribution. *)
let zipf_picks ~s ~seed ~n pool_size =
  let weights =
    Array.init pool_size (fun i -> 1.0 /. (float_of_int (i + 1) ** s))
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cum = Array.make pool_size 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cum.(i) <- !acc)
    weights;
  let state = ref (seed + 0x5EED) in
  Array.init n (fun _ ->
      let u = lcg state in
      let rec find i = if i >= pool_size - 1 || u <= cum.(i) then i else find (i + 1) in
      find 0)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

(* One protocol exchange over its own connection. *)
let tcp_once ~host ~port ~tenant oql =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      output_string oc (Printf.sprintf "query %s %s\n" tenant oql);
      flush oc;
      match input_line ic with
      | exception End_of_file -> Server.Failed "connection closed"
      | line ->
          if String.length line >= 3 && String.sub line 0 3 = "ok " then
            Server.Answered { body = line; elapsed_ms = 0.0 }
          else if String.length line >= 5 && String.sub line 0 5 = "shed " then
            Server.Shed
              { residual = String.sub line 5 (String.length line - 5) }
          else Server.Failed line)

let run ?(zipf_s = 1.1) ?(seed = 42) ?(tenants = [ "t0" ]) ~queries ~rate
    ~duration_s transport =
  if Array.length queries = 0 then invalid_arg "Loadgen.run: empty query pool";
  if rate <= 0.0 then invalid_arg "Loadgen.run: rate must be positive";
  if duration_s <= 0.0 then
    invalid_arg "Loadgen.run: duration must be positive";
  if tenants = [] then invalid_arg "Loadgen.run: no tenants";
  let n = max 1 (int_of_float (Float.round (rate *. duration_s))) in
  let picks = zipf_picks ~s:zipf_s ~seed ~n (Array.length queries) in
  let tenant_arr = Array.of_list tenants in
  let lock = Mutex.create () in
  let latencies = ref [] in
  let completed = ref 0 and shed = ref 0 and errors = ref 0 in
  let t_start = Unix.gettimeofday () in
  let fire k =
    let target = t_start +. (float_of_int k /. rate) in
    let delay = target -. Unix.gettimeofday () in
    if delay > 0.0 then Unix.sleepf delay;
    let tenant = tenant_arr.(k mod Array.length tenant_arr) in
    let oql = queries.(picks.(k)) in
    let t0 = Unix.gettimeofday () in
    let reply =
      match transport with
      | Direct server -> Server.submit server ~tenant oql
      | Tcp { host; port } -> (
          try tcp_once ~host ~port ~tenant oql
          with e -> Server.Failed (Printexc.to_string e))
    in
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    Mutex.lock lock;
    (match reply with
    | Server.Answered _ ->
        incr completed;
        latencies := ms :: !latencies
    | Server.Shed _ -> incr shed
    | Server.Failed _ -> incr errors);
    Mutex.unlock lock
  in
  let threads = List.init n (fun k -> Thread.create fire k) in
  List.iter Thread.join threads;
  let duration = Unix.gettimeofday () -. t_start in
  let sorted = Array.of_list !latencies in
  Array.sort compare sorted;
  {
    r_sent = n;
    r_completed = !completed;
    r_shed = !shed;
    r_errors = !errors;
    r_duration_s = duration;
    r_qps = (if duration > 0.0 then float_of_int !completed /. duration else 0.0);
    r_p50_ms = percentile sorted 0.50;
    r_p99_ms = percentile sorted 0.99;
    r_p999_ms = percentile sorted 0.999;
  }

let pp_result ppf r =
  Fmt.pf ppf
    "sent=%d completed=%d shed=%d errors=%d duration=%.2fs qps=%.1f p50=%.2fms \
     p99=%.2fms p999=%.2fms"
    r.r_sent r.r_completed r.r_shed r.r_errors r.r_duration_s r.r_qps r.r_p50_ms
    r.r_p99_ms r.r_p999_ms
