module Metrics = Disco_obs.Metrics

let log_src = Logs.Src.create "disco.serve" ~doc:"Disco serving layer"

module Log = (val Logs.src_log log_src)

type reply =
  | Answered of { body : string; elapsed_ms : float }
  | Shed of { residual : string }
  | Failed of string

type health = {
  h_workers : int;
  h_queued : int;
  h_inflight : int;
  h_completed : int;
  h_shed : int;
  h_errors : int;
}

type pending = {
  q_tenant : string;
  q_oql : string;
  mutable q_reply : reply option;
}

type t = {
  lock : Mutex.t;
  work : Condition.t;  (* new work arrived, or the server is stopping *)
  finished : Condition.t;  (* some pending request got its reply *)
  queues : (string, pending Queue.t) Hashtbl.t;
  mutable rr : string list;
      (* round-robin tenant order: the tenant just served rotates to the
         back, so a chatty tenant cannot starve the others *)
  mutable queued : int;
  mutable inflight : int;
  mutable completed : int;
  mutable shed : int;
  mutable errors : int;
  queue_bound : int;
  n_workers : int;
  mutable stopping : bool;
  mutable workers : Thread.t list;
  mutable listen_fd : Unix.file_descr option;
  metrics : Metrics.t;
}

(* Pop the next request round-robin across tenants.  Caller holds the
   lock. *)
let pick_rr t =
  let rec go seen = function
    | [] -> None
    | tenant :: rest -> (
        match Hashtbl.find_opt t.queues tenant with
        | Some q when not (Queue.is_empty q) ->
            t.rr <- rest @ List.rev seen @ [ tenant ];
            Some (Queue.pop q)
        | _ -> go (tenant :: seen) rest)
  in
  go [] t.rr

let worker_loop t i factory =
  let exec = factory i in
  let rec loop () =
    Mutex.lock t.lock;
    let rec await () =
      match pick_rr t with
      | Some p -> Some p
      | None ->
          if t.stopping then None
          else begin
            Condition.wait t.work t.lock;
            await ()
          end
    in
    match await () with
    | None -> Mutex.unlock t.lock
    | Some p ->
        t.queued <- t.queued - 1;
        t.inflight <- t.inflight + 1;
        Mutex.unlock t.lock;
        let reply =
          try exec ~tenant:p.q_tenant p.q_oql
          with e -> Failed (Printexc.to_string e)
        in
        (match reply with
        | Answered { elapsed_ms; _ } ->
            Metrics.observe t.metrics "serve.latency_ms" elapsed_ms
        | Shed _ | Failed _ -> ());
        Mutex.lock t.lock;
        t.inflight <- t.inflight - 1;
        (match reply with
        | Answered _ ->
            t.completed <- t.completed + 1;
            Metrics.incr t.metrics "serve.completed"
        | Failed _ ->
            t.errors <- t.errors + 1;
            Metrics.incr t.metrics "serve.errors"
        | Shed _ -> ());
        p.q_reply <- Some reply;
        Condition.broadcast t.finished;
        Mutex.unlock t.lock;
        loop ()
  in
  loop ()

let create ?(inflight = 4) ?(queue_bound = 64) ?metrics ~worker () =
  if inflight < 1 then invalid_arg "Server.create: inflight must be positive";
  if queue_bound < 0 then
    invalid_arg "Server.create: queue_bound must be non-negative";
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      queues = Hashtbl.create 8;
      rr = [];
      queued = 0;
      inflight = 0;
      completed = 0;
      shed = 0;
      errors = 0;
      queue_bound;
      n_workers = inflight;
      stopping = false;
      workers = [];
      listen_fd = None;
      metrics =
        (match metrics with Some m -> m | None -> Metrics.create ());
    }
  in
  t.workers <-
    List.init inflight (fun i -> Thread.create (fun () -> worker_loop t i worker) ());
  t

let submit t ~tenant oql =
  Mutex.lock t.lock;
  if t.stopping then begin
    Mutex.unlock t.lock;
    Failed "server is shutting down"
  end
  else if t.queued >= t.queue_bound then begin
    t.shed <- t.shed + 1;
    Metrics.incr t.metrics "serve.shed";
    Mutex.unlock t.lock;
    Log.info (fun m -> m "shed %s query (backlog %d full)" tenant t.queue_bound);
    Shed { residual = oql }
  end
  else begin
    Metrics.incr t.metrics "serve.requests";
    let p = { q_tenant = tenant; q_oql = oql; q_reply = None } in
    let q =
      match Hashtbl.find_opt t.queues tenant with
      | Some q -> q
      | None ->
          let q = Queue.create () in
          Hashtbl.replace t.queues tenant q;
          t.rr <- t.rr @ [ tenant ];
          q
    in
    Queue.push p q;
    t.queued <- t.queued + 1;
    Condition.signal t.work;
    while p.q_reply = None do
      Condition.wait t.finished t.lock
    done;
    Mutex.unlock t.lock;
    Option.get p.q_reply
  end

let health t =
  Mutex.lock t.lock;
  let h =
    {
      h_workers = t.n_workers;
      h_queued = t.queued;
      h_inflight = t.inflight;
      h_completed = t.completed;
      h_shed = t.shed;
      h_errors = t.errors;
    }
  in
  Mutex.unlock t.lock;
  h

let metrics t = t.metrics

let stop t =
  Mutex.lock t.lock;
  t.stopping <- true;
  let workers = t.workers in
  t.workers <- [];
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  List.iter Thread.join workers

(* -- the line protocol -- *)

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let health_line h =
  Printf.sprintf "ok workers=%d queued=%d inflight=%d completed=%d shed=%d errors=%d"
    h.h_workers h.h_queued h.h_inflight h.h_completed h.h_shed h.h_errors

let shutdown_requested t =
  Mutex.lock t.lock;
  let fd = t.listen_fd in
  t.listen_fd <- None;
  Mutex.unlock t.lock;
  (* [Unix.shutdown] on the listening socket forces a thread already
     blocked in [accept] to fail (a bare [close] would leave it blocked
     forever on Linux); the failure is the accept loop's signal to wind
     down. *)
  match fd with
  | Some fd ->
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ()

let handle_session t conn =
  let ic = Unix.in_channel_of_descr conn in
  let oc = Unix.out_channel_of_descr conn in
  let send line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
    | line -> (
        let line = String.trim line in
        let verb, rest =
          match String.index_opt line ' ' with
          | Some i ->
              ( String.sub line 0 i,
                String.trim (String.sub line (i + 1) (String.length line - i - 1))
              )
          | None -> (line, "")
        in
        match (verb, rest) with
        | "query", rest -> (
            match String.index_opt rest ' ' with
            | None -> send "error usage: query <tenant> <oql>"; loop ()
            | Some i ->
                let tenant = String.sub rest 0 i in
                let oql =
                  String.trim (String.sub rest (i + 1) (String.length rest - i - 1))
                in
                (match submit t ~tenant oql with
                | Answered { body; elapsed_ms } ->
                    send (Printf.sprintf "ok %.3f %s" elapsed_ms (one_line body))
                | Shed { residual } -> send ("shed " ^ one_line residual)
                | Failed msg -> send ("error " ^ one_line msg));
                loop ())
        | "health", _ ->
            send (health_line (health t));
            loop ()
        | "metrics", _ ->
            send ("ok " ^ Metrics.to_json t.metrics);
            loop ()
        | "quit", _ -> send "ok bye"
        | "shutdown", _ ->
            send "ok shutting down";
            shutdown_requested t
        | "", _ -> loop ()
        | _ ->
            send "error unknown command";
            loop ())
  in
  loop ()

let serve_tcp t ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 64;
  Mutex.lock t.lock;
  t.listen_fd <- Some fd;
  Mutex.unlock t.lock;
  Log.app (fun m -> m "serving on %s:%d" host port);
  let rec accept_loop () =
    match Unix.accept fd with
    | conn, _ ->
        ignore
          (Thread.create
             (fun () ->
               (try handle_session t conn with _ -> ());
               try Unix.close conn with Unix.Unix_error _ -> ())
             ());
        accept_loop ()
    | exception Unix.Unix_error _ -> ()
    (* listener closed by [shutdown_requested] *)
  in
  accept_loop ();
  shutdown_requested t;
  stop t
