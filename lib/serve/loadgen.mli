(** Open-loop Zipfian load generator — the repo's first wall-clock
    workload driver (EXPERIMENTS.md E15).

    Open loop: arrival [k] fires at [k/rate] seconds after start
    {e regardless} of whether earlier requests completed, so a saturated
    server sees queueing and shedding instead of the coordinated
    omission a closed loop would hide. Queries are drawn from the pool
    Zipf-distributed (skew [zipf_s]) by a deterministic generator —
    same seed, same request sequence. *)

type transport =
  | Direct of Server.t
      (** in-process: each arrival calls {!Server.submit} *)
  | Tcp of { host : string; port : int }
      (** each arrival opens one connection and speaks one
          [query] line of the protocol *)

type result = {
  r_sent : int;
  r_completed : int;
  r_shed : int;
  r_errors : int;
  r_duration_s : float;  (** wall time from first arrival to last reply *)
  r_qps : float;  (** completed answers per second *)
  r_p50_ms : float;
  r_p99_ms : float;
  r_p999_ms : float;
      (** percentiles of completed-request latency (submit to reply),
          wall-clock ms; 0 when nothing completed *)
}

val run :
  ?zipf_s:float ->
  ?seed:int ->
  ?tenants:string list ->
  queries:string array ->
  rate:float ->
  duration_s:float ->
  transport ->
  result
(** [run ~queries ~rate ~duration_s transport] issues
    [rate *. duration_s] arrivals, one thread each, tenants assigned
    round-robin (default a single tenant ["t0"]). [zipf_s] defaults to
    1.1, [seed] to 42. Blocks until every arrival has its reply. Raises
    [Invalid_argument] on an empty pool, non-positive rate or
    duration. *)

val pp_result : Format.formatter -> result -> unit
