(** The mediator run-time system (paper Sections 3.3 and 4).

    Executes a physical plan: [exec] nodes are issued {e in parallel}
    against their sources at the current virtual time; calls to available
    sources complete at [now + latency], calls to unavailable sources
    block. "After a designated time period, query evaluation stops" — the
    runtime classifies sources, folds every answered subtree into data,
    converts the remainder back to a logical expression and then to OQL,
    and returns it as a {!Partial} answer. When every source answers, the
    mediator-side operators run locally and the answer is {!Complete}.

    Each [exec] that completes is recorded in the {!Disco_cost.Cost_model}
    with its elapsed time and row count (Section 3.3). *)

module Expr := Disco_algebra.Expr
module Ast := Disco_oql.Ast
module V := Disco_value.Value

exception Runtime_error of string
(** Raised when a wrapper refuses an expression at run time (a capability
    mismatch the optimizer should have prevented — the mediator retries
    with pushdown disabled), when an extent has no binding, or when a
    run-time type check fails. *)

(** How one extent reaches its data (assembled by the mediator from the
    registry: extent → wrapper object, repository object, map). *)
type binding = {
  b_extent : string;  (** mediator extent name *)
  b_repo : string;  (** primary repository object name *)
  b_source : Disco_source.Source.t;
  b_replicas : (string * Disco_source.Source.t) list;
      (** failover copies tried in order when the primary is down at
          issue time (replication extension; see DESIGN.md §4b) *)
  b_wrapper : Disco_wrapper.Wrapper.t;
  b_map : Disco_odl.Typemap.t;
  b_check : (V.t -> bool) option;
      (** run-time element type check (Section 2.1: "at run-time, the
          wrapper checks that these types are indeed the same") *)
}

type env

(** Deadline-aware retry policy (DESIGN.md §4g).  When attached to
    {!Config.t}, blocked execs do not finalize at issue time: each
    becomes a pending event on the virtual clock, re-polled on
    exponential backoff until it recovers, exhausts [max_attempts], or
    runs out of deadline — a source whose schedule flips up mid-query
    answers instead of forcing a partial answer.  [hedge_ms] additionally
    races a replica against a slow (or timed-out) primary; the first
    completion wins. *)
module Retry : sig
  type t = {
    initial_ms : float;  (** delay before the first re-poll *)
    multiplier : float;  (** backoff factor between re-polls (>= 1) *)
    max_attempts : int;  (** re-polls per exec; 0 disables re-polling *)
    hedge_ms : float option;
        (** when set, an exec whose primary answer would land after
            [issue + hedge_ms] also dials the first live replica at that
            instant and keeps the earlier completion *)
    breaker_threshold : int option;
        (** consecutive failures after which a source's circuit breaker
            opens; [None] disables the breaker *)
    breaker_cooldown_ms : float;
        (** how long an open breaker rejects re-polls/hedges before one
            half-open probe is allowed through *)
  }

  val make :
    ?initial_ms:float ->
    ?multiplier:float ->
    ?max_attempts:int ->
    ?hedge_ms:float ->
    ?breaker_threshold:int ->
    ?breaker_cooldown_ms:float ->
    unit ->
    t
  (** Defaults: 50 ms initial, multiplier 2, 4 attempts, no hedging, no
      breaker, 400 ms cooldown.  Raises [Invalid_argument] on
      non-positive [initial_ms], [multiplier < 1], negative
      [max_attempts]/[hedge_ms]/[breaker_cooldown_ms], or
      [breaker_threshold < 1]. *)

  val default : t
end

(** Per-source circuit breaker state, keyed by source id.  The mediator
    holds one per federation so breaker state persists across queries;
    it only gates re-polls and hedge candidates — the initial issue of
    an exec is never blocked (the first refusal per query must be
    observed to count failures). *)
module Breaker : sig
  type t

  val create : unit -> t

  val snapshot : t -> (string * int * float option) list
  (** [(source id, consecutive failures, opened-at virtual time)] for
      every source the breaker has seen, sorted by id.  [opened_at =
      None] means closed. *)
end

(** Everything the runtime needs besides the bindings, as one record —
    the single configuration surface [Mediator] builds internally. *)
module Config : sig
  type t = {
    clock : Disco_source.Clock.t;
    sched : Disco_source.Scheduler.t option;
        (** the time-and-execution scheduler the env runs on.  [None]
            (the default) wraps [clock] in the deterministic virtual
            scheduler — the historical single-threaded simulation,
            reproduced bit-for-bit.  Pass
            {!Disco_source.Scheduler.wall} to issue each round's
            per-source batches genuinely in parallel on OCaml 5 domains
            with simulated latencies becoming real wall-clock waits;
            [clock] is then unused. *)
    cost : Disco_cost.Cost_model.t;
    cache : Disco_cache.Answer_cache.t option;
        (** semantic answer cache: every completed exec is recorded
            under its (repository, normalized expression) key, and later
            execs whose key is cached at the source's current data
            version are answered without touching the source (shipping 0
            tuples) *)
    serve_stale_ms : float option;
        (** additionally answer execs to {e unavailable} sources from
            cached fragments no older than this — the mediator's
            [Cached_fallback] semantics; without it, blocked execs yield
            partial answers as usual *)
    trace : Disco_obs.Trace.t option;
        (** trace builder to receive one exec span per issued exec; when
            [None] the runtime never consults the cost model for
            predictions, so the untraced path is unchanged *)
    metrics : Disco_obs.Metrics.t;
        (** registry receiving [exec.origin.*], [exec.tuples_shipped],
            [runtime.batch.rounds] and [runtime.batch.dedup_hits] *)
    batch : bool;
        (** batched transport: within a round, structurally identical
            [(repo, expr)] execs are deduplicated (the answer is computed
            once and substituted everywhere), and the remaining execs are
            grouped by destination so each group rides one
            {!Disco_wrapper.Wrapper.execute_batch} round-trip, paying the
            source's [base_ms] (and a single jitter draw) once.  When
            [false], every exec is its own wrapper call — the historical
            transport, reproduced exactly. *)
    check : Disco_check.Check.mode;
        (** the debug gate: {!execute} verifies every plan with the
            static verifier before issuing anything. [Warn] (the
            default) counts violations into [check.violations] /
            [check.warnings] metrics and logs them; [Enforce]
            additionally raises {!Disco_check.Check.Check_error} on any
            error-severity diagnostic, refusing the plan before
            execution; [Off] skips verification *)
    checker : Disco_check.Check.t option;
        (** the checker the gate uses; when [None] one is derived from
            the bindings (wrappers and repositories known, no schema) *)
    retry : Retry.t option;
        (** deadline-aware retry scheduler; [None] (the default) is the
            historical one-shot behavior — blocked execs finalize at
            issue time — reproduced bit-for-bit *)
    breaker : Breaker.t option;
        (** circuit-breaker state to use (and mutate); when [None] a
            fresh table is created per env, so breaker state is
            per-query.  Pass a shared one to persist across queries. *)
  }

  val make :
    ?sched:Disco_source.Scheduler.t ->
    ?cache:Disco_cache.Answer_cache.t ->
    ?serve_stale_ms:float ->
    ?trace:Disco_obs.Trace.t ->
    ?metrics:Disco_obs.Metrics.t ->
    ?batch:bool ->
    ?check:Disco_check.Check.mode ->
    ?checker:Disco_check.Check.t ->
    ?retry:Retry.t ->
    ?breaker:Breaker.t ->
    clock:Disco_source.Clock.t ->
    cost:Disco_cost.Cost_model.t ->
    unit ->
    t
  (** [metrics] defaults to {!Disco_obs.Metrics.default}; [batch]
      defaults to [true]; [check] defaults to [Warn]; [retry] defaults
      to [None] (no re-polling, no hedging, no breaker). *)
end

val env : Config.t -> binding list -> env

type partial = {
  query : Ast.query;
      (** the whole answer, as a query — resubmit it when sources
          recover (Section 4) *)
  unavailable : string list;  (** repositories that did not answer *)
  versions : (string * int) list;
      (** data versions of the sources that {e did} answer, for the
          staleness check of Section 4's discussion *)
}
(** The payload of a partial answer — shared verbatim with
    [Mediator.answer], so the residual-query renderer exists once. *)

type answer = Complete of V.t | Partial of partial

val answer_oql : answer -> string
(** The OQL text of an answer: a collection literal for {!Complete}, the
    residual query for {!Partial}. *)

(** Per-execution statistics (drives experiments E2/E4/E11). *)
type stats = {
  execs_issued : int;
  execs_answered : int;
  execs_blocked : int;
  tuples_shipped : int;
  elapsed_ms : float;  (** virtual time from issue to answer *)
  cache_hits : int;  (** execs answered from the cache at a fresh version *)
  cache_stale_hits : int;
      (** execs to unavailable sources answered from stale cache entries
          (only under [serve_stale_ms]) *)
  cache_stale_ms : float;  (** maximum staleness age served, virtual ms *)
  round_trips : int;
      (** wrapper round-trips attempted on the (simulated) wire — under
          the batched transport one round-trip can carry several execs,
          so this is the number the batching layer actually reduces *)
}

val execute : ?timeout_ms:float -> env -> Disco_physical.Plan.plan -> answer * stats
(** [timeout_ms] is the designated deadline (default 1000 virtual ms).
    Advances the env's clock to the completion (or deadline) time. *)

val fetch :
  ?timeout_ms:float -> env -> string list -> (string * V.t option) list * stats
(** Materialize whole extents in one parallel round of [exec(repo,
    get(extent))] calls — the fallback the mediator's hybrid evaluator
    uses for queries outside the algebraic subset. [None] marks extents
    whose source did not answer by the deadline. *)

val resubmit_hint : env -> answer -> string list
(** For a partial answer: the repositories whose data changed since the
    answer was produced (the staleness check). Empty for complete
    answers. *)
