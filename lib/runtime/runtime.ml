module Expr = Disco_algebra.Expr
module Decompile = Disco_algebra.Decompile
module Plan = Disco_physical.Plan
module Cost_model = Disco_cost.Cost_model
module Source = Disco_source.Source
module Clock = Disco_source.Clock
module Scheduler = Disco_source.Scheduler
module Wrapper = Disco_wrapper.Wrapper
module Translate = Disco_wrapper.Translate
module Typemap = Disco_odl.Typemap
module Ast = Disco_oql.Ast
module V = Disco_value.Value
module Answer_cache = Disco_cache.Answer_cache
module Check = Disco_check.Check
module Trace = Disco_obs.Trace
module Metrics = Disco_obs.Metrics

let log_src = Logs.Src.create "disco.runtime" ~doc:"Disco run-time system"

module Log = (val Logs.src_log log_src)

exception Runtime_error of string

let runtime_error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type binding = {
  b_extent : string;
  b_repo : string;
  b_source : Source.t;
  b_replicas : (string * Source.t) list;
  b_wrapper : Wrapper.t;
  b_map : Typemap.t;
  b_check : (V.t -> bool) option;
}

(* Deadline-aware retry policy: how blocked/timed-out execs are
   re-polled inside the query's time budget, whether slow primaries are
   hedged with a replica, and when a consistently-refusing source trips
   its circuit breaker. *)
module Retry = struct
  type t = {
    initial_ms : float;
    multiplier : float;
    max_attempts : int;
    hedge_ms : float option;
    breaker_threshold : int option;
    breaker_cooldown_ms : float;
  }

  let make ?(initial_ms = 50.0) ?(multiplier = 2.0) ?(max_attempts = 4)
      ?hedge_ms ?breaker_threshold ?(breaker_cooldown_ms = 400.0) () =
    if initial_ms <= 0.0 then
      invalid_arg "Retry.make: initial_ms must be positive";
    if multiplier < 1.0 then
      invalid_arg "Retry.make: multiplier must be at least 1";
    if max_attempts < 0 then
      invalid_arg "Retry.make: max_attempts must be non-negative";
    (match hedge_ms with
    | Some h when h < 0.0 -> invalid_arg "Retry.make: hedge_ms must be non-negative"
    | _ -> ());
    (match breaker_threshold with
    | Some n when n < 1 ->
        invalid_arg "Retry.make: breaker_threshold must be at least 1"
    | _ -> ());
    if breaker_cooldown_ms < 0.0 then
      invalid_arg "Retry.make: breaker_cooldown_ms must be non-negative";
    {
      initial_ms;
      multiplier;
      max_attempts;
      hedge_ms;
      breaker_threshold;
      breaker_cooldown_ms;
    }

  let default = make ()
end

(* Per-source circuit breaker: after [breaker_threshold] consecutive
   refusals the source is skipped by re-polls and hedges until
   [breaker_cooldown_ms] has passed, when one half-open probe is allowed
   through (success closes the breaker, failure re-opens it).  The table
   is keyed by source id and meant to outlive a single query — the
   mediator holds one per federation so the state is visible across
   queries. *)
module Breaker = struct
  type entry = { mutable fails : int; mutable opened_at : float option }
  type t = (string, entry) Hashtbl.t

  let create () : t = Hashtbl.create 8

  let entry (t : t) id =
    match Hashtbl.find_opt t id with
    | Some e -> e
    | None ->
        let e = { fails = 0; opened_at = None } in
        Hashtbl.replace t id e;
        e

  let allows (t : t) ~cooldown_ms ~now id =
    match Hashtbl.find_opt t id with
    | None | Some { opened_at = None; _ } -> true
    | Some { opened_at = Some since; _ } -> now >= since +. cooldown_ms

  (* true when this failure opened (or re-opened after a failed
     half-open probe) the breaker *)
  let note_failure (t : t) ~threshold ~cooldown_ms ~now id =
    let e = entry t id in
    e.fails <- e.fails + 1;
    match e.opened_at with
    | None when e.fails >= threshold ->
        e.opened_at <- Some now;
        true
    | Some since when now >= since +. cooldown_ms ->
        e.opened_at <- Some now;
        true
    | _ -> false

  let note_success (t : t) id =
    match Hashtbl.find_opt t id with
    | Some e ->
        e.fails <- 0;
        e.opened_at <- None
    | None -> ()

  let snapshot (t : t) =
    Hashtbl.fold (fun id e acc -> (id, e.fails, e.opened_at) :: acc) t []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
end

module Config = struct
  type t = {
    clock : Clock.t;
    sched : Scheduler.t option;
    cost : Cost_model.t;
    cache : Answer_cache.t option;
    serve_stale_ms : float option;
    trace : Trace.t option;
    metrics : Metrics.t;
    batch : bool;
    check : Check.mode;
    checker : Check.t option;
    retry : Retry.t option;
    breaker : Breaker.t option;
  }

  let make ?sched ?cache ?serve_stale_ms ?trace ?(metrics = Metrics.default)
      ?(batch = true) ?(check = Check.Warn) ?checker ?retry ?breaker ~clock
      ~cost () =
    {
      clock;
      sched;
      cost;
      cache;
      serve_stale_ms;
      trace;
      metrics;
      batch;
      check;
      checker;
      retry;
      breaker;
    }
end

type env = {
  sched : Scheduler.t;
  cost : Cost_model.t;
  bindings : binding list;
  cache : Answer_cache.t option;
  serve_stale_ms : float option;
      (* when set, execs to unavailable sources are answered from cached
         fragments no older than this (the Cached_fallback semantics) *)
  trace : Trace.t option;
  metrics : Metrics.t;
  batch : bool;
      (* group same-destination execs into one wrapper round-trip; off
         reproduces the historical one-call-per-exec transport exactly *)
  batch_seq : int ref; (* distinguishes batched round-trips in traces *)
  check : Check.mode;
  checker : Check.t option;
  retry : Retry.t option;
      (* when set, blocked execs become pending events re-polled until
         the deadline instead of finalizing at issue time; None is the
         historical one-shot behavior, reproduced exactly *)
  breaker : Breaker.t;
  extra_trips : int ref;
      (* wrapper round-trips issued by the retry scheduler and hedging
         on top of the round's own calls *)
}

let env (c : Config.t) bindings =
  {
    sched =
      (match c.Config.sched with
      | Some s -> s
      | None -> Scheduler.of_clock c.Config.clock);
    cost = c.Config.cost;
    bindings;
    cache = c.Config.cache;
    serve_stale_ms = c.Config.serve_stale_ms;
    trace = c.Config.trace;
    metrics = c.Config.metrics;
    batch = c.Config.batch;
    batch_seq = ref 0;
    check = c.Config.check;
    checker = c.Config.checker;
    retry = c.Config.retry;
    breaker =
      (match c.Config.breaker with
      | Some b -> b
      | None -> Breaker.create ());
    extra_trips = ref 0;
  }

let binding_of env extent =
  match
    List.find_opt (fun b -> String.equal b.b_extent extent) env.bindings
  with
  | Some b -> b
  | None -> runtime_error "no binding for extent %s" extent

type partial = {
  query : Ast.query;
  unavailable : string list;
  versions : (string * int) list;
}

type answer = Complete of V.t | Partial of partial

let answer_oql = function
  | Complete v -> V.to_string v
  | Partial { query; _ } -> Ast.to_string query

type stats = {
  execs_issued : int;
  execs_answered : int;
  execs_blocked : int;
  tuples_shipped : int;
  elapsed_ms : float;
  cache_hits : int;
  cache_stale_hits : int;
  cache_stale_ms : float;
  round_trips : int;
}

(* One exec call: consult the answer cache, else translate to the source
   name space, run the wrapper through the simulated network, reformat
   and type-check the answer. *)
type exec_done = {
  value : V.t;
  finish : float;
  shipped : int;
  origin : Trace.origin;
  answered_by : string * int;
      (* the repository that actually produced the answer (primary,
         failover replica, hedge winner, or the cache's key repository)
         and its data version at answer time — what Section 4's
         staleness check must validate against *)
}

type exec_result = Done of exec_done | Blocked

(* every exec outcome lands in the metrics registry; the trace leaf is
   built only when a trace is attached *)
let observe_exec ?(attempts = []) env ~repo ~wrapper ~logical ~start ~finish
    ~origin ~shipped ~rows ~predicted ~batch =
  Metrics.incr env.metrics ("exec.origin." ^ Trace.origin_label origin);
  if shipped > 0 then Metrics.incr ~by:shipped env.metrics "exec.tuples_shipped";
  match env.trace with
  | None -> ()
  | Some tr ->
      let p_ms, p_rows =
        match predicted with
        | Some (e : Cost_model.estimate) ->
            (Some e.Cost_model.est_time_ms, Some e.Cost_model.est_rows)
        | None -> (None, None)
      in
      let batch_id, batch_size =
        match batch with
        | Some (id, size) -> (Some id, size)
        | None -> (None, 1)
      in
      Trace.exec ~attempts tr
        {
          Trace.x_repo = repo;
          x_wrapper = wrapper;
          x_expr = Expr.to_string logical;
          x_origin = origin;
          x_start_ms = start;
          x_elapsed_ms = finish -. start;
          x_tuples = shipped;
          x_rows = rows;
          x_predicted_ms = p_ms;
          x_predicted_rows = p_rows;
          x_batch_id = batch_id;
          x_batch_size = batch_size;
        }

(* Every exec — sequential, batched, retried or hedged — flows through
   one preparation step ([prepare_exec]: binding resolution, translation,
   failover choice) and one completion step ([complete_answer]: rename,
   type check, cache store).  Only the transport in between differs. *)

type prepared = {
  p_repo : string;
  p_logical : Expr.expr;
  p_binding : binding;
  p_source_expr : Expr.expr;
  p_rename : V.t -> V.t;
  p_chosen_repo : string;
  p_chosen : Source.t;
  p_predicted : Cost_model.estimate option;
}

let prepare_exec env ~now repo logical =
  let extents = Expr.gets logical in
  let bindings = List.map (binding_of env) extents in
  let binding =
    match bindings with
    | [] -> runtime_error "exec(%s) references no extent" repo
    | first :: _ -> first
  in
  List.iter
    (fun b ->
      if not (String.equal b.b_repo repo) then
        runtime_error "exec(%s) references extent %s bound to %s" repo
          b.b_extent b.b_repo)
    bindings;
  let map_of extent =
    match
      List.find_opt (fun b -> String.equal b.b_extent extent) bindings
    with
    | Some b -> b.b_map
    | None -> Typemap.identity
  in
  let source_expr = Translate.to_source ~map_of logical in
  let rename = Translate.answer_renamer ~map_of logical in
  let chosen_repo, chosen =
    let candidates =
      (binding.b_repo, binding.b_source) :: binding.b_replicas
    in
    match List.find_opt (fun (_, src) -> Source.is_up src now) candidates with
    | Some (replica_repo, src) ->
        if not (String.equal replica_repo binding.b_repo) then
          Log.info (fun m ->
              m "exec(%s): primary down, failing over to replica %s" repo
                replica_repo);
        (replica_repo, src)
    | None -> (binding.b_repo, binding.b_source)
  in
  let predicted =
    match env.trace with
    | None -> None
    | Some _ -> Some (Cost_model.estimate env.cost ~repo logical)
  in
  {
    p_repo = repo;
    p_logical = logical;
    p_binding = binding;
    p_source_expr = source_expr;
    p_rename = rename;
    p_chosen_repo = chosen_repo;
    p_chosen = chosen;
    p_predicted = predicted;
  }

let typecheck_answer p renamed =
  match p.p_binding.b_check with
  | Some check when V.is_collection renamed ->
      List.iter
        (fun elem ->
          if not (check elem) then
            runtime_error "type mismatch: source %s returned %s for extent %s"
              p.p_repo (V.to_string elem) p.p_binding.b_extent)
        (V.elements renamed)
  | _ -> ()

(* The wrapper call for one prepared exec, parameterized by the source
   actually dialed — the same thunk serves the chosen source, a hedged
   replica, and retry re-polls. *)
let wrapper_thunk p src () =
  match Wrapper.execute p.p_binding.b_wrapper src p.p_source_expr with
  | Ok (v, rows) -> (Ok v, rows)
  | Error err -> (Error err, 0)

let observe_prepared ?attempts env (p : prepared) ~start ~finish ~origin
    ~shipped ~rows =
  observe_exec ?attempts env ~repo:p.p_repo
    ~wrapper:(Wrapper.name p.p_binding.b_wrapper)
    ~logical:p.p_logical ~start ~finish ~origin ~shipped ~rows
    ~predicted:p.p_predicted ~batch:None

(* -- circuit breaker hooks (active only under Config.retry with a
   breaker_threshold) -- *)

let breaker_allows env ~now src =
  match env.retry with
  | Some
      { Retry.breaker_threshold = Some _; Retry.breaker_cooldown_ms; _ } ->
      Breaker.allows env.breaker ~cooldown_ms:breaker_cooldown_ms ~now
        (Source.id src)
  | _ -> true

let breaker_note env ~now src outcome =
  match env.retry with
  | Some
      { Retry.breaker_threshold = Some n; Retry.breaker_cooldown_ms; _ } -> (
      match outcome with
      | `Success -> Breaker.note_success env.breaker (Source.id src)
      | `Failure ->
          if
            Breaker.note_failure env.breaker ~threshold:n
              ~cooldown_ms:breaker_cooldown_ms ~now (Source.id src)
          then Metrics.incr env.metrics "runtime.breaker.open")
  | _ -> ()

(* Replica hedging (Config.retry.hedge_ms): when the chosen source's
   answer would land later than [now + hedge_ms] — or not at all within
   the deadline — race the first live, breaker-permitted replica, issued
   at the hedge instant, and keep whichever completion is earlier.  In
   the discrete-event simulation both completions are known at issue
   time, so the race resolves immediately.  A primary that is down at
   issue time is not hedged: issue-time failover already switched to a
   replica, and the retry scheduler covers later recovery.  Returns the
   answering repository, its source, and the winning outcome. *)
let hedged_call env ~now ~deadline (p : prepared) =
  let primary =
    Source.call_at p.p_chosen ~now ~deadline (wrapper_thunk p p.p_chosen)
  in
  (match primary with
  | Source.Answered _ -> breaker_note env ~now p.p_chosen `Success
  | Source.Unavailable | Source.Timed_out _ ->
      breaker_note env ~now p.p_chosen `Failure);
  let hedge_candidate =
    match env.retry with
    | Some { Retry.hedge_ms = Some h; _ } ->
        let hedge_at = now +. h in
        let worth =
          hedge_at < deadline
          &&
          match primary with
          | Source.Answered (_, finish) -> finish > hedge_at
          | Source.Timed_out _ -> true
          | Source.Unavailable -> false
        in
        if not worth then None
        else
          let candidates =
            (p.p_binding.b_repo, p.p_binding.b_source)
            :: p.p_binding.b_replicas
          in
          Option.map
            (fun c -> (c, hedge_at))
            (List.find_opt
               (fun (repo, src) ->
                 (not (String.equal repo p.p_chosen_repo))
                 && Source.is_up src hedge_at
                 && breaker_allows env ~now:hedge_at src)
               candidates)
    | _ -> None
  in
  match hedge_candidate with
  | None -> (p.p_chosen_repo, p.p_chosen, primary)
  | Some ((hrepo, hsrc), hedge_at) ->
      Metrics.incr env.metrics "runtime.hedge.issued";
      incr env.extra_trips;
      let hedge =
        Source.call_at hsrc ~now:hedge_at ~deadline (wrapper_thunk p hsrc)
      in
      (match hedge with
      | Source.Answered _ -> breaker_note env ~now:hedge_at hsrc `Success
      | Source.Unavailable | Source.Timed_out _ ->
          breaker_note env ~now:hedge_at hsrc `Failure);
      let hedge_wins =
        match (primary, hedge) with
        | Source.Answered (_, fp), Source.Answered (_, fh) -> fh < fp
        | (Source.Unavailable | Source.Timed_out _), Source.Answered _ -> true
        | _, (Source.Unavailable | Source.Timed_out _) -> false
      in
      if hedge_wins then (
        Metrics.incr env.metrics "runtime.hedge.won";
        Log.info (fun m ->
            m "exec(%s): hedge to replica %s won the race" p.p_repo hrepo);
        (hrepo, hsrc, hedge))
      else (p.p_chosen_repo, p.p_chosen, primary)

(* Shared completion: rename into the mediator name space, run the
   run-time type check, record the fragment in the answer cache, and
   stamp the answer with the repository that actually produced it. *)
let complete_answer env (p : prepared) ~finish ~answered_repo ~answered_src v =
  let renamed = p.p_rename v in
  typecheck_answer p renamed;
  let version = Source.data_version answered_src in
  (match env.cache with
  | Some cache ->
      Answer_cache.store cache ~repo:p.p_repo ~version ~now:finish p.p_logical
        renamed
  | None -> ());
  let shipped = try V.cardinal renamed with V.Type_error _ -> 1 in
  let origin =
    if String.equal answered_repo p.p_binding.b_repo then Trace.Source
    else Trace.Failover answered_repo
  in
  { value = renamed; finish; shipped; origin; answered_by = (answered_repo, version) }

(* One unbatched exec issued at [now]: consult the answer cache, else go
   over the (simulated) wire — hedged when configured — then reformat
   and check the answer, falling back to stale fragments when allowed.
   Under Config.retry a blocked exec is observed by the retry scheduler
   (which owns its final outcome), not here. *)
let issue_one env ~now ~deadline (p : prepared) =
  let observe ~finish ~origin ~shipped ~rows =
    observe_prepared env p ~start:now ~finish ~origin ~shipped ~rows
  in
  let version = Source.data_version p.p_chosen in
  let fresh_hit =
    match env.cache with
    | Some cache ->
        Answer_cache.find_fresh cache ~repo:p.p_repo ~version p.p_logical
    | None -> None
  in
  match fresh_hit with
  | Some value ->
      Log.debug (fun m ->
          m "exec(%s) answered from cache: %s" p.p_repo
            (Expr.to_string p.p_logical));
      let rows = try V.cardinal value with V.Type_error _ -> 1 in
      observe ~finish:now ~origin:Trace.Cache ~shipped:0 ~rows;
      Done
        {
          value;
          finish = now;
          shipped = 0;
          origin = Trace.Cache;
          answered_by = (p.p_chosen_repo, version);
        }
  | None -> (
      let blocked () =
        Log.debug (fun m ->
            m "exec(%s) blocked: %s" p.p_repo (Expr.to_string p.p_logical));
        if env.retry = None then
          observe ~finish:deadline ~origin:Trace.Blocked ~shipped:0 ~rows:0;
        Blocked
      in
      let answered_repo, answered_src, outcome =
        hedged_call env ~now ~deadline p
      in
      match outcome with
      | Source.Unavailable | Source.Timed_out _ -> (
          match (env.cache, env.serve_stale_ms) with
          | Some cache, Some max_stale_ms -> (
              match
                Answer_cache.find_stale cache ~repo:p.p_repo ~now ~max_stale_ms
                  p.p_logical
              with
              | Some (value, age) ->
                  let rows = try V.cardinal value with V.Type_error _ -> 1 in
                  observe ~finish:now ~origin:(Trace.Stale age) ~shipped:0 ~rows;
                  Done
                    {
                      value;
                      finish = now;
                      shipped = 0;
                      origin = Trace.Stale age;
                      answered_by =
                        (p.p_repo, Source.data_version p.p_binding.b_source);
                    }
              | None -> blocked ())
          | _ -> blocked ())
      | Source.Answered (Error err, _) ->
          runtime_error "wrapper %s on %s: %s"
            (Wrapper.name p.p_binding.b_wrapper)
            p.p_repo (Wrapper.error_message err)
      | Source.Answered (Ok v, finish) ->
          Log.debug (fun m ->
              m "exec(%s) answered %d rows at t=%.1f" p.p_repo
                (try V.cardinal v with V.Type_error _ -> 1)
                finish);
          let d =
            complete_answer env p ~finish ~answered_repo ~answered_src v
          in
          observe ~finish ~origin:d.origin ~shipped:d.shipped ~rows:d.shipped;
          Done d)

let issue_exec env ~deadline repo logical =
  let now = Scheduler.now env.sched in
  issue_one env ~now ~deadline (prepare_exec env ~now repo logical)

(* -- batched transport (Config.batch) --

   Preparation is shared with the sequential path, so the same binding
   resolution, translation, failover choice and cache lookups are taken
   per exec.  Only the transport differs — execs whose chosen
   destination coincides ride one [Wrapper.execute_batch] round-trip,
   paying the source's [base_ms] (and a single jitter draw) once for the
   whole group.

   Issue a round of (unique) execs with per-destination batching.
   Results come back in input order; the second component counts the
   wrapper round-trips actually attempted. *)
let issue_execs_batched env ~deadline execs =
  let now = Scheduler.now env.sched in
  let round_trips = ref 0 in
  let observe p ~finish ~origin ~shipped ~rows ~batch =
    observe_exec env ~repo:p.p_repo
      ~wrapper:(Wrapper.name p.p_binding.b_wrapper)
      ~logical:p.p_logical ~start:now ~finish ~origin ~shipped ~rows
      ~predicted:p.p_predicted ~batch
  in
  (* fresh cache hits never reach the wire *)
  let classified =
    List.map
      (fun (repo, logical) ->
        let p = prepare_exec env ~now repo logical in
        let version = Source.data_version p.p_chosen in
        let fresh_hit =
          match env.cache with
          | Some cache ->
              Answer_cache.find_fresh cache ~repo ~version logical
          | None -> None
        in
        match fresh_hit with
        | Some value ->
            Log.debug (fun m ->
                m "exec(%s) answered from cache: %s" repo
                  (Expr.to_string logical));
            let rows = try V.cardinal value with V.Type_error _ -> 1 in
            observe p ~finish:now ~origin:Trace.Cache ~shipped:0 ~rows
              ~batch:None;
            ( p,
              `Done
                (Done
                   {
                     value;
                     finish = now;
                     shipped = 0;
                     origin = Trace.Cache;
                     answered_by = (p.p_chosen_repo, version);
                   }) )
        | None -> (p, `Pending version))
      execs
  in
  let pendings =
    List.filter_map
      (function p, `Pending version -> Some (p, version) | _, `Done _ -> None)
      classified
  in
  let group_key p = (p.p_chosen_repo, Wrapper.name p.p_binding.b_wrapper) in
  let keys =
    List.fold_left
      (fun acc (p, _) ->
        let key = group_key p in
        if List.mem key acc then acc else acc @ [ key ])
      [] pendings
  in
  (* (repo, printed logical) -> exec_result for the pending execs *)
  let table = Hashtbl.create 16 in
  let store p r = Hashtbl.replace table (p.p_repo, Expr.to_string p.p_logical) r in
  (* Phase 1 — classify (sequential, key order): decide each group's
     transport and assign its round-trip accounting, so batch ids,
     trip counts and metrics are identical whichever scheduler later
     runs the wire calls. *)
  let groups =
    List.map
      (fun key ->
        let members =
          List.filter (fun (p, _) -> group_key p = key) pendings
        in
        let size = List.length members in
        let chosen, wrapper_t =
          match members with
          | (p, _) :: _ -> (p.p_chosen, p.p_binding.b_wrapper)
          | [] -> assert false
        in
        incr round_trips;
        Metrics.incr env.metrics "runtime.batch.rounds";
        incr env.batch_seq;
        if size = 1 && env.retry <> None then
          (* under the retry scheduler, singleton groups take the
             sequential transport so they can be hedged; the round-trip
             accounting is identical either way.  Multi-member batches
             are never hedged — one racing replica per wrapper call
             would undo the batching win.  Hedging and breaker state are
             shared, so these run in phase 3, off the parallel pool. *)
          `Single members
        else `Batch (key, members, size, chosen, wrapper_t, !(env.batch_seq)))
      keys
  in
  (* Phase 2 — transport: only the wire exchanges go through the
     scheduler, which may fan them out across domains.  Groups that dial
     the same underlying source share one job, keeping that source's
     call counter free of data races; under the virtual scheduler jobs
     run sequentially in this exact order. *)
  let batch_jobs =
    List.filter_map
      (function
        | `Single _ -> None
        | `Batch (_, members, _, chosen, wrapper_t, batch_id) ->
            let exprs = List.map (fun (p, _) -> p.p_source_expr) members in
            let wire () =
              Source.call_at chosen ~now ~deadline (fun () ->
                  let answers = Wrapper.execute_batch wrapper_t chosen exprs in
                  let rows =
                    List.fold_left
                      (fun acc r ->
                        match r with Ok (_, n) -> acc + n | Error _ -> acc)
                      0 answers
                  in
                  (answers, rows))
            in
            Some (batch_id, Source.id chosen, wire))
      groups
  in
  let buckets =
    List.fold_left
      (fun acc (batch_id, sid, wire) ->
        let rec add = function
          | [] -> [ (sid, [ (batch_id, wire) ]) ]
          | (s, jobs) :: rest when String.equal s sid ->
              (s, jobs @ [ (batch_id, wire) ]) :: rest
          | g :: rest -> g :: add rest
        in
        add acc)
      [] batch_jobs
  in
  let outcome_of = Hashtbl.create 8 in
  Scheduler.map_rounds env.sched
    (fun (_, jobs) -> List.map (fun (id, wire) -> (id, wire ())) jobs)
    buckets
  |> List.iter
       (List.iter (fun (id, outcome) -> Hashtbl.replace outcome_of id outcome));
  (* Phase 3 — completion (sequential, key order): rename, type-check,
     cache stores, cost-model records, trace leaves.  Runs exactly as
     the historical single-pass loop did, so the observation order the
     pinned stats depend on is preserved. *)
  List.iter
    (function
      | `Single [ (p, _) ] -> store p (issue_one env ~now ~deadline p)
      | `Single _ -> assert false
      | `Batch ((grepo, gwrapper), members, size, _, _, batch_id) -> (
      let batch = if size > 1 then Some (batch_id, size) else None in
      match Hashtbl.find outcome_of batch_id with
      | Source.Unavailable | Source.Timed_out _ ->
          List.iter
            (fun (p, _) ->
              let blocked () =
                Log.debug (fun m ->
                    m "exec(%s) blocked: %s" p.p_repo
                      (Expr.to_string p.p_logical));
                if env.retry = None then
                  observe p ~finish:deadline ~origin:Trace.Blocked ~shipped:0
                    ~rows:0 ~batch;
                Blocked
              in
              let r =
                match (env.cache, env.serve_stale_ms) with
                | Some cache, Some max_stale_ms -> (
                    match
                      Answer_cache.find_stale cache ~repo:p.p_repo ~now
                        ~max_stale_ms p.p_logical
                    with
                    | Some (value, age) ->
                        let rows =
                          try V.cardinal value with V.Type_error _ -> 1
                        in
                        observe p ~finish:now ~origin:(Trace.Stale age)
                          ~shipped:0 ~rows ~batch:None;
                        Done
                          {
                            value;
                            finish = now;
                            shipped = 0;
                            origin = Trace.Stale age;
                            answered_by =
                              ( p.p_repo,
                                Source.data_version p.p_binding.b_source );
                          }
                    | None -> blocked ())
                | _ -> blocked ()
              in
              store p r)
            members
      | Source.Answered (answers, finish) ->
          if List.length answers <> size then
            runtime_error "wrapper %s on %s answered %d of a batch of %d"
              gwrapper grepo (List.length answers) size;
          Cost_model.record_batch env.cost ~repo:grepo ~size
            ~time_ms:(finish -. now);
          List.iter2
            (fun (p, version) answer ->
              match answer with
              | Error err ->
                  runtime_error "wrapper %s on %s: %s" gwrapper p.p_repo
                    (Wrapper.error_message err)
              | Ok (v, _rows) ->
                  Log.debug (fun m ->
                      m "exec(%s) answered %d rows at t=%.1f" p.p_repo
                        (try V.cardinal v with V.Type_error _ -> 1)
                        finish);
                  let renamed = p.p_rename v in
                  typecheck_answer p renamed;
                  (match env.cache with
                  | Some cache ->
                      Answer_cache.store cache ~repo:p.p_repo ~version
                        ~now:finish p.p_logical renamed
                  | None -> ());
                  let shipped =
                    try V.cardinal renamed with V.Type_error _ -> 1
                  in
                  let origin =
                    if String.equal p.p_chosen_repo p.p_binding.b_repo then
                      Trace.Source
                    else Trace.Failover p.p_chosen_repo
                  in
                  (* amortize the shared round-trip across the group so
                     the per-call Section 3.3 estimates stay comparable
                     with unbatched execution *)
                  Cost_model.record env.cost ~repo:p.p_repo ~expr:p.p_logical
                    ~time_ms:((finish -. now) /. float_of_int size)
                    ~rows:shipped;
                  observe p ~finish ~origin ~shipped ~rows:shipped ~batch;
                  store p
                    (Done
                       {
                         value = renamed;
                         finish;
                         shipped;
                         origin;
                         answered_by = (p.p_chosen_repo, version);
                       }))
            members answers))
    groups;
  let results =
    List.map
      (fun (p, c) ->
        let r =
          match c with
          | `Done r -> r
          | `Pending _ ->
              Hashtbl.find table (p.p_repo, Expr.to_string p.p_logical)
        in
        ((p.p_repo, p.p_logical), r))
      classified
  in
  (results, !round_trips)

(* -- deadline-aware retry scheduler (Config.retry) --

   Blocked execs do not finalize at issue time: each becomes a pending
   event on the virtual clock, re-polled on exponential backoff
   ([initial_ms], [multiplier]) until it recovers, exhausts
   [max_attempts], or runs out of deadline.  Events across execs are
   processed in virtual-time order — like a real event loop — so shared
   state (the circuit breaker, source call counters) evolves the same
   way it would under a reactor.  Each re-poll re-prepares the exec, so
   failover re-evaluates source availability at the re-poll instant: a
   source whose schedule flips up at t=300ms answers a 1000ms-deadline
   query instead of forcing a partial answer.

   A retried exec contributes exactly one trace leaf: Done (with its
   failed attempts as child spans) if some re-poll recovered, else
   Blocked at the deadline. *)
type retry_event = {
  ev_seq : int;  (* position in the round's result list *)
  ev_repo : string;
  ev_logical : Expr.expr;
  ev_attempt : int;  (* 1-based *)
  ev_at : float;  (* virtual instant of this re-poll *)
  ev_history : Trace.attempt list;  (* newest first *)
}

let apply_retries env ~deadline results =
  match env.retry with
  | None -> results
  | Some r ->
      let t0 = Scheduler.now env.sched in
      let finals = Hashtbl.create 8 in
      let queue = ref [] in
      List.iteri
        (fun seq ((repo, logical), res) ->
          match res with
          | Blocked ->
              queue :=
                {
                  ev_seq = seq;
                  ev_repo = repo;
                  ev_logical = logical;
                  ev_attempt = 1;
                  ev_at = t0 +. r.Retry.initial_ms;
                  ev_history = [];
                }
                :: !queue
          | Done _ -> ())
        results;
      let pop () =
        match !queue with
        | [] -> None
        | evs ->
            let best =
              List.fold_left
                (fun acc ev ->
                  match acc with
                  | Some b
                    when b.ev_at < ev.ev_at
                         || (b.ev_at = ev.ev_at && b.ev_seq < ev.ev_seq) ->
                      acc
                  | _ -> Some ev)
                None evs
            in
            (match best with
            | Some b -> queue := List.filter (fun e -> e != b) !queue
            | None -> ());
            best
      in
      let requeue ev att =
        queue :=
          {
            ev with
            ev_attempt = ev.ev_attempt + 1;
            ev_at =
              ev.ev_at
              +. (r.Retry.initial_ms
                 *. (r.Retry.multiplier ** float_of_int ev.ev_attempt));
            ev_history = att :: ev.ev_history;
          }
          :: !queue
      in
      let attempt_of ev ~elapsed outcome =
        {
          Trace.a_number = ev.ev_attempt;
          a_start_ms = ev.ev_at;
          a_elapsed_ms = elapsed;
          a_outcome = outcome;
        }
      in
      let rec drain () =
        match pop () with
        | None -> ()
        | Some ev ->
            (* wall schedulers really wait for the event's instant; the
               virtual drain resolves it immediately *)
            Scheduler.pace env.sched (Float.min ev.ev_at deadline);
            (if ev.ev_at >= deadline || ev.ev_attempt > r.Retry.max_attempts
             then (
               (* out of budget: finalize as blocked, with the re-poll
                  history attached to the leaf *)
               let p = prepare_exec env ~now:deadline ev.ev_repo ev.ev_logical in
               observe_prepared
                 ~attempts:(List.rev ev.ev_history)
                 env p ~start:t0 ~finish:deadline ~origin:Trace.Blocked
                 ~shipped:0 ~rows:0;
               Hashtbl.replace finals ev.ev_seq Blocked)
             else
               let p = prepare_exec env ~now:ev.ev_at ev.ev_repo ev.ev_logical in
               if not (breaker_allows env ~now:ev.ev_at p.p_chosen) then
                 requeue ev (attempt_of ev ~elapsed:0.0 "breaker-open")
               else (
                 Metrics.incr env.metrics "runtime.retry.attempts";
                 incr env.extra_trips;
                 let answered_repo, answered_src, outcome =
                   hedged_call env ~now:ev.ev_at ~deadline p
                 in
                 match outcome with
                 | Source.Unavailable ->
                     requeue ev (attempt_of ev ~elapsed:0.0 "unavailable")
                 | Source.Timed_out completion ->
                     requeue ev
                       (attempt_of ev ~elapsed:(completion -. ev.ev_at)
                          "timed-out")
                 | Source.Answered (Error err, _) ->
                     runtime_error "wrapper %s on %s: %s"
                       (Wrapper.name p.p_binding.b_wrapper)
                       p.p_repo (Wrapper.error_message err)
                 | Source.Answered (Ok v, finish) ->
                     Metrics.incr env.metrics "runtime.retry.recovered";
                     Log.info (fun m ->
                         m "exec(%s) recovered on re-poll %d at t=%.1f"
                           p.p_repo ev.ev_attempt finish);
                     let d =
                       complete_answer env p ~finish ~answered_repo
                         ~answered_src v
                     in
                     let won =
                       attempt_of ev ~elapsed:(finish -. ev.ev_at) "recovered"
                     in
                     observe_prepared
                       ~attempts:(List.rev (won :: ev.ev_history))
                       env p ~start:ev.ev_at ~finish ~origin:d.origin
                       ~shipped:d.shipped ~rows:d.shipped;
                     Hashtbl.replace finals ev.ev_seq (Done d)));
            drain ()
      in
      drain ();
      List.mapi
        (fun seq (key, res) ->
          match Hashtbl.find_opt finals seq with
          | Some res' -> (key, res')
          | None -> (key, res))
        results

(* Fold every exec-free subtree into materialized data: "processing as
   much of the query as is possible" (Section 1.3). *)
let rec fold_ready plan =
  match Plan.execs plan with
  | [] -> Plan.Mk_data (Plan.run_local plan)
  | _ -> (
      match plan with
      | Plan.Exec _ | Plan.Mk_data _ -> plan
      | Plan.Mk_select (p, pred) -> Plan.Mk_select (fold_ready p, pred)
      | Plan.Mk_project (p, attrs) -> Plan.Mk_project (fold_ready p, attrs)
      | Plan.Mk_map (p, h) -> Plan.Mk_map (fold_ready p, h)
      | Plan.Nested_loop_join (l, r, pairs) ->
          Plan.Nested_loop_join (fold_ready l, fold_ready r, pairs)
      | Plan.Hash_join (l, r, pairs) ->
          Plan.Hash_join (fold_ready l, fold_ready r, pairs)
      | Plan.Merge_join (l, r, pairs) ->
          Plan.Merge_join (fold_ready l, fold_ready r, pairs)
      | Plan.Semi_join (l, right, pairs) ->
          Plan.Semi_join (fold_ready l, right, pairs)
      | Plan.Mk_union ps -> Plan.Mk_union (List.map fold_ready ps)
      | Plan.Mk_shard_merge ps -> Plan.Mk_shard_merge (List.map fold_ready ps)
      | Plan.Mk_distinct p -> Plan.Mk_distinct (fold_ready p))

(* Shared tail of an execution round: fold the per-exec results into the
   substituted plan, the blocked list, the version vector and the round's
   stats. *)
let round_result env ~deadline ~t0 ~execs_issued ~round_trips results plan =
  let answered =
    List.filter_map
      (function key, Done d -> Some (key, d) | _, Blocked -> None)
      results
  in
  let blocked =
    List.filter_map
      (function key, Blocked -> Some key | _, Done _ -> None)
      results
  in
  let tuples_shipped =
    List.fold_left (fun acc (_, d) -> acc + d.shipped) 0 answered
  in
  let finish_time =
    if blocked <> [] then deadline
    else List.fold_left (fun acc (_, d) -> Float.max acc d.finish) t0 answered
  in
  Scheduler.advance_to env.sched finish_time;
  let substituted =
    Plan.substitute_execs
      (fun repo logical ->
        match
          List.find_opt
            (fun ((r, l), _) -> String.equal r repo && Expr.equal l logical)
            answered
        with
        | Some (_, d) -> Plan.Mk_data d.value
        | None -> Plan.Exec (repo, logical))
      plan
  in
  (* the version vector records who actually answered — when a replica
     served the exec, pinning the primary's version here would make the
     staleness check (Section 4) watch the wrong repository *)
  let versions = List.map (fun (_, d) -> d.answered_by) answered in
  let cache_hits =
    List.length (List.filter (fun (_, d) -> d.origin = Trace.Cache) answered)
  in
  let stale_hits, stale_ms =
    List.fold_left
      (fun (n, age) (_, d) ->
        match d.origin with
        | Trace.Stale a -> (n + 1, Float.max age a)
        | _ -> (n, age))
      (0, 0.0) answered
  in
  let stats =
    {
      execs_issued;
      execs_answered = List.length answered;
      execs_blocked = List.length blocked;
      tuples_shipped;
      elapsed_ms = finish_time -. t0;
      cache_hits;
      cache_stale_hits = stale_hits;
      cache_stale_ms = stale_ms;
      round_trips;
    }
  in
  (substituted, List.map fst blocked, versions, stats)

(* One parallel round, historical transport: one wrapper call per exec. *)
let run_round_seq env ~deadline plan =
  let t0 = Scheduler.now env.sched in
  let trips0 = !(env.extra_trips) in
  let execs = Plan.execs plan in
  let results =
    List.map
      (fun (repo, logical) ->
        ((repo, logical), issue_exec env ~deadline repo logical))
      execs
  in
  let results = apply_retries env ~deadline results in
  (* only real source calls feed the learned cost model — cache serves
     complete in zero time and would corrupt the estimates *)
  List.iter
    (function
      | (repo, logical), Done d -> (
          match d.origin with
          | Trace.Source | Trace.Failover _ ->
              Cost_model.record env.cost ~repo ~expr:logical
                ~time_ms:(d.finish -. t0)
                ~rows:(try V.cardinal d.value with V.Type_error _ -> 1)
          | Trace.Cache | Trace.Stale _ | Trace.Blocked -> ())
      | _, Blocked -> ())
    results;
  let cache_hits =
    List.length
      (List.filter
         (function _, Done d -> d.origin = Trace.Cache | _, Blocked -> false)
         results)
  in
  (* every non-cache-hit exec was its own wrapper round-trip (including
     the ones that came back unavailable); hedges and re-polls add their
     own trips on top *)
  let round_trips =
    List.length execs - cache_hits + (!(env.extra_trips) - trips0)
  in
  round_result env ~deadline ~t0 ~execs_issued:(List.length execs) ~round_trips
    results plan

(* One parallel round, batched transport: dedupe structurally identical
   execs, then one wrapper round-trip per destination. *)
let run_round_batched env ~deadline plan =
  let t0 = Scheduler.now env.sched in
  let trips0 = !(env.extra_trips) in
  let execs = Plan.execs plan in
  let unique =
    List.rev
      (List.fold_left
         (fun acc ((repo, logical) as key) ->
           if
             List.exists
               (fun (r, l) -> String.equal r repo && Expr.equal l logical)
               acc
           then acc
           else key :: acc)
         [] execs)
  in
  let dedup_hits = List.length execs - List.length unique in
  if dedup_hits > 0 then (
    Log.debug (fun m ->
        m "dedup: %d duplicate exec(s) share answers this round" dedup_hits);
    Metrics.incr ~by:dedup_hits env.metrics "runtime.batch.dedup_hits");
  let results, round_trips = issue_execs_batched env ~deadline unique in
  let results = apply_retries env ~deadline results in
  let round_trips = round_trips + (!(env.extra_trips) - trips0) in
  round_result env ~deadline ~t0 ~execs_issued:(List.length unique)
    ~round_trips results plan

let run_round env ~deadline plan =
  if env.batch then run_round_batched env ~deadline plan
  else run_round_seq env ~deadline plan

(* Resolve semi-joins whose left side is fully materialized: compute the
   distinct keys and turn the node into a hash join over the reduced
   right exec. Bounded key lists; the wrapper's grammar is consulted and
   the filter dropped when refused. *)
let max_semijoin_keys = 1000

let rec resolve_semi_joins env plan =
  match plan with
  | Plan.Exec _ | Plan.Mk_data _ -> plan
  | Plan.Mk_select (p, pred) -> Plan.Mk_select (resolve_semi_joins env p, pred)
  | Plan.Mk_project (p, attrs) -> Plan.Mk_project (resolve_semi_joins env p, attrs)
  | Plan.Mk_map (p, h) -> Plan.Mk_map (resolve_semi_joins env p, h)
  | Plan.Mk_distinct p -> Plan.Mk_distinct (resolve_semi_joins env p)
  | Plan.Nested_loop_join (l, r, pairs) ->
      Plan.Nested_loop_join (resolve_semi_joins env l, resolve_semi_joins env r, pairs)
  | Plan.Hash_join (l, r, pairs) ->
      Plan.Hash_join (resolve_semi_joins env l, resolve_semi_joins env r, pairs)
  | Plan.Merge_join (l, r, pairs) ->
      Plan.Merge_join (resolve_semi_joins env l, resolve_semi_joins env r, pairs)
  | Plan.Mk_union ps -> Plan.Mk_union (List.map (resolve_semi_joins env) ps)
  | Plan.Mk_shard_merge ps ->
      Plan.Mk_shard_merge (List.map (resolve_semi_joins env) ps)
  | Plan.Semi_join (l, (repo, rexpr), pairs) ->
      let l = resolve_semi_joins env l in
      if Plan.execs l <> [] || Plan.semi_joins l > 0 then
        Plan.Semi_join (l, (repo, rexpr), pairs)
      else
        let left_v = Plan.run_local l in
        let keys_for (lpath, _) =
          List.sort_uniq V.compare
            (List.map
               (fun elem -> Expr.eval_scalar elem (Expr.Attr lpath))
               (V.elements left_v))
        in
        let filters =
          List.map
            (fun ((_, rpath) as pair) ->
              Expr.Member (Expr.Attr rpath, V.bag (keys_for pair)))
            pairs
        in
        let small =
          List.for_all
            (fun (pair : string list * string list) ->
              List.length (keys_for pair) <= max_semijoin_keys)
            pairs
        in
        let reduced =
          match filters with
          | [] -> rexpr
          | first :: rest ->
              Expr.Select
                (rexpr, List.fold_left (fun acc f -> Expr.And (acc, f)) first rest)
        in
        let wrapper_accepts =
          match Expr.gets rexpr with
          | extent :: _ ->
              let b = binding_of env extent in
              Wrapper.accepts b.b_wrapper reduced
          | [] -> false
        in
        let final_expr =
          if small && wrapper_accepts then (
            Log.info (fun m ->
                m "semijoin: reducing exec(%s) with %d key filter(s)" repo
                  (List.length filters));
            reduced)
          else (
            Log.info (fun m ->
                m "semijoin: falling back to the unreduced exec(%s)" repo);
            rexpr)
        in
        Plan.Hash_join (Plan.Mk_data left_v, Plan.Exec (repo, final_expr), pairs)

let add_stats a b =
  {
    execs_issued = a.execs_issued + b.execs_issued;
    execs_answered = a.execs_answered + b.execs_answered;
    execs_blocked = a.execs_blocked + b.execs_blocked;
    tuples_shipped = a.tuples_shipped + b.tuples_shipped;
    elapsed_ms = a.elapsed_ms +. b.elapsed_ms;
    cache_hits = a.cache_hits + b.cache_hits;
    cache_stale_hits = a.cache_stale_hits + b.cache_stale_hits;
    cache_stale_ms = Float.max a.cache_stale_ms b.cache_stale_ms;
    round_trips = a.round_trips + b.round_trips;
  }

let zero_stats =
  {
    execs_issued = 0;
    execs_answered = 0;
    execs_blocked = 0;
    tuples_shipped = 0;
    elapsed_ms = 0.0;
    cache_hits = 0;
    cache_stale_hits = 0;
    cache_stale_ms = 0.0;
    round_trips = 0;
  }

(* The runtime's debug gate: verify a plan against the bindings before
   issuing anything. When the caller supplied no checker (standalone
   runtime use), one is derived from the bindings — wrappers and
   repositories are known, the schema is not. *)
let checker_of_bindings bindings =
  let find ext =
    List.find_opt (fun b -> String.equal b.b_extent ext) bindings
  in
  let repos =
    List.concat_map
      (fun b -> b.b_repo :: List.map fst b.b_replicas)
      bindings
  in
  Check.make
    ~wrapper_of:(fun ext -> Option.map (fun b -> b.b_wrapper) (find ext))
    ~repo_of:(fun ext -> Option.map (fun b -> b.b_repo) (find ext))
    ~repo_known:(fun r -> List.mem r repos)
    ()

let verify env plan =
  match env.check with
  | Check.Off -> ()
  | mode -> (
      let checker =
        match env.checker with
        | Some c -> c
        | None -> checker_of_bindings env.bindings
      in
      let diags = Check.check_plan checker plan in
      let errs = Check.errors diags in
      let warns = List.length diags - List.length errs in
      if warns > 0 then Metrics.incr ~by:warns env.metrics "check.warnings";
      if errs <> [] then (
        Metrics.incr ~by:(List.length errs) env.metrics "check.violations";
        List.iter
          (fun d -> Log.warn (fun m -> m "%a" Check.pp_diag d))
          errs;
        match mode with
        | Check.Enforce -> raise (Check.Check_error errs)
        | Check.Off | Check.Warn -> ()))

let execute ?(timeout_ms = 1000.0) env plan =
  verify env plan;
  let deadline = Scheduler.now env.sched +. timeout_ms in
  (* Rounds: each issues every ready exec in parallel, then resolves the
     semi-joins unlocked by the new data. A plan without semi-joins is
     exactly one round — the paper's model. *)
  let rec loop plan stats_acc versions_acc =
    let substituted, blocked, versions, stats = run_round env ~deadline plan in
    let stats_acc = add_stats stats_acc stats in
    let versions_acc = versions @ versions_acc in
    if blocked <> [] then (
      let degraded = Plan.degrade_semi_joins substituted in
      let folded = fold_ready degraded in
      let residual_logical = Plan.to_logical folded in
      let query = Decompile.decompile residual_logical in
      let unavailable = List.sort_uniq String.compare blocked in
      Log.info (fun m ->
          m "partial answer: %d execs blocked (%s)" (List.length blocked)
            (String.concat ", " unavailable));
      ( Partial
          {
            query;
            unavailable;
            versions = List.sort_uniq compare versions_acc;
          },
        stats_acc ))
    else if Plan.semi_joins substituted > 0 then
      loop (resolve_semi_joins env substituted) stats_acc versions_acc
    else (
      Log.info (fun m ->
          m "executed %d execs: %d answered, %d tuples, %.1f ms"
            stats_acc.execs_issued stats_acc.execs_answered
            stats_acc.tuples_shipped stats_acc.elapsed_ms);
      (Complete (Plan.run_local substituted), stats_acc))
  in
  loop plan zero_stats []

let fetch ?(timeout_ms = 1000.0) env extents =
  let t0 = Scheduler.now env.sched in
  let trips0 = !(env.extra_trips) in
  let deadline = t0 +. timeout_ms in
  let keyed =
    List.map
      (fun extent ->
        let b = binding_of env extent in
        (extent, (b.b_repo, Expr.Get extent)))
      extents
  in
  let results, round_trips =
    if env.batch then
      (* one batched round-trip per repository holding several of the
         fetched extents *)
      issue_execs_batched env ~deadline (List.map snd keyed)
    else
      let results =
        List.map
          (fun (_, (repo, logical)) ->
            ((repo, logical), issue_exec env ~deadline repo logical))
          keyed
      in
      let cache_hits =
        List.length
          (List.filter
             (function
               | _, Done d -> d.origin = Trace.Cache | _, Blocked -> false)
             results)
      in
      (results, List.length results - cache_hits)
  in
  let results = apply_retries env ~deadline results in
  let round_trips = round_trips + (!(env.extra_trips) - trips0) in
  if not env.batch then
    List.iter
      (fun ((repo, logical), r) ->
        match r with
        | Done { origin = Trace.Source | Trace.Failover _; value; finish; _ } ->
            Cost_model.record env.cost ~repo ~expr:logical
              ~time_ms:(finish -. t0)
              ~rows:(try V.cardinal value with V.Type_error _ -> 1)
        | Done _ | Blocked -> ())
      results;
  let results =
    List.map2 (fun (extent, _) (_, r) -> (extent, r)) keyed results
  in
  let answered =
    List.filter_map (function _, Done d -> Some d | _, Blocked -> None) results
  in
  let any_blocked = List.exists (function _, Blocked -> true | _ -> false) results in
  let finish_time =
    if any_blocked then deadline
    else List.fold_left (fun acc d -> Float.max acc d.finish) t0 answered
  in
  Scheduler.advance_to env.sched finish_time;
  let stale_hits, stale_ms =
    List.fold_left
      (fun (n, age) d ->
        match d.origin with
        | Trace.Stale a -> (n + 1, Float.max age a)
        | _ -> (n, age))
      (0, 0.0) answered
  in
  let stats =
    {
      execs_issued = List.length results;
      execs_answered = List.length answered;
      execs_blocked = List.length results - List.length answered;
      tuples_shipped = List.fold_left (fun acc d -> acc + d.shipped) 0 answered;
      elapsed_ms = finish_time -. t0;
      cache_hits =
        List.length (List.filter (fun d -> d.origin = Trace.Cache) answered);
      cache_stale_hits = stale_hits;
      cache_stale_ms = stale_ms;
      round_trips;
    }
  in
  ( List.map
      (fun (extent, r) ->
        (extent, match r with Done d -> Some d.value | Blocked -> None))
      results,
    stats )

let resubmit_hint env = function
  | Complete _ -> []
  | Partial { versions; _ } ->
      List.filter_map
        (fun (repo, recorded_version) ->
          (* the recorded repository may be a replica (hedge or failover
             winner), which has no binding of its own — look it up among
             the replicas too *)
          let source =
            match
              List.find_opt (fun b -> String.equal b.b_repo repo) env.bindings
            with
            | Some b -> Some b.b_source
            | None ->
                List.find_map
                  (fun b -> List.assoc_opt repo b.b_replicas)
                  env.bindings
          in
          match source with
          | Some src when Source.data_version src <> recorded_version ->
              Some repo
          | _ -> None)
        versions
