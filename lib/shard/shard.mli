(** Horizontal partitioning of extents over shard sources.

    The paper scales a federation {e up} by adding repositories; this
    module scales a single extent {e out} by declaring it as a partition
    over N shard sources. A partition names the shard key (an attribute
    of the extent's interface), a scheme — range boundaries or a
    consistent-hash ring — and the per-shard repositories. The registry
    expands a partitioned extent into per-shard child extents
    ([person__s0], [person__s1], ...); the optimizer prunes children the
    predicate excludes ({!admits}) and the runtime scatter-gathers the
    rest in one parallel round.

    The hash scheme uses a consistent-hash ring (vnodes placed by a
    deterministic FNV-1a hash) so that changing the shard count moves
    only the keys between adjacent ring points rather than remapping
    everything. All placement is deterministic: the same key and shard
    list always hash to the same shard. *)

module V := Disco_value.Value

(** Partitioning scheme. [Range bs] splits the key domain at the sorted
    boundaries [bs]: shard [k] of [n] covers [b(k-1) <= key < b(k)] with
    open ends (so [List.length bs = n - 1]). [Hash { vnodes }] places
    [vnodes] points per shard on a consistent-hash ring; a key belongs to
    the shard owning the first ring point at or after the key's hash. *)
type scheme = Range of V.t list | Hash of { vnodes : int }

type shard = {
  s_repository : string;  (** repository object serving this shard *)
  s_wrapper : string option;
      (** per-shard wrapper override; [None] inherits the extent's *)
}

type partition = {
  p_key : string;  (** shard-key attribute of the extent's interface *)
  p_scheme : scheme;
  p_shards : shard list;
}

val default_vnodes : int
(** Ring points per shard when the ODL declaration omits [vnodes]. *)

val child_name : string -> int -> string
(** [child_name parent k] is the registry name of shard [k]'s child
    extent, [parent ^ "__s" ^ k]. Shard sources must serve their slice
    under this table name (the child extent keeps the parent's map). *)

val range_index : V.t list -> V.t -> int option
(** [range_index boundaries v] is the index of the range shard covering
    [v], or [None] when [v] is not comparable to the boundaries. *)

val owner_of_key : partition -> V.t -> int
(** Ring owner of a key under the [Hash] scheme (raises
    [Invalid_argument] on a [Range] partition). *)

val shard_of_value : partition -> V.t -> int
(** Shard index a key value belongs to, under either scheme.
    Incomparable range keys land in shard 0. Used to slice demo and
    bench data consistently with pruning. *)

(** A conjunct over the shard key, extracted from a selection
    predicate: equality, bounds, or membership. *)
type constr =
  | Ceq of V.t
  | Clt of V.t
  | Cle of V.t
  | Cgt of V.t
  | Cge of V.t
  | Cin of V.t list

val admits : partition -> int -> constr list -> bool
(** [admits p k constrs] is [false] only when shard [k] provably holds
    no tuple satisfying every constraint — conservative: incomparable
    types, unbounded schemes, or unsupported shapes admit. Range shards
    prune on all six constraint forms; hash shards prune only on [Ceq]
    and [Cin] (ring placement gives no order). *)

val pp_scheme : Format.formatter -> scheme -> unit
val pp : Format.formatter -> partition -> unit
(** Renders in the ODL surface syntax,
    e.g. [sharded by salary range (10, 20) across r0 r1 r2]. *)
