module V = Disco_value.Value

type scheme = Range of V.t list | Hash of { vnodes : int }

type shard = { s_repository : string; s_wrapper : string option }

type partition = { p_key : string; p_scheme : scheme; p_shards : shard list }

let default_vnodes = 16

let child_name parent k = parent ^ "__s" ^ string_of_int k

(* FNV-1a, masked to 62 bits so ring points stay positive on every
   OCaml int width (the offset basis is pre-masked for the same
   reason). Deterministic: no Random, no wall clock. *)
let fnv1a s =
  let h = ref 0x0bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h land 0x3fffffffffffffff

let hash_key v =
  let tag =
    match v with
    | V.Int n -> "i:" ^ string_of_int n
    | V.Float f ->
        (* Int and Float with the same numeric value must hash alike so
           placement agrees with numeric_compare equality. *)
        if Float.is_integer f && Float.abs f < 1e18 then
          "i:" ^ string_of_int (int_of_float f)
        else "f:" ^ string_of_float f
    | V.String s -> "s:" ^ s
    | V.Bool b -> "b:" ^ string_of_bool b
    | other -> "v:" ^ V.to_string other
  in
  fnv1a tag

(* Ring points for shard [k]: one per vnode, seeded by the shard's
   repository so a shard keeps its arc when others are added. Sorted by
   point; ties broken by shard index for determinism. *)
let ring partition =
  let vnodes =
    match partition.p_scheme with
    | Hash { vnodes } -> vnodes
    | Range _ -> invalid_arg "Shard.ring: range partition has no ring"
  in
  let points =
    List.concat
      (List.mapi
         (fun k shard ->
           List.init vnodes (fun v ->
               let seed =
                 Printf.sprintf "%d/%s#%d" k shard.s_repository v
               in
               (fnv1a seed, k)))
         partition.p_shards)
  in
  List.sort compare points

let owner_of_key partition v =
  let points = ring partition in
  let h = hash_key v in
  match List.find_opt (fun (p, _) -> p >= h) points with
  | Some (_, k) -> k
  | None -> ( match points with (_, k) :: _ -> k | [] -> 0)

let range_index boundaries v =
  let rec go i = function
    | [] -> Some i
    | b :: rest -> (
        match V.numeric_compare v b with
        | Some c when c < 0 -> Some i
        | Some _ -> go (i + 1) rest
        | None -> None)
  in
  go 0 boundaries

let shard_of_value partition v =
  match partition.p_scheme with
  | Hash _ -> owner_of_key partition v
  | Range bs -> ( match range_index bs v with Some i -> i | None -> 0)

type constr =
  | Ceq of V.t
  | Clt of V.t
  | Cle of V.t
  | Cgt of V.t
  | Cge of V.t
  | Cin of V.t list

(* Bounds of range shard [k]: [lo, hi) with open ends encoded as None. *)
let range_bounds boundaries k =
  let n = List.length boundaries in
  let lo = if k = 0 then None else List.nth_opt boundaries (k - 1) in
  let hi = if k >= n then None else List.nth_opt boundaries k in
  (lo, hi)

(* Conservative: any comparison that fails (incomparable types) admits. *)
let range_admits boundaries k constr =
  let lo, hi = range_bounds boundaries k in
  let cmp a b = V.numeric_compare a b in
  let below_lo v =
    (* v < lo: every key of this shard exceeds v *)
    match lo with
    | None -> false
    | Some l -> ( match cmp v l with Some c -> c < 0 | None -> false)
  in
  let at_or_above_hi v =
    match hi with
    | None -> false
    | Some h -> ( match cmp v h with Some c -> c >= 0 | None -> false)
  in
  let covers v = not (below_lo v || at_or_above_hi v) in
  match constr with
  | Ceq v -> covers v
  | Cin vs -> vs = [] || List.exists covers vs
  | Clt v -> (
      (* need some key < v in [lo, hi): fails iff v <= lo *)
      match lo with
      | None -> true
      | Some l -> ( match cmp v l with Some c -> c > 0 | None -> true))
  | Cle v -> (
      match lo with
      | None -> true
      | Some l -> ( match cmp v l with Some c -> c >= 0 | None -> true))
  | Cgt v | Cge v -> (
      (* need some key > v (or >= v) in [lo, hi): fails iff hi <= v
         (strict bound hi means keys reach just below hi) *)
      match hi with
      | None -> true
      | Some h -> ( match cmp h v with Some c -> c > 0 | None -> true))

let hash_admits partition k constr =
  match constr with
  | Ceq v -> owner_of_key partition v = k
  | Cin vs -> vs = [] || List.exists (fun v -> owner_of_key partition v = k) vs
  | Clt _ | Cle _ | Cgt _ | Cge _ -> true

let admits partition k constrs =
  List.for_all
    (fun constr ->
      match partition.p_scheme with
      | Range bs -> range_admits bs k constr
      | Hash _ -> hash_admits partition k constr)
    constrs

let pp_scheme ppf = function
  | Range bs ->
      Fmt.pf ppf "range (%a)" Fmt.(list ~sep:(any ", ") V.pp) bs
  | Hash { vnodes } ->
      if vnodes = default_vnodes then Fmt.pf ppf "hash"
      else Fmt.pf ppf "hash vnodes %d" vnodes

let pp_shard ppf s =
  match s.s_wrapper with
  | None -> Fmt.string ppf s.s_repository
  | Some w -> Fmt.pf ppf "%s : %s" s.s_repository w

let pp ppf p =
  Fmt.pf ppf "sharded by %s %a across %a" p.p_key pp_scheme p.p_scheme
    Fmt.(list ~sep:(any " ") pp_shard)
    p.p_shards
