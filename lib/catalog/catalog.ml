type kind = Repository | Wrapper | Mediator | Catalog | Extent

let kind_name = function
  | Repository -> "repository"
  | Wrapper -> "wrapper"
  | Mediator -> "mediator"
  | Catalog -> "catalog"
  | Extent -> "extent"

type entry = {
  e_kind : kind;
  e_name : string;
  e_owner : string;
  e_info : (string * string) list;
}

type t = {
  name : string;
  table : (kind * string, entry) Hashtbl.t;
  mutable order : (kind * string) list;  (* reverse registration order *)
  mutable peers : t list;
}

let create ~name = { name; table = Hashtbl.create 32; order = []; peers = [] }
let name t = t.name

let register t entry =
  let key = (entry.e_kind, entry.e_name) in
  if not (Hashtbl.mem t.table key) then t.order <- key :: t.order;
  Hashtbl.replace t.table key entry

let deregister t kind entry_name =
  let key = (kind, entry_name) in
  Hashtbl.remove t.table key;
  t.order <- List.filter (fun k -> k <> key) t.order

let add_peer t peer = if not (List.memq peer t.peers) then t.peers <- peer :: t.peers

(* Breadth-first over peers; physical identity prevents cycles. *)
let rec bfs visited frontier f =
  match frontier with
  | [] -> None
  | c :: rest ->
      if List.memq c visited then bfs visited rest f
      else
        match f c with
        | Some _ as found -> found
        | None -> bfs (c :: visited) (rest @ c.peers) f

let lookup t kind entry_name =
  bfs [] [ t ] (fun c -> Hashtbl.find_opt c.table (kind, entry_name))

let entries t =
  List.rev_map (fun key -> Hashtbl.find t.table key) t.order

let overview t =
  let seen = Hashtbl.create 64 in
  let counts = Hashtbl.create 4 in
  let rec walk visited frontier =
    match frontier with
    | [] -> ()
    | c :: rest ->
        if List.memq c visited then walk visited rest
        else (
          Hashtbl.iter
            (fun key entry ->
              if not (Hashtbl.mem seen key) then (
                Hashtbl.replace seen key ();
                let n =
                  Option.value (Hashtbl.find_opt counts entry.e_kind) ~default:0
                in
                Hashtbl.replace counts entry.e_kind (n + 1)))
            c.table;
          walk (c :: visited) (rest @ c.peers))
  in
  walk [] [ t ];
  List.filter_map
    (fun kind ->
      Option.map (fun n -> (kind, n)) (Hashtbl.find_opt counts kind))
    [ Repository; Wrapper; Mediator; Catalog; Extent ]

let pp ppf t =
  Fmt.pf ppf "catalog %s: %a" t.name
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (k, n) ->
         Fmt.pf ppf "%d %s(s)" n (kind_name k)))
    (overview t)
