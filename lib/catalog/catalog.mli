(** The catalog component (C in the paper's Figure 1).

    "Special mediators, catalogs, keep track of collections of databases,
    wrappers, and mediators in the system. Catalogs do not have total
    knowledge of all elements of the system; however, they provide an
    overview of the entire system."

    A catalog is a registry of component descriptors; mediators register
    the repositories and wrappers they use and themselves. Catalogs can
    peer with other catalogs, and lookups chase peers (bounded), so no
    single catalog needs total knowledge. *)

type kind = Repository | Wrapper | Mediator | Catalog | Extent

val kind_name : kind -> string
(** [Extent] entries describe partitioned (sharded) extents: mediators
    publish the shard key, scheme and shard list in [e_info] so peers
    can see how a logical collection is laid out. *)

type entry = {
  e_kind : kind;
  e_name : string;  (** globally meaningful name *)
  e_owner : string;  (** component that registered it *)
  e_info : (string * string) list;  (** free-form descriptors *)
}

type t

val create : name:string -> t
val name : t -> string

val register : t -> entry -> unit
(** Last registration wins (components re-register on change). *)

val deregister : t -> kind -> string -> unit

val add_peer : t -> t -> unit
(** Make another catalog reachable from this one (one direction). *)

val lookup : t -> kind -> string -> entry option
(** Search this catalog, then peers breadth-first (cycle-safe). *)

val entries : t -> entry list
(** Local entries only, registration order. *)

val overview : t -> (kind * int) list
(** Count of known entries per kind, including what peers hold (each
    entry counted once even if reachable through several peers). *)

val pp : Format.formatter -> t -> unit
