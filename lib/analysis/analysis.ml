module V = Disco_value.Value
module Otype = Disco_odl.Otype
module Registry = Disco_odl.Registry
module Typemap = Disco_odl.Typemap
module Lexer = Disco_lex.Lexer
module Oql_parser = Disco_oql.Parser
module Typecheck = Disco_oql.Typecheck
module Expand = Disco_core.Expand
module Expr = Disco_algebra.Expr
module Compile = Disco_algebra.Compile
module Decompile = Disco_algebra.Decompile
module Rules = Disco_algebra.Rules
module Grammar = Disco_wrapper.Grammar
module Wrapper = Disco_wrapper.Wrapper
module Shard = Disco_shard.Shard
module Shard_prune = Disco_optimizer.Shard_prune
module Optimizer = Disco_optimizer.Optimizer
module Plan = Disco_physical.Plan
module Cost_model = Disco_cost.Cost_model
module Answer_cache = Disco_cache.Answer_cache
module Check = Disco_check.Check
module Catalog = Disco_catalog.Catalog

type query_class = Invalid | Hybrid | Pushed | Mixed

let class_name = function
  | Invalid -> "invalid"
  | Hybrid -> "hybrid"
  | Pushed -> "pushed"
  | Mixed -> "mixed"

type outage = {
  o_down : string;
  o_unavailable : string list;
  o_fragments : string list;
}

type query_report = {
  q_loc : string;
  q_text : string;
  q_class : query_class;
  q_sources : string list;
  q_outages : outage list;
}

type wrapper_report = {
  w_object : string;
  w_constructor : string;
  w_extents : string list;
  w_submits : int;
  w_dead : string list;
}

type summary = {
  s_interfaces : int;
  s_extents : int;
  s_repositories : int;
  s_wrappers : int;
  s_views : int;
  s_queries : int;
}

type report = {
  r_summary : summary;
  r_queries : query_report list;
  r_wrappers : wrapper_report list;
  r_spofs : string list;
  r_diags : (string * Check.diag) list;
}

(* -- diagnostic codes -- *)

let a001 = "DISCO-A001"
let a002 = "DISCO-A002"
let a003 = "DISCO-A003"
let a004 = "DISCO-A004"
let a005 = "DISCO-A005"
let a006 = "DISCO-A006"

let code_registry =
  [
    ( a001,
      Check.Warning,
      "single point of failure: no replica covers a repository some query \
       needs" );
    ( a002,
      Check.Warning,
      "dead grammar productions: wrapper capability the workload never \
       exercises" );
    ( a003,
      Check.Warning,
      "unconstrained shard key: no workload predicate ever lets partition \
       pruning fire" );
    ( a004,
      Check.Warning,
      "unused index advertisement: index-served attribute no query filters \
       on" );
    ( a005,
      Check.Error,
      "schema inconsistency: view or type map names attributes the schema \
       does not provide" );
    ( a006,
      Check.Error,
      "cache-key collision: inequivalent submits share an answer-cache key" );
  ]

let diag ~code ~severity ~path fmt =
  Format.kasprintf
    (fun d_message ->
      { Check.d_code = code; d_severity = severity; d_path = path; d_message })
    fmt

let fed_file = "(federation)"

(* -- corpus splitting (the discoctl lint convention) -- *)

let queries_of_corpus ~file text =
  String.split_on_char '\n' text
  |> List.mapi (fun i raw -> (i + 1, String.trim raw))
  |> List.filter_map (fun (lineno, line) ->
         if line = "" then None
         else if String.length line >= 2 && String.sub line 0 2 = "--" then
           None
         else Some (Printf.sprintf "%s:%d" file lineno, line))

(* -- planning context (exactly how discoctl lint resolves things) -- *)

type ctx = {
  reg : Registry.t;
  wrapper_of : string -> Wrapper.t option;
  repo_of : string -> string option;
  can_push : Rules.can_push;
  shard : string -> (Shard.partition * int) option;
}

let ctx_of reg =
  let wrapper_of ext =
    Option.bind (Registry.find_extent reg ext) (fun me ->
        Option.bind
          (Registry.find_object reg me.Registry.me_wrapper)
          (fun o ->
            Wrapper.of_constructor_args o.Registry.obj_constructor
              o.Registry.obj_args))
  in
  let repo_of ext =
    Option.map
      (fun me -> me.Registry.me_repository)
      (Registry.find_extent reg ext)
  in
  let can_push ~repo:_ expr =
    let extents = Expr.gets expr in
    let ws = List.filter_map wrapper_of extents in
    List.length ws = List.length extents
    && (match ws with
       | [] -> false
       | first :: rest ->
           List.for_all (fun w -> Wrapper.name w = Wrapper.name first) rest)
    && List.for_all (fun w -> Wrapper.accepts w expr) ws
  in
  let shard ext =
    match Registry.find_extent reg ext with
    | Some { Registry.me_shard_of = Some (parent, k); _ } ->
        Option.bind (Registry.find_extent reg parent) (fun pme ->
            Option.map (fun p -> (p, k)) pme.Registry.me_partition)
    | _ -> None
  in
  { reg; wrapper_of; repo_of; can_push; shard }

(* -- one query through the mediator's own planning pipeline -- *)

type planned_ok = { located : Expr.expr; logical : Expr.expr }

type planned =
  | Pfail of Check.diag  (** parse / expand / type failure *)
  | Phybrid of string list  (** extents referenced, for availability *)
  | Pok of planned_ok

let plan_query ctx text =
  match Oql_parser.parse text with
  | exception Lexer.Error (msg, pos) ->
      Pfail
        (diag ~code:"DISCO-E012" ~severity:Check.Error ~path:"query"
           "parse error at offset %d: %s" pos msg)
  | ast -> (
      match Expand.expand ctx.reg ast with
      | exception Expand.Expand_error msg ->
          Pfail
            (diag ~code:"DISCO-E013" ~severity:Check.Error ~path:"query"
               "expansion failed: %s" msg)
      | expanded -> (
          match
            Typecheck.check (Typecheck.env_of_registry ctx.reg) expanded
          with
          | Error msg ->
              Pfail
                (diag ~code:"DISCO-E013" ~severity:Check.Error ~path:"query"
                   "type error: %s" msg)
          | Ok _ -> (
              match Compile.compile expanded with
              | Error _ ->
                  Phybrid (Disco_oql.Ast.free_collections expanded)
              | Ok compiled ->
                  let located =
                    Compile.locate ~repo_of:ctx.repo_of compiled
                  in
                  let choice =
                    Optimizer.optimize ~params:Plan.default_params
                      ~shard:ctx.shard ~can_push:ctx.can_push
                      ~cost:(Cost_model.create ()) located
                  in
                  Pok { located; logical = choice.Optimizer.logical })))

let plan_logical reg text =
  let ctx = ctx_of reg in
  match plan_query ctx text with
  | Pfail d -> Error d.Check.d_message
  | Phybrid _ -> Error "outside the algebraic subset (hybrid evaluation)"
  | Pok { logical; _ } -> Ok logical

(* -- availability: replay the runtime's failover rule -- *)

(* The runtime binds each submit through its first-scanned extent
   (runtime.ml [prepare_exec]): failover candidates are the primary
   repository followed by the extent's replicas, and the exec is blocked
   only when every candidate is down. *)
let replicas_of reg body =
  match Expr.gets body with
  | [] -> []
  | first :: _ -> (
      match Registry.find_extent reg first with
      | Some me -> me.Registry.me_replicas
      | None -> [])

let submit_blocked reg ~down repo body =
  down repo && List.for_all down (replicas_of reg body)

let predict_unavailable reg ~down logical =
  Expr.submits logical
  |> List.filter_map (fun (repo, body) ->
         if submit_blocked reg ~down repo body then Some repo else None)
  |> List.sort_uniq String.compare

let predicted_residual ~resolve ~down reg logical =
  let blocked = ref false in
  let residual =
    Expr.map_submits
      (fun repo body ->
        if submit_blocked reg ~down repo body then (
          blocked := true;
          Expr.Submit (repo, body))
        else Expr.Data (Expr.eval ~resolve body))
      logical
  in
  if !blocked then Some (Decompile.decompile_string residual) else None

let decompile_fragment body =
  match Decompile.decompile_string body with
  | s -> s
  | exception Decompile.Not_decompilable _ -> Expr.to_string body

(* Outages worth reporting for one planned query: every primary
   repository, taken down alone. A repository that is only a replica
   can never block anything by itself, so primaries are the complete
   candidate set. *)
let outages_of_submits reg submits =
  let primaries =
    List.sort_uniq String.compare (List.map fst submits)
  in
  List.filter_map
    (fun d ->
      let down r = r = d in
      let lost =
        List.filter
          (fun (repo, body) -> submit_blocked reg ~down repo body)
          submits
      in
      if lost = [] then None
      else
        Some
          {
            o_down = d;
            o_unavailable =
              List.sort_uniq String.compare (List.map fst lost);
            o_fragments = List.map (fun (_, b) -> decompile_fragment b) lost;
          })
    primaries

(* Hybrid queries bypass the algebra, so availability falls back to the
   extents the expanded query ranges over: losing any of their
   repositories (with no replica) loses the whole answer. *)
let outages_of_extents reg extents =
  let bindings =
    List.filter_map
      (fun e ->
        Option.map
          (fun me -> (me.Registry.me_repository, me.Registry.me_replicas))
          (Registry.find_extent reg e))
      extents
  in
  let primaries =
    List.sort_uniq String.compare (List.map fst bindings)
  in
  List.filter_map
    (fun d ->
      let down r = r = d in
      let lost =
        List.exists
          (fun (repo, reps) -> down repo && List.for_all down reps)
          bindings
      in
      if lost then Some { o_down = d; o_unavailable = [ d ]; o_fragments = [] }
      else None)
    primaries

let rec fully_pushed = function
  | Expr.Submit _ | Expr.Data _ -> true
  | Expr.Union es -> List.for_all fully_pushed es
  | Expr.Get _ | Expr.Select _ | Expr.Project _ | Expr.Map _ | Expr.Join _
  | Expr.Distinct _ ->
      false

(* -- workload-facing coverage facts gathered per query -- *)

(* Attributes the workload filters on, as (extent, field) pairs: the
   fields of every [Select] predicate are charged to the extents the
   selection ranges over, and join-key fields to their own side. Shard
   children report as their parent, so per-extent facts aggregate. *)
let display_extent reg name =
  match Registry.find_extent reg name with
  | Some { Registry.me_shard_of = Some (parent, _); _ } -> parent
  | _ -> name

let filtered_fields reg expr =
  let acc = ref [] in
  let charge extents fields =
    List.iter
      (fun e ->
        let e = display_extent reg e in
        List.iter (fun f -> acc := (e, f) :: !acc) fields)
      extents
  in
  let field_of_path p =
    match List.rev p with [] -> None | last :: _ -> Some last
  in
  let rec walk e =
    match e with
    | Expr.Get _ | Expr.Data _ -> ()
    | Expr.Select (inner, pred) ->
        charge (Expr.gets inner)
          (List.filter_map field_of_path (Expr.pred_paths pred));
        walk inner
    | Expr.Join (l, r, pairs) ->
        List.iter
          (fun (lp, rp) ->
            charge (Expr.gets l) (Option.to_list (field_of_path lp));
            charge (Expr.gets r) (Option.to_list (field_of_path rp)))
          pairs;
        walk l;
        walk r
    | Expr.Project (inner, _) | Expr.Map (inner, _) | Expr.Distinct inner
    | Expr.Submit (_, inner) ->
        walk inner
    | Expr.Union es -> List.iter walk es
  in
  walk expr;
  !acc

(* -- synthetic data: deterministic rows derived from the schema -- *)

let synth_value ext f ty i =
  let seed = (String.length ext * 31) + (String.length f * 7) in
  match ty with
  | Otype.TInt -> V.Int ((seed mod 11) + (i * 3))
  | Otype.TFloat -> V.Float (float_of_int (seed mod 11) +. (float_of_int i /. 2.))
  | Otype.TBool -> V.Bool ((seed + i) mod 2 = 0)
  | Otype.TString -> V.String (Printf.sprintf "%s.%s#%d" ext f i)
  | Otype.TVoid | Otype.TInterface _ | Otype.TStruct _ | Otype.TBag _
  | Otype.TSet _ | Otype.TList _ ->
      V.Null

let synthetic_resolve reg name =
  match Registry.find_extent reg name with
  | None -> None
  | Some me -> (
      match Registry.attributes_of reg me.Registry.me_interface with
      | exception Registry.Odl_error _ -> None
      | attrs ->
          let row i =
            V.strct (List.map (fun (f, ty) -> (f, synth_value name f ty i)) attrs)
          in
          Some (V.bag [ row 0; row 1; row 2 ]))

(* -- DISCO-A006: cache-key collisions -- *)

let collision_diags ~resolve pairs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (repo, body) ->
      let key = Answer_cache.key ~repo body in
      let prev = try Hashtbl.find tbl key with Not_found -> [] in
      Hashtbl.replace tbl key ((repo, body) :: prev))
    pairs;
  Hashtbl.fold (fun key group acc -> (key, List.rev group) :: acc) tbl []
  |> List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2)
  |> List.concat_map (fun (key, group) ->
         match group with
         | [] | [ _ ] -> []
         | (repo0, body0) :: rest ->
             let norm0 = Answer_cache.normalize body0 in
             let distinct =
               List.filter
                 (fun (_, b) -> not (Expr.equal (Answer_cache.normalize b) norm0))
                 rest
             in
             List.filter_map
               (fun (_, body) ->
                 let proven_equal =
                   match
                     ( Expr.eval ~resolve body0,
                       Expr.eval ~resolve body )
                   with
                   | v0, v -> V.equal v0 v
                   | exception _ -> false
                 in
                 if proven_equal then None
                 else
                   Some
                     (diag ~code:a006 ~severity:Check.Error ~path:"cache"
                        "answer-cache key %S is shared by inequivalent \
                         submits %s and %s on repository %s: one could be \
                         served the other's cached rows"
                        key (Expr.to_string body0) (Expr.to_string body)
                        repo0))
               distinct)

(* -- the analysis proper -- *)

let wrapper_objects reg =
  Registry.object_names reg
  |> List.sort String.compare
  |> List.filter_map (fun name ->
         match Registry.find_object reg name with
         | Some o
           when String.length o.Registry.obj_constructor >= 7
                && String.sub o.Registry.obj_constructor 0 7 = "Wrapper" ->
             Some (name, o)
         | _ -> None)

let truncate_list n items =
  let len = List.length items in
  if len <= n then String.concat "; " items
  else
    String.concat "; " (List.filteri (fun i _ -> i < n) items)
    ^ Printf.sprintf "; … (%d more)" (len - n)

let view_diags ctx =
  Registry.view_names ctx.reg
  |> List.sort String.compare
  |> List.concat_map (fun name ->
         match Registry.find_view ctx.reg name with
         | None -> []
         | Some body -> (
             let path = Printf.sprintf "view(%s)" name in
             match Oql_parser.parse body with
             | exception Lexer.Error (msg, _) ->
                 [
                   diag ~code:a005 ~severity:Check.Error ~path
                     "view body fails to parse: %s" msg;
                 ]
             | ast -> (
                 match Expand.expand ctx.reg ast with
                 | exception Expand.Expand_error msg ->
                     [
                       diag ~code:a005 ~severity:Check.Error ~path
                         "view body fails to expand: %s" msg;
                     ]
                 | expanded -> (
                     match
                       Typecheck.check
                         (Typecheck.env_of_registry ctx.reg)
                         expanded
                     with
                     | Error msg ->
                         [
                           diag ~code:a005 ~severity:Check.Error ~path
                             "view body fails to type: %s" msg;
                         ]
                     | Ok _ -> []))))

let typemap_diags reg =
  Registry.all_extents reg
  |> List.filter (fun me -> me.Registry.me_shard_of = None)
  |> List.concat_map (fun me ->
         match Registry.attributes_of reg me.Registry.me_interface with
         | exception Registry.Odl_error _ -> []
         | attrs ->
             Typemap.field_pairs me.Registry.me_map
             |> List.filter_map (fun (src, med) ->
                    if List.mem_assoc med attrs then None
                    else
                      Some
                        (diag ~code:a005 ~severity:Check.Error
                           ~path:(Printf.sprintf "extent(%s)" me.Registry.me_name)
                           "type map binds source field %S to mediator \
                            attribute %S, which interface %s does not declare"
                           src med me.Registry.me_interface)))

let analyze ?(workload = []) reg =
  let ctx = ctx_of reg in
  let queries =
    List.concat_map
      (fun (file, text) -> queries_of_corpus ~file text)
      workload
  in
  let planned =
    List.map (fun (loc, text) -> (loc, text, plan_query ctx text)) queries
  in
  (* query reports + per-query diagnostics *)
  let qdiags = ref [] in
  let reports =
    List.map
      (fun (loc, text, p) ->
        match p with
        | Pfail d ->
            qdiags := (loc, d) :: !qdiags;
            {
              q_loc = loc;
              q_text = text;
              q_class = Invalid;
              q_sources = [];
              q_outages = [];
            }
        | Phybrid extents ->
            let repos =
              List.sort_uniq String.compare
                (List.filter_map ctx.repo_of extents)
            in
            {
              q_loc = loc;
              q_text = text;
              q_class = Hybrid;
              q_sources = repos;
              q_outages = outages_of_extents reg extents;
            }
        | Pok { logical; _ } ->
            let submits = Expr.submits logical in
            {
              q_loc = loc;
              q_text = text;
              q_class = (if fully_pushed logical then Pushed else Mixed);
              q_sources =
                List.sort_uniq String.compare (List.map fst submits);
              q_outages = outages_of_submits reg submits;
            })
      planned
  in
  let compiled =
    List.filter_map
      (fun (loc, _, p) ->
        match p with Pok ok -> Some (loc, ok) | Pfail _ | Phybrid _ -> None)
      planned
  in
  (* A001: single points of failure across the workload *)
  let spof_tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
      List.iter
        (fun o ->
          let prev =
            try Hashtbl.find spof_tbl o.o_down with Not_found -> []
          in
          Hashtbl.replace spof_tbl o.o_down (r.q_loc :: prev))
        r.q_outages)
    reports;
  let spofs =
    Hashtbl.fold (fun repo locs acc -> (repo, List.rev locs) :: acc) spof_tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let spof_diags =
    List.map
      (fun (repo, locs) ->
        diag ~code:a001 ~severity:Check.Warning
          ~path:(Printf.sprintf "repo(%s)" repo)
          "single point of failure: no replica covers repository %s; %d \
           workload %s answers when it is down (%s)"
          repo (List.length locs)
          (if List.length locs = 1 then "query loses part of its"
           else "queries lose part of their")
          (truncate_list 4 locs))
      spofs
  in
  (* A002 + wrapper reports: route every submit to its serving wrapper,
     mark the grammar productions it exercises *)
  let wobjs = wrapper_objects reg in
  let used : (string, (string, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let submit_counts = Hashtbl.create 8 in
  let resolve_wobj wname =
    Option.bind (Registry.find_object reg wname) (fun o ->
        Wrapper.of_constructor_args o.Registry.obj_constructor
          o.Registry.obj_args)
  in
  let serving_object body =
    match
      List.filter_map
        (fun e ->
          Option.map
            (fun me -> me.Registry.me_wrapper)
            (Registry.find_extent reg e))
        (Expr.gets body)
    with
    | [] -> None
    | first :: rest when List.for_all (( = ) first) rest -> Some first
    | _ :: _ -> None
  in
  List.iter
    (fun (_, { logical; _ }) ->
      List.iter
        (fun (_, body) ->
          match serving_object body with
          | None -> ()
          | Some wname -> (
              let prev =
                try Hashtbl.find submit_counts wname with Not_found -> 0
              in
              Hashtbl.replace submit_counts wname (prev + 1);
              let marks =
                match Hashtbl.find_opt used wname with
                | Some t -> t
                | None ->
                    let t = Hashtbl.create 16 in
                    Hashtbl.replace used wname t;
                    t
              in
              match resolve_wobj wname with
              | None -> ()
              | Some w ->
                  let g = Wrapper.functionality w in
                  let sentence = Grammar.tokens_of_expr body in
                  if Grammar.derives g sentence then
                    List.iter
                      (fun p ->
                        Hashtbl.replace marks
                          (Grammar.production_to_string p) ())
                      (Grammar.used_productions g sentence)))
        (Expr.submits logical))
    compiled;
  let wrapper_reports, dead_diags =
    List.fold_left
      (fun (wrs, ds) (name, o) ->
        let extents =
          Registry.all_extents reg
          |> List.filter (fun me -> me.Registry.me_wrapper = name)
          |> List.map (fun me -> me.Registry.me_name)
          |> List.sort String.compare
        in
        let submits =
          try Hashtbl.find submit_counts name with Not_found -> 0
        in
        match
          Wrapper.of_constructor_args o.Registry.obj_constructor
            o.Registry.obj_args
        with
        | None ->
            ( wrs
              @ [
                  {
                    w_object = name;
                    w_constructor = o.Registry.obj_constructor;
                    w_extents = extents;
                    w_submits = submits;
                    w_dead = [];
                  };
                ],
              ds )
        | Some w ->
            let g = Wrapper.functionality w in
            let marks = Hashtbl.find_opt used name in
            let dead =
              g.Grammar.productions
              |> List.map Grammar.production_to_string
              |> List.filter (fun p ->
                     match marks with
                     | None -> true
                     | Some t -> not (Hashtbl.mem t p))
              |> List.sort_uniq String.compare
            in
            let ds =
              if compiled <> [] && extents <> [] && dead <> [] then
                ds
                @ [
                    diag ~code:a002 ~severity:Check.Warning
                      ~path:(Printf.sprintf "wrapper(%s)" name)
                      "%d of %d grammar productions are unreachable by the \
                       workload: %s"
                      (List.length dead)
                      (List.length g.Grammar.productions)
                      (truncate_list 4 dead);
                  ]
              else ds
            in
            ( wrs
              @ [
                  {
                    w_object = name;
                    w_constructor = o.Registry.obj_constructor;
                    w_extents = extents;
                    w_submits = submits;
                    w_dead = (if compiled <> [] then dead else []);
                  };
                ],
              ds ))
      ([], []) wobjs
  in
  (* A003: shard keys the workload never constrains *)
  let shard_diags =
    Registry.all_extents reg
    |> List.filter_map (fun me ->
           Option.map (fun p -> (me, p)) me.Registry.me_partition)
    |> List.concat_map (fun (me, p) ->
           let children =
             Registry.shard_children reg me.Registry.me_name
             |> List.map (fun c -> c.Registry.me_name)
           in
           let referenced = ref false and constrained = ref false in
           List.iter
             (fun (_, { located; _ }) ->
               List.iter
                 (fun (child, constrs) ->
                   if List.mem child children then begin
                     referenced := true;
                     if constrs <> [] then constrained := true
                   end)
                 (Shard_prune.key_constraints ~shard:ctx.shard located))
             compiled;
           if !referenced && not !constrained then
             [
               diag ~code:a003 ~severity:Check.Warning
                 ~path:(Printf.sprintf "extent(%s)" me.Registry.me_name)
                 "shard key %S of partitioned extent %s is never constrained \
                  by the workload: every query scatters to all %d shards \
                  (partition pruning can never fire)"
                 p.Shard.p_key me.Registry.me_name
                 (List.length p.Shard.p_shards);
             ]
           else [])
  in
  (* A004: advertised index attributes the workload never filters on *)
  let filtered =
    List.concat_map
      (fun (_, { located; _ }) -> filtered_fields reg located)
      compiled
  in
  let referenced_extents =
    List.concat_map
      (fun (_, { located; _ }) ->
        List.map (display_extent reg) (Expr.gets located))
      compiled
    |> List.sort_uniq String.compare
  in
  let index_diags =
    if compiled = [] then []
    else
      Registry.all_extents reg
      |> List.filter (fun me -> me.Registry.me_shard_of = None)
      |> List.concat_map (fun me ->
             let name = me.Registry.me_name in
             if not (List.mem name referenced_extents) then []
             else
               match ctx.wrapper_of name with
               | None -> []
               | Some w ->
                   Grammar.named_attributes (Wrapper.functionality w)
                   |> List.filter_map (fun f ->
                          if List.mem (name, f) filtered then None
                          else
                            Some
                              (diag ~code:a004 ~severity:Check.Warning
                                 ~path:(Printf.sprintf "extent(%s)" name)
                                 "wrapper %s advertises index-served lookups \
                                  on %s.%s, but no workload query filters on \
                                  it"
                                 me.Registry.me_wrapper name f)))
  in
  (* A005 + A006 *)
  let consistency_diags = view_diags ctx @ typemap_diags reg in
  let cache_diags =
    collision_diags
      ~resolve:(synthetic_resolve reg)
      (List.concat_map
         (fun (_, { logical; _ }) -> Expr.submits logical)
         compiled)
  in
  let fed_diags =
    List.map
      (fun d -> (fed_file, d))
      (spof_diags @ dead_diags @ shard_diags @ index_diags
     @ consistency_diags @ cache_diags)
  in
  let all_diags =
    List.rev_append !qdiags fed_diags
    |> List.sort (fun (f1, d1) (f2, d2) ->
           compare
             (f1, d1.Check.d_code, d1.Check.d_path, d1.Check.d_message)
             (f2, d2.Check.d_code, d2.Check.d_path, d2.Check.d_message))
  in
  let obj_count prefix =
    Registry.object_names reg
    |> List.filter (fun n ->
           match Registry.find_object reg n with
           | Some o ->
               String.length o.Registry.obj_constructor
               >= String.length prefix
               && String.sub o.Registry.obj_constructor 0
                    (String.length prefix)
                  = prefix
           | None -> false)
    |> List.length
  in
  {
    r_summary =
      {
        s_interfaces = List.length (Registry.interface_names reg);
        s_extents =
          List.length
            (List.filter
               (fun me -> me.Registry.me_shard_of = None)
               (Registry.all_extents reg));
        s_repositories = obj_count "Repository";
        s_wrappers = obj_count "Wrapper";
        s_views = List.length (Registry.view_names reg);
        s_queries = List.length queries;
      };
    r_queries = reports;
    r_wrappers = wrapper_reports;
    r_spofs = List.map fst spofs;
    r_diags = all_diags;
  }

(* -- rendering -- *)

let diagnostics_doc () =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "# Disco diagnostic codes\n\n";
  add
    "Generated from the diagnostic registries — regenerate with\n\
     `discoctl analyze --doc > doc/diagnostics.md`. `discoctl lint` emits\n\
     the `Exxx`/`Wxxx` codes; `discoctl analyze` adds the federation-wide\n\
     `Axxx` codes. Both render diagnostics through the same JSON schema\n\
     (`--json`): an array of `{file, code, severity, path, message}`\n\
     objects, stably sorted.\n";
  let codes = Check.code_registry @ code_registry in
  let section title sev =
    add "\n## %s\n\n" title;
    add "| code | summary |\n|------|---------|\n";
    List.iter
      (fun (code, s, summary) ->
        if s = sev then add "| `%s` | %s |\n" code summary)
      (List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) codes)
  in
  section "Errors" Check.Error;
  section "Warnings" Check.Warning;
  Buffer.contents b

let pp_outage ppf o =
  Fmt.pf ppf "%s down -> unavailable {%s}" o.o_down
    (String.concat ", " o.o_unavailable)

let pp_query ppf q =
  Fmt.pf ppf "%s: %s; sources {%s}" q.q_loc (class_name q.q_class)
    (String.concat ", " q.q_sources);
  List.iter (fun o -> Fmt.pf ppf "@,  %a" pp_outage o) q.q_outages

let pp_report ppf r =
  Fmt.pf ppf "@[<v>";
  Fmt.pf ppf
    "federation: %d interface(s), %d extent(s), %d repository(ies), %d \
     wrapper(s), %d view(s)@,"
    r.r_summary.s_interfaces r.r_summary.s_extents r.r_summary.s_repositories
    r.r_summary.s_wrappers r.r_summary.s_views;
  let count c =
    List.length (List.filter (fun q -> q.q_class = c) r.r_queries)
  in
  Fmt.pf ppf
    "workload: %d quer(ies) — %d pushed, %d mixed, %d hybrid, %d invalid@,"
    r.r_summary.s_queries (count Pushed) (count Mixed) (count Hybrid)
    (count Invalid);
  List.iter (fun q -> Fmt.pf ppf "%a@," pp_query q) r.r_queries;
  List.iter
    (fun w ->
      Fmt.pf ppf
        "wrapper %s (%s): %d extent(s), %d workload submit(s), %d dead \
         production(s)@,"
        w.w_object w.w_constructor
        (List.length w.w_extents)
        w.w_submits
        (List.length w.w_dead))
    r.r_wrappers;
  (match r.r_spofs with
  | [] -> Fmt.pf ppf "no single point of failure@,"
  | spofs ->
      Fmt.pf ppf "single points of failure: %s@," (String.concat ", " spofs));
  List.iter
    (fun (f, d) -> Fmt.pf ppf "%s: %a@," f Check.pp_diag d)
    r.r_diags;
  Fmt.pf ppf "@]"

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_string s = "\"" ^ json_escape s ^ "\""
let json_list items = "[" ^ String.concat "," items ^ "]"
let json_strings ss = json_list (List.map json_string ss)

let json_of_report r =
  let outage o =
    Printf.sprintf {|{"down":%s,"unavailable":%s,"fragments":%s}|}
      (json_string o.o_down)
      (json_strings o.o_unavailable)
      (json_strings o.o_fragments)
  in
  let query q =
    Printf.sprintf
      {|{"loc":%s,"query":%s,"class":%s,"sources":%s,"outages":%s}|}
      (json_string q.q_loc) (json_string q.q_text)
      (json_string (class_name q.q_class))
      (json_strings q.q_sources)
      (json_list (List.map outage q.q_outages))
  in
  let wrapper w =
    Printf.sprintf
      {|{"object":%s,"constructor":%s,"extents":%s,"submits":%d,"dead_productions":%s}|}
      (json_string w.w_object)
      (json_string w.w_constructor)
      (json_strings w.w_extents)
      w.w_submits
      (json_strings w.w_dead)
  in
  let federation =
    Printf.sprintf
      {|{"interfaces":%d,"extents":%d,"repositories":%d,"wrappers":%d,"views":%d,"queries":%d}|}
      r.r_summary.s_interfaces r.r_summary.s_extents
      r.r_summary.s_repositories r.r_summary.s_wrappers r.r_summary.s_views
      r.r_summary.s_queries
  in
  Printf.sprintf
    {|{"federation":%s,"queries":%s,"wrappers":%s,"spofs":%s,"diagnostics":%s}|}
    federation
    (json_list (List.map query r.r_queries))
    (json_list (List.map wrapper r.r_wrappers))
    (json_strings r.r_spofs)
    (Check.json_of_diags r.r_diags)

let publish cat ~owner r =
  List.iter
    (fun repo ->
      let affected =
        List.length
          (List.filter
             (fun q -> List.exists (fun o -> o.o_down = repo) q.q_outages)
             r.r_queries)
      in
      Catalog.register cat
        {
          Catalog.e_kind = Catalog.Repository;
          e_name = repo;
          e_owner = owner;
          e_info =
            [
              ("spof", "true"); ("affected_queries", string_of_int affected);
            ];
        })
    r.r_spofs
