(** Whole-federation static analysis: availability, pushdown and
    coverage, computed without contacting any source.

    Where {!Disco_check.Check} verifies one tree at a time, this module
    analyses a {e federation} — an ODL registry plus an OQL workload
    corpus — the way the mediator itself would plan it: every workload
    query is expanded, compiled, located and optimized against an empty
    cost model (the paper's designed bias toward maximal pushdown), and
    the chosen logical plan is then interrogated instead of executed.

    Three families of facts come out:

    - {e Availability}: the minimal set of repositories each query
      contacts, and — replaying the runtime's replica-failover rule
      submit by submit — exactly which answer fragments survive each
      single-repository outage. A repository whose outage loses data for
      some query, with no replica covering it, is a single point of
      failure ([DISCO-A001]).
    - {e Pushdown profile}: which queries push entirely to their
      sources, which leave mediator-side work, and which grammar
      productions of each wrapper the workload can never reach
      ([DISCO-A002]) — dead capability that either documents an unused
      source feature or reveals a workload/capability mismatch.
    - {e Cross-subsystem consistency}: declared shard keys no workload
      predicate ever constrains, so partition pruning can never fire
      ([DISCO-A003]); index-backed lookups no query filters on
      ([DISCO-A004]); type maps and views naming attributes the schema
      does not provide ([DISCO-A005]); answer-cache key collisions
      between inequivalent queries ([DISCO-A006]).

    {b Diagnostic codes} ([A] codes are this module's; they share
    {!Disco_check.Check.diag} and its JSON rendering, so [discoctl lint
    --json] and [discoctl analyze --json] emit one schema):
    - [DISCO-A001] (warning) single point of failure: a repository with
      no covering replica whose outage loses answer fragments for at
      least one workload query.
    - [DISCO-A002] (warning) dead grammar productions: productions of a
      wrapper's capability grammar that no workload submit ever
      exercises.
    - [DISCO-A003] (warning) unconstrained shard key: a partitioned
      extent is scanned by the workload, but no predicate ever
      constrains its shard key, so every query scatters to all shards.
    - [DISCO-A004] (warning) unused index advertisement: an extent's
      wrapper advertises index-served lookups on an attribute no
      workload query filters on.
    - [DISCO-A005] (error) schema inconsistency: a view fails to parse,
      expand or type against the schema, or a type map binds a mediator
      attribute its extent's interface does not declare.
    - [DISCO-A006] (error) cache-key collision: two inequivalent
      submits normalize to the same answer-cache key, so one could be
      served the other's cached rows.

    The analysis is deterministic: reports and diagnostics are stably
    ordered, so [--json] output is diffable across runs. *)

module V := Disco_value.Value
module Registry := Disco_odl.Registry
module Expr := Disco_algebra.Expr
module Check := Disco_check.Check
module Catalog := Disco_catalog.Catalog

(** How the mediator would treat a workload query. *)
type query_class =
  | Invalid  (** fails parsing, expansion or typing — see diagnostics *)
  | Hybrid  (** outside the algebraic subset; evaluated hybrid *)
  | Pushed  (** the chosen plan is entirely submits (full pushdown) *)
  | Mixed  (** submits plus mediator-side operators *)

val class_name : query_class -> string

(** The effect of one single-repository outage on one query. Only
    outages that actually lose data are reported. *)
type outage = {
  o_down : string;  (** the repository taken down *)
  o_unavailable : string list;
      (** primary repositories whose submits go unanswered — what the
          runtime would report in [Partial.unavailable] *)
  o_fragments : string list;
      (** the lost work, decompiled to OQL (one per blocked submit) *)
}

type query_report = {
  q_loc : string;  (** [file:line] *)
  q_text : string;
  q_class : query_class;
  q_sources : string list;
      (** minimal repository set a complete answer contacts, sorted *)
  q_outages : outage list;  (** sorted by [o_down] *)
}

type wrapper_report = {
  w_object : string;  (** registry object name, e.g. [w0] *)
  w_constructor : string;
  w_extents : string list;  (** extents served, sorted *)
  w_submits : int;  (** workload submits routed through this wrapper *)
  w_dead : string list;
      (** grammar productions no workload submit exercises *)
}

type summary = {
  s_interfaces : int;
  s_extents : int;  (** top-level extents (shard children not counted) *)
  s_repositories : int;
  s_wrappers : int;
  s_views : int;
  s_queries : int;
}

type report = {
  r_summary : summary;
  r_queries : query_report list;  (** workload order *)
  r_wrappers : wrapper_report list;  (** sorted by object name *)
  r_spofs : string list;  (** single-point-of-failure repositories *)
  r_diags : (string * Check.diag) list;
      (** (file, diagnostic), sorted like {!Check.json_of_diags} *)
}

val queries_of_corpus : file:string -> string -> (string * string) list
(** Split an [.oql] corpus into [(loc, query)] pairs — one query per
    line, blank lines, [--] comments and [--@] directives skipped,
    [loc = file:lineno]. The same convention [discoctl lint] reads. *)

val analyze : ?workload:(string * string) list -> Registry.t -> report
(** [analyze ~workload reg] runs the whole analysis. [workload] is a
    list of [(filename, contents)] pairs of OQL corpora (split with
    {!queries_of_corpus}). Without a workload only the schema-side
    checks fire ([DISCO-A005], and [DISCO-A001] over whole-extent
    scans is skipped since there is nothing to lose). *)

(** {1 Pieces the property tests replay}

    The availability prediction must track the runtime {e exactly}:
    under a forced outage, the analyzer's predicted unavailable set and
    residual must match what {!Disco_core.Mediator.query} actually
    degrades to. These entry points expose the prediction on its own. *)

val plan_logical : Registry.t -> string -> (Expr.expr, string) result
(** Plan one OQL query exactly as {!analyze} does — expand, typecheck,
    compile, locate, optimize against an empty cost model — and return
    the chosen logical tree. [Error] carries the first failure. *)

val predict_unavailable :
  Registry.t -> down:(string -> bool) -> Expr.expr -> string list
(** The primary repositories whose submits go unanswered when the
    [down] repositories are out, replaying the runtime failover rule: a
    submit is blocked iff its primary repository is down {e and} every
    replica of its first-scanned extent is down too. Sorted, deduped —
    the runtime's [Partial.unavailable]. *)

val predicted_residual :
  resolve:(string -> V.t option) ->
  down:(string -> bool) ->
  Registry.t ->
  Expr.expr ->
  string option
(** The residual query the runtime would return under the outage:
    blocked submits stay symbolic, ready submits fold to the rows
    [resolve] provides (the test supplies the sources' ground-truth
    data), and the result decompiles to OQL. [None] when nothing is
    blocked — the answer would be complete. *)

val collision_diags :
  resolve:(string -> V.t option) ->
  (string * Expr.expr) list ->
  Check.diag list
(** The [DISCO-A006] check on its own: group [(repository, submit
    body)] pairs by answer-cache key and report groups whose members
    are not equivalent — proven by evaluating both on [resolve]-backed
    data. Exposed separately so tests can inject crafted collisions
    that no parsable corpus produces. *)

(** {1 Rendering} *)

val code_registry : (string * Check.severity * string) list
(** The analyzer's [DISCO-Axxx] codes, same shape as
    {!Check.code_registry}. *)

val diagnostics_doc : unit -> string
(** The generated [doc/diagnostics.md]: every [Exxx]/[Wxxx]/[Axxx] code
    with severity and summary, from {!Check.code_registry} and
    {!code_registry}. A test asserts the committed file matches. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable rendering ([discoctl analyze]). *)

val json_of_report : report -> string
(** Deterministic JSON object: [{"federation": .., "queries": [..],
    "wrappers": [..], "spofs": [..], "diagnostics": [..]}] where
    [diagnostics] is byte-compatible with [discoctl lint --json]
    ({!Check.json_of_diags}). *)

val publish : Catalog.t -> owner:string -> report -> unit
(** Register the availability findings in a catalog: one [Repository]
    entry per single point of failure, carrying the number of affected
    queries in [e_info] — so peers see fragility without re-running the
    analysis. *)
