module Expr = Disco_algebra.Expr
module V = Disco_value.Value

type basis = Exact of int | Close of int | Indexed | Default

type estimate = { est_time_ms : float; est_rows : float; est_basis : basis }

(* Paper Section 3.3: "a default time cost of 0 and a data cost of 1". *)
let default_estimate = { est_time_ms = 0.0; est_rows = 1.0; est_basis = Default }

type record_entry = { time_ms : float; rows : int }

(* One observed batched round-trip: [b_size] expressions answered by one
   wrapper call taking [b_time_ms] total. *)
type batch_entry = { b_size : int; b_time_ms : float }

type t = {
  history : int;
  smoothing : float;
  close_matching : bool;
  (* exact key -> most-recent-first entries *)
  exact : (string, record_entry list) Hashtbl.t;
  (* skeleton key -> most-recent-first entries (bounded the same way) *)
  close : (string, record_entry list) Hashtbl.t;
  (* repo -> most-recent-first batched round-trips (bounded the same way) *)
  batch : (string, batch_entry list) Hashtbl.t;
  (* repo -> attributes with a declared source-side index *)
  declared : (string, (string * [ `Hash | `Sorted ]) list) Hashtbl.t;
}

let create ?(history = 8) ?(smoothing = 0.5) ?(close_matching = true) () =
  if history < 1 then invalid_arg "Cost_model.create: history must be >= 1";
  if smoothing <= 0.0 || smoothing > 1.0 then
    invalid_arg "Cost_model.create: smoothing must be in (0, 1]";
  {
    history;
    smoothing;
    close_matching;
    exact = Hashtbl.create 64;
    close = Hashtbl.create 64;
    batch = Hashtbl.create 16;
    declared = Hashtbl.create 8;
  }

let declare_index t ~repo ~attr ~kind =
  let existing = Option.value (Hashtbl.find_opt t.declared repo) ~default:[] in
  let existing = List.remove_assoc attr existing in
  Hashtbl.replace t.declared repo ((attr, kind) :: existing)

let indexed_attrs t ~repo =
  Option.value (Hashtbl.find_opt t.declared repo) ~default:[]
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Erase constants so that only the operator structure and the compared
   attributes remain. *)
let rec erase_scalar = function
  | Expr.Const _ -> Expr.Const V.Null
  | Expr.Attr p -> Expr.Attr p
  | Expr.Arith (op, a, b) -> Expr.Arith (op, erase_scalar a, erase_scalar b)

let rec erase_pred = function
  | Expr.True -> Expr.True
  | Expr.Cmp (op, a, b) -> Expr.Cmp (op, erase_scalar a, erase_scalar b)
  | Expr.Member (a, _) -> Expr.Member (erase_scalar a, V.Bag [])
  | Expr.And (a, b) -> Expr.And (erase_pred a, erase_pred b)
  | Expr.Or (a, b) -> Expr.Or (erase_pred a, erase_pred b)
  | Expr.Not a -> Expr.Not (erase_pred a)

let erase_head = function
  | Expr.Hscalar s -> Expr.Hscalar (erase_scalar s)
  | Expr.Hstruct fields ->
      Expr.Hstruct (List.map (fun (n, s) -> (n, erase_scalar s)) fields)

let rec erase = function
  | Expr.Get name -> Expr.Get name
  | Expr.Data _ -> Expr.Data (V.Bag [])
  | Expr.Select (e, p) -> Expr.Select (erase e, erase_pred p)
  | Expr.Project (e, attrs) -> Expr.Project (erase e, attrs)
  | Expr.Map (e, h) -> Expr.Map (erase e, erase_head h)
  | Expr.Join (l, r, pairs) -> Expr.Join (erase l, erase r, pairs)
  | Expr.Union es -> Expr.Union (List.map erase es)
  | Expr.Distinct e -> Expr.Distinct (erase e)
  | Expr.Submit (repo, e) -> Expr.Submit (repo, erase e)

let skeleton e = Expr.to_string (erase e)

let exact_key ~repo e = repo ^ "|" ^ Expr.to_string e
let close_key ~repo e = repo ^ "|" ^ skeleton e

let push t table key entry =
  let existing = Option.value (Hashtbl.find_opt table key) ~default:[] in
  let trimmed = List.filteri (fun i _ -> i < t.history - 1) existing in
  Hashtbl.replace table key (entry :: trimmed)

let record t ~repo ~expr ~time_ms ~rows =
  let entry = { time_ms; rows } in
  push t t.exact (exact_key ~repo expr) entry;
  push t t.close (close_key ~repo expr) entry

(* Exponential smoothing, most recent first: the newest call has weight
   alpha, the next alpha*(1-alpha), etc., renormalized over the window. *)
let smooth t entries =
  let alpha = t.smoothing in
  let _, wsum, tsum, rsum =
    List.fold_left
      (fun (w, wsum, tsum, rsum) e ->
        ( w *. (1.0 -. alpha),
          wsum +. w,
          tsum +. (w *. e.time_ms),
          rsum +. (w *. float_of_int e.rows) ))
      (alpha, 0.0, 0.0, 0.0) entries
  in
  (tsum /. wsum, rsum /. wsum)

(* Is this submit shaped like an indexed lookup at [repo]? Strip the
   structural wrappers the compiler adds (binds, projections), then look
   for a select over a get with at least one conjunct comparing a
   declared attribute to a constant (equality for any index kind, range
   comparisons only for sorted indexes). *)
let rec strip_shape = function
  | Expr.Project (e, _) | Expr.Map (e, _) | Expr.Distinct e -> strip_shape e
  | e -> e

let rec any_conjunct f = function
  | Expr.And (a, b) -> any_conjunct f a || any_conjunct f b
  | p -> f p

let attr_field path = match List.rev path with f :: _ -> f | [] -> ""

let indexed_shape t ~repo expr =
  match Hashtbl.find_opt t.declared repo with
  | None | Some [] -> false
  | Some attrs -> (
      match strip_shape expr with
      | Expr.Select (e, pred) -> (
          match strip_shape e with
          | Expr.Get _ ->
              any_conjunct
                (fun p ->
                  match p with
                  | Expr.Cmp (op, Expr.Attr path, Expr.Const _)
                  | Expr.Cmp (op, Expr.Const _, Expr.Attr path) -> (
                      match (List.assoc_opt (attr_field path) attrs, op) with
                      | Some _, Expr.Eq -> true
                      | Some `Sorted, (Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge)
                        ->
                          true
                      | _ -> false)
                  | _ -> false)
                pred
          | _ -> false)
      | _ -> false)

(* An indexed lookup we have no history for: priced like the default
   (time 0, data 1 — the paper's pushdown bias) but on an [Indexed]
   basis, which the optimizer treats as informed rather than guessed. *)
let indexed_estimate = { est_time_ms = 0.0; est_rows = 1.0; est_basis = Indexed }

let uninformed t ~repo expr =
  if indexed_shape t ~repo expr then indexed_estimate else default_estimate

let estimate t ~repo expr =
  match Hashtbl.find_opt t.exact (exact_key ~repo expr) with
  | Some (_ :: _ as entries) ->
      let time, rows = smooth t entries in
      { est_time_ms = time; est_rows = rows; est_basis = Exact (List.length entries) }
  | Some [] | None when t.close_matching -> (
      match Hashtbl.find_opt t.close (close_key ~repo expr) with
      | Some (_ :: _ as entries) ->
          let time, rows = smooth t entries in
          {
            est_time_ms = time;
            est_rows = rows;
            est_basis = Close (List.length entries);
          }
      | Some [] | None -> uninformed t ~repo expr)
  | Some [] | None -> uninformed t ~repo expr

let record_batch t ~repo ~size ~time_ms =
  if size < 1 then invalid_arg "Cost_model.record_batch: size must be >= 1";
  let existing = Option.value (Hashtbl.find_opt t.batch repo) ~default:[] in
  let trimmed = List.filteri (fun i _ -> i < t.history - 1) existing in
  Hashtbl.replace t.batch repo ({ b_size = size; b_time_ms = time_ms } :: trimmed)

(* Calibrate the batched round-trip the same way Section 3.3 calibrates
   single calls: from recorded (size, time) pairs, fit
   [time = overhead + marginal * size] by least squares.  With a single
   observed size the slope is unidentifiable, so fall back to scaling the
   mean time by size — pessimistic (it re-charges the overhead per call)
   but monotone, and it self-corrects once a second size is observed. *)
let estimate_batch t ~repo ~size =
  match Hashtbl.find_opt t.batch repo with
  | None | Some [] -> None
  | Some entries ->
      let n = float_of_int (List.length entries) in
      let sx, sy, sxx, sxy =
        List.fold_left
          (fun (sx, sy, sxx, sxy) e ->
            let x = float_of_int e.b_size in
            (sx +. x, sy +. e.b_time_ms, sxx +. (x *. x), sxy +. (x *. e.b_time_ms)))
          (0.0, 0.0, 0.0, 0.0) entries
      in
      let mean_x = sx /. n and mean_y = sy /. n in
      let denom = sxx -. (sx *. sx /. n) in
      let k = float_of_int size in
      let predicted =
        if denom > 1e-9 then
          let marginal = (sxy -. (sx *. sy /. n)) /. denom in
          let overhead = mean_y -. (marginal *. mean_x) in
          overhead +. (marginal *. k)
        else if mean_x > 0.0 then mean_y /. mean_x *. k
        else mean_y
      in
      Some (Float.max 0.0 predicted)

let recorded_batches t =
  Hashtbl.fold (fun _ entries acc -> acc + List.length entries) t.batch 0

let recorded_calls t =
  Hashtbl.fold (fun _ entries acc -> acc + List.length entries) t.exact 0

let clear t =
  (* observations only: index declarations are DDL, not history *)
  Hashtbl.reset t.exact;
  Hashtbl.reset t.close;
  Hashtbl.reset t.batch
