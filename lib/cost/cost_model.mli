(** The learned cost model of paper Section 3.3.

    Heterogeneous sources "may not export enough information to determine
    the run-time cost of a physical algorithm", so Disco {e records}
    every [exec] call — the submitted expression, the time taken and the
    amount of data returned — and estimates future calls from history:

    - an {b exact match} (same repository, same expression) combines the
      recorded calls with a smoothing function; only a fixed number of
      exactly matching calls are kept;
    - a {b close match} (same expression skeleton: comparison operators
      match but constants differ — the paper's "variant of predicate-based
      caching") smooths over the close calls;
    - {b no match} falls back to the defaults: {e time 0, data 1}, which
      biases the optimizer toward maximal pushdown, exactly as the paper
      argues. *)

module Expr := Disco_algebra.Expr

type basis =
  | Exact of int  (** number of exactly matching recorded calls *)
  | Close of int  (** number of skeleton-matching recorded calls *)
  | Indexed
      (** no recorded calls, but the submit is an indexed lookup on an
          attribute declared via {!declare_index} — priced like the
          default yet treated as informed *)
  | Default

type estimate = { est_time_ms : float; est_rows : float; est_basis : basis }

val default_estimate : estimate
(** time 0, rows 1, basis Default. *)

type t

val create : ?history:int -> ?smoothing:float -> ?close_matching:bool -> unit -> t
(** [history] bounds the recorded calls kept per exact key (default 8).
    [smoothing] is the exponential-smoothing factor applied most-recent
    first (default 0.5). [close_matching] (default true) enables the
    skeleton-based close matches; disabling it is the A1 ablation — only
    exact repeats inform estimates. *)

val record : t -> repo:string -> expr:Expr.expr -> time_ms:float -> rows:int -> unit

val estimate : t -> repo:string -> Expr.expr -> estimate

val declare_index :
  t -> repo:string -> attr:string -> kind:[ `Hash | `Sorted ] -> unit
(** Tell the model that [repo] serves lookups on [attr] from an index.
    When an estimate finds no recorded history, a submit shaped like a
    select-over-get whose predicate compares [attr] to a constant
    (equality for either kind; [<] [<=] [>] [>=] only for [`Sorted]) is
    priced on an {!Indexed} basis instead of {!Default}. With no
    declarations the model's behavior is unchanged. Declarations are
    DDL, not observations: {!clear} keeps them. *)

val indexed_attrs : t -> repo:string -> (string * [ `Hash | `Sorted ]) list
(** The declared indexes for [repo], sorted by attribute name. *)

val record_batch : t -> repo:string -> size:int -> time_ms:float -> unit
(** Record one batched round-trip to [repo]: [size] expressions answered
    by a single wrapper call taking [time_ms] total. Bounded by the same
    [history] window as per-call records. Raises [Invalid_argument] when
    [size < 1]. *)

val estimate_batch : t -> repo:string -> size:int -> float option
(** Predicted total time of a batched round-trip of [size] expressions to
    [repo], calibrated from recorded batches: a least-squares fit of
    [time = overhead + marginal * size] when at least two distinct batch
    sizes were observed, a proportional scaling of the mean otherwise.
    [None] when no batch to [repo] has been recorded — callers fall back
    to per-call estimates. *)

val recorded_batches : t -> int
(** Total batched round-trips currently held (after trimming). *)

val skeleton : Expr.expr -> string
(** The close-match fingerprint: the expression with every constant
    erased. Exposed for tests. *)

val recorded_calls : t -> int
(** Total records currently held (after trimming). *)

val clear : t -> unit
