(** Availability schedules for simulated data sources.

    The paper's central operational assumption (Section 1, Section 4) is
    that in a system with many autonomous sources, some sources are
    unavailable at query time. A schedule answers "is this source up at
    virtual time [t]?" deterministically. *)

type t

val always_up : t
val always_down : t

val down_during : (float * float) list -> t
(** [down_during intervals] is up except during the half-open virtual-time
    intervals [[start, stop)]. *)

val flaky : seed:int -> period:float -> availability:float -> t
(** A source that is up during each period of length [period] with
    probability [availability], decided by hashing [(seed, period index)]
    — deterministic in virtual time, independent across seeds. *)

val is_up : t -> float -> bool

val next_transition : t -> float -> float option
(** The earliest time strictly after [t] at which the up/down state may
    change, if one is known ([None] for constant schedules). Used by the
    simulation to wake blocked calls. *)

val pp : Format.formatter -> t -> unit
