(** Availability schedules for simulated data sources.

    The paper's central operational assumption (Section 1, Section 4) is
    that in a system with many autonomous sources, some sources are
    unavailable at query time. A schedule answers "is this source up at
    virtual time [t]?" deterministically. *)

type t

val always_up : t
val always_down : t

val down_during : (float * float) list -> t
(** [down_during intervals] is up except during the half-open virtual-time
    intervals [[start, stop)]: the source is down at exactly [start] and
    up again at exactly [stop]. Raises [Invalid_argument] on a reversed
    interval ([stop < start]) or when two intervals overlap; touching
    intervals ([stop = next start]) merge into one contiguous outage. *)

val flaky : seed:int -> period:float -> availability:float -> t
(** A source that is up during each period of length [period] with
    probability [availability], decided by hashing [(seed, period index)]
    — deterministic in virtual time, independent across seeds. *)

val flapping : period:float -> up_ms:float -> t
(** A deterministic square wave: within every cycle of length [period]
    the source is up during the first [up_ms] (half-open, like
    {!down_during}) and down for the rest. The retry scheduler's
    canonical fault-injection shape. Raises [Invalid_argument] unless
    [0 <= up_ms <= period] and [period > 0]. *)

val slow_during : (float * float) list -> factor:float -> t
(** Always up, but calls issued inside one of the half-open intervals
    run at [factor] times their nominal latency ({!latency_factor}) —
    the degraded-but-alive shape that makes replica hedging pay off.
    Raises [Invalid_argument] on reversed or overlapping intervals or a
    [factor < 1]. *)

val is_up : t -> float -> bool

val latency_factor : t -> float -> float
(** The latency multiplier for a call issued at the given virtual time:
    [factor] inside a {!slow_during} interval, [1.0] everywhere else. *)

val next_transition : t -> float -> float option
(** The earliest time strictly after [t] at which the up/down state may
    change, if one is known ([None] for constant schedules). Used by the
    simulation to wake blocked calls. *)

val pp : Format.formatter -> t -> unit
