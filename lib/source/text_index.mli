(** A WAIS-style document server (paper Section 2.2: "the DISCO model can
    be applied to a variety of information servers, such as WAIS
    servers").

    Documents carry a title and a body; an inverted index serves keyword
    lookups. The matching wrapper exposes this through the ordinary
    extent interface: a scan returns every document, and a
    [body like "%word%"] filter is answered from the index instead of a
    scan — the WAIS query model expressed as a capability. *)

module V := Disco_value.Value

type doc = { doc_id : int; title : string; body : string }

type t

val create : unit -> t

val add : t -> title:string -> body:string -> int
(** Index a document; returns its id. *)

val all : t -> doc list
(** Every document, in insertion order. *)

val search : t -> string -> doc list
(** Documents whose body contains the (case-insensitive) keyword, served
    by the inverted index; insertion order. *)

val search_title : t -> string -> doc list

val cardinal : t -> int
val version : t -> int

val doc_to_struct : doc -> V.t
(** [struct(id: ..., title: ..., body: ...)]. *)
