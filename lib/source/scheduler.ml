(* Domain pool: a mutex-protected queue of thunks drained by worker
   domains. [map_rounds] enqueues one job per element and the submitting
   thread helps drain the queue while its own jobs are outstanding, so a
   saturated pool (or a nested round) degrades to inline execution
   instead of deadlocking. *)
type pool = {
  lock : Mutex.t;
  work : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

type kind = Virtual of Clock.t | Wall of { epoch : float; pool : pool }
type t = { kind : kind }

let worker_loop pool =
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.queue && not pool.stopping do
      Condition.wait pool.work pool.lock
    done;
    if Queue.is_empty pool.queue && pool.stopping then Mutex.unlock pool.lock
    else begin
      let job = Queue.pop pool.queue in
      Mutex.unlock pool.lock;
      job ();
      loop ()
    end
  in
  loop ()

let of_clock clock = { kind = Virtual clock }

let wall ?domains () =
  let n =
    match domains with
    | Some n when n >= 1 -> n
    | Some _ -> invalid_arg "Scheduler.wall: domains must be at least 1"
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let pool =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
    }
  in
  pool.workers <- List.init n (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  { kind = Wall { epoch = Unix.gettimeofday (); pool } }

let is_virtual t = match t.kind with Virtual _ -> true | Wall _ -> false
let clock t = match t.kind with Virtual c -> Some c | Wall _ -> None

let now t =
  match t.kind with
  | Virtual c -> Clock.now c
  | Wall { epoch; _ } -> (Unix.gettimeofday () -. epoch) *. 1000.0

(* Sleep in short slices so a wall scheduler reacts promptly even when
   the target instant was computed from a slightly different reading. *)
let wall_sleep_until t target_ms =
  let rec loop () =
    let remaining_ms = target_ms -. now t in
    if remaining_ms > 0.0 then begin
      Unix.sleepf (Float.min (remaining_ms /. 1000.0) 0.05);
      loop ()
    end
  in
  loop ()

let advance_to t time =
  match t.kind with
  | Virtual c -> Clock.advance_to c time
  | Wall _ -> wall_sleep_until t time

let pace t time =
  match t.kind with
  | Virtual _ -> ()
  | Wall _ -> wall_sleep_until t time

let map_rounds t f xs =
  match (t.kind, xs) with
  | Virtual _, _ | _, ([] | [ _ ]) -> List.map f xs
  | Wall { pool; _ }, xs ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let results = Array.make n None in
      let failures = Array.make n None in
      let remaining = ref n in
      let job i () =
        (match f arr.(i) with
        | r -> results.(i) <- Some r
        | exception e -> failures.(i) <- Some e);
        Mutex.lock pool.lock;
        decr remaining;
        Mutex.unlock pool.lock
      in
      Mutex.lock pool.lock;
      for i = 0 to n - 1 do
        Queue.push (job i) pool.queue
      done;
      Condition.broadcast pool.work;
      (* help drain until every job of THIS round has settled — jobs
         from concurrent rounds may also be picked up, which is fine *)
      while !remaining > 0 do
        match Queue.take_opt pool.queue with
        | Some job ->
            Mutex.unlock pool.lock;
            job ();
            Mutex.lock pool.lock
        | None ->
            Mutex.unlock pool.lock;
            Unix.sleepf 0.0002;
            Mutex.lock pool.lock
      done;
      Mutex.unlock pool.lock;
      Array.iter (function Some e -> raise e | None -> ()) failures;
      Array.to_list
        (Array.map (function Some r -> r | None -> assert false) results)

let shutdown t =
  match t.kind with
  | Virtual _ -> ()
  | Wall { pool; _ } ->
      Mutex.lock pool.lock;
      pool.stopping <- true;
      let workers = pool.workers in
      pool.workers <- [];
      Condition.broadcast pool.work;
      Mutex.unlock pool.lock;
      List.iter Domain.join workers
