module V = Disco_value.Value
module Schema = Disco_relation.Schema
module Database = Disco_relation.Database
module Table = Disco_relation.Table

(* Deterministic pseudo-random stream: hash of (seed, index, salt). *)
let draw ~seed ~salt index =
  Hashtbl.hash (seed, index, salt, 0xDA7A) land 0x3FFFFFFF

let uniform_int ~seed salt index lo hi =
  if hi < lo then invalid_arg "uniform_int: empty range";
  lo + (draw ~seed ~salt index mod (hi - lo + 1))

let first_names =
  [|
    "Mary"; "Sam"; "Alice"; "Bob"; "Carol"; "David"; "Erin"; "Frank"; "Grace";
    "Henri"; "Irene"; "Jules"; "Karim"; "Lena"; "Marc"; "Nadia"; "Omar";
    "Paula"; "Quentin"; "Rosa"; "Serge"; "Tara"; "Ulf"; "Vera"; "Walid";
    "Xenia"; "Yann"; "Zoe";
  |]

let pick_name ~seed index =
  let base = first_names.(draw ~seed ~salt:1 index mod Array.length first_names) in
  Fmt.str "%s_%d" base index

let person_schema =
  Schema.make
    [ ("id", Schema.TInt); ("name", Schema.TString); ("salary", Schema.TInt) ]

let person_rows ~seed ~n =
  List.init n (fun i ->
      [|
        V.Int i;
        V.String (pick_name ~seed i);
        V.Int (uniform_int ~seed 2 i 10 500);
      |])

let person_two_schema =
  Schema.make
    [
      ("id", Schema.TInt);
      ("name", Schema.TString);
      ("regular", Schema.TInt);
      ("consult", Schema.TInt);
    ]

let person_two_rows ~seed ~n =
  List.init n (fun i ->
      [|
        V.Int i;
        V.String (pick_name ~seed i);
        V.Int (uniform_int ~seed 3 i 10 400);
        V.Int (uniform_int ~seed 4 i 0 100);
      |])

let employee_schema =
  Schema.make [ ("name", Schema.TString); ("dept", Schema.TString) ]

let manager_schema = employee_schema

let dept_name d = Fmt.str "dept%d" d

let employee_rows ~seed ~n ~depts =
  List.init n (fun i ->
      [|
        V.String (pick_name ~seed i);
        V.String (dept_name (uniform_int ~seed 5 i 0 (depts - 1)));
      |])

let manager_rows ~seed ~depts =
  List.init depts (fun d ->
      [| V.String (Fmt.str "mgr_%s" (pick_name ~seed (1000 + d))); V.String (dept_name d) |])

let water_schema =
  Schema.make
    [
      ("station", Schema.TString);
      ("ts", Schema.TInt);
      ("ph", Schema.TFloat);
      ("turbidity", Schema.TFloat);
      ("oxygen", Schema.TFloat);
    ]

let unit_float ~seed salt i =
  float_of_int (draw ~seed ~salt i land 0xFFFFF) /. float_of_int 0x100000

let water_rows ~seed ~station ~n =
  List.init n (fun i ->
      [|
        V.String station;
        V.Int (i * 3600);
        V.Float (6.0 +. (2.5 *. unit_float ~seed 6 i));
        V.Float (40.0 *. unit_float ~seed 7 i);
        V.Float (4.0 +. (8.0 *. unit_float ~seed 8 i));
      |])

let table_of db ~name schema rows =
  let t = Database.create_table db ~name schema in
  Table.insert_all t rows;
  t

let person_db ~seed ~name ~n =
  let db = Database.create ~name in
  ignore (table_of db ~name person_schema (person_rows ~seed ~n));
  db
