module V = Disco_value.Value
module Database = Disco_relation.Database
module Sql = Disco_relation.Sql

type address = {
  host : string;
  db_name : string;
  ip : string;
  maintainer : string option;
  cost_hint : float option;
}

let address ?maintainer ?cost_hint ~host ~db_name ~ip () =
  { host; db_name; ip; maintainer; cost_hint }

type latency = { base_ms : float; per_row_ms : float; jitter : float }

let default_latency = { base_ms = 5.0; per_row_ms = 0.01; jitter = 0.1 }

type kind =
  | Relational of Database.t
  | Key_value of (string, V.t) Hashtbl.t
  | Flat_file of V.t list ref
  | Text of Text_index.t

type stats = {
  calls_answered : int;
  calls_refused : int;
  calls_timed_out : int;
  rows_shipped : int;
  busy_ms : float;
}

let zero_stats =
  {
    calls_answered = 0;
    calls_refused = 0;
    calls_timed_out = 0;
    rows_shipped = 0;
    busy_ms = 0.0;
  }

type t = {
  id : string;
  addr : address;
  kind : kind;
  latency : latency;
  mutable schedule : Schedule.t;
  mutable stats : stats;
  mutable call_counter : int;  (* drives deterministic jitter *)
  mutable kv_version : int;  (* mutations of kv / flat-file stores *)
}

let create ~id ~address ?(latency = default_latency)
    ?(schedule = Schedule.always_up) kind =
  {
    id;
    addr = address;
    kind;
    latency;
    schedule;
    stats = zero_stats;
    call_counter = 0;
    kv_version = 0;
  }

let id t = t.id
let addr t = t.addr
let kind t = t.kind
let schedule t = t.schedule
let set_schedule t s = t.schedule <- s
let is_up t time = Schedule.is_up t.schedule time

let data_version t =
  match t.kind with
  | Relational db -> Database.version db
  | Text idx -> Text_index.version idx
  | Key_value _ | Flat_file _ -> t.kv_version

let exec_sql t q =
  match t.kind with
  | Relational db -> Sql.run db q
  | Key_value _ | Flat_file _ | Text _ ->
      raise (Sql.Sql_error (Fmt.str "source %s is not relational" t.id))

let kv_table t =
  match t.kind with
  | Key_value tbl -> tbl
  | Relational _ | Flat_file _ | Text _ ->
      invalid_arg (Fmt.str "source %s is not a key-value store" t.id)

let kv_get t key = Hashtbl.find_opt (kv_table t) key

let kv_put t key v =
  Hashtbl.replace (kv_table t) key v;
  t.kv_version <- t.kv_version + 1

let kv_scan t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) (kv_table t) []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let file_store t =
  match t.kind with
  | Flat_file records -> records
  | Relational _ | Key_value _ | Text _ ->
      invalid_arg (Fmt.str "source %s is not a flat file" t.id)

let file_append t v =
  let store = file_store t in
  store := v :: !store;
  t.kv_version <- t.kv_version + 1

let file_records t = List.rev !(file_store t)

let text_index t =
  match t.kind with
  | Text idx -> idx
  | Relational _ | Key_value _ | Flat_file _ ->
      invalid_arg (Fmt.str "source %s is not a text server" t.id)

type 'a outcome = Answered of 'a * float | Unavailable | Timed_out of float

(* Deterministic jitter in [0, jitter] as a fraction of the nominal
   latency, derived from the call counter. *)
let jitter_fraction t =
  let h = Hashtbl.hash (t.id, t.call_counter, 0xD15C0) in
  t.latency.jitter *. (float_of_int (h land 0xFFFF) /. 65536.0)

let call_at t ~now ?deadline f =
  let issue_time = now in
  t.call_counter <- t.call_counter + 1;
  if not (is_up t issue_time) then (
    t.stats <- { t.stats with calls_refused = t.stats.calls_refused + 1 };
    Unavailable)
  else
    let payload, rows = f () in
    let nominal =
      t.latency.base_ms +. (t.latency.per_row_ms *. float_of_int rows)
    in
    let elapsed =
      nominal *. (1.0 +. jitter_fraction t)
      *. Schedule.latency_factor t.schedule issue_time
    in
    let completion = issue_time +. elapsed in
    match deadline with
    | Some d when completion > d ->
        (* the source did the work even though the answer arrives too
           late — its time is spent and the outcome is a timeout, not a
           refusal *)
        t.stats <-
          {
            t.stats with
            calls_timed_out = t.stats.calls_timed_out + 1;
            busy_ms = t.stats.busy_ms +. elapsed;
          };
        Timed_out completion
    | _ ->
        t.stats <-
          {
            t.stats with
            calls_answered = t.stats.calls_answered + 1;
            rows_shipped = t.stats.rows_shipped + rows;
            busy_ms = t.stats.busy_ms +. elapsed;
          };
        Answered (payload, completion)

let call t ~clock ?deadline f = call_at t ~now:(Clock.now clock) ?deadline f

let stats t = t.stats
let reset_stats t = t.stats <- zero_stats

let pp ppf t =
  let kind_name =
    match t.kind with
    | Relational _ -> "relational"
    | Key_value _ -> "key-value"
    | Flat_file _ -> "flat-file"
    | Text _ -> "text"
  in
  Fmt.pf ppf "source %s (%s at %s/%s, %a)" t.id kind_name t.addr.host
    t.addr.db_name Schedule.pp t.schedule
