(** A virtual clock measuring simulated milliseconds.

    Every latency, deadline and timestamp in the Disco simulation is
    expressed against a virtual clock, which makes runs deterministic and
    lets benchmarks sweep deadlines without wall-clock sleeps. A clock is
    shared by a mediator and all the sources it reaches. *)

type t

val create : ?start:float -> unit -> t
(** A clock reading [start] (default 0.0) virtual ms. *)

val now : t -> float

val advance : t -> float -> unit
(** Move the clock forward; negative amounts are an error. *)

val advance_to : t -> float -> unit
(** Move the clock forward to an absolute time. Raises [Invalid_argument]
    on a time earlier than the current reading — the clock never runs
    backwards, and a stale finish time silently rewinding observed
    durations was a bug worth catching loudly. Advancing to the current
    time is a no-op. *)
