(** The runtime's time-and-execution abstraction.

    Everything the run-time system previously asked of a bare {!Clock.t}
    — what time is it, move to a completion instant, wait for a re-poll
    event — goes through a scheduler, which also owns how a round's
    independent wrapper calls are executed. Two implementations share
    the interface:

    - {!of_clock} wraps a virtual {!Clock.t}: [now] reads the clock,
      [advance_to] moves it, [pace] is a no-op (the discrete-event retry
      drain never touches the shared clock mid-round), and {!map_rounds}
      runs jobs sequentially in list order. This reproduces the
      historical single-threaded simulation bit-for-bit — tests and
      benches pin it.
    - {!wall} measures real milliseconds and runs a round's jobs
      genuinely in parallel on a pool of OCaml 5 domains; [advance_to]
      and [pace] become real sleeps, so simulated source latencies turn
      into wall-clock service times.

    A scheduler is safe to share across sys-threads: the wall pool
    serializes its queue behind a mutex, and callers waiting on a full
    pool help drain it (so nested or concurrent rounds cannot
    deadlock). *)

type t

val of_clock : Clock.t -> t
(** The deterministic virtual-time scheduler. Cheap — wraps the clock
    without copying, so several schedulers of one clock share its
    state. *)

val wall : ?domains:int -> unit -> t
(** A wall-clock scheduler running jobs on [domains] worker domains
    (default [Domain.recommended_domain_count () - 1], at least 1).
    Time is measured in real milliseconds since this call. Call
    {!shutdown} when done. *)

val is_virtual : t -> bool

val clock : t -> Clock.t option
(** The underlying virtual clock, when there is one. *)

val now : t -> float
(** Virtual scheduler: the clock's reading. Wall scheduler: elapsed real
    milliseconds since {!wall}. *)

val advance_to : t -> float -> unit
(** Move time forward to an absolute instant — the end-of-round
    synchronization point. Virtual: {!Clock.advance_to} (raises
    [Invalid_argument] on a past instant). Wall: sleep until [now]
    reaches the instant; past instants return immediately. *)

val pace : t -> float -> unit
(** Wait until an event's instant without committing the shared round
    time. Virtual: a no-op — the retry drain resolves events in virtual
    order with the clock untouched. Wall: sleep until the instant. *)

val map_rounds : t -> ('a -> 'b) -> 'a list -> 'b list
(** Run one job per list element and return the results in input order.
    Virtual (or a list of fewer than two elements): [List.map], in
    order. Wall: jobs run concurrently on the domain pool; the calling
    thread also executes queued jobs while it waits. The first exception
    raised by any job is re-raised after all jobs settle. *)

val shutdown : t -> unit
(** Stop and join the wall pool's domains. A no-op on virtual
    schedulers; idempotent. *)
