type t = { mutable now : float }

let create ?(start = 0.0) () = { now = start }
let now t = t.now

let advance t delta =
  if delta < 0.0 then invalid_arg "Clock.advance: negative delta";
  t.now <- t.now +. delta

let advance_to t time =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Clock.advance_to: %g is before the current time %g" time
         t.now);
  t.now <- time
