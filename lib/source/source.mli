(** Simulated autonomous data sources.

    A source bundles a {e repository address} (the paper's [Repository]
    object carries host, name and network address — Section 2.1), a native
    store of one of three kinds (relational database, key-value store, or
    flat record file — Section 2.2: "the DISCO model can be applied to a
    variety of information servers"), a latency model, and an availability
    {!Schedule.t}.

    Mediators never touch sources directly: wrappers translate logical
    expressions into the source's native operations ({!exec_sql},
    {!kv_get}, {!file_records}) and the {!call} combinator simulates the
    network exchange against a virtual {!Clock.t}. *)

module V := Disco_value.Value

(** Where a source lives — the attributes of the paper's [Repository]
    example plus the open-ended extras it mentions (cost hint,
    maintainer). *)
type address = {
  host : string;
  db_name : string;
  ip : string;
  maintainer : string option;
  cost_hint : float option;  (** relative access cost, for the DBA *)
}

val address : ?maintainer:string -> ?cost_hint:float -> host:string -> db_name:string -> ip:string -> unit -> address

(** Native latency model: answering a call costs
    [base_ms + per_row_ms * rows] virtual milliseconds, plus a
    deterministic jitter of at most [jitter] fraction of the total. *)
type latency = { base_ms : float; per_row_ms : float; jitter : float }

val default_latency : latency
(** 5 ms base, 0.01 ms/row, 10% jitter. *)

(** The native store kinds. *)
type kind =
  | Relational of Disco_relation.Database.t
  | Key_value of (string, V.t) Hashtbl.t
      (** a single collection of key → struct *)
  | Flat_file of V.t list ref  (** an append-only list of record structs *)
  | Text of Text_index.t  (** a WAIS-style keyword-indexed document server *)

type t

val create : id:string -> address:address -> ?latency:latency -> ?schedule:Schedule.t -> kind -> t
(** A fresh source, up by default. *)

val id : t -> string
val addr : t -> address
val kind : t -> kind
val schedule : t -> Schedule.t
val set_schedule : t -> Schedule.t -> unit
val is_up : t -> float -> bool

val data_version : t -> int
(** Monotone under mutation of the underlying store (drives plan-cache
    invalidation). *)

(** {1 Native operations}

    These execute instantly (simulation cost is charged by {!call}). *)

val exec_sql : t -> Disco_relation.Sql.query -> Disco_relation.Sql.result
(** Raises [Sql.Sql_error] if the source is not relational. *)

val kv_get : t -> string -> V.t option
val kv_put : t -> string -> V.t -> unit
val kv_scan : t -> (string * V.t) list
(** Sorted by key. Raises [Invalid_argument] on non-key-value sources. *)

val file_append : t -> V.t -> unit
val file_records : t -> V.t list
(** Raises [Invalid_argument] on non-flat-file sources. *)

val text_index : t -> Text_index.t
(** Raises [Invalid_argument] on non-text sources. *)

(** {1 Simulated calls} *)

(** The outcome of a network call issued at some virtual time. *)
type 'a outcome =
  | Answered of 'a * float
      (** payload and the virtual time at which the answer arrived *)
  | Unavailable  (** source down at issue time: the call never returns *)
  | Timed_out of float
      (** the answer would arrive only after the deadline; carries the
          would-be completion time *)

val call : t -> clock:Clock.t -> ?deadline:float -> (unit -> 'a * int) -> 'a outcome
(** [call src ~clock ?deadline f] issues a request at [Clock.now clock].
    [f ()] must return the payload and the number of rows it carries
    (which prices the transfer). The clock is {e not} advanced — the
    caller coordinates parallel calls and advances time itself. Statistics
    are recorded on the source. *)

val call_at : t -> now:float -> ?deadline:float -> (unit -> 'a * int) -> 'a outcome
(** Like {!call} but issued at an explicit virtual time rather than the
    clock's current reading. This is the issue-time/completion split the
    retry scheduler needs: re-polls and hedges are issued at {e future}
    virtual instants within one round, without advancing the shared
    clock. [call t ~clock] is [call_at t ~now:(Clock.now clock)]. *)

(** Cumulative per-source counters, for the experiment harness. *)
type stats = {
  calls_answered : int;
  calls_refused : int;  (** down at issue time: the source did no work *)
  calls_timed_out : int;
      (** the answer would land past the deadline; the source {e did}
          the work (its time shows in [busy_ms]) but nothing shipped *)
  rows_shipped : int;
  busy_ms : float;  (** total virtual time spent serving *)
}

val stats : t -> stats
val reset_stats : t -> unit
val pp : Format.formatter -> t -> unit
